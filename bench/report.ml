(* Unified bench reporting substrate (ISSUE 5): every experiment emits one
   common JSON schema — experiment name, parameters, gated metrics,
   counters, histograms and free-form series — and the regression gate
   ([check.ml]) compares a fresh run against the committed baselines in
   bench/baselines/ using the per-metric tolerances embedded here.

   The schema, "holiwin-bench/1":

     {
       "schema": "holiwin-bench/1",
       "experiment": "sql-multiwindow",
       "params":   { "rows": 40000, ... },
       "metrics":  { "speedup": { "value": 1.8, "unit": "x",
                                  "direction": "higher", "tolerance": 0.35 },
                     "plan_s":  { "value": 0.12, "unit": "s",
                                  "direction": "lower", "tolerance": null } },
       "counters": { "plan.full_sorts": 2, ... },
       "histograms": { "bench.plan_ns": { "count": 3, "sum": ..., "min": ...,
                                          "max": ..., "p50": ..., "p90": ...,
                                          "p99": ... } },
       "series":   [ ... experiment-specific ... ]
     }

   Only metrics with a non-null tolerance are gated; the rest (absolute
   wall times above all) are reported for trend reading but never fail
   CI, because the CI machine is not the machine the baseline was
   recorded on.  Gated metrics are machine-independent by construction:
   speedup ratios, build counts, structure bytes.

   The JSON printer and parser are deliberately tiny — objects, arrays
   and scalars are all the schema needs, and an in-repo parser avoids an
   external dependency. *)

module Obs = Holistic_obs.Obs

let schema_id = "holiwin-bench/1"

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_to_string j =
  let buf = Buffer.create 1024 in
  let pad d = Buffer.add_string buf (String.make (2 * d) ' ') in
  let rec go d = function
    | J_null -> Buffer.add_string buf "null"
    | J_bool b -> Buffer.add_string buf (string_of_bool b)
    | J_int i -> Buffer.add_string buf (string_of_int i)
    | J_float f ->
        if not (Float.is_finite f) then Buffer.add_string buf "null"
        else Buffer.add_string buf (Printf.sprintf "%.9g" f)
    | J_string s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (json_escape s);
        Buffer.add_char buf '"'
    | J_list [] -> Buffer.add_string buf "[]"
    | J_list xs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (d + 1);
            go (d + 1) x)
          xs;
        Buffer.add_char buf '\n';
        pad d;
        Buffer.add_char buf ']'
    | J_obj [] -> Buffer.add_string buf "{}"
    | J_obj kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (d + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (json_escape k);
            Buffer.add_string buf "\": ";
            go (d + 1) v)
          kvs;
        Buffer.add_char buf '\n';
        pad d;
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

exception Parse_error of string * int

(* Recursive-descent parser for the subset the printer emits (which is
   all of JSON except exotic number spellings and \u escapes beyond
   Latin-1; enough to read our own files back). *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                   pos := !pos + 4;
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> J_int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> J_float f
        | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ();
          J_obj (List.rev !kvs)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_list []
        end
        else begin
          let xs = ref [] in
          let rec elements () =
            let v = parse_value () in
            xs := v :: !xs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ();
          J_list (List.rev !xs)
        end
    | Some '"' -> J_string (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse s

let save path j =
  let oc = open_out path in
  output_string oc (json_to_string j);
  close_out oc

(* accessors *)
let member k = function J_obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float = function
  | J_int i -> Some (float_of_int i)
  | J_float f -> Some f
  | _ -> None

let to_string_opt = function J_string s -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type direction = Lower_better | Higher_better

type metric = {
  value : float;
  unit_ : string;
  direction : direction;
  tolerance : float option;
      (* relative slack for the gate; [None] = report-only (absolute wall
         times: machine-dependent, never gated) *)
}

let metric ?(unit_ = "") ?(direction = Lower_better) ?tolerance value =
  { value; unit_; direction; tolerance }

let direction_to_string = function Lower_better -> "lower" | Higher_better -> "higher"

let direction_of_string = function
  | "higher" -> Higher_better
  | _ -> Lower_better

let json_of_metric m =
  J_obj
    [
      ("value", J_float m.value);
      ("unit", J_string m.unit_);
      ("direction", J_string (direction_to_string m.direction));
      ("tolerance", match m.tolerance with None -> J_null | Some t -> J_float t);
    ]

let metric_of_json j =
  match to_float (Option.value ~default:J_null (member "value" j)) with
  | None -> None
  | Some value ->
      Some
        {
          value;
          unit_ = Option.value ~default:"" (Option.bind (member "unit" j) to_string_opt);
          direction =
            direction_of_string
              (Option.value ~default:"lower" (Option.bind (member "direction" j) to_string_opt));
          tolerance = Option.bind (member "tolerance" j) to_float;
        }

let json_of_hist_summary (s : Obs.Histogram.summary) =
  J_obj
    [
      ("count", J_int s.Obs.Histogram.count);
      ("sum", J_int s.Obs.Histogram.sum);
      ("min", J_int s.Obs.Histogram.min);
      ("max", J_int s.Obs.Histogram.max);
      ("p50", J_int s.Obs.Histogram.p50);
      ("p90", J_int s.Obs.Histogram.p90);
      ("p99", J_int s.Obs.Histogram.p99);
    ]

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let make ~experiment ?(params = []) ?(metrics = []) ?(counters = []) ?(histograms = [])
    ?series () =
  J_obj
    ([
       ("schema", J_string schema_id);
       ("experiment", J_string experiment);
       ("params", J_obj params);
       ("metrics", J_obj (List.map (fun (k, m) -> (k, json_of_metric m)) metrics));
       ("counters", J_obj (List.map (fun (k, v) -> (k, J_int v)) counters));
       ( "histograms",
         J_obj (List.map (fun (k, s) -> (k, json_of_hist_summary s)) histograms) );
     ]
    @ match series with None -> [] | Some s -> [ ("series", s) ])

let write ~experiment ?params ?metrics ?counters ?histograms ?series path =
  save path (make ~experiment ?params ?metrics ?counters ?histograms ?series ())

(* ------------------------------------------------------------------ *)
(* The regression gate                                                 *)
(* ------------------------------------------------------------------ *)

type check = {
  metric_name : string;
  baseline : float;
  fresh : float option;
  m_direction : direction;
  m_tolerance : float option;
  ok : bool;
}

(* A gated metric passes when the fresh value stays within the relative
   tolerance of the baseline in the metric's bad direction (improvements
   never fail): lower-is-better fails when fresh > base·(1+t),
   higher-is-better fails when fresh < base/(1+t).  A missing fresh value
   fails.  The tiny absolute epsilon keeps exactly-zero baselines from
   rejecting exactly-zero fresh values to rounding. *)
let check_metric name (base : metric) (fresh : metric option) =
  let fresh_v = Option.map (fun m -> m.value) fresh in
  let ok =
    match base.tolerance with
    | None -> true
    | Some t -> (
        match fresh_v with
        | None -> false
        | Some f -> (
            match base.direction with
            | Lower_better -> f <= (base.value *. (1.0 +. t)) +. 1e-9
            | Higher_better -> f >= (base.value /. (1.0 +. t)) -. 1e-9))
  in
  {
    metric_name = name;
    baseline = base.value;
    fresh = fresh_v;
    m_direction = base.direction;
    m_tolerance = base.tolerance;
    ok;
  }

let metrics_of json =
  match member "metrics" json with
  | Some (J_obj kvs) ->
      List.filter_map (fun (k, v) -> Option.map (fun m -> (k, m)) (metric_of_json v)) kvs
  | _ -> []

let experiment_of json =
  Option.value ~default:"?" (Option.bind (member "experiment" json) to_string_opt)

(* Compare a fresh report against its baseline: one [check] per baseline
   metric, in baseline order.  Metrics only present in the fresh run are
   ignored (they gate once a baseline embedding them is committed). *)
let compare_reports ~baseline ~fresh =
  let fresh_metrics = metrics_of fresh in
  List.map
    (fun (name, base) -> check_metric name base (List.assoc_opt name fresh_metrics))
    (metrics_of baseline)

let violations checks = List.filter (fun c -> not c.ok) checks
