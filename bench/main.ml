(* Benchmark harness entry point: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe                  # everything, default sizes
     dune exec bench/main.exe -- fig11         # one experiment
     dune exec bench/main.exe -- fig10 --scale 2.5 --budget 60
     dune exec bench/main.exe -- --quick       # smoke sizes (CI)
*)

let default_scale = 1.0

type sizes = {
  fig9_rows : int;
  fig10_scale : float;
  fig11_rows : int;
  fig12_rows : int;
  fig13_rows : int;
  fig14_rows : int;
  table1_base : int;
  mem_rows : int;
  ablation_rows : int;
  multiwindow_rows : int;
  sort_keys_rows : int;
  scaling_rows : int;
  calibrate_rows : int;
  evaluator_rows : int;
  incremental_rows : int;
  spill_rows : int;
}

let sizes ~scale ~quick =
  let f base = max 1_000 (int_of_float (float_of_int base *. scale *. if quick then 0.1 else 1.0)) in
  {
    fig9_rows = (if quick then 4_000 else 20_000) (* the paper's fixed 20k *);
    fig10_scale = scale *. (if quick then 0.1 else 1.0);
    fig11_rows = f 200_000;
    fig12_rows = f 100_000;
    fig13_rows = f 200_000;
    fig14_rows = f 500_000;
    table1_base = f 4_000;
    mem_rows = f 1_000_000;
    ablation_rows = f 200_000;
    multiwindow_rows = f 400_000;
    sort_keys_rows = f 1_000_000;
    scaling_rows = f 400_000;
    calibrate_rows = f 262_144;
    evaluator_rows = f 400_000;
    incremental_rows = f 400_000;
    spill_rows = f 4_000_000 (* 10x multiwindow: the out-of-core regime *);
  }

let experiments s =
  [
    ("preflight", Figures.preflight);
    ("table1", fun () -> Figures.table1 ~base:s.table1_base ());
    ("fig9", fun () -> Figures.fig9 ~rows:s.fig9_rows ());
    ("fig10", fun () -> Figures.fig10 ~scale:s.fig10_scale ());
    ("fig11", fun () -> Figures.fig11 ~rows:s.fig11_rows ());
    ("fig11-all", fun () -> Figures.fig11_all ~rows:(s.fig11_rows / 2) ());
    ("fig12", fun () -> Figures.fig12 ~rows:s.fig12_rows ());
    ("fig13", fun () -> Figures.fig13 ~rows:s.fig13_rows ());
    ("fig14", fun () -> ignore (Profile.run ~rows:s.fig14_rows));
    ("mem", fun () -> Figures.mem ~rows:s.mem_rows ());
    ("ablation-cascade", fun () -> Figures.ablation_cascade ~rows:s.ablation_rows ());
    ("ablation-cascade-raw", fun () -> Figures.ablation_cascade_raw ~rows:s.ablation_rows ());
    ("ablation-task", fun () -> Figures.ablation_task ~rows:s.ablation_rows ());
    ("ablation-store", fun () -> Figures.ablation_store ~rows:s.ablation_rows ());
    ("mst-width", fun () -> Figures.mst_width ~rows:s.mem_rows ());
    ("ext-dense-rank", fun () -> Figures.ext_dense_rank ~scale:s.fig10_scale ());
    ("sql-multiwindow", fun () -> Multiwindow.run ~rows:s.multiwindow_rows ());
    ("sort-keys", fun () -> Sort_keys.run ~rows:s.sort_keys_rows ());
    ("scaling", fun () -> Scaling.run ~rows:s.scaling_rows ());
    ("calibrate", fun () -> Calibrate.run ~rows:s.calibrate_rows ());
    ("evaluator-choice", fun () -> Evaluator_choice.run ~rows:s.evaluator_rows ());
    ("incremental", fun () -> Incremental.run ~rows:s.incremental_rows ());
    ("spill", fun () -> Spill.run ~rows:s.spill_rows ());
    ("micro", Micro.run);
  ]

open Cmdliner

let scale_arg =
  Arg.(value & opt float default_scale & info [ "scale" ] ~doc:"Size multiplier for all experiments.")

let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Smoke-test sizes (~10x smaller).")

let budget_arg =
  Arg.(value & opt float 30.0 & info [ "budget" ] ~doc:"Per-point time budget (s) before a competitor is dropped from a sweep.")

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiments to run (default: all).")

let run names scale quick budget =
  Harness.default_budget := budget;
  let s = sizes ~scale ~quick in
  let available = experiments s in
  let chosen =
    match names with
    | [] -> List.filter (fun (n, _) -> n <> "micro") available
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n available with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" n
                  (String.concat ", " (List.map fst available));
                exit 2)
          names
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f ()) chosen;
  Printf.printf "\nTotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)

let cmd =
  let doc = "Regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "holistic-bench" ~doc) Term.(const run $ names_arg $ scale_arg $ quick_arg $ budget_arg)

let () = exit (Cmd.eval cmd)
