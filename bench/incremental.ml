(* The [incremental] experiment: cross-query structure reuse under a
   {!Holistic_window.Session}.  A four-clause window query runs warm
   against a session store, then the table mutates — appends of 1% of the
   rows landing in a couple of hot partitions (the streaming shape:
   new data arrives at the tail of a few keys), and a bulk eviction of one
   whole partition — and the re-query is timed against a from-scratch
   stateless run over the identical table.

   Parity is a hard failure and is checked bit-for-bit (floats compared by
   their IEEE bits, like the differential fuzz): the session's maintained
   permutations, extended rank encodes, run-stacked MSTs and reused
   outputs must be indistinguishable from a rebuild.  The append-path
   speedup is also a hard floor (>= 5x, the acceptance bar), and the
   session queries must report zero full sorts. *)

open Holistic_storage
open Holistic_window
module Wf = Window_func
module Rng = Holistic_util.Rng
module H = Harness

let hot_parts = 2

let make_table rng ~rows ~partitions =
  Table.create
    [
      ("grp", Column.ints (Array.init rows (fun _ -> Rng.int rng partitions)));
      (* distinct, globally increasing: appended rows always sort after
         the old rows of their partition, the in-order maintenance path *)
      ("ts", Column.ints (Array.init rows (fun i -> i)));
      ("x", Column.floats (Array.init rows (fun _ -> Rng.float rng 1000.)));
      ("k", Column.ints (Array.init rows (fun _ -> Rng.int rng 100)));
    ]

let make_delta rng ~base ~rows =
  Table.create
    [
      ("grp", Column.ints (Array.init rows (fun _ -> Rng.int rng hot_parts)));
      ("ts", Column.ints (Array.init rows (fun i -> base + i)));
      ("x", Column.floats (Array.init rows (fun _ -> Rng.float rng 1000.)));
      ("k", Column.ints (Array.init rows (fun _ -> Rng.int rng 100)));
    ]

(* Pinned to MST: the experiment measures structure maintenance, so the
   per-item evaluator choice must not move with the cost model's
   calibration. *)
let clauses () =
  let grp = Expr.Col "grp" in
  let by_ts = [ Sort_spec.asc (Expr.Col "ts") ] in
  let back n = Window_spec.rows_between (Window_spec.preceding n) Window_spec.Current_row in
  let over frame = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ~frame () in
  [
    { Window_plan.spec = over (back 99); items = [ Wf.rank ~algorithm:Wf.Mst ~name:"r" [] ] };
    {
      Window_plan.spec = over (back 999);
      items = [ Wf.percent_rank ~algorithm:Wf.Mst ~name:"pr" [] ];
    };
    {
      Window_plan.spec = over (back 499);
      items =
        [ Wf.percentile_disc ~algorithm:Wf.Mst ~name:"med" 0.5 [ Sort_spec.asc (Expr.Col "x") ] ];
    };
    {
      Window_plan.spec = over (back 99);
      items = [ Wf.count ~algorithm:Wf.Mst ~distinct:true ~name:"dk" (Expr.Col "k") ];
    };
  ]

let out_cols = [ "r"; "pr"; "med"; "dk" ]

let value_identical a b =
  match a, b with
  | Value.Float x, Value.Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> Value.equal a b || (Value.is_null a && Value.is_null b)

let check_parity ~what ~session ~rebuild n =
  List.iter
    (fun name ->
      let sc = Table.column session name and rc = Table.column rebuild name in
      for i = 0 to n - 1 do
        if not (value_identical (Column.get sc i) (Column.get rc i)) then
          failwith
            (Printf.sprintf "incremental parity (%s): column %s row %d: session %s <> rebuild %s"
               what name i
               (Value.to_string (Column.get sc i))
               (Value.to_string (Column.get rc i)))
      done)
    out_cols

(* One timed session re-query with its invariants: the store must serve
   the stage sort (no full sort ran) and the result must be bit-identical
   to a from-scratch run over the same table. *)
let requery ~what ~session cs =
  let table = Session.table session in
  let out = ref None in
  let s = H.time (fun () -> out := Some (Window_plan.run_with_stats ~session table cs)) in
  let result, stats = Option.get !out in
  if stats.Window_plan.full_sorts <> 0 then
    failwith
      (Printf.sprintf "incremental (%s): %d full sort(s) ran under the session" what
         stats.Window_plan.full_sorts);
  if stats.Window_plan.session_sorts = 0 then
    failwith (Printf.sprintf "incremental (%s): no stage was served by the store" what);
  let rebuild = ref None in
  let full_s = H.time (fun () -> rebuild := Some (Window_plan.run table cs)) in
  check_parity ~what ~session:result ~rebuild:(Option.get !rebuild) (Table.nrows table);
  (s, full_s)

let run ~rows () =
  H.section "incremental: session re-query vs full rebuild after append / evict";
  let partitions = max 8 (rows / 2_000) in
  let rng = Rng.create 42 in
  let table = make_table rng ~rows ~partitions in
  let cs = clauses () in
  let session = Session.create table in
  H.note "%d rows, %d partitions, 4 OVER clauses; appends land in %d hot partition(s)" rows
    partitions hot_parts;
  (* warm the store (builds everything once) and check it against a
     stateless run before any timing *)
  let warm = Window_plan.run ~session table cs in
  check_parity ~what:"warm" ~session:warm ~rebuild:(Window_plan.run table cs) rows;
  H.note "warm query parity holds; store footprint %s"
    (Holistic_obs.Obs.human_bytes (Session.footprint_bytes session));
  (* append phase: three cycles of +1% at the tail of the hot partitions *)
  let delta_rows = max 1 (rows / 100) in
  let cycles = 3 in
  H.gc_settle ();
  let inc_s = ref 0.0 and full_s = ref 0.0 in
  for c = 1 to cycles do
    Session.append_rows session (make_delta rng ~base:(rows + (c * delta_rows)) ~rows:delta_rows);
    let i, f = requery ~what:(Printf.sprintf "append cycle %d" c) ~session cs in
    inc_s := !inc_s +. i;
    full_s := !full_s +. f
  done;
  let append_speedup = !full_s /. !inc_s in
  H.note "append +1%% x%d: session %.4f s vs rebuild %.4f s (%.1fx)" cycles !inc_s !full_s
    append_speedup;
  if append_speedup < 5.0 then
    failwith
      (Printf.sprintf "incremental: append re-query speedup %.2fx is below the 5x floor"
         append_speedup);
  (* evict phase: drop one cold partition wholesale — survivors renumber,
     nothing re-sorts, untouched partitions keep their outputs *)
  let victim = partitions - 1 in
  let grp = Table.column (Session.table session) "grp" in
  let before = Table.nrows (Session.table session) in
  H.gc_settle ();
  let evict_s =
    H.time (fun () ->
        Session.evict_where session (fun r ->
            match Column.get grp r with Value.Int g -> g = victim | _ -> false))
  in
  let after = Table.nrows (Session.table session) in
  H.note "evicted partition %d: %d rows dropped in %.4f s" victim (before - after) evict_s;
  let inc_evict, full_evict = requery ~what:"evict" ~session cs in
  let evict_speedup = full_evict /. inc_evict in
  H.note "post-evict re-query: session %.4f s vs rebuild %.4f s (%.1fx)" inc_evict full_evict
    evict_speedup;
  let counters = Session.counters session in
  let maintained = Build_cache.maintained_count counters in
  let rebuilt = Build_cache.rebuilt_count counters in
  if maintained = 0 then failwith "incremental: no structure was incrementally maintained";
  H.print_table ~header:[ "phase"; "session (s)"; "rebuild (s)"; "speedup" ]
    ~rows:
      [
        [
          Printf.sprintf "append +1%% x%d" cycles;
          Printf.sprintf "%.4f" !inc_s;
          Printf.sprintf "%.4f" !full_s;
          Printf.sprintf "%.1fx" append_speedup;
        ];
        [
          "evict 1 partition";
          Printf.sprintf "%.4f" inc_evict;
          Printf.sprintf "%.4f" full_evict;
          Printf.sprintf "%.1fx" evict_speedup;
        ];
      ];
  Report.write "BENCH_incremental.json" ~experiment:"incremental"
    ~params:
      [
        ("rows", H.J_int rows);
        ("partitions", H.J_int partitions);
        ("delta_rows", H.J_int delta_rows);
        ("cycles", H.J_int cycles);
      ]
    ~metrics:
      [
        (* gated: ratios survive machine changes; parity and the 5x floor
           are hard failures above, so the gate only guards drift *)
        ("append_speedup",
         Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.5 append_speedup);
        ("evict_speedup",
         Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.5 evict_speedup);
        (* report-only: absolute wall times are machine-dependent *)
        ("append_session_s", Report.metric ~unit_:"s" !inc_s);
        ("append_rebuild_s", Report.metric ~unit_:"s" !full_s);
        ("evict_session_s", Report.metric ~unit_:"s" inc_evict);
        ("evict_rebuild_s", Report.metric ~unit_:"s" full_evict);
      ]
    ~counters:
      [
        ("session.maintained", maintained);
        ("session.rebuilt", rebuilt);
        ("session.encode_builds", Build_cache.encode_build_count counters);
        ("session.tree_builds", Build_cache.tree_build_count counters);
        ("session.epoch", Session.epoch session);
        ("session.footprint_bytes", Session.footprint_bytes session);
      ]
    ~histograms:(Holistic_obs.Obs.Histogram.snapshot ());
  H.note "wrote BENCH_incremental.json"
