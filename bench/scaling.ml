(* The [scaling] experiment: multicore scale-up of the two parallel layers
   of the pipeline — merge-sort-tree construction alone, and the
   morsel-driven window plan end to end — as a 1 -> N domain speedup curve.

   Correctness comes first and is exact: at every domain count the built
   tree must answer a probe battery identically and the plan's output
   columns must match the single-domain run bit for bit (NaNs and signed
   zeros included) — any divergence is a hard failure before a single
   timing runs.  The wall-clock speedups themselves depend on the host's
   core count (a single-core runner shows ~1.0x everywhere and the
   committed baseline records the honest curve for its host), so they are
   gated only loosely; the parity checks carry the portable guarantee. *)

open Holistic_storage
module H = Harness
module Rng = Holistic_util.Rng
module Task_pool = Holistic_parallel.Task_pool
module Mstw = Holistic_core.Mst_width
module Window_plan = Holistic_window.Window_plan

let domain_counts = [ 1; 2; 4 ]

(* Deterministic fingerprint of a built tree: a spread of counting probes
   across positions and values — divergence in any level's contents or
   cursor samples shows up as a different total. *)
let mst_fingerprint tree =
  let n = Mstw.length tree in
  let acc = ref 0 in
  let probes = 64 in
  for i = 0 to probes - 1 do
    let lo = i * n / (2 * probes) in
    let hi = n - (i * n / (4 * probes)) in
    let less_than = ((i * 131) + 7) mod n in
    acc := (!acc * 31) + Mstw.count tree ~lo ~hi ~less_than
  done;
  !acc

let value_identical a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> compare a b = 0

let check_columns_identical ~domains out0 out n =
  List.iter
    (fun (name, c0) ->
      let c = Table.column out name in
      for r = 0 to n - 1 do
        let a = Column.get c0 r and b = Column.get c r in
        if not (value_identical a b) then
          failwith
            (Printf.sprintf "scaling parity: column %s row %d: 1 domain gave %s, %d domains %s"
               name r (Value.to_string a) domains (Value.to_string b))
      done)
    (Table.columns out0)

let run ~rows () =
  H.section "scaling: domain scale-up of MST build and the window plan";
  let rng = Rng.create 7 in
  (* MST operand: dense codes bounded by the row count, like a rank
     encoding over a partition of [rows] rows (32-bit storage, so the
     narrowing blits are on the parallel path too). *)
  let codes = Array.init rows (fun _ -> Rng.int rng rows) in
  let partitions = max 8 (rows / 4_000) in
  let table = Multiwindow.make_table rng ~rows ~partitions in
  let cs = Multiwindow.clauses () in
  H.note "%d rows, %d partitions, domain counts %s (host has %d core(s))" rows partitions
    (String.concat "/" (List.map string_of_int domain_counts))
    (Domain.recommended_domain_count ());
  let per_domain =
    List.map
      (fun d ->
        let pool = Task_pool.create d in
        Fun.protect
          ~finally:(fun () -> Task_pool.shutdown pool)
          (fun () ->
            let fp = mst_fingerprint (Mstw.create ~pool codes) in
            let out = Window_plan.run ~pool table cs in
            H.gc_settle ();
            let mst_t =
              H.time_best ~reps:3 (fun () -> ignore (Sys.opaque_identity (Mstw.create ~pool codes)))
            in
            H.gc_settle ();
            let e2e_t =
              H.time_best ~reps:3 (fun () ->
                  ignore (Sys.opaque_identity (Window_plan.run ~pool table cs)))
            in
            (d, fp, out, mst_t, e2e_t)))
      domain_counts
  in
  let d0, fp0, out0, mst0, e2e0 =
    match per_domain with x :: _ -> x | [] -> assert false
  in
  assert (d0 = 1);
  List.iter
    (fun (d, fp, out, _, _) ->
      if fp <> fp0 then
        failwith (Printf.sprintf "scaling parity: MST probe battery differs at %d domains" d);
      check_columns_identical ~domains:d out0 out rows)
    (List.tl per_domain);
  H.note "parity: trees and plan output bit-identical at every domain count";
  let speedup base t = base.H.best /. t.H.best in
  H.print_table
    ~header:[ "domains"; "mst build (s)"; "mst speedup"; "end-to-end (s)"; "e2e speedup" ]
    ~rows:
      (List.map
         (fun (d, _, _, mst_t, e2e_t) ->
           [
             string_of_int d;
             Printf.sprintf "%.4f" mst_t.H.best;
             Printf.sprintf "%.2fx" (speedup mst0 mst_t);
             Printf.sprintf "%.4f" e2e_t.H.best;
             Printf.sprintf "%.2fx" (speedup e2e0 e2e_t);
           ])
         per_domain);
  let find d =
    let _, _, _, mst_t, e2e_t =
      List.find (fun (d', _, _, _, _) -> d' = d) per_domain
    in
    (speedup mst0 mst_t, speedup e2e0 e2e_t)
  in
  let mst2, e2e2 = find 2 and mst4, e2e4 = find 4 in
  Report.write "BENCH_scaling.json" ~experiment:"scaling"
    ~params:
      [
        ("rows", H.J_int rows);
        ("partitions", H.J_int partitions);
        ("domain_counts", H.J_list (List.map (fun d -> H.J_int d) domain_counts));
        ("host_cores", H.J_int (Domain.recommended_domain_count ()));
      ]
    ~metrics:
      [
        (* gated loosely: the ratios track the host's core count, so the
           gate only catches a collapse against the committed baseline's
           host (improvements never fail) *)
        ("mst_speedup_2", Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.5 mst2);
        ("mst_speedup_4", Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.5 mst4);
        ("e2e_speedup_2", Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.5 e2e2);
        ("e2e_speedup_4", Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.5 e2e4);
        (* report-only: absolute wall times are machine-dependent *)
        ("mst_build_1_s", Report.metric ~unit_:"s" mst0.H.best);
        ("e2e_1_s", Report.metric ~unit_:"s" e2e0.H.best);
      ]
    ~counters:[ ("parity.domain_counts_checked", List.length domain_counts) ]
    ~histograms:(Holistic_obs.Obs.Histogram.snapshot ())
    ~series:
      (H.J_obj
         (List.map
            (fun (d, _, _, mst_t, e2e_t) ->
              ( Printf.sprintf "domains_%d" d,
                H.J_obj [ ("mst", H.json_of_timing mst_t); ("e2e", H.json_of_timing e2e_t) ] ))
            per_domain));
  H.note "wrote BENCH_scaling.json"
