(* The benchmark regression gate.

   Compares fresh [BENCH_*.json] reports (written by [main.exe]'s
   experiments through {!Report.write}) against the committed baselines in
   [bench/baselines/].  Every baseline metric that embeds a tolerance is
   gated: the fresh value must stay within that relative tolerance of the
   baseline in the metric's bad direction (improvements never fail, see
   {!Report.check_metric}).  Metrics without a tolerance — absolute wall
   times, anything machine-dependent — live in the reports but are never
   gated, so the gate holds on CI machines unlike the baseline host.

   Exit status: 0 when every gated metric of every baseline passes (or with
   [--update], always), 1 on any violation or missing fresh report, 2 on
   usage/IO errors.

     check.exe [--baselines DIR] [--fresh DIR] [--update]

   [--update] replaces each baseline with the corresponding fresh report
   (used to refresh baselines after an intentional performance change). *)

let baselines_dir = ref "bench/baselines"
let fresh_dir = ref "."
let update = ref false
let usage = "check.exe [--baselines DIR] [--fresh DIR] [--update]"

let spec =
  [
    ( "--baselines",
      Arg.Set_string baselines_dir,
      "DIR committed baseline reports (default bench/baselines)" );
    ("--fresh", Arg.Set_string fresh_dir, "DIR freshly produced reports (default .)");
    ("--update", Arg.Set update, " replace baselines with the fresh reports");
  ]

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

let is_report name =
  String.length name > 6
  && String.sub name 0 6 = "BENCH_"
  && Filename.check_suffix name ".json"

let reports_in what dir =
  match Sys.readdir dir with
  | entries ->
      let files = Array.to_list entries |> List.filter is_report |> List.sort compare in
      if files = [] then die "no BENCH_*.json %s under %s" what dir;
      files
  | exception Sys_error e -> die "cannot read %s directory: %s" what e

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc s;
  close_out oc

(* [--update] enumerates the *fresh* reports, so a first run seeds an
   empty baselines directory and new experiments join the gate. *)
let do_update () =
  if not (Sys.file_exists !baselines_dir) then Sys.mkdir !baselines_dir 0o755;
  List.iter
    (fun name ->
      copy_file (Filename.concat !fresh_dir name) (Filename.concat !baselines_dir name);
      Printf.printf "updated %s\n" name)
    (reports_in "fresh reports" !fresh_dir)

let fmt_value v =
  if Float.abs v >= 1e6 then Printf.sprintf "%.4g" v
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4f" v

(* Relative move of the fresh value against the baseline, signed so that
   positive means "toward the metric's bad direction". *)
let bad_delta (c : Report.check) =
  match c.Report.fresh with
  | None -> None
  | Some f ->
      let denom = if c.Report.baseline = 0. then 1. else Float.abs c.Report.baseline in
      let d = (f -. c.Report.baseline) /. denom in
      Some
        (match c.Report.m_direction with
        | Report.Lower_better -> d
        | Report.Higher_better -> -.d)

(* How far past the tolerance bound a failing gated metric landed, as a
   percentage of the baseline (None when passing or ungated). *)
let over_pct (c : Report.check) =
  match (bad_delta c, c.Report.m_tolerance) with
  | Some d, Some t when d > t -> Some (100. *. (d -. t))
  | _ -> None

let gate_of (c : Report.check) =
  match c.Report.m_tolerance with
  | None -> "-"
  | Some t ->
      Printf.sprintf "%.0f%% %s" (100. *. t)
        (match c.Report.m_direction with
        | Report.Lower_better -> "lower"
        | Report.Higher_better -> "higher")

let print_check (c : Report.check) =
  let delta =
    match bad_delta c with
    | None -> "-"
    | Some d ->
        (* sign restored to the metric's own axis for readability *)
        let raw = match c.Report.m_direction with Report.Lower_better -> d | _ -> -.d in
        Printf.sprintf "%+.1f%%" (100. *. raw)
  in
  let status =
    if c.Report.ok then "ok"
    else
      match over_pct c with
      | Some p -> Printf.sprintf "FAIL (%.1f%% over)" p
      | None -> "FAIL"
  in
  Printf.printf "  %-24s %14s %14s %9s %12s  %s\n" c.Report.metric_name
    (fmt_value c.Report.baseline)
    (match c.Report.fresh with Some f -> fmt_value f | None -> "MISSING")
    delta (gate_of c) status

(* Counters that must stay strictly positive: when a committed baseline
   carries one of these, the matching fresh counter must be > 0, or the
   code path it proves exercised (disk spilling) has silently stopped
   running. Tolerance-style gates cannot express "nonzero", hence the
   explicit rule. *)
let positive_counters = [ "sort.spill_bytes"; "sort.spill_runs" ]

let counter_of report name =
  match Report.member "counters" report with
  | Some (Report.J_obj kvs) -> (
      match List.assoc_opt name kvs with Some (Report.J_int v) -> Some v | _ -> None)
  | _ -> None

let check_positive_counters ~report_name ~baseline ~fresh violations =
  List.fold_left
    (fun failures name ->
      match counter_of baseline name with
      | None -> failures
      | Some _ -> (
          let fresh_v = counter_of fresh name in
          let ok = match fresh_v with Some v -> v > 0 | None -> false in
          Printf.printf "  %-24s %14s %14s %9s %12s  %s\n" name "(counter)"
            (match fresh_v with Some v -> string_of_int v | None -> "MISSING")
            "-" "> 0"
            (if ok then "ok" else "FAIL");
          if ok then failures
          else begin
            violations :=
              Printf.sprintf "%-28s %-24s fresh=%s violates > 0" report_name name
                (match fresh_v with Some v -> string_of_int v | None -> "MISSING")
              :: !violations;
            failures + 1
          end))
    0 positive_counters

(* The full diff table prints for every report, pass or fail; failures are
   additionally recapped in one block at the end so a red CI log leads
   with exactly which metrics moved, by how much, and past which bound. *)
let gate files =
  let failures = ref 0 in
  let violations = ref [] in
  List.iter
    (fun name ->
      let base_path = Filename.concat !baselines_dir name in
      let fresh_path = Filename.concat !fresh_dir name in
      let baseline =
        try Report.load base_path
        with e -> die "cannot parse baseline %s: %s" base_path (Printexc.to_string e)
      in
      Printf.printf "%s (%s)\n" name (Report.experiment_of baseline);
      Printf.printf "  %-24s %14s %14s %9s %12s\n" "metric" "baseline" "fresh" "delta"
        "tolerance";
      (if not (Sys.file_exists fresh_path) then (
         Printf.printf "  MISSING fresh report %s\n" fresh_path;
         violations := Printf.sprintf "%-28s missing fresh report" name :: !violations;
         incr failures)
       else
         let fresh =
           try Report.load fresh_path
           with e -> die "cannot parse fresh report %s: %s" fresh_path (Printexc.to_string e)
         in
         let checks = Report.compare_reports ~baseline ~fresh in
         List.iter print_check checks;
         List.iter
           (fun (c : Report.check) ->
             violations :=
               Printf.sprintf "%-28s %-24s baseline=%s fresh=%s%s (gate %s)" name
                 c.Report.metric_name (fmt_value c.Report.baseline)
                 (match c.Report.fresh with Some f -> fmt_value f | None -> "MISSING")
                 (match over_pct c with
                 | Some p -> Printf.sprintf ", %.1f%% over" p
                 | None -> "")
                 (gate_of c)
               :: !violations)
           (Report.violations checks);
         failures := !failures + List.length (Report.violations checks);
         failures := !failures + check_positive_counters ~report_name:name ~baseline ~fresh violations);
      print_newline ())
    files;
  if !failures > 0 then (
    Printf.printf "violations:\n";
    List.iter (fun line -> Printf.printf "  %s\n" line) (List.rev !violations);
    Printf.printf "%d gated metric(s) FAILED\n" !failures;
    exit 1)
  else Printf.printf "all gated metrics within tolerance\n"

let () =
  Arg.parse spec (fun a -> die "unexpected argument %s (%s)" a usage) usage;
  if !update then do_update () else gate (reports_in "baselines" !baselines_dir)
