(* The [spill] experiment: out-of-core execution under a hard memory
   ceiling.

   One window clause over 10x the sql-multiwindow row count, run three
   ways: ungoverned (the historical in-memory path), governed with no
   budget (to measure the accounted in-memory peak), and governed with a
   budget of a quarter of that peak — forcing the sort through spilled
   OVC run files and the rank item's merge sort trees through streamed
   construction.

   Correctness is a hard failure, checked before anything is timed: the
   capped run must produce bit-identical columns (floats compared by
   bits) and identical plan statistics, it must actually have spilled,
   and its accounted peak must stay under the ceiling. The gated metrics
   hold the spill volume and the accounted peaks; bench/check.ml
   additionally refuses a fresh report whose [sort.spill_bytes] counter
   has gone to zero, so the out-of-core path cannot silently stop being
   exercised. *)

open Holistic_storage
open Holistic_window
module Wf = Window_func
module Rng = Holistic_util.Rng
module H = Harness
module Task_pool = Holistic_parallel.Task_pool
module Obs = Holistic_obs.Obs

let make_table rng ~rows ~partitions =
  let grp = Array.init rows (fun _ -> Rng.int rng partitions) in
  let shuffled = Array.init rows (fun i -> i) in
  for i = rows - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = shuffled.(i) in
    shuffled.(i) <- shuffled.(j);
    shuffled.(j) <- t
  done;
  let x = Array.init rows (fun _ -> Rng.float rng 1000.) in
  Table.create
    [ ("grp", Column.ints grp); ("k", Column.ints shuffled); ("x", Column.floats x) ]

(* One shared sort (partition ids + [k] pack into a single key word, the
   cheapest case for the in-memory path and therefore the tightest
   ceiling for the spilled one), a frame deep enough that the rank item
   keeps its merge sort tree busy. *)
let clauses () =
  let back n = Window_spec.rows_between (Window_spec.preceding n) Window_spec.Current_row in
  [
    {
      Window_plan.spec =
        Window_spec.over
          ~partition_by:[ Expr.Col "grp" ]
          ~order_by:[ Sort_spec.asc (Expr.Col "k") ]
          ~frame:(back 999) ();
      items =
        [
          Wf.sum ~name:"s" (Expr.Col "x");
          Wf.rank ~algorithm:Wf.Mst ~name:"r" [ Sort_spec.asc (Expr.Col "x") ];
        ];
    };
  ]

let check_bits_identical ~expected ~actual n =
  List.iter
    (fun name ->
      let ec = Table.column expected name and ac = Table.column actual name in
      for i = 0 to n - 1 do
        let e = Column.get ec i and a = Column.get ac i in
        let same =
          match (e, a) with
          | Value.Float x, Value.Float y ->
              Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
          | _ -> compare e a = 0
        in
        if not same then
          failwith
            (Printf.sprintf "spill parity: column %s row %d: in-memory %s <> capped %s" name i
               (Value.to_string e) (Value.to_string a))
      done)
    [ "s"; "r" ]

let run ~rows () =
  H.section "spill: out-of-core execution under a quarter of the in-memory peak";
  let partitions = max 8 (rows / 4_000) in
  let rng = Rng.create 42 in
  let table = make_table rng ~rows ~partitions in
  let cs = clauses () in
  (* >= 2 domains so the governed in-memory path charges the run/merge
     split's scratch: the peak — and hence the ceiling — is then the
     same on every host *)
  let pool = Task_pool.create 2 in
  Fun.protect ~finally:(fun () -> Task_pool.shutdown pool) @@ fun () ->
  H.note "%d rows, %d partitions, 1 OVER clause (sum + MST rank), 2-domain pool" rows partitions;
  (* 1. the accounted in-memory peak, from a budget-less observing governor *)
  let observe = Mem_governor.create ~dir:(H.scratch_dir ()) () in
  let mem_out, mem_stats = Window_plan.run_with_stats ~pool ~governor:observe table cs in
  let peak = Mem_governor.peak observe in
  let observe_spills, _ = Mem_governor.totals observe in
  Mem_governor.cleanup observe;
  if observe_spills <> 0 then failwith "spill: budget-less governor spilled";
  let ceiling = peak / 4 in
  H.note "accounted in-memory peak %s; ceiling %s (peak/4)" (Obs.human_bytes peak)
    (Obs.human_bytes ceiling);
  (* 2. the capped run: bit-identical output, identical plan stats, real
     spilling, peak under the ceiling — all before any timing *)
  let gov = Mem_governor.create ~budget:ceiling ~dir:(H.scratch_dir ()) () in
  let cap_out, cap_stats = Window_plan.run_with_stats ~pool ~governor:gov table cs in
  let spill_runs, spill_bytes = Mem_governor.totals gov in
  let cap_peak = Mem_governor.peak gov in
  Mem_governor.cleanup gov;
  check_bits_identical ~expected:mem_out ~actual:cap_out rows;
  if cap_stats <> mem_stats then failwith "spill: capped run changed the plan statistics";
  if spill_bytes = 0 then failwith "spill: capped run did not spill";
  if cap_peak > ceiling then
    failwith
      (Printf.sprintf "spill: capped run peaked at %s over the %s ceiling"
         (Obs.human_bytes cap_peak) (Obs.human_bytes ceiling));
  H.note "parity: capped output bit-identical, plan stats unchanged";
  H.note "spilled %d runs, %s; capped peak %s (%.1f%% of in-memory)" spill_runs
    (Obs.human_bytes spill_bytes) (Obs.human_bytes cap_peak)
    (100. *. float_of_int cap_peak /. float_of_int peak);
  (* 3. wall clock: ungoverned in-memory vs capped *)
  H.gc_settle ();
  let mem_t = H.time_best ~hist:"bench.spill_mem_ns" ~reps:3 (fun () -> Window_plan.run ~pool table cs) in
  H.gc_settle ();
  let cap_t =
    H.time_best ~hist:"bench.spill_cap_ns" ~reps:3 (fun () ->
        let g = Mem_governor.create ~budget:ceiling ~dir:(H.scratch_dir ()) () in
        Fun.protect
          ~finally:(fun () -> Mem_governor.cleanup g)
          (fun () -> Window_plan.run ~pool ~governor:g table cs))
  in
  let mem_s = mem_t.H.best and cap_s = cap_t.H.best in
  let slowdown = cap_s /. mem_s in
  H.print_table ~header:[ "path"; "seconds"; "mean±sd"; "vs in-memory" ]
    ~rows:
      [
        [
          "in-memory (no governor)";
          Printf.sprintf "%.3f" mem_s;
          Printf.sprintf "%.3f±%.3f" mem_t.H.mean mem_t.H.stddev;
          "1.00x";
        ];
        [
          "capped (peak/4 budget)";
          Printf.sprintf "%.3f" cap_s;
          Printf.sprintf "%.3f±%.3f" cap_t.H.mean cap_t.H.stddev;
          Printf.sprintf "%.2fx" slowdown;
        ];
      ];
  Report.write "BENCH_spill.json" ~experiment:"spill"
    ~params:
      [
        ("rows", H.J_int rows);
        ("partitions", H.J_int partitions);
        ("ceiling_bytes", H.J_int ceiling);
      ]
    ~metrics:
      [
        (* gated: the accounting and the spill volume are deterministic
           for a given (rows, pool) pair *)
        ("peak_bytes", Report.metric ~unit_:"B" ~tolerance:0.25 (float_of_int peak));
        ("capped_peak_bytes", Report.metric ~unit_:"B" ~tolerance:0.25 (float_of_int cap_peak));
        ("spill_bytes", Report.metric ~unit_:"B" ~tolerance:0.25 (float_of_int spill_bytes));
        ("spill_runs", Report.metric ~tolerance:0.25 (float_of_int spill_runs));
        (* report-only: wall times and their ratio are machine-dependent *)
        ("mem_s", Report.metric ~unit_:"s" mem_s);
        ("capped_s", Report.metric ~unit_:"s" cap_s);
        ("slowdown", Report.metric ~unit_:"x" slowdown);
      ]
    ~counters:
      [
        (* bench/check.ml refuses a fresh report where these are zero *)
        ("sort.spill_bytes", spill_bytes);
        ("sort.spill_runs", spill_runs);
      ]
    ~histograms:(Obs.Histogram.snapshot ())
    ~series:
      (H.J_obj
         [ ("in_memory", H.json_of_timing mem_t); ("capped", H.json_of_timing cap_t) ]);
  H.note "wrote BENCH_spill.json"
