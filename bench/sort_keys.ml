(* The [sort-keys] experiment: the compiled normalized-key sort (key codec +
   offset-value coded merge) against the boxed-comparator baseline it
   replaced, on the partitioned multi-column sort every window query pays
   first.

   Parity is a hard failure before anything is timed: both paths must
   produce the identical permutation (the codec's contract is exactness,
   not approximation). The speedup floor is asserted even at smoke sizes,
   so CI exercises the whole codec/OVC path deterministically. *)

open Holistic_storage
module Rng = Holistic_util.Rng
module Task_pool = Holistic_parallel.Task_pool
module Introsort = Holistic_sort.Introsort
module Parallel_sort = Holistic_sort.Parallel_sort
module Multiway = Holistic_sort.Multiway
module H = Harness

let make_table rng ~rows ~partitions =
  (* an id-like int key, a measure, and a categorical string: the typical
     composite ORDER BY of a window query *)
  let k = Array.init rows (fun _ -> Rng.int rng 1_000_000) in
  let x = Array.init rows (fun _ -> Rng.float rng 1_000.) in
  let s = Array.init rows (fun _ -> Printf.sprintf "cat-%03d" (Rng.int rng 1_000)) in
  let pids = Array.init rows (fun _ -> Rng.int rng partitions) in
  (Table.create [ ("k", Column.ints k); ("x", Column.floats x); ("s", Column.strings s) ], pids)

let spec =
  [ Sort_spec.asc (Expr.Col "k"); Sort_spec.desc (Expr.Col "x"); Sort_spec.asc (Expr.Col "s") ]

let run ~rows () =
  H.section "sort-keys: normalized-key + OVC sort vs boxed comparator sort";
  (* a previous experiment in the same process may have left histograms *)
  Holistic_obs.Obs.Histogram.reset_all ();
  let partitions = max 8 (rows / 10_000) in
  let rng = Rng.create 2022 in
  let table, pids = make_table rng ~rows ~partitions in
  H.note "%d rows, %d partitions, ORDER BY k ASC, x DESC, s ASC (int, float, string)" rows
    partitions;
  let pool = Task_pool.create 1 (* the acceptance claim is per-core, not parallel *) in
  let comparator_sort () =
    let cmp = Sort_spec.comparator table spec in
    Introsort.sort_indices_by rows ~cmp:(fun i j ->
        let c = Int.compare pids.(i) pids.(j) in
        if c <> 0 then c else cmp i j)
  in
  let encoded_sort ?task_size () =
    let kc = Key_codec.compile ~pids table spec in
    Parallel_sort.sort_encoded pool ?task_size ~n:rows ~words:kc.Key_codec.words
      ?tie:kc.Key_codec.residual ()
  in
  (* parity before timing: the encoded permutation must be *identical* to
     the stable comparator sort's *)
  let kc = Key_codec.compile ~pids table spec in
  if kc.Key_codec.residual <> None then failwith "sort-keys: spec should compile fully into words";
  H.note "codec: %d word(s), %d/%d keys covered, residual: none" (Array.length kc.Key_codec.words)
    kc.Key_codec.covered kc.Key_codec.total;
  let expect = comparator_sort () in
  let perm, _ = encoded_sort () in
  if expect <> perm then failwith "sort-keys parity: encoded sort diverged from comparator sort";
  H.note "parity: identical permutation on both paths";
  H.gc_settle ();
  let comparator_t = H.time_best ~hist:"bench.comparator_ns" ~reps:3 (fun () -> ignore (comparator_sort ())) in
  H.gc_settle ();
  let encoded_t = H.time_best ~hist:"bench.encoded_ns" ~reps:3 (fun () -> ignore (encoded_sort ())) in
  (* same sort again, but forced through run formation and the OVC
     loser-tree merge (a single-domain pool otherwise sorts in one run):
     measures the merge's overhead and its code-decided comparison share *)
  H.gc_settle ();
  Multiway.reset_ovc_stats ();
  let merge_task = max 1_000 (rows / 64) in
  let merged_t = H.time_best ~reps:3 (fun () -> ignore (encoded_sort ~task_size:merge_task ())) in
  let ovc_decided, ovc_scanned = Multiway.ovc_stats () in
  let comparator_s = comparator_t.H.best
  and encoded_s = encoded_t.H.best
  and merged_s = merged_t.H.best in
  let speedup = comparator_s /. encoded_s in
  let merged_speedup = comparator_s /. merged_s in
  H.print_table ~header:[ "path"; "seconds"; "mean±sd"; "speedup" ]
    ~rows:
      [
        [
          "comparator (boxed, closure cmp)";
          Printf.sprintf "%.3f" comparator_s;
          Printf.sprintf "%.3f±%.3f" comparator_t.H.mean comparator_t.H.stddev;
          "1.00x";
        ];
        [
          "key codec, single run";
          Printf.sprintf "%.3f" encoded_s;
          Printf.sprintf "%.3f±%.3f" encoded_t.H.mean encoded_t.H.stddev;
          Printf.sprintf "%.2fx" speedup;
        ];
        [
          "key codec, 64-run OVC merge";
          Printf.sprintf "%.3f" merged_s;
          Printf.sprintf "%.3f±%.3f" merged_t.H.mean merged_t.H.stddev;
          Printf.sprintf "%.2fx" merged_speedup;
        ];
      ];
  H.note "ovc merge: %d comparisons code-decided, %d deep scans (over 3 reps)" ovc_decided
    ovc_scanned;
  if ovc_decided = 0 then failwith "sort-keys: forced merge never exercised offset-value codes";
  if speedup < 1.5 then
    failwith (Printf.sprintf "sort-keys: speedup %.2fx below the 1.5x floor" speedup);
  Report.write "BENCH_sort_ovc.json" ~experiment:"sort-keys"
    ~params:
      [
        ("rows", H.J_int rows);
        ("partitions", H.J_int partitions);
        ("total_keys", H.J_int kc.Key_codec.total);
      ]
    ~metrics:
      [
        (* gated: ratios and the codec's structural outcome *)
        ("speedup", Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.4 speedup);
        ( "merged_speedup",
          Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.4 merged_speedup );
        ("words", Report.metric ~tolerance:0.01 (float_of_int (Array.length kc.Key_codec.words)));
        ("covered_keys", Report.metric ~tolerance:0.01 ~direction:Report.Higher_better
             (float_of_int kc.Key_codec.covered));
        (* report-only absolute times *)
        ("comparator_s", Report.metric ~unit_:"s" comparator_s);
        ("encoded_s", Report.metric ~unit_:"s" encoded_s);
        ("encoded_merge_s", Report.metric ~unit_:"s" merged_s);
      ]
    ~counters:[ ("ovc.decided", ovc_decided); ("ovc.scanned", ovc_scanned) ]
    ~histograms:(Holistic_obs.Obs.Histogram.snapshot ())
    ~series:
      (H.J_obj
         [
           ("comparator", H.json_of_timing comparator_t);
           ("encoded", H.json_of_timing encoded_t);
           ("merged", H.json_of_timing merged_t);
         ]);
  H.note "wrote BENCH_sort_ovc.json";
  Task_pool.shutdown pool
