(* One experiment per table/figure of the paper's evaluation (§6). Every
   experiment prints the series the corresponding plot shows; EXPERIMENTS.md
   records paper-vs-measured. *)

open Holistic_storage
open Holistic_window
module Wf = Window_func
module Mst = Holistic_core.Mst
module Tpch = Holistic_data.Tpch
module Scenarios = Holistic_data.Scenarios
module H = Harness

let trailing_rows_frame w =
  Window_spec.rows_between (Window_spec.preceding w) Window_spec.Current_row

let ship_order = [ Sort_spec.asc (Expr.Col "l_shipdate") ]
let price_order = [ Sort_spec.asc (Expr.Col "l_extendedprice") ]

let over_ship frame = Window_spec.over ~order_by:ship_order ~frame ()

let run_one table over item = H.time (fun () -> ignore (Executor.run table ~over [ item ]))

(* ------------------------------------------------------------------ *)
(* Fig. 9 — necessity of native support (20 000 rows, 1000-row frame)  *)
(* ------------------------------------------------------------------ *)

let fig9 ~rows () =
  H.section (Printf.sprintf "Figure 9: framed median, traditional SQL vs native (n=%d)" rows);
  let table = Tpch.lineitem ~rows () in
  let prices = Sql_formulations.prepare table in
  let frame_rows = 1000 in
  let expect = Sql_formulations.oracle prices ~frame_rows in
  let checked name out = if out <> expect then failwith (name ^ ": wrong results") in
  let t_sub =
    H.time (fun () -> checked "subquery" (Sql_formulations.correlated_subquery prices ~frame_rows))
  in
  let t_join =
    H.time (fun () -> checked "self-join" (Sql_formulations.self_join prices ~frame_rows))
  in
  let t_client =
    H.time (fun () -> checked "client" (Sql_formulations.client_side prices ~frame_rows))
  in
  let over = over_ship (trailing_rows_frame (frame_rows - 1)) in
  let med alg = Wf.median ~algorithm:alg ~name:"m" (Expr.Col "l_extendedprice") in
  let t_naive = run_one table over (med Wf.Naive) in
  let t_mst = run_one table over (med Wf.Mst) in
  let tput t = Printf.sprintf "%.3g" (float_of_int rows /. t /. 1e6) in
  H.print_table
    ~header:[ "evaluation strategy"; "seconds"; "M tuples/s" ]
    ~rows:
      [
        [ "correlated subquery (SQL)"; Printf.sprintf "%.3f" t_sub; tput t_sub ];
        [ "self-join (SQL)"; Printf.sprintf "%.3f" t_join; tput t_join ];
        [ "client-side (Tableau-style)"; Printf.sprintf "%.3f" t_client; tput t_client ];
        [ "native, naive algorithm"; Printf.sprintf "%.3f" t_naive; tput t_naive ];
        [ "native, merge sort tree"; Printf.sprintf "%.3f" t_mst; tput t_mst ];
      ];
  let best_sql = min t_sub t_join in
  H.note "naive vs client-side: %.1fx   naive vs best SQL: %.1fx   MST vs best SQL: %.1fx"
    (t_client /. t_naive) (best_sql /. t_naive) (best_sql /. t_mst);
  H.note "(paper: 15x, 3x and 63x on Hyper/DuckDB/PostgreSQL/Tableau)"

(* ------------------------------------------------------------------ *)
(* Fig. 10 — throughput vs input size, four functions                  *)
(* ------------------------------------------------------------------ *)

let fig10_sizes scale =
  List.filter_map
    (fun n ->
      let n = int_of_float (float_of_int n *. scale) in
      if n >= 1000 then Some n else None)
    [ 10_000; 20_000; 50_000; 100_000; 200_000; 400_000 ]

let algorithms_for = function
  | `Median -> [ ("mst", Wf.Mst); ("ost", Wf.Order_statistic); ("incremental", Wf.Incremental);
                 ("incr-serial", Wf.Incremental_serial); ("naive", Wf.Naive) ]
  | `Rank -> [ ("mst", Wf.Mst); ("ost", Wf.Order_statistic); ("naive", Wf.Naive) ]
  | `Lead -> [ ("mst", Wf.Mst); ("incremental", Wf.Incremental); ("naive", Wf.Naive) ]
  | `Distinct -> [ ("mst", Wf.Mst); ("incremental", Wf.Incremental);
                   ("incr-serial", Wf.Incremental_serial); ("naive", Wf.Naive) ]

let item_for fn alg =
  match fn with
  | `Median -> Wf.median ~algorithm:alg ~name:"x" (Expr.Col "l_extendedprice")
  | `Rank -> Wf.rank ~algorithm:alg ~name:"x" price_order
  | `Lead -> Wf.lead ~algorithm:alg ~order:price_order ~name:"x" (Expr.Col "l_extendedprice")
  | `Distinct -> Wf.count ~algorithm:alg ~distinct:true ~name:"x" (Expr.Col "l_partkey")

let fn_name = function
  | `Median -> "median"
  | `Rank -> "rank"
  | `Lead -> "lead"
  | `Distinct -> "distinct count"

let fig10 ~scale () =
  let sizes = fig10_sizes scale in
  List.iter
    (fun fn ->
      H.section
        (Printf.sprintf "Figure 10 (%s): throughput [M tuples/s] vs input size, frame = 5%%"
           (fn_name fn));
      let tables = List.map (fun n -> (n, Tpch.lineitem ~rows:n ())) sizes in
      let rows =
        List.map
          (fun (name, alg) ->
            let series =
              H.sweep ~points:tables ~run:(fun (n, table) ->
                  let over = over_ship (trailing_rows_frame (max 1 (n / 20))) in
                  run_one table over (item_for fn alg))
            in
            name :: List.map (fun ((n, _), o) -> H.throughput_cell ~n o) series)
          (algorithms_for fn)
      in
      H.print_table ~header:("algorithm" :: List.map (fun n -> string_of_int n) sizes) ~rows)
    [ `Median; `Rank; `Lead; `Distinct ]

(* ------------------------------------------------------------------ *)
(* Fig. 11 — throughput vs frame size                                  *)
(* ------------------------------------------------------------------ *)

let fig11 ~rows () =
  H.section (Printf.sprintf "Figure 11: framed median throughput [M tuples/s] vs frame size (n=%d)" rows);
  let table = Tpch.lineitem ~rows () in
  let frames =
    List.filter (fun w -> w < rows) [ 10; 30; 100; 300; 1_000; 3_000; 10_000; 30_000; 100_000 ]
    @ [ rows ] (* SQL's default frame: unbounded preceding .. current row *)
  in
  let algos =
    [ ("mst", Wf.Mst); ("ost", Wf.Order_statistic); ("incremental", Wf.Incremental);
      ("incr-serial", Wf.Incremental_serial); ("naive", Wf.Naive) ]
  in
  let out_rows =
    List.map
      (fun (name, alg) ->
        let series =
          H.sweep ~points:frames ~run:(fun w ->
              let frame =
                if w = rows then
                  Window_spec.rows_between Window_spec.Unbounded_preceding Window_spec.Current_row
                else trailing_rows_frame w
              in
              run_one table (over_ship frame) (item_for `Median alg))
        in
        name :: List.map (fun (_, o) -> H.throughput_cell ~n:rows o) series)
      algos
  in
  let headers =
    "algorithm" :: List.map (fun w -> if w = rows then "default" else string_of_int w) frames
  in
  H.print_table ~header:headers ~rows:out_rows;
  H.note "(paper: crossovers vs MST at ~130 naive, ~700 incremental, ~20000 OST; MST flat)"

(* Same sweep for the other window functions (paper §6.4 'we also executed
   this experiment for all other window functions'). *)
let fig11_all ~rows () =
  let table = Tpch.lineitem ~rows () in
  let frames = List.filter (fun w -> w < rows) [ 30; 300; 3_000; 30_000 ] in
  List.iter
    (fun fn ->
      H.section
        (Printf.sprintf "Figure 11 extension (%s): throughput vs frame size (n=%d)" (fn_name fn)
           rows);
      let out_rows =
        List.map
          (fun (name, alg) ->
            let series =
              H.sweep ~points:frames ~run:(fun w ->
                  run_one table (over_ship (trailing_rows_frame w)) (item_for fn alg))
            in
            name :: List.map (fun (_, o) -> H.throughput_cell ~n:rows o) series)
          (algorithms_for fn)
      in
      H.print_table ~header:("algorithm" :: List.map string_of_int frames) ~rows:out_rows)
    [ `Rank; `Lead; `Distinct ]

(* ------------------------------------------------------------------ *)
(* Fig. 12 — non-monotonic frames                                      *)
(* ------------------------------------------------------------------ *)

let fig12 ~rows () =
  H.section (Printf.sprintf "Figure 12: framed median throughput vs non-monotonicity (n=%d)" rows);
  let table = Tpch.lineitem ~rows () in
  let ms = [ 0.0; 0.0625; 0.125; 0.25; 0.5; 1.0 ] in
  (* the paper's pseudo-random bounds: m*mod(price*7703, 499) preceding and
     500 - m*mod(price*7703, 499) following, precomputed as int columns *)
  let price =
    match Column.data (Table.column table "l_extendedprice") with
    | Column.Floats p -> p
    | _ -> assert false
  in
  let with_bounds m =
    let jitter i = int_of_float (m *. float_of_int (int_of_float (price.(i) *. 100.0) * 7703 mod 499)) in
    let pre = Array.init rows jitter in
    let fol = Array.init rows (fun i -> 500 - jitter i) in
    let t = Table.add_column table "pre" (Column.ints pre) in
    Table.add_column t "fol" (Column.ints fol)
  in
  let algos =
    [ ("mst", Wf.Mst); ("incremental", Wf.Incremental); ("incr-serial", Wf.Incremental_serial);
      ("naive", Wf.Naive) ]
  in
  let tables = List.map (fun m -> (m, with_bounds m)) ms in
  let out_rows =
    List.map
      (fun (name, alg) ->
        let series =
          H.sweep ~points:tables ~run:(fun (_, t) ->
              let frame =
                Window_spec.rows_between
                  (Window_spec.Preceding (Expr.Col "pre"))
                  (Window_spec.Following (Expr.Col "fol"))
              in
              run_one t (over_ship frame) (item_for `Median alg))
        in
        name :: List.map (fun (_, o) -> H.throughput_cell ~n:rows o) series)
      algos
  in
  H.print_table
    ~header:("algorithm" :: List.map (fun m -> Printf.sprintf "m=%g" m) ms)
    ~rows:out_rows;
  H.note "(paper: incremental loses to MST at any m > 0 and falls below naive as m grows)"

(* ------------------------------------------------------------------ *)
(* Fig. 13 — fanout and pointer sampling grid                          *)
(* ------------------------------------------------------------------ *)

let fig13 ~rows () =
  H.section
    (Printf.sprintf "Figure 13: windowed rank, build+probe seconds by fanout x sampling (n=%d)"
       rows);
  let keys = Scenarios.uniform_ints ~n:rows ~bound:rows () in
  let w = max 1 (rows / 20) in
  let fanouts = [ 2; 4; 8; 16; 32; 64; 128; 256 ] in
  let samples = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ] in
  let cell f k =
    H.gc_settle ();
    H.time (fun () ->
        let t = Mst.create ~fanout:f ~sample:k keys in
        let acc = ref 0 in
        for i = 0 to rows - 1 do
          acc := !acc + Mst.count t ~lo:(max 0 (i - w)) ~hi:(i + 1) ~less_than:keys.(i)
        done;
        !acc)
  in
  let grid = List.map (fun f -> (f, List.map (fun k -> cell f k) samples)) fanouts in
  let best = List.fold_left (fun acc (_, row) -> List.fold_left min acc row) infinity grid in
  H.print_table
    ~header:("fanout\\k" :: List.map string_of_int samples)
    ~rows:
      (List.map
         (fun (f, row) ->
           string_of_int f :: List.map (fun t -> Printf.sprintf "%.2f" (t /. best)) row)
         grid);
  H.note "relative to the best cell (= 1.00, best absolute %.3f s); paper's default f=k=32" best

(* ------------------------------------------------------------------ *)
(* §6.6 — memory consumption                                           *)
(* ------------------------------------------------------------------ *)

let mem ~rows () =
  H.section "Memory (paper 6.6): merge sort tree footprint";
  (* closed-form at the paper's 100M rows *)
  let paper_n = 100_000_000 in
  let gb elems bytes_per = float_of_int elems *. float_of_int bytes_per /. 1e9 in
  let formula f k =
    let e = Mst.element_count_formula ~n:paper_n ~fanout:f ~sample:k in
    (e, gb e 8, gb e 4)
  in
  let e1, f1_64, f1_32 = formula 16 4 in
  let e2, f2_64, f2_32 = formula 32 32 in
  H.print_table
    ~header:[ "config"; "elements@100M"; "GB (64-bit)"; "GB (32-bit)" ]
    ~rows:
      [
        [ "f=16, k=4"; string_of_int e1; Printf.sprintf "%.1f" f1_64; Printf.sprintf "%.1f" f1_32 ];
        [ "f=32, k=32"; string_of_int e2; Printf.sprintf "%.1f" f2_64; Printf.sprintf "%.1f" f2_32 ];
      ];
  H.note "(paper measured 12.4 GB for f=16,k=4 and 4.4 GB for f=k=32 at 100M rows)";
  (* measured at bench scale *)
  let keys = Scenarios.uniform_ints ~n:rows ~bound:rows () in
  let measured =
    List.map
      (fun (f, k) ->
        let t = Mst.create ~fanout:f ~sample:k keys in
        let s = Mst.stats t in
        let bytes = s.Mst.heap_bytes in
        [
          Printf.sprintf "f=%d, k=%d" f k;
          string_of_int (s.Mst.level_elements + s.Mst.cursor_elements);
          Printf.sprintf "%.1f MB" (float_of_int bytes /. 1e6);
          Printf.sprintf "%.2fx" (float_of_int bytes /. (16.0 *. float_of_int rows));
        ])
      [ (16, 4); (32, 32); (64, 64); (4, 4) ]
  in
  H.section (Printf.sprintf "Measured tree sizes at n=%d (overhead vs 16 B/row operator state)" rows);
  H.print_table ~header:[ "config"; "elements"; "bytes"; "overhead" ] ~rows:measured

(* ------------------------------------------------------------------ *)
(* Table 1 — empirical scaling exponents                                *)
(* ------------------------------------------------------------------ *)

let table1 ~base () =
  H.section "Table 1: measured scaling exponents (runtime ~ n^e, SQL default frame)";
  let sizes = [ base; base * 2; base * 4; base * 8 ] in
  let default_frame =
    Window_spec.rows_between Window_spec.Unbounded_preceding Window_spec.Current_row
  in
  let cases =
    [
      ("distinct count, incremental serial", item_for `Distinct Wf.Incremental_serial, "O(n)", 1.0);
      ("distinct count, MST", item_for `Distinct Wf.Mst, "O(n log n)", 1.0);
      ("percentile, incremental serial", item_for `Median Wf.Incremental_serial, "O(n^2)", 2.0);
      ("percentile, naive", item_for `Median Wf.Naive, "O(n^2)", 2.0);
      ("percentile, MST", item_for `Median Wf.Mst, "O(n log n)", 1.0);
      ("rank, MST", item_for `Rank Wf.Mst, "O(n log n)", 1.0);
    ]
  in
  let rows_out =
    List.map
      (fun (name, item, claimed, _) ->
        let times =
          List.map
            (fun n ->
              let table = Tpch.lineitem ~rows:n () in
              (H.time_best ~reps:2 (fun () ->
                   ignore (Executor.run table ~over:(over_ship default_frame) [ item ])))
                .H.best)
            sizes
        in
        (* least-squares slope of log t over log n *)
        let logs = List.map2 (fun n t -> (log (float_of_int n), log t)) sizes times in
        let k = float_of_int (List.length logs) in
        let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 logs in
        let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 logs in
        let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 logs in
        let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 logs in
        let slope = ((k *. sxy) -. (sx *. sy)) /. ((k *. sxx) -. (sx *. sx)) in
        name :: claimed :: Printf.sprintf "%.2f" slope
        :: List.map (fun t -> Printf.sprintf "%.3f" t) times)
      cases
  in
  H.print_table
    ~header:
      ([ "algorithm"; "claimed"; "measured e" ] @ List.map (fun n -> string_of_int n ^ " s") sizes)
    ~rows:rows_out;
  H.note "n log n fits measure as exponents slightly above 1; quadratic algorithms near 2"

(* ------------------------------------------------------------------ *)
(* Extension: framed DENSE_RANK via range trees (§4.4)                 *)
(* ------------------------------------------------------------------ *)

let ext_dense_rank ~scale () =
  H.section "Extension: framed DENSE_RANK, range tree vs naive (paper 4.4)";
  let sizes = List.map (fun n -> int_of_float (float_of_int n *. scale)) [ 5_000; 10_000; 20_000; 50_000; 100_000 ] in
  let item alg = Wf.dense_rank ~algorithm:alg ~name:"x" price_order in
  let tables = List.map (fun n -> (n, Tpch.lineitem ~rows:n ())) sizes in
  let rows_out =
    List.map
      (fun (name, alg) ->
        let series =
          H.sweep ~points:tables ~run:(fun (n, table) ->
              let over = over_ship (trailing_rows_frame (max 1 (n / 20))) in
              run_one table over (item alg))
        in
        name :: List.map (fun ((n, _), o) -> H.throughput_cell ~n o) series)
      [ ("range-tree", Wf.Auto); ("naive", Wf.Naive) ]
  in
  H.print_table ~header:("algorithm" :: List.map (fun (n, _) -> string_of_int n) tables) ~rows:rows_out;
  H.note "O(n (log n)^2) time and space: flat-ish throughput, heavier than the 2-d MST functions"

(* ------------------------------------------------------------------ *)
(* Pre-flight cross-validation                                         *)
(* ------------------------------------------------------------------ *)

(* Before sweeping, verify on a small instance that every algorithm under
   measurement computes identical results — a benchmark of wrong answers is
   worthless. Runs in milliseconds. *)
let preflight () =
  H.section "Pre-flight: cross-validating all algorithms on a 3000-row instance";
  let table = Tpch.lineitem ~rows:3_000 () in
  let over = over_ship (trailing_rows_frame 150) in
  let check fn algs =
    let reference = Executor.run table ~over [ item_for fn Wf.Naive ] in
    let ref_col = Table.column reference "x" in
    List.iter
      (fun alg ->
        let got = Table.column (Executor.run table ~over [ item_for fn alg ]) "x" in
        for i = 0 to Table.nrows table - 1 do
          let a = Column.get ref_col i and b = Column.get got i in
          if not (Value.equal a b || (Value.is_null a && Value.is_null b)) then
            failwith (Printf.sprintf "preflight: %s disagrees with naive at row %d" (fn_name fn) i)
        done)
      algs
  in
  check `Median [ Wf.Mst; Wf.Mst_no_cascade; Wf.Order_statistic; Wf.Incremental; Wf.Incremental_serial ];
  check `Rank [ Wf.Mst; Wf.Order_statistic ];
  check `Lead [ Wf.Mst; Wf.Incremental ];
  check `Distinct [ Wf.Mst; Wf.Incremental; Wf.Incremental_serial ];
  H.note "all algorithms agree"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_cascade ~rows () =
  H.section
    (Printf.sprintf
       "Ablation: fractional cascading on/off (MST vs segment-tree-of-sorted-lists, n=%d)" rows);
  let table = Tpch.lineitem ~rows () in
  let over = over_ship (trailing_rows_frame (max 1 (rows / 20))) in
  let cases = [ (`Median, "median"); (`Rank, "rank"); (`Distinct, "distinct count") ] in
  H.print_table
    ~header:[ "function"; "cascade s"; "no-cascade s"; "speedup" ]
    ~rows:
      (List.map
         (fun (fn, name) ->
           let t_on = run_one table over (item_for fn Wf.Mst) in
           let t_off = run_one table over (item_for fn Wf.Mst_no_cascade) in
           [
             name;
             Printf.sprintf "%.3f" t_on;
             Printf.sprintf "%.3f" t_off;
             Printf.sprintf "%.2fx" (t_off /. t_on);
           ])
         cases)

(* isolated raw-tree count probes at a depth where the cascade matters *)
let ablation_cascade_raw ~rows () =
  let n = 8 * rows in
  H.section (Printf.sprintf "Ablation: cascading, isolated count probes (n=%d)" n);
  let keys = Scenarios.uniform_ints ~n ~bound:n () in
  let w = n / 20 in
  let probe t =
    H.gc_settle ();
    H.time (fun () ->
        let acc = ref 0 in
        for i = 0 to n - 1 do
          acc := !acc + Mst.count t ~lo:(max 0 (i - w)) ~hi:(i + 1) ~less_than:keys.(i)
        done;
        !acc)
  in
  let t_on = probe (Mst.create keys) in
  let t_off = probe (Mst.create ~sample:0 keys) in
  H.print_table
    ~header:[ "cascading"; "probe s"; "M probes/s" ]
    ~rows:
      [
        [ "on (k=32)"; Printf.sprintf "%.3f" t_on; Printf.sprintf "%.3g" (float_of_int n /. t_on /. 1e6) ];
        [ "off"; Printf.sprintf "%.3f" t_off; Printf.sprintf "%.3g" (float_of_int n /. t_off /. 1e6) ];
      ];
  H.note "speedup from cascading: %.2fx (grows with tree depth)" (t_off /. t_on)

let ablation_store ~rows () =
  H.section
    (Printf.sprintf "Ablation: 64-bit vs 32-bit tree storage (rank probes, n=%d)" rows);
  let keys = Scenarios.uniform_ints ~n:rows ~bound:rows () in
  let w = max 1 (rows / 20) in
  let tree = Mst.create keys in
  let compact = Holistic_core.Mst_compact.of_mst tree in
  let probe_full () =
    let acc = ref 0 in
    for i = 0 to rows - 1 do
      acc := !acc + Mst.count tree ~lo:(max 0 (i - w)) ~hi:(i + 1) ~less_than:keys.(i)
    done;
    !acc
  in
  let probe_compact () =
    let acc = ref 0 in
    for i = 0 to rows - 1 do
      acc :=
        !acc
        + Holistic_core.Mst_compact.count compact ~lo:(max 0 (i - w)) ~hi:(i + 1)
            ~less_than:keys.(i)
    done;
    !acc
  in
  if probe_full () <> probe_compact () then failwith "storage ablation: results diverge";
  let t64 = (H.time_best ~reps:2 probe_full).H.best in
  let t32 = (H.time_best ~reps:2 probe_compact).H.best in
  H.print_table
    ~header:[ "storage"; "bytes"; "probe s"; "M probes/s" ]
    ~rows:
      [
        [
          "64-bit (int array)";
          Printf.sprintf "%.1f MB" (float_of_int (Mst.stats tree).Mst.heap_bytes /. 1e6);
          Printf.sprintf "%.3f" t64;
          Printf.sprintf "%.3g" (float_of_int rows /. t64 /. 1e6);
        ];
        [
          "32-bit (int32 bigarray)";
          Printf.sprintf "%.1f MB"
            (float_of_int (Holistic_core.Mst_compact.heap_bytes compact) /. 1e6);
          Printf.sprintf "%.3f" t32;
          Printf.sprintf "%.3g" (float_of_int rows /. t32 /. 1e6);
        ];
      ];
  H.note
    "monomorphic 32-bit descents keep Int32 reads unboxed: narrow probes match 64-bit \
     in-cache and win once the tree spills (see mst-width at 10^6)"

(* Width sweep (§5.1): build cost of the historical 64-bit-then-convert
   path vs direct narrow construction, probe throughput and footprint of
   every instantiation. Emits BENCH_mst_width.json for regression
   tracking. *)
let mst_width ~rows () =
  let module C = Holistic_core.Mst_compact in
  let module M16 = Holistic_core.Mst16 in
  let module W = Holistic_core.Mst_width in
  H.section (Printf.sprintf "Width sweep: direct narrow MST builds vs build-then-convert (n=%d)" rows);
  let sizes =
    List.sort_uniq compare [ max 1_000 (rows / 20); max 1_000 (rows / 5); rows ]
  in
  let series =
    List.map
      (fun n ->
        let keys = Scenarios.uniform_ints ~n ~bound:n () in
        let w = max 1 (n / 20) in
        (* the pre-template build must still produce the same tree, or the
           baseline below would be a strawman *)
        let legacy = Legacy_mst.create keys in
        let cur = Mst.internals (Mst.create keys) in
        if
          legacy.Legacy_mst.levels <> cur.Mst.int_levels
          || legacy.Legacy_mst.cursors <> cur.Mst.int_cursors
        then failwith "mst_width: legacy build diverges from current build";
        (* warm-up: fault in the heap and code paths so the first timed rep
           is not billed for first-touch page faults *)
        ignore (C.of_mst (Mst.create keys));
        H.gc_settle ();
        let t_legacy =
          (H.time_best ~reps:5 (fun () -> Legacy_mst.convert_32 (Legacy_mst.create keys))).H.best
        in
        H.gc_settle ();
        let t_build64 = (H.time_best ~reps:5 (fun () -> Mst.create keys)).H.best in
        H.gc_settle ();
        let t_convert = (H.time_best ~reps:5 (fun () -> C.of_mst (Mst.create keys))).H.best in
        H.gc_settle ();
        let t_direct32 = (H.time_best ~reps:5 (fun () -> C.create keys)).H.best in
        let fits16 = n <= 0xFFFF in
        let t_direct16 =
          if fits16 then begin
            H.gc_settle ();
            Some (H.time_best ~reps:5 (fun () -> M16.create keys)).H.best
          end
          else None
        in
        let tree64 = Mst.create keys in
        let tree32 = C.create keys in
        let tree16 = if fits16 then Some (M16.create keys) else None in
        let probe count =
          H.gc_settle ();
          H.time (fun () ->
              let acc = ref 0 in
              for i = 0 to n - 1 do
                acc := !acc + count ~lo:(max 0 (i - w)) ~hi:(i + 1) ~less_than:keys.(i)
              done;
              !acc)
        in
        let p64 = probe (Mst.count tree64) in
        let p32 = probe (C.count tree32) in
        let p16 = Option.map (fun t -> probe (M16.count t)) tree16 in
        let b64 = (Mst.stats tree64).Mst.heap_bytes in
        let b32 = C.heap_bytes tree32 in
        let b16 = Option.map M16.heap_bytes tree16 in
        let auto = W.width_for ~n ~min_value:0 ~max_value:(n - 1) in
        let fcell = function Some t -> Printf.sprintf "%.3f" t | None -> "-" in
        let mb b = Printf.sprintf "%.1f" (float_of_int b /. 1e6) in
        H.print_table
          ~header:[ "n"; "path"; "build s"; "probe s"; "MB" ]
          ~rows:
            ([
               [ string_of_int n; "pre-PR build + convert to 32"; Printf.sprintf "%.3f" t_legacy;
                 Printf.sprintf "%.3f" p32; mb (b64 + b32) ];
               [ ""; "64-bit"; Printf.sprintf "%.3f" t_build64;
                 Printf.sprintf "%.3f" p64; mb b64 ];
               [ ""; "64-bit + convert to 32"; Printf.sprintf "%.3f" t_convert;
                 Printf.sprintf "%.3f" p32; mb (b64 + b32) ];
               [ ""; "direct 32-bit"; Printf.sprintf "%.3f" t_direct32;
                 Printf.sprintf "%.3f" p32; mb b32 ];
             ]
            @
            match t_direct16 with
            | Some t16 ->
                [ [ ""; "direct 16-bit"; fcell (Some t16);
                    fcell p16; mb (Option.get b16) ] ]
            | None -> []);
        H.note
          "direct 32-bit vs old build-then-convert: %.2fx faster (%.2fx vs the retuned 64-bit \
           merge + convert; auto picks %d-bit here)"
          (t_legacy /. t_direct32) (t_convert /. t_direct32) (W.bits auto);
        H.J_obj
          [
            ("n", H.J_int n);
            ("frame", H.J_int w);
            ("auto_width_bits", H.J_int (W.bits auto));
            ( "build_seconds",
              H.J_obj
                [
                  ("legacy_build64_convert32", H.J_float t_legacy);
                  ("build64", H.J_float t_build64);
                  ("build64_convert32", H.J_float t_convert);
                  ("direct32", H.J_float t_direct32);
                  ("direct16", match t_direct16 with Some t -> H.J_float t | None -> H.J_null);
                ] );
            ( "probe_seconds",
              H.J_obj
                [
                  ("w64", H.J_float p64);
                  ("w32", H.J_float p32);
                  ("w16", match p16 with Some t -> H.J_float t | None -> H.J_null);
                ] );
            ( "heap_bytes",
              H.J_obj
                [
                  ("w64", H.J_int b64);
                  ("w32", H.J_int b32);
                  ("w16", match b16 with Some b -> H.J_int b | None -> H.J_null);
                  ("peak_convert_path", H.J_int (b64 + b32));
                ] );
            ("legacy_over_direct32", H.J_float (t_legacy /. t_direct32));
            ("convert_over_direct32", H.J_float (t_convert /. t_direct32));
          ])
      sizes
  in
  (* gate on the largest size point: the build-path ratios and the exact
     per-width footprints (deterministic arithmetic in n) *)
  let metrics =
    match List.rev series with
    | H.J_obj last :: _ ->
        let f k = match List.assoc_opt k last with Some (H.J_float v) -> Some v | _ -> None in
        let nested k1 k2 =
          match List.assoc_opt k1 last with
          | Some (H.J_obj inner) -> (
              match List.assoc_opt k2 inner with
              | Some (H.J_int v) -> Some (float_of_int v)
              | Some (H.J_float v) -> Some v
              | _ -> None)
          | _ -> None
        in
        List.filter_map
          (fun (name, v, m) -> Option.map (fun v -> (name, m v)) v)
          [
            ( "legacy_over_direct32",
              f "legacy_over_direct32",
              fun v -> Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.5 v );
            ( "convert_over_direct32",
              f "convert_over_direct32",
              fun v -> Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.5 v );
            ( "bytes_w64",
              nested "heap_bytes" "w64",
              fun v -> Report.metric ~unit_:"B" ~tolerance:0.01 v );
            ( "bytes_w32",
              nested "heap_bytes" "w32",
              fun v -> Report.metric ~unit_:"B" ~tolerance:0.01 v );
          ]
    | _ -> []
  in
  Report.write "BENCH_mst_width.json" ~experiment:"mst-width"
    ~params:[ ("rows", H.J_int rows) ]
    ~metrics ~series:(H.J_list series);
  H.note "wrote BENCH_mst_width.json"

let ablation_task ~rows () =
  H.section
    (Printf.sprintf
       "Ablation: task size vs incremental algorithms (median, frame 5%%, n=%d)" rows);
  let table = Tpch.lineitem ~rows () in
  let over = over_ship (trailing_rows_frame (max 1 (rows / 20))) in
  let task_sizes = [ 1_000; 5_000; 20_000; 100_000; rows ] in
  H.print_table
    ~header:
      ("algorithm"
      :: List.map (fun t -> if t = rows then "serial" else string_of_int t) task_sizes)
    ~rows:
      (List.map
         (fun (name, alg) ->
           name
           :: List.map
                (fun task_size ->
                  let t =
                    H.time (fun () ->
                        ignore
                          (Executor.run ~task_size table ~over
                             [ item_for `Median alg ]))
                  in
                  Printf.sprintf "%.3f" t)
                task_sizes)
         [ ("incremental", Wf.Incremental); ("ost", Wf.Order_statistic) ]);
  H.note "each task rebuilds its window state: smaller tasks multiply the rebuild cost (paper 3.2)"
