(* The [calibrate] experiment: micro-measures the per-operation unit costs
   that {!Holistic_window.Cost_model} predicts evaluation time from, prints
   the measured table next to the committed constants, and emits a
   paste-ready [Cost_model.default] literal.  The committed table in
   lib/window/cost_model.ml is a snapshot of one such run (see its version
   comment); re-run this experiment and paste when the constants drift on
   new hardware or after kernel changes.

   Everything here is report-only: unit costs are machine-dependent, so
   BENCH_calibrate.json carries no gated metric — the regression gate
   exercises the *decisions* (bench/evaluator_choice.ml), not the raw
   nanoseconds. *)

module H = Harness
module Cost = Holistic_window.Cost_model
module Mstw = Holistic_core.Mst_width
module Inc = Holistic_baselines.Incremental
module Ost = Holistic_baselines.Order_statistic_tree
module Seg = Holistic_baselines.Segment_tree
module Rng = Holistic_util.Rng

module Int_sum = Seg.Make (struct
  type t = int

  let identity = 0
  let combine = ( + )
end)

(* Matches the Window_plan defaults the model is consulted under. *)
let fanout = 32

let log2f n = Float.max 1.0 (Float.log (Float.max 2.0 (float_of_int n)) /. Float.log 2.0)

(* Best of [reps] timings of [f], in ns per one of [ops] operations. *)
let per_op ~reps ~ops f =
  let best = ref infinity in
  for _ = 1 to reps do
    H.gc_settle ();
    let t = H.time f in
    if t < !best then best := t
  done;
  !best *. 1e9 /. float_of_int ops

let run ~rows () =
  H.section "calibrate: cost-model unit constants";
  let n = max 4_096 rows in
  let w_small = 64 and w_large = 4_096 in
  let rng = Rng.create 7 in
  let data = Array.init n (fun _ -> Rng.int rng n) in
  H.note "n = %d, frames %d/%d, fanout %d" n w_small w_large fanout;
  let levels = Cost.mst_levels ~fanout n in

  (* MST: build per row per level; probe (a windowed count) per row per
     level, measured with the tree built once. *)
  let mst_build_ns = per_op ~reps:3 ~ops:(n * levels) (fun () -> Mstw.create ~fanout data) in
  let tree = Mstw.create ~fanout data in
  let probe w =
    per_op ~reps:3 ~ops:(n * levels) (fun () ->
        let acc = ref 0 in
        for i = 0 to n - 1 do
          acc := !acc + Mstw.count tree ~lo:(max 0 (i - w)) ~hi:(i + 1) ~less_than:data.(i)
        done;
        acc)
  in
  let mst_probe_ns = 0.5 *. (probe w_small +. probe w_large) in

  (* Segment tree: build per row; probe per row per log2 n. *)
  let seg_build_ns = per_op ~reps:3 ~ops:n (fun () -> Int_sum.create n (fun i -> data.(i))) in
  let seg = Int_sum.create n (fun i -> data.(i)) in
  let seg_probe_ns =
    per_op ~reps:3 ~ops:(int_of_float (float_of_int n *. log2f n)) (fun () ->
        let acc = ref 0 in
        for i = 0 to n - 1 do
          acc := !acc + Int_sum.query seg ~lo:(max 0 (i - w_large)) ~hi:(i + 1)
        done;
        acc)
  in

  (* Naive: one summed frame scan per row. *)
  let naive_row_ns =
    per_op ~reps:3 ~ops:(n * w_small) (fun () ->
        let acc = ref 0 in
        for i = 0 to n - 1 do
          for j = max 0 (i - w_small + 1) to i do
            acc := !acc + data.(j)
          done
        done;
        acc)
  in

  (* Naive holistic kernels: per frame row, a hash-table rebuild
     (distinct count) and a copy + quickselect (median). *)
  let naive_hash_ns =
    per_op ~reps:3 ~ops:(n * w_small) (fun () ->
        let acc = ref 0 in
        for i = 0 to n - 1 do
          acc :=
            !acc
            + Holistic_baselines.Naive.distinct_count data
                ~ranges:[| (max 0 (i - w_small + 1), i + 1) |]
        done;
        acc)
  in
  let naive_select_ns =
    let scratch = Array.make w_small 0 in
    per_op ~reps:3 ~ops:(n * w_small) (fun () ->
        let acc = ref 0 in
        for i = 0 to n - 1 do
          let lo = max 0 (i - w_small + 1) in
          acc :=
            !acc
            + Holistic_baselines.Naive.select_kth data ~scratch ~ranges:[| (lo, i + 1) |]
                ~k:((i + 1 - lo) / 2)
        done;
        acc)
  in

  (* Incremental distinct state: one add + one remove per slid row. *)
  let inc_update_ns =
    let st = Inc.Distinct_count.create () in
    per_op ~reps:3 ~ops:(2 * n) (fun () ->
        Inc.Distinct_count.clear st;
        for i = 0 to n - 1 do
          Inc.Distinct_count.add st data.(i);
          if i >= w_small then Inc.Distinct_count.remove st data.(i - w_small);
          ignore (Inc.Distinct_count.count st)
        done)
  in

  (* Sorted window: each add/remove memmoves about half the window, so the
     slide shifts ~w elements per row. *)
  let sw_shift_ns =
    let sw = Inc.Sorted_window.create () in
    per_op ~reps:3 ~ops:(n * w_large) (fun () ->
        Inc.Sorted_window.clear sw;
        for i = 0 to n - 1 do
          Inc.Sorted_window.add sw data.(i);
          if i >= w_large then Inc.Sorted_window.remove sw data.(i - w_large);
          ignore (Inc.Sorted_window.select sw (Inc.Sorted_window.size sw / 2))
        done)
  in

  (* Counted B-tree: insert + remove + select per slid row, each O(log w). *)
  let ost_update_ns =
    let t = Ost.create () in
    per_op ~reps:3
      ~ops:(int_of_float (3.0 *. float_of_int n *. log2f w_large))
      (fun () ->
        Ost.clear t;
        for i = 0 to n - 1 do
          Ost.insert t data.(i);
          if i >= w_large then Ost.remove t data.(i - w_large);
          ignore (Ost.select t (Ost.size t / 2))
        done)
  in

  let d = Cost.default in
  let measured =
    [
      ("mst_build_ns", mst_build_ns, d.Cost.mst_build_ns);
      ("mst_probe_ns", mst_probe_ns, d.Cost.mst_probe_ns);
      ("seg_build_ns", seg_build_ns, d.Cost.seg_build_ns);
      ("seg_probe_ns", seg_probe_ns, d.Cost.seg_probe_ns);
      ("naive_row_ns", naive_row_ns, d.Cost.naive_row_ns);
      ("naive_hash_ns", naive_hash_ns, d.Cost.naive_hash_ns);
      ("naive_select_ns", naive_select_ns, d.Cost.naive_select_ns);
      ("inc_update_ns", inc_update_ns, d.Cost.inc_update_ns);
      ("sw_shift_ns", sw_shift_ns, d.Cost.sw_shift_ns);
      ("ost_update_ns", ost_update_ns, d.Cost.ost_update_ns);
    ]
  in
  H.print_table ~header:[ "constant"; "measured"; "committed"; "ratio" ]
    ~rows:
      (List.map
         (fun (k, m, c) ->
           [ k; Printf.sprintf "%.2f" m; Printf.sprintf "%.2f" c; Printf.sprintf "%.2fx" (m /. c) ])
         measured);
  H.note "paste into lib/window/cost_model.ml to recalibrate:";
  Printf.printf
    "  let default =\n\
    \    {\n\
    \      version = %d;\n\
    \      mst_build_ns = %.1f;\n\
    \      mst_probe_ns = %.1f;\n\
    \      seg_build_ns = %.1f;\n\
    \      seg_probe_ns = %.1f;\n\
    \      naive_row_ns = %.2f;\n\
    \      naive_hash_ns = %.2f;\n\
    \      naive_select_ns = %.2f;\n\
    \      inc_update_ns = %.1f;\n\
    \      sw_shift_ns = %.2f;\n\
    \      ost_update_ns = %.1f;\n\
    \      choice_floor_ns = %.0f.0;\n\
    \    }\n"
    (d.Cost.version + 1) mst_build_ns mst_probe_ns seg_build_ns seg_probe_ns naive_row_ns
    naive_hash_ns naive_select_ns inc_update_ns sw_shift_ns ost_update_ns d.Cost.choice_floor_ns;
  Report.write "BENCH_calibrate.json" ~experiment:"calibrate"
    ~params:
      [
        ("rows", H.J_int n);
        ("w_small", H.J_int w_small);
        ("w_large", H.J_int w_large);
        ("fanout", H.J_int fanout);
      ]
    ~metrics:
      (List.map (fun (k, m, _) -> (k, Report.metric ~unit_:"ns" m)) measured
      @ [ ("model_version", Report.metric (float_of_int d.Cost.version)) ]);
  H.note "wrote BENCH_calibrate.json (report-only; the gate checks decisions, not nanoseconds)"
