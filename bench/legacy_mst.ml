(* The pre-width-template merge sort tree build, preserved verbatim as the
   benchmark baseline for the [mst-width] experiment: a 64-bit [int array]
   tree built with a binary-heap k-way merge (per-run heap allocation,
   division-based cursor sampling, bounds-checked accesses), which narrow
   trees could then only reach by a whole-tree conversion pass. The
   experiment checks this build still produces bit-identical levels and
   cursors to the current template before timing it, so the baseline cannot
   silently drift from what the library used to do. *)

module Task_pool = Holistic_parallel.Task_pool

type t = {
  n : int;
  fanout : int;
  sample : int;
  levels : int array array;
  stride : int array;
  cursors : int array array;
  spr : int array;
}

let merge_one_run ~src ~dst ~cursors ~state_base ~fanout ~sample ~run_base ~run_len ~child_stride =
  let nc = ((run_len - 1) / child_stride) + 1 in
  let cur = Array.make nc 0 in
  let child_len c = min child_stride (run_len - (c * child_stride)) in
  (* binary min-heap of (value, child); ties broken by child index *)
  let hval = Array.make nc 0 and hchild = Array.make nc 0 in
  let hsize = ref 0 in
  let less i j = hval.(i) < hval.(j) || (hval.(i) = hval.(j) && hchild.(i) < hchild.(j)) in
  let swap i j =
    let tv = hval.(i) and tc = hchild.(i) in
    hval.(i) <- hval.(j);
    hchild.(i) <- hchild.(j);
    hval.(j) <- tv;
    hchild.(j) <- tc
  in
  let rec down i =
    let l = (2 * i) + 1 in
    if l < !hsize then begin
      let m = if l + 1 < !hsize && less (l + 1) l then l + 1 else l in
      if less m i then begin
        swap i m;
        down m
      end
    end
  in
  let rec up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if less i p then begin
        swap i p;
        up p
      end
    end
  in
  for c = 0 to nc - 1 do
    if child_len c > 0 then begin
      hval.(!hsize) <- src.(run_base + (c * child_stride));
      hchild.(!hsize) <- c;
      incr hsize;
      up (!hsize - 1)
    end
  done;
  let record s =
    if sample > 0 then begin
      let b = state_base + (s / sample * fanout) in
      for c = 0 to nc - 1 do
        cursors.(b + c) <- cur.(c)
      done
    end
  in
  for emitted = 0 to run_len - 1 do
    if sample > 0 && emitted mod sample = 0 then record emitted;
    let v = hval.(0) and c = hchild.(0) in
    dst.(run_base + emitted) <- v;
    cur.(c) <- cur.(c) + 1;
    if cur.(c) < child_len c then begin
      hval.(0) <- src.(run_base + (c * child_stride) + cur.(c));
      down 0
    end
    else begin
      decr hsize;
      if !hsize > 0 then begin
        swap 0 !hsize;
        down 0
      end
    end
  done;
  if sample > 0 && run_len mod sample = 0 then record run_len

let create ?pool ?(fanout = 32) ?(sample = 32) a =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let n = Array.length a in
  let h = ref 0 in
  let s = ref 1 in
  while !s < n do
    s := !s * fanout;
    incr h
  done;
  let h = !h in
  let stride = Array.make (h + 1) 1 in
  for j = 1 to h do
    stride.(j) <- stride.(j - 1) * fanout
  done;
  let levels = Array.init (h + 1) (fun j -> if j = 0 then Array.copy a else Array.make n 0) in
  let spr = Array.make h 0 in
  let cursors =
    Array.init h (fun j ->
        if sample = 0 then [||]
        else begin
          let run_len = min stride.(j + 1) n in
          let nruns = if n = 0 then 0 else ((n - 1) / stride.(j + 1)) + 1 in
          spr.(j) <- (run_len / sample) + 1;
          Array.make (nruns * spr.(j) * fanout) 0
        end)
  in
  for j = 1 to h do
    let l = stride.(j) in
    let nruns = ((n - 1) / l) + 1 in
    let src = levels.(j - 1) and dst = levels.(j) in
    let runs_per_task = max 1 (Task_pool.default_task_size / l) in
    Task_pool.parallel_for pool ~lo:0 ~hi:nruns ~chunk:runs_per_task (fun rlo rhi ->
        for r = rlo to rhi - 1 do
          let run_base = r * l in
          let run_len = min l (n - run_base) in
          merge_one_run ~src ~dst ~cursors:cursors.(j - 1)
            ~state_base:(r * spr.(j - 1) * fanout)
            ~fanout ~sample ~run_base ~run_len ~child_stride:stride.(j - 1)
        done)
  done;
  { n; fanout; sample; levels; stride; cursors; spr }

(* The historical conversion pass: re-encode every level and cursor array
   into 32-bit storage, with the same per-element range validation
   [Mst_compact.of_mst] performs. *)
let convert_32 t =
  let narrow src =
    let n = Array.length src in
    let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get src i in
      if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
        invalid_arg "Legacy_mst.convert_32: value exceeds 32-bit range";
      Bigarray.Array1.unsafe_set a i (Int32.of_int v)
    done;
    a
  in
  (Array.map narrow t.levels, Array.map narrow t.cursors)
