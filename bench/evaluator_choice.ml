(* The [evaluator-choice] experiment: a mixed four-clause window query where
   the calibrated cost model should route each clause to a different
   backend, against the same query with every item pinned to its
   pre-cost-model default (MST everywhere, segment tree for the plain SUM).

   Small frames are where the paper's §6.4 crossover lives: a 20-row
   distinct count and a 50-row median are cheaper to slide incrementally
   than to probe a merge sort tree for, while the 100-row rank and the
   400-row framed SUM stay with MST / segment tree.  So the cost-based run
   must (a) return bit-identical columns, (b) actually re-route the two
   small-frame clauses (deterministic, gated exactly), and (c) never be
   slower than the pinned defaults beyond gate tolerance. *)

open Holistic_storage
open Holistic_window
module Wf = Window_func
module Rng = Holistic_util.Rng
module H = Harness
module Obs = Holistic_obs.Obs
module Ec = Evaluator_choice

let make_table rng ~rows ~partitions =
  let grp = Array.init rows (fun _ -> Rng.int rng partitions) in
  let k = Array.init rows (fun i -> i) in
  for i = rows - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = k.(i) in
    k.(i) <- k.(j);
    k.(j) <- t
  done;
  let v = Array.init rows (fun _ -> Rng.int rng (max 16 (rows / 50))) in
  let x = Array.init rows (fun _ -> Rng.float rng 1000.) in
  Table.create
    [
      ("grp", Column.ints grp);
      ("k", Column.ints k);
      ("v", Column.ints v);
      ("x", Column.floats x);
    ]

(* [force] pins each item; [None] leaves everything on Auto so the plan
   consults the cost model.  The pinned spellings are exactly the
   {!Cost_model.legacy_default}s for these four items. *)
let clauses ?(force = false) () =
  let grp = Expr.Col "grp" in
  let by_k = [ Sort_spec.asc (Expr.Col "k") ] in
  let back n = Window_spec.rows_between (Window_spec.preceding n) Window_spec.Current_row in
  let over frame = Window_spec.over ~partition_by:[ grp ] ~order_by:by_k ~frame () in
  let pin a = if force then a else Wf.Auto in
  [
    {
      Window_plan.spec = over (back 19);
      items = [ Wf.count ~algorithm:(pin Wf.Mst) ~distinct:true ~name:"dc" (Expr.Col "v") ];
    };
    {
      Window_plan.spec = over (back 49);
      items = [ Wf.median ~algorithm:(pin Wf.Mst) ~name:"med" (Expr.Col "x") ];
    };
    {
      Window_plan.spec = over (back 99);
      items = [ Wf.rank ~algorithm:(pin Wf.Mst) ~name:"r" [] ];
    };
    {
      Window_plan.spec = over (back 399);
      items = [ Wf.sum ~algorithm:(pin Wf.Segment_tree) ~name:"s" (Expr.Col "x") ];
    };
  ]

let check_parity ~auto ~forced n =
  List.iter
    (fun name ->
      let ac = Table.column auto name and fc = Table.column forced name in
      for i = 0 to n - 1 do
        let a = Column.get ac i and f = Column.get fc i in
        let same =
          match a, f with
          | Value.Float x, Value.Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
          | _ -> Value.equal a f
        in
        if not same then
          failwith
            (Printf.sprintf "evaluator-choice parity: column %s row %d: cost-based %s <> pinned %s"
               name i (Value.to_string a) (Value.to_string f))
      done)
    [ "dc"; "med"; "r"; "s" ]

let counter trace name = Option.value ~default:0 (List.assoc_opt name trace.Obs.counters)

let run ~rows () =
  H.section "evaluator-choice: cost-based routing vs pinned defaults";
  let partitions = 16 in
  let rng = Rng.create 1234 in
  let table = make_table rng ~rows ~partitions in
  let auto_cs = clauses () and forced_cs = clauses ~force:true () in
  H.note "%d rows, %d partitions: distinct-count w=20, median w=50, rank w=100, sum w=400" rows
    partitions;
  (* parity + routing first: hard failures at any size *)
  let auto_out, trace = Obs.with_capture (fun () -> Window_plan.run table auto_cs) in
  let forced_out = Window_plan.run table forced_cs in
  check_parity ~auto:auto_out ~forced:forced_out rows;
  H.note "parity: cost-based run matches pinned defaults bit-for-bit on all 4 columns";
  let picks =
    List.filter_map
      (fun nm ->
        let c = counter trace ("plan.evaluator." ^ Ec.to_string nm) in
        if c > 0 then Some (Printf.sprintf "%s x%d" (Ec.to_string nm) c) else None)
      Ec.all
  in
  H.note "picks: %s" (String.concat ", " picks);
  let non_default_picks =
    List.fold_left
      (fun acc nm -> acc + counter trace ("plan.evaluator." ^ Ec.to_string nm))
      0
      [ Ec.Naive; Ec.Incremental; Ec.Incremental_serial; Ec.Order_statistic; Ec.Mst_no_cascade ]
  in
  if non_default_picks = 0 then
    failwith "evaluator-choice: the cost model never left the default backend";
  (* wall clock: cost-based vs pinned defaults *)
  H.gc_settle ();
  let auto_t = H.time_best ~hist:"bench.evchoice_cost_ns" ~reps:3 (fun () -> Window_plan.run table auto_cs) in
  H.gc_settle ();
  let forced_t =
    H.time_best ~hist:"bench.evchoice_pinned_ns" ~reps:3 (fun () -> Window_plan.run table forced_cs)
  in
  let speedup = forced_t.H.best /. auto_t.H.best in
  H.print_table ~header:[ "path"; "seconds"; "mean±sd"; "speedup" ]
    ~rows:
      [
        [
          "pinned defaults (MST x3 + segment tree)";
          Printf.sprintf "%.3f" forced_t.H.best;
          Printf.sprintf "%.3f±%.3f" forced_t.H.mean forced_t.H.stddev;
          "1.00x";
        ];
        [
          "cost-based";
          Printf.sprintf "%.3f" auto_t.H.best;
          Printf.sprintf "%.3f±%.3f" auto_t.H.mean auto_t.H.stddev;
          Printf.sprintf "%.2fx" speedup;
        ];
      ];
  if speedup < 0.75 then
    failwith
      (Printf.sprintf "evaluator-choice: cost-based run is %.2fx the pinned defaults" speedup);
  Report.write "BENCH_evaluator_choice.json" ~experiment:"evaluator-choice"
    ~params:[ ("rows", H.J_int rows); ("partitions", H.J_int partitions); ("clauses", H.J_int 4) ]
    ~metrics:
      [
        (* gated: the routing itself is deterministic, and cost-based must
           not lose to the pinned defaults beyond noise *)
        ( "speedup",
          Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.35 speedup );
        ("non_default_picks", Report.metric ~tolerance:0.01 (float_of_int non_default_picks));
        (* report-only wall times *)
        ("cost_based_s", Report.metric ~unit_:"s" auto_t.H.best);
        ("pinned_s", Report.metric ~unit_:"s" forced_t.H.best);
      ]
    ~counters:
      (List.map
         (fun nm ->
           let k = "plan.evaluator." ^ Ec.to_string nm in
           (k, counter trace k))
         Ec.all)
    ~histograms:(Obs.Histogram.snapshot ())
    ~series:
      (H.J_obj
         [ ("cost_based", H.json_of_timing auto_t); ("pinned", H.json_of_timing forced_t) ]);
  H.note "wrote BENCH_evaluator_choice.json"
