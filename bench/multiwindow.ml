(* The [sql-multiwindow] experiment: a four-clause window query whose OVER
   specs all share PARTITION BY and whose ORDER BYs are prefix-compatible,
   run through the shared {!Holistic_window.Window_plan} pipeline (via the
   SQL front end) against the preserved pre-plan baseline
   ({!Legacy_window}) that executes each clause independently.

   Parity is checked before anything is timed, and the build counters must
   show the plan constructing strictly fewer encodings and trees than the
   baseline — both are hard failures, so CI exercises the sharing logic
   deterministically even at smoke sizes where wall-clock ratios are
   noisy. *)

open Holistic_storage
open Holistic_window
module Wf = Window_func
module Rng = Holistic_util.Rng
module H = Harness
module Sql = Holistic_sql.Sql

(* [ts] is a distinct date-like string key (think ISO timestamps): ordering
   by it exercises the boxed comparator path, which the legacy executor
   pays once per clause and the plan pays once per query. *)
let make_table rng ~rows ~partitions =
  let grp = Array.init rows (fun _ -> Rng.int rng partitions) in
  let shuffled = Array.init rows (fun i -> i) in
  for i = rows - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = shuffled.(i) in
    shuffled.(i) <- shuffled.(j);
    shuffled.(j) <- t
  done;
  let ts =
    Array.map
      (fun v ->
        Printf.sprintf "2026-%02d-%02d %02d:%02d:%02d.%06d"
          (1 + (v / 2_678_400 mod 12))
          (1 + (v / 86_400 mod 28))
          (v / 3_600 mod 24) (v / 60 mod 60) (v mod 60) v)
      shuffled
  in
  let x = Array.init rows (fun _ -> Rng.float rng 1000.) in
  let k = Array.init rows (fun _ -> Rng.int rng 100) in
  Table.create
    [
      ("grp", Column.ints grp);
      ("ts", Column.strings ts);
      ("x", Column.floats x);
      ("k", Column.ints k);
    ]

let query =
  "select rank() over (partition by grp order by ts rows between 99 preceding and current row) as r,\n\
  \       percent_rank() over (partition by grp order by ts rows between 999 preceding and current row) as pr,\n\
  \       cume_dist() over (partition by grp order by ts rows between 499 preceding and current row) as cd,\n\
  \       row_number() over (partition by grp order by ts, k rows between 99 preceding and current row) as rn\n\
   from t"

(* Every item is pinned to MST: this experiment measures structure sharing
   across clauses, so the per-clause evaluator choice must not move with
   the cost model's calibration (see bench/evaluator_choice.ml for the
   experiment that exercises the chooser). *)
let clauses () =
  let grp = Expr.Col "grp" in
  let by_ts = [ Sort_spec.asc (Expr.Col "ts") ] in
  let by_ts_k = [ Sort_spec.asc (Expr.Col "ts"); Sort_spec.asc (Expr.Col "k") ] in
  let back n = Window_spec.rows_between (Window_spec.preceding n) Window_spec.Current_row in
  [
    {
      Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ~frame:(back 99) ();
      items = [ Wf.rank ~algorithm:Wf.Mst ~name:"r" [] ];
    };
    {
      Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ~frame:(back 999) ();
      items = [ Wf.percent_rank ~algorithm:Wf.Mst ~name:"pr" [] ];
    };
    {
      Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ~frame:(back 499) ();
      items = [ Wf.cume_dist ~algorithm:Wf.Mst ~name:"cd" [] ];
    };
    {
      Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts_k ~frame:(back 99) ();
      items = [ Wf.row_number ~algorithm:Wf.Mst ~name:"rn" [] ];
    };
  ]

let value_eq a b =
  match a, b with
  | Value.Float x, Value.Float y ->
      (Float.is_nan x && Float.is_nan y) || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  | _ -> (Value.is_null a && Value.is_null b) || Value.equal a b

let check_parity ~plan ~legacy n =
  List.iter
    (fun name ->
      let pc = Table.column plan name and lc = Table.column legacy name in
      for i = 0 to n - 1 do
        if not (value_eq (Column.get pc i) (Column.get lc i)) then
          failwith
            (Printf.sprintf "sql-multiwindow parity: column %s row %d: plan %s <> legacy %s" name i
               (Value.to_string (Column.get pc i))
               (Value.to_string (Column.get lc i)))
      done)
    [ "r"; "pr"; "cd"; "rn" ]

let run ~rows () =
  H.section "sql-multiwindow: shared window pipeline vs per-clause execution";
  let partitions = max 8 (rows / 4_000) in
  let rng = Rng.create 42 in
  let table = make_table rng ~rows ~partitions in
  let cs = clauses () in
  H.note "%d rows, %d partitions, 4 OVER clauses (shared PARTITION BY, prefix ORDER BYs)" rows
    partitions;
  (* correctness + sharing first: these must hold at any size *)
  let plan_out, stats = Window_plan.run_with_stats table cs in
  let legacy_counters = Build_cache.fresh_counters () in
  let legacy_out = Legacy_window.run_clauses ~counters:legacy_counters table cs in
  check_parity ~plan:plan_out ~legacy:legacy_out rows;
  H.note "parity: plan matches per-clause baseline on all 4 columns";
  let open Window_plan in
  H.note "plan: %d partition pass(es), %d full + %d partial sort(s), %d clause(s) reusing a sort"
    stats.partition_passes stats.full_sorts stats.partial_sorts stats.reused_sorts;
  H.note "builds: plan %d encodes / %d trees vs legacy %d encodes / %d trees" stats.encode_builds
    stats.tree_builds (Build_cache.encode_build_count legacy_counters)
    (Build_cache.tree_build_count legacy_counters);
  if stats.partition_passes <> 1 || stats.full_sorts <> 1 then
    failwith "sql-multiwindow: expected one shared partition pass and one full sort";
  if stats.comparator_sorts <> 0 then
    failwith
      (Printf.sprintf "sql-multiwindow: %d sort(s) fell back to the comparator path"
         stats.comparator_sorts);
  if
    stats.encode_builds >= (Build_cache.encode_build_count legacy_counters)
    || stats.tree_builds >= (Build_cache.tree_build_count legacy_counters)
  then failwith "sql-multiwindow: shared plan did not reduce encode/tree builds";
  (* memory accounting: one traced plan run; the [mem.structure_bytes]
     counter is deterministic for a given (table, clauses) pair, so the
     regression gate can hold it to a tight tolerance *)
  let _, mem_trace = Holistic_obs.Obs.with_capture (fun () -> Window_plan.run table cs) in
  let structure_bytes =
    match List.assoc_opt "mem.structure_bytes" mem_trace.Holistic_obs.Obs.counters with
    | Some b -> b
    | None -> 0
  in
  H.note "plan structures: %s" (Holistic_obs.Obs.human_bytes structure_bytes);
  (* now the wall clock, SQL front end against the preserved baseline *)
  H.gc_settle ();
  let plan_api_s = H.time (fun () -> Window_plan.run table cs) in
  H.note "plan via API (no SQL front end): %.3f s" plan_api_s;
  List.iteri
    (fun i (c : Window_plan.clause) ->
      let t = H.time (fun () -> Legacy_window.run table ~over:c.spec c.items) in
      H.note "legacy clause %d alone: %.3f s" (i + 1) t)
    cs;
  H.gc_settle ();
  let plan_t = H.time_best ~hist:"bench.plan_ns" ~reps:3 (fun () -> Sql.query ~algorithm:Wf.Mst ~tables:[ ("t", table) ] query) in
  H.gc_settle ();
  let legacy_t = H.time_best ~hist:"bench.legacy_ns" ~reps:3 (fun () -> Legacy_window.run_clauses table cs) in
  let plan_s = plan_t.H.best and legacy_s = legacy_t.H.best in
  let speedup = legacy_s /. plan_s in
  (* telemetry A/B: the plan leg above runs with telemetry disabled (one
     atomic load per instrumentation point); leg B runs the same query
     with tracing on AND a per-query JSONL log sink attached, so the
     ratio bounds the cost of the full telemetry stack, not just the
     counters. Disabled-mode overhead of the hooks themselves is gated
     separately (behaviorally) in test/test_telemetry.ml. *)
  let was_enabled = Holistic_obs.Obs.enabled () in
  let qlog_path = Filename.temp_file "holiwin_bench_qlog" ".jsonl" in
  let sink = Sql.Query_stats.Log.open_ qlog_path in
  Holistic_obs.Obs.enable ();
  H.gc_settle ();
  let telemetry_t =
    H.time_best ~reps:3 (fun () ->
        Sql.query ~algorithm:Wf.Mst ~query_log:sink ~tables:[ ("t", table) ] query)
  in
  if not was_enabled then Holistic_obs.Obs.disable ();
  Sql.Query_stats.Log.close sink;
  let qlog_records = List.length (Sql.Query_stats.Log.load qlog_path) in
  (try Sys.remove qlog_path with Sys_error _ -> ());
  (try Sys.remove (qlog_path ^ ".1") with Sys_error _ -> ());
  let telemetry_s = telemetry_t.H.best in
  let telemetry_overhead = telemetry_s /. plan_s in
  H.note "telemetry A/B: disabled %.3f s, enabled+qlog %.3f s (%.2fx, %d qlog records)" plan_s
    telemetry_s telemetry_overhead qlog_records;
  if qlog_records < 3 then
    failwith "sql-multiwindow: telemetry leg produced fewer query-log records than runs";
  H.print_table ~header:[ "path"; "seconds"; "mean±sd"; "speedup" ]
    ~rows:
      [
        [
          "legacy (4 independent clauses)";
          Printf.sprintf "%.3f" legacy_s;
          Printf.sprintf "%.3f±%.3f" legacy_t.H.mean legacy_t.H.stddev;
          "1.00x";
        ];
        [
          "shared plan (SQL)";
          Printf.sprintf "%.3f" plan_s;
          Printf.sprintf "%.3f±%.3f" plan_t.H.mean plan_t.H.stddev;
          Printf.sprintf "%.2fx" speedup;
        ];
      ];
  Report.write "BENCH_sql_multiwindow.json" ~experiment:"sql-multiwindow"
    ~params:
      [
        ("rows", H.J_int rows);
        ("partitions", H.J_int partitions);
        ("clauses", H.J_int 4);
      ]
    ~metrics:
      [
        (* gated: machine-independent ratios, exact build/sort counts and
           the deterministic structure footprint *)
        ("speedup", Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.35 speedup);
        ("structure_bytes", Report.metric ~unit_:"B" ~tolerance:0.25 (float_of_int structure_bytes));
        ("encode_builds", Report.metric ~tolerance:0.01 (float_of_int stats.encode_builds));
        ("tree_builds", Report.metric ~tolerance:0.01 (float_of_int stats.tree_builds));
        ("full_sorts", Report.metric ~tolerance:0.01 (float_of_int stats.full_sorts));
        ("partial_sorts", Report.metric ~tolerance:0.01 (float_of_int stats.partial_sorts));
        (* gated generously: the full telemetry stack (tracing + per-query
           log) must stay in the same ballpark as the disabled leg; the
           ratio is machine-independent but noisy at smoke sizes *)
        ( "telemetry_overhead",
          Report.metric ~unit_:"x" ~direction:Report.Lower_better ~tolerance:0.5
            telemetry_overhead );
        (* report-only: absolute wall times are machine-dependent *)
        ("plan_s", Report.metric ~unit_:"s" plan_s);
        ("legacy_s", Report.metric ~unit_:"s" legacy_s);
        ("telemetry_s", Report.metric ~unit_:"s" telemetry_s);
      ]
    ~counters:
      [
        ("plan.stages", stats.stages);
        ("plan.partition_passes", stats.partition_passes);
        ("plan.reused_sorts", stats.reused_sorts);
        ("plan.comparator_sorts", stats.comparator_sorts);
        ("legacy.encode_builds", (Build_cache.encode_build_count legacy_counters));
        ("legacy.tree_builds", (Build_cache.tree_build_count legacy_counters));
      ]
    ~histograms:(Holistic_obs.Obs.Histogram.snapshot ())
    ~series:
      (H.J_obj
         [
           ("plan", H.json_of_timing plan_t);
           ("legacy", H.json_of_timing legacy_t);
           ("telemetry", H.json_of_timing telemetry_t);
         ]);
  H.note "wrote BENCH_sql_multiwindow.json"
