(* The pre-plan single-spec window operator, preserved verbatim as the
   benchmark baseline for the [sql-multiwindow] experiment: every OVER
   clause is executed independently — its own partition pass, its own
   polymorphic-compare sort, a fresh [Array.sub] slice per partition, and a
   fresh structure cache per {e item} so rank encodings and merge sort
   trees are rebuilt exactly as often as the old per-item builders did.
   The experiment checks this baseline still produces value-identical
   columns to the shared {!Holistic_window.Window_plan} pipeline before
   timing it, so it cannot silently drift from what the library used to
   do. *)

open Holistic_storage
open Holistic_window
module Task_pool = Holistic_parallel.Task_pool
module Introsort = Holistic_sort.Introsort
module Parallel_sort = Holistic_sort.Parallel_sort

let densify_ints a =
  let tbl = Hashtbl.create 256 in
  Array.map
    (fun v ->
      match Hashtbl.find_opt tbl v with
      | Some id -> id
      | None ->
          let id = Hashtbl.length tbl in
          Hashtbl.add tbl v id;
          id)
    a

let partition_ids pool table exprs =
  let n = Table.nrows table in
  match exprs with
  | [] -> None
  | _ ->
      let key_of_expr e =
        match e with
        | Expr.Col name -> Column.distinct_ids (Table.column table name)
        | _ ->
            let f = Expr.compile table e in
            let vals = Array.make n Value.Null in
            Task_pool.parallel_for pool ~lo:0 ~hi:n ~chunk:Task_pool.default_task_size
              (fun lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set vals i (f i)
                done);
            let tbl = Hashtbl.create 256 in
            Array.map
              (fun v ->
                match Hashtbl.find_opt tbl v with
                | Some id -> id
                | None ->
                    let id = Hashtbl.length tbl in
                    Hashtbl.add tbl v id;
                    id)
              vals
      in
      let ids =
        match List.map key_of_expr exprs with
        | [] -> assert false
        | [ k ] -> k
        | k :: rest ->
            List.fold_left
              (fun acc k ->
                let a = densify_ints acc and b = densify_ints k in
                Array.init n (fun i -> (a.(i) * n) + b.(i)))
              k rest
      in
      Some ids

let order_permutation ?pool table ~over =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let n = Table.nrows table in
  let pids = partition_ids pool table over.Window_spec.partition_by in
  let perm =
    match pids, Sort_spec.single_int_key table over.Window_spec.order_by with
    | None, Some keys ->
        let key = Array.copy keys in
        let perm = Array.init n (fun i -> i) in
        Parallel_sort.sort_pairs pool ~key ~payload:perm;
        perm
    | _ ->
        let ord_cmp =
          if over.Window_spec.order_by = [] then fun _ _ -> 0
          else Sort_spec.comparator table over.Window_spec.order_by
        in
        let cmp =
          match pids with
          | None -> ord_cmp
          | Some ids ->
              fun i j ->
                let c = compare ids.(i) ids.(j) in
                if c <> 0 then c else ord_cmp i j
        in
        Introsort.sort_indices_by n ~cmp
  in
  let boundaries =
    match pids with
    | None -> [| 0; n |]
    | Some ids ->
        let acc = ref [ 0 ] in
        for k = 1 to n - 1 do
          if ids.(perm.(k)) <> ids.(perm.(k - 1)) then acc := k :: !acc
        done;
        Array.of_list (List.rev (n :: !acc))
  in
  (perm, boundaries)

(* [?counters] feeds the same build counters the plan reports, so the
   benchmark can show how many encodings/trees this path constructs. The
   cache handed to the evaluators is fresh per (partition, item): nothing
   is ever shared, exactly like the old per-item builders. *)
let run ?pool ?(fanout = 32) ?(sample = 32) ?(task_size = Task_pool.default_task_size)
    ?(width = Holistic_core.Mst_width.Auto) ?counters table ~over items =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let n = Table.nrows table in
  let perm, boundaries = order_permutation ~pool table ~over in
  let outputs = List.map (fun (item : Window_func.t) -> (item, Array.make n Value.Null)) items in
  for p = 0 to Array.length boundaries - 2 do
    let plo = boundaries.(p) and phi = boundaries.(p + 1) in
    if phi > plo then begin
      let rows = Array.sub perm plo (phi - plo) in
      let frame = Frame.compute table ~spec:over ~rows in
      List.iter
        (fun (item, out) ->
          let ctx =
            {
              Evaluators.table;
              pool;
              rows;
              frame;
              window_order = over.Window_spec.order_by;
              fanout;
              sample;
              task_size;
              width;
              cache = Build_cache.create ?counters ();
              gov = None;
            }
          in
          Evaluators.eval_item ctx item ~out)
        outputs
    end
  done;
  List.fold_left
    (fun acc ((item : Window_func.t), out) -> Table.add_column acc item.name (Column.of_values out))
    table outputs

(* One independent pass per clause, like the old planner emitted. *)
let run_clauses ?pool ?fanout ?sample ?task_size ?width ?counters table clauses =
  List.fold_left
    (fun acc (c : Window_plan.clause) ->
      run ?pool ?fanout ?sample ?task_size ?width ?counters acc ~over:c.spec c.items)
    table clauses
