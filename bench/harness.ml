(* Shared benchmark machinery: monotonic timing with stop-loss sweeps and
   aligned table output. All experiments print absolute numbers plus the
   derived series the paper plots, so EXPERIMENTS.md can quote them
   directly. *)

module Obs = Holistic_obs.Obs

(* Monotonic clock: [Unix.gettimeofday] is wall time and jumps under NTP
   adjustment mid-sweep; the obs clock never goes backwards. *)
let now () = float_of_int (Obs.now_ns ()) *. 1e-9

type outcome = Time of float | Skipped

(* Budget (seconds) after which a sweep stops running an algorithm: the
   competitor is declared off-scale, as in the paper's plots where the
   quadratic algorithms hug zero. *)
let default_budget = ref 30.0

let time f =
  let t0 = Obs.now_ns () in
  let _ = f () in
  float_of_int (Obs.now_ns () - t0) *. 1e-9

type timing = { best : float; mean : float; stddev : float; runs : int }

(* [?hist] names an [Obs.Histogram] that each rep's duration (ns) is
   recorded into ungated, so bench reports can carry the distribution. *)
let time_best ?hist ~reps f =
  let h = Option.map (Obs.Histogram.make ~help:"Benchmark repetition wall times (ns)") hist in
  let reps = max 1 reps in
  let ts = Array.init reps (fun _ -> time f) in
  Array.iter
    (fun t -> Option.iter (fun h -> Obs.Histogram.add_always h (int_of_float (t *. 1e9))) h)
    ts;
  let best = Array.fold_left min ts.(0) ts in
  let mean = Array.fold_left ( +. ) 0.0 ts /. float_of_int reps in
  let var =
    Array.fold_left (fun acc t -> acc +. ((t -. mean) *. (t -. mean))) 0.0 ts
    /. float_of_int reps
  in
  { best; mean; stddev = sqrt var; runs = reps }

let gc_settle () =
  Gc.full_major ();
  Gc.compact ()

(* Private scratch directory for experiments that spill to disk, created
   lazily and removed (with anything left inside) when the process exits.
   Experiments should still clean up after themselves; the at_exit sweep
   only catches what a failure path left behind. *)
let scratch =
  lazy
    (let dir = Filename.temp_dir "holiwin_bench" "" in
     at_exit (fun () ->
         (try
            Array.iter (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
              (Sys.readdir dir)
          with Sys_error _ -> ());
         try Sys.rmdir dir with Sys_error _ -> ());
     dir)

let scratch_dir () = Lazy.force scratch

(* Sweep one algorithm across parameter points, stopping once a point
   exceeds the budget. The heap is settled before each point so one point's
   garbage is not billed to the next. *)
let sweep ~points ~run =
  let stopped = ref false in
  List.map
    (fun p ->
      if !stopped then (p, Skipped)
      else begin
        gc_settle ();
        let t = run p in
        if t > !default_budget then stopped := true;
        (p, Time t)
      end)
    points

let throughput_cell ~n = function
  | Skipped -> "-"
  | Time t -> Printf.sprintf "%.3g" (float_of_int n /. t /. 1e6)

let seconds_cell = function Skipped -> "-" | Time t -> Printf.sprintf "%.3f" t

let print_table ~header ~rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  " (List.map2 (fun cell w -> Printf.sprintf "%*s" w cell) row widths)
  in
  print_endline (line header);
  print_endline (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (line row)) rows

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt

(* Machine-readable artifacts. Experiments that feed plots or regression
   tracking emit their series through [Report] (one schema for every
   bench, see bench/report.ml); the constructors are re-exported so call
   sites keep reading [H.J_obj ...]. *)
type json = Report.json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let json_of_timing t =
  J_obj
    [
      ("best_s", J_float t.best);
      ("mean_s", J_float t.mean);
      ("stddev_s", J_float t.stddev);
      ("runs", J_int t.runs);
    ]

let json_to_string = Report.json_to_string

let json_of_outcome = function Skipped -> J_null | Time t -> J_float t

let write_json_file path j =
  let oc = open_out path in
  output_string oc (json_to_string j);
  close_out oc;
  note "wrote %s" path
