(* Shared benchmark machinery: wall-clock timing with stop-loss sweeps and
   aligned table output. All experiments print absolute numbers plus the
   derived series the paper plots, so EXPERIMENTS.md can quote them
   directly. *)

let now () = Unix.gettimeofday ()

type outcome = Time of float | Skipped

(* Budget (seconds) after which a sweep stops running an algorithm: the
   competitor is declared off-scale, as in the paper's plots where the
   quadratic algorithms hug zero. *)
let default_budget = ref 30.0

let time f =
  let t0 = now () in
  let _ = f () in
  now () -. t0

let time_best ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t = time f in
    if t < !best then best := t
  done;
  !best

let gc_settle () =
  Gc.full_major ();
  Gc.compact ()

(* Sweep one algorithm across parameter points, stopping once a point
   exceeds the budget. The heap is settled before each point so one point's
   garbage is not billed to the next. *)
let sweep ~points ~run =
  let stopped = ref false in
  List.map
    (fun p ->
      if !stopped then (p, Skipped)
      else begin
        gc_settle ();
        let t = run p in
        if t > !default_budget then stopped := true;
        (p, Time t)
      end)
    points

let throughput_cell ~n = function
  | Skipped -> "-"
  | Time t -> Printf.sprintf "%.3g" (float_of_int n /. t /. 1e6)

let seconds_cell = function Skipped -> "-" | Time t -> Printf.sprintf "%.3f" t

let print_table ~header ~rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  " (List.map2 (fun cell w -> Printf.sprintf "%*s" w cell) row widths)
  in
  print_endline (line header);
  print_endline (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (line row)) rows

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt

(* Machine-readable artifacts. Experiments that feed plots or regression
   tracking emit their series as a JSON file next to the printed table, so
   downstream tooling does not have to scrape aligned-column text. The
   encoder is deliberately tiny: objects, arrays and scalars are all the
   harness needs, and keeping it here avoids an external dependency. *)
type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_to_string j =
  let buf = Buffer.create 1024 in
  let pad d = Buffer.add_string buf (String.make (2 * d) ' ') in
  let rec go d = function
    | J_null -> Buffer.add_string buf "null"
    | J_bool b -> Buffer.add_string buf (string_of_bool b)
    | J_int i -> Buffer.add_string buf (string_of_int i)
    | J_float f ->
        if not (Float.is_finite f) then Buffer.add_string buf "null"
        else Buffer.add_string buf (Printf.sprintf "%.9g" f)
    | J_string s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (json_escape s);
        Buffer.add_char buf '"'
    | J_list [] -> Buffer.add_string buf "[]"
    | J_list xs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (d + 1);
            go (d + 1) x)
          xs;
        Buffer.add_char buf '\n';
        pad d;
        Buffer.add_char buf ']'
    | J_obj [] -> Buffer.add_string buf "{}"
    | J_obj kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (d + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (json_escape k);
            Buffer.add_string buf "\": ";
            go (d + 1) v)
          kvs;
        Buffer.add_char buf '\n';
        pad d;
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let json_of_outcome = function Skipped -> J_null | Time t -> J_float t

let write_json_file path j =
  let oc = open_out path in
  output_string oc (json_to_string j);
  close_out oc;
  note "wrote %s" path
