(* Fig. 14: phase breakdown of a framed running COUNT DISTINCT, built from
   the same library pieces the window operator uses, with an [Obs.span]
   around each pipeline phase (paper §6.7).  Running under [Obs.with_capture]
   means the capture also picks up the library's own spans (sort.runs,
   sort.merge, ...) nested below the phases, so besides the printed table we
   can emit the whole execution as a Chrome trace_event file. *)

open Holistic_storage
module Task_pool = Holistic_parallel.Task_pool
module Parallel_sort = Holistic_sort.Parallel_sort
module Mst = Holistic_core.Mst
module Bs = Holistic_util.Binary_search
module Obs = Holistic_obs.Obs

let phases table =
  let pool = Task_pool.default () in
  let n = Table.nrows table in
  let phase name f = Obs.span name f in
  (* --- window operator set-up: order by l_shipdate ------------------- *)
  let ship, partkey =
    phase "partition input" (fun () ->
        match
          Column.data (Table.column table "l_shipdate"),
          Column.data (Table.column table "l_partkey")
        with
        | Column.Dates s, Column.Ints p -> (Array.copy s, p)
        | _ -> invalid_arg "unexpected schema")
  in
  let perm = Array.init n (fun i -> i) in
  let order_runs =
    phase "sort by frame order (runs)" (fun () ->
        Parallel_sort.sort_runs pool ~key:ship ~payload:perm ())
  in
  phase "sort by frame order (merge)" (fun () ->
      Parallel_sort.merge_runs pool ~key:ship ~payload:perm ~runs:order_runs);
  (* --- Algorithm 1 --------------------------------------------------- *)
  let ids = phase "populate value array" (fun () -> Array.map (fun row -> partkey.(row)) perm) in
  let key = Array.copy ids in
  let pos = Array.init n (fun i -> i) in
  let value_runs =
    phase "sort values (runs)" (fun () -> Parallel_sort.sort_runs pool ~key ~payload:pos ())
  in
  phase "sort values (merge)" (fun () ->
      Parallel_sort.merge_runs pool ~key ~payload:pos ~runs:value_runs);
  let prev =
    phase "compute prevIdcs" (fun () ->
        let prev = Array.make n 0 in
        Task_pool.parallel_for pool ~lo:0 ~hi:n ~chunk:Task_pool.default_task_size (fun lo hi ->
            for i = max lo 1 to hi - 1 do
              if key.(i) = key.(i - 1) then prev.(pos.(i)) <- pos.(i - 1) + 1
            done);
        prev)
  in
  (* --- merge sort tree ----------------------------------------------- *)
  let tree = phase "build merge sort tree" (fun () -> Mst.create ~pool prev) in
  (* --- probe ---------------------------------------------------------- *)
  let out = Array.make n 0 in
  phase "compute results" (fun () ->
      Task_pool.parallel_for pool ~lo:0 ~hi:n ~chunk:Task_pool.default_task_size (fun lo hi ->
          for i = lo to hi - 1 do
            (* running frame: unbounded preceding .. end of the current
               row's date peer group *)
            let hi_frame = Bs.upper_bound ship ~lo:0 ~hi:n ship.(i) in
            out.(i) <- Mst.count tree ~lo:0 ~hi:hi_frame ~less_than:1
          done));
  out

let trace_file = "TRACE_profile.json"

let run ~rows =
  let table = Holistic_data.Tpch.lineitem ~rows () in
  Harness.gc_settle ();
  let out, trace = Obs.with_capture (fun () -> phases table) in
  (* The phase spans are the capture's roots; the library spans they
     enclose (sort.runs, sort.merge) stay out of the printed table but go
     into the Chrome trace. *)
  let roots = { trace with Obs.spans = List.filter (fun s -> s.Obs.parent = -1) trace.Obs.spans } in
  let timers = List.map (fun (name, (_count, secs)) -> (name, secs)) (Obs.totals roots) in
  let total = List.fold_left (fun acc (_, t) -> acc +. t) 0.0 timers in
  Harness.note "rows: %d, total %.3f s, final running distinct count: %d" rows total
    out.(rows - 1);
  Harness.print_table
    ~header:[ "phase"; "seconds"; "share"; "" ]
    ~rows:
      (List.map
         (fun (name, t) ->
           let share = t /. total in
           [
             name;
             Printf.sprintf "%.3f" t;
             Printf.sprintf "%4.1f%%" (100.0 *. share);
             String.make (int_of_float (40.0 *. share)) '#';
           ])
         timers);
  Obs.write_chrome_trace trace_file trace;
  timers
