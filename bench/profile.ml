(* Fig. 14: phase breakdown of a framed running COUNT DISTINCT, built from
   the same library pieces the window operator uses, with an [Obs.span]
   around each pipeline phase (paper §6.7).  Running under [Obs.with_capture]
   means the capture also picks up the library's own spans (sort.runs,
   sort.merge, ...) nested below the phases, so besides the printed table we
   can emit the whole execution as a Chrome trace_event file. *)

open Holistic_storage
module Task_pool = Holistic_parallel.Task_pool
module Parallel_sort = Holistic_sort.Parallel_sort
module Mst = Holistic_core.Mst
module Bs = Holistic_util.Binary_search
module Obs = Holistic_obs.Obs

let phases table =
  let pool = Task_pool.default () in
  let n = Table.nrows table in
  let phase name f = Obs.span name f in
  (* --- window operator set-up: order by l_shipdate ------------------- *)
  let ship, partkey =
    phase "partition input" (fun () ->
        match
          Column.data (Table.column table "l_shipdate"),
          Column.data (Table.column table "l_partkey")
        with
        | Column.Dates s, Column.Ints p -> (Array.copy s, p)
        | _ -> invalid_arg "unexpected schema")
  in
  let perm = Array.init n (fun i -> i) in
  let order_runs =
    phase "sort by frame order (runs)" (fun () ->
        Parallel_sort.sort_runs pool ~key:ship ~payload:perm ())
  in
  phase "sort by frame order (merge)" (fun () ->
      Parallel_sort.merge_runs pool ~key:ship ~payload:perm ~runs:order_runs);
  (* --- Algorithm 1 --------------------------------------------------- *)
  let ids = phase "populate value array" (fun () -> Array.map (fun row -> partkey.(row)) perm) in
  let key = Array.copy ids in
  let pos = Array.init n (fun i -> i) in
  let value_runs =
    phase "sort values (runs)" (fun () -> Parallel_sort.sort_runs pool ~key ~payload:pos ())
  in
  phase "sort values (merge)" (fun () ->
      Parallel_sort.merge_runs pool ~key ~payload:pos ~runs:value_runs);
  let prev =
    phase "compute prevIdcs" (fun () ->
        let prev = Array.make n 0 in
        Task_pool.parallel_for pool ~lo:0 ~hi:n ~chunk:Task_pool.default_task_size (fun lo hi ->
            for i = max lo 1 to hi - 1 do
              if key.(i) = key.(i - 1) then prev.(pos.(i)) <- pos.(i - 1) + 1
            done);
        prev)
  in
  (* --- merge sort tree ----------------------------------------------- *)
  let tree =
    phase "build merge sort tree" (fun () ->
        let t = Mst.create ~pool prev in
        Obs.record_bytes (fun () -> Mst.footprint_bytes t);
        t)
  in
  (* --- probe ---------------------------------------------------------- *)
  let out = Array.make n 0 in
  phase "compute results" (fun () ->
      Task_pool.parallel_for pool ~lo:0 ~hi:n ~chunk:Task_pool.default_task_size (fun lo hi ->
          for i = lo to hi - 1 do
            (* running frame: unbounded preceding .. end of the current
               row's date peer group *)
            let hi_frame = Bs.upper_bound ship ~lo:0 ~hi:n ship.(i) in
            out.(i) <- Mst.count tree ~lo:0 ~hi:hi_frame ~less_than:1
          done));
  (out, Mst.footprint_bytes tree)

let trace_file = "TRACE_profile.json"

let run ~rows =
  let table = Holistic_data.Tpch.lineitem ~rows () in
  Harness.gc_settle ();
  let (out, mst_bytes), trace = Obs.with_capture (fun () -> phases table) in
  (* Self-times: each span's duration minus its children, so the library
     spans nested below the phases (sort.runs, sort.merge, ...) show up as
     their own rows instead of being double-counted inside their parents. *)
  let timers = List.map (fun (name, (_count, secs)) -> (name, secs)) (Obs.self_totals trace) in
  let total = List.fold_left (fun acc (_, t) -> acc +. t) 0.0 timers in
  Harness.note "rows: %d, total %.3f s, final running distinct count: %d" rows total
    out.(rows - 1);
  Harness.note "merge sort tree footprint: %s" (Obs.human_bytes mst_bytes);
  Harness.print_table
    ~header:[ "phase (self time)"; "seconds"; "share"; "" ]
    ~rows:
      (List.map
         (fun (name, t) ->
           let share = t /. total in
           [
             name;
             Printf.sprintf "%.3f" t;
             Printf.sprintf "%4.1f%%" (100.0 *. share);
             String.make (int_of_float (40.0 *. share)) '#';
           ])
         timers);
  Obs.write_chrome_trace trace_file trace;
  Report.write "BENCH_fig14.json" ~experiment:"fig14"
    ~params:[ ("rows", Report.J_int rows) ]
    ~metrics:
      ([
         (* gated: the tree footprint is deterministic for a fixed input *)
         ("mst_bytes", Report.metric ~unit_:"B" ~tolerance:0.2 (float_of_int mst_bytes));
         (* report-only absolute times *)
         ("total_s", Report.metric ~unit_:"s" total);
       ]
      @ List.map
          (fun (name, t) -> ("self." ^ name, Report.metric ~unit_:"s" t))
          timers)
    ~counters:trace.Obs.counters
    ~series:
      (Report.J_obj (List.map (fun (name, t) -> (name, Report.J_float t)) timers));
  Harness.note "wrote BENCH_fig14.json";
  timers
