(* holiwin — command-line interface to the holistic window-function engine.

     holiwin gen lineitem --rows 100000 -o lineitem.csv
     holiwin query "select ... from lineitem window w as (...)" \
        --table lineitem=lineitem.csv --algorithm mst --time
     holiwin query "..." --table lineitem=tpch:50000      # generate inline
     holiwin explain "select rank(order by tps desc) over w from t window w as (...)"
*)

open Holistic_storage
module Wf = Holistic_window.Window_func
module Ec = Holistic_window.Evaluator_choice
module Mg = Holistic_window.Mem_governor

(* --mem-limit: bytes with optional K/M/G suffix, or "spill" (spill every
   sort regardless of budget — a testing mode). The governor is created
   here so its spill directory can be cleaned up whatever happens. *)
let with_governor mem_limit f =
  match mem_limit with
  | None -> f None
  | Some spec ->
      let budget, policy = Mg.parse_limit spec in
      let g = Mg.create ?budget ~policy () in
      Fun.protect ~finally:(fun () -> Mg.cleanup g) (fun () -> f (Some g))

let algorithms =
  [
    ("auto", Wf.Auto);
    ("mst", Wf.Mst);
    ("mst-no-cascade", Wf.Mst_no_cascade);
    ("naive", Wf.Naive);
    ("incremental", Wf.Incremental);
    ("incremental-serial", Wf.Incremental_serial);
    ("ost", Wf.Order_statistic);
    ("segment-tree", Wf.Segment_tree);
  ]

let evaluators = List.map (fun n -> (Ec.to_string n, n)) Ec.all

let generators =
  [
    ("lineitem", fun rows -> Holistic_data.Tpch.lineitem ~rows ());
    ("orders", fun rows -> Holistic_data.Tpch.orders ~rows ());
    ("tpcc_results", fun rows -> Holistic_data.Scenarios.tpcc_results ~rows ());
    ("stock_orders", fun rows -> Holistic_data.Scenarios.stock_orders ~rows ());
  ]

let load_table spec =
  (* NAME=PATH.csv or NAME=GENERATOR:ROWS *)
  match String.index_opt spec '=' with
  | None -> failwith (Printf.sprintf "--table expects NAME=PATH or NAME=GEN:ROWS, got %S" spec)
  | Some eq -> begin
      let name = String.sub spec 0 eq in
      let src = String.sub spec (eq + 1) (String.length spec - eq - 1) in
      match String.index_opt src ':' with
      | Some c when Filename.extension src <> ".csv" -> begin
          let gen = String.sub src 0 c in
          let rows = int_of_string (String.sub src (c + 1) (String.length src - c - 1)) in
          match List.assoc_opt gen generators with
          | Some f -> (name, f rows)
          | None ->
              failwith
                (Printf.sprintf "unknown generator %S (available: %s)" gen
                   (String.concat ", " (List.map fst generators)))
        end
      | _ -> (name, Csv.load src)
    end

open Cmdliner

(* --- gen ------------------------------------------------------------- *)

let gen_cmd =
  let kind =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) generators))) None
      & info [] ~docv:"TABLE" ~doc:"Table to generate: lineitem, orders, tpcc_results, stock_orders.")
  in
  let rows = Arg.(value & opt int 10_000 & info [ "rows"; "n" ] ~doc:"Row count.") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output CSV (default stdout).") in
  let seed = Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Generator seed.") in
  let run kind rows output seed =
    let table =
      match kind, seed with
      | "lineitem", Some s -> Holistic_data.Tpch.lineitem ~seed:s ~rows ()
      | "orders", Some s -> Holistic_data.Tpch.orders ~seed:s ~rows ()
      | "tpcc_results", Some s -> Holistic_data.Scenarios.tpcc_results ~seed:s ~rows ()
      | "stock_orders", Some s -> Holistic_data.Scenarios.stock_orders ~seed:s ~rows ()
      | _, None -> (List.assoc kind generators) rows
      | _ -> assert false
    in
    (match output with
    | Some path ->
        Csv.save path table;
        Printf.printf "wrote %d rows to %s\n" (Table.nrows table) path
    | None -> Csv.write stdout table);
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark table as CSV")
    Term.(const run $ kind $ rows $ output $ seed)

(* --- query ----------------------------------------------------------- *)

let query_cmd =
  let sql = Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL") in
  let tables =
    Arg.(value & opt_all string [] & info [ "table"; "t" ] ~docv:"NAME=SRC"
           ~doc:"Bind a table: NAME=file.csv or NAME=generator:rows.")
  in
  let algorithm =
    Arg.(value & opt (some (enum algorithms)) None & info [ "algorithm"; "a" ]
           ~doc:"Force an evaluation algorithm for all window functions.")
  in
  let evaluator =
    Arg.(value & opt (some (enum evaluators)) None & info [ "evaluator" ]
           ~doc:"Force a backend for window functions that did not pick one \
                 ($(b,--algorithm) wins); unsupported (function, backend) \
                 pairs are rejected with an error.")
  in
  let mem_limit =
    Arg.(value & opt (some string) None & info [ "mem-limit" ] ~docv:"BYTES"
           ~doc:"Bound the window operator's working set: sorts spill to disk \
                 runs and index builds stream when the budget would overflow, \
                 with bit-identical results. Accepts bytes with an optional \
                 K/M/G suffix (e.g. 64M), or $(b,spill) to force every sort \
                 out of core. $(b,HOLIWIN_MEM_LIMIT) is the same knob as an \
                 environment variable.")
  in
  let timing = Arg.(value & flag & info [ "time" ] ~doc:"Print execution time.") in
  let max_rows = Arg.(value & opt int 40 & info [ "max-rows" ] ~doc:"Rows to display.") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Write full result as CSV.") in
  let query_log =
    Arg.(value & opt (some string) None & info [ "query-log" ] ~docv:"FILE"
           ~doc:"Append one holiwin-qlog/1 JSONL record per statement (wall time, \
                 rows, byte counters, cache and evaluator tallies) to FILE, \
                 rotating to FILE.1 by size. $(b,HOLIWIN_QUERY_LOG) is the same \
                 knob as an environment variable.")
  in
  let run sql table_specs algorithm evaluator mem_limit timing max_rows output query_log =
    try
      let tables = List.map load_table table_specs in
      with_governor mem_limit @@ fun governor ->
      let sink = Option.map (fun p -> Holistic_sql.Sql.Query_stats.Log.open_ p) query_log in
      let t0 = Unix.gettimeofday () in
      let result =
        Holistic_sql.Sql.query ?algorithm ?evaluator ?governor ?query_log:sink ~tables sql
      in
      let dt = Unix.gettimeofday () -. t0 in
      Option.iter Holistic_sql.Sql.Query_stats.Log.close sink;
      (match output with
      | Some path -> Csv.save path result
      | None -> Table.print ~max_rows result);
      if timing then
        Printf.printf "\n%d rows in %.3f s (%.3g M rows/s)\n" (Table.nrows result) dt
          (float_of_int (Table.nrows result) /. dt /. 1e6);
      0
    with
    | Holistic_sql.Sql.Parse_error (msg, off) ->
        Printf.eprintf "parse error at offset %d: %s\n" off msg;
        1
    | Holistic_sql.Sql.Semantic_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Mg.Budget_too_small msg | Failure msg | Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        1
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a SQL query with extended window functions")
    Term.(const run $ sql $ tables $ algorithm $ evaluator $ mem_limit $ timing $ max_rows
          $ output $ query_log)

(* --- explain ---------------------------------------------------------- *)

let explain_cmd =
  let sql = Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL") in
  let tables =
    Arg.(value & opt_all string [] & info [ "table"; "t" ] ~docv:"NAME=SRC"
           ~doc:"Bind a table (for --analyze): NAME=file.csv or NAME=generator:rows.")
  in
  let analyze =
    Arg.(value & flag & info [ "analyze" ]
           ~doc:"EXPLAIN ANALYZE: execute the query with tracing on and append the \
                 span tree (per-stage wall time, rows, sort provenance) and counters.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"With --analyze, also write the capture as Chrome trace_event JSON \
                 (open in chrome://tracing or Perfetto).")
  in
  let evaluator =
    Arg.(value & opt (some (enum evaluators)) None & info [ "evaluator" ]
           ~doc:"With --analyze, force a backend for every window function \
                 (strict: unsupported pairs are an error); the executed \
                 choice shows up in the span tree's choose/item lines.")
  in
  let mem_limit =
    Arg.(value & opt (some string) None & info [ "mem-limit" ] ~docv:"BYTES"
           ~doc:"With --analyze, bound the working set as in $(b,query) \
                 --mem-limit; spills show up as spilled=(runs=n, bytes) on \
                 the sort spans and the sort.spill_* counters.")
  in
  let run sql table_specs analyze trace_out evaluator mem_limit =
    try
      if analyze then begin
        let tables = List.map load_table table_specs in
        with_governor mem_limit @@ fun governor ->
        let result, trace =
          Holistic_sql.Sql.explain_analyze_trace ?evaluator ?governor ~tables sql
        in
        print_string (Holistic_sql.Sql.explain sql);
        Printf.printf "rows: %d (%s)\n" (Table.nrows result)
          (Holistic_obs.Obs.human_bytes (Table.footprint_bytes result));
        print_string (Holistic_obs.Obs.render trace);
        Option.iter (fun path -> Holistic_obs.Obs.write_chrome_trace path trace) trace_out
      end
      else print_string (Holistic_sql.Sql.explain sql);
      0
    with
    | Holistic_sql.Parser.Error (msg, off) | Holistic_sql.Sql.Parse_error (msg, off) ->
        Printf.eprintf "parse error at offset %d: %s\n" off msg;
        1
    | Holistic_sql.Sql.Semantic_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Mg.Budget_too_small msg | Failure msg | Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        1
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show a query's structure; --analyze executes it with tracing")
    Term.(const run $ sql $ tables $ analyze $ trace_out $ evaluator $ mem_limit)

(* --- metrics ---------------------------------------------------------- *)

(* Run a workload with telemetry on and print one coherent snapshot of
   every registered metric — counters, gauges (live heap, session
   residency, pool domains), latency histograms and the sliding-window
   SLO quantiles — as Prometheus text exposition and/or JSON. *)
let metrics_cmd =
  let sqls =
    Arg.(value & pos_all string [] & info [] ~docv:"SQL"
           ~doc:"Statements to run before the snapshot (each repeated \
                 $(b,--repeat) times). With none, the snapshot still reports \
                 every registered metric at its current value.")
  in
  let tables =
    Arg.(value & opt_all string [] & info [ "table"; "t" ] ~docv:"NAME=SRC"
           ~doc:"Bind a table: NAME=file.csv or NAME=generator:rows. The first \
                 binding becomes a session's table, so the session.* residency \
                 gauges populate.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat"; "r" ] ~docv:"N"
           ~doc:"Run each statement N times (fills the sliding-window latency \
                 quantiles).")
  in
  let format =
    Arg.(value
         & opt (enum [ ("prometheus", `Prom); ("json", `Json); ("both", `Both) ]) `Prom
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: prometheus, json or both.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Write to FILE (default stdout).")
  in
  let query_log =
    Arg.(value & opt (some string) None & info [ "query-log" ] ~docv:"FILE"
           ~doc:"Also append one holiwin-qlog/1 record per executed statement.")
  in
  let run sqls table_specs repeat format output query_log =
    try
      let tables = List.map load_table table_specs in
      Holistic_obs.Obs.enable ();
      let module Sql = Holistic_sql.Sql in
      let session =
        match tables with (_, t) :: _ -> Some (Sql.session_create t) | [] -> None
      in
      let sink = Option.map (fun p -> Sql.Query_stats.Log.open_ p) query_log in
      for _ = 1 to max 1 repeat do
        List.iter (fun sql -> ignore (Sql.query ?session ?query_log:sink ~tables sql)) sqls
      done;
      Option.iter Sql.Query_stats.Log.close sink;
      let snap = Holistic_obs.Obs.Metrics.snapshot () in
      let stamp_ms = int_of_float (Unix.gettimeofday () *. 1000.) in
      let text =
        match format with
        | `Prom -> Holistic_obs.Obs.Metrics.to_prometheus ~stamp_ms snap
        | `Json -> Holistic_obs.Obs.Metrics.to_json ~stamp_ms snap ^ "\n"
        | `Both ->
            Holistic_obs.Obs.Metrics.to_prometheus ~stamp_ms snap
            ^ Holistic_obs.Obs.Metrics.to_json ~stamp_ms snap ^ "\n"
      in
      (match output with
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc
      | None -> print_string text);
      0
    with
    | Holistic_sql.Sql.Parse_error (msg, off) ->
        Printf.eprintf "parse error at offset %d: %s\n" off msg;
        1
    | Holistic_sql.Sql.Semantic_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Failure msg | Invalid_argument msg | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a workload with telemetry on and print a metrics snapshot \
             (Prometheus text exposition or JSON)")
    Term.(const run $ sqls $ tables $ repeat $ format $ output $ query_log)

(* --- session ---------------------------------------------------------- *)

(* Interactive/scripted driver for the persistent structure store: one
   table pinned for the whole run, structures cached across statements and
   incrementally maintained by appends and evictions. *)
let session_cmd =
  let table_spec =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME=SRC"
           ~doc:"The session table: NAME=file.csv or NAME=generator:rows.")
  in
  let script =
    Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
           ~doc:"Read commands from FILE instead of stdin.")
  in
  let max_rows = Arg.(value & opt int 40 & info [ "max-rows" ] ~doc:"Rows to display.") in
  let query_log =
    Arg.(value & opt (some string) None & info [ "query-log" ] ~docv:"FILE"
           ~doc:"Append one holiwin-qlog/1 JSONL record per query to FILE \
                 (rotating to FILE.1 by size).")
  in
  let run table_spec script max_rows query_log =
    try
      let name, table = load_table table_spec in
      let module Sql = Holistic_sql.Sql in
      let session = Sql.session_create table in
      let sink = Option.map (fun p -> Sql.Query_stats.Log.open_ p) query_log in
      let interactive = script = None && Unix.isatty Unix.stdin in
      let ic = match script with Some path -> open_in path | None -> stdin in
      let stats () =
        let c = Sql.Session.counters session in
        Printf.printf "epoch %d: %d rows (%s cached); builds %d+%d, maintained %d, rebuilt %d\n"
          (Sql.Session.epoch session)
          (Table.nrows (Sql.session_table session))
          (Holistic_obs.Obs.human_bytes (Sql.Session.footprint_bytes session))
          (Atomic.get c.Holistic_window.Build_cache.encode_builds)
          (Atomic.get c.Holistic_window.Build_cache.tree_builds)
          (Atomic.get c.Holistic_window.Build_cache.maintained)
          (Atomic.get c.Holistic_window.Build_cache.rebuilt)
      in
      let strip s = String.trim s in
      let split_cmd line =
        match String.index_opt line ' ' with
        | Some i ->
            (String.sub line 0 i, strip (String.sub line i (String.length line - i)))
        | None -> (line, "")
      in
      let exec line =
        match split_cmd line with
        | ("query" | "select"), _ ->
            (* "select ..." runs verbatim; "query select ..." strips the prefix *)
            let sql = if String.length line >= 6 && String.sub line 0 6 = "select" then line
                      else snd (split_cmd line) in
            let t0 = Unix.gettimeofday () in
            let result = Sql.session_query ?query_log:sink ~name session sql in
            let dt = Unix.gettimeofday () -. t0 in
            Table.print ~max_rows result;
            Printf.printf "%d rows in %.3f s\n" (Table.nrows result) dt
        | "explain", sql ->
            let _, report = Sql.session_explain_analyze ~name session sql in
            print_string report
        | "append", src ->
            let _, delta = load_table (name ^ "=" ^ src) in
            Sql.session_append session delta;
            stats ()
        | "evict", pred ->
            let before = Table.nrows (Sql.session_table session) in
            Sql.session_evict session pred;
            Printf.printf "evicted %d rows\n"
              (before - Table.nrows (Sql.session_table session));
            stats ()
        | "stats", _ ->
            stats ();
            print_string (Sql.Session.render_stats (Sql.Session.stats session))
        | "metrics", _ ->
            print_string
              (Holistic_obs.Obs.Metrics.to_prometheus (Holistic_obs.Obs.Metrics.snapshot ()))
        | ("help" | "?"), _ ->
            print_string
              "commands:\n\
              \  select ...          run a query against the session table\n\
              \  explain SQL         EXPLAIN ANALYZE with cache provenance tags\n\
              \  append SRC          append rows (file.csv or generator:rows)\n\
              \  evict PRED          evict rows matching a predicate\n\
              \  stats               epoch, rows, footprint, per-key structures, reuse tallies\n\
              \  metrics             Prometheus snapshot of every registered metric\n\
              \  quit                exit\n"
        | cmd, _ -> Printf.eprintf "unknown command %S (try: help)\n" cmd
      in
      let rec loop () =
        if interactive then (print_string (name ^ "> "); flush stdout);
        match input_line ic with
        | exception End_of_file -> ()
        | line ->
            let line = strip line in
            if line = "quit" || line = "exit" then ()
            else begin
              if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "--")
              then begin
                (try exec line with
                | Sql.Parse_error (msg, off) ->
                    Printf.eprintf "parse error at offset %d: %s\n" off msg
                | Sql.Semantic_error msg -> Printf.eprintf "error: %s\n" msg
                | Failure msg | Invalid_argument msg -> Printf.eprintf "error: %s\n" msg);
                flush stdout
              end;
              loop ()
            end
      in
      if interactive then
        Printf.printf "session over %S (%d rows); type 'help' for commands\n" name
          (Table.nrows table);
      loop ();
      Option.iter Sql.Query_stats.Log.close sink;
      if script <> None then close_in ic;
      0
    with Failure msg | Invalid_argument msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:"Open a persistent session over one table: cached window structures survive \
             across queries and are incrementally maintained by appends and evictions")
    Term.(const run $ table_spec $ script $ max_rows $ query_log)

let () =
  let doc = "Arbitrarily-framed holistic window aggregates (merge sort trees)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "holiwin" ~doc)
          [ gen_cmd; query_cmd; explain_cmd; metrics_cmd; session_cmd ]))
