(** Automatic storage-width selection for merge sort trees (§5.1).

    Window-operator MST operands are rank encodings: dense integers bounded
    by the partition size. The narrowest fitting width is therefore known
    before the build, and building narrow directly (see {!Mst_compact},
    {!Mst16}) halves or quarters both the tree's footprint and the
    build-phase memory traffic. This module is the dispatch the operator
    builds and probes through. *)

type width = W16 | W32 | W64

type choice =
  | Auto  (** narrowest width that fits the operand (the default) *)
  | Force of width
      (** benchmarking knob: use the given width, widened just enough if the
          operand does not fit it (a forced [W16] over 10^6 rows still
          computes correct results at the narrowest fitting width) *)

type t = T16 of Mst16.t | T32 of Mst_compact.t | T64 of Mst.t

val bits : width -> int

val width_for : n:int -> min_value:int -> max_value:int -> width
(** The §5.1 selection rule: narrowest width whose value range covers
    [\[min_value, max_value\]] {e and} whose count range covers [n] (cursor
    states count elements of a run, so lengths must fit too). *)

val create :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?choice:choice ->
  int array ->
  t
(** Builds at the width selected by [choice] (default [Auto]) after a
    single scan for the operand's value bounds. *)

val create_stream :
  ?fanout:int ->
  ?sample:int ->
  ?choice:choice ->
  n:int ->
  min_value:int ->
  max_value:int ->
  fill:(int array -> pos:int -> len:int -> unit) ->
  unit ->
  t
(** Out-of-core construction ({!Mst.create_stream} under width
    selection): the operand is streamed in chunks through [fill], so its
    value bounds cannot be scanned and must be supplied. To reproduce
    {!create}'s width choice exactly, clamp the scanned bounds into the
    zero-origin [create] uses: [min_value = min real_min 0],
    [max_value = max real_max 0]. *)

val try_extend : ?fanout:int -> ?sample:int -> ?choice:choice -> t -> int array -> t option
(** Maintenance-only {!extend}: [None] — with no rebuild attempted — when
    run-stacking cannot apply (width change, knob mismatch, prefix
    mismatch, shrink), for callers that fall back through their own build
    path (the {!Build_cache} [maintain] callbacks). *)

val extend :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?choice:choice ->
  t ->
  int array ->
  t * bool
(** [extend t a] maintains [t] incrementally for the grown operand [a]
    (run-stacking append; see {!Mst.append}) when the selected width,
    fanout and sample are unchanged and [a] still starts with [t]'s
    leaves; otherwise builds from scratch. The flag is [true] iff the tree
    was maintained rather than rebuilt. Either way the result equals
    [create a]. *)

val width : t -> width
val length : t -> int
val count : t -> lo:int -> hi:int -> less_than:int -> int
val count_ranges : t -> ranges:(int * int) array -> less_than:int -> int
val count_value_ranges : t -> ranges:(int * int) array -> int
val select : t -> ranges:(int * int) array -> nth:int -> int
val heap_bytes : t -> int

val footprint_bytes : t -> int
(** Alias of {!heap_bytes}: the repo-wide memory-accounting contract
    (element bytes at the selected width). *)
