(** 16-bit merge sort trees (paper §5.1).

    The int16_unsigned-bigarray instantiation of the per-width template
    ({!Mst_template}): a quarter of the 64-bit cache footprint on the
    bandwidth-bound probe path, and — unlike int32 — bigarray reads come
    back as immediate ints, so nothing boxes. Fits any operand whose values
    {e and} length stay below 2^16; the window operator's rank encodings
    satisfy this for every partition up to 65535 rows, which
    {!Mst_width.width_for} exploits. *)

type t

val create :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?track_payload:bool ->
  int array ->
  t
(** Direct narrow-width construction; same contract as {!Mst.create}.
    @raise Invalid_argument if a value is negative or exceeds 65535, or the
    array is longer than 65535 elements. *)

val create_stream : ?fanout:int -> ?sample:int -> n:int -> fill:(int array -> pos:int -> len:int -> unit) -> unit -> t
(** Out-of-core construction: streams the [n] leaves in chunks through
    [fill buf ~pos ~len] (write values for positions [pos..pos+len-1]
    into [buf.(0..len-1)]) and merges each level through storage-backed
    write-behind buffers — no full operand array and no wide shadow
    buffers are ever materialised. Sequential. Bit-identical to
    [create] of the same leaves with the same knobs.
    @raise Invalid_argument on values outside the storage range. *)

val append : t -> int array -> t option
(** [append t a] incrementally maintains the tree for the grown leaf array
    [a] (whose first [length t] elements must equal the existing leaves) by
    run-stacking: runs fully inside the old prefix are blitted, only runs
    overlapping the appended suffix are re-merged. Bit-identical to
    [create a]. [None] when the prefix changed, payloads are tracked, or
    the new operand overflows the storage width (rebuild instead). *)

val length : t -> int
val fanout : t -> int
val sample : t -> int

val count : t -> lo:int -> hi:int -> less_than:int -> int
(** Same contract as {!Mst.count}. *)

val count_ranges : t -> ranges:(int * int) array -> less_than:int -> int

val select : t -> ranges:(int * int) array -> nth:int -> int
(** Same contract as {!Mst.select}. *)

val count_value_ranges : t -> ranges:(int * int) array -> int

type stats = {
  level_elements : int;
  cursor_elements : int;
  payload_elements : int;
  heap_bytes : int;  (** total bytes at 2 bytes per element *)
}

val stats : t -> stats

val heap_bytes : t -> int
(** Bytes held by the representation (2 per element). *)

val footprint_bytes : t -> int
(** Alias of {!heap_bytes}: the repo-wide memory-accounting contract.
    The buffers are bigarrays — malloc'd outside the OCaml heap. *)
