(* The 32-bit instantiation of the merge sort tree template (§5.1),
   specialised on int32 bigarrays. {!create} builds *directly* into the
   narrow buffers — no 64-bit tree is materialised, so peak memory is the
   compact tree alone and build-phase traffic is halved. The historical
   build-then-convert path ({!of_mst}) is kept for comparison benchmarks. *)

module T = Mst_template.Make (Mst_storage.Int32s)

type t = T.t

let create = T.create
let create_stream = T.create_stream

let of_mst mst =
  let ir = Mst.internals mst in
  T.of_int_internals ~msg:"Mst_compact.of_mst: value exceeds 32-bit range" ~n:(Mst.length mst)
    ~fanout:(Mst.fanout mst) ~sample:(Mst.sample mst) ~levels:ir.Mst.int_levels
    ~cursors:ir.Mst.int_cursors ~stride:ir.Mst.strides ~spr:ir.Mst.states_per_run

let append = T.append
let length = T.length
let fanout = T.fanout
let sample = T.sample
let count = T.count
let count_ranges = T.count_ranges
let count_value_ranges = T.count_value_ranges
let select = T.select

type stats = T.stats = {
  level_elements : int;
  cursor_elements : int;
  payload_elements : int;
  heap_bytes : int;
}

let stats = T.stats
let heap_bytes t = (T.stats t).T.heap_bytes
let footprint_bytes = T.footprint_bytes
