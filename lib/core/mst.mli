(** Merge sort trees with relaxed fractional cascading (paper §4 and §5.1).

    A merge sort tree over an integer array [a] of length [n] keeps, for every
    tree level [j], the array re-sorted within consecutive runs of length
    [fanout^j]; the top level is one fully sorted run. The structure is the
    set of intermediate results of an [fanout]-way merge sort, kept instead of
    discarded, and is built in O(n log n).

    Two query families are supported, both O(log n) per query:

    - {!count}: how many elements with {e position} in a range have a
      {e value} below a threshold. This evaluates windowed COUNT DISTINCT
      (over prev-occurrence indices, §4.2) and windowed rank functions (over
      dense order codes, §4.4).
    - {!select}: the (m+1)-th element, in base order, whose {e value} falls
      into given ranges. Over a permutation array (§4.5) this evaluates
      windowed percentiles, value functions and LEAD/LAG.

    Queries run a single binary search on the top level; sampled merge-cursor
    states recorded during construction (every [sample]-th output position,
    §4.2 "annotate only every kth element") narrow every lower-level search
    to a window of at most [sample] elements, the relaxed fractional
    cascading. [~sample:0] disables cascading entirely, yielding the
    O(n (log n)²) "segment tree with sorted lists" competitor of Table 1 and
    the ablation of Fig. 13's sampling axis.

    The structure is immutable after construction and may be queried from any
    number of domains concurrently. *)

type t

val create :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?track_payload:bool ->
  int array ->
  t
(** [create a] builds the tree bottom-up with [fanout]-way merges
    (default 32), recording cascading cursor states every [sample] elements
    (default 32, the paper's f = k = 32; [0] disables cascading). Runs of
    each level are merged as independent tasks on [pool] (default: the
    process pool). [track_payload] additionally records, per level, the base
    position each element came from, which {!Annotated_mst} needs to attach
    aggregate annotations. The input array is copied. *)

val create_stream : ?fanout:int -> ?sample:int -> n:int -> fill:(int array -> pos:int -> len:int -> unit) -> unit -> t
(** Out-of-core construction: streams the [n] leaves in chunks through
    [fill buf ~pos ~len] (write values for positions [pos..pos+len-1]
    into [buf.(0..len-1)]) and merges each level through storage-backed
    write-behind buffers — no full operand array and no wide shadow
    buffers are ever materialised. Sequential. Bit-identical to
    [create] of the same leaves with the same knobs.
    @raise Invalid_argument on values outside the storage range. *)

val append : t -> int array -> t option
(** [append t a] incrementally maintains the tree for the grown leaf array
    [a] (whose first [length t] elements must equal the existing leaves) by
    run-stacking: runs fully inside the old prefix are blitted, only runs
    overlapping the appended suffix are re-merged. Bit-identical to
    [create a]. [None] when the prefix changed, payloads are tracked, or
    the new operand overflows the storage width (rebuild instead). *)

val length : t -> int
val fanout : t -> int
val sample : t -> int

val base : t -> int array
(** The level-0 copy of the input. Do not mutate. *)

val count : t -> lo:int -> hi:int -> less_than:int -> int
(** [count t ~lo ~hi ~less_than] is [|{i ∈ [lo,hi) : a.(i) < less_than}|].
    Position bounds are clamped to [\[0, n\]]. *)

val count_ranges : t -> ranges:(int * int) array -> less_than:int -> int
(** Sum of {!count} over several (disjoint) position ranges — holed frames
    from frame-exclusion clauses (§4.7). *)

val select : t -> ranges:(int * int) array -> nth:int -> int
(** [select t ~ranges ~nth] is the value of the (nth+1)-th element, scanning
    base positions ascending, whose {e value} lies in one of the half-open
    value [ranges] (which must be disjoint and ascending). Over a permutation
    array, base order is "ascending by the function's ORDER BY" and values
    are original row positions, so this returns the original position of the
    (nth+1)-th smallest row inside the frame described by [ranges].
    @raise Invalid_argument if fewer than [nth + 1] elements qualify. *)

val count_value_ranges : t -> ranges:(int * int) array -> int
(** Number of elements whose value lies in the given ranges — the qualifying
    population that {!select} draws from. *)

val iter_covered :
  t -> lo:int -> hi:int -> less_than:int -> (level:int -> base:int -> prefix:int -> unit) -> unit
(** Decomposes the position range [\[lo, hi)] into the same sorted runs a
    {!count} query uses and reports, for each, the run's absolute start
    offset in its level array and the number [prefix] of its elements below
    the threshold. {!Annotated_mst} combines per-run prefix aggregates from
    exactly these [(level, base, prefix)] triples (§4.3). *)

val payload_levels : t -> int array array
(** Per level, the base position each element originated from. Only
    available when built with [~track_payload:true].
    @raise Invalid_argument otherwise. *)

val levels : t -> int array array
(** The raw level arrays (level 0 = base). Do not mutate. *)

type internals = {
  int_levels : int array array;
  int_cursors : int array array;
  strides : int array;  (** fanout^j per level *)
  states_per_run : int array;  (** sampled cursor states per run, per upper level *)
}

val internals : t -> internals
(** Raw representation, consumed by {!Mst_compact} for storage-width
    conversion. Not a stable API; do not mutate. *)

type stats = {
  level_elements : int;  (** total elements across all level arrays *)
  cursor_elements : int; (** total recorded cursor-state integers *)
  payload_elements : int;
  heap_bytes : int;      (** total bytes at 8 bytes per element *)
}

val stats : t -> stats

val footprint_bytes : t -> int
(** Bytes held by the built tree (8 per stored element; array headers,
    a negligible constant, excluded) — the repo-wide memory-accounting
    contract. *)

val element_count_formula : n:int -> fanout:int -> sample:int -> int
(** The paper's closed-form element count (§5.1):
    [⌈log_f n⌉·n + (⌈log_f n⌉ − 1)·n·f/k]; used for the §6.6 memory table at
    sizes too large to materialise. *)
