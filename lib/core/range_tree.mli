(** Three-dimensional range counting for framed DENSE_RANK (§4.4).

    A framed dense rank needs the number of {e distinct} key values inside
    the frame that compare below the current row's key — a 3-dimensional
    range count over (frame position, rank key, previous-occurrence index):

    [|{distinct keys < K in [lo, hi)}| =
       |{i ∈ [lo, hi) : key_i < K ∧ prev_i < lo}|]

    following the same back-reference argument as COUNT DISTINCT, with
    [prev_i] the previous position holding the same key.

    The structure layers two merge sort trees (Bentley's range-tree
    construction with the paper's fractional cascading, §3.1): an outer MST
    over the keys decomposes the position range into O(log n) key-sorted
    runs; for each outer level, one inner MST over the prev-indices — laid
    out in that level's key order — counts [prev < lo] inside the
    [key < K] prefix of each run. Query time O((log n)²), space
    O(n (log n)²). *)

type t

val create : ?pool:Holistic_parallel.Task_pool.t -> ?fanout:int -> ?sample:int -> int array -> t
(** [create keys] preprocesses the dense key codes of a partition in
    window-frame order. *)

val length : t -> int

val distinct_below : t -> lo:int -> hi:int -> key:int -> int
(** [distinct_below t ~lo ~hi ~key] is the number of distinct key values
    occurring at positions [\[lo, hi)] that are strictly smaller than [key].
    A row's framed DENSE_RANK is this count plus one. *)

val stats_bytes : t -> int
(** Total heap bytes of all component trees. *)

val footprint_bytes : t -> int
(** Alias of {!stats_bytes}: the repo-wide memory-accounting contract. *)
