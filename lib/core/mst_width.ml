(* Automatic storage-width selection for merge sort trees (§5.1).

   The window operator rank-encodes every MST operand into a dense integer
   domain bounded by the partition size, so the narrowest fitting
   instantiation is known before the build: 16-bit for partitions under
   2^16 rows, 32-bit under 2^31, 64-bit otherwise. This module is the small
   dispatch the operator builds through; [Force] is the benchmarking knob
   (it widens as needed, so a forced narrow width on oversized data still
   yields correct results instead of raising mid-query). *)

type width = W16 | W32 | W64
type choice = Auto | Force of width
type t = T16 of Mst16.t | T32 of Mst_compact.t | T64 of Mst.t

let bits = function W16 -> 16 | W32 -> 32 | W64 -> 64

let rank = function W16 -> 0 | W32 -> 1 | W64 -> 2

let widen a b = if rank a >= rank b then a else b

let fits ~n ~min_value ~max_value = function
  | W16 -> min_value >= 0 && max_value <= 0xFFFF && n <= 0xFFFF
  | W32 ->
      min_value >= Int32.to_int Int32.min_int
      && max_value <= Int32.to_int Int32.max_int
      && n <= Int32.to_int Int32.max_int
  | W64 -> true

let width_for ~n ~min_value ~max_value =
  if fits ~n ~min_value ~max_value W16 then W16
  else if fits ~n ~min_value ~max_value W32 then W32
  else W64

let value_bounds a =
  let mn = ref 0 and mx = ref 0 in
  for i = 0 to Array.length a - 1 do
    let v = Array.unsafe_get a i in
    if v < !mn then mn := v;
    if v > !mx then mx := v
  done;
  (!mn, !mx)

let create ?pool ?fanout ?sample ?(choice = Auto) a =
  let n = Array.length a in
  let min_value, max_value = value_bounds a in
  let fit = width_for ~n ~min_value ~max_value in
  let w = match choice with Auto -> fit | Force w -> widen w fit in
  match w with
  | W16 -> T16 (Mst16.create ?pool ?fanout ?sample a)
  | W32 -> T32 (Mst_compact.create ?pool ?fanout ?sample a)
  | W64 -> T64 (Mst.create ?pool ?fanout ?sample a)

let create_stream ?fanout ?sample ?(choice = Auto) ~n ~min_value ~max_value ~fill () =
  let fit = width_for ~n ~min_value ~max_value in
  let w = match choice with Auto -> fit | Force w -> widen w fit in
  match w with
  | W16 -> T16 (Mst16.create_stream ?fanout ?sample ~n ~fill ())
  | W32 -> T32 (Mst_compact.create_stream ?fanout ?sample ~n ~fill ())
  | W64 -> T64 (Mst.create_stream ?fanout ?sample ~n ~fill ())

let width = function T16 _ -> W16 | T32 _ -> W32 | T64 _ -> W64

(* Incremental append: maintain [t] for the grown operand [a] when the
   width [create] would pick is unchanged (otherwise the old narrow levels
   cannot represent the new operand — rebuild at the new width) and the
   tree was built with the same fanout/sample the caller would use. The
   flag reports whether maintenance happened (false → a full rebuild ran),
   for the cache's maintained/rebuilt provenance counters. *)
let try_extend ?(fanout = 32) ?(sample = 32) ?(choice = Auto) t a =
  let n = Array.length a in
  let min_value, max_value = value_bounds a in
  let fit = width_for ~n ~min_value ~max_value in
  let target = match choice with Auto -> fit | Force w -> widen w fit in
  let same_knobs =
    match t with
    | T16 t -> Mst16.fanout t = fanout && Mst16.sample t = sample
    | T32 t -> Mst_compact.fanout t = fanout && Mst_compact.sample t = sample
    | T64 t -> Mst.fanout t = fanout && Mst.sample t = sample
  in
  if (not same_knobs) || rank target <> rank (width t) then None
  else
    match t with
    | T16 t -> Option.map (fun t -> T16 t) (Mst16.append t a)
    | T32 t -> Option.map (fun t -> T32 t) (Mst_compact.append t a)
    | T64 t -> Option.map (fun t -> T64 t) (Mst.append t a)

let extend ?pool ?(fanout = 32) ?(sample = 32) ?(choice = Auto) t a =
  match try_extend ~fanout ~sample ~choice t a with
  | Some t' -> (t', true)
  | None -> (create ?pool ~fanout ~sample ~choice a, false)

let length = function
  | T16 t -> Mst16.length t
  | T32 t -> Mst_compact.length t
  | T64 t -> Mst.length t

let count t ~lo ~hi ~less_than =
  match t with
  | T16 t -> Mst16.count t ~lo ~hi ~less_than
  | T32 t -> Mst_compact.count t ~lo ~hi ~less_than
  | T64 t -> Mst.count t ~lo ~hi ~less_than

let count_ranges t ~ranges ~less_than =
  match t with
  | T16 t -> Mst16.count_ranges t ~ranges ~less_than
  | T32 t -> Mst_compact.count_ranges t ~ranges ~less_than
  | T64 t -> Mst.count_ranges t ~ranges ~less_than

let count_value_ranges t ~ranges =
  match t with
  | T16 t -> Mst16.count_value_ranges t ~ranges
  | T32 t -> Mst_compact.count_value_ranges t ~ranges
  | T64 t -> Mst.count_value_ranges t ~ranges

let select t ~ranges ~nth =
  match t with
  | T16 t -> Mst16.select t ~ranges ~nth
  | T32 t -> Mst_compact.select t ~ranges ~nth
  | T64 t -> Mst.select t ~ranges ~nth

let heap_bytes = function
  | T16 t -> Mst16.heap_bytes t
  | T32 t -> Mst_compact.heap_bytes t
  | T64 t -> (Mst.stats t).Mst.heap_bytes

let footprint_bytes = heap_bytes
