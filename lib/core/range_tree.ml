type t = {
  outer : Mst.t;
  (* inner.(j): MST over the prev-occurrence codes arranged in the key order
     of outer level j. Queried ranges always lie inside a single outer run,
     and runs of level <= j tile outer runs exactly, so one full-height inner
     tree per level is sound. *)
  inner : Mst.t array;
}

let create ?pool ?fanout ?sample keys =
  let outer = Mst.create ?pool ?fanout ?sample ~track_payload:true keys in
  let prev = Prev_occurrence.compute ?pool keys in
  let payloads = Mst.payload_levels outer in
  let inner =
    Array.map
      (fun payload ->
        let arranged = Array.map (fun origin -> prev.(origin)) payload in
        Mst.create ?pool ?fanout ?sample arranged)
      payloads
  in
  { outer; inner }

let length t = Mst.length t.outer

let distinct_below t ~lo ~hi ~key =
  let lo = max lo 0 and hi = min hi (length t) in
  if lo >= hi then 0
  else begin
    let acc = ref 0 in
    Mst.iter_covered t.outer ~lo ~hi ~less_than:key (fun ~level ~base ~prefix ->
        (* [prefix] elements of this key-sorted run have key < K; among them
           count back-references pointing before the frame start. *)
        acc := !acc + Mst.count t.inner.(level) ~lo:base ~hi:(base + prefix) ~less_than:(lo + 1));
    !acc
  end

let stats_bytes t =
  let outer = (Mst.stats t.outer).Mst.heap_bytes in
  Array.fold_left (fun acc m -> acc + (Mst.stats m).Mst.heap_bytes) outer t.inner

let footprint_bytes = stats_bytes
