(* The 64-bit instantiation of the merge sort tree template (§5.1): plain
   [int array] storage, the fully general width. Build and query logic live
   in {!Mst_template}; this module adds the payload/levels accessors that
   {!Annotated_mst} and {!Range_tree} build on, plus the §5.1 closed-form
   element count. *)

module T = Mst_template.Make (Mst_storage.Int63)

type t = T.t

let create = T.create
let create_stream = T.create_stream
let append = T.append
let length = T.length
let fanout = T.fanout
let sample = T.sample
let levels = T.levels
let base t = (T.levels t).(0)

let payload_levels t =
  match T.payloads t with
  | Some p -> p
  | None -> invalid_arg "Mst.payload_levels: tree was built without ~track_payload"

let count = T.count
let count_ranges = T.count_ranges
let iter_covered = T.iter_covered
let count_value_ranges = T.count_value_ranges
let select = T.select

type internals = {
  int_levels : int array array;
  int_cursors : int array array;
  strides : int array;
  states_per_run : int array;
}

let internals t =
  {
    int_levels = T.levels t;
    int_cursors = T.cursors t;
    strides = T.stride t;
    states_per_run = T.spr t;
  }

type stats = T.stats = {
  level_elements : int;
  cursor_elements : int;
  payload_elements : int;
  heap_bytes : int;
}

let stats = T.stats
let footprint_bytes = T.footprint_bytes

let element_count_formula ~n ~fanout ~sample =
  if n <= 1 then n
  else begin
    let h = ref 0 and s = ref 1 in
    while !s < n do
      s := !s * fanout;
      incr h
    done;
    (* ⌈log_f n⌉·n sorted elements plus (⌈log_f n⌉−1)·n·f/k cursor entries;
       the paper counts the base level separately, we fold it in: levels
       0..h hold (h+1)·n elements of which h·n are sorted copies. *)
    ((!h + 1) * n) + if sample = 0 then 0 else !h * n * fanout / max 1 sample
  end
