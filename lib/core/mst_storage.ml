(* Storage backends for the per-integer-width merge sort tree template
   (paper §5.1). Every MST operand is rank-encoded into a dense integer
   domain, so the tree can be instantiated at the narrowest width that fits:
   the same build/query logic runs over 64-bit [int array]s, 32-bit [int32]
   bigarrays or 16-bit [int16_unsigned] bigarrays, quartering the cache
   footprint of the bandwidth-bound query phase on small partitions.

   Each backend keeps its binary search monomorphic and loop-local — the
   search is the hot query operation and must not pay a functor-indirection
   per probe step (this toolchain has no flambda, so calls through the
   functor argument are real calls; one call per [lower_bound] amortises,
   one per step would not). *)

module Bs = Holistic_util.Binary_search

module type S = sig
  type buf

  val name : string
  (** Name of the instantiation using this storage, for error messages. *)

  val width_bits : int
  val bytes_per_element : int

  val min_value : int
  val max_value : int
  (** Inclusive range of storable values. Tree lengths must also stay within
      [max_value]: merge-cursor states count elements of a run. *)

  val create : int -> buf
  (** Contents unspecified; every slot is written before it is read. *)

  val length : buf -> int
  val get : buf -> int -> int
  val set : buf -> int -> int -> unit

  val lower_bound : buf -> lo:int -> hi:int -> int -> int
  (** Position of the first element in the sorted segment [\[lo, hi)] that is
      not less than the probe (all comparisons in the native [int] domain). *)

  val of_int_array : msg:string -> int array -> buf
  (** Copy with range validation.
      @raise Invalid_argument [msg] if an element does not fit the width. *)

  (* The build phase merges through plain [int array] views so its inner
     loop stays monomorphic (one bulk call per run chunk instead of one
     functor-indirected [get]/[set] per element). Word-width storage exposes
     its underlying array directly; narrow widths are staged through scratch
     with the two blits below. *)

  val as_ints : buf -> int array option
  (** The underlying array when the representation {e is} an [int array]
      (writes through it are visible); [None] for narrow widths. *)

  val blit_to_ints : buf -> pos:int -> int array -> dst_pos:int -> len:int -> unit
  (** Widening bulk copy out of the buffer. *)

  val blit_from_ints : int array -> pos:int -> buf -> dst_pos:int -> len:int -> unit
  (** Narrowing bulk copy into the buffer, {e without} range checks: the
      build only narrows values that entered through the validated
      {!of_int_array} base level (or run-length-bounded cursor counts), so
      they are known to fit. *)
end

(* ------------------------------------------------------------------ *)
(* 64-bit: plain [int array], the fully general width                   *)
(* ------------------------------------------------------------------ *)

module Int63 : S with type buf = int array = struct
  type buf = int array

  let name = "Mst"
  let width_bits = 64
  let bytes_per_element = 8
  let min_value = min_int
  let max_value = max_int
  let create n = Array.make n 0
  let length = Array.length
  let get = Array.unsafe_get
  let set = Array.unsafe_set
  let lower_bound = Bs.lower_bound
  let of_int_array ~msg:_ a = Array.copy a
  let as_ints a = Some a
  let blit_to_ints a ~pos dst ~dst_pos ~len = Array.blit a pos dst dst_pos len
  let blit_from_ints src ~pos a ~dst_pos ~len = Array.blit src pos a dst_pos len
end

(* ------------------------------------------------------------------ *)
(* 32-bit: int32 bigarray                                              *)
(* ------------------------------------------------------------------ *)

module Int32s : S with type buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t =
struct
  type buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  let name = "Mst_compact"
  let width_bits = 32
  let bytes_per_element = 4
  let min_value = Int32.to_int Int32.min_int
  let max_value = Int32.to_int Int32.max_int
  let create n = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n
  let length = Bigarray.Array1.dim
  let get (a : buf) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)
  let set (a : buf) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v)

  let lower_bound (a : buf) ~lo ~hi x =
    let lo = ref lo and len = ref (hi - lo) in
    while !len > 0 do
      let half = !len / 2 in
      let mid = !lo + half in
      if Int32.to_int (Bigarray.Array1.unsafe_get a mid) < x then begin
        lo := mid + 1;
        len := !len - half - 1
      end
      else len := half
    done;
    !lo

  let of_int_array ~msg src =
    let n = Array.length src in
    let a = create n in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get src i in
      if v < min_value || v > max_value then invalid_arg msg;
      set a i v
    done;
    a

  let as_ints _ = None

  let blit_to_ints (a : buf) ~pos dst ~dst_pos ~len =
    for i = 0 to len - 1 do
      Array.unsafe_set dst (dst_pos + i) (Int32.to_int (Bigarray.Array1.unsafe_get a (pos + i)))
    done

  let blit_from_ints src ~pos (a : buf) ~dst_pos ~len =
    for i = 0 to len - 1 do
      Bigarray.Array1.unsafe_set a (dst_pos + i) (Int32.of_int (Array.unsafe_get src (pos + i)))
    done
end

(* ------------------------------------------------------------------ *)
(* 16-bit: int16_unsigned bigarray (reads come back as immediate ints)  *)
(* ------------------------------------------------------------------ *)

module Int16u : S with type buf = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t =
struct
  type buf = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  let name = "Mst16"
  let width_bits = 16
  let bytes_per_element = 2
  let min_value = 0
  let max_value = 0xFFFF
  let create n = Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout n
  let length = Bigarray.Array1.dim
  let get (a : buf) i = Bigarray.Array1.unsafe_get a i
  let set (a : buf) i v = Bigarray.Array1.unsafe_set a i v

  let lower_bound (a : buf) ~lo ~hi x =
    let lo = ref lo and len = ref (hi - lo) in
    while !len > 0 do
      let half = !len / 2 in
      let mid = !lo + half in
      if Bigarray.Array1.unsafe_get a mid < x then begin
        lo := mid + 1;
        len := !len - half - 1
      end
      else len := half
    done;
    !lo

  let of_int_array ~msg src =
    let n = Array.length src in
    let a = create n in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get src i in
      if v < min_value || v > max_value then invalid_arg msg;
      set a i v
    done;
    a

  let as_ints _ = None

  let blit_to_ints (a : buf) ~pos dst ~dst_pos ~len =
    for i = 0 to len - 1 do
      Array.unsafe_set dst (dst_pos + i) (Bigarray.Array1.unsafe_get a (pos + i))
    done

  let blit_from_ints src ~pos (a : buf) ~dst_pos ~len =
    for i = 0 to len - 1 do
      Bigarray.Array1.unsafe_set a (dst_pos + i) (Array.unsafe_get src (pos + i))
    done
end
