(* The 16-bit instantiation of the merge sort tree template (§5.1),
   specialised on int16_unsigned bigarrays: a quarter of the 64-bit cache
   footprint, and — unlike int32 — reads come back as immediate ints, so
   there is no boxing anywhere on the probe path. Fits any operand whose
   dense domain (and length) stays below 2^16, which covers every
   per-partition rank encoding of partitions up to 65535 rows. *)

module T = Mst_template.Make (Mst_storage.Int16u)

type t = T.t

let create = T.create
let create_stream = T.create_stream
let append = T.append
let length = T.length
let fanout = T.fanout
let sample = T.sample
let count = T.count
let count_ranges = T.count_ranges
let count_value_ranges = T.count_value_ranges
let select = T.select

type stats = T.stats = {
  level_elements : int;
  cursor_elements : int;
  payload_elements : int;
  heap_bytes : int;
}

let stats = T.stats
let heap_bytes t = (T.stats t).T.heap_bytes
let footprint_bytes = T.footprint_bytes
