(** Merge sort trees annotated with per-run prefix aggregates (§4.3):
    windowed DISTINCT variants of arbitrary distributive and algebraic
    aggregates.

    The tree is built over prev-occurrence codes ({!Prev_occurrence}); within
    every sorted run, each element carries the running aggregate of the
    {e argument values} of all run elements up to and including itself.
    A frame's DISTINCT aggregate is then the combination of one prefix
    aggregate per covering run: inside each run, the elements whose
    back-reference points before the frame start — exactly the first
    occurrences of the distinct values — form a prefix, because runs are
    sorted by back-reference.

    Only a {e combine} function is required; no inverse, so user-defined
    aggregates qualify (§4.3).

    Frames with exclusion holes cannot be answered by per-range queries
    (a back-reference can point into a hole); {!Window} evaluates holed
    DISTINCT frames as a whole-span query plus an O(hole) correction. *)

module type MONOID = sig
  type t

  val identity : t
  val combine : t -> t -> t
end

module Make (M : MONOID) : sig
  type t

  val create :
    ?pool:Holistic_parallel.Task_pool.t ->
    ?fanout:int ->
    ?sample:int ->
    keys:int array ->
    value:(int -> M.t) ->
    unit ->
    t
  (** [create ~keys ~value ()] builds the annotated tree; [keys] are the
      encoded prev-occurrence codes in window-frame order and [value i] is
      row [i]'s aggregate argument. *)

  val query : t -> lo:int -> hi:int -> less_than:int -> M.t
  (** Combination of [value i] over positions [i ∈ [lo, hi)] with
      [keys.(i) < less_than]. For a frame [\[lo, hi)] in frame order, passing
      [~less_than:(lo + 1)] yields the frame's DISTINCT aggregate. *)

  val footprint_bytes : t -> int
  (** Tree element bytes plus the reachable words of the per-run prefix
      aggregates — the repo-wide memory-accounting contract. *)
end

(** Float-SUM instantiation (SUM/AVG DISTINCT fast path). *)
module Float_sum : sig
  type t

  val create :
    ?pool:Holistic_parallel.Task_pool.t ->
    ?fanout:int ->
    ?sample:int ->
    keys:int array ->
    values:float array ->
    unit ->
    t

  val query : t -> lo:int -> hi:int -> less_than:int -> float
  val footprint_bytes : t -> int
end
