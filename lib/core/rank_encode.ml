module Task_pool = Holistic_parallel.Task_pool
module Introsort = Holistic_sort.Introsort
module Parallel_sort = Holistic_sort.Parallel_sort

type t = { rank_codes : int array; row_codes : int array; permutation : int array }

let of_sorted_permutation ?pool n permutation ~ties =
  let rank_codes = Array.make n 0 in
  let row_codes = Array.make n 0 in
  let scatter_seq () =
    let code = ref 0 in
    for r = 0 to n - 1 do
      if r > 0 && not (ties permutation.(r - 1) permutation.(r)) then incr code;
      rank_codes.(permutation.(r)) <- !code;
      row_codes.(permutation.(r)) <- r
    done
  in
  (match pool with
  | Some pool when Task_pool.size pool > 1 && n > Task_pool.default_task_size ->
      (* Two-pass parallel scatter, bit-identical to the sequential loop:
         the rank code at position [r] is the number of peer-group
         boundaries in [1, r], so each chunk counts its own boundaries
         (its first position compares against the last position of the
         previous chunk), a serial prefix sum over the per-chunk counts
         yields every chunk's absolute starting code, and a second pass
         scatters.  Writes land at [permutation.(r)] — a permutation, so
         chunks never collide. *)
      let chunk = Task_pool.auto_chunk pool ~lo:0 ~hi:n ~max:Task_pool.default_task_size in
      let nchunks = ((n - 1) / chunk) + 1 in
      let bounds = Array.make nchunks 0 in
      Task_pool.parallel_for pool ~chunk ~lo:0 ~hi:n (fun lo hi ->
          let c = ref 0 in
          for r = max 1 lo to hi - 1 do
            if not (ties permutation.(r - 1) permutation.(r)) then incr c
          done;
          bounds.(lo / chunk) <- !c);
      let starts = Array.make nchunks 0 in
      for k = 1 to nchunks - 1 do
        starts.(k) <- starts.(k - 1) + bounds.(k - 1)
      done;
      Task_pool.parallel_for pool ~chunk ~lo:0 ~hi:n (fun lo hi ->
          let code = ref starts.(lo / chunk) in
          for r = lo to hi - 1 do
            if r > 0 && not (ties permutation.(r - 1) permutation.(r)) then incr code;
            rank_codes.(permutation.(r)) <- !code;
            row_codes.(permutation.(r)) <- r
          done)
  | _ -> scatter_seq ());
  { rank_codes; row_codes; permutation }

let of_cmp ?pool n ~cmp =
  let permutation = Introsort.sort_indices_by n ~cmp in
  of_sorted_permutation ?pool n permutation ~ties:(fun i j -> cmp i j = 0)

let of_floats ?pool ?(desc = false) values =
  let n = Array.length values in
  (* descending order = ascending order of the negated keys; negation is
     monotone for ordered floats (±0.0 stay distinguished the same way the
     comparator distinguishes them) but leaves NaN in place, and NaN is the
     MINIMUM of [Float.compare]'s total order — so after a descending sort
     the NaN block sits at the front while the comparator reference
     ([-1 * Float.compare], see Sort_spec) sends it to the back.  Rotate
     the block behind the ordered keys; its row-id tiebreak is preserved. *)
  let key = if desc then Array.map Float.neg values else Array.copy values in
  let permutation = Array.init n (fun i -> i) in
  Introsort.sort_float_pairs ~key ~payload:permutation;
  if desc then begin
    let k = ref 0 in
    while !k < n && Float.is_nan key.(!k) do incr k done;
    if !k > 0 && !k < n then begin
      let nans = Array.sub permutation 0 !k in
      Array.blit permutation !k permutation 0 (n - !k);
      Array.blit nans 0 permutation (n - !k) !k
    end
  end;
  of_sorted_permutation ?pool n permutation ~ties:(fun i j ->
      Float.compare values.(i) values.(j) = 0)

let of_ints ?pool values =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let n = Array.length values in
  let key = Array.copy values in
  let permutation = Array.init n (fun i -> i) in
  Parallel_sort.sort_pairs pool ~key ~payload:permutation;
  of_sorted_permutation ~pool n permutation ~ties:(fun i j -> values.(i) = values.(j))

(* ------------------------------------------------------------------ *)
(* Incremental extension (densified-rank deltas)                       *)
(* ------------------------------------------------------------------ *)

(* Every constructor above sorts by (key, row id) — [of_ints]/[of_floats]
   via the pair sorts' lexicographic (key, payload) order, [of_cmp] via the
   index tiebreak [sort_indices_by] adds. Appended rows have the largest
   row ids, so whenever none of them sorts strictly before the old maximum
   key, the from-scratch permutation is exactly [old permutation ++ sorted
   delta]: the old prefix is untouched and the rank codes continue from the
   last old peer group. [extend] patches the three arrays in O(old) blits
   plus O(delta log delta) sort work; any out-of-order append (a new row
   belonging before an old one) returns [None] and the caller rebuilds. *)
let extend old n ~cmp ~ties =
  let m = Array.length old.permutation in
  if m = 0 || n < m then None
  else begin
    let last = old.permutation.(m - 1) in
    let in_order = ref true in
    (try
       for j = m to n - 1 do
         if cmp last j > 0 then begin
           in_order := false;
           raise Exit
         end
       done
     with Exit -> ());
    if not !in_order then None
    else begin
      let permutation = Array.make n 0 in
      Array.blit old.permutation 0 permutation 0 m;
      (* delta sorted by (key, row id) — [sort_indices_by]'s index tiebreak
         is the row-id tiebreak because ids increase with delta position *)
      let delta = Introsort.sort_indices_by (n - m) ~cmp:(fun a b -> cmp (m + a) (m + b)) in
      for k = 0 to n - m - 1 do
        permutation.(m + k) <- m + delta.(k)
      done;
      let rank_codes = Array.make n 0 in
      let row_codes = Array.make n 0 in
      Array.blit old.rank_codes 0 rank_codes 0 m;
      Array.blit old.row_codes 0 row_codes 0 m;
      let code = ref old.rank_codes.(last) in
      for r = m to n - 1 do
        if not (ties permutation.(r - 1) permutation.(r)) then incr code;
        rank_codes.(permutation.(r)) <- !code;
        row_codes.(permutation.(r)) <- r
      done;
      Some { rank_codes; row_codes; permutation }
    end
  end

let extend_cmp old n ~cmp = extend old n ~cmp ~ties:(fun i j -> cmp i j = 0)

let extend_ints old values =
  extend old (Array.length values)
    ~cmp:(fun i j -> compare values.(i) values.(j))
    ~ties:(fun i j -> values.(i) = values.(j))

let extend_floats ?(desc = false) old values =
  (* descending = the argument-flipped comparison, NOT key negation: the
     flip sends NaN (the [Float.compare] minimum) to the back exactly like
     the comparator reference's [-1 * Float.compare] does *)
  let cmp =
    if desc then fun i j -> Float.compare values.(j) values.(i)
    else fun i j -> Float.compare values.(i) values.(j)
  in
  extend old (Array.length values) ~cmp
    ~ties:(fun i j -> Float.compare values.(i) values.(j) = 0)

let footprint_bytes e =
  8
  * (3 + 3 + Array.length e.rank_codes + Array.length e.row_codes + Array.length e.permutation)
