module Task_pool = Holistic_parallel.Task_pool
module Introsort = Holistic_sort.Introsort
module Parallel_sort = Holistic_sort.Parallel_sort

type t = { rank_codes : int array; row_codes : int array; permutation : int array }

let of_sorted_permutation n permutation ~ties =
  let rank_codes = Array.make n 0 in
  let row_codes = Array.make n 0 in
  let code = ref 0 in
  for r = 0 to n - 1 do
    if r > 0 && not (ties permutation.(r - 1) permutation.(r)) then incr code;
    rank_codes.(permutation.(r)) <- !code;
    row_codes.(permutation.(r)) <- r
  done;
  { rank_codes; row_codes; permutation }

let of_cmp n ~cmp =
  let permutation = Introsort.sort_indices_by n ~cmp in
  of_sorted_permutation n permutation ~ties:(fun i j -> cmp i j = 0)

let of_floats ?(desc = false) values =
  let n = Array.length values in
  (* descending order = ascending order of the negated keys; negation is
     monotone and total for floats (including ±0.0, which already tie) *)
  let key = if desc then Array.map Float.neg values else Array.copy values in
  let permutation = Array.init n (fun i -> i) in
  Introsort.sort_float_pairs ~key ~payload:permutation;
  of_sorted_permutation n permutation ~ties:(fun i j -> Float.compare values.(i) values.(j) = 0)

let of_ints ?pool values =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let n = Array.length values in
  let key = Array.copy values in
  let permutation = Array.init n (fun i -> i) in
  Parallel_sort.sort_pairs pool ~key ~payload:permutation;
  of_sorted_permutation n permutation ~ties:(fun i j -> values.(i) = values.(j))

let footprint_bytes e =
  8
  * (3 + 3 + Array.length e.rank_codes + Array.length e.row_codes + Array.length e.permutation)
