module Task_pool = Holistic_parallel.Task_pool
module Introsort = Holistic_sort.Introsort
module Parallel_sort = Holistic_sort.Parallel_sort

type t = { rank_codes : int array; row_codes : int array; permutation : int array }

let of_sorted_permutation ?pool n permutation ~ties =
  let rank_codes = Array.make n 0 in
  let row_codes = Array.make n 0 in
  let scatter_seq () =
    let code = ref 0 in
    for r = 0 to n - 1 do
      if r > 0 && not (ties permutation.(r - 1) permutation.(r)) then incr code;
      rank_codes.(permutation.(r)) <- !code;
      row_codes.(permutation.(r)) <- r
    done
  in
  (match pool with
  | Some pool when Task_pool.size pool > 1 && n > Task_pool.default_task_size ->
      (* Two-pass parallel scatter, bit-identical to the sequential loop:
         the rank code at position [r] is the number of peer-group
         boundaries in [1, r], so each chunk counts its own boundaries
         (its first position compares against the last position of the
         previous chunk), a serial prefix sum over the per-chunk counts
         yields every chunk's absolute starting code, and a second pass
         scatters.  Writes land at [permutation.(r)] — a permutation, so
         chunks never collide. *)
      let chunk = Task_pool.auto_chunk pool ~lo:0 ~hi:n ~max:Task_pool.default_task_size in
      let nchunks = ((n - 1) / chunk) + 1 in
      let bounds = Array.make nchunks 0 in
      Task_pool.parallel_for pool ~chunk ~lo:0 ~hi:n (fun lo hi ->
          let c = ref 0 in
          for r = max 1 lo to hi - 1 do
            if not (ties permutation.(r - 1) permutation.(r)) then incr c
          done;
          bounds.(lo / chunk) <- !c);
      let starts = Array.make nchunks 0 in
      for k = 1 to nchunks - 1 do
        starts.(k) <- starts.(k - 1) + bounds.(k - 1)
      done;
      Task_pool.parallel_for pool ~chunk ~lo:0 ~hi:n (fun lo hi ->
          let code = ref starts.(lo / chunk) in
          for r = lo to hi - 1 do
            if r > 0 && not (ties permutation.(r - 1) permutation.(r)) then incr code;
            rank_codes.(permutation.(r)) <- !code;
            row_codes.(permutation.(r)) <- r
          done)
  | _ -> scatter_seq ());
  { rank_codes; row_codes; permutation }

let of_cmp ?pool n ~cmp =
  let permutation = Introsort.sort_indices_by n ~cmp in
  of_sorted_permutation ?pool n permutation ~ties:(fun i j -> cmp i j = 0)

let of_floats ?pool ?(desc = false) values =
  let n = Array.length values in
  (* descending order = ascending order of the negated keys; negation is
     monotone and total for floats (including ±0.0, which already tie) *)
  let key = if desc then Array.map Float.neg values else Array.copy values in
  let permutation = Array.init n (fun i -> i) in
  Introsort.sort_float_pairs ~key ~payload:permutation;
  of_sorted_permutation ?pool n permutation ~ties:(fun i j ->
      Float.compare values.(i) values.(j) = 0)

let of_ints ?pool values =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let n = Array.length values in
  let key = Array.copy values in
  let permutation = Array.init n (fun i -> i) in
  Parallel_sort.sort_pairs pool ~key ~payload:permutation;
  of_sorted_permutation ~pool n permutation ~ties:(fun i j -> values.(i) = values.(j))

let footprint_bytes e =
  8
  * (3 + 3 + Array.length e.rank_codes + Array.length e.row_codes + Array.length e.permutation)
