(* The width-polymorphic merge sort tree (paper §4, §5.1).

   The paper's §5.1 storage layout is a per-integer-width template: every
   MST operand is rank-encoded into a dense integer domain, so the tree is
   instantiated at the narrowest width that fits. This functor holds the
   single copy of the build and query logic; {!Mst}, {!Mst_compact} and
   {!Mst16} instantiate it over the storages of {!Mst_storage}. Narrow
   widths build *directly* into their narrow level/cursor buffers — no
   64-bit tree is materialised first, so peak memory is the narrow tree
   alone and build-phase memory traffic is halved (resp. quartered)
   relative to the historical build-then-convert path.

   Levels are merged with a tournament (loser) tree rather than a binary
   heap: exactly ⌈log₂ fanout⌉ comparisons per emitted element instead of
   the heap's ~2·log₂ fanout, and the scratch state is reused across all
   runs of a build task instead of being reallocated per run. *)

module Task_pool = Holistic_parallel.Task_pool

module Make (S : Mst_storage.S) = struct
  type t = {
    n : int;
    fanout : int;
    sample : int;
    levels : S.buf array;
    (* payloads.(j).(i) = base position the element levels.(j).(i) came
       from; positions stay native ints at every width *)
    payloads : int array array option;
    (* stride.(j) = fanout^j, the nominal run length of level j *)
    stride : int array;
    (* cursors.(j) holds the sampled merge-cursor states of level j+1's
       runs: for the run with index r at level j+1 and sampled position s (a
       multiple of [sample]), entry [(r * spr.(j) + s / sample) * fanout + c]
       is the number of elements of child c (at level j) among the first s
       elements of the run. Empty when [sample = 0]. *)
    cursors : S.buf array;
    (* spr.(j) = sampled states per run of level j+1 *)
    spr : int array;
  }

  let length t = t.n
  let fanout t = t.fanout
  let sample t = t.sample
  let levels t = t.levels
  let cursors t = t.cursors
  let stride t = t.stride
  let spr t = t.spr
  let payloads t = t.payloads

  (* ------------------------------------------------------------------ *)
  (* Construction                                                        *)
  (* ------------------------------------------------------------------ *)

  (* Loser-tree merge scratch, sized once per build task for the maximum
     child count and reused across the task's runs. *)
  type scratch = {
    cur : int array; (* relative cursor into each child *)
    cbase : int array; (* absolute start of each child's source segment *)
    clen : int array; (* length of each child's source segment *)
    lval : int array; (* current head value per leaf *)
    lkey : int array; (* tie-break key: child index, or kk + c once exhausted *)
    node : int array; (* node.(1..kk-1): losing leaf of each internal match *)
    winners : int array; (* tournament initialisation workspace *)
  }

  let make_scratch fanout =
    let kk = ref 1 in
    while !kk < fanout do
      kk := !kk * 2
    done;
    let kk = !kk in
    {
      cur = Array.make fanout 0;
      cbase = Array.make fanout 0;
      clen = Array.make fanout 0;
      lval = Array.make kk 0;
      lkey = Array.make kk 0;
      node = Array.make kk 0;
      winners = Array.make (2 * kk) 0;
    }

  (* Merge the children of one output run of level [j] (children live at
     level [j - 1], have nominal length [child_stride] and tile [run_base,
     run_base + run_len)), writing the sorted output and recording cursor
     states. Exhausted leaves sit at (max_int, kk + c): a live leaf holding
     a genuine max_int still wins its ties because its key stays below kk.

     [src]/[dst]/[cursors] are plain [int array] views of the level and
     cursor storage, globally indexed — either the storage itself (word
     width) or the shared wide shadows narrowed after the task completes
     (narrow widths). Keeping the per-element loop on [int array] is what
     makes one template serve every width without a functor-indirected call
     per element (no flambda). *)
  let merge_one_run ~sc ~src ~src_payload ~dst ~dst_payload ~cursors ~state_base ~fanout ~sample
      ~run_base ~run_len ~child_stride =
    let nc = ((run_len - 1) / child_stride) + 1 in
    let kk = ref 1 in
    while !kk < nc do
      kk := !kk * 2
    done;
    let kk = !kk in
    let cur = sc.cur and cbase = sc.cbase and clen = sc.clen in
    let lval = sc.lval and lkey = sc.lkey and node = sc.node in
    let sbase = run_base and dbase = run_base in
    for c = 0 to kk - 1 do
      if c < nc then begin
        let len = min child_stride (run_len - (c * child_stride)) in
        cur.(c) <- 0;
        cbase.(c) <- sbase + (c * child_stride);
        clen.(c) <- len;
        if len > 0 then begin
          lval.(c) <- src.(sbase + (c * child_stride));
          lkey.(c) <- c
        end
        else begin
          lval.(c) <- max_int;
          lkey.(c) <- kk + c
        end
      end
      else begin
        lval.(c) <- max_int;
        lkey.(c) <- kk + c
      end
    done;
    let less a b = lval.(a) < lval.(b) || (lval.(a) = lval.(b) && lkey.(a) < lkey.(b)) in
    (* initial tournament: winners bubble up, losers stick to the nodes *)
    let w = sc.winners in
    for c = 0 to kk - 1 do
      w.(kk + c) <- c
    done;
    for i = kk - 1 downto 1 do
      let a = w.(2 * i) and b = w.((2 * i) + 1) in
      if less a b then begin
        w.(i) <- a;
        node.(i) <- b
      end
      else begin
        w.(i) <- b;
        node.(i) <- a
      end
    done;
    let winner = ref (if kk = 1 then 0 else w.(1)) in
    let winner_val = ref lval.(!winner) in
    (* cursor states are recorded every [sample] elements; a countdown
       avoids a division per emitted element, and states land sequentially
       from [state_base] *)
    let state = ref state_base in
    let until_record = ref 0 in
    for emitted = 0 to run_len - 1 do
      if sample > 0 then begin
        if !until_record = 0 then begin
          let b = !state in
          for c = 0 to nc - 1 do
            Array.unsafe_set cursors (b + c) (Array.unsafe_get cur c)
          done;
          state := b + fanout;
          until_record := sample
        end;
        decr until_record
      end;
      let c = !winner in
      Array.unsafe_set dst (dbase + emitted) !winner_val;
      (match src_payload, dst_payload with
      | Some sp, Some dp ->
          Array.unsafe_set dp (run_base + emitted)
            (Array.unsafe_get sp (Array.unsafe_get cbase c + Array.unsafe_get cur c))
      | _ -> ());
      let cc = Array.unsafe_get cur c + 1 in
      Array.unsafe_set cur c cc;
      if cc < Array.unsafe_get clen c then
        Array.unsafe_set lval c (Array.unsafe_get src (Array.unsafe_get cbase c + cc))
      else begin
        Array.unsafe_set lval c max_int;
        Array.unsafe_set lkey c (kk + c)
      end;
      (* replay the matches on the path from leaf [c] to the root; the
         running winner's (value, key) ride in registers, arrays are only
         read for the stored losers *)
      let wc = ref c in
      let wv = ref (Array.unsafe_get lval c) in
      let wk = ref (Array.unsafe_get lkey c) in
      let i = ref ((kk + c) lsr 1) in
      while !i >= 1 do
        let l = Array.unsafe_get node !i in
        let lv = Array.unsafe_get lval l in
        if lv < !wv || (lv = !wv && Array.unsafe_get lkey l < !wk) then begin
          Array.unsafe_set node !i !wc;
          wc := l;
          wv := lv;
          wk := Array.unsafe_get lkey l
        end;
        i := !i lsr 1
      done;
      winner := !wc;
      winner_val := !wv
    done;
    (* trailing state at position [run_len], present iff it is a sample
       multiple (countdown hits zero exactly then) *)
    if sample > 0 && !until_record = 0 then begin
      let b = !state in
      for c = 0 to nc - 1 do
        Array.unsafe_set cursors (b + c) (Array.unsafe_get cur c)
      done
    end

  (* [merge_one_run] over accessor closures instead of [int array] views:
     the out-of-core build path, where neither the wide shadows nor a
     materialised operand array exist. [src_get] reads level j-1 straight
     from storage; [dst_put]/[cur_put] are sequential buffered writers
     into level j / its cursor states. Merge logic, tie-breaking and
     sampled-state placement are identical to [merge_one_run], so the
     output is bit-identical; only the element transport differs. *)
  let merge_one_run_gen ~sc ~src_get ~dst_put ~cur_put ~state_base ~fanout ~sample ~run_base
      ~run_len ~child_stride =
    let nc = ((run_len - 1) / child_stride) + 1 in
    let kk = ref 1 in
    while !kk < nc do
      kk := !kk * 2
    done;
    let kk = !kk in
    let cur = sc.cur and cbase = sc.cbase and clen = sc.clen in
    let lval = sc.lval and lkey = sc.lkey and node = sc.node in
    let sbase = run_base and dbase = run_base in
    for c = 0 to kk - 1 do
      if c < nc then begin
        let len = min child_stride (run_len - (c * child_stride)) in
        cur.(c) <- 0;
        cbase.(c) <- sbase + (c * child_stride);
        clen.(c) <- len;
        if len > 0 then begin
          lval.(c) <- src_get (sbase + (c * child_stride));
          lkey.(c) <- c
        end
        else begin
          lval.(c) <- max_int;
          lkey.(c) <- kk + c
        end
      end
      else begin
        lval.(c) <- max_int;
        lkey.(c) <- kk + c
      end
    done;
    let less a b = lval.(a) < lval.(b) || (lval.(a) = lval.(b) && lkey.(a) < lkey.(b)) in
    let w = sc.winners in
    for c = 0 to kk - 1 do
      w.(kk + c) <- c
    done;
    for i = kk - 1 downto 1 do
      let a = w.(2 * i) and b = w.((2 * i) + 1) in
      if less a b then begin
        w.(i) <- a;
        node.(i) <- b
      end
      else begin
        w.(i) <- b;
        node.(i) <- a
      end
    done;
    let winner = ref (if kk = 1 then 0 else w.(1)) in
    let winner_val = ref lval.(!winner) in
    let state = ref state_base in
    let until_record = ref 0 in
    for emitted = 0 to run_len - 1 do
      if sample > 0 then begin
        if !until_record = 0 then begin
          let b = !state in
          for c = 0 to nc - 1 do
            cur_put (b + c) (Array.unsafe_get cur c)
          done;
          state := b + fanout;
          until_record := sample
        end;
        decr until_record
      end;
      let c = !winner in
      dst_put (dbase + emitted) !winner_val;
      let cc = Array.unsafe_get cur c + 1 in
      Array.unsafe_set cur c cc;
      if cc < Array.unsafe_get clen c then
        Array.unsafe_set lval c (src_get (Array.unsafe_get cbase c + cc))
      else begin
        Array.unsafe_set lval c max_int;
        Array.unsafe_set lkey c (kk + c)
      end;
      let wc = ref c in
      let wv = ref (Array.unsafe_get lval c) in
      let wk = ref (Array.unsafe_get lkey c) in
      let i = ref ((kk + c) lsr 1) in
      while !i >= 1 do
        let l = Array.unsafe_get node !i in
        let lv = Array.unsafe_get lval l in
        if lv < !wv || (lv = !wv && Array.unsafe_get lkey l < !wk) then begin
          Array.unsafe_set node !i !wc;
          wc := l;
          wv := lv;
          wk := Array.unsafe_get lkey l
        end;
        i := !i lsr 1
      done;
      winner := !wc;
      winner_val := !wv
    done;
    if sample > 0 && !until_record = 0 then begin
      let b = !state in
      for c = 0 to nc - 1 do
        cur_put (b + c) (Array.unsafe_get cur c)
      done
    end

  let create ?pool ?(fanout = 32) ?(sample = 32) ?(track_payload = false) a =
    if fanout < 2 then invalid_arg (S.name ^ ".create: fanout must be >= 2");
    if sample < 0 then invalid_arg (S.name ^ ".create: sample must be >= 0");
    let pool = match pool with Some p -> p | None -> Task_pool.default () in
    let n = Array.length a in
    if n > S.max_value then
      invalid_arg
        (Printf.sprintf "%s.create: length %d exceeds %d-bit storage" S.name n S.width_bits);
    let range_msg =
      Printf.sprintf "%s.create: value exceeds %d-bit storage range" S.name S.width_bits
    in
    (* Number of levels above the base: smallest h with fanout^h >= n. *)
    let h = ref 0 in
    let s = ref 1 in
    while !s < n do
      s := !s * fanout;
      incr h
    done;
    let h = !h in
    let stride = Array.make (h + 1) 1 in
    for j = 1 to h do
      stride.(j) <- stride.(j - 1) * fanout
    done;
    let levels =
      Array.init (h + 1) (fun j -> if j = 0 then S.of_int_array ~msg:range_msg a else S.create n)
    in
    let payloads =
      if track_payload then
        Some
          (Array.init (h + 1) (fun j ->
               if j = 0 then Array.init n (fun i -> i) else Array.make n 0))
      else None
    in
    let spr = Array.make h 0 in
    let states = Array.make h 0 in
    let cursors =
      Array.init h (fun j ->
          if sample = 0 then S.create 0
          else begin
            let run_len = min stride.(j + 1) n in
            let nruns = if n = 0 then 0 else ((n - 1) / stride.(j + 1)) + 1 in
            spr.(j) <- (run_len / sample) + 1;
            states.(j) <- nruns * spr.(j) * fanout;
            S.create states.(j)
          end)
    in
    (* Narrow widths merge through shared full-width shadow buffers so the
       per-element loop stays on plain [int array]s (§5.1 template, no
       flambda): level j's output is produced wide and narrowed into storage
       span-by-span while each task's output is still cache-warm, then
       serves as the next level's wide source. Level 0's wide view is the
       (already validated) input itself, so no widening pass ever runs. The
       shadows are transient and span 2n + max-states words — far below the
       full 64-bit tree the historical build-then-convert path kept live.
       Word-width storage exposes its arrays directly and skips all of
       this. *)
    let narrow = n > 0 && S.as_ints levels.(0) = None in
    let sequential = Task_pool.size pool = 1 || n <= Task_pool.default_task_size in
    let shadow_a = if narrow && h >= 1 then Array.make n 0 else [||] in
    let shadow_b = if narrow && h >= 2 then Array.make n 0 else [||] in
    let shadow_c =
      if narrow && sample > 0 && h >= 1 then Array.make (Array.fold_left max 0 states) 0
      else [||]
    in
    for j = 1 to h do
      let l = stride.(j) in
      let nruns = ((n - 1) / l) + 1 in
      let src = levels.(j - 1) and dst = levels.(j) in
      let src_payload = Option.map (fun p -> p.(j - 1)) payloads in
      let dst_payload = Option.map (fun p -> p.(j)) payloads in
      let spr_j = if sample = 0 then 0 else spr.(j - 1) in
      let sarr, darr, carr =
        if not narrow then
          ( Option.get (S.as_ints src),
            Option.get (S.as_ints dst),
            if sample = 0 then [||] else Option.get (S.as_ints cursors.(j - 1)) )
        else
          ( (if j = 1 then a else if j land 1 = 0 then shadow_a else shadow_b),
            (if j land 1 = 1 then shadow_a else shadow_b),
            shadow_c )
      in
      (* [merge_runs rlo rhi] merges runs [rlo, rhi) of this level — the
         independent unit of work: one scratch per call, shared by all its
         runs, and (on narrow widths) a narrowing blit of exactly the span
         the calls' runs produced, done while that output is still
         cache-warm. *)
      let merge_runs rlo rhi =
        let sc = make_scratch fanout in
        for r = rlo to rhi - 1 do
          let run_base = r * l in
          let run_len = min l (n - run_base) in
          merge_one_run ~sc ~src:sarr ~src_payload ~dst:darr ~dst_payload ~cursors:carr
            ~state_base:(r * spr_j * fanout)
            ~fanout ~sample ~run_base ~run_len ~child_stride:stride.(j - 1)
        done;
        if narrow then begin
          let span_base = rlo * l in
          let span_len = min (rhi * l) n - span_base in
          S.blit_from_ints darr ~pos:span_base dst ~dst_pos:span_base ~len:span_len;
          if sample > 0 then begin
            let state_lo = rlo * spr_j * fanout in
            let state_len = min (rhi * spr_j * fanout) states.(j - 1) - state_lo in
            S.blit_from_ints carr ~pos:state_lo cursors.(j - 1) ~dst_pos:state_lo
              ~len:state_len
          end
        end
      in
      (* Runs are independent, so above the sequential cutoff whole runs
         are grouped into tasks of roughly the pool's task size; tasks
         touch disjoint spans of the shadows, and the pool joins between
         levels.  Below the cutoff (a tree under one task's worth of rows
         — the common per-partition case, often itself built from inside a
         partition morsel) the task machinery is skipped entirely so the
         small-tree constant factor stays at the sequential build's. *)
      if sequential then merge_runs 0 nruns
      else begin
        let runs_per_task = max 1 (Task_pool.default_task_size / l) in
        Task_pool.parallel_for pool ~lo:0 ~hi:nruns ~chunk:runs_per_task merge_runs
      end
    done;
    { n; fanout; sample; levels; payloads; stride; cursors; spr }

  (* ------------------------------------------------------------------ *)
  (* Streamed (out-of-core) construction                                 *)
  (* ------------------------------------------------------------------ *)

  (* Chunk size of the streamed build's transient buffers: the leaf fill
     chunk and each level's write-behind buffers. *)
  let stream_chunk = 65536

  let create_stream ?(fanout = 32) ?(sample = 32) ~n ~fill () =
    if fanout < 2 then invalid_arg (S.name ^ ".create_stream: fanout must be >= 2");
    if sample < 0 then invalid_arg (S.name ^ ".create_stream: sample must be >= 0");
    if n < 0 then invalid_arg (S.name ^ ".create_stream: negative length");
    if n > S.max_value then
      invalid_arg
        (Printf.sprintf "%s.create_stream: length %d exceeds %d-bit storage" S.name n S.width_bits);
    let range_msg =
      Printf.sprintf "%s.create_stream: value exceeds %d-bit storage range" S.name S.width_bits
    in
    let h = ref 0 in
    let s = ref 1 in
    while !s < n do
      s := !s * fanout;
      incr h
    done;
    let h = !h in
    let stride = Array.make (h + 1) 1 in
    for j = 1 to h do
      stride.(j) <- stride.(j - 1) * fanout
    done;
    let levels = Array.init (h + 1) (fun _ -> S.create n) in
    let spr = Array.make h 0 in
    let states = Array.make h 0 in
    let cursors =
      Array.init h (fun j ->
          if sample = 0 then S.create 0
          else begin
            let run_len = min stride.(j + 1) n in
            let nruns = if n = 0 then 0 else ((n - 1) / stride.(j + 1)) + 1 in
            spr.(j) <- (run_len / sample) + 1;
            states.(j) <- nruns * spr.(j) * fanout;
            S.create states.(j)
          end)
    in
    (* cursor storage is only partially covered by real states (nc <=
       fanout slots per state); [create]'s paths leave the rest zero, so
       pre-zero it here for bit-identical buffers *)
    let zero_fill dst =
      let len = S.length dst in
      if len > 0 then begin
        let z = Array.make (min stream_chunk len) 0 in
        let p = ref 0 in
        while !p < len do
          let l = min (Array.length z) (len - !p) in
          S.blit_from_ints z ~pos:0 dst ~dst_pos:!p ~len:l;
          p := !p + l
        done
      end
    in
    Array.iter zero_fill cursors;
    (* stream the leaves in chunks, validating the range that
       [blit_from_ints] deliberately does not *)
    if n > 0 then begin
      let chunk = Array.make (min stream_chunk n) 0 in
      let pos = ref 0 in
      while !pos < n do
        let len = min (Array.length chunk) (n - !pos) in
        fill chunk ~pos:!pos ~len;
        for i = 0 to len - 1 do
          let v = Array.unsafe_get chunk i in
          if v < S.min_value || v > S.max_value then invalid_arg range_msg
        done;
        S.blit_from_ints chunk ~pos:0 levels.(0) ~dst_pos:!pos ~len;
        pos := !pos + len
      done
    end;
    (* write-behind buffered storage writer: indices must be
       non-decreasing; unwritten slots inside a flushed span go out as
       zeros (matching [create]'s zeroed gaps) *)
    let make_writer dst =
      let wcap = min stream_chunk (max 1 (S.length dst)) in
      let buf = Array.make wcap 0 in
      let base = ref (-1) and hi = ref 0 in
      let flush () =
        if !base >= 0 && !hi > !base then
          S.blit_from_ints buf ~pos:0 dst ~dst_pos:!base ~len:(!hi - !base);
        base := -1
      in
      let put idx v =
        if !base < 0 || idx - !base >= wcap then begin
          flush ();
          Array.fill buf 0 wcap 0;
          base := idx;
          hi := idx
        end;
        buf.(idx - !base) <- v;
        if idx + 1 > !hi then hi := idx + 1
      in
      (put, flush)
    in
    let sc = make_scratch fanout in
    for j = 1 to h do
      let l = stride.(j) in
      let nruns = ((n - 1) / l) + 1 in
      let src = levels.(j - 1) in
      let src_get i = S.get src i in
      let dst_put, dst_flush = make_writer levels.(j) in
      let cur_put, cur_flush =
        if sample = 0 then ((fun _ _ -> ()), fun () -> ()) else make_writer cursors.(j - 1)
      in
      let spr_j = if sample = 0 then 0 else spr.(j - 1) in
      for r = 0 to nruns - 1 do
        let run_base = r * l in
        let run_len = min l (n - run_base) in
        merge_one_run_gen ~sc ~src_get ~dst_put ~cur_put
          ~state_base:(r * spr_j * fanout)
          ~fanout ~sample ~run_base ~run_len ~child_stride:stride.(j - 1)
      done;
      dst_flush ();
      cur_flush ()
    done;
    { n; fanout; sample; levels; payloads = None; stride; cursors; spr }

  (* ------------------------------------------------------------------ *)
  (* Run-stacking append (incremental maintenance)                       *)
  (* ------------------------------------------------------------------ *)

  (* [append t a] produces the tree [create a] without re-merging the runs
     that [create] would rebuild identically: a level-[j] run whose span
     lies entirely inside the old prefix has the same leaves, hence the
     same sorted content and the same sampled cursor states, so it is
     blitted from the old tree; only the runs overlapping the appended
     suffix [t.n, |a|) — at most one partial run per level, plus the runs
     the new rows create — go through {!merge_one_run}. This is the
     run-stacking shape of DuckDB's WindowDistinctSortTree [build_level]/
     [build_run] machinery: appended rows stack up as side runs and are
     merged into a level only once the level's stride covers them.

     Returns [None] (caller rebuilds from scratch) when the tree tracks
     payloads, when [a] shrank or no longer starts with the old leaves, or
     when the new size overflows the storage width. The result is
     bit-identical to [create a] by construction: stable runs are copies,
     re-merged runs feed the same deterministic merge the full build runs.

     The maintenance pass works on wide ([int array]) levels and re-encodes
     at the end — the same transient-shadow discipline as [create], and the
     stable-run blits are memcpy-speed against the full build's loser-tree
     merges, so maintenance cost is dominated by the re-merged suffix. *)
  let append t a =
    let n_old = t.n and n = Array.length a in
    if t.payloads <> None || n < n_old || n > S.max_value then None
    else begin
      let prefix_ok = ref true in
      let l0 = t.levels.(0) in
      (try
         for i = 0 to n_old - 1 do
           if S.get l0 i <> Array.unsafe_get a i then begin
             prefix_ok := false;
             raise Exit
           end
         done
       with Exit -> ());
      if not !prefix_ok then None
      else begin
        let fanout = t.fanout and sample = t.sample in
        let h = ref 0 in
        let s = ref 1 in
        while !s < n do
          s := !s * fanout;
          incr h
        done;
        let h = !h in
        let stride = Array.make (h + 1) 1 in
        for j = 1 to h do
          stride.(j) <- stride.(j - 1) * fanout
        done;
        let levels = Array.make (h + 1) [||] in
        levels.(0) <- Array.copy a;
        let spr = Array.make h 0 in
        let cursors =
          Array.init h (fun j ->
              if sample = 0 then [||]
              else begin
                let run_len = min stride.(j + 1) n in
                let nruns = if n = 0 then 0 else ((n - 1) / stride.(j + 1)) + 1 in
                spr.(j) <- (run_len / sample) + 1;
                Array.make (nruns * spr.(j) * fanout) 0
              end)
        in
        let h_old = Array.length t.levels - 1 in
        let sc = make_scratch fanout in
        for j = 1 to h do
          levels.(j) <- Array.make n 0;
          let l = stride.(j) in
          let nruns = ((n - 1) / l) + 1 in
          let spr_j = if sample = 0 then 0 else spr.(j - 1) in
          let src = levels.(j - 1) and dst = levels.(j) in
          let carr = if sample = 0 then [||] else cursors.(j - 1) in
          for r = 0 to nruns - 1 do
            let run_base = r * l in
            let run_len = min l (n - run_base) in
            if j <= h_old && run_len = l && run_base + l <= n_old then begin
              (* stable run: same leaves, same merge → copy values and
                 sampled cursor states verbatim from the old tree *)
              (match S.as_ints t.levels.(j) with
              | Some old -> Array.blit old run_base dst run_base run_len
              | None ->
                  for i = run_base to run_base + run_len - 1 do
                    dst.(i) <- S.get t.levels.(j) i
                  done);
              if sample > 0 then begin
                let sb = r * spr_j * fanout in
                let slen = spr_j * fanout in
                match S.as_ints t.cursors.(j - 1) with
                | Some oldc -> Array.blit oldc sb carr sb slen
                | None ->
                    for i = sb to sb + slen - 1 do
                      carr.(i) <- S.get t.cursors.(j - 1) i
                    done
              end
            end
            else
              merge_one_run ~sc ~src ~src_payload:None ~dst ~dst_payload:None ~cursors:carr
                ~state_base:(r * spr_j * fanout)
                ~fanout ~sample ~run_base ~run_len ~child_stride:stride.(j - 1)
          done
        done;
        let msg =
          Printf.sprintf "%s.append: value exceeds %d-bit storage range" S.name S.width_bits
        in
        match
          {
            n;
            fanout;
            sample;
            levels = Array.map (fun l -> S.of_int_array ~msg l) levels;
            payloads = None;
            stride;
            cursors = Array.map (fun c -> S.of_int_array ~msg c) cursors;
            spr;
          }
        with
        | t' -> Some t'
        | exception Invalid_argument _ -> None
      end
    end

  (* Re-encode an already-built tree's raw 64-bit representation (the
     historical {!Mst_compact.of_mst} conversion path, kept for comparison
     benchmarks). *)
  let of_int_internals ~msg ~n ~fanout ~sample ~levels ~cursors ~stride ~spr =
    {
      n;
      fanout;
      sample;
      levels = Array.map (fun l -> S.of_int_array ~msg l) levels;
      payloads = None;
      stride = Array.copy stride;
      cursors = Array.map (fun c -> S.of_int_array ~msg c) cursors;
      spr = Array.copy spr;
    }

  (* ------------------------------------------------------------------ *)
  (* Cascaded child positions                                            *)
  (* ------------------------------------------------------------------ *)

  (* Position of [less_than] inside child [c] of the node at level [j]
     spanning [run_base, run_base + run_len), given [pos], the position of
     [less_than] in the node's own sorted run. The sampled cursor state at
     s = ⌊pos/k⌋·k bounds the answer to a window of at most [pos - s < k]
     elements (§4.2). *)
  let child_position t j run_base pos less_than c ~child_base ~child_len =
    let below = t.levels.(j - 1) in
    if t.sample = 0 then
      S.lower_bound below ~lo:child_base ~hi:(child_base + child_len) less_than - child_base
    else begin
      let k = t.sample in
      let s = pos / k * k in
      let run_idx = run_base / t.stride.(j) in
      let sbase = ((run_idx * t.spr.(j - 1)) + (s / k)) * t.fanout in
      let off = S.get t.cursors.(j - 1) (sbase + c) in
      let whi = min (off + (pos - s)) child_len in
      S.lower_bound below ~lo:(child_base + off) ~hi:(child_base + whi) less_than - child_base
    end

  (* ------------------------------------------------------------------ *)
  (* Counting                                                            *)
  (* ------------------------------------------------------------------ *)

  let rec descend_count t j run_base run_len pos lo hi less_than =
    (* invariant: [lo,hi) intersects but does not contain
       [run_base, run_base+run_len) *)
    let lc = t.stride.(j - 1) in
    let nc = ((run_len - 1) / lc) + 1 in
    (* hoisted per-node cascade state (the per-child lookup only varies in
       the cursor slot and search window) *)
    let below = t.levels.(j - 1) in
    let cursors = t.cursors in
    let sbase, slack =
      if t.sample = 0 then (0, 0)
      else begin
        let k = t.sample in
        let s = pos / k * k in
        let run_idx = run_base / t.stride.(j) in
        (((run_idx * t.spr.(j - 1)) + (s / k)) * t.fanout, pos - s)
      end
    in
    let cpos c ~child_base ~child_len =
      if t.sample = 0 then
        S.lower_bound below ~lo:child_base ~hi:(child_base + child_len) less_than - child_base
      else begin
        let off = S.get cursors.(j - 1) (sbase + c) in
        let whi = min (off + slack) child_len in
        S.lower_bound below ~lo:(child_base + off) ~hi:(child_base + whi) less_than - child_base
      end
    in
    let c_first = if lo <= run_base then 0 else (lo - run_base) / lc in
    let c_last = if hi >= run_base + run_len then nc - 1 else (hi - 1 - run_base) / lc in
    let inside = c_last - c_first + 1 in
    (* contribution of child [c], whether covered or partial *)
    let contrib cp ~child_base ~child_len =
      if lo <= child_base && child_base + child_len <= hi then cp
      else descend_count t (j - 1) child_base child_len cp lo hi less_than
    in
    if 2 * inside <= nc + 2 then begin
      (* few children intersect: sum them directly *)
      let acc = ref 0 in
      for c = c_first to c_last do
        let child_base = run_base + (c * lc) in
        let child_len = min lc (run_len - (c * lc)) in
        acc := !acc + contrib (cpos c ~child_base ~child_len) ~child_base ~child_len
      done;
      !acc
    end
    else begin
      (* most children are covered: start from the node's own count and
         subtract the children outside the range (the cheaper complement) *)
      let acc = ref pos in
      for c = 0 to c_first - 1 do
        let child_base = run_base + (c * lc) in
        let child_len = min lc (run_len - (c * lc)) in
        acc := !acc - cpos c ~child_base ~child_len
      done;
      for c = c_last + 1 to nc - 1 do
        let child_base = run_base + (c * lc) in
        let child_len = min lc (run_len - (c * lc)) in
        acc := !acc - cpos c ~child_base ~child_len
      done;
      let fix c =
        let child_base = run_base + (c * lc) in
        let child_len = min lc (run_len - (c * lc)) in
        if not (lo <= child_base && child_base + child_len <= hi) then begin
          let cp = cpos c ~child_base ~child_len in
          acc := !acc - cp + descend_count t (j - 1) child_base child_len cp lo hi less_than
        end
      in
      fix c_first;
      if c_last <> c_first then fix c_last;
      !acc
    end

  let count t ~lo ~hi ~less_than =
    let lo = max lo 0 and hi = min hi t.n in
    if lo >= hi then 0
    else begin
      let h = Array.length t.levels - 1 in
      let pos = S.lower_bound t.levels.(h) ~lo:0 ~hi:t.n less_than in
      if lo = 0 && hi = t.n then pos else descend_count t h 0 t.n pos lo hi less_than
    end

  let count_ranges t ~ranges ~less_than =
    Array.fold_left (fun acc (lo, hi) -> acc + count t ~lo ~hi ~less_than) 0 ranges

  let rec descend_iter t j run_base run_len pos lo hi less_than f =
    let child_stride = t.stride.(j - 1) in
    let nc = ((run_len - 1) / child_stride) + 1 in
    for c = 0 to nc - 1 do
      let child_base = run_base + (c * child_stride) in
      let child_len = min child_stride (run_len - (c * child_stride)) in
      if child_base < hi && child_base + child_len > lo then begin
        let cpos = child_position t j run_base pos less_than c ~child_base ~child_len in
        if lo <= child_base && child_base + child_len <= hi then
          f ~level:(j - 1) ~base:child_base ~prefix:cpos
        else descend_iter t (j - 1) child_base child_len cpos lo hi less_than f
      end
    done

  let iter_covered t ~lo ~hi ~less_than f =
    let lo = max lo 0 and hi = min hi t.n in
    if lo < hi then begin
      let h = Array.length t.levels - 1 in
      let pos = S.lower_bound t.levels.(h) ~lo:0 ~hi:t.n less_than in
      if lo = 0 && hi = t.n then f ~level:h ~base:0 ~prefix:pos
      else descend_iter t h 0 t.n pos lo hi less_than f
    end

  (* ------------------------------------------------------------------ *)
  (* Selection                                                           *)
  (* ------------------------------------------------------------------ *)

  let count_value_ranges t ~ranges =
    if t.n = 0 then 0
    else begin
      let h = Array.length t.levels - 1 in
      let top = t.levels.(h) in
      Array.fold_left
        (fun acc (vlo, vhi) ->
          acc + S.lower_bound top ~lo:0 ~hi:t.n vhi - S.lower_bound top ~lo:0 ~hi:t.n vlo)
        0 ranges
    end

  (* [bounds] holds, for the current node's run, the run-relative position
     of every range bound: bounds.(2r) for ranges.(r)'s lower value bound,
     bounds.(2r+1) for its upper. The qualifying count inside the node is
     Σ (bounds.(2r+1) - bounds.(2r)). *)
  let rec descend_select t j run_base run_len (ranges : (int * int) array) bounds m =
    if j = 0 then begin
      assert (m = 0);
      S.get t.levels.(0) run_base
    end
    else begin
      let child_stride = t.stride.(j - 1) in
      let nc = ((run_len - 1) / child_stride) + 1 in
      let nr = Array.length ranges in
      let nb = 2 * nr in
      let child_bounds = Array.make nb 0 in
      let below = t.levels.(j - 1) in
      (* hoisted per-node cascade state: the sampled cursor slot and the
         search slack of each bound are fixed across children, so compute
         them once per node instead of once per (bound, child) pair *)
      let sbase = Array.make nb 0 and slack = Array.make nb 0 in
      if t.sample > 0 then begin
        let k = t.sample in
        let node_states = run_base / t.stride.(j) * t.spr.(j - 1) in
        for b = 0 to nb - 1 do
          let s = bounds.(b) / k * k in
          sbase.(b) <- (node_states + (s / k)) * t.fanout;
          slack.(b) <- bounds.(b) - s
        done
      end;
      let m = ref m in
      let result = ref 0 in
      let found = ref false in
      let c = ref 0 in
      while not !found do
        assert (!c < nc);
        let child_base = run_base + (!c * child_stride) in
        let child_len = min child_stride (run_len - (!c * child_stride)) in
        let qual = ref 0 in
        for b = 0 to nb - 1 do
          let v = if b land 1 = 0 then fst ranges.(b / 2) else snd ranges.(b / 2) in
          let cp =
            if t.sample = 0 then
              S.lower_bound below ~lo:child_base ~hi:(child_base + child_len) v - child_base
            else begin
              let off = S.get t.cursors.(j - 1) (sbase.(b) + !c) in
              let whi = min (off + slack.(b)) child_len in
              S.lower_bound below ~lo:(child_base + off) ~hi:(child_base + whi) v - child_base
            end
          in
          child_bounds.(b) <- cp;
          if b land 1 = 1 then qual := !qual + cp - child_bounds.(b - 1)
        done;
        if !m < !qual then begin
          result := descend_select t (j - 1) child_base child_len ranges child_bounds !m;
          found := true
        end
        else begin
          m := !m - !qual;
          incr c
        end
      done;
      !result
    end

  let select t ~ranges ~nth =
    let total = count_value_ranges t ~ranges in
    if nth < 0 || nth >= total then
      invalid_arg
        (Printf.sprintf "%s.select: nth=%d out of bounds (%d qualifying)" S.name nth total);
    let h = Array.length t.levels - 1 in
    let top = t.levels.(h) in
    let nr = Array.length ranges in
    let bounds = Array.make (2 * nr) 0 in
    for r = 0 to nr - 1 do
      let vlo, vhi = ranges.(r) in
      bounds.(2 * r) <- S.lower_bound top ~lo:0 ~hi:t.n vlo;
      bounds.((2 * r) + 1) <- S.lower_bound top ~lo:0 ~hi:t.n vhi
    done;
    descend_select t h 0 t.n ranges bounds nth

  (* ------------------------------------------------------------------ *)
  (* Statistics                                                          *)
  (* ------------------------------------------------------------------ *)

  type stats = {
    level_elements : int;
    cursor_elements : int;
    payload_elements : int;
    heap_bytes : int;
  }

  let stats t =
    let level_elements = Array.fold_left (fun acc l -> acc + S.length l) 0 t.levels in
    let cursor_elements = Array.fold_left (fun acc c -> acc + S.length c) 0 t.cursors in
    let payload_elements =
      match t.payloads with
      | None -> 0
      | Some p -> Array.fold_left (fun acc l -> acc + Array.length l) 0 p
    in
    {
      level_elements;
      cursor_elements;
      payload_elements;
      heap_bytes =
        (S.bytes_per_element * (level_elements + cursor_elements)) + (8 * payload_elements);
    }

  (* The memory-accounting contract (ISSUE 5): bytes held by the built
     structure.  Element storage dominates; per-array headers and the
     record itself are a few dozen words against megabytes of levels, so
     the exact-arithmetic element count is the footprint. *)
  let footprint_bytes t = (stats t).heap_bytes
end
