module type MONOID = sig
  type t

  val identity : t
  val combine : t -> t -> t
end

module Make (M : MONOID) = struct
  type t = {
    mst : Mst.t;
    (* prefixes.(j).(i): combination of the values of the elements of
       level j's run containing i, from the run start up to and including
       position i. *)
    prefixes : M.t array array;
  }

  let build_prefixes mst value =
    let levels = Mst.levels mst in
    let payloads = Mst.payload_levels mst in
    let fanout = Mst.fanout mst in
    Array.mapi
      (fun j level ->
        let n = Array.length level in
        let stride =
          (* fanout^j, saturating at n *)
          let s = ref 1 in
          for _ = 1 to j do
            if !s < n then s := !s * fanout
          done;
          max 1 !s
        in
        let payload = payloads.(j) in
        let pref = Array.make n M.identity in
        for i = 0 to n - 1 do
          let v = value payload.(i) in
          pref.(i) <- (if i mod stride = 0 then v else M.combine pref.(i - 1) v)
        done;
        pref)
      levels

  let create ?pool ?fanout ?sample ~keys ~value () =
    let mst = Mst.create ?pool ?fanout ?sample ~track_payload:true keys in
    { mst; prefixes = build_prefixes mst value }

  let footprint_bytes t =
    (* tree elements (incl. the 8-byte payload level) by exact arithmetic;
       prefix aggregates by reachable-word count, which handles boxed and
       flat-float monoid representations alike and is deterministic for a
       given input. *)
    Mst.footprint_bytes t.mst + (8 * Obj.reachable_words (Obj.repr t.prefixes))

  let query t ~lo ~hi ~less_than =
    let acc = ref M.identity in
    Mst.iter_covered t.mst ~lo ~hi ~less_than (fun ~level ~base ~prefix ->
        if prefix > 0 then acc := M.combine !acc t.prefixes.(level).(base + prefix - 1));
    !acc
end

module Float_sum = struct
  module Sum = Make (struct
    type t = float

    let identity = 0.0
    let combine = ( +. )
  end)

  type t = Sum.t

  let create ?pool ?fanout ?sample ~keys ~values () =
    if Array.length keys <> Array.length values then
      invalid_arg "Annotated_mst.Float_sum.create: length mismatch";
    Sum.create ?pool ?fanout ?sample ~keys ~value:(fun i -> values.(i)) ()

  let query = Sum.query
  let footprint_bytes = Sum.footprint_bytes
end
