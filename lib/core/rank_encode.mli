(** Integer preprocessing for order-based window functions (§5.1, Fig. 8 and
    §4.5, Fig. 6).

    All ORDER BY complexity — multiple sort keys, directions, NULLS
    FIRST/LAST, expressions — is compiled here into dense integer arrays so
    the merge sort tree only ever stores integers. *)

type t = {
  rank_codes : int array;
      (** [rank_codes.(i)]: dense code of row [i]'s peer group under the
          ordering; tied rows share a code. A row's framed RANK is the count
          of frame rows with a strictly smaller code, plus one. *)
  row_codes : int array;
      (** [row_codes.(i)]: position of row [i] in the stable sort by the
          ordering — unique codes, ties broken by position (ROW_NUMBER
          disambiguation, §4.4). *)
  permutation : int array;
      (** [permutation.(r)]: the row at sorted position [r] — the §4.5
          permutation array. The merge sort tree for percentiles and value
          functions is built over this array. *)
}

val footprint_bytes : t -> int
(** Bytes held by the three code arrays (incl. headers) — the repo-wide
    memory-accounting contract. *)

val of_cmp : ?pool:Holistic_parallel.Task_pool.t -> int -> cmp:(int -> int -> int) -> t
(** [of_cmp n ~cmp] encodes rows [0..n-1] under an arbitrary row comparator
    (which must be a total preorder). *)

val of_ints : ?pool:Holistic_parallel.Task_pool.t -> int array -> t
(** Fast path for a single ascending integer key, using the parallel pair
    sort. *)

val of_floats : ?pool:Holistic_parallel.Task_pool.t -> ?desc:bool -> float array -> t
(** Fast path for a single plain float key (either direction), using the
    unboxed float pair sort. Equal floats tie; NaNs form their own top
    group. *)

val extend_cmp : t -> int -> cmp:(int -> int -> int) -> t option
(** [extend_cmp old n ~cmp] incrementally extends an encoding of rows
    [0..m-1] to rows [0..n-1] after an append (densified-rank delta patch):
    the old arrays are blitted, the appended rows are sorted among
    themselves and their rank codes continue the last old peer group. The
    result is bit-identical to [of_cmp n ~cmp]. [None] when any appended
    row sorts strictly before the old maximum (out-of-order append — the
    caller rebuilds from scratch) or the old encoding is empty. *)

val extend_ints : t -> int array -> t option
(** [extend_ints old values] — the {!of_ints} counterpart of
    {!extend_cmp}; [values] is the full grown key array. *)

val extend_floats : ?desc:bool -> t -> float array -> t option
(** The {!of_floats} counterpart of {!extend_cmp}. *)

(** On every constructor, [pool] (plus an input above
    {!Holistic_parallel.Task_pool.default_task_size} rows) parallelises the
    code-array scatter as a two-pass chunked prefix sum; the arrays produced
    are bit-identical to the sequential construction. *)
