(** A fixed pool of worker domains executing submitted closures.

    This is the execution substrate for the morsel-driven, task-based
    parallelism the paper assumes (Leis et al. [26], paper §3.2/§5.5): work is
    cut into many fixed-size independent tasks, far more tasks than threads.

    A pool of size 1 executes everything inline on the caller, which keeps
    behaviour deterministic on single-core machines while preserving the task
    decomposition itself (and hence the per-task costs the paper measures). *)

type t

val create : int -> t
(** [create n] spawns a pool backed by [n] domains ([n >= 1]; [n = 1] spawns
    none and runs tasks inline). *)

val size : t -> int

val shutdown : t -> unit
(** Terminates the worker domains. The pool must be idle. Idempotent. *)

val run_list : t -> (unit -> unit) list -> unit
(** [run_list t tasks] executes all tasks to completion, possibly
    concurrently, and returns when the last one finishes. If one or more
    tasks raise, the first exception observed is re-raised in the caller
    after all tasks have completed. Tasks must not themselves call
    [run_list] on the same pool. *)

val parallel_for : t -> lo:int -> hi:int -> chunk:int -> (int -> int -> unit) ->  unit
(** [parallel_for t ~lo ~hi ~chunk f] partitions [\[lo, hi)] into consecutive
    chunks of size [chunk] (the task size) and runs [f chunk_lo chunk_hi] for
    each as a pool task. *)

val default : unit -> t
(** A process-wide pool sized to [Domain.recommended_domain_count ()],
    created on first use. *)

type worker_stat = { mutable tasks : int; mutable busy_ns : int; mutable wait_ns : int }
(** Per-worker execution statistics, populated only while
    {!Holistic_obs.Obs} tracing is enabled: tasks executed, wall time
    inside tasks, and time spent blocked waiting for work. *)

val worker_stats : t -> worker_stat array
(** A copy of the per-worker statistics. Index 0 is the submitting caller
    (which helps drain the queue); indices 1..n-1 are the worker domains.
    Reading while a batch is in flight may observe slightly stale values
    for other domains; quiescent reads are exact. *)

val reset_stats : t -> unit

val default_task_size : int
(** The paper's fixed task granularity: 20_000 tuples (§5.5). *)
