(** A fixed pool of worker domains executing submitted closures.

    This is the execution substrate for the morsel-driven, task-based
    parallelism the paper assumes (Leis et al. [26], paper §3.2/§5.5): work is
    cut into many fixed-size independent tasks, far more tasks than threads.

    Work is submitted in {e batches}: each batch owns its task queue, its
    pending count and its error slot, so several batches can be in flight on
    one pool at a time (the window plan overlaps a stage's sort batch with
    the previous stage's partition-evaluation batch) and each waiter helps
    with — and waits for — only its own batch.

    The pool is {e reentrant}: a task that itself calls {!run_list},
    {!parallel_for} or {!submit} on the pool that is executing it runs the
    nested work inline on its own domain.  Blocking a worker on a sub-batch
    of its own pool could deadlock a fully loaded pool; running it inline
    keeps nested algorithms (a merge sort tree built inside a partition
    morsel, say) correct with no caller-side case split.

    A pool of size 1 executes everything inline on the caller, which keeps
    behaviour deterministic on single-core machines while preserving the task
    decomposition itself (and hence the per-task costs the paper measures). *)

type t

val create : int -> t
(** [create n] spawns a pool backed by [n] domains ([n >= 1]; [n = 1] spawns
    none and runs tasks inline). *)

val size : t -> int

val shutdown : t -> unit
(** Terminates the worker domains. The pool must be idle. Idempotent. *)

val run_list : t -> (unit -> unit) list -> unit
(** [run_list t tasks] executes all tasks to completion, possibly
    concurrently, and returns when the last one finishes. If one or more
    tasks raise, the first exception observed is re-raised in the caller
    after all tasks have completed. Called from inside a task of the same
    pool, the whole list runs inline (see reentrancy above). *)

type batch
(** An in-flight group of tasks: its own queue, pending count and
    first-error slot. *)

val new_batch : unit -> batch

val submit : t -> batch -> (unit -> unit) -> unit
(** [submit t b task] enqueues [task] under batch [b] and returns
    immediately (the task may start on a worker before the call returns).
    On a size-1 pool, or from inside a task of [t], the task runs inline
    before returning, with its error captured into [b]. *)

val wait : t -> batch -> unit
(** [wait t b] helps drain [b]'s queued tasks on the caller, blocks until
    every submitted task of [b] has finished, and re-raises the first
    exception any of them recorded. A batch may be reused for further
    [submit]/[wait] rounds afterwards. *)

val parallel_for :
  t -> ?chunk:int -> ?chunk_max:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] partitions [\[lo, hi)] into consecutive
    chunks and runs [f chunk_lo chunk_hi] for each as a pool task.  With
    [?chunk] the chunk size is exactly as given (the historical fixed-size
    behaviour); otherwise it is derived from the range and the pool size —
    roughly [range / (4 * domains)], at least 1, at most [chunk_max]
    (default {!default_task_size}) — so small ranges still fan out across
    every domain instead of serialising on one fixed-size task. *)

val auto_chunk : t -> lo:int -> hi:int -> max:int -> int
(** The derived chunk size [parallel_for] uses when [?chunk] is absent. *)

val default : unit -> t
(** A process-wide pool created on first use, sized by the
    [HOLIWIN_DOMAINS] environment variable when set to a positive integer
    (clamped to 128), else [Domain.recommended_domain_count ()]. *)

type worker_stat = { mutable tasks : int; mutable busy_ns : int; mutable wait_ns : int }
(** Per-worker execution statistics, populated only while
    {!Holistic_obs.Obs} tracing is enabled: tasks executed, wall time
    inside tasks, and time spent blocked waiting for work. *)

val worker_stats : t -> worker_stat array
(** A copy of the per-worker statistics. Index 0 is the submitting caller
    (which helps drain its own batches); indices 1..n-1 are the worker
    domains. Nested inline tasks are not re-counted against a worker.
    Reading while a batch is in flight may observe slightly stale values
    for other domains; quiescent reads are exact. *)

val reset_stats : t -> unit

val default_task_size : int
(** The paper's fixed task granularity: 20_000 tuples (§5.5). *)
