module Obs = Holistic_obs.Obs

let default_task_size = 20_000

(* Registered observability counters (process-wide, shared by all pools).
   [Obs.Counter.add] is gated on tracing being enabled, so the disabled
   path pays nothing beyond the branch inside [exec]. *)
let c_tasks = Obs.Counter.make "pool.tasks"
let c_busy = Obs.Counter.make "pool.busy_ns"
let c_wait = Obs.Counter.make "pool.wait_ns"
let c_queue_wait = Obs.Counter.make "pool.queue_wait_ns"

type worker_stat = { mutable tasks : int; mutable busy_ns : int; mutable wait_ns : int }

type shared = {
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int; (* queued or running tasks of the current batch *)
  mutable first_error : exn option;
  mutable stop : bool;
}

type t = {
  shared : shared;
  workers : unit Domain.t array;
  n : int;
  stats : worker_stat array; (* index 0 = the caller, 1..n-1 = worker domains *)
  mutable alive : bool;
}

let record_error shared e =
  Mutex.lock shared.mutex;
  if shared.first_error = None then shared.first_error <- Some e;
  Mutex.unlock shared.mutex

(* Run one task, capturing its error into the batch; with tracing on,
   also charge its wall time to the executing worker's stat record and
   the global pool counters.  Task granularity is coarse (thousands of
   rows), so two clock reads per task are noise. *)
let exec shared stat task =
  if Obs.enabled () then begin
    let t0 = Obs.now_ns () in
    (try task () with e -> record_error shared e);
    let d = Obs.now_ns () - t0 in
    stat.tasks <- stat.tasks + 1;
    stat.busy_ns <- stat.busy_ns + d;
    Obs.Counter.add c_tasks 1;
    Obs.Counter.add c_busy d
  end
  else try task () with e -> record_error shared e

let worker_loop shared stat =
  let rec loop () =
    Mutex.lock shared.mutex;
    if Obs.enabled () && Queue.is_empty shared.queue && not shared.stop then begin
      let t0 = Obs.now_ns () in
      while Queue.is_empty shared.queue && not shared.stop do
        Condition.wait shared.work_available shared.mutex
      done;
      let d = Obs.now_ns () - t0 in
      stat.wait_ns <- stat.wait_ns + d;
      Obs.Counter.add c_wait d
    end
    else
      while Queue.is_empty shared.queue && not shared.stop do
        Condition.wait shared.work_available shared.mutex
      done;
    if shared.stop && Queue.is_empty shared.queue then Mutex.unlock shared.mutex
    else begin
      let task = Queue.pop shared.queue in
      Mutex.unlock shared.mutex;
      exec shared stat task;
      Mutex.lock shared.mutex;
      shared.pending <- shared.pending - 1;
      if shared.pending = 0 then Condition.broadcast shared.batch_done;
      Mutex.unlock shared.mutex;
      loop ()
    end
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Task_pool.create";
  let shared =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      first_error = None;
      stop = false;
    }
  in
  let stats = Array.init n (fun _ -> { tasks = 0; busy_ns = 0; wait_ns = 0 }) in
  let workers =
    if n = 1 then [||]
    else Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop shared stats.(i + 1)))
  in
  { shared; workers; n; stats; alive = true }

let size t = t.n

let worker_stats t =
  Array.map (fun s -> { tasks = s.tasks; busy_ns = s.busy_ns; wait_ns = s.wait_ns }) t.stats

let reset_stats t =
  Array.iter
    (fun s ->
      s.tasks <- 0;
      s.busy_ns <- 0;
      s.wait_ns <- 0)
    t.stats

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    let s = t.shared in
    Mutex.lock s.mutex;
    s.stop <- true;
    Condition.broadcast s.work_available;
    Mutex.unlock s.mutex;
    Array.iter Domain.join t.workers
  end

(* With tracing on, tasks are wrapped at submission so the delay between
   enqueue and first instruction is charged to pool.queue_wait_ns. *)
let stamp_queue_wait task =
  if not (Obs.enabled ()) then task
  else begin
    let t_enq = Obs.now_ns () in
    fun () ->
      Obs.Counter.add c_queue_wait (Obs.now_ns () - t_enq);
      task ()
  end

let run_list t tasks =
  let s = t.shared in
  if t.n = 1 then begin
    s.first_error <- None;
    List.iter (fun task -> exec s t.stats.(0) task) tasks;
    let err = s.first_error in
    s.first_error <- None;
    match err with None -> () | Some e -> raise e
  end
  else begin
    Mutex.lock s.mutex;
    s.first_error <- None;
    List.iter
      (fun task ->
        s.pending <- s.pending + 1;
        Queue.push (stamp_queue_wait task) s.queue)
      tasks;
    Condition.broadcast s.work_available;
    (* The caller helps drain the queue instead of blocking idly. *)
    let rec help () =
      if not (Queue.is_empty s.queue) then begin
        let task = Queue.pop s.queue in
        Mutex.unlock s.mutex;
        exec s t.stats.(0) task;
        Mutex.lock s.mutex;
        s.pending <- s.pending - 1;
        if s.pending = 0 then Condition.broadcast s.batch_done;
        help ()
      end
    in
    help ();
    while s.pending > 0 do
      Condition.wait s.batch_done s.mutex
    done;
    let err = s.first_error in
    s.first_error <- None;
    Mutex.unlock s.mutex;
    match err with None -> () | Some e -> raise e
  end

let parallel_for t ~lo ~hi ~chunk f =
  if chunk <= 0 then invalid_arg "Task_pool.parallel_for: chunk must be positive";
  if hi > lo then begin
    let tasks = ref [] in
    let pos = ref lo in
    while !pos < hi do
      let chunk_lo = !pos in
      let chunk_hi = min hi (chunk_lo + chunk) in
      tasks := (fun () -> f chunk_lo chunk_hi) :: !tasks;
      pos := chunk_hi
    done;
    run_list t (List.rev !tasks)
  end

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create (Domain.recommended_domain_count ()) in
      default_pool := Some p;
      p
