module Obs = Holistic_obs.Obs

let default_task_size = 20_000

(* Registered observability counters (process-wide, shared by all pools).
   [Obs.Counter.add] is gated on tracing being enabled, so the disabled
   path pays nothing beyond the branch inside [exec]. *)
let c_tasks = Obs.Counter.make ~help:"Tasks executed by the shared worker pool" "pool.tasks"
let c_busy = Obs.Counter.make ~help:"Nanoseconds pool workers spent running tasks" "pool.busy_ns"
let c_wait = Obs.Counter.make ~help:"Nanoseconds pool workers spent idle waiting for work" "pool.wait_ns"
let c_queue_wait = Obs.Counter.make ~help:"Nanoseconds tasks spent queued before a worker picked them up" "pool.queue_wait_ns"

type worker_stat = { mutable tasks : int; mutable busy_ns : int; mutable wait_ns : int }

(* A batch is one unit of submission: its own task queue, its own pending
   count and its own first-error slot.  Several batches may be in flight on
   one pool at a time (the morsel-driven window plan submits partition
   morsels while later sort stages still run their own [parallel_for]
   batches), and each waiter only waits for — and preferentially helps —
   its own batch. *)
type batch = {
  bq : (unit -> unit) Queue.t;
  mutable pending : int; (* queued or running tasks of this batch *)
  mutable first_error : exn option;
}

type shared = {
  mutex : Mutex.t;
  (* One condition for every state change: work arriving, a batch
     completing, shutdown.  Wakeups are coarse but task granularity is
     thousands of rows, so spurious broadcasts are noise. *)
  cond : Condition.t;
  mutable active : batch list; (* batches with queued tasks, FIFO *)
  mutable stop : bool;
}

type t = {
  id : int;
  shared : shared;
  workers : unit Domain.t array;
  n : int;
  stats : worker_stat array; (* index 0 = the caller, 1..n-1 = worker domains *)
  mutable alive : bool;
}

let next_pool_id = Atomic.make 0

(* Stack of pool ids whose tasks are executing on this domain.  A nested
   [run_list]/[parallel_for] on a pool that is already running one of its
   tasks here executes inline: the pool's workers are busy by construction
   (they are running the enclosing batch), and blocking a worker on a
   sub-batch of the same pool could deadlock a fully-loaded pool. *)
let in_task_key : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let inside t = List.memq t.id !(Domain.DLS.get in_task_key)

let record_error b e = if b.first_error = None then b.first_error <- Some e

(* Run one task of [b], capturing its error into the batch; with tracing
   on, also charge its wall time to the executing worker's stat record and
   the global pool counters.  The pool id is pushed on the domain's
   in-task stack for the duration so nested submissions run inline.
   Errors are recorded under [mutex]. *)
let exec pool b stat task =
  let stack = Domain.DLS.get in_task_key in
  stack := pool.id :: !stack;
  let fin () = match !stack with _ :: tl -> stack := tl | [] -> () in
  let run () =
    try task ()
    with e ->
      Mutex.lock pool.shared.mutex;
      record_error b e;
      Mutex.unlock pool.shared.mutex
  in
  (if Obs.enabled () then begin
     let t0 = Obs.now_ns () in
     run ();
     let d = Obs.now_ns () - t0 in
     stat.tasks <- stat.tasks + 1;
     stat.busy_ns <- stat.busy_ns + d;
     Obs.Counter.add c_tasks 1;
     Obs.Counter.add c_busy d
   end
   else run ());
  fin ()

(* Pop one task from the first active batch, under [mutex].  Returns the
   batch alongside the task so completion can be accounted to it. *)
let pop_task shared =
  let rec find = function
    | [] -> None
    | b :: rest ->
        if Queue.is_empty b.bq then begin
          (* stale entry: every task was already claimed *)
          shared.active <- rest;
          find rest
        end
        else begin
          let task = Queue.pop b.bq in
          if Queue.is_empty b.bq then shared.active <- rest;
          Some (b, task)
        end
  in
  find shared.active

let finish_task shared b =
  Mutex.lock shared.mutex;
  b.pending <- b.pending - 1;
  if b.pending = 0 then Condition.broadcast shared.cond;
  Mutex.unlock shared.mutex

let worker_loop pool stat =
  let shared = pool.shared in
  let rec loop () =
    Mutex.lock shared.mutex;
    let rec next () =
      match pop_task shared with
      | Some bt -> Some bt
      | None ->
          if shared.stop then None
          else begin
            (if Obs.enabled () then begin
               let t0 = Obs.now_ns () in
               Condition.wait shared.cond shared.mutex;
               let d = Obs.now_ns () - t0 in
               stat.wait_ns <- stat.wait_ns + d;
               Obs.Counter.add c_wait d
             end
             else Condition.wait shared.cond shared.mutex);
            next ()
          end
    in
    match next () with
    | None -> Mutex.unlock shared.mutex
    | Some (b, task) ->
        Mutex.unlock shared.mutex;
        exec pool b stat task;
        finish_task shared b;
        loop ()
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Task_pool.create";
  let shared =
    { mutex = Mutex.create (); cond = Condition.create (); active = []; stop = false }
  in
  let stats = Array.init n (fun _ -> { tasks = 0; busy_ns = 0; wait_ns = 0 }) in
  let pool =
    {
      id = Atomic.fetch_and_add next_pool_id 1;
      shared;
      workers = [||];
      n;
      stats;
      alive = true;
    }
  in
  let workers =
    if n = 1 then [||]
    else Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool stats.(i + 1)))
  in
  { pool with workers }

let size t = t.n

let worker_stats t =
  Array.map (fun s -> { tasks = s.tasks; busy_ns = s.busy_ns; wait_ns = s.wait_ns }) t.stats

let reset_stats t =
  Array.iter
    (fun s ->
      s.tasks <- 0;
      s.busy_ns <- 0;
      s.wait_ns <- 0)
    t.stats

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    let s = t.shared in
    Mutex.lock s.mutex;
    s.stop <- true;
    Condition.broadcast s.cond;
    Mutex.unlock s.mutex;
    Array.iter Domain.join t.workers
  end

(* With tracing on, tasks are wrapped at submission so the delay between
   enqueue and first instruction is charged to pool.queue_wait_ns. *)
let stamp_queue_wait task =
  if not (Obs.enabled ()) then task
  else begin
    let t_enq = Obs.now_ns () in
    fun () ->
      Obs.Counter.add c_queue_wait (Obs.now_ns () - t_enq);
      task ()
  end

(* Inline execution on the caller: the n=1 pool and every nested
   submission from inside a pool task.  Same error contract as a real
   batch — every task runs, the first exception is re-raised at the
   end. *)
let exec_inline t b task =
  let stat = if inside t then { tasks = 0; busy_ns = 0; wait_ns = 0 } else t.stats.(0) in
  exec t b stat task

let raise_batch_error b =
  match b.first_error with
  | None -> ()
  | Some e ->
      b.first_error <- None;
      raise e

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

let new_batch () = { bq = Queue.create (); pending = 0; first_error = None }

let submit t b task =
  if t.n = 1 || inside t then exec_inline t b task
  else begin
    let s = t.shared in
    Mutex.lock s.mutex;
    b.pending <- b.pending + 1;
    let was_empty = Queue.is_empty b.bq in
    Queue.push (stamp_queue_wait task) b.bq;
    if was_empty then s.active <- s.active @ [ b ];
    Condition.broadcast s.cond;
    Mutex.unlock s.mutex
  end

(* Wait for [b] to drain, helping with [b]'s own queued tasks (never other
   batches': stealing unrelated work here would couple this waiter's
   latency to arbitrary foreign tasks). *)
let wait t b =
  (if not (t.n = 1 || inside t) then begin
     let s = t.shared in
     Mutex.lock s.mutex;
     let rec help () =
       if not (Queue.is_empty b.bq) then begin
         let task = Queue.pop b.bq in
         if Queue.is_empty b.bq then s.active <- List.filter (fun x -> x != b) s.active;
         Mutex.unlock s.mutex;
         exec t b t.stats.(0) task;
         Mutex.lock s.mutex;
         b.pending <- b.pending - 1;
         if b.pending = 0 then Condition.broadcast s.cond;
         help ()
       end
       else if b.pending > 0 then begin
         Condition.wait s.cond s.mutex;
         help ()
       end
     in
     help ();
     Mutex.unlock s.mutex
   end);
  raise_batch_error b

let run_list t tasks =
  if t.n = 1 || inside t then begin
    let b = new_batch () in
    List.iter (fun task -> exec_inline t b task) tasks;
    raise_batch_error b
  end
  else begin
    let b = new_batch () in
    List.iter (fun task -> submit t b task) tasks;
    wait t b
  end

(* ------------------------------------------------------------------ *)
(* Parallel for                                                        *)
(* ------------------------------------------------------------------ *)

(* Derived chunk size: aim for several tasks per domain so small ranges
   still spread across the pool (a fixed 20k-tuple chunk serialises any
   range below 20k on one worker), capped at [max] (the paper's fixed
   morsel size by default) so huge ranges keep cache-sized tasks. *)
let tasks_per_domain = 4

let auto_chunk t ~lo ~hi ~max:max_chunk =
  let range = hi - lo in
  if range <= 0 then 1
  else begin
    let target = (range + (tasks_per_domain * t.n) - 1) / (tasks_per_domain * t.n) in
    max 1 (min max_chunk target)
  end

let parallel_for t ?chunk ?(chunk_max = default_task_size) ~lo ~hi f =
  let chunk =
    match chunk with
    | Some c ->
        if c <= 0 then invalid_arg "Task_pool.parallel_for: chunk must be positive";
        c
    | None -> auto_chunk t ~lo ~hi ~max:chunk_max
  in
  if hi > lo then begin
    let tasks = ref [] in
    let pos = ref lo in
    while !pos < hi do
      let chunk_lo = !pos in
      let chunk_hi = min hi (chunk_lo + chunk) in
      tasks := (fun () -> f chunk_lo chunk_hi) :: !tasks;
      pos := chunk_hi
    done;
    run_list t (List.rev !tasks)
  end

(* ------------------------------------------------------------------ *)
(* Default pool                                                        *)
(* ------------------------------------------------------------------ *)

(* HOLIWIN_DOMAINS overrides the default pool's size (clamped to [1,128]);
   unset or unparsable falls back to the runtime's recommendation.  This is
   the one knob threaded through every entry point that defaults its pool
   ([Executor.run], [Window_plan.run], [Sql.query], the benches). *)
let domains_from_env () =
  match Sys.getenv_opt "HOLIWIN_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n 128)
      | _ -> None)

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let n =
        match domains_from_env () with
        | Some n -> n
        | None -> Domain.recommended_domain_count ()
      in
      let p = create n in
      default_pool := Some p;
      p

(* Sampled at metrics-snapshot time only; reports the size the default
   pool has (or would be created with), without forcing its creation. *)
let _domains_gauge =
  Obs.Gauge.register ~help:"Worker domains of the default task pool" "pool.domains" (fun () ->
      match !default_pool with
      | Some p -> p.n
      | None -> (
          match domains_from_env () with
          | Some n -> n
          | None -> Domain.recommended_domain_count ()))
