(** Naive, comparator-driven re-implementation of the window pipeline — the
    differential-testing oracle.

    [run] evaluates the same clause list as {!Window_plan.run} using per-row
    linear scans only: hash-bucket partitioning, [Sort_spec.comparator]
    sorts, linear-scan frames and from-first-principles function
    evaluation. It shares none of the machinery under test (key codecs,
    normalized-key sorts, OVC merging, rank encodings, index trees, the
    build cache) — except {!Window_plan.schedule}, deliberately, because
    stage assignment is observable through ROWS frames under ties and the
    oracle must sort by the same stage orders the plan picks. *)

open Holistic_storage

val run : Table.t -> Window_plan.clause list -> (string * Value.t array) list
(** [run table clauses] returns, for every item of every clause in order,
    its output column as [(item name, values at original row indices)]. *)
