open Holistic_storage
module Task_pool = Holistic_parallel.Task_pool
module Introsort = Holistic_sort.Introsort
module Mstw = Holistic_core.Mst_width
module Prev = Holistic_core.Prev_occurrence
module Rank_encode = Holistic_core.Rank_encode
module Range_tree = Holistic_core.Range_tree
module Ost = Holistic_baselines.Order_statistic_tree
module Inc = Holistic_baselines.Incremental
module Naive = Holistic_baselines.Naive
open Window_func

(* Monoids and tree instances live in Build_cache (so cached trees have a
   home module); aliased here for the evaluator bodies. *)
module Value_monoid_sum = Build_cache.Value_monoid_sum
module Value_monoid_min = Build_cache.Value_monoid_min
module Value_monoid_max = Build_cache.Value_monoid_max
module Vsum_seg = Build_cache.Vsum_seg
module Vmin_seg = Build_cache.Vmin_seg
module Vmax_seg = Build_cache.Vmax_seg
module Sum_count_mst = Build_cache.Sum_count_mst

type ctx = {
  table : Table.t;
  pool : Task_pool.t;
  rows : int array;
  frame : Frame.t;
  window_order : Sort_spec.t;
  fanout : int;
  sample : int;
  task_size : int;
  width : Mstw.choice;
  cache : Build_cache.t;
  gov : Mem_governor.t option;
}

let np ctx = Array.length ctx.rows

let unsupported what =
  invalid_arg (Printf.sprintf "Window: unsupported function/algorithm combination (%s)" what)

(* Cache-key tag for the MST-family structures: the cascade-free variant
   builds different trees (sample 0) and must not alias the cascaded ones
   even when [ctx.sample] is 0. *)
let mst_tag = function Mst_no_cascade -> "mst-no-cascade" | _ -> "mst"

(* [maintain] callback for cached MSTs: run-stack the grown leaf array
   onto the stale tree ({!Mstw.try_extend}); [leaf] is a thunk because the
   grown operand is only needed when the entry is actually stale. *)
let mst_maintain ctx ~sample leaf old =
  let a = leaf () in
  match Mstw.try_extend ~fanout:ctx.fanout ~sample ~choice:ctx.width old a with
  | Some t -> Some (t, Printf.sprintf "+%d rows" (Array.length a - Mstw.length old))
  | None -> None

(* Governed MST construction. When the governor says the in-memory build's
   transients (operand array plus a sorted copy, ~16 B/row) would overrun
   the budget, the tree is built by streaming its leaves level-by-level
   ({!Mstw.create_stream}): [get] supplies elements one at a time so the
   operand array is never materialized on that path. Value bounds
   accumulate from 0 exactly like [Mst_width.value_bounds], so width
   selection — and therefore the tree — is bit-identical to [Mstw.create]
   over [arr ()]. *)
let governed_mst ctx ~sample ~n ~get ~arr =
  let stream =
    match ctx.gov with
    | Some g -> n > 0 && Mem_governor.stream_builds g ~bytes:(16 * n)
    | None -> false
  in
  if not stream then Mstw.create ~pool:ctx.pool ~fanout:ctx.fanout ~sample ~choice:ctx.width (arr ())
  else begin
    let mn = ref 0 and mx = ref 0 in
    for i = 0 to n - 1 do
      let v = get i in
      if v < !mn then mn := v;
      if v > !mx then mx := v
    done;
    Mstw.create_stream ~fanout:ctx.fanout ~sample ~choice:ctx.width ~n ~min_value:!mn
      ~max_value:!mx
      ~fill:(fun chunk ~pos ~len ->
        for i = 0 to len - 1 do
          chunk.(i) <- get (pos + i)
        done)
      ()
  end

(* ------------------------------------------------------------------ *)
(* Shared preprocessing helpers                                        *)
(* ------------------------------------------------------------------ *)

(* Qualifying-row remap for a structural predicate key; memoized per
   partition so items with equal FILTER / NULL-skipping predicates scan the
   partition once. *)
let qualify ctx (qual : Build_cache.qual) =
  match qual with
  | { Build_cache.filter = None; extra = Build_cache.Ex_none } -> Remap.all (np ctx)
  | _ ->
      Build_cache.remap ctx.cache ~qual (fun () ->
          let filt = Option.map (Expr.compile ctx.table) qual.Build_cache.filter in
          let extra =
            match qual.Build_cache.extra with
            | Build_cache.Ex_none -> None
            | Build_cache.Ex_nonnull (Expr.Col name) ->
                let c = Table.column ctx.table name in
                Some (fun r -> not (Column.is_null c ctx.rows.(r)))
            | Build_cache.Ex_nonnull e ->
                let f = Expr.compile ctx.table e in
                Some (fun r -> not (Value.is_null (f ctx.rows.(r))))
          in
          Remap.create ~np:(np ctx) ~qualifies:(fun r ->
              (match filt with None -> true | Some f -> Expr.to_bool (f ctx.rows.(r)))
              && match extra with None -> true | Some g -> g r))

let effective_order ctx spec = if spec = [] then ctx.window_order else spec

(* Integer preprocessing of an ORDER BY over the partition (§5.1 Fig. 8),
   with unboxed fast paths for single plain-column keys. Memoized on the
   effective ORDER BY: rank + percent_rank + median over one named window
   encode once. *)
let encode ctx order =
  (* A stale encoding (the partition was extended in order under a
     session) extends instead of rebuilding: the prefix rows are
     untouched, so codes and permutation carry over and only the appended
     suffix is sorted and coded.  Each arm mirrors its construction arm
     below; [extend_*] themselves verify the suffix sorts after the
     prefix and decline otherwise. *)
  let maintain old =
    let n = np ctx in
    let grown = Printf.sprintf "+%d rows" (n - Array.length old.Rank_encode.permutation) in
    let ext =
      match Sort_spec.fast_key ctx.table order with
      | Some (Sort_spec.Int_key (keys, false)) ->
          Rank_encode.extend_ints old (Array.map (fun row -> keys.(row)) ctx.rows)
      | Some (Sort_spec.Int_key (keys, true)) ->
          Rank_encode.extend_cmp old n ~cmp:(fun i j ->
              compare keys.(ctx.rows.(j)) keys.(ctx.rows.(i)))
      | Some (Sort_spec.Float_key (keys, desc)) ->
          Rank_encode.extend_floats ~desc old (Array.map (fun row -> keys.(row)) ctx.rows)
      | None ->
          let cmp_rows = Sort_spec.comparator ctx.table order in
          Rank_encode.extend_cmp old n ~cmp:(fun i j -> cmp_rows ctx.rows.(i) ctx.rows.(j))
    in
    Option.map (fun enc -> (enc, grown)) ext
  in
  Build_cache.encode ctx.cache ~maintain ~order (fun () ->
      let n = np ctx in
      match Sort_spec.fast_key ctx.table order with
      | Some (Sort_spec.Int_key (keys, false)) ->
          Rank_encode.of_ints ~pool:ctx.pool (Array.map (fun row -> keys.(row)) ctx.rows)
      | Some (Sort_spec.Int_key (keys, true)) ->
          Rank_encode.of_cmp ~pool:ctx.pool n ~cmp:(fun i j ->
              compare keys.(ctx.rows.(j)) keys.(ctx.rows.(i)))
      | Some (Sort_spec.Float_key (keys, desc)) ->
          Rank_encode.of_floats ~pool:ctx.pool ~desc (Array.map (fun row -> keys.(row)) ctx.rows)
      | None ->
          let cmp_rows = Sort_spec.comparator ctx.table order in
          Rank_encode.of_cmp ~pool:ctx.pool n ~cmp:(fun i j -> cmp_rows ctx.rows.(i) ctx.rows.(j)))

let mapped_ranges ctx rm r = Remap.map_ranges rm (Frame.ranges ctx.frame r)
let covered_of ranges = Array.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 ranges

(* Embarrassingly parallel probe phase over the partition's rows. *)
let probe ctx f =
  Task_pool.parallel_for ctx.pool ~lo:0 ~hi:(np ctx) ~chunk:ctx.task_size (fun lo hi ->
      for r = lo to hi - 1 do
        f r
      done)

(* Task-based driver for incremental competitors: each chunk of [task_size]
   output rows rebuilds its state from scratch (§3.2). *)
let incremental_drive ctx rm ~serial ~make_state =
  let m = Remap.filtered_count rm in
  if Frame.exclusion ctx.frame <> Window_spec.Exclude_no_others then
    unsupported "incremental algorithms cannot evaluate frames with exclusion holes";
  let run lo hi =
    let add, remove, result, reset = make_state () in
    Inc.Frame_driver.run ~n:m
      ~frame:(fun r -> Remap.map_range rm (Frame.start_ ctx.frame r, Frame.end_ ctx.frame r))
      ~add ~remove ~result ~reset ~lo ~hi
  in
  if serial then run 0 (np ctx)
  else Task_pool.parallel_for ctx.pool ~lo:0 ~hi:(np ctx) ~chunk:ctx.task_size run

(* Access to an argument expression's values, with unboxed column fast
   paths. Positions are partition positions. (NULL tests live in [qualify]'s
   structural predicates now, so there is no null accessor here.) *)
type arg_access = {
  value_at : int -> Value.t;
  float_at : int -> float;
  ids_filtered : Remap.t -> int array; (* dense equality ids over filtered rows *)
}

let generic_ids value_at rm =
  let m = Remap.filtered_count rm in
  let table = Hashtbl.create (2 * m) in
  Array.init m (fun i ->
      let v = value_at (Remap.position rm i) in
      match Hashtbl.find_opt table v with
      | Some id -> id
      | None ->
          let id = Hashtbl.length table in
          Hashtbl.add table v id;
          id)

let arg_access ctx e =
  let fallback () =
    let f = Expr.compile ctx.table e in
    let cache = Array.map f ctx.rows in
    {
      value_at = (fun r -> cache.(r));
      float_at =
        (fun r ->
          match cache.(r) with
          | Value.Int x -> float_of_int x
          | Value.Float x -> x
          | Value.Date d -> float_of_int d
          | _ -> nan);
      ids_filtered = (fun rm -> generic_ids (fun r -> cache.(r)) rm);
    }
  in
  match e with
  | Expr.Col name -> begin
      let c = Table.column ctx.table name in
      let value_at r = Column.get c ctx.rows.(r) in
      match Column.data c with
      | Column.Ints a | Column.Dates a ->
          {
            value_at;
            float_at = (fun r -> float_of_int a.(ctx.rows.(r)));
            ids_filtered =
              (fun rm ->
                Array.init (Remap.filtered_count rm) (fun i ->
                    a.(ctx.rows.(Remap.position rm i))));
          }
      | Column.Floats a ->
          {
            value_at;
            float_at = (fun r -> a.(ctx.rows.(r)));
            ids_filtered =
              (fun rm ->
                let m = Remap.filtered_count rm in
                let table = Hashtbl.create (2 * m) in
                Array.init m (fun i ->
                    let v = a.(ctx.rows.(Remap.position rm i)) in
                    match Hashtbl.find_opt table v with
                    | Some id -> id
                    | None ->
                        let id = Hashtbl.length table in
                        Hashtbl.add table v id;
                        id));
          }
      | Column.Strings _ | Column.Bools _ ->
          {
            value_at;
            float_at = (fun _ -> nan);
            ids_filtered = (fun rm -> generic_ids value_at rm);
          }
    end
  | _ -> fallback ()

(* next-occurrence array derived from the encoded prev array *)
let next_of prev =
  let m = Array.length prev in
  let next = Array.make m m in
  for i = 0 to m - 1 do
    if prev.(i) > 0 then next.(prev.(i) - 1) <- i
  done;
  next

(* ------------------------------------------------------------------ *)
(* DISTINCT aggregates over holed frames (§4.7 + back-reference chains) *)
(* ------------------------------------------------------------------ *)

(* Iterates the hole positions whose value occurs in the frame's span only
   inside holes; [on_orphan] receives each such position once (its first
   in-span occurrence). See DESIGN.md: per-range thresholds overcount values
   spanning ranges, so holed DISTINCT frames are evaluated as one span query
   minus these orphans. *)
let iter_hole_orphans prev next ranges ~on_orphan =
  let k = Array.length ranges in
  let span_lo = fst ranges.(0) and span_hi = snd ranges.(k - 1) in
  let in_ranges q =
    let rec go i = i < k && ((q >= fst ranges.(i) && q < snd ranges.(i)) || go (i + 1)) in
    go 0
  in
  for g = 0 to k - 2 do
    let glo = snd ranges.(g) and ghi = fst ranges.(g + 1) in
    for p = glo to ghi - 1 do
      if prev.(p) < span_lo + 1 then begin
        let q = ref next.(p) in
        while !q < span_hi && not (in_ranges !q) do
          q := next.(!q)
        done;
        if !q >= span_hi then on_orphan p
      end
    done
  done

let span_of ranges = (fst ranges.(0), snd ranges.(Array.length ranges - 1))

(* ------------------------------------------------------------------ *)
(* Plain (non-distinct) framed aggregates — segment trees (Leis et al.) *)
(* ------------------------------------------------------------------ *)

let to_float_v = function
  | Value.Int x -> float_of_int x
  | Value.Float x -> x
  | v -> invalid_arg ("Window: AVG of non-numeric value " ^ Value.to_string v)

let eval_plain_agg ctx ~kind ~arg ~acc ~qual ~rm ~algorithm ~out =
  let m = Remap.filtered_count rm in
  let value_f i = acc.value_at (Remap.position rm i) in
  let emit r v = out.(ctx.rows.(r)) <- v in
  match algorithm with
  | Auto | Mst | Mst_no_cascade | Segment_tree -> begin
      match kind with
      | Sum | Avg ->
          let tree =
            match
              Build_cache.seg_tree ctx.cache ~cls:Build_cache.Seg_sum ~arg ~qual (fun () ->
                  Build_cache.Sum_tree (Vsum_seg.create m value_f))
            with
            | Build_cache.Sum_tree t -> t
            | _ -> assert false
          in
          probe ctx (fun r ->
              let ranges = mapped_ranges ctx rm r in
              let s =
                Array.fold_left
                  (fun a (lo, hi) -> Value_monoid_sum.combine a (Vsum_seg.query tree ~lo ~hi))
                  Value.Null ranges
              in
              if kind = Sum then emit r s
              else begin
                let cnt = covered_of ranges in
                emit r (if cnt = 0 then Value.Null else Value.Float (to_float_v s /. float_of_int cnt))
              end)
      | Min ->
          let tree =
            match
              Build_cache.seg_tree ctx.cache ~cls:Build_cache.Seg_min ~arg ~qual (fun () ->
                  Build_cache.Min_tree (Vmin_seg.create m value_f))
            with
            | Build_cache.Min_tree t -> t
            | _ -> assert false
          in
          probe ctx (fun r ->
              let ranges = mapped_ranges ctx rm r in
              emit r
                (Array.fold_left
                   (fun a (lo, hi) -> Value_monoid_min.combine a (Vmin_seg.query tree ~lo ~hi))
                   Value.Null ranges))
      | Max ->
          let tree =
            match
              Build_cache.seg_tree ctx.cache ~cls:Build_cache.Seg_max ~arg ~qual (fun () ->
                  Build_cache.Max_tree (Vmax_seg.create m value_f))
            with
            | Build_cache.Max_tree t -> t
            | _ -> assert false
          in
          probe ctx (fun r ->
              let ranges = mapped_ranges ctx rm r in
              emit r
                (Array.fold_left
                   (fun a (lo, hi) -> Value_monoid_max.combine a (Vmax_seg.query tree ~lo ~hi))
                   Value.Null ranges))
      | Count | Count_star -> assert false
    end
  | Naive ->
      let combine =
        match kind with
        | Sum | Avg -> Value_monoid_sum.combine
        | Min -> Value_monoid_min.combine
        | Max -> Value_monoid_max.combine
        | Count | Count_star -> assert false
      in
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          let s = ref Value.Null in
          Array.iter
            (fun (lo, hi) ->
              for i = lo to hi - 1 do
                s := combine !s (value_f i)
              done)
            ranges;
          if kind = Avg then begin
            let cnt = covered_of ranges in
            emit r (if cnt = 0 then Value.Null else Value.Float (to_float_v !s /. float_of_int cnt))
          end
          else emit r !s)
  | Incremental | Incremental_serial | Order_statistic ->
      unsupported "plain aggregates support Auto/Segment_tree/Naive"

(* ------------------------------------------------------------------ *)
(* DISTINCT aggregates                                                 *)
(* ------------------------------------------------------------------ *)

let eval_distinct_count ctx ~arg ~filter ~algorithm ~out =
  let acc = arg_access ctx arg in
  let qual = { Build_cache.filter; extra = Build_cache.Ex_nonnull arg } in
  let rm = qualify ctx qual in
  let ids = Build_cache.arg_ids ctx.cache ~arg ~qual (fun () -> acc.ids_filtered rm) in
  let emit r v = out.(ctx.rows.(r)) <- Value.Int v in
  match algorithm with
  | Auto | Mst | Mst_no_cascade ->
      let sample = if algorithm = Mst_no_cascade then 0 else ctx.sample in
      let prev =
        Build_cache.prev_array ctx.cache ~arg ~qual (fun () -> Prev.compute ~pool:ctx.pool ids)
      in
      let tree =
        Build_cache.distinct_tree ctx.cache ~algo:(mst_tag algorithm) ~arg ~qual ~sample
          ~maintain:(mst_maintain ctx ~sample (fun () -> prev))
          (fun () ->
            governed_mst ctx ~sample ~n:(Array.length prev) ~get:(Array.get prev)
              ~arr:(fun () -> prev))
      in
      let next =
        if Frame.exclusion ctx.frame = Window_spec.Exclude_no_others then [||] else next_of prev
      in
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          let v =
            match Array.length ranges with
            | 0 -> 0
            | 1 ->
                let lo, hi = ranges.(0) in
                Mstw.count tree ~lo ~hi ~less_than:(lo + 1)
            | _ ->
                let span_lo, span_hi = span_of ranges in
                let base = Mstw.count tree ~lo:span_lo ~hi:span_hi ~less_than:(span_lo + 1) in
                let corr = ref 0 in
                iter_hole_orphans prev next ranges ~on_orphan:(fun _ -> incr corr);
                base - !corr
          in
          emit r v)
  | Naive ->
      probe ctx (fun r -> emit r (Naive.distinct_count ids ~ranges:(mapped_ranges ctx rm r)))
  | Incremental | Incremental_serial ->
      incremental_drive ctx rm
        ~serial:(algorithm = Incremental_serial)
        ~make_state:(fun () ->
          let dc = Inc.Distinct_count.create () in
          ( (fun p -> Inc.Distinct_count.add dc ids.(p)),
            (fun p -> Inc.Distinct_count.remove dc ids.(p)),
            (fun r -> emit r (Inc.Distinct_count.count dc)),
            fun () -> Inc.Distinct_count.clear dc ))
  | Order_statistic | Segment_tree -> unsupported "distinct count"

let eval_distinct_sum_avg ctx ~kind ~arg ~filter ~algorithm ~out =
  let acc = arg_access ctx arg in
  let qual = { Build_cache.filter; extra = Build_cache.Ex_nonnull arg } in
  let rm = qualify ctx qual in
  let ids = Build_cache.arg_ids ctx.cache ~arg ~qual (fun () -> acc.ids_filtered rm) in
  let m = Remap.filtered_count rm in
  let fvals = Array.init m (fun i -> acc.float_at (Remap.position rm i)) in
  let emit r (s, c) =
    out.(ctx.rows.(r)) <-
      (if c = 0 then Value.Null
       else if kind = Sum then Value.Float s
       else Value.Float (s /. float_of_int c))
  in
  match algorithm with
  | Auto | Mst | Mst_no_cascade ->
      let sample = if algorithm = Mst_no_cascade then 0 else ctx.sample in
      let prev =
        Build_cache.prev_array ctx.cache ~arg ~qual (fun () -> Prev.compute ~pool:ctx.pool ids)
      in
      let tree =
        Build_cache.annotated_tree ctx.cache ~algo:(mst_tag algorithm) ~arg ~qual ~sample (fun () ->
            Sum_count_mst.create ~pool:ctx.pool ~fanout:ctx.fanout ~sample ~keys:prev
              ~value:(fun i -> (fvals.(i), 1))
              ())
      in
      let next =
        if Frame.exclusion ctx.frame = Window_spec.Exclude_no_others then [||] else next_of prev
      in
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          let v =
            match Array.length ranges with
            | 0 -> (0.0, 0)
            | 1 ->
                let lo, hi = ranges.(0) in
                Sum_count_mst.query tree ~lo ~hi ~less_than:(lo + 1)
            | _ ->
                let span_lo, span_hi = span_of ranges in
                let s, c = Sum_count_mst.query tree ~lo:span_lo ~hi:span_hi ~less_than:(span_lo + 1) in
                let corr_s = ref 0.0 and corr_c = ref 0 in
                iter_hole_orphans prev next ranges ~on_orphan:(fun p ->
                    corr_s := !corr_s +. fvals.(p);
                    incr corr_c);
                (s -. !corr_s, c - !corr_c)
          in
          emit r v)
  | Naive ->
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          let seen = Hashtbl.create 16 in
          Array.iter
            (fun (lo, hi) ->
              for i = lo to hi - 1 do
                if not (Hashtbl.mem seen ids.(i)) then Hashtbl.add seen ids.(i) fvals.(i)
              done)
            ranges;
          let s = Hashtbl.fold (fun _ v a -> a +. v) seen 0.0 in
          emit r (s, Hashtbl.length seen))
  | Incremental | Incremental_serial | Order_statistic | Segment_tree ->
      unsupported "distinct sum/avg supports Auto/Mst/Naive"

let eval_aggregate ctx ~kind ~arg ~distinct ~filter ~algorithm ~out =
  match kind, arg with
  | Count_star, _ ->
      let rm = qualify ctx { Build_cache.filter; extra = Build_cache.Ex_none } in
      probe ctx (fun r -> out.(ctx.rows.(r)) <- Value.Int (covered_of (mapped_ranges ctx rm r)))
  | Count, Some e when not distinct ->
      let rm = qualify ctx { Build_cache.filter; extra = Build_cache.Ex_nonnull e } in
      probe ctx (fun r -> out.(ctx.rows.(r)) <- Value.Int (covered_of (mapped_ranges ctx rm r)))
  | Count, Some e -> eval_distinct_count ctx ~arg:e ~filter ~algorithm ~out
  | (Sum | Avg), Some e when distinct ->
      eval_distinct_sum_avg ctx ~kind ~arg:e ~filter ~algorithm ~out
  | (Sum | Avg | Min | Max), Some e ->
      (* MIN/MAX DISTINCT ≡ MIN/MAX *)
      let acc = arg_access ctx e in
      let qual = { Build_cache.filter; extra = Build_cache.Ex_nonnull e } in
      let rm = qualify ctx qual in
      eval_plain_agg ctx ~kind ~arg:e ~acc ~qual ~rm ~algorithm ~out
  | _ -> unsupported "aggregate without argument"

(* ------------------------------------------------------------------ *)
(* Windowed MODE (extension; Wesley & Xu's third holistic aggregate)   *)
(* ------------------------------------------------------------------ *)

let eval_mode ctx ~arg ~filter ~algorithm ~out =
  let acc = arg_access ctx arg in
  let qual = { Build_cache.filter; extra = Build_cache.Ex_nonnull arg } in
  let rm = qualify ctx qual in
  let ids = Build_cache.arg_ids ctx.cache ~arg ~qual (fun () -> acc.ids_filtered rm) in
  let m = Remap.filtered_count rm in
  (* a representative row per id, giving ids their value for tie-breaking *)
  let repr = Hashtbl.create (2 * m) in
  for i = 0 to m - 1 do
    if not (Hashtbl.mem repr ids.(i)) then Hashtbl.add repr ids.(i) (Remap.position rm i)
  done;
  let value_of_id id = acc.value_at (Hashtbl.find repr id) in
  (* ids denote distinct values, so this order is strict: smallest value wins *)
  let better a b = Value.compare_sql ~nulls_last:true (value_of_id a) (value_of_id b) < 0 in
  let emit r id_opt =
    out.(ctx.rows.(r)) <- (match id_opt with None -> Value.Null | Some id -> value_of_id id)
  in
  let holed = Frame.exclusion ctx.frame <> Window_spec.Exclude_no_others in
  let algorithm =
    match algorithm with
    | Auto -> if holed then Naive else Incremental
    | a -> a
  in
  match algorithm with
  | Naive | Auto ->
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          let counts = Hashtbl.create 16 in
          let best = ref None in
          Array.iter
            (fun (lo, hi) ->
              for i = lo to hi - 1 do
                let id = ids.(i) in
                let c = 1 + Option.value (Hashtbl.find_opt counts id) ~default:0 in
                Hashtbl.replace counts id c;
                best :=
                  (match !best with
                  | None -> Some (c, id)
                  | Some (bc, bid) ->
                      if c > bc || (c = bc && id <> bid && better id bid) then Some (c, id)
                      else Some (bc, bid))
              done)
            ranges;
          emit r (Option.map snd !best))
  | Incremental | Incremental_serial ->
      incremental_drive ctx rm
        ~serial:(algorithm = Incremental_serial)
        ~make_state:(fun () ->
          let st = Inc.Mode.create () in
          ( (fun p -> Inc.Mode.add st ids.(p)),
            (fun p -> Inc.Mode.remove st ids.(p)),
            (fun r -> emit r (Inc.Mode.mode st ~better)),
            fun () -> Inc.Mode.clear st ))
  | Mst | Mst_no_cascade | Order_statistic | Segment_tree ->
      unsupported "mode supports Auto/Naive/Incremental (no known O(n log n) range-mode index)"

(* ------------------------------------------------------------------ *)
(* Rank functions (§4.4)                                               *)
(* ------------------------------------------------------------------ *)

type rank_variant = Rank_v | Dense_v | Row_number_v | Percent_rank_v | Cume_dist_v | Ntile_v of int

let ntile_bucket ~buckets ~s ~rn0 =
  let rn0 = max 0 (min rn0 (s - 1)) in
  let q = s / buckets and rem = s mod buckets in
  let b =
    if q = 0 then rn0
    else if rn0 < (q + 1) * rem then rn0 / (q + 1)
    else rem + ((rn0 - ((q + 1) * rem)) / q)
  in
  b + 1

let eval_rank_family ctx ~variant ~order ~filter ~algorithm ~out =
  let order = effective_order ctx order in
  let enc = encode ctx order in
  let qual = { Build_cache.filter; extra = Build_cache.Ex_none } in
  let rm = qualify ctx qual in
  let m = Remap.filtered_count rm in
  (* Lazy so the streamed (out-of-core) MST build path never materializes
     the filtered code arrays it doesn't probe with. *)
  let frank = lazy (Array.init m (fun i -> enc.Rank_encode.rank_codes.(Remap.position rm i))) in
  let frow = lazy (Array.init m (fun i -> enc.Rank_encode.row_codes.(Remap.position rm i))) in
  let emit r v = out.(ctx.rows.(r)) <- v in
  let finish r ~cnt_less ~cnt_le ~rn0 ~s =
    match variant with
    | Rank_v -> emit r (Value.Int (cnt_less + 1))
    | Percent_rank_v ->
        emit r (Value.Float (if s <= 1 then 0.0 else float_of_int cnt_less /. float_of_int (s - 1)))
    | Cume_dist_v ->
        emit r (if s = 0 then Value.Null else Value.Float (float_of_int cnt_le /. float_of_int s))
    | Row_number_v -> emit r (Value.Int (rn0 + 1))
    | Ntile_v b -> emit r (if s = 0 then Value.Null else Value.Int (ntile_bucket ~buckets:b ~s ~rn0))
    | Dense_v -> assert false
  in
  let needs_rank = match variant with Rank_v | Percent_rank_v | Cume_dist_v -> true | _ -> false in
  let needs_row = match variant with Row_number_v | Ntile_v _ -> true | _ -> false in
  match variant, algorithm with
  | Dense_v, (Auto | Mst | Mst_no_cascade) ->
      let sample = if algorithm = Mst_no_cascade then 0 else ctx.sample in
      let frank = Lazy.force frank in
      let rt =
        Build_cache.range_tree ctx.cache ~algo:(mst_tag algorithm) ~order ~qual ~sample (fun () ->
            Range_tree.create ~pool:ctx.pool ~fanout:ctx.fanout ~sample frank)
      in
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          let key = enc.Rank_encode.rank_codes.(r) in
          let v =
            match Array.length ranges with
            | 0 -> 0
            | 1 ->
                let lo, hi = ranges.(0) in
                Range_tree.distinct_below rt ~lo ~hi ~key
            | _ ->
                (* holed frames fall back to a scan; see DESIGN.md *)
                Naive.distinct_below frank ~ranges ~key
          in
          emit r (Value.Int (v + 1)))
  | Dense_v, Naive ->
      let frank = Lazy.force frank in
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          emit r (Value.Int (Naive.distinct_below frank ~ranges ~key:enc.Rank_encode.rank_codes.(r) + 1)))
  | Dense_v, _ -> unsupported "dense_rank supports Auto/Mst/Naive"
  | _, (Auto | Mst | Mst_no_cascade) ->
      let sample = if algorithm = Mst_no_cascade then 0 else ctx.sample in
      let getr i = enc.Rank_encode.rank_codes.(Remap.position rm i) in
      let getw i = enc.Rank_encode.row_codes.(Remap.position rm i) in
      let tree_rank =
        if needs_rank then
          Some
            (Build_cache.count_tree ctx.cache ~algo:(mst_tag algorithm) ~cls:Build_cache.Rank_codes ~order ~qual ~sample
               ~maintain:(mst_maintain ctx ~sample (fun () -> Lazy.force frank))
               (fun () ->
                 governed_mst ctx ~sample ~n:m ~get:getr ~arr:(fun () -> Lazy.force frank)))
        else None
      in
      let tree_row =
        if needs_row then
          Some
            (Build_cache.count_tree ctx.cache ~algo:(mst_tag algorithm) ~cls:Build_cache.Row_codes ~order ~qual ~sample
               ~maintain:(mst_maintain ctx ~sample (fun () -> Lazy.force frow))
               (fun () ->
                 governed_mst ctx ~sample ~n:m ~get:getw ~arr:(fun () -> Lazy.force frow)))
        else None
      in
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          let s = covered_of ranges in
          let code = enc.Rank_encode.rank_codes.(r) in
          let cnt_less, cnt_le =
            match tree_rank with
            | Some t ->
                ( Mstw.count_ranges t ~ranges ~less_than:code,
                  if variant = Cume_dist_v then Mstw.count_ranges t ~ranges ~less_than:(code + 1)
                  else 0 )
            | None -> (0, 0)
          in
          let rn0 =
            match tree_row with
            | Some t -> Mstw.count_ranges t ~ranges ~less_than:enc.Rank_encode.row_codes.(r)
            | None -> 0
          in
          finish r ~cnt_less ~cnt_le ~rn0 ~s)
  | _, Naive ->
      let frank = Lazy.force frank and frow = Lazy.force frow in
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          let s = covered_of ranges in
          let code = enc.Rank_encode.rank_codes.(r) in
          let cnt_less = if needs_rank then Naive.count_less frank ~ranges ~less_than:code else 0 in
          let cnt_le =
            if variant = Cume_dist_v then Naive.count_less frank ~ranges ~less_than:(code + 1) else 0
          in
          let rn0 =
            if needs_row then Naive.count_less frow ~ranges ~less_than:enc.Rank_encode.row_codes.(r)
            else 0
          in
          finish r ~cnt_less ~cnt_le ~rn0 ~s)
  | _, Order_statistic ->
      let codes = if needs_row then Lazy.force frow else Lazy.force frank in
      let own r =
        if needs_row then enc.Rank_encode.row_codes.(r) else enc.Rank_encode.rank_codes.(r)
      in
      incremental_drive ctx rm ~serial:false ~make_state:(fun () ->
          let ost = Ost.create () in
          ( (fun p -> Ost.insert ost codes.(p)),
            (fun p -> Ost.remove ost codes.(p)),
            (fun r ->
              let s = Ost.size ost in
              let code = own r in
              let cnt_less = Ost.rank ost (if variant = Cume_dist_v then code + 1 else code) in
              if variant = Cume_dist_v then finish r ~cnt_less:0 ~cnt_le:cnt_less ~rn0:0 ~s
              else finish r ~cnt_less ~cnt_le:0 ~rn0:cnt_less ~s),
            fun () -> Ost.clear ost ))
  | _, (Incremental | Incremental_serial | Segment_tree) ->
      unsupported "rank functions support Auto/Mst/Naive/Order_statistic"

(* ------------------------------------------------------------------ *)
(* Percentiles, value functions, LEAD/LAG (§4.5, §4.6)                 *)
(* ------------------------------------------------------------------ *)

type select_kind =
  | Sel_percentile_disc of float
  | Sel_percentile_cont of float
  | Sel_first
  | Sel_last
  | Sel_nth of int * bool (* from_last *)
  | Sel_lead of int * Expr.t option
  | Sel_lag of int * Expr.t option

let eval_select_family ctx ~kind ~arg ~order ~ignore_nulls ~filter ~algorithm ~out =
  let order = effective_order ctx order in
  let enc = encode ctx order in
  let acc = arg_access ctx arg in
  let is_percentile =
    match kind with Sel_percentile_disc _ | Sel_percentile_cont _ -> true | _ -> false
  in
  let extra =
    if is_percentile then begin
      (* percentiles ignore NULLs of the aggregated (= ordering) value *)
      match order with
      | [] -> Build_cache.Ex_none
      | key :: _ -> Build_cache.Ex_nonnull key.Sort_spec.expr
    end
    else if ignore_nulls then Build_cache.Ex_nonnull arg
    else Build_cache.Ex_none
  in
  let qual = { Build_cache.filter; extra } in
  let rm = qualify ctx qual in
  let m = Remap.filtered_count rm in
  let fro = lazy (Array.init m (fun i -> enc.Rank_encode.row_codes.(Remap.position rm i))) in
  let needs_rn = match kind with Sel_lead _ | Sel_lag _ -> true | _ -> false in
  (* Per-algorithm primitives: [select_nth ranges s nth] yields the selected
     row's partition position; [rn ranges r] the current row's 0-based
     position among the frame rows under the function order. *)
  let value_of_pos p = acc.value_at p in
  let float_of_pos p = acc.float_at p in
  let emit_for r ~s ~select_nth ~rn =
    let row = ctx.rows.(r) in
    let v =
      match kind with
      | Sel_percentile_disc p ->
          if s = 0 then Value.Null
          else begin
            let i = int_of_float (Float.ceil (p *. float_of_int s)) - 1 in
            let i = max 0 (min i (s - 1)) in
            value_of_pos (select_nth i)
          end
      | Sel_percentile_cont p ->
          if s = 0 then Value.Null
          else begin
            let x = p *. float_of_int (s - 1) in
            let lo = int_of_float (Float.floor x) in
            let frac = x -. float_of_int lo in
            let vlo = float_of_pos (select_nth lo) in
            if frac <= 0.0 || lo + 1 >= s then Value.Float vlo
            else begin
              let vhi = float_of_pos (select_nth (lo + 1)) in
              Value.Float (vlo +. (frac *. (vhi -. vlo)))
            end
          end
      | Sel_first -> if s = 0 then Value.Null else value_of_pos (select_nth 0)
      | Sel_last -> if s = 0 then Value.Null else value_of_pos (select_nth (s - 1))
      | Sel_nth (n, from_last) ->
          let i = if from_last then s - n else n - 1 in
          if i >= 0 && i < s then value_of_pos (select_nth i) else Value.Null
      | Sel_lead (off, default) | Sel_lag (off, default) ->
          let off = match kind with Sel_lag _ -> -off | _ -> off in
          let target = rn () + off in
          if target >= 0 && target < s then value_of_pos (select_nth target)
          else begin
            match default with
            | Some e -> Expr.eval ctx.table e row
            | None -> Value.Null
          end
    in
    out.(row) <- v
  in
  match algorithm with
  | Auto | Mst | Mst_no_cascade ->
      let sample = if algorithm = Mst_no_cascade then 0 else ctx.sample in
      let getro i = enc.Rank_encode.row_codes.(Remap.position rm i) in
      (* permutation of filtered positions in function order = §4.5 Fig. 6 *)
      let sel_perm () =
        let keys = Array.init m getro in
        let permf = Array.init m (fun i -> i) in
        Introsort.sort_pairs ~key:keys ~payload:permf;
        permf
      in
      let sel_tree =
        Build_cache.count_tree ctx.cache ~algo:(mst_tag algorithm) ~cls:Build_cache.Select_perm ~order ~qual ~sample
          ~maintain:(mst_maintain ctx ~sample sel_perm)
          (fun () ->
            let p = sel_perm () in
            governed_mst ctx ~sample ~n:m ~get:(Array.get p) ~arr:(fun () -> p))
      in
      let cnt_tree =
        if needs_rn then
          Some
            (Build_cache.count_tree ctx.cache ~algo:(mst_tag algorithm) ~cls:Build_cache.Row_codes ~order ~qual ~sample
               ~maintain:(mst_maintain ctx ~sample (fun () -> Lazy.force fro))
               (fun () ->
                 governed_mst ctx ~sample ~n:m ~get:getro ~arr:(fun () -> Lazy.force fro)))
        else None
      in
      probe ctx (fun r ->
          let ranges = mapped_ranges ctx rm r in
          let s = covered_of ranges in
          emit_for r ~s
            ~select_nth:(fun nth -> Remap.position rm (Mstw.select sel_tree ~ranges ~nth))
            ~rn:(fun () ->
              Mstw.count_ranges (Option.get cnt_tree) ~ranges
                ~less_than:enc.Rank_encode.row_codes.(r)))
  | Naive ->
      let fro = Lazy.force fro in
      Task_pool.parallel_for ctx.pool ~lo:0 ~hi:(np ctx) ~chunk:ctx.task_size (fun lo hi ->
          let scratch = Array.make (max m 1) 0 in
          for r = lo to hi - 1 do
            let ranges = mapped_ranges ctx rm r in
            let s = covered_of ranges in
            emit_for r ~s
              ~select_nth:(fun nth ->
                let code = Naive.select_kth fro ~scratch ~ranges ~k:nth in
                enc.Rank_encode.permutation.(code))
              ~rn:(fun () ->
                Naive.count_less fro ~ranges ~less_than:enc.Rank_encode.row_codes.(r))
          done)
  | Incremental | Incremental_serial ->
      let fro = Lazy.force fro in
      incremental_drive ctx rm
        ~serial:(algorithm = Incremental_serial)
        ~make_state:(fun () ->
          let sw = Inc.Sorted_window.create () in
          ( (fun p -> Inc.Sorted_window.add sw fro.(p)),
            (fun p -> Inc.Sorted_window.remove sw fro.(p)),
            (fun r ->
              let s = Inc.Sorted_window.size sw in
              emit_for r ~s
                ~select_nth:(fun nth ->
                  enc.Rank_encode.permutation.(Inc.Sorted_window.select sw nth))
                ~rn:(fun () -> Inc.Sorted_window.rank sw enc.Rank_encode.row_codes.(r))),
            fun () -> Inc.Sorted_window.clear sw ))
  | Order_statistic ->
      let fro = Lazy.force fro in
      incremental_drive ctx rm ~serial:false ~make_state:(fun () ->
          let ost = Ost.create () in
          ( (fun p -> Ost.insert ost fro.(p)),
            (fun p -> Ost.remove ost fro.(p)),
            (fun r ->
              let s = Ost.size ost in
              emit_for r ~s
                ~select_nth:(fun nth -> enc.Rank_encode.permutation.(Ost.select ost nth))
                ~rn:(fun () -> Ost.rank ost enc.Rank_encode.row_codes.(r))),
            fun () -> Ost.clear ost ))
  | Segment_tree -> unsupported "percentiles/value functions do not use segment trees"

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let eval_item ctx (item : Window_func.t) ~out =
  let filter = item.filter and algorithm = item.algorithm in
  match item.func with
  | Aggregate { kind; arg; distinct } -> eval_aggregate ctx ~kind ~arg ~distinct ~filter ~algorithm ~out
  | Rank order -> eval_rank_family ctx ~variant:Rank_v ~order ~filter ~algorithm ~out
  | Dense_rank order -> eval_rank_family ctx ~variant:Dense_v ~order ~filter ~algorithm ~out
  | Row_number order -> eval_rank_family ctx ~variant:Row_number_v ~order ~filter ~algorithm ~out
  | Percent_rank order -> eval_rank_family ctx ~variant:Percent_rank_v ~order ~filter ~algorithm ~out
  | Cume_dist order -> eval_rank_family ctx ~variant:Cume_dist_v ~order ~filter ~algorithm ~out
  | Ntile (b, order) -> eval_rank_family ctx ~variant:(Ntile_v b) ~order ~filter ~algorithm ~out
  | Percentile_disc (p, order) ->
      let arg =
        match order with
        | k :: _ -> k.Sort_spec.expr
        | [] -> invalid_arg "Window: percentile_disc requires an ORDER BY expression"
      in
      eval_select_family ctx ~kind:(Sel_percentile_disc p) ~arg ~order ~ignore_nulls:false ~filter
        ~algorithm ~out
  | Percentile_cont (p, order) ->
      let arg =
        match order with
        | k :: _ -> k.Sort_spec.expr
        | [] -> invalid_arg "Window: percentile_cont requires an ORDER BY expression"
      in
      eval_select_family ctx ~kind:(Sel_percentile_cont p) ~arg ~order ~ignore_nulls:false ~filter
        ~algorithm ~out
  | First_value { arg; order; ignore_nulls } ->
      eval_select_family ctx ~kind:Sel_first ~arg ~order ~ignore_nulls ~filter ~algorithm ~out
  | Last_value { arg; order; ignore_nulls } ->
      eval_select_family ctx ~kind:Sel_last ~arg ~order ~ignore_nulls ~filter ~algorithm ~out
  | Nth_value (n, from_last, { arg; order; ignore_nulls }) ->
      eval_select_family ctx ~kind:(Sel_nth (n, from_last)) ~arg ~order ~ignore_nulls ~filter
        ~algorithm ~out
  | Lead (off, default, { arg; order; ignore_nulls }) ->
      eval_select_family ctx ~kind:(Sel_lead (off, default)) ~arg ~order ~ignore_nulls ~filter
        ~algorithm ~out
  | Lag (off, default, { arg; order; ignore_nulls }) ->
      eval_select_family ctx ~kind:(Sel_lag (off, default)) ~arg ~order ~ignore_nulls ~filter
        ~algorithm ~out
  | Mode arg -> eval_mode ctx ~arg ~filter ~algorithm ~out
