open Holistic_storage

type algorithm =
  | Auto
  | Mst
  | Mst_no_cascade
  | Naive
  | Incremental
  | Incremental_serial
  | Order_statistic
  | Segment_tree

type agg_kind = Count_star | Count | Sum | Avg | Min | Max

type value_func = { arg : Expr.t; order : Sort_spec.t; ignore_nulls : bool }

type func =
  | Aggregate of { kind : agg_kind; arg : Expr.t option; distinct : bool }
  | Rank of Sort_spec.t
  | Dense_rank of Sort_spec.t
  | Row_number of Sort_spec.t
  | Percent_rank of Sort_spec.t
  | Cume_dist of Sort_spec.t
  | Ntile of int * Sort_spec.t
  | Percentile_disc of float * Sort_spec.t
  | Percentile_cont of float * Sort_spec.t
  | First_value of value_func
  | Last_value of value_func
  | Nth_value of int * bool * value_func
  | Lead of int * Expr.t option * value_func
  | Lag of int * Expr.t option * value_func
  | Mode of Expr.t

type t = { func : func; filter : Expr.t option; algorithm : algorithm; name : string }

let make ?filter ?(algorithm = Auto) ~name func = { func; filter; algorithm; name }

let aggregate ?filter ?algorithm ~name kind arg distinct =
  make ?filter ?algorithm ~name (Aggregate { kind; arg; distinct })

let count_star ?filter ?algorithm ~name () =
  aggregate ?filter ?algorithm ~name Count_star None false

let count ?filter ?algorithm ?(distinct = false) ~name e =
  aggregate ?filter ?algorithm ~name Count (Some e) distinct

let sum ?filter ?algorithm ?(distinct = false) ~name e =
  aggregate ?filter ?algorithm ~name Sum (Some e) distinct

let avg ?filter ?algorithm ?(distinct = false) ~name e =
  aggregate ?filter ?algorithm ~name Avg (Some e) distinct

let min_ ?filter ?algorithm ~name e = aggregate ?filter ?algorithm ~name Min (Some e) false
let max_ ?filter ?algorithm ~name e = aggregate ?filter ?algorithm ~name Max (Some e) false
let rank ?filter ?algorithm ~name order = make ?filter ?algorithm ~name (Rank order)

let dense_rank ?filter ?algorithm ~name order =
  make ?filter ?algorithm ~name (Dense_rank order)

let row_number ?filter ?algorithm ~name order =
  make ?filter ?algorithm ~name (Row_number order)

let percent_rank ?filter ?algorithm ~name order =
  make ?filter ?algorithm ~name (Percent_rank order)

let cume_dist ?filter ?algorithm ~name order = make ?filter ?algorithm ~name (Cume_dist order)

let ntile ?filter ?algorithm ~name n order =
  if n < 1 then invalid_arg "Window_func.ntile: bucket count must be positive";
  make ?filter ?algorithm ~name (Ntile (n, order))

let percentile_disc ?filter ?algorithm ~name p order =
  if p < 0.0 || p > 1.0 then invalid_arg "Window_func.percentile_disc: fraction out of [0,1]";
  make ?filter ?algorithm ~name (Percentile_disc (p, order))

let percentile_cont ?filter ?algorithm ~name p order =
  if p < 0.0 || p > 1.0 then invalid_arg "Window_func.percentile_cont: fraction out of [0,1]";
  make ?filter ?algorithm ~name (Percentile_cont (p, order))

let median ?filter ?algorithm ~name e =
  percentile_disc ?filter ?algorithm ~name 0.5 [ Sort_spec.asc e ]

let mode ?filter ?algorithm ~name e = make ?filter ?algorithm ~name (Mode e)

let value_func ?(ignore_nulls = false) ?(order = []) arg = { arg; order; ignore_nulls }

let first_value ?filter ?algorithm ?ignore_nulls ?order ~name arg =
  make ?filter ?algorithm ~name (First_value (value_func ?ignore_nulls ?order arg))

let last_value ?filter ?algorithm ?ignore_nulls ?order ~name arg =
  make ?filter ?algorithm ~name (Last_value (value_func ?ignore_nulls ?order arg))

let nth_value ?filter ?algorithm ?ignore_nulls ?order ?(from_last = false) ~name n arg =
  if n < 1 then invalid_arg "Window_func.nth_value: n must be >= 1";
  make ?filter ?algorithm ~name (Nth_value (n, from_last, value_func ?ignore_nulls ?order arg))

let lead ?filter ?algorithm ?ignore_nulls ?order ?(offset = 1) ?default ~name arg =
  make ?filter ?algorithm ~name (Lead (offset, default, value_func ?ignore_nulls ?order arg))

let lag ?filter ?algorithm ?ignore_nulls ?order ?(offset = 1) ?default ~name arg =
  make ?filter ?algorithm ~name (Lag (offset, default, value_func ?ignore_nulls ?order arg))

let class_name t =
  match t.func with
  | Aggregate { kind; distinct; _ } ->
      let base =
        match kind with
        | Count_star -> "count(*)"
        | Count -> "count"
        | Sum -> "sum"
        | Avg -> "avg"
        | Min -> "min"
        | Max -> "max"
      in
      if distinct then base ^ " distinct" else base
  | Rank _ -> "rank"
  | Dense_rank _ -> "dense_rank"
  | Row_number _ -> "row_number"
  | Percent_rank _ -> "percent_rank"
  | Cume_dist _ -> "cume_dist"
  | Ntile _ -> "ntile"
  | Percentile_disc _ -> "percentile_disc"
  | Percentile_cont _ -> "percentile_cont"
  | First_value _ -> "first_value"
  | Last_value _ -> "last_value"
  | Nth_value _ -> "nth_value"
  | Lead _ -> "lead"
  | Lag _ -> "lag"
  | Mode _ -> "mode"
