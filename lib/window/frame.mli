(** Per-row window-frame bounds within one partition (§2.2, §4.7).

    Bounds are computed for every row independently — nothing assumes
    monotonicity, so arbitrary per-row bound expressions are supported and
    the resulting frames may jump around freely (§6.5). Frame-exclusion
    clauses carve up to two holes out of the base frame, yielding at most
    three continuous ranges (§4.7). *)

open Holistic_storage

type t

val compute :
  ?peers:int array * int array -> Table.t -> spec:Window_spec.t -> rows:int array -> t
(** [compute table ~spec ~rows] evaluates the frame specification for the
    partition whose rows (original indices, already in window-frame order)
    are [rows]. RANGE mode requires exactly one ORDER BY key of a numeric or
    date type; rows with a NULL RANGE key frame their null peer group, as in
    PostgreSQL. [peers] supplies precomputed peer-group bounds (from
    {!peers}) so plans evaluating several frames over one sorted partition
    scan for peer groups once. @raise Invalid_argument on malformed specs. *)

val peers : Table.t -> Sort_spec.t -> int array -> int array * int array
(** [(peer_start, peer_end)] per partition position for the given window
    ORDER BY — shareable across every frame with the same ORDER BY. *)

val size : t -> int
(** Number of rows in the partition. *)

val start_ : t -> int -> int
(** Base frame start (inclusive partition position, before exclusion). *)

val end_ : t -> int -> int
(** Base frame end (exclusive). May be [<= start_] for an empty frame. *)

val peer_start : t -> int -> int
(** Start of the row's peer group under the window ORDER BY. *)

val peer_end : t -> int -> int

val ranges : t -> int -> (int * int) array
(** The frame of row [r] after applying the exclusion clause: up to three
    disjoint half-open ranges of partition positions, ascending, each
    non-empty. *)

val covered : t -> int -> int
(** Total number of positions in [ranges t r]. *)

val exclusion : t -> Window_spec.exclusion
