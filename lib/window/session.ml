open Holistic_storage
module Obs = Holistic_obs.Obs
module Task_pool = Holistic_parallel.Task_pool
module Introsort = Holistic_sort.Introsort
module Multiway = Holistic_sort.Multiway
module Parallel_sort = Holistic_sort.Parallel_sort

(* ------------------------------------------------------------------ *)
(* Partition keys and full sorts (shared with Window_plan)             *)
(* ------------------------------------------------------------------ *)

(* These live here — below the plan — because the session's mutation
   paths must reproduce the plan's sorts and partition keys bit for bit:
   a maintained permutation is only valid if it equals what [full_sort]
   would have produced from scratch.  [Window_plan] aliases them. *)

(* Integer partition keys from the PARTITION BY expressions: two rows get
   equal keys iff every expression agrees. Per-column keys are computed
   column-at-a-time (no per-row list allocation, and the expression phase
   parallelises over the pool); multi-column keys are packed after
   densifying each side, so the combine is pure integer arithmetic. The
   stdlib [Hashtbl] compares with polymorphic equality, which preserves the
   SQL-ish grouping of the old row-key path (NULLs group together, [nan]
   equals [nan]). *)
let densify_ints a =
  let tbl = Hashtbl.create 256 in
  Array.map
    (fun v ->
      match Hashtbl.find_opt tbl v with
      | Some id -> id
      | None ->
          let id = Hashtbl.length tbl in
          Hashtbl.add tbl v id;
          id)
    a

let partition_ids pool table exprs =
  let n = Table.nrows table in
  match exprs with
  | [] -> None
  | _ ->
      let key_of_expr e =
        match e with
        | Expr.Col name ->
            (* exact per-column equality keys; raw values for int-like
               columns, so no hash table at all on this path *)
            Column.distinct_ids (Table.column table name)
        | _ ->
            let f = Expr.compile table e in
            let vals = Array.make n Value.Null in
            Task_pool.parallel_for pool ~lo:0 ~hi:n ~chunk:Task_pool.default_task_size
              (fun lo hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set vals i (f i)
                done);
            let tbl = Hashtbl.create 256 in
            Array.map
              (fun v ->
                match Hashtbl.find_opt tbl v with
                | Some id -> id
                | None ->
                    let id = Hashtbl.length tbl in
                    Hashtbl.add tbl v id;
                    id)
              vals
      in
      let ids =
        match List.map key_of_expr exprs with
        | [] -> assert false
        | [ k ] -> k
        | k :: rest ->
            (* pack pairwise: densified ids are < n, so [a * n + b] is
               collision-free and stays well inside 63-bit range *)
            List.fold_left
              (fun acc k ->
                let a = densify_ints acc and b = densify_ints k in
                Array.init n (fun i -> (a.(i) * n) + b.(i)))
              k rest
      in
      Some ids

(* Partition boundaries straight off the sorted leading key word: the
   partition component of word 0 is [word / divisor] (see
   {!Key_codec.pid_divisor}), so boundaries need no second pass over
   partition ids through the permutation. Count-then-fill: no O(n) list
   churn. *)
let boundaries_of_key0 ~key0 ~divisor n =
  let count = ref 1 in
  for k = 1 to n - 1 do
    if key0.(k) / divisor <> key0.(k - 1) / divisor then incr count
  done;
  let b = Array.make (!count + 1) 0 in
  b.(!count) <- n;
  let idx = ref 1 in
  for k = 1 to n - 1 do
    if key0.(k) / divisor <> key0.(k - 1) / divisor then begin
      b.(!idx) <- k;
      incr idx
    end
  done;
  b

(* Every full sort goes through the key codec: partition ids become the
   leading component of word 0, ORDER BY keys become the remaining words,
   and the parallel run-sort/OVC-merge machinery does the rest. A sort
   counts as comparator-path only when the codec produced no words at all
   (nothing but closure comparisons) — the regression the stats guard
   against. Returns [(perm, partition boundaries, comparator_path)]. *)
let full_sort ?gov pool table ~pids ~order =
  let n = Table.nrows table in
  let kc = Key_codec.compile ?pids table order in
  let words = kc.Key_codec.words in
  let nwords = Array.length words in
  let tie = kc.Key_codec.residual in
  let comparator_path = nwords = 0 && tie <> None in
  let in_memory () =
    let perm, key0 = Parallel_sort.sort_encoded pool ~n ~words ?tie () in
    let boundaries =
      match kc.Key_codec.pid_divisor with
      | None -> [| 0; n |]
      | Some divisor -> boundaries_of_key0 ~key0 ~divisor n
    in
    (perm, boundaries, comparator_path)
  in
  match gov with
  | None -> in_memory ()
  | Some _ when nwords = 0 -> in_memory ()
  | Some g -> (
      (* governed: charge the encoded key words, let the governor decide,
         and mirror each path's transient working set (see the model in
         Mem_governor.plan_sort) so [peak] is the accounted high-water *)
      let c_words = 8 * nwords * n in
      Mem_governor.charge g c_words;
      let multi_run = Task_pool.size pool > 1 && n > Task_pool.default_task_size in
      match Mem_governor.plan_sort g ~n ~nwords ~multi_run with
      | Mem_governor.Sort_in_memory ->
          let need = (16 * n) + if multi_run then 16 * n else 0 in
          Mem_governor.charge g need;
          let r = in_memory () in
          Mem_governor.release g (need + c_words);
          r
      | Mem_governor.Sort_spill { run_rows; read_entries } ->
          let dir = Mem_governor.spill_dir g in
          let stride = nwords + 1 in
          let nruns = ((n - 1) / run_rows) + 1 in
          let c_form = 24 * run_rows in
          let c_merge = (8 * n) + (nruns * read_entries * stride * 8) in
          Mem_governor.charge g c_form;
          let interior = ref [] in
          let on_key0 =
            match kc.Key_codec.pid_divisor with
            | None -> None
            | Some divisor ->
                let prev = ref 0 in
                Some
                  (fun rank k0 ->
                    let p = k0 / divisor in
                    if rank = 0 then prev := p
                    else if p <> !prev then begin
                      interior := rank :: !interior;
                      prev := p
                    end)
          in
          let perm, runs, bytes =
            Parallel_sort.sort_encoded_spill ~n ~words ?tie ~run_rows ~read_entries ~dir ?on_key0
              ~after_runs:(fun () ->
                (* the key words are on disk now: swap the formation-side
                   charges for the merge-side ones *)
                Mem_governor.release g (c_form + c_words);
                Mem_governor.charge g c_merge)
              ()
          in
          Mem_governor.release g c_merge;
          Mem_governor.note_spill g ~runs ~bytes;
          let boundaries =
            if n = 0 then [| 0; 0 |]
            else
              match kc.Key_codec.pid_divisor with
              | None -> [| 0; n |]
              | Some _ -> Array.of_list (0 :: List.rev (n :: !interior))
          in
          (perm, boundaries, comparator_path))

(* ------------------------------------------------------------------ *)
(* The persistent structure store                                      *)
(* ------------------------------------------------------------------ *)

type status = Reused | Extended of int | Rebuilt

type okey = Window_spec.t * Window_func.func * Expr.t option

type part = {
  cache : Build_cache.t;
  outputs : (okey, Value.t array) Hashtbl.t;
  mutable status : status;
}

type entry = {
  mutable perm : int array;
  mutable boundaries : int array;
  mutable parts : part array;
  mutable prov : string;
      (* pending maintenance note for the next query's sort span; [""]
         once consumed (the span then reads [reused(epoch=k)]) *)
  algs : (okey, Evaluator_choice.name) Hashtbl.t;
      (* backend each item resolved to at the last query over this stage:
         its structures are already cached, so their build cost is sunk *)
}

type t = {
  mutable table : Table.t;
  mutable epoch : int;
  pool : Task_pool.t;
  counters : Build_cache.counters;
  pids : (Expr.t list, int array option) Hashtbl.t;
  entries : (Expr.t list * Sort_spec.t, entry) Hashtbl.t;
  (* how mutations classified stage partitions over the session's
     lifetime: kept outright / extended in order / built from scratch
     (first builds included).  Monotone — the introspection and gauge
     story for "how much is maintenance actually saving". *)
  mutable tally_reused : int;
  mutable tally_extended : int;
  mutable tally_rebuilt : int;
}

let entry_bytes e =
  let parts =
    Array.fold_left
      (fun acc p ->
        Hashtbl.fold
          (fun _ vals acc -> acc + (16 * Array.length vals))
          p.outputs
          (acc + Build_cache.footprint_bytes p.cache))
      0 e.parts
  in
  (8 * (Array.length e.perm + Array.length e.boundaries)) + parts

let footprint_bytes s = Hashtbl.fold (fun _ e acc -> acc + entry_bytes e) s.entries 0

(* The session.* gauges follow the most recently created session (the
   callbacks are re-pointed by each [create]); the CLI and the serving
   story both run one session per process. *)
let register_gauges s =
  let reg name help read = ignore (Obs.Gauge.register ~help name read) in
  reg "session.rows" "Rows currently in the session table" (fun () -> Table.nrows s.table);
  reg "session.bytes" "Bytes held by the session structure store (permutations, caches, outputs)"
    (fun () -> footprint_bytes s);
  reg "session.epoch" "Mutations (appends/evictions) applied to the session" (fun () -> s.epoch);
  reg "session.keys" "(PARTITION BY, ORDER BY) stages held by the session store" (fun () ->
      Hashtbl.length s.entries);
  reg "session.parts_reused" "Stage partitions kept outright across mutations since session creation"
    (fun () -> s.tally_reused);
  reg "session.parts_extended"
    "Stage partitions maintained incrementally (in-order append) since session creation" (fun () ->
      s.tally_extended);
  reg "session.parts_rebuilt" "Stage partitions built from scratch since session creation"
    (fun () -> s.tally_rebuilt)

let create ?pool table =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let s =
    {
      table;
      epoch = 0;
      pool;
      counters = Build_cache.fresh_counters ();
      pids = Hashtbl.create 8;
      entries = Hashtbl.create 8;
      tally_reused = 0;
      tally_extended = 0;
      tally_rebuilt = 0;
    }
  in
  register_gauges s;
  s

let table s = s.table
let epoch s = s.epoch
let counters s = s.counters

let fresh_part counters status =
  { cache = Build_cache.create ~counters (); outputs = Hashtbl.create 8; status }

(* ------------------------------------------------------------------ *)
(* Query-side API (used by Window_plan)                                *)
(* ------------------------------------------------------------------ *)

let pids_for s ~pb ~compute =
  match Hashtbl.find_opt s.pids pb with
  | Some p -> p
  | None ->
      let p = compute () in
      Hashtbl.replace s.pids pb p;
      p

let lookup s ~pb ~order =
  match Hashtbl.find_opt s.entries (pb, order) with
  | None -> None
  | Some e ->
      let prov =
        if e.prov = "" then Printf.sprintf "reused(epoch=%d)" s.epoch else e.prov
      in
      e.prov <- "";
      Some (e.perm, e.boundaries, e.parts, prov, e.algs)

let store s ~pb ~order ~perm ~boundaries =
  let nparts = Array.length boundaries - 1 in
  let parts = Array.init nparts (fun _ -> fresh_part s.counters Rebuilt) in
  s.tally_rebuilt <- s.tally_rebuilt + nparts;
  let e = { perm; boundaries; parts; prov = ""; algs = Hashtbl.create 8 } in
  Hashtbl.replace s.entries (pb, order) e;
  (parts, e.algs)

(* ------------------------------------------------------------------ *)
(* Append maintenance                                                  *)
(* ------------------------------------------------------------------ *)

(* Match every partition of the new permutation to its old counterpart by
   partition-id label (ids recomputed on the appended table are valid for
   old rows too: their values did not change).  A slice whose length is
   unchanged is exactly the old slice — the label's old rows, in the same
   total order — so the part is reused outright.  A longer slice is an
   in-order extension iff every appended row sorts strictly after the old
   rows; then the old caches are kept and marked stale for incremental
   maintenance.  Out-of-order appends (a new row interleaving among old
   ones) invalidate precisely that partition. *)
let classify_append s ~pids ~old_perm ~old_b ~old_parts ~perm ~boundaries ~n_old =
  let counters = s.counters in
  let rebuilt () =
    s.tally_rebuilt <- s.tally_rebuilt + 1;
    fresh_part counters Rebuilt
  in
  let label row = match pids with None -> 0 | Some ids -> ids.(row) in
  let old_nparts = Array.length old_b - 1 in
  let old_index = Hashtbl.create (2 * old_nparts) in
  for p = 0 to old_nparts - 1 do
    (* an empty table stores one empty slice — nothing to match against *)
    if old_b.(p + 1) > old_b.(p) then Hashtbl.replace old_index (label old_perm.(old_b.(p))) p
  done;
  let nparts = Array.length boundaries - 1 in
  Array.init nparts (fun p ->
      let lo = boundaries.(p) and hi = boundaries.(p + 1) in
      if hi = lo then rebuilt ()
      else
      match Hashtbl.find_opt old_index (label perm.(lo)) with
      | None -> rebuilt ()
      | Some op ->
          let old_len = old_b.(op + 1) - old_b.(op) in
          let len = hi - lo in
          if len = old_len then begin
            s.tally_reused <- s.tally_reused + 1;
            old_parts.(op)
          end
          else if len > old_len then begin
            let in_order = ref true in
            for k = lo to lo + old_len - 1 do
              if perm.(k) >= n_old then in_order := false
            done;
            if !in_order then begin
              let part = old_parts.(op) in
              Build_cache.advance part.cache;
              Hashtbl.reset part.outputs;
              part.status <- Extended old_len;
              s.tally_extended <- s.tally_extended + 1;
              part
            end
            else rebuilt ()
          end
          else rebuilt ())

(* Maintain one stage order under an append: gather the new codec's
   leading word through the old permutation (run 1), sort the appended
   suffix (run 2) exactly as the parallel sort's run phase would, and
   OVC-merge the two runs.  Both runs are sorted under the codec's strict
   total order — words, residual, ascending row id — which is the full
   sort's order, so the merged permutation is bit-identical to sorting the
   appended table from scratch.  The O(n) adjacency check guards the
   old-prefix invariant (it can break when a bulk eviction reordered
   hash-densified partition labels); any failure falls back to a full
   sort, which the slice classifier then salvages partition by partition. *)
let maintain_append s entry ~pids ~order ~n_old ~n =
  let table = s.table in
  let kc = Key_codec.compile ?pids table order in
  let words = kc.Key_codec.words in
  let merged =
    if Array.length words = 0 then None
    else begin
      let payload = Array.make n 0 in
      Array.blit entry.perm 0 payload 0 n_old;
      for i = n_old to n - 1 do
        payload.(i) <- i
      done;
      let w0 = words.(0) in
      let key0 =
        Array.init n (fun i -> Array.unsafe_get w0 (Array.unsafe_get payload i))
      in
      let mw =
        {
          Multiway.key0;
          payload;
          deep = Array.sub words 1 (Array.length words - 1);
          tie = kc.Key_codec.residual;
        }
      in
      let sorted = ref true in
      (try
         for i = 1 to n_old - 1 do
           if Multiway.compare_positions mw (i - 1) i > 0 then begin
             sorted := false;
             raise Exit
           end
         done
       with Exit -> ());
      if not !sorted then None
      else begin
        if n - n_old > 1 then begin
          let tie = Multiway.deep_compare mw in
          Introsort.sort_pairs_tie_range ~key:key0 ~payload ~tie ~lo:n_old ~hi:n
        end;
        let dst_key0 = Array.make n 0 and dst_payload = Array.make n 0 in
        Multiway.merge_multiword ~mw
          ~runs:[| { Multiway.lo = 0; hi = n_old }; { Multiway.lo = n_old; hi = n } |]
          ~dst_key0 ~dst_payload ~dst_pos:0;
        Some (dst_payload, dst_key0)
      end
    end
  in
  let perm, boundaries, prov =
    match merged with
    | Some (perm, key0) ->
        let b =
          match kc.Key_codec.pid_divisor with
          | None -> [| 0; n |]
          | Some divisor -> boundaries_of_key0 ~key0 ~divisor n
        in
        (perm, b, Printf.sprintf "maintained(+%d rows)" (n - n_old))
    | None ->
        let perm, b, _ = full_sort s.pool table ~pids ~order in
        (perm, b, "rebuilt(order)")
  in
  let parts =
    classify_append s ~pids ~old_perm:entry.perm ~old_b:entry.boundaries
      ~old_parts:entry.parts ~perm ~boundaries ~n_old
  in
  entry.perm <- perm;
  entry.boundaries <- boundaries;
  entry.parts <- parts;
  entry.prov <- prov

let append_rows s delta =
  let n_old = Table.nrows s.table in
  let dn = Table.nrows delta in
  if dn > 0 then begin
    let n = n_old + dn in
    s.table <- Table.append s.table delta;
    s.epoch <- s.epoch + 1;
    Obs.span "session.append"
      ~args:(fun () -> [ ("rows", string_of_int dn); ("total", string_of_int n) ])
      (fun () ->
        (* refresh every cached partition-id array on the appended table
           first (entries share them), then maintain each stage order *)
        let pbs = Hashtbl.fold (fun pb _ acc -> pb :: acc) s.pids [] in
        List.iter (fun pb -> Hashtbl.replace s.pids pb (partition_ids s.pool s.table pb)) pbs;
        Hashtbl.iter
          (fun (pb, order) entry ->
            let pids = pids_for s ~pb ~compute:(fun () -> partition_ids s.pool s.table pb) in
            maintain_append s entry ~pids ~order ~n_old ~n)
          s.entries)
  end

(* ------------------------------------------------------------------ *)
(* Bulk eviction                                                       *)
(* ------------------------------------------------------------------ *)

(* Eviction never re-sorts: filtering a sorted permutation and renumbering
   the surviving row ids monotonically preserves the codec's total order
   (the final tie-break is ascending row id, and the renumbering keeps
   relative id order), so the filtered permutation is exactly what a full
   sort of the evicted table would produce — up to the order of
   hash-densified partition labels, which the next append's adjacency
   guard re-checks.  Partitions keep their relative order, so the new
   boundaries are survivor-count prefix sums; a partition that lost no
   rows keeps its caches and outputs (structures index slice positions
   and row values, both unchanged), one that lost any row is rebuilt. *)
let apply_evict s keep =
  let n_old = Array.length keep in
  let kept = Array.fold_left (fun acc k -> if k then acc + 1 else acc) 0 keep in
  if kept < n_old then begin
    let rn = Array.make n_old (-1) in
    let kept_rows = Array.make kept 0 in
    let j = ref 0 in
    for i = 0 to n_old - 1 do
      if keep.(i) then begin
        rn.(i) <- !j;
        kept_rows.(!j) <- i;
        incr j
      end
    done;
    s.table <- Table.gather s.table kept_rows;
    s.epoch <- s.epoch + 1;
    Obs.span "session.evict"
      ~args:(fun () ->
        [ ("rows", string_of_int (n_old - kept)); ("total", string_of_int kept) ])
      (fun () ->
        let pbs = Hashtbl.fold (fun pb _ acc -> pb :: acc) s.pids [] in
        List.iter (fun pb -> Hashtbl.replace s.pids pb (partition_ids s.pool s.table pb)) pbs;
        Hashtbl.iter
          (fun _ entry ->
            let old_perm = entry.perm and old_b = entry.boundaries in
            let old_nparts = Array.length old_b - 1 in
            let perm = Array.make kept 0 in
            let k = ref 0 in
            Array.iter
              (fun row ->
                if keep.(row) then begin
                  perm.(!k) <- rn.(row);
                  incr k
                end)
              old_perm;
            (* survivors per old partition; surviving partitions keep
               their relative order, so boundaries are prefix sums *)
            let surviving = ref 0 in
            let surv =
              Array.init old_nparts (fun p ->
                  let c = ref 0 in
                  for q = old_b.(p) to old_b.(p + 1) - 1 do
                    if keep.(old_perm.(q)) then incr c
                  done;
                  if !c > 0 then incr surviving;
                  !c)
            in
            let boundaries = Array.make (!surviving + 1) 0 in
            let parts = Array.make !surviving (fresh_part s.counters Rebuilt) in
            let idx = ref 0 and off = ref 0 in
            for p = 0 to old_nparts - 1 do
              if surv.(p) > 0 then begin
                boundaries.(!idx) <- !off;
                parts.(!idx) <-
                  (if surv.(p) = old_b.(p + 1) - old_b.(p) then begin
                     s.tally_reused <- s.tally_reused + 1;
                     entry.parts.(p)
                   end
                   else begin
                     s.tally_rebuilt <- s.tally_rebuilt + 1;
                     fresh_part s.counters Rebuilt
                   end);
                off := !off + surv.(p);
                incr idx
              end
            done;
            boundaries.(!surviving) <- kept;
            entry.perm <- perm;
            entry.boundaries <- boundaries;
            entry.parts <- parts;
            entry.prov <- Printf.sprintf "maintained(-%d rows)" (n_old - kept))
          s.entries)
  end

let evict_where s pred =
  let n = Table.nrows s.table in
  apply_evict s (Array.init n (fun i -> not (pred i)))

let evict_prefix s k =
  let n = Table.nrows s.table in
  let k = max 0 (min k n) in
  apply_evict s (Array.init n (fun i -> i >= k))

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type key_stats = {
  partition_by : string;
  order_by : string;
  parts : int;
  key_bytes : int;
  cur_reused : int;
  cur_extended : int;
  cur_rebuilt : int;
}

type stats = {
  s_epoch : int;
  s_rows : int;
  s_bytes : int;
  reused : int;
  extended : int;
  rebuilt : int;
  keys : key_stats list;
}

let stats s =
  let keys =
    Hashtbl.fold
      (fun (pb, order) (e : entry) acc ->
        let r = ref 0 and x = ref 0 and b = ref 0 in
        Array.iter
          (fun p ->
            match p.status with
            | Reused -> incr r
            | Extended _ -> incr x
            | Rebuilt -> incr b)
          e.parts;
        {
          partition_by = String.concat ", " (List.map Expr.to_string pb);
          order_by = Sort_spec.to_string order;
          parts = Array.length e.parts;
          key_bytes = entry_bytes e;
          cur_reused = !r;
          cur_extended = !x;
          cur_rebuilt = !b;
        }
        :: acc)
      s.entries []
  in
  let keys =
    List.sort
      (fun a b ->
        match String.compare a.partition_by b.partition_by with
        | 0 -> String.compare a.order_by b.order_by
        | c -> c)
      keys
  in
  {
    s_epoch = s.epoch;
    s_rows = Table.nrows s.table;
    s_bytes = footprint_bytes s;
    reused = s.tally_reused;
    extended = s.tally_extended;
    rebuilt = s.tally_rebuilt;
    keys;
  }

let render_stats st =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "session epoch=%d rows=%d keys=%d footprint=%s\n" st.s_epoch st.s_rows
       (List.length st.keys) (Obs.human_bytes st.s_bytes));
  Buffer.add_string b
    (Printf.sprintf "partitions since creation: reused=%d extended=%d rebuilt=%d\n" st.reused
       st.extended st.rebuilt);
  List.iter
    (fun k ->
      let key =
        (if k.partition_by = "" then "" else "PARTITION BY " ^ k.partition_by ^ " ")
        ^ "ORDER BY " ^ k.order_by
      in
      let line = "  " ^ key in
      let pad = max 1 (48 - String.length line) in
      Buffer.add_string b
        (Printf.sprintf "%s%s parts=%-5d %10s  [reused=%d extended=%d rebuilt=%d]\n" line
           (String.make pad ' ') k.parts
           (Obs.human_bytes k.key_bytes)
           k.cur_reused k.cur_extended k.cur_rebuilt))
    st.keys;
  Buffer.contents b
