(** Per-partition evaluation of window functions: preprocessing into integer
    arrays, index structure construction (merge sort tree / range tree /
    segment tree / competitor state) and the embarrassingly parallel probe
    phase (§4, §5).

    Used by {!Executor}; exposed for tests and the benchmark harness. *)

open Holistic_storage

type ctx = {
  table : Table.t;
  pool : Holistic_parallel.Task_pool.t;
  rows : int array;  (** partition rows in window-frame order (original indices) *)
  frame : Frame.t;
  window_order : Sort_spec.t;
  fanout : int;
  sample : int;
  task_size : int;
  width : Holistic_core.Mst_width.choice;
      (** storage width for merge sort trees ({!Holistic_core.Mst_width}) *)
  cache : Build_cache.t;
      (** per-partition structure cache shared by every item evaluated over
          [rows] — encodings and trees are built once per structural key *)
  gov : Mem_governor.t option;
      (** memory governor: when set, large MST builds stream their leaves
          ({!Holistic_core.Mst_width.create_stream}) whenever
          {!Mem_governor.stream_builds} says the materialized operand would
          overrun the budget *)
}

val eval_item : ctx -> Window_func.t -> out:Value.t array -> unit
(** Evaluates one window function over the partition, writing results into
    [out] at the rows' original indices.
    @raise Invalid_argument for unsupported function/algorithm pairs. *)
