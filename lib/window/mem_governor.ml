(* Memory governor: accounted-footprint tracking plus per-stage spill
   decisions. The accounting covers what the engine's own meters cover —
   encoded key words, sort transients, structure bytes — so decisions are
   deterministic for a given query and budget, independent of GC state. *)

exception Budget_too_small of string

type policy = Auto | Always_spill

type sort_plan = Sort_in_memory | Sort_spill of { run_rows : int; read_entries : int }

type t = {
  g_budget : int option;
  g_policy : policy;
  g_dir : string option;
  mutable g_live : int;
  mutable g_peak : int;
  mutable g_spill_dir : string option;
  mutable g_last_spill : (int * int) option;
  mutable g_total_runs : int;
  mutable g_total_bytes : int;
}

let create ?budget ?(policy = Auto) ?dir () =
  (match budget with
  | Some b when b <= 0 -> invalid_arg "Mem_governor.create: budget must be positive"
  | _ -> ());
  {
    g_budget = budget;
    g_policy = policy;
    g_dir = dir;
    g_live = 0;
    g_peak = 0;
    g_spill_dir = None;
    g_last_spill = None;
    g_total_runs = 0;
    g_total_bytes = 0;
  }

let policy g = g.g_policy
let budget g = g.g_budget

let charge g b =
  g.g_live <- g.g_live + b;
  if g.g_live > g.g_peak then g.g_peak <- g.g_live

let release g b = g.g_live <- max 0 (g.g_live - b)
let live g = g.g_live
let peak g = g.g_peak

(* Working-set model of the two sort paths, in bytes (the key words,
   8*nwords*n, are assumed charged already in [live]):
     in-memory: key0 copy (8n) + perm (8n) + merge scratch (16n when the
       run/merge split is active)
     spill, formation: chunk key + chunk payload (16 bytes/run row) plus
       IO buffer slack, ~24 bytes per run row, words still held
     spill, merge: words released, perm (8n) + per-run read buffers
       (8 * (nwords + 1) * read_entries each). *)
let plan_sort g ~n ~nwords ~multi_run =
  if n = 0 then Sort_in_memory
  else
    match g.g_policy with
    | Always_spill ->
        (* differential-testing mode: force several runs even on tiny
           inputs so the merge path is really exercised *)
        Sort_spill { run_rows = max 2 ((n + 3) / 4); read_entries = 64 }
    | Auto -> (
        match g.g_budget with
        | None -> Sort_in_memory
        | Some b ->
            let need = (16 * n) + if multi_run then 16 * n else 0 in
            if g.g_live + need <= b then Sort_in_memory
            else begin
              let avail_form = b - g.g_live in
              let run_rows = avail_form / 24 in
              if run_rows < 16 then
                raise
                  (Budget_too_small
                     (Printf.sprintf
                        "memory budget %d B cannot sort %d rows: %d B live leaves no room to form \
                         even a 16-row spill run (24 B/row)"
                        b n g.g_live));
              let run_rows = min run_rows n in
              let nruns = ((n - 1) / run_rows) + 1 in
              let per_entry = 8 * (nwords + 1) in
              let merge_live = g.g_live - (8 * nwords * n) in
              let merge_avail = b - merge_live - (8 * n) in
              let read_entries = merge_avail * 9 / 10 / (max 1 nruns * per_entry) in
              if read_entries < 16 then
                raise
                  (Budget_too_small
                     (Printf.sprintf
                        "memory budget %d B cannot merge %d spill runs of %d rows: the output \
                         permutation (%d B) plus 16-entry read buffers (%d B) do not fit"
                        b nruns n (8 * n) (nruns * 16 * per_entry)));
              Sort_spill { run_rows; read_entries = min read_entries 65536 }
            end)

let stream_builds g ~bytes =
  match g.g_policy with
  | Always_spill -> true
  | Auto -> ( match g.g_budget with None -> false | Some b -> g.g_live + bytes > b)

let pick_spills ~candidates ~need =
  let sorted = List.stable_sort (fun (_, a) (_, b) -> Int.compare b a) candidates in
  let rec go freed acc = function
    | [] -> List.rev acc
    | (name, bytes) :: rest ->
        if freed >= need then List.rev acc else go (freed + bytes) (name :: acc) rest
  in
  go 0 [] sorted

let spill_dir g =
  match g.g_spill_dir with
  | Some d -> d
  | None ->
      let d =
        match g.g_dir with
        | Some parent -> Filename.temp_dir ~temp_dir:parent "holiwin_spill" ""
        | None -> Filename.temp_dir "holiwin_spill" ""
      in
      g.g_spill_dir <- Some d;
      d

let cleanup g =
  match g.g_spill_dir with
  | None -> ()
  | Some d ->
      g.g_spill_dir <- None;
      (try
         Array.iter (fun f -> try Sys.remove (Filename.concat d f) with _ -> ()) (Sys.readdir d);
         Sys.rmdir d
       with _ -> ())

let note_spill g ~runs ~bytes =
  g.g_last_spill <- Some (runs, bytes);
  g.g_total_runs <- g.g_total_runs + runs;
  g.g_total_bytes <- g.g_total_bytes + bytes

let take_last_spill g =
  let r = g.g_last_spill in
  g.g_last_spill <- None;
  r

let totals g = (g.g_total_runs, g.g_total_bytes)

let parse_limit s =
  let s = String.trim s in
  let fail () =
    invalid_arg
      (Printf.sprintf
         "invalid memory limit %S: use a byte count, a K/M/G-suffixed count (64K, 512M, 1G), or \
          \"spill\" to force-spill every stage"
         s)
  in
  if String.lowercase_ascii s = "spill" then (None, Always_spill)
  else begin
    let len = String.length s in
    if len = 0 then fail ();
    let mult, digits =
      match Char.uppercase_ascii s.[len - 1] with
      | 'K' -> (1024, String.sub s 0 (len - 1))
      | 'M' -> (1024 * 1024, String.sub s 0 (len - 1))
      | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (len - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt (String.trim digits) with
    | Some v when v > 0 -> (Some (v * mult), Auto)
    | _ -> fail ()
  end

let of_env () =
  match Sys.getenv_opt "HOLIWIN_MEM_LIMIT" with
  | None | Some "" -> None
  | Some s ->
      let budget, policy = parse_limit s in
      Some (create ?budget ~policy ())
