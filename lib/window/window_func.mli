(** Window function descriptions, including the paper's proposed extensions
    (§2.4): DISTINCT aggregates over windows, and a second, function-local
    ORDER BY for rank functions, percentiles, value functions and LEAD/LAG —
    all freely combinable with arbitrary frames. *)

open Holistic_storage

(** Which evaluation algorithm to use; the benchmark harness sweeps these. *)
type algorithm =
  | Auto  (** merge sort tree family (range tree for DENSE_RANK, segment tree for plain aggregates) *)
  | Mst  (** merge sort tree with fractional cascading *)
  | Mst_no_cascade
      (** merge sort tree, cascading disabled — the "segment tree of sorted
          lists" competitor, O(n (log n)²) *)
  | Naive  (** per-frame recomputation (§5.5) *)
  | Incremental
      (** Wesley & Xu incremental state, driven by fixed-size tasks that each
          rebuild their state (the paper's parallelised competitor, §5.5) *)
  | Incremental_serial
      (** Wesley & Xu incremental state in one serial pass (DuckDB-style) *)
  | Order_statistic  (** counted-B-tree window state, task-driven *)
  | Segment_tree  (** distributive aggregates only *)

type agg_kind = Count_star | Count | Sum | Avg | Min | Max

type value_func = {
  arg : Expr.t;
  order : Sort_spec.t;  (** function-local ORDER BY; [\[\]] = window order *)
  ignore_nulls : bool;
}

type func =
  | Aggregate of { kind : agg_kind; arg : Expr.t option; distinct : bool }
  | Rank of Sort_spec.t
  | Dense_rank of Sort_spec.t
  | Row_number of Sort_spec.t
  | Percent_rank of Sort_spec.t
  | Cume_dist of Sort_spec.t
  | Ntile of int * Sort_spec.t
  | Percentile_disc of float * Sort_spec.t
  | Percentile_cont of float * Sort_spec.t
  | First_value of value_func
  | Last_value of value_func
  | Nth_value of int * bool * value_func
      (** 1-based n; the flag is SQL:2011's FROM LAST (count from the frame's
          last row under the function order) *)
  | Lead of int * Expr.t option * value_func  (** offset, default *)
  | Lag of int * Expr.t option * value_func
  | Mode of Expr.t
      (** most frequent argument value in the frame, smallest value on ties —
          the third Wesley & Xu holistic aggregate (paper §3.1); evaluated by
          the incremental/naive competitors only (range mode has no known
          O(n log n) index structure) *)

type t = {
  func : func;
  filter : Expr.t option;  (** FILTER (WHERE …), §4.7 *)
  algorithm : algorithm;
  name : string;  (** output column name *)
}

val make : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> func -> t

(** Convenience constructors. *)

val count_star : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> unit -> t
val count : ?filter:Expr.t -> ?algorithm:algorithm -> ?distinct:bool -> name:string -> Expr.t -> t
val sum : ?filter:Expr.t -> ?algorithm:algorithm -> ?distinct:bool -> name:string -> Expr.t -> t
val avg : ?filter:Expr.t -> ?algorithm:algorithm -> ?distinct:bool -> name:string -> Expr.t -> t
val min_ : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> Expr.t -> t
val max_ : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> Expr.t -> t
val rank : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> Sort_spec.t -> t
val dense_rank : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> Sort_spec.t -> t
val row_number : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> Sort_spec.t -> t
val percent_rank : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> Sort_spec.t -> t
val cume_dist : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> Sort_spec.t -> t
val ntile : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> int -> Sort_spec.t -> t

val median : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> Expr.t -> t
(** [percentile_disc 0.5] ordered by the expression ascending. *)

val mode : ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> Expr.t -> t

val percentile_disc :
  ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> float -> Sort_spec.t -> t

val percentile_cont :
  ?filter:Expr.t -> ?algorithm:algorithm -> name:string -> float -> Sort_spec.t -> t

val first_value :
  ?filter:Expr.t -> ?algorithm:algorithm -> ?ignore_nulls:bool -> ?order:Sort_spec.t ->
  name:string -> Expr.t -> t

val last_value :
  ?filter:Expr.t -> ?algorithm:algorithm -> ?ignore_nulls:bool -> ?order:Sort_spec.t ->
  name:string -> Expr.t -> t

val nth_value :
  ?filter:Expr.t -> ?algorithm:algorithm -> ?ignore_nulls:bool -> ?order:Sort_spec.t ->
  ?from_last:bool -> name:string -> int -> Expr.t -> t

val lead :
  ?filter:Expr.t -> ?algorithm:algorithm -> ?ignore_nulls:bool -> ?order:Sort_spec.t ->
  ?offset:int -> ?default:Expr.t -> name:string -> Expr.t -> t

val lag :
  ?filter:Expr.t -> ?algorithm:algorithm -> ?ignore_nulls:bool -> ?order:Sort_spec.t ->
  ?offset:int -> ?default:Expr.t -> name:string -> Expr.t -> t

val class_name : t -> string
(** The function class as a short lower-case label ("rank",
    "percentile_disc", "sum distinct", ...), for traces and EXPLAIN. *)
