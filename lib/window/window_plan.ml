open Holistic_storage
module Obs = Holistic_obs.Obs
module Task_pool = Holistic_parallel.Task_pool
module Introsort = Holistic_sort.Introsort
module Multiway = Holistic_sort.Multiway

type clause = { spec : Window_spec.t; items : Window_func.t list }

type stats = {
  stages : int;
  partition_passes : int;
  full_sorts : int;
  partial_sorts : int;
  reused_sorts : int;
  session_sorts : int;
  comparator_sorts : int;
  encode_builds : int;
  tree_builds : int;
}

(* ------------------------------------------------------------------ *)
(* Partition keys and full sorts                                       *)
(* ------------------------------------------------------------------ *)

(* These moved to {!Session}: the store's mutation paths must reproduce
   the plan's partition keys and sorts bit for bit, so both layers share
   one definition (the session sits below the plan). *)
let partition_ids = Session.partition_ids
let full_sort = Session.full_sort

(* Partial-sort sharing (Cao et al., arXiv:1208.0086): a stage whose
   partitioning matches an earlier sort re-sorts only within the inherited
   partition boundaries — partition keys are never compared again. The new
   order's compiled key words are gathered once through the base
   permutation; ties fall back to deep words, the residual and finally the
   row id, so repeated runs agree. *)
let partial_sort pool table ~base_perm ~boundaries ~order =
  let perm = Array.copy base_perm in
  let n = Array.length perm in
  let nparts = Array.length boundaries - 1 in
  let kc = Key_codec.compile table order in
  let words = kc.Key_codec.words in
  let comparator_path = Array.length words = 0 && kc.Key_codec.residual <> None in
  (* Boundary segments are disjoint spans of [perm] (and [key]), so the
     per-partition re-sorts are independent tasks; chunking over partition
     indices keeps each task a run of consecutive segments. *)
  let for_each_partition f =
    Task_pool.parallel_for pool ~lo:0 ~hi:nparts (fun plo phi ->
        for p = plo to phi - 1 do
          f ~lo:boundaries.(p) ~hi:boundaries.(p + 1)
        done)
  in
  (if Array.length words = 0 then begin
     let cmp = Key_codec.comparator kc in
     for_each_partition (fun ~lo ~hi -> Introsort.sort_by_range perm ~cmp ~lo ~hi)
   end
   else begin
     let w0 = words.(0) in
     let key = Array.make n 0 in
     Task_pool.parallel_for pool ~lo:0 ~hi:n (fun lo hi ->
         for i = lo to hi - 1 do
           Array.unsafe_set key i (Array.unsafe_get w0 (Array.unsafe_get perm i))
         done);
     match Array.length words, kc.Key_codec.residual with
     | 1, None ->
         for_each_partition (fun ~lo ~hi -> Introsort.sort_pairs_range ~key ~payload:perm ~lo ~hi)
     | nw, residual ->
         let mw =
           { Multiway.key0 = key; payload = perm; deep = Array.sub words 1 (nw - 1); tie = residual }
         in
         let tie = Multiway.deep_compare mw in
         for_each_partition (fun ~lo ~hi ->
             Introsort.sort_pairs_tie_range ~key ~payload:perm ~tie ~lo ~hi)
   end);
  (perm, comparator_path)

(* ------------------------------------------------------------------ *)
(* Stage grouping                                                      *)
(* ------------------------------------------------------------------ *)

(* [o1] is a (possibly equal) prefix of [o2], keys compared structurally:
   rows sorted by [o2] are also sorted by [o1], so a clause ordered by a
   prefix of a stage order reuses the stage's permutation outright. *)
let rec order_prefix (o1 : Sort_spec.t) (o2 : Sort_spec.t) =
  match o1, o2 with
  | [], _ -> true
  | _, [] -> false
  | k1 :: r1, k2 :: r2 -> k1 = k2 && order_prefix r1 r2

let dedup_orders orders =
  List.fold_left (fun acc o -> if List.mem o acc then acc else o :: acc) [] orders |> List.rev

(* Stage orders for one partition group: the orders that are not a strict
   prefix of another requested order, in first-appearance order. Every
   clause is then assigned to the first stage whose order covers its own. *)
let stage_orders orders =
  let uniq = dedup_orders orders in
  List.filter (fun o -> not (List.exists (fun o' -> o' <> o && order_prefix o o') uniq)) uniq

(* The scheduling policy, factored out so that reference implementations
   (the differential fuzz oracle) can reproduce the engine's stage
   assignment — a clause whose ORDER BY is a strict prefix of another's is
   evaluated under the longer stage sort, which is observable through
   ROWS frames under ties — without depending on how stages are sorted or
   evaluated.  [schedule_by] is the generic core: entries carry a payload
   alongside their clause so [run_with_stats] can thread output arrays
   through unchanged. *)
let schedule_by (get : 'a -> clause) (entries : 'a list) :
    (Expr.t list * (Sort_spec.t * 'a list) list) list =
  let pgroups =
    List.fold_left
      (fun acc entry ->
        let pb = (get entry).spec.Window_spec.partition_by in
        match List.find_opt (fun (pb', _) -> pb' = pb) acc with
        | Some (_, members) ->
            members := entry :: !members;
            acc
        | None -> acc @ [ (pb, ref [ entry ]) ])
      [] entries
  in
  List.map
    (fun (pb, members) ->
      let members = List.rev !members in
      let orders =
        stage_orders (List.map (fun e -> (get e).spec.Window_spec.order_by) members)
      in
      (* first covering stage per clause, preserving member order in a stage *)
      let stage_members order =
        List.filter
          (fun e ->
            let co = (get e).spec.Window_spec.order_by in
            match List.find_opt (fun o -> order_prefix co o) orders with
            | Some first -> first == order
            | None -> assert false)
          members
      in
      (pb, List.map (fun o -> (o, stage_members o)) orders))
    pgroups

type stage = { order : Sort_spec.t; members : clause list }
type group = { partition_by : Expr.t list; stages : stage list }

let schedule clauses =
  List.map
    (fun (pb, stages) ->
      {
        partition_by = pb;
        stages = List.map (fun (o, ms) -> { order = o; members = ms }) stages;
      })
    (schedule_by (fun c -> c) clauses)

(* ------------------------------------------------------------------ *)
(* The plan                                                            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Morsel-driven partition evaluation                                   *)
(* ------------------------------------------------------------------ *)

(* Partition evaluation is embarrassingly parallel (paper §3.2), but the
   partitions of a real stage are wildly unequal, so the unit of work is a
   morsel: a run of consecutive small partitions totalling roughly
   [morsel_rows] rows.  Partitions of at least [large] rows are *not*
   morselised — they are evaluated on the caller, where their internal
   probe loops and tree builds can themselves fan out across the pool
   (inside a worker task those would run inline and serialise).  Returns
   [(caller_partitions, morsels)], both in ascending partition order;
   morsels are [(first, last)] partition-index ranges, end-exclusive. *)
let morselize ~boundaries ~large ~morsel_rows =
  let nparts = Array.length boundaries - 1 in
  let caller = ref [] and morsels = ref [] in
  let mstart = ref (-1) and mrows = ref 0 in
  let flush upto =
    if !mstart >= 0 then begin
      morsels := (!mstart, upto) :: !morsels;
      mstart := -1;
      mrows := 0
    end
  in
  for p = 0 to nparts - 1 do
    let rows = boundaries.(p + 1) - boundaries.(p) in
    if rows >= large then begin
      flush p;
      caller := p :: !caller
    end
    else begin
      if !mstart < 0 then mstart := p;
      mrows := !mrows + rows;
      if !mrows >= morsel_rows then flush (p + 1)
    end
  done;
  flush nparts;
  (List.rev !caller, List.rev !morsels)

(* Registered plan counters, mirroring [stats] in captured traces. *)
let c_stages = Obs.Counter.make ~help:"Pipeline stages executed by window plans" "plan.stages"
let c_partition_passes = Obs.Counter.make ~help:"Partitioning passes over the input (shared across OVER clauses)" "plan.partition_passes"
let c_full_sorts = Obs.Counter.make ~help:"Full sorts of a partitioning stage from scratch" "plan.full_sorts"
let c_partial_sorts = Obs.Counter.make ~help:"Partial re-sorts refining an already partition-clustered order" "plan.partial_sorts"
let c_reused_sorts = Obs.Counter.make ~help:"Sort orders reused verbatim from an earlier stage" "plan.reused_sorts"
let c_session_sorts = Obs.Counter.make ~help:"Sort orders served from a session store entry" "plan.session_sorts"
let c_comparator_sorts = Obs.Counter.make ~help:"Sorts that fell back to the boxed comparator path" "plan.comparator_sorts"

(* One pick counter per backend: every resolved (stage, item) bumps its
   backend exactly once, independent of partition count or pool size. *)
let c_evaluator =
  List.map
    (fun nm ->
      let s = Evaluator_choice.to_string nm in
      (nm, Obs.Counter.make ~help:("Window clauses routed to the " ^ s ^ " evaluator") ("plan.evaluator." ^ s)))
    Evaluator_choice.all

(* ------------------------------------------------------------------ *)
(* Per-item evaluator resolution                                       *)
(* ------------------------------------------------------------------ *)

let parse_env_evaluator () =
  match Sys.getenv_opt "HOLIWIN_EVALUATOR" with
  | None | Some "" -> None
  | Some s -> (
      match Evaluator_choice.of_string s with
      | Some n -> Some n
      | None ->
          invalid_arg
            (Printf.sprintf "Window: unknown HOLIWIN_EVALUATOR %S (one of %s)" s
               (String.concat "/" (List.map Evaluator_choice.to_string Evaluator_choice.all))))

let holed_spec (spec : Window_spec.t) =
  match spec.Window_spec.frame with
  | Some f -> f.Window_spec.exclusion <> Window_spec.Exclude_no_others
  | None -> false

(* Resolve one (stage, item) to a concrete backend, once per stage — every
   partition of the stage then runs the same algorithm, so sibling item
   spans stay identical and cost decisions cannot depend on partition
   sizes (only on their average) or on the pool.  Returns the item with
   its [algorithm] pinned plus the backend tag for the item span; plain
   COUNT and COUNT star are structure-free and resolve to no backend.

   Precedence: an explicit item algorithm always wins and keeps the
   evaluator bodies' historical semantics (including their silent
   fallbacks); the [?evaluator] knob is strict — an unsupported (function,
   backend) pair is an error; the HOLIWIN_EVALUATOR env var is lenient —
   it forces the backend where eligible and leaves the cost model to pick
   elsewhere, so a whole workload (e.g. the CI fuzz leg) can run under one
   forced backend. *)
let resolve_item ~evaluator ~env_force ~sunk ~(model : Cost_model.constants) ~rows_avg ~nparts
    ~task_size ~fanout (spec : Window_spec.t) (item : Window_func.t) =
  let module Ec = Evaluator_choice in
  match Ec.classify item with
  | Ec.C_trivial_count -> (item, None)
  | cls ->
      let holed = holed_spec spec in
      let chosen =
        match Ec.of_algorithm item.Window_func.algorithm with
        | Some forced -> forced
        | None -> (
            match evaluator with
            | Some f ->
                if Ec.supports f cls ~holed then f
                else invalid_arg (Ec.unsupported_message f cls ~holed)
            | None -> (
                match env_force with
                | Some f when Ec.supports f cls ~holed -> f
                | _ ->
                    let frame_rows, monotonic = Cost_model.estimate_frame spec ~rows:rows_avg in
                    let d =
                      Cost_model.choose ~sunk model
                        {
                          Cost_model.rows = rows_avg;
                          nparts;
                          frame_rows;
                          monotonic;
                          holed;
                          cls;
                          task_size;
                          fanout;
                        }
                    in
                    Obs.span "choose"
                      ~args:(fun () ->
                        let total s = s *. float_of_int (max 1 nparts) /. 1000.0 in
                        let fmt (nm, s) =
                          Printf.sprintf "%s=%.1fus" (Ec.to_string nm) (total s)
                        in
                        [
                          ("item", item.Window_func.name);
                          ("evaluator", Ec.to_string d.Cost_model.chosen);
                          ("cost", fmt (d.Cost_model.chosen,
                                        List.assoc d.Cost_model.chosen d.Cost_model.scores));
                          ( "rejected",
                            String.concat ","
                              (List.filter_map
                                 (fun (nm, s) ->
                                   if nm = d.Cost_model.chosen then None else Some (fmt (nm, s)))
                                 d.Cost_model.scores) );
                        ]
                        @
                        if sunk = [] then []
                        else
                          [
                            ( "sunk",
                              String.concat "," (List.map Ec.to_string sunk) );
                          ])
                      (fun () -> ());
                    d.Cost_model.chosen))
      in
      Obs.Counter.incr (List.assoc chosen c_evaluator);
      ( { item with Window_func.algorithm = Ec.to_algorithm chosen },
        Some (Ec.to_string chosen) )

let exprs_to_string exprs = String.concat ", " (List.map Expr.to_string exprs)

let order_permutation ?pool table ~over =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let pids = partition_ids pool table over.Window_spec.partition_by in
  let perm, boundaries, _ = full_sort pool table ~pids ~order:over.Window_spec.order_by in
  (perm, boundaries)

let run_with_stats ?pool ?(fanout = 32) ?(sample = 32)
    ?(task_size = Task_pool.default_task_size) ?(width = Holistic_core.Mst_width.Auto) ?evaluator
    ?governor ?mem_limit ?session table clauses =
  let pool = match pool with Some p -> p | None -> Task_pool.default () in
  let env_force = parse_env_evaluator () in
  (* memory governor: an explicit one wins, then ?mem_limit (bytes), then
     HOLIWIN_MEM_LIMIT; none → the exact historical in-memory plan, with
     identical spans and goldens. Governors made here own their spill dir. *)
  let gov, gov_owned =
    match governor with
    | Some g -> (Some g, false)
    | None -> (
        match mem_limit with
        | Some b -> (Some (Mem_governor.create ~budget:b ()), true)
        | None -> (
            match Mem_governor.of_env () with Some g -> (Some g, true) | None -> (None, false)))
  in
  Fun.protect ~finally:(fun () ->
      match gov with Some g when gov_owned -> Mem_governor.cleanup g | _ -> ())
  @@ fun () ->
  let n = Table.nrows table in
  (* a session only applies to queries over exactly its table — a plan over
     any other table (e.g. a WHERE-filtered copy) runs stateless *)
  let session =
    match session with Some s when Session.table s == table -> Some s | _ -> None
  in
  let counters =
    match session with Some s -> Session.counters s | None -> Build_cache.fresh_counters ()
  in
  let encode_builds0 = Build_cache.encode_build_count counters in
  let tree_builds0 = Build_cache.tree_build_count counters in
  let n_stages = ref 0 and partition_passes = ref 0 in
  let full_sorts = ref 0 and partial_sorts = ref 0 and reused_sorts = ref 0 in
  let session_sorts = ref 0 and comparator_sorts = ref 0 in
  (* output arrays up front, in clause/item appearance order *)
  let outputs =
    List.map
      (fun c -> (c, List.map (fun (it : Window_func.t) -> (it, Array.make n Value.Null)) c.items))
      clauses
  in
  (* group clauses by PARTITION BY (structural equality), appearance
     order, and assign each to its first covering sort stage *)
  let pgroups = schedule_by (fun (c, _) -> c) outputs in
  (* One long-lived batch holds every partition morsel of the whole plan:
     morsels are submitted as soon as their stage's sort lands and drain on
     the workers while the caller sorts later stages and partition groups
     (the DAG's independent arms overlap), with one join before
     materialisation. *)
  let eval_batch = Task_pool.new_batch () in
  Obs.span "window_plan"
    ~args:(fun () ->
      [ ("rows", string_of_int n); ("clauses", string_of_int (List.length clauses)) ])
    (fun () ->
      List.iter
        (fun (pb, stages) ->
          let pids =
            Obs.span "partition_ids"
              ~args:(fun () -> [ ("by", exprs_to_string pb) ])
              (fun () ->
                match session with
                | Some s -> Session.pids_for s ~pb ~compute:(fun () -> partition_ids pool table pb)
                | None -> partition_ids pool table pb)
          in
          incr partition_passes;
          Obs.Counter.incr c_partition_passes;
          let base = ref None in
          List.iter
            (fun (order, smembers) ->
              incr n_stages;
              Obs.Counter.incr c_stages;
              reused_sorts := !reused_sorts + List.length smembers - 1;
              Obs.Counter.add c_reused_sorts (List.length smembers - 1);
              let sort_kind = ref "" and sort_comp = ref false and sort_cache = ref "" in
              let sort_spill = ref "" in
              let session_hit =
                match session with
                | Some s -> Session.lookup s ~pb ~order
                | None -> None
              in
              let perm, boundaries =
                Obs.span "sort"
                  ~args:(fun () ->
                    [
                      ("order", Sort_spec.to_string order);
                      ("kind", !sort_kind);
                      ("path", if !sort_comp then "comparator" else "encoded");
                      ("rows", string_of_int n);
                    ]
                    @ (if !sort_cache = "" then [] else [ ("cache", !sort_cache) ])
                    @ if !sort_spill = "" then [] else [ ("spilled", !sort_spill) ])
                  (fun () ->
                    let ((perm, boundaries) as result) =
                      match session_hit with
                    | Some (perm, b, _, prov, _) ->
                        (* the store already holds this stage's permutation,
                           maintained under every mutation since it was
                           built — no sort at all *)
                        incr session_sorts;
                        Obs.Counter.incr c_session_sorts;
                        sort_kind := "session";
                        sort_cache := prov;
                        if !base = None then base := Some (perm, b);
                        (perm, b)
                    | None ->
                      (match !base with
                    | None ->
                        let perm, b, comp = full_sort ?gov pool table ~pids ~order in
                        incr full_sorts;
                        Obs.Counter.incr c_full_sorts;
                        if comp then begin
                          incr comparator_sorts;
                          Obs.Counter.incr c_comparator_sorts
                        end;
                        sort_kind := "full";
                        sort_comp := comp;
                        base := Some (perm, b);
                        (perm, b)
                    | Some (bperm, bnds) ->
                        if pids = None then begin
                          (* single global partition: a "partial" re-sort would
                             cover the whole array anyway, so sort independently
                             and keep the parallel path *)
                          incr full_sorts;
                          Obs.Counter.incr c_full_sorts;
                          let perm, _, comp = full_sort ?gov pool table ~pids ~order in
                          if comp then begin
                            incr comparator_sorts;
                            Obs.Counter.incr c_comparator_sorts
                          end;
                          sort_kind := "full(global)";
                          sort_comp := comp;
                          (perm, bnds)
                        end
                        else begin
                          incr partial_sorts;
                          Obs.Counter.incr c_partial_sorts;
                          let perm, comp =
                            partial_sort pool table ~base_perm:bperm ~boundaries:bnds ~order
                          in
                          if comp then begin
                            incr comparator_sorts;
                            Obs.Counter.incr c_comparator_sorts
                          end;
                          sort_kind := "partial";
                          sort_comp := comp;
                          (perm, bnds)
                        end)
                    in
                    (match gov with
                    | Some g -> (
                        match Mem_governor.take_last_spill g with
                        | Some (runs, bytes) ->
                            sort_spill :=
                              Printf.sprintf "(runs=%d, %s)" runs (Obs.human_bytes bytes)
                        | None -> ())
                    | None -> ());
                    (* sort-stage working set: the permutation plus the
                       partition boundary array this stage holds onto *)
                    Obs.record_bytes (fun () ->
                        8 * (2 + Array.length perm + Array.length boundaries));
                    result)
              in
              let nparts = Array.length boundaries - 1 in
              (* the session-side state of this stage: per-partition caches
                 and finished outputs (from the lookup, or registered fresh
                 on a miss) plus the per-item backend memo *)
              let sess_stage =
                match session with
                | None -> None
                | Some s -> (
                    match session_hit with
                    | Some (_, _, parts, _, algs) -> Some (parts, algs)
                    | None -> Some (Session.store s ~pb ~order ~perm ~boundaries))
              in
              let structures_cached =
                match sess_stage with
                | Some (parts, _) ->
                    Array.exists
                      (fun (p : Session.part) -> p.Session.status <> Session.Rebuilt)
                      parts
                | None -> false
              in
              (* resolve every item of the stage to a concrete backend
                 before evaluation starts: one decision (and one
                 plan.evaluator.* bump) per (stage, item), shared by all
                 partitions and morsels.  Under a session, the backend the
                 item resolved to last time has its structures cached, so
                 its build cost is sunk for the cost model. *)
              let smembers =
                List.map
                  (fun (c, outs) ->
                    ( c,
                      List.map
                        (fun ((item : Window_func.t), out) ->
                          let okey =
                            (c.spec, item.Window_func.func, item.Window_func.filter)
                          in
                          let sunk =
                            match sess_stage with
                            | Some (_, algs) when structures_cached -> (
                                match Hashtbl.find_opt algs okey with
                                | Some nm -> [ nm ]
                                | None -> [])
                            | _ -> []
                          in
                          let ((item', _) as resolved) =
                            resolve_item ~evaluator ~env_force ~sunk ~model:Cost_model.default
                              ~rows_avg:(if nparts = 0 then 0 else n / nparts)
                              ~nparts ~task_size ~fanout c.spec item
                          in
                          (match
                             ( sess_stage,
                               Evaluator_choice.of_algorithm item'.Window_func.algorithm )
                           with
                          | Some (_, algs), Some nm -> Hashtbl.replace algs okey nm
                          | _ -> ());
                          (resolved, out))
                        outs ))
                  smembers
              in
              (* one row view per (stage, partition), shared by every
                 clause and item of the stage; a fresh per-partition cache
                 keeps sharing counters identical at every domain count *)
              let eval_partition p =
                let plo = boundaries.(p) and phi = boundaries.(p + 1) in
                if phi > plo then begin
                  let rows =
                    if plo = 0 && phi = n then perm else Array.sub perm plo (phi - plo)
                  in
                  let spart =
                    match sess_stage with
                    | Some (parts, _) -> Some parts.(p)
                    | None -> None
                  in
                  let cache =
                    match spart with
                    | Some part -> part.Session.cache
                    | None -> Build_cache.create ~counters ()
                  in
                  let item_args (item : Window_func.t) ev extra () =
                    let base =
                      [ ("name", item.name); ("func", Window_func.class_name item) ]
                    in
                    let base =
                      match ev with None -> base | Some e -> base @ [ ("evaluator", e) ]
                    in
                    match extra with None -> base | Some kv -> base @ [ kv ]
                  in
                  List.iter
                    (fun (c, outs) ->
                      let spec = c.spec in
                      let compute_frame () =
                        Obs.span "frame"
                          ~args:(fun () ->
                            [ ("order", Sort_spec.to_string spec.Window_spec.order_by) ])
                          (fun () ->
                            let peers =
                              Build_cache.peers cache ~order:spec.Window_spec.order_by
                                (fun () -> Frame.peers table spec.Window_spec.order_by rows)
                            in
                            Frame.compute ~peers table ~spec ~rows)
                      in
                      let mk_ctx frame =
                        {
                          Evaluators.table;
                          pool;
                          rows;
                          frame;
                          window_order = spec.Window_spec.order_by;
                          fanout;
                          sample;
                          task_size;
                          width;
                          cache;
                          gov;
                        }
                      in
                      match spart with
                      | None ->
                          (* stateless path: identical span structure and
                             evaluation order to the historical engine *)
                          let ctx = mk_ctx (compute_frame ()) in
                          List.iter
                            (fun (((item : Window_func.t), ev), out) ->
                              Obs.span "item" ~args:(item_args item ev None) (fun () ->
                                  Evaluators.eval_item ctx item ~out))
                            outs
                      | Some part ->
                          (* session path: an untouched partition serves an
                             item straight from its cached output column —
                             no frame, no structures, no probes; anything
                             else evaluates (maintaining stale structures
                             through the cache's callbacks) and deposits
                             its output for the next query *)
                          let len = Array.length rows in
                          let frame = lazy (compute_frame ()) in
                          List.iter
                            (fun (((item : Window_func.t), ev), out) ->
                              let okey =
                                (spec, item.Window_func.func, item.Window_func.filter)
                              in
                              let hit =
                                if part.Session.status = Session.Reused then
                                  Hashtbl.find_opt part.Session.outputs okey
                                else None
                              in
                              match hit with
                              | Some vals ->
                                  Obs.span "item"
                                    ~args:(item_args item ev (Some ("cache", "reused(outputs)")))
                                    (fun () ->
                                      for r = 0 to len - 1 do
                                        out.(rows.(r)) <- vals.(r)
                                      done)
                              | None ->
                                  Obs.span "item" ~args:(item_args item ev None) (fun () ->
                                      Evaluators.eval_item (mk_ctx (Lazy.force frame)) item
                                        ~out);
                                  Hashtbl.replace part.Session.outputs okey
                                    (Array.init len (fun r -> out.(rows.(r)))))
                            outs)
                    smembers;
                  match spart with
                  | Some part -> part.Session.status <- Session.Reused
                  | None -> ()
                end
              in
              Obs.span "eval"
                ~args:(fun () ->
                  [
                    ("order", Sort_spec.to_string order);
                    ("partitions", string_of_int nparts);
                  ])
                (fun () ->
                  if Task_pool.size pool = 1 then
                    (* the sequential path: identical span structure and
                       evaluation order to the historical engine *)
                    for p = 0 to nparts - 1 do
                      eval_partition p
                    done
                  else begin
                    (* morsel-driven: small partitions fan out as pool
                       tasks (drained while later stages sort), large ones
                       run on the caller with nested parallelism live *)
                    let large = max (2 * task_size) (1 + (n / (2 * Task_pool.size pool))) in
                    let caller_parts, morsels =
                      morselize ~boundaries ~large ~morsel_rows:task_size
                    in
                    List.iter
                      (fun (mfirst, mlast) ->
                        Task_pool.submit pool eval_batch (fun () ->
                            Obs.span "eval.morsel"
                              ~args:(fun () -> [ ("order", Sort_spec.to_string order) ])
                              (fun () ->
                                for p = mfirst to mlast - 1 do
                                  eval_partition p
                                done)))
                      morsels;
                    List.iter eval_partition caller_parts
                  end))
            stages)
        pgroups;
      (* join: every outstanding partition morsel of every stage *)
      Task_pool.wait pool eval_batch);
  let table' =
    Obs.span "materialize"
      ~args:(fun () ->
        [ ("columns", string_of_int (List.length (List.concat_map snd outputs))) ])
      (fun () ->
        List.fold_left
          (fun acc (_, outs) ->
            List.fold_left
              (fun acc ((item : Window_func.t), out) ->
                let col = Column.of_values out in
                Obs.record_bytes (fun () -> Column.footprint_bytes col);
                Table.add_column acc item.name col)
              acc outs)
          table outputs)
  in
  ( table',
    {
      stages = !n_stages;
      partition_passes = !partition_passes;
      full_sorts = !full_sorts;
      partial_sorts = !partial_sorts;
      reused_sorts = !reused_sorts;
      session_sorts = !session_sorts;
      comparator_sorts = !comparator_sorts;
      encode_builds = Build_cache.encode_build_count counters - encode_builds0;
      tree_builds = Build_cache.tree_build_count counters - tree_builds0;
    } )

let run ?pool ?fanout ?sample ?task_size ?width ?evaluator ?governor ?mem_limit ?session table
    clauses =
  fst
    (run_with_stats ?pool ?fanout ?sample ?task_size ?width ?evaluator ?governor ?mem_limit
       ?session table clauses)
