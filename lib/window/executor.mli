(** The window operator: partitioning, ordering, frame computation and
    function evaluation (§2, §5).

    Partitions are established by hashing the PARTITION BY keys and sorting
    rows by (partition, ORDER BY); each partition is then preprocessed and
    probed independently. Index structures are built per partition and
    probed in fixed-size morsels (§5.5). *)

open Holistic_storage

val run :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?width:Holistic_core.Mst_width.choice ->
  ?evaluator:Evaluator_choice.name ->
  ?governor:Mem_governor.t ->
  ?mem_limit:int ->
  ?session:Session.t ->
  Table.t ->
  over:Window_spec.t ->
  Window_func.t list ->
  Table.t
(** [run table ~over items] evaluates every window function of [items] over
    the shared window specification and returns the input table extended
    with one column per item (named by the item), in the original row order.
    [fanout]/[sample] are the merge-sort-tree parameters (default 32/32,
    §6.6); [task_size] the morsel size (default 20 000, §5.5); [width]
    selects the merge-sort-tree storage width (default
    {!Holistic_core.Mst_width.Auto}, §5.1 — the narrowest width the
    partition's rank encoding fits); [evaluator] forces every [Auto] item
    onto one backend, rejecting unsupported (function, backend) pairs —
    without it the cost model picks per item (see {!Window_plan.run});
    [governor]/[mem_limit] bound the operator's working set — sorts spill
    to disk runs and MST builds stream under pressure, with bit-identical
    results (see {!Window_plan.run} and {!Mem_governor});
    [session] is a persistent {!Session} structure store consulted and
    populated when it owns [table] (see {!Window_plan.run}). *)

val order_permutation :
  ?pool:Holistic_parallel.Task_pool.t -> Table.t -> over:Window_spec.t -> int array * int array
(** The sorted row permutation and the partition boundary offsets
    (boundaries has one extra trailing entry equal to the row count).
    Exposed for the profiling harness. *)
