open Holistic_storage
module Obs = Holistic_obs.Obs

let schema_version = "holiwin-qlog/1"

type t = {
  seq : int;
  unix_ms : int;
  sql : string;
  wall_ns : int;
  rows_in : int;
  rows_out : int;
  plan : Window_plan.stats option;
  structure_bytes : int;
  scratch_bytes : int;
  spill_runs : int;
  spill_bytes : int;
  cache_hits : int;
  cache_misses : int;
  cache_maintained : int;
  cache_rebuilt : int;
  evaluators : (string * int) list;
  alloc_w : int;
  promoted_w : int;
  majors : int;
  session_epoch : int option;
}

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

let query_hist =
  Obs.Histogram.make ~help:"SQL query wall times since process start (ns)" "sql.query_ns"

(* The serving-SLO primitive: p50/p90/p99 over the trailing 1024 queries,
   16 ring slices of 64 queries each, expired wholesale as the ring wraps. *)
let query_window =
  Obs.Windowed_histogram.make
    ~help:"SQL query wall times over the trailing 1024 queries (ns)"
    ~slots:16
    ~window:(Obs.Windowed_histogram.Last_events 1024)
    "sql.query_window_ns"

let note_latency_always ns =
  Obs.Histogram.add_always query_hist ns;
  Obs.Windowed_histogram.add_always query_window ns

let note_latency ns = if Obs.enabled () then note_latency_always ns

let evaluator_prefix = "plan.evaluator."

let delta snap0 snap1 name =
  let v l = match List.assoc_opt name l with Some v -> v | None -> 0 in
  v snap1 - v snap0

let measure ?(sql = "") ?session_epoch ~rows_in f =
  let was_enabled = Obs.enabled () in
  if not was_enabled then Obs.enable ();
  let before = Obs.Counter.snapshot () in
  let g0 = Gc.quick_stat () in
  let m0 = Gc.minor_words () in
  let t0 = Obs.now_ns () in
  let finish () =
    if not was_enabled then begin
      Obs.disable ();
      (* the spans this query recorded are nobody's capture — drop them
         without touching the cumulative counter/histogram registries *)
      Obs.clear_spans ()
    end
  in
  match f () with
  | exception e ->
      finish ();
      raise e
  | result, plan ->
      let wall_ns = Obs.now_ns () - t0 in
      let minor = Gc.minor_words () -. m0 in
      let g1 = Gc.quick_stat () in
      let after = Obs.Counter.snapshot () in
      finish ();
      note_latency_always wall_ns;
      let d = delta before after in
      let major = g1.Gc.major_words -. g0.Gc.major_words in
      let promoted = g1.Gc.promoted_words -. g0.Gc.promoted_words in
      let evaluators =
        List.filter_map
          (fun (n, v1) ->
            if
              String.length n > String.length evaluator_prefix
              && String.sub n 0 (String.length evaluator_prefix) = evaluator_prefix
            then
              let dv = v1 - (match List.assoc_opt n before with Some v -> v | None -> 0) in
              if dv > 0 then
                Some (String.sub n (String.length evaluator_prefix)
                        (String.length n - String.length evaluator_prefix), dv)
              else None
            else None)
          after
      in
      let r =
        {
          seq = 0;
          unix_ms = int_of_float (Unix.gettimeofday () *. 1000.);
          sql;
          wall_ns;
          rows_in;
          rows_out = Table.nrows result;
          plan;
          structure_bytes = d "mem.structure_bytes";
          scratch_bytes = d "sort.scratch_bytes";
          spill_runs = d "sort.spill_runs";
          spill_bytes = d "sort.spill_bytes";
          cache_hits = d "cache.hit";
          cache_misses = d "cache.miss";
          cache_maintained = d "cache.maintained";
          cache_rebuilt = d "cache.rebuilt";
          evaluators;
          alloc_w = int_of_float (minor +. major -. promoted);
          promoted_w = int_of_float promoted;
          majors = g1.Gc.major_collections - g0.Gc.major_collections;
          session_epoch;
        }
      in
      (result, r)

(* ------------------------------------------------------------------ *)
(* holiwin-qlog/1 serialisation                                        *)
(* ------------------------------------------------------------------ *)

let esc = Obs.json_escape

let to_json_line r =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "{\"schema\":\"%s\"" schema_version);
  Buffer.add_string b (Printf.sprintf ",\"seq\":%d,\"unix_ms\":%d" r.seq r.unix_ms);
  Buffer.add_string b (Printf.sprintf ",\"sql\":\"%s\"" (esc r.sql));
  Buffer.add_string b
    (Printf.sprintf ",\"wall_ns\":%d,\"rows_in\":%d,\"rows_out\":%d" r.wall_ns r.rows_in
       r.rows_out);
  (match r.plan with
  | None -> Buffer.add_string b ",\"plan\":null"
  | Some (p : Window_plan.stats) ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"plan\":{\"stages\":%d,\"partition_passes\":%d,\"full_sorts\":%d,\"partial_sorts\":%d,\"reused_sorts\":%d,\"session_sorts\":%d,\"comparator_sorts\":%d,\"encode_builds\":%d,\"tree_builds\":%d}"
           p.Window_plan.stages p.Window_plan.partition_passes p.Window_plan.full_sorts
           p.Window_plan.partial_sorts p.Window_plan.reused_sorts p.Window_plan.session_sorts
           p.Window_plan.comparator_sorts p.Window_plan.encode_builds p.Window_plan.tree_builds));
  Buffer.add_string b
    (Printf.sprintf ",\"bytes\":{\"structure\":%d,\"scratch\":%d,\"spill\":%d}"
       r.structure_bytes r.scratch_bytes r.spill_bytes);
  Buffer.add_string b (Printf.sprintf ",\"spill_runs\":%d" r.spill_runs);
  Buffer.add_string b
    (Printf.sprintf ",\"cache\":{\"hits\":%d,\"misses\":%d,\"maintained\":%d,\"rebuilt\":%d}"
       r.cache_hits r.cache_misses r.cache_maintained r.cache_rebuilt);
  Buffer.add_string b ",\"evaluators\":{";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (esc n) v))
    r.evaluators;
  Buffer.add_char b '}';
  Buffer.add_string b
    (Printf.sprintf ",\"gc\":{\"alloc_w\":%d,\"promoted_w\":%d,\"majors\":%d}" r.alloc_w
       r.promoted_w r.majors);
  (match r.session_epoch with
  | None -> Buffer.add_string b ",\"session_epoch\":null"
  | Some e -> Buffer.add_string b (Printf.sprintf ",\"session_epoch\":%d" e));
  Buffer.add_char b '}';
  Buffer.contents b

(* --- a tiny self-contained JSON reader (same discipline as
   bench/report.ml: no dependencies, fail loudly, accepts exactly what
   the writer above and compatible producers emit) ------------------- *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "qlog json: %s at offset %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some '/' -> Buffer.add_char b '/'
          | Some 'u' ->
              advance ();
              if !pos + 3 >= n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 3;
              let code = int_of_string ("0x" ^ hex) in
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "bad escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> J_int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> J_float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_list []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_list (elements [])
        end
    | Some '"' -> J_string (parse_string ())
    | Some 't' -> parse_literal "true" (J_bool true)
    | Some 'f' -> parse_literal "false" (J_bool false)
    | Some 'n' -> parse_literal "null" J_null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function J_obj kvs -> List.assoc_opt k kvs | _ -> None

let get_int ctx = function
  | Some (J_int v) -> v
  | _ -> failwith (Printf.sprintf "qlog: missing or non-int %s" ctx)

let get_string ctx = function
  | Some (J_string v) -> v
  | _ -> failwith (Printf.sprintf "qlog: missing or non-string %s" ctx)

let of_json_line line =
  let j = parse_json line in
  let schema = get_string "schema" (member "schema" j) in
  if schema <> schema_version then
    failwith (Printf.sprintf "qlog: unsupported schema %S (want %S)" schema schema_version);
  let plan =
    match member "plan" j with
    | Some J_null | None -> None
    | Some (J_obj _ as p) ->
        let f name = get_int ("plan." ^ name) (member name p) in
        Some
          {
            Window_plan.stages = f "stages";
            partition_passes = f "partition_passes";
            full_sorts = f "full_sorts";
            partial_sorts = f "partial_sorts";
            reused_sorts = f "reused_sorts";
            session_sorts = f "session_sorts";
            comparator_sorts = f "comparator_sorts";
            encode_builds = f "encode_builds";
            tree_builds = f "tree_builds";
          }
    | Some _ -> failwith "qlog: plan is not an object"
  in
  let bytes = match member "bytes" j with Some o -> o | None -> failwith "qlog: no bytes" in
  let cache = match member "cache" j with Some o -> o | None -> failwith "qlog: no cache" in
  let gc = match member "gc" j with Some o -> o | None -> failwith "qlog: no gc" in
  let evaluators =
    match member "evaluators" j with
    | Some (J_obj kvs) ->
        List.map (fun (k, v) -> (k, get_int ("evaluators." ^ k) (Some v))) kvs
    | _ -> failwith "qlog: no evaluators"
  in
  {
    seq = get_int "seq" (member "seq" j);
    unix_ms = get_int "unix_ms" (member "unix_ms" j);
    sql = get_string "sql" (member "sql" j);
    wall_ns = get_int "wall_ns" (member "wall_ns" j);
    rows_in = get_int "rows_in" (member "rows_in" j);
    rows_out = get_int "rows_out" (member "rows_out" j);
    plan;
    structure_bytes = get_int "bytes.structure" (member "structure" bytes);
    scratch_bytes = get_int "bytes.scratch" (member "scratch" bytes);
    spill_runs = get_int "spill_runs" (member "spill_runs" j);
    spill_bytes = get_int "bytes.spill" (member "spill" bytes);
    cache_hits = get_int "cache.hits" (member "hits" cache);
    cache_misses = get_int "cache.misses" (member "misses" cache);
    cache_maintained = get_int "cache.maintained" (member "maintained" cache);
    cache_rebuilt = get_int "cache.rebuilt" (member "rebuilt" cache);
    evaluators;
    alloc_w = get_int "gc.alloc_w" (member "alloc_w" gc);
    promoted_w = get_int "gc.promoted_w" (member "promoted_w" gc);
    majors = get_int "gc.majors" (member "majors" gc);
    session_epoch =
      (match member "session_epoch" j with
      | Some (J_int e) -> Some e
      | Some J_null | None -> None
      | Some _ -> failwith "qlog: session_epoch is not an int");
  }

(* ------------------------------------------------------------------ *)
(* The rotating sink                                                   *)
(* ------------------------------------------------------------------ *)

module Log = struct
  type sink = {
    s_path : string;
    max_bytes : int;
    mutable oc : out_channel;
    mutable size : int;
    mutable next_seq : int;
    mutable rotations : int;
    mutable closed : bool;
  }

  let open_ ?(max_bytes = 16 * 1024 * 1024) path =
    let max_bytes = max 4096 max_bytes in
    let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    { s_path = path; max_bytes; oc; size; next_seq = 0; rotations = 0; closed = false }

  let rotate s =
    close_out s.oc;
    let old = s.s_path ^ ".1" in
    if Sys.file_exists old then Sys.remove old;
    Sys.rename s.s_path old;
    s.oc <- open_out_gen [ Open_append; Open_creat ] 0o644 s.s_path;
    s.size <- 0;
    s.rotations <- s.rotations + 1

  let append s r =
    if s.closed then invalid_arg "Query_stats.Log.append: sink is closed";
    let line = to_json_line { r with seq = s.next_seq } ^ "\n" in
    s.next_seq <- s.next_seq + 1;
    if s.size > 0 && s.size + String.length line > s.max_bytes then rotate s;
    output_string s.oc line;
    s.size <- s.size + String.length line;
    flush s.oc

  let path s = s.s_path
  let rotations s = s.rotations

  let close s =
    if not s.closed then begin
      s.closed <- true;
      close_out s.oc
    end

  let of_env () =
    match Sys.getenv_opt "HOLIWIN_QUERY_LOG" with
    | None | Some "" -> None
    | Some path ->
        let max_bytes =
          match Sys.getenv_opt "HOLIWIN_QUERY_LOG_BYTES" with
          | Some s -> int_of_string_opt (String.trim s)
          | None -> None
        in
        Some (open_ ?max_bytes path)

  let load path =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | "" -> go acc
      | line -> go (of_json_line line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
end
