open Holistic_storage
open Window_spec

type t = {
  np : int;
  start_ : int array;
  end_ : int array;
  peer_start : int array;
  peer_end : int array;
  exclusion : exclusion;
}

let size t = t.np
let start_ t r = t.start_.(r)
let end_ t r = t.end_.(r)
let peer_start t r = t.peer_start.(r)
let peer_end t r = t.peer_end.(r)
let exclusion t = t.exclusion

(* first index in [lo, hi) where [pred] holds; pred must be monotone
   (all-false prefix, all-true suffix) *)
let bs_first pred ~lo ~hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pred mid then hi := mid else lo := mid + 1
  done;
  !lo

let peers table order_by rows =
  let np = Array.length rows in
  let peer_start = Array.make np 0 and peer_end = Array.make np 0 in
  if order_by = [] then begin
    Array.fill peer_end 0 np np;
    (peer_start, peer_end)
  end
  else begin
    let cmp = Sort_spec.comparator table order_by in
    let gstart = ref 0 in
    for r = 1 to np do
      if r = np || cmp rows.(r - 1) rows.(r) <> 0 then begin
        for i = !gstart to r - 1 do
          peer_start.(i) <- !gstart;
          peer_end.(i) <- r
        done;
        gstart := r
      end
    done;
    (peer_start, peer_end)
  end

let eval_offset table expr row =
  match Expr.eval table expr row with
  | Value.Int k when k >= 0 -> k
  | Value.Int _ -> invalid_arg "Frame: negative frame offset"
  | _ -> invalid_arg "Frame: ROWS/GROUPS offsets must be non-negative integers"

let compute ?peers:precomputed table ~spec ~rows =
  let np = Array.length rows in
  let peer_start, peer_end =
    match precomputed with Some p -> p | None -> peers table spec.order_by rows
  in
  let frame =
    match spec.frame with
    | Some f -> f
    | None ->
        if spec.order_by = [] then Window_spec.whole_partition
        else range_between Unbounded_preceding Current_row
  in
  let start_ = Array.make np 0 and end_ = Array.make np 0 in
  (match frame.mode with
  | Rows ->
      for r = 0 to np - 1 do
        let row = rows.(r) in
        start_.(r) <-
          (match frame.start_bound with
          | Unbounded_preceding -> 0
          | Preceding e -> r - eval_offset table e row
          | Current_row -> r
          | Following e -> r + eval_offset table e row
          | Unbounded_following -> np);
        end_.(r) <-
          (match frame.end_bound with
          | Unbounded_preceding -> 0
          | Preceding e -> r - eval_offset table e row + 1
          | Current_row -> r + 1
          | Following e -> r + eval_offset table e row + 1
          | Unbounded_following -> np)
      done
  | Groups ->
      (* group index per row plus group boundary tables *)
      let gidx = Array.make np 0 in
      let code = ref 0 in
      for r = 1 to np - 1 do
        if peer_start.(r) = r then incr code;
        gidx.(r) <- !code
      done;
      let ngroups = if np = 0 then 0 else !code + 1 in
      let gstarts = Array.make (max ngroups 1) 0 and gends = Array.make (max ngroups 1) 0 in
      for r = 0 to np - 1 do
        gstarts.(gidx.(r)) <- peer_start.(r);
        gends.(gidx.(r)) <- peer_end.(r)
      done;
      for r = 0 to np - 1 do
        let row = rows.(r) in
        let g = gidx.(r) in
        start_.(r) <-
          (match frame.start_bound with
          | Unbounded_preceding -> 0
          | Preceding e ->
              let k = eval_offset table e row in
              if g - k < 0 then 0 else gstarts.(g - k)
          | Current_row -> peer_start.(r)
          | Following e ->
              let k = eval_offset table e row in
              if g + k >= ngroups then np else gstarts.(g + k)
          | Unbounded_following -> np);
        end_.(r) <-
          (match frame.end_bound with
          | Unbounded_preceding -> 0
          | Preceding e ->
              let k = eval_offset table e row in
              if g - k < 0 then 0 else gends.(g - k)
          | Current_row -> peer_end.(r)
          | Following e ->
              let k = eval_offset table e row in
              if g + k >= ngroups then np else gends.(g + k)
          | Unbounded_following -> np)
      done
  | Range ->
      let needs_key =
        match frame.start_bound, frame.end_bound with
        | (Preceding _ | Following _), _ | _, (Preceding _ | Following _) -> true
        | _ -> false
      in
      let key =
        match spec.order_by with
        | [ k ] -> Some k
        | _ -> None
      in
      if needs_key && key = None then
        invalid_arg "Frame: RANGE with offsets requires exactly one ORDER BY key";
      (* Key values in partition order; NULL rows occupy a contiguous region
         at one end (by the sort), and offset bounds give them their null
         peer group. *)
      let vals, nulls_first, desc =
        match key with
        | None -> ([||], false, false)
        | Some k ->
            let f = Expr.compile table k.Sort_spec.expr in
            let vals = Array.init np (fun r -> f rows.(r)) in
            let nulls_last =
              match k.Sort_spec.nulls, k.Sort_spec.direction with
              | Sort_spec.Nulls_last, _ -> true
              | Sort_spec.Nulls_first, _ -> false
              | Sort_spec.Nulls_default, Sort_spec.Asc -> true
              | Sort_spec.Nulls_default, Sort_spec.Desc -> false
            in
            (vals, not nulls_last, k.Sort_spec.direction = Sort_spec.Desc)
      in
      (* non-null region [nn_lo, nn_hi) *)
      let nn_lo, nn_hi =
        if vals = [||] then (0, np)
        else begin
          let nnulls = Array.fold_left (fun acc v -> if Value.is_null v then acc + 1 else acc) 0 vals in
          if nulls_first then (nnulls, np) else (0, np - nnulls)
        end
      in
      let cmpv a b = Value.compare_sql ~nulls_last:true a b in
      (* first non-null position whose key is >= target in frame order
         (i.e. >= for asc, <= for desc) *)
      let first_geq target =
        bs_first
          (fun p -> if desc then cmpv vals.(p) target <= 0 else cmpv vals.(p) target >= 0)
          ~lo:nn_lo ~hi:nn_hi
      in
      (* one past the last non-null position whose key is <= target in frame
         order *)
      let past_leq target =
        bs_first
          (fun p -> if desc then cmpv vals.(p) target < 0 else cmpv vals.(p) target > 0)
          ~lo:nn_lo ~hi:nn_hi
      in
      let delta e row =
        let v = Expr.eval table e row in
        if Value.is_null v then invalid_arg "Frame: NULL RANGE offset" else v
      in
      (* target value for "offset before / after the current value" in frame
         direction: preceding moves against the direction. *)
      let shifted v d ~towards_preceding =
        let back = if desc then not towards_preceding else towards_preceding in
        if back then Value.sub v d else Value.add v d
      in
      for r = 0 to np - 1 do
        let row = rows.(r) in
        let v = if vals = [||] then Value.Null else vals.(r) in
        let is_null = Value.is_null v in
        start_.(r) <-
          (match frame.start_bound with
          | Unbounded_preceding -> 0
          | Current_row -> peer_start.(r)
          | Preceding e ->
              if is_null then peer_start.(r)
              else first_geq (shifted v (delta e row) ~towards_preceding:true)
          | Following e ->
              if is_null then peer_start.(r)
              else first_geq (shifted v (delta e row) ~towards_preceding:false)
          | Unbounded_following -> np);
        end_.(r) <-
          (match frame.end_bound with
          | Unbounded_preceding -> 0
          | Current_row -> peer_end.(r)
          | Preceding e ->
              if is_null then peer_end.(r)
              else past_leq (shifted v (delta e row) ~towards_preceding:true)
          | Following e ->
              if is_null then peer_end.(r)
              else past_leq (shifted v (delta e row) ~towards_preceding:false)
          | Unbounded_following -> np)
      done);
  (* clamp and normalise *)
  for r = 0 to np - 1 do
    start_.(r) <- max 0 (min start_.(r) np);
    end_.(r) <- max 0 (min end_.(r) np);
    if end_.(r) < start_.(r) then end_.(r) <- start_.(r)
  done;
  { np; start_; end_; peer_start; peer_end; exclusion = frame.exclusion }

let ranges t r =
  let s = t.start_.(r) and e = t.end_.(r) in
  if s >= e then [||]
  else begin
    (* holes carved out of [s, e) *)
    let holes =
      match t.exclusion with
      | Exclude_no_others -> []
      | Exclude_current_row -> [ (r, r + 1) ]
      | Exclude_group -> [ (t.peer_start.(r), t.peer_end.(r)) ]
      | Exclude_ties -> [ (t.peer_start.(r), r); (r + 1, t.peer_end.(r)) ]
    in
    let holes =
      List.filter_map
        (fun (a, b) ->
          let a = max a s and b = min b e in
          if a < b then Some (a, b) else None)
        holes
    in
    let pieces = ref [] in
    let pos = ref s in
    List.iter
      (fun (a, b) ->
        if a > !pos then pieces := (!pos, a) :: !pieces;
        pos := max !pos b)
      holes;
    if !pos < e then pieces := (!pos, e) :: !pieces;
    Array.of_list (List.rev !pieces)
  end

let covered t r = Array.fold_left (fun acc (a, b) -> acc + (b - a)) 0 (ranges t r)
