(** Footprint-driven memory governor for out-of-core execution.

    A governor tracks the engine's accounted live bytes against an
    optional budget and decides, per stage, whether the stage runs in
    memory (the exact historical path) or spills to disk. With no
    governor — or a budget that the working set fits under — every
    decision is [Sort_in_memory] and execution, spans and goldens are
    byte-identical to the in-memory engine.

    Budgets govern the {e accounted} working set (key words, sort
    transients, structure bytes), not the process RSS. *)

exception Budget_too_small of string
(** The budget is below the minimum working set of a required stage.
    Raised instead of thrashing; the message says what did not fit. *)

type policy =
  | Auto  (** spill only when the accounted working set exceeds the budget *)
  | Always_spill
      (** force every spillable stage down the spill path regardless of
          footprint — the differential-testing mode behind
          [HOLIWIN_MEM_LIMIT=spill] *)

type t

val create : ?budget:int -> ?policy:policy -> ?dir:string -> unit -> t
(** [budget] is in bytes; omitting it with [Auto] yields a governor that
    never spills (but still tracks peaks). [dir] is the parent directory
    for spill files (default: the system temp dir). *)

val policy : t -> policy
val budget : t -> int option

(** {2 Footprint accounting} *)

val charge : t -> int -> unit
val release : t -> int -> unit

val live : t -> int
(** Currently accounted bytes. *)

val peak : t -> int
(** High-water mark of {!live}. *)

(** {2 Stage decisions} *)

type sort_plan =
  | Sort_in_memory
  | Sort_spill of { run_rows : int; read_entries : int }
      (** form sorted runs of [run_rows] rows, merge them back with
          [read_entries]-entry read buffers per run *)

val plan_sort : t -> n:int -> nwords:int -> multi_run:bool -> sort_plan
(** Decides how to sort [n] rows of [nwords] key words, assuming the
    words themselves are already charged. [multi_run] tells the governor
    whether the in-memory path would allocate merge scratch (2 extra
    arrays of [n]). Raises {!Budget_too_small} when even the spill
    path's minimum working set (run formation chunks, then output
    permutation + per-run read buffers) exceeds the budget. *)

val stream_builds : t -> bytes:int -> bool
(** Whether a structure build that would materialise [bytes] of operand
    array should stream its leaves instead (chunked
    [Mst_*.create_stream]). True under [Always_spill], or when charging
    [bytes] would exceed the budget. *)

val pick_spills : candidates:(string * int) list -> need:int -> string list
(** Pure eviction policy: given [(name, bytes)] candidates, returns the
    names to spill, largest first, until at least [need] bytes are
    freed (or the candidates run out). *)

(** {2 Spill files} *)

val spill_dir : t -> string
(** The governor's private temp directory, created on first use. *)

val cleanup : t -> unit
(** Removes the spill directory and anything left in it. Never raises;
    safe to call repeatedly. *)

(** {2 Spill provenance} *)

val note_spill : t -> runs:int -> bytes:int -> unit
val take_last_spill : t -> (int * int) option
(** [(runs, bytes)] of the most recent spill since the last take — the
    hook EXPLAIN ANALYZE uses to tag the owning span. *)

val totals : t -> int * int
(** Cumulative [(runs, bytes)] spilled through this governor. *)

(** {2 Configuration} *)

val parse_limit : string -> int option * policy
(** Parses a [--mem-limit] / [HOLIWIN_MEM_LIMIT] value: ["spill"]
    (force-spill everything), a byte count, or a count with a [K] / [M] /
    [G] suffix, e.g. ["64K"], ["512M"], ["1G"]. Raises [Invalid_argument]
    with a usage hint otherwise. *)

val of_env : unit -> t option
(** A governor configured from [HOLIWIN_MEM_LIMIT], if set. *)
