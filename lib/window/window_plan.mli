(** The multi-clause window pipeline: one plan for {e all} OVER clauses of a
    query.

    Clauses are grouped into a DAG of stages:

    + {b Partition pass} — every clause with structurally equal PARTITION BY
      expressions shares one partition-key computation.
    + {b Sort stages} — within a partition group, the requested ORDER BYs
      are reduced to their prefix-maximal set. A clause whose order is a
      prefix of a stage order reuses the stage's permutation and boundaries
      outright (full-sort sharing); a stage after the first re-sorts only
      within the inherited partition boundaries (partial-sort sharing, Cao
      et al., arXiv:1208.0086), never comparing partition keys again.
    + {b Per-partition evaluation} — all frames and items of a stage are
      evaluated over one sorted partition, sharing a {!Build_cache} so rank
      encodings and index trees are built once per structural key.

    Stages and clauses are evaluated in first-appearance order, so runs are
    reproducible and error attribution is stable. Outputs land at original
    row indices, so clause evaluation order never affects results — only
    which clause's error surfaces first. *)

open Holistic_storage

type clause = { spec : Window_spec.t; items : Window_func.t list }

type stage = { order : Sort_spec.t; members : clause list }
(** One sort stage: the (prefix-maximal) order it sorts by and the clauses
    it evaluates, in first-appearance order. *)

type group = { partition_by : Expr.t list; stages : stage list }

val schedule : clause list -> group list
(** The pure scheduling policy of the plan: partition groups by structural
    PARTITION BY equality in first-appearance order, each holding its
    prefix-maximal sort stages with every clause assigned to the first
    stage whose order covers its own. Exposed because stage assignment is
    observable (a clause ordered by a prefix of another's is evaluated
    under the longer stage sort, which ROWS frames see under ties), so
    reference implementations — e.g. the differential fuzz oracle — must
    reproduce it exactly. *)

type stats = {
  stages : int;  (** sort stages across all partition groups *)
  partition_passes : int;  (** partition-key computations (= partition groups) *)
  full_sorts : int;  (** from-scratch (partition, order) sorts *)
  partial_sorts : int;  (** within-boundary re-sorts *)
  reused_sorts : int;  (** clauses served by an existing stage sort *)
  session_sorts : int;
      (** stages served by a {!Session} store entry — no sort ran at all *)
  comparator_sorts : int;
      (** sorts (full or partial) that ran on the closure-comparator path
          because the key codec produced no words — should be zero for any
          spec over int/date/float/string/bool keys *)
  encode_builds : int;  (** {!Holistic_core.Rank_encode} constructions *)
  tree_builds : int;  (** index-structure constructions (MST and friends) *)
}

val run :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?width:Holistic_core.Mst_width.choice ->
  ?evaluator:Evaluator_choice.name ->
  ?governor:Mem_governor.t ->
  ?mem_limit:int ->
  ?session:Session.t ->
  Table.t ->
  clause list ->
  Table.t
(** [run table clauses] evaluates every item of every clause and returns the
    input table extended with one column per item (named by the item), in
    the original row order. Parameters as in {!Executor.run}.

    Items whose algorithm is [Auto] are resolved to a concrete backend per
    (stage, item) through {!Cost_model.choose}; [?evaluator] forces the
    backend instead and rejects unsupported (function, backend) pairs with
    [Invalid_argument].  The [HOLIWIN_EVALUATOR] environment variable is a
    lenient version of the same knob: it forces the backend on eligible
    items only and leaves the rest to the cost model.  Explicit item
    algorithms always win and keep their historical semantics.  Every
    resolution bumps the [plan.evaluator.<name>] counter once and is
    surfaced in EXPLAIN ANALYZE ([choose] spans with the rejected
    candidates' predicted costs, and an [evaluator] arg on item spans).

    [?governor] / [?mem_limit] bound the plan's working set: stage sorts
    spill to disk runs and large MST builds stream their leaves whenever
    {!Mem_governor} says the in-memory path would overrun the budget.
    [?mem_limit] (bytes) creates a fresh governor owned by this run (its
    spill directory is cleaned up on exit, success or failure); an explicit
    [?governor] wins over it and stays owned by the caller.  When neither
    is given, [HOLIWIN_MEM_LIMIT] is consulted ({!Mem_governor.of_env}).
    Results are bit-identical to the unlimited run; spills are surfaced as
    a [spilled=(runs=n, bytes)] arg on the sort span and the
    [sort.spill_runs] / [sort.spill_bytes] counters.
    @raise Mem_governor.Budget_too_small
      when the budget cannot cover even the minimum spill working set.

    [?session] plugs in a persistent structure store over exactly this
    table (any other table — e.g. a WHERE-filtered copy — runs stateless):
    stage sorts, per-partition caches and finished item outputs are read
    from and written back to the store, and the cost model treats cached
    structures' build cost as sunk.  Sort and item spans gain a [cache]
    arg carrying the provenance ([reused(epoch=k)] / [maintained(±n
    rows)] / [rebuilt(reason)] / [reused(outputs)]). *)

val run_with_stats :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?width:Holistic_core.Mst_width.choice ->
  ?evaluator:Evaluator_choice.name ->
  ?governor:Mem_governor.t ->
  ?mem_limit:int ->
  ?session:Session.t ->
  Table.t ->
  clause list ->
  Table.t * stats
(** {!run} plus sharing statistics for tests and benchmarks.  The stats
    (and the cost-model decisions) are deterministic functions of the
    inputs — never of the pool's domain count. *)

val order_permutation :
  ?pool:Holistic_parallel.Task_pool.t -> Table.t -> over:Window_spec.t -> int array * int array
(** The sorted row permutation and partition boundary offsets for one spec
    (boundaries has one extra trailing entry equal to the row count). *)
