type t = { prefix : int array; positions : int array; identity : bool }

let create ~np ~qualifies =
  let prefix = Array.make (np + 1) 0 in
  let count = ref 0 in
  for r = 0 to np - 1 do
    prefix.(r) <- !count;
    if qualifies r then incr count
  done;
  prefix.(np) <- !count;
  let positions = Array.make !count 0 in
  let j = ref 0 in
  for r = 0 to np - 1 do
    if prefix.(r + 1) > prefix.(r) then begin
      positions.(!j) <- r;
      incr j
    end
  done;
  { prefix; positions; identity = !count = np }

let all np =
  {
    prefix = Array.init (np + 1) (fun i -> i);
    positions = Array.init np (fun i -> i);
    identity = true;
  }

let footprint_bytes t =
  8 * (3 + 1 + Array.length t.prefix + 1 + Array.length t.positions)

let filtered_count t = Array.length t.positions
let count_before t r = t.prefix.(r)
let qualifies t r = t.prefix.(r + 1) > t.prefix.(r)
let position t i = t.positions.(i)

let map_range t (lo, hi) = if t.identity then (lo, hi) else (t.prefix.(lo), t.prefix.(hi))

let map_ranges t ranges =
  if t.identity then ranges
  else begin
    let mapped = Array.map (map_range t) ranges in
    if Array.for_all (fun (lo, hi) -> lo < hi) mapped then mapped
    else Array.of_list (List.filter (fun (lo, hi) -> lo < hi) (Array.to_list mapped))
  end
