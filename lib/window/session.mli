(** Persistent structure store: a table session that carries sorted
    permutations, partition boundaries, per-partition {!Build_cache}s and
    finished item outputs {e across} queries, maintaining them under
    incremental appends and bulk evictions instead of rebuilding.

    The paper's query phase builds each structure once and probes it many
    times; {!Build_cache} extends that guarantee across the items of one
    query, and a session extends it across queries: a stage is keyed on
    its (PARTITION BY, ORDER BY) pair — the same structural keys the plan
    groups by — and its state survives until a mutation invalidates it.

    Mutations maintain rather than invalidate wherever the result is
    {e bit-identical} to a from-scratch rebuild:

    - {b appends} merge the sorted new rows into the existing permutation
      as a second run (the parallel sort's own OVC loser-tree merge);
      partitions whose new rows all sort after their old rows keep their
      caches, marked stale for the accessors' incremental [maintain]
      callbacks (rank-encode extension, MST run-stacking); out-of-order
      appends invalidate exactly the partitions they interleave into;
    - {b evictions} filter the permutation and renumber the survivors —
      no re-sort at all — keeping every untouched partition's caches and
      cached outputs.

    Sessions are single-threaded between queries: mutations must not
    overlap a running {!Window_plan.run}. *)

open Holistic_storage
module Task_pool = Holistic_parallel.Task_pool

(** {2 Shared sort primitives}

    The plan's partition-key computation and full sort live here, below
    {!Window_plan}, because maintenance must reproduce them bit for bit;
    the plan aliases them. *)

val partition_ids : Task_pool.t -> Table.t -> Expr.t list -> int array option
(** Dense integer partition keys for the PARTITION BY expressions: equal
    iff every expression agrees ([None] for an empty list — one global
    partition). *)

val boundaries_of_key0 : key0:int array -> divisor:int -> int -> int array
(** Partition boundary offsets read off the sorted leading key word (the
    partition component is [word / divisor]). *)

val full_sort :
  ?gov:Mem_governor.t ->
  Task_pool.t ->
  Table.t ->
  pids:int array option ->
  order:Sort_spec.t ->
  int array * int array * bool
(** [(perm, boundaries, comparator_path)] — the plan's from-scratch
    (partition, order) sort through the key codec. With a governor the
    encoded key words and the chosen path's transients are charged
    against its budget, and the sort runs out of core
    ({!Parallel_sort.sort_encoded_spill}, partition boundaries detected
    on the merge stream) whenever {!Mem_governor.plan_sort} says so;
    without one the historical in-memory path runs unchanged. *)

(** {2 The store} *)

type status =
  | Reused  (** slice untouched since last query: outputs and caches valid *)
  | Extended of int
      (** in-order append: first [k] rows unchanged, caches stale but
          incrementally maintainable *)
  | Rebuilt  (** fresh or invalidated: nothing to reuse *)

type okey = Window_spec.t * Window_func.func * Expr.t option
(** Structural key of one item's finished output within a stage
    partition: the clause spec, the function and the FILTER clause. *)

type part = {
  cache : Build_cache.t;
  outputs : (okey, Value.t array) Hashtbl.t;  (** values in slice order *)
  mutable status : status;
}

type t

val create : ?pool:Task_pool.t -> Table.t -> t
(** A session over [table]. [pool] (default {!Task_pool.default}) runs
    maintenance-time sorts and partition-key passes. *)

val table : t -> Table.t
(** The session's current table — pass exactly this to the plan. *)

val epoch : t -> int
(** Mutations applied so far. *)

val counters : t -> Build_cache.counters
(** Session-lifetime build/maintenance totals (the plan reports per-query
    deltas against these). *)

val pids_for : t -> pb:Expr.t list -> compute:(unit -> int array option) -> int array option
(** Cached partition ids for one PARTITION BY list, computing and
    remembering them on first request; mutations refresh every cached
    array on the new table. *)

val lookup :
  t ->
  pb:Expr.t list ->
  order:Sort_spec.t ->
  (int array
  * int array
  * part array
  * string
  * (okey, Evaluator_choice.name) Hashtbl.t)
  option
(** The stored stage for [(pb, order)], if any: permutation, boundaries,
    per-partition state, a provenance tag for the stage's sort span
    ([maintained(+n rows)] / [maintained(-n rows)] / [rebuilt(reason)]
    right after a mutation, [reused(epoch=k)] thereafter) and the
    per-item backend memo from the previous query (those structures are
    cached, so the cost model treats their build cost as sunk). *)

val store :
  t ->
  pb:Expr.t list ->
  order:Sort_spec.t ->
  perm:int array ->
  boundaries:int array ->
  part array * (okey, Evaluator_choice.name) Hashtbl.t
(** Register a freshly computed stage and return its (empty) part states
    for the evaluation that follows. *)

val append_rows : t -> Table.t -> unit
(** Append [delta]'s rows (same column names) below the session table and
    incrementally maintain every stored stage.
    @raise Invalid_argument on column mismatch, like {!Table.append}. *)

val evict_where : t -> (int -> bool) -> unit
(** Evict every row whose {e current} row id satisfies the predicate. *)

val evict_prefix : t -> int -> unit
(** Evict the first [k] rows (clamped to the table size). *)

val footprint_bytes : t -> int
(** Approximate bytes held by the store: permutations, boundaries, cached
    structures and cached outputs. *)

(** {2 Introspection}

    What the store is holding and how much maintenance has been saving,
    for [holiwin session stats] and the [session.*] gauges.  [create]
    registers gauges ([session.rows], [session.bytes], [session.epoch],
    [session.keys], [session.parts_reused]/[_extended]/[_rebuilt]) whose
    callbacks follow the most recently created session. *)

type key_stats = {
  partition_by : string;  (** rendered PARTITION BY list, [""] when none *)
  order_by : string;
  parts : int;
  key_bytes : int;  (** this stage's share of {!footprint_bytes} *)
  cur_reused : int;  (** partitions currently in each status *)
  cur_extended : int;
  cur_rebuilt : int;
}

type stats = {
  s_epoch : int;
  s_rows : int;
  s_bytes : int;  (** = {!footprint_bytes} *)
  reused : int;
      (** lifetime tallies: how mutations (and first builds) classified
          stage partitions since the session was created *)
  extended : int;
  rebuilt : int;
  keys : key_stats list;  (** sorted by (partition_by, order_by) *)
}

val stats : t -> stats

val render_stats : stats -> string
(** Human-readable multi-line rendering (deterministic apart from the
    byte counts' magnitude formatting). *)
