(* A deliberately naive re-implementation of the whole window pipeline, used
   as the differential-testing oracle by the fuzz suite.

   Everything here is per-row, list-based and comparator-driven: partitions
   are hash buckets of evaluated key values, sorts call
   [Sort_spec.comparator] per comparison, frames are linear scans, and every
   function is evaluated from the covered positions from first principles.
   None of the machinery under test — key codecs, normalized-key sorts, OVC
   merging, rank encodings, merge sort trees, segment trees, the build
   cache — is touched.

   The only piece of the planner shared on purpose is
   [Window_plan.schedule]: stage assignment is observable (a clause ordered
   by a prefix of another clause's order is evaluated under the longer
   stage sort, which ROWS frames can see under ties), so the oracle must
   sort by the same stage orders the plan chooses. *)

open Holistic_storage
open Window_spec

let value_to_float = function
  | Value.Int x -> float_of_int x
  | Value.Float x -> x
  | Value.Date d -> float_of_int d
  | _ -> Float.nan

let to_float_numeric = function
  | Value.Int x -> float_of_int x
  | Value.Float x -> x
  | v -> invalid_arg ("Window: AVG of non-numeric value " ^ Value.to_string v)

(* --- partitioning --------------------------------------------------- *)

(* Buckets of row ids sharing the evaluated PARTITION BY key values.
   [Hashtbl] compares keys structurally, which gives SQL grouping semantics
   for NULLs (NULL groups with NULL). Bucket order is irrelevant: results
   land at original row ids. *)
let partitions table (exprs : Expr.t list) =
  let n = Table.nrows table in
  if exprs = [] then [ Array.init n (fun i -> i) ]
  else begin
    let fs = List.map (Expr.compile table) exprs in
    let tbl = Hashtbl.create 64 in
    let keys_seen = ref [] in
    for r = 0 to n - 1 do
      let key = List.map (fun f -> f r) fs in
      match Hashtbl.find_opt tbl key with
      | Some l -> l := r :: !l
      | None ->
          Hashtbl.add tbl key (ref [ r ]);
          keys_seen := key :: !keys_seen
    done;
    List.rev_map
      (fun key -> Array.of_list (List.rev !(Hashtbl.find tbl key)))
      !keys_seen
  end

(* The pipeline's total sort order: the stage ORDER BY, then ascending row
   id (the encoded sorts guarantee exactly this permutation). *)
let sorted_rows table (order : Sort_spec.t) part =
  let rows = Array.copy part in
  let cmp = Sort_spec.comparator table order in
  Array.sort (fun a b ->
      let c = cmp a b in
      if c <> 0 then c else compare a b)
    rows;
  rows

(* --- frames, linear-scan edition ------------------------------------ *)

let peers_of table (order : Sort_spec.t) rows =
  let np = Array.length rows in
  let peer_start = Array.make np 0 and peer_end = Array.make np np in
  if order <> [] then begin
    let cmp = Sort_spec.comparator table order in
    let gstart = ref 0 in
    for r = 1 to np do
      if r = np || cmp rows.(r - 1) rows.(r) <> 0 then begin
        for i = !gstart to r - 1 do
          peer_start.(i) <- !gstart;
          peer_end.(i) <- r
        done;
        gstart := r
      end
    done
  end;
  (peer_start, peer_end)

let eval_offset table expr row =
  match Expr.eval table expr row with
  | Value.Int k when k >= 0 -> k
  | _ -> invalid_arg "Frame: bad ROWS/GROUPS offset"

(* Covered position ranges per partition position: resolved frame bounds,
   clamped, minus the exclusion holes. *)
let frame_ranges table (spec : Window_spec.t) rows (peer_start, peer_end) =
  let np = Array.length rows in
  let frame =
    match spec.frame with
    | Some f -> f
    | None ->
        if spec.order_by = [] then Window_spec.whole_partition
        else range_between Unbounded_preceding Current_row
  in
  let start_ = Array.make np 0 and end_ = Array.make np 0 in
  (match frame.mode with
  | Rows ->
      for r = 0 to np - 1 do
        let row = rows.(r) in
        start_.(r) <-
          (match frame.start_bound with
          | Unbounded_preceding -> 0
          | Preceding e -> r - eval_offset table e row
          | Current_row -> r
          | Following e -> r + eval_offset table e row
          | Unbounded_following -> np);
        end_.(r) <-
          (match frame.end_bound with
          | Unbounded_preceding -> 0
          | Preceding e -> r - eval_offset table e row + 1
          | Current_row -> r + 1
          | Following e -> r + eval_offset table e row + 1
          | Unbounded_following -> np)
      done
  | Groups ->
      (* group index per row; group g spans [gstart g, gend g) *)
      let gidx = Array.make np 0 in
      for r = 1 to np - 1 do
        gidx.(r) <- gidx.(r - 1) + (if peer_start.(r) = r then 1 else 0)
      done;
      let ngroups = if np = 0 then 0 else gidx.(np - 1) + 1 in
      let gstart = Array.make (max ngroups 1) 0 and gend = Array.make (max ngroups 1) 0 in
      for r = 0 to np - 1 do
        gstart.(gidx.(r)) <- peer_start.(r);
        gend.(gidx.(r)) <- peer_end.(r)
      done;
      for r = 0 to np - 1 do
        let row = rows.(r) in
        let g = gidx.(r) in
        let bound ~is_start = function
          | Unbounded_preceding -> 0
          | Current_row -> if is_start then peer_start.(r) else peer_end.(r)
          | Preceding e ->
              let k = eval_offset table e row in
              if g - k < 0 then 0 else if is_start then gstart.(g - k) else gend.(g - k)
          | Following e ->
              let k = eval_offset table e row in
              if g + k >= ngroups then np
              else if is_start then gstart.(g + k)
              else gend.(g + k)
          | Unbounded_following -> np
        in
        start_.(r) <- bound ~is_start:true frame.start_bound;
        end_.(r) <- bound ~is_start:false frame.end_bound
      done
  | Range ->
      let needs_key =
        match frame.start_bound, frame.end_bound with
        | (Preceding _ | Following _), _ | _, (Preceding _ | Following _) -> true
        | _ -> false
      in
      let key = match spec.order_by with [ k ] -> Some k | _ -> None in
      if needs_key && key = None then
        invalid_arg "Frame: RANGE with offsets requires exactly one ORDER BY key";
      let vals, nulls_first, desc =
        match key with
        | None -> ([||], false, false)
        | Some k ->
            let f = Expr.compile table k.Sort_spec.expr in
            ( Array.init np (fun r -> f rows.(r)),
              not (Sort_spec.nulls_last_flag k),
              k.Sort_spec.direction = Sort_spec.Desc )
      in
      let nn_lo, nn_hi =
        if vals = [||] then (0, np)
        else begin
          let nnulls =
            Array.fold_left (fun acc v -> if Value.is_null v then acc + 1 else acc) 0 vals
          in
          if nulls_first then (nnulls, np) else (0, np - nnulls)
        end
      in
      let cmpv a b = Value.compare_sql ~nulls_last:true a b in
      (* first position in the non-null region satisfying a predicate that
         is monotone under the sorted order; nn_hi when none does *)
      let scan_first pred =
        let p = ref nn_lo in
        while !p < nn_hi && not (pred !p) do
          incr p
        done;
        !p
      in
      let first_geq target =
        scan_first (fun p ->
            if desc then cmpv vals.(p) target <= 0 else cmpv vals.(p) target >= 0)
      in
      let past_leq target =
        scan_first (fun p ->
            if desc then cmpv vals.(p) target < 0 else cmpv vals.(p) target > 0)
      in
      let shifted v e row ~towards_preceding =
        let d = Expr.eval table e row in
        if Value.is_null d then invalid_arg "Frame: NULL RANGE offset";
        let back = if desc then not towards_preceding else towards_preceding in
        if back then Value.sub v d else Value.add v d
      in
      for r = 0 to np - 1 do
        let row = rows.(r) in
        let v = if vals = [||] then Value.Null else vals.(r) in
        let is_null = Value.is_null v in
        start_.(r) <-
          (match frame.start_bound with
          | Unbounded_preceding -> 0
          | Current_row -> peer_start.(r)
          | Preceding e ->
              if is_null then peer_start.(r)
              else first_geq (shifted v e row ~towards_preceding:true)
          | Following e ->
              if is_null then peer_start.(r)
              else first_geq (shifted v e row ~towards_preceding:false)
          | Unbounded_following -> np);
        end_.(r) <-
          (match frame.end_bound with
          | Unbounded_preceding -> 0
          | Current_row -> peer_end.(r)
          | Preceding e ->
              if is_null then peer_end.(r)
              else past_leq (shifted v e row ~towards_preceding:true)
          | Following e ->
              if is_null then peer_end.(r)
              else past_leq (shifted v e row ~towards_preceding:false)
          | Unbounded_following -> np)
      done);
  for r = 0 to np - 1 do
    start_.(r) <- max 0 (min start_.(r) np);
    end_.(r) <- max 0 (min end_.(r) np);
    if end_.(r) < start_.(r) then end_.(r) <- start_.(r)
  done;
  fun r ->
    let s = start_.(r) and e = end_.(r) in
    if s >= e then []
    else begin
      let holes =
        match frame.exclusion with
        | Exclude_no_others -> []
        | Exclude_current_row -> [ (r, r + 1) ]
        | Exclude_group -> [ (peer_start.(r), peer_end.(r)) ]
        | Exclude_ties -> [ (peer_start.(r), r); (r + 1, peer_end.(r)) ]
      in
      let holes =
        List.filter_map
          (fun (a, b) ->
            let a = max a s and b = min b e in
            if a < b then Some (a, b) else None)
          holes
      in
      let pieces = ref [] and pos = ref s in
      List.iter
        (fun (a, b) ->
          if a > !pos then pieces := (!pos, a) :: !pieces;
          pos := max !pos b)
        holes;
      if !pos < e then pieces := (!pos, e) :: !pieces;
      List.rev !pieces
    end

(* --- per-item evaluation -------------------------------------------- *)

let ntile_bucket ~buckets ~s ~rn0 =
  let rn0 = max 0 (min rn0 (s - 1)) in
  let q = s / buckets and rem = s mod buckets in
  let b =
    if q = 0 then rn0
    else if rn0 < (q + 1) * rem then rn0 / (q + 1)
    else rem + ((rn0 - ((q + 1) * rem)) / q)
  in
  b + 1

(* Count of distinct ordering-equivalence classes in a position list. *)
let distinct_classes cmp positions =
  match List.sort cmp positions with
  | [] -> 0
  | p0 :: rest ->
      let n, _ =
        List.fold_left (fun (n, prev) p -> if cmp prev p <> 0 then (n + 1, p) else (n, prev))
          (1, p0) rest
      in
      n

let eval_item table (spec : Window_spec.t) rows ranges_of (item : Window_func.t) out =
  let open Window_func in
  let pos_cmp order =
    let c = Sort_spec.comparator table order in
    fun p q -> c rows.(p) rows.(q)
  in
  let eff order = if order = [] then spec.order_by else order in
  let filter_ok =
    match item.filter with
    | None -> fun _ -> true
    | Some e ->
        let f = Expr.compile table e in
        fun p -> Expr.to_bool (f rows.(p))
  in
  let nonnull e =
    let f = Expr.compile table e in
    fun p -> not (Value.is_null (f rows.(p)))
  in
  (* covered qualifying positions of row [r], ascending *)
  let covered ?(extra = fun _ -> true) r =
    List.concat_map
      (fun (lo, hi) ->
        List.filter (fun p -> filter_ok p && extra p) (List.init (hi - lo) (fun i -> lo + i)))
      (ranges_of r)
  in
  let emit r v = out.(rows.(r)) <- v in
  let np = Array.length rows in
  (* rank-family core: counts against the effective order *)
  let rank_family variant order =
    let cmp = pos_cmp (eff order) in
    for r = 0 to np - 1 do
      let cov = covered r in
      let s = List.length cov in
      let cnt_less = List.length (List.filter (fun p -> cmp p r < 0) cov) in
      let v =
        match variant with
        | `Rank -> Value.Int (cnt_less + 1)
        | `Dense ->
            Value.Int (distinct_classes cmp (List.filter (fun p -> cmp p r < 0) cov) + 1)
        | `Percent ->
            Value.Float
              (if s <= 1 then 0.0 else float_of_int cnt_less /. float_of_int (s - 1))
        | `Cume ->
            if s = 0 then Value.Null
            else begin
              let le = List.length (List.filter (fun p -> cmp p r <= 0) cov) in
              Value.Float (float_of_int le /. float_of_int s)
            end
        | `Row_number | `Ntile _ ->
            let rn0 =
              List.length
                (List.filter (fun p ->
                     let c = cmp p r in
                     c < 0 || (c = 0 && p < r))
                   cov)
            in
            (match variant with
            | `Row_number -> Value.Int (rn0 + 1)
            | `Ntile b -> if s = 0 then Value.Null else Value.Int (ntile_bucket ~buckets:b ~s ~rn0)
            | _ -> assert false)
      in
      emit r v
    done
  in
  (* select family: percentiles, value functions, LEAD/LAG *)
  let select_family kind arg order ignore_nulls =
    let order = eff order in
    let cmp = pos_cmp order in
    let is_percentile = match kind with `Disc _ | `Cont _ -> true | _ -> false in
    let extra =
      if is_percentile then
        match order with [] -> fun _ -> true | key :: _ -> nonnull key.Sort_spec.expr
      else if ignore_nulls then nonnull arg
      else fun _ -> true
    in
    let argf = Expr.compile table arg in
    let value_at p = argf rows.(p) in
    let float_at p = value_to_float (value_at p) in
    for r = 0 to np - 1 do
      let cov = covered ~extra r in
      let ord =
        Array.of_list
          (List.sort (fun p q ->
               let c = cmp p q in
               if c <> 0 then c else compare p q)
             cov)
      in
      let s = Array.length ord in
      let v =
        match kind with
        | `Disc p ->
            if s = 0 then Value.Null
            else begin
              let i = int_of_float (Float.ceil (p *. float_of_int s)) - 1 in
              value_at ord.(max 0 (min i (s - 1)))
            end
        | `Cont p ->
            if s = 0 then Value.Null
            else begin
              let x = p *. float_of_int (s - 1) in
              let lo = int_of_float (Float.floor x) in
              let frac = x -. float_of_int lo in
              let vlo = float_at ord.(lo) in
              if frac <= 0.0 || lo + 1 >= s then Value.Float vlo
              else Value.Float (vlo +. (frac *. (float_at ord.(lo + 1) -. vlo)))
            end
        | `First -> if s = 0 then Value.Null else value_at ord.(0)
        | `Last -> if s = 0 then Value.Null else value_at ord.(s - 1)
        | `Nth (n, from_last) ->
            let i = if from_last then s - n else n - 1 in
            if i >= 0 && i < s then value_at ord.(i) else Value.Null
        | `Shift (off, default) ->
            let rn =
              List.length
                (List.filter (fun p ->
                     let c = cmp p r in
                     c < 0 || (c = 0 && p < r))
                   cov)
            in
            let target = rn + off in
            if target >= 0 && target < s then value_at ord.(target)
            else begin
              match default with
              | Some e -> Expr.eval table e rows.(r)
              | None -> Value.Null
            end
      in
      emit r v
    done
  in
  (* aggregates *)
  let each_row ?extra f =
    for r = 0 to np - 1 do
      emit r (f (covered ?extra r))
    done
  in
  let distinct_reps arg cov =
    (* first-occurrence representative value per distinct argument value *)
    let argf = Expr.compile table arg in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun p ->
        let v = argf rows.(p) in
        if not (Hashtbl.mem seen v) then Hashtbl.add seen v (value_to_float v))
      cov;
    seen
  in
  match item.func with
  | Aggregate { kind = Count_star; _ } -> each_row (fun cov -> Value.Int (List.length cov))
  | Aggregate { kind = Count; arg = Some e; distinct = false } ->
      each_row ~extra:(nonnull e) (fun cov -> Value.Int (List.length cov))
  | Aggregate { kind = Count; arg = Some e; distinct = true } ->
      each_row ~extra:(nonnull e) (fun cov -> Value.Int (Hashtbl.length (distinct_reps e cov)))
  | Aggregate { kind = (Sum | Avg) as kind; arg = Some e; distinct = true } ->
      each_row ~extra:(nonnull e) (fun cov ->
          let reps = distinct_reps e cov in
          let c = Hashtbl.length reps in
          if c = 0 then Value.Null
          else begin
            let s = Hashtbl.fold (fun _ f acc -> acc +. f) reps 0.0 in
            if kind = Sum then Value.Float s else Value.Float (s /. float_of_int c)
          end)
  | Aggregate { kind = (Sum | Avg | Min | Max) as kind; arg = Some e; _ } ->
      let argf = Expr.compile table e in
      each_row ~extra:(nonnull e) (fun cov ->
          let vals = List.map (fun p -> argf rows.(p)) cov in
          match kind with
          | Sum -> (match vals with [] -> Value.Null | v0 :: rest -> List.fold_left Value.add v0 rest)
          | Avg ->
              let c = List.length vals in
              if c = 0 then Value.Null
              else begin
                let s = match vals with [] -> Value.Null | v0 :: rest -> List.fold_left Value.add v0 rest in
                Value.Float (to_float_numeric s /. float_of_int c)
              end
          | Min ->
              List.fold_left
                (fun a v ->
                  if Value.is_null a then v
                  else if Value.compare_sql ~nulls_last:true v a < 0 then v
                  else a)
                Value.Null vals
          | Max ->
              List.fold_left
                (fun a v ->
                  if Value.is_null a then v
                  else if Value.compare_sql ~nulls_last:true v a > 0 then v
                  else a)
                Value.Null vals
          | _ -> assert false)
  | Aggregate _ -> invalid_arg "Reference: aggregate without argument"
  | Mode e ->
      let argf = Expr.compile table e in
      each_row ~extra:(nonnull e) (fun cov ->
          let counts = Hashtbl.create 16 in
          List.iter
            (fun p ->
              let v = argf rows.(p) in
              Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
            cov;
          Hashtbl.fold
            (fun v c best ->
              match best with
              | None -> Some (v, c)
              | Some (bv, bc) ->
                  if c > bc || (c = bc && Value.compare_sql ~nulls_last:true v bv < 0) then
                    Some (v, c)
                  else best)
            counts None
          |> function
          | None -> Value.Null
          | Some (v, _) -> v)
  | Rank order -> rank_family `Rank order
  | Dense_rank order -> rank_family `Dense order
  | Row_number order -> rank_family `Row_number order
  | Percent_rank order -> rank_family `Percent order
  | Cume_dist order -> rank_family `Cume order
  | Ntile (b, order) -> rank_family (`Ntile b) order
  | Percentile_disc (p, order) ->
      let arg =
        match order with
        | k :: _ -> k.Sort_spec.expr
        | [] -> invalid_arg "Reference: percentile requires an ORDER BY expression"
      in
      select_family (`Disc p) arg order false
  | Percentile_cont (p, order) ->
      let arg =
        match order with
        | k :: _ -> k.Sort_spec.expr
        | [] -> invalid_arg "Reference: percentile requires an ORDER BY expression"
      in
      select_family (`Cont p) arg order false
  | First_value { arg; order; ignore_nulls } -> select_family `First arg order ignore_nulls
  | Last_value { arg; order; ignore_nulls } -> select_family `Last arg order ignore_nulls
  | Nth_value (n, from_last, { arg; order; ignore_nulls }) ->
      select_family (`Nth (n, from_last)) arg order ignore_nulls
  | Lead (off, default, { arg; order; ignore_nulls }) ->
      select_family (`Shift (off, default)) arg order ignore_nulls
  | Lag (off, default, { arg; order; ignore_nulls }) ->
      select_family (`Shift (-off, default)) arg order ignore_nulls

(* --- driver ---------------------------------------------------------- *)

let run table (clauses : Window_plan.clause list) =
  let n = Table.nrows table in
  let outputs =
    List.map
      (fun (c : Window_plan.clause) ->
        (c, List.map (fun (it : Window_func.t) -> (it, Array.make n Value.Null)) c.items))
      clauses
  in
  List.iter
    (fun (g : Window_plan.group) ->
      let parts = partitions table g.partition_by in
      List.iter
        (fun (st : Window_plan.stage) ->
          List.iter
            (fun part ->
              let rows = sorted_rows table st.order part in
              List.iter
                (fun (cl : Window_plan.clause) ->
                  let peers = peers_of table cl.spec.order_by rows in
                  let ranges_of = frame_ranges table cl.spec rows peers in
                  List.iter
                    (fun (it, arr) -> eval_item table cl.spec rows ranges_of it arr)
                    (List.assq cl outputs))
                st.members)
            parts)
        g.stages)
    (Window_plan.schedule clauses);
  List.concat_map
    (fun ((_ : Window_plan.clause), outs) ->
      List.map (fun ((it : Window_func.t), arr) -> (it.name, arr)) outs)
    outputs
