(** Per-partition cache of preprocessing structures, shared by every window
    item and frame evaluated over one sorted partition.

    The paper's query phase builds each index structure once and probes it
    many times; this cache extends that guarantee across items: within a
    partition, a rank encoding, merge sort tree, annotated tree, range tree
    or segment tree is keyed on the inputs that determine its contents — the
    effective ORDER BY, the qualifying-row filter and (where the structure
    holds argument values) the argument expression — so e.g.
    [rank + percent_rank + cume_dist] over one named window perform one
    encode and one tree build. Keys are pure ASTs compared structurally.

    A cache is valid for exactly one [(table, rows)] pair: the window plan
    creates a fresh one per (stage, partition).

    Thread safety: every accessor may be called from any domain
    concurrently.  Each structure kind lives in its own mutex-guarded
    table, and the lock is held across the build thunk, so a structure is
    built exactly once per key — concurrent requests for the same key
    block until it exists, then read it as a hit.  Build thunks must not
    re-enter the cache table they are being built into (cross-kind
    nesting is fine). *)

open Holistic_storage
module Mstw = Holistic_core.Mst_width
module Rank_encode = Holistic_core.Rank_encode
module Range_tree = Holistic_core.Range_tree
module Seg = Holistic_baselines.Segment_tree

(** Monoids and tree functor instances shared by the evaluators (owned here
    so cached trees have a home module without a dependency cycle). *)

module Value_monoid_sum : sig
  type t = Value.t

  val identity : t
  val combine : t -> t -> t
end

module Value_monoid_min : sig
  type t = Value.t

  val identity : t
  val combine : t -> t -> t
end

module Value_monoid_max : sig
  type t = Value.t

  val identity : t
  val combine : t -> t -> t
end

module Vsum_seg : module type of Seg.Make (Value_monoid_sum)
module Vmin_seg : module type of Seg.Make (Value_monoid_min)
module Vmax_seg : module type of Seg.Make (Value_monoid_max)

module Sum_count_monoid : sig
  type t = float * int

  val identity : t
  val combine : t -> t -> t
end

module Sum_count_mst : module type of Holistic_core.Annotated_mst.Make (Sum_count_monoid)

type counters = {
  encode_builds : int Atomic.t;
  tree_builds : int Atomic.t;
  maintained : int Atomic.t;
  rebuilt : int Atomic.t;
}
(** Running build totals, shared across caches (one [counters] record per
    plan run): [encode_builds] counts {!Rank_encode} constructions,
    [tree_builds] counts index-structure constructions (MSTs, annotated
    MSTs, range trees, segment trees).  [maintained]/[rebuilt] count what
    happened to entries stale under a session epoch: incrementally patched
    vs rebuilt from scratch (a rebuild also bumps the build total; a patch
    does not).  Atomics: under the morsel-driven plan the counts are
    bumped from whichever domain evaluates the partition. *)

val fresh_counters : unit -> counters

val encode_build_count : counters -> int
val tree_build_count : counters -> int
val maintained_count : counters -> int
val rebuilt_count : counters -> int

type extra_filter = Ex_none | Ex_nonnull of Expr.t
(** The implicit NULL-skipping component of a qualifying-row predicate:
    [Ex_nonnull e] keeps rows where [e] is non-NULL (IGNORE NULLS, NULL
    skipping aggregates, percentile order keys). *)

type qual = { filter : Expr.t option; extra : extra_filter }
(** Structural key for a qualifying-row predicate: the FILTER clause
    expression plus the implicit NULL-skipping filter. *)

val unfiltered : qual

type codes_class = Rank_codes | Row_codes | Select_perm
(** What a cached counting/selection MST was built over: filtered rank
    codes, filtered row codes, or the sorted permutation of filtered
    positions (§4.5 Fig. 6). *)

type seg_class = Seg_sum | Seg_min | Seg_max
type seg_tree = Sum_tree of Vsum_seg.t | Min_tree of Vmin_seg.t | Max_tree of Vmax_seg.t

type t

val create : ?counters:counters -> unit -> t
(** A fresh, empty cache. [counters] defaults to a private record; pass a
    shared one to accumulate build totals across partitions. *)

val counters : t -> counters

val epoch : t -> int
(** The cache's current epoch. Starts at 0 and only moves under a session
    ({!advance}); in per-query use every entry is at the current epoch. *)

val advance : t -> unit
(** Bump the epoch: every cached structure becomes stale (the partition's
    rows were extended), to be incrementally maintained — via the
    accessors' [maintain] callbacks — or rebuilt on its next request.
    Must not race with accessor calls (the session mutates between
    queries). *)

(** Each accessor returns the cached structure for its key, calling the
    build thunk (and counting the build) only on the first request.

    A stale entry (built before the last {!advance}) is passed to the
    [maintain] callback where one is given: [Some (v', detail)] stores the
    incrementally patched structure (provenance [maintained(detail)] on
    the build span); [None] — or no callback — falls back to the build
    thunk (provenance [rebuilt(stale)]).

    Tree keys additionally carry [algo] — the {!Evaluator_choice.to_string}
    spelling of the backend the structure was resolved to — so items the
    planner sent to different backends never alias each other's trees.
    The defaults name the backend that historically owned each structure
    ("mst" for the MST family, "segment-tree" for segment trees), keeping
    pre-cost-model call sites on identical keys. *)

val encode :
  t ->
  ?maintain:(Rank_encode.t -> (Rank_encode.t * string) option) ->
  order:Sort_spec.t ->
  (unit -> Rank_encode.t) ->
  Rank_encode.t

val remap : t -> qual:qual -> (unit -> Remap.t) -> Remap.t

val peers :
  t -> order:Sort_spec.t -> (unit -> int array * int array) -> int array * int array

val count_tree :
  t -> ?algo:string -> ?maintain:(Mstw.t -> (Mstw.t * string) option) ->
  cls:codes_class -> order:Sort_spec.t -> qual:qual -> sample:int ->
  (unit -> Mstw.t) -> Mstw.t

val range_tree :
  t -> ?algo:string -> order:Sort_spec.t -> qual:qual -> sample:int ->
  (unit -> Range_tree.t) -> Range_tree.t

val arg_ids : t -> arg:Expr.t -> qual:qual -> (unit -> int array) -> int array
val prev_array : t -> arg:Expr.t -> qual:qual -> (unit -> int array) -> int array

val distinct_tree :
  t -> ?algo:string -> ?maintain:(Mstw.t -> (Mstw.t * string) option) ->
  arg:Expr.t -> qual:qual -> sample:int -> (unit -> Mstw.t) -> Mstw.t

val annotated_tree :
  t -> ?algo:string -> arg:Expr.t -> qual:qual -> sample:int ->
  (unit -> Sum_count_mst.t) -> Sum_count_mst.t

val seg_tree :
  t -> ?algo:string -> cls:seg_class -> arg:Expr.t -> qual:qual -> (unit -> seg_tree) -> seg_tree

val footprint_bytes : t -> int
(** Total bytes held by every structure currently cached — the sum of the
    members' [footprint_bytes].  Each fresh build also reports its
    footprint to the enclosing [build] span ({!Obs.record_bytes}) and to
    the deterministic [mem.structure_bytes] counter as it happens. *)
