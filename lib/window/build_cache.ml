open Holistic_storage
module Obs = Holistic_obs.Obs
module Mstw = Holistic_core.Mst_width
module Annotated = Holistic_core.Annotated_mst
module Rank_encode = Holistic_core.Rank_encode
module Range_tree = Holistic_core.Range_tree
module Seg = Holistic_baselines.Segment_tree

(* ------------------------------------------------------------------ *)
(* Monoids shared by the evaluators (owned here so the cache can store  *)
(* the instantiated tree types without a dependency cycle).             *)
(* ------------------------------------------------------------------ *)

module Value_monoid_sum = struct
  type t = Value.t

  let identity = Value.Null
  let combine a b = if Value.is_null a then b else if Value.is_null b then a else Value.add a b
end

module Value_monoid_min = struct
  type t = Value.t

  let identity = Value.Null

  let combine a b =
    if Value.is_null a then b
    else if Value.is_null b then a
    else if Value.compare_sql ~nulls_last:true a b <= 0 then a
    else b
end

module Value_monoid_max = struct
  type t = Value.t

  let identity = Value.Null

  let combine a b =
    if Value.is_null a then b
    else if Value.is_null b then a
    else if Value.compare_sql ~nulls_last:true a b >= 0 then a
    else b
end

module Vsum_seg = Seg.Make (Value_monoid_sum)
module Vmin_seg = Seg.Make (Value_monoid_min)
module Vmax_seg = Seg.Make (Value_monoid_max)

module Sum_count_monoid = struct
  type t = float * int

  let identity = (0.0, 0)
  let combine (a, b) (c, d) = (a +. c, b + d)
end

module Sum_count_mst = Annotated.Make (Sum_count_monoid)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

(* Build totals are shared by every cache of a plan run and bumped from
   whichever domain evaluates the partition, so they are atomics rather
   than mutable ints. [maintained]/[rebuilt] count what happened to stale
   entries (session epochs): an incremental patch vs a from-scratch
   rebuild. *)
type counters = {
  encode_builds : int Atomic.t;
  tree_builds : int Atomic.t;
  maintained : int Atomic.t;
  rebuilt : int Atomic.t;
}

let fresh_counters () =
  {
    encode_builds = Atomic.make 0;
    tree_builds = Atomic.make 0;
    maintained = Atomic.make 0;
    rebuilt = Atomic.make 0;
  }

let encode_build_count c = Atomic.get c.encode_builds
let tree_build_count c = Atomic.get c.tree_builds
let maintained_count c = Atomic.get c.maintained
let rebuilt_count c = Atomic.get c.rebuilt

type extra_filter = Ex_none | Ex_nonnull of Expr.t
type qual = { filter : Expr.t option; extra : extra_filter }

let unfiltered = { filter = None; extra = Ex_none }

type codes_class = Rank_codes | Row_codes | Select_perm

type seg_class = Seg_sum | Seg_min | Seg_max
type seg_tree = Sum_tree of Vsum_seg.t | Min_tree of Vmin_seg.t | Max_tree of Vmax_seg.t

(* All keys are pure ASTs ([Expr.t] / [Sort_spec.t]) compared structurally,
   which is exactly the sharing rule: two items share a build iff their
   effective ORDER BY (and argument/filter, where the structure depends on
   them) are structurally equal. *)
(* Each logical table is a [Hashtbl] behind its own mutex: the stdlib
   table is not safe for concurrent mutation, and under the morsel-driven
   plan a cache may be populated from several domains at once (and the
   hammer test does exactly that on purpose).  The lock is held across the
   build thunk, which gives exactly-once construction — a second domain
   asking for the same key blocks until the structure exists, then reads
   it as a plain hit.  Build thunks must not re-enter the same table (they
   never do: the dependency chain runs encode → tree, remap → tree, and
   each kind lives in its own table); cross-table nesting is fine because
   each table has its own lock and the chain is acyclic. *)
(* Every cached structure remembers the cache epoch it was built (or last
   maintained) at.  In the historical per-query use the epoch never moves
   and [at] is always current — zero behavioural change.  A session bumps
   the epoch ({!advance}) when the partition's rows were extended: entries
   from an older epoch are stale, and the next request either patches them
   incrementally (the accessor's [maintain] callback) or rebuilds. *)
type 'v entry = { v : 'v; at : int }

type ('k, 'v) guarded = { lock : Mutex.t; tbl : ('k, 'v entry) Hashtbl.t }

let guarded n = { lock = Mutex.create (); tbl = Hashtbl.create n }

type t = {
  counters : counters;
  mutable epoch : int;
  encodes : (Sort_spec.t, Rank_encode.t) guarded;
  remaps : (qual, Remap.t) guarded;
  peers : (Sort_spec.t, int array * int array) guarded;
  count_trees : (string * codes_class * Sort_spec.t * qual * int, Mstw.t) guarded;
  range_trees : (string * Sort_spec.t * qual * int, Range_tree.t) guarded;
  arg_ids : (Expr.t * qual, int array) guarded;
  prev_arrays : (Expr.t * qual, int array) guarded;
  distinct_trees : (string * Expr.t * qual * int, Mstw.t) guarded;
  annotated_trees : (string * Expr.t * qual * int, Sum_count_mst.t) guarded;
  seg_trees : (string * seg_class * Expr.t * qual, seg_tree) guarded;
}

let create ?counters () =
  let counters = match counters with Some c -> c | None -> fresh_counters () in
  {
    counters;
    epoch = 0;
    encodes = guarded 4;
    remaps = guarded 4;
    peers = guarded 4;
    count_trees = guarded 4;
    range_trees = guarded 4;
    arg_ids = guarded 4;
    prev_arrays = guarded 4;
    distinct_trees = guarded 4;
    annotated_trees = guarded 4;
    seg_trees = guarded 4;
  }

let counters t = t.counters
let epoch t = t.epoch
let advance t = t.epoch <- t.epoch + 1

(* Cache-wide observability: hits and misses across every accessor, a
   [build] span (tagged with the structure kind) around each miss so
   EXPLAIN ANALYZE shows what was constructed vs shared, and memory
   accounting — each freshly built structure reports its
   [footprint_bytes] to the open build span and to the deterministic
   [mem.structure_bytes] counter. *)
let c_hit = Obs.Counter.make ~help:"Structure-cache hits (sort or aggregate structure reused as-is)" "cache.hit"
let c_miss = Obs.Counter.make ~help:"Structure-cache misses (no reusable structure found)" "cache.miss"
let c_maintained = Obs.Counter.make ~help:"Cached structures maintained incrementally instead of rebuilt" "cache.maintained"
let c_rebuilt = Obs.Counter.make ~help:"Cached structures discarded and rebuilt from scratch" "cache.rebuilt"
let c_struct_bytes = Obs.Counter.make ~help:"Bytes of auxiliary query structures (MSTs, segment trees, encodings) built" "mem.structure_bytes"

(* per-structure footprints (repo-wide memory-accounting contract) *)
let int_array_bytes a = 8 * (1 + Array.length a)
let peers_bytes (a, b) = 8 * (3 + 2 + Array.length a + Array.length b)

let seg_tree_bytes = function
  | Sum_tree s -> Vsum_seg.footprint_bytes s
  | Min_tree s -> Vmin_seg.footprint_bytes s
  | Max_tree s -> Vmax_seg.footprint_bytes s

let built ~bytes v =
  (* called inside the build span, so the footprint lands on it; [bytes]
     is only evaluated with tracing on (it may walk the structure) *)
  if Obs.enabled () then begin
    let b = bytes v in
    Obs.record_bytes (fun () -> b);
    Obs.Counter.add c_struct_bytes b
  end;
  v

(* The lock is held across the build (exactly-once under concurrency, see
   the [guarded] note); [count] bumps the relevant build counter only when
   a build (or an incremental patch) actually ran.

   Cache provenance on the build span ([EXPLAIN ANALYZE]): a stale entry
   patched by the [maintain] callback tags [maintained(<detail>)] (the
   callback supplies the detail, e.g. "+40 rows"); a stale entry the
   callback declined — or that has no callback — tags [rebuilt(stale)].
   A fresh build carries no tag (the historical span shape: staleness
   only exists under a session).  An entry at the current epoch is a
   plain hit and opens no span. *)
let memo_in ~kind ~bytes ?count ?maintain ~cnt ~epoch g key build =
  Mutex.lock g.lock;
  match Hashtbl.find_opt g.tbl key with
  | Some e when e.at = epoch ->
      Mutex.unlock g.lock;
      Obs.Counter.incr c_hit;
      e.v
  | found -> (
      let prev = match found with Some e -> Some e.v | None -> None in
      let prov = ref (match prev with Some _ -> "rebuilt(stale)" | None -> "") in
      match
        Obs.Counter.incr c_miss;
        Obs.span "build"
          ~args:(fun () ->
            ("kind", kind) :: (if !prov = "" then [] else [ ("cache", !prov) ]))
          (fun () ->
            let patched =
              match prev, maintain with Some v, Some f -> f v | _ -> None
            in
            match patched with
            | Some (v', detail) ->
                prov := Printf.sprintf "maintained(%s)" detail;
                Obs.Counter.incr c_maintained;
                Atomic.incr cnt.maintained;
                built ~bytes v'
            | None ->
                if prev <> None then begin
                  Obs.Counter.incr c_rebuilt;
                  Atomic.incr cnt.rebuilt
                end;
                (match count with None -> () | Some c -> Atomic.incr c);
                built ~bytes (build ()))
      with
      | v ->
          Hashtbl.replace g.tbl key { v; at = epoch };
          Mutex.unlock g.lock;
          v
      | exception e ->
          Mutex.unlock g.lock;
          raise e)

let memo ~kind ~bytes ?maintain t g key build =
  memo_in ~kind ~bytes ?maintain ~cnt:t.counters ~epoch:t.epoch g key build

let memo_tree ~kind ~bytes ?maintain t g key build =
  memo_in ~kind ~bytes ~count:t.counters.tree_builds ?maintain ~cnt:t.counters ~epoch:t.epoch g
    key build

let encode t ?maintain ~order build =
  memo_in ~kind:"encode" ~bytes:Rank_encode.footprint_bytes ~count:t.counters.encode_builds
    ?maintain ~cnt:t.counters ~epoch:t.epoch t.encodes order build

let remap t ~qual build = memo ~kind:"remap" ~bytes:Remap.footprint_bytes t t.remaps qual build
let peers t ~order build = memo ~kind:"peers" ~bytes:peers_bytes t t.peers order build

(* Structure keys carry the evaluator that built them ([algo], the
   [Evaluator_choice.to_string] spelling): two items share a tree only when
   the planner resolved them to the same backend.  Defaults name the
   backend that historically owned each structure, so pre-cost-model call
   sites key identically to before. *)
let count_tree t ?(algo = "mst") ?maintain ~cls ~order ~qual ~sample build =
  let kind = match cls with Rank_codes -> "mst.rank" | Row_codes -> "mst.row" | Select_perm -> "mst.select" in
  memo_tree ~kind ~bytes:Mstw.footprint_bytes ?maintain t t.count_trees (algo, cls, order, qual, sample) build

let range_tree t ?(algo = "mst") ~order ~qual ~sample build =
  memo_tree ~kind:"range_tree" ~bytes:Range_tree.footprint_bytes t t.range_trees
    (algo, order, qual, sample) build

let arg_ids t ~arg ~qual build = memo ~kind:"arg_ids" ~bytes:int_array_bytes t t.arg_ids (arg, qual) build
let prev_array t ~arg ~qual build = memo ~kind:"prev" ~bytes:int_array_bytes t t.prev_arrays (arg, qual) build

let distinct_tree t ?(algo = "mst") ?maintain ~arg ~qual ~sample build =
  memo_tree ~kind:"mst.distinct" ~bytes:Mstw.footprint_bytes ?maintain t t.distinct_trees
    (algo, arg, qual, sample) build

let annotated_tree t ?(algo = "mst") ~arg ~qual ~sample build =
  memo_tree ~kind:"mst.annotated" ~bytes:Sum_count_mst.footprint_bytes t t.annotated_trees
    (algo, arg, qual, sample) build

let seg_tree t ?(algo = "segment-tree") ~cls ~arg ~qual build =
  memo_tree ~kind:"segment_tree" ~bytes:seg_tree_bytes t t.seg_trees (algo, cls, arg, qual) build

let footprint_bytes t =
  let sum bytes g =
    Mutex.lock g.lock;
    let b = Hashtbl.fold (fun _ e acc -> acc + bytes e.v) g.tbl 0 in
    Mutex.unlock g.lock;
    b
  in
  sum Rank_encode.footprint_bytes t.encodes
  + sum Remap.footprint_bytes t.remaps
  + sum peers_bytes t.peers
  + sum Mstw.footprint_bytes t.count_trees
  + sum Range_tree.footprint_bytes t.range_trees
  + sum int_array_bytes t.arg_ids
  + sum int_array_bytes t.prev_arrays
  + sum Mstw.footprint_bytes t.distinct_trees
  + sum Sum_count_mst.footprint_bytes t.annotated_trees
  + sum seg_tree_bytes t.seg_trees
