open Holistic_storage
module Obs = Holistic_obs.Obs
module Mstw = Holistic_core.Mst_width
module Annotated = Holistic_core.Annotated_mst
module Rank_encode = Holistic_core.Rank_encode
module Range_tree = Holistic_core.Range_tree
module Seg = Holistic_baselines.Segment_tree

(* ------------------------------------------------------------------ *)
(* Monoids shared by the evaluators (owned here so the cache can store  *)
(* the instantiated tree types without a dependency cycle).             *)
(* ------------------------------------------------------------------ *)

module Value_monoid_sum = struct
  type t = Value.t

  let identity = Value.Null
  let combine a b = if Value.is_null a then b else if Value.is_null b then a else Value.add a b
end

module Value_monoid_min = struct
  type t = Value.t

  let identity = Value.Null

  let combine a b =
    if Value.is_null a then b
    else if Value.is_null b then a
    else if Value.compare_sql ~nulls_last:true a b <= 0 then a
    else b
end

module Value_monoid_max = struct
  type t = Value.t

  let identity = Value.Null

  let combine a b =
    if Value.is_null a then b
    else if Value.is_null b then a
    else if Value.compare_sql ~nulls_last:true a b >= 0 then a
    else b
end

module Vsum_seg = Seg.Make (Value_monoid_sum)
module Vmin_seg = Seg.Make (Value_monoid_min)
module Vmax_seg = Seg.Make (Value_monoid_max)

module Sum_count_monoid = struct
  type t = float * int

  let identity = (0.0, 0)
  let combine (a, b) (c, d) = (a +. c, b + d)
end

module Sum_count_mst = Annotated.Make (Sum_count_monoid)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

type counters = { mutable encode_builds : int; mutable tree_builds : int }

let fresh_counters () = { encode_builds = 0; tree_builds = 0 }

type extra_filter = Ex_none | Ex_nonnull of Expr.t
type qual = { filter : Expr.t option; extra : extra_filter }

let unfiltered = { filter = None; extra = Ex_none }

type codes_class = Rank_codes | Row_codes | Select_perm

type seg_class = Seg_sum | Seg_min | Seg_max
type seg_tree = Sum_tree of Vsum_seg.t | Min_tree of Vmin_seg.t | Max_tree of Vmax_seg.t

(* All keys are pure ASTs ([Expr.t] / [Sort_spec.t]) compared structurally,
   which is exactly the sharing rule: two items share a build iff their
   effective ORDER BY (and argument/filter, where the structure depends on
   them) are structurally equal. *)
type t = {
  counters : counters;
  encodes : (Sort_spec.t, Rank_encode.t) Hashtbl.t;
  remaps : (qual, Remap.t) Hashtbl.t;
  peers : (Sort_spec.t, int array * int array) Hashtbl.t;
  count_trees : (codes_class * Sort_spec.t * qual * int, Mstw.t) Hashtbl.t;
  range_trees : (Sort_spec.t * qual * int, Range_tree.t) Hashtbl.t;
  arg_ids : (Expr.t * qual, int array) Hashtbl.t;
  prev_arrays : (Expr.t * qual, int array) Hashtbl.t;
  distinct_trees : (Expr.t * qual * int, Mstw.t) Hashtbl.t;
  annotated_trees : (Expr.t * qual * int, Sum_count_mst.t) Hashtbl.t;
  seg_trees : (seg_class * Expr.t * qual, seg_tree) Hashtbl.t;
}

let create ?counters () =
  let counters = match counters with Some c -> c | None -> fresh_counters () in
  {
    counters;
    encodes = Hashtbl.create 4;
    remaps = Hashtbl.create 4;
    peers = Hashtbl.create 4;
    count_trees = Hashtbl.create 4;
    range_trees = Hashtbl.create 4;
    arg_ids = Hashtbl.create 4;
    prev_arrays = Hashtbl.create 4;
    distinct_trees = Hashtbl.create 4;
    annotated_trees = Hashtbl.create 4;
    seg_trees = Hashtbl.create 4;
  }

let counters t = t.counters

(* Cache-wide observability: hits and misses across every accessor, a
   [build] span (tagged with the structure kind) around each miss so
   EXPLAIN ANALYZE shows what was constructed vs shared, and memory
   accounting — each freshly built structure reports its
   [footprint_bytes] to the open build span and to the deterministic
   [mem.structure_bytes] counter. *)
let c_hit = Obs.Counter.make "cache.hit"
let c_miss = Obs.Counter.make "cache.miss"
let c_struct_bytes = Obs.Counter.make "mem.structure_bytes"

(* per-structure footprints (repo-wide memory-accounting contract) *)
let int_array_bytes a = 8 * (1 + Array.length a)
let peers_bytes (a, b) = 8 * (3 + 2 + Array.length a + Array.length b)

let seg_tree_bytes = function
  | Sum_tree s -> Vsum_seg.footprint_bytes s
  | Min_tree s -> Vmin_seg.footprint_bytes s
  | Max_tree s -> Vmax_seg.footprint_bytes s

let built ~bytes v =
  (* called inside the build span, so the footprint lands on it; [bytes]
     is only evaluated with tracing on (it may walk the structure) *)
  if Obs.enabled () then begin
    let b = bytes v in
    Obs.record_bytes (fun () -> b);
    Obs.Counter.add c_struct_bytes b
  end;
  v

let memo ~kind ~bytes tbl key build =
  match Hashtbl.find_opt tbl key with
  | Some v ->
      Obs.Counter.incr c_hit;
      v
  | None ->
      Obs.Counter.incr c_miss;
      let v = Obs.span "build" ~args:(fun () -> [ ("kind", kind) ]) (fun () -> built ~bytes (build ())) in
      Hashtbl.add tbl key v;
      v

let memo_tree ~kind ~bytes tbl counters key build =
  match Hashtbl.find_opt tbl key with
  | Some v ->
      Obs.Counter.incr c_hit;
      v
  | None ->
      Obs.Counter.incr c_miss;
      let v = Obs.span "build" ~args:(fun () -> [ ("kind", kind) ]) (fun () -> built ~bytes (build ())) in
      counters.tree_builds <- counters.tree_builds + 1;
      Hashtbl.add tbl key v;
      v

let encode t ~order build =
  match Hashtbl.find_opt t.encodes order with
  | Some e ->
      Obs.Counter.incr c_hit;
      e
  | None ->
      Obs.Counter.incr c_miss;
      let e =
        Obs.span "build"
          ~args:(fun () -> [ ("kind", "encode") ])
          (fun () -> built ~bytes:Rank_encode.footprint_bytes (build ()))
      in
      t.counters.encode_builds <- t.counters.encode_builds + 1;
      Hashtbl.add t.encodes order e;
      e

let remap t ~qual build = memo ~kind:"remap" ~bytes:Remap.footprint_bytes t.remaps qual build
let peers t ~order build = memo ~kind:"peers" ~bytes:peers_bytes t.peers order build

let count_tree t ~cls ~order ~qual ~sample build =
  let kind = match cls with Rank_codes -> "mst.rank" | Row_codes -> "mst.row" | Select_perm -> "mst.select" in
  memo_tree ~kind ~bytes:Mstw.footprint_bytes t.count_trees t.counters (cls, order, qual, sample) build

let range_tree t ~order ~qual ~sample build =
  memo_tree ~kind:"range_tree" ~bytes:Range_tree.footprint_bytes t.range_trees t.counters
    (order, qual, sample) build

let arg_ids t ~arg ~qual build = memo ~kind:"arg_ids" ~bytes:int_array_bytes t.arg_ids (arg, qual) build
let prev_array t ~arg ~qual build = memo ~kind:"prev" ~bytes:int_array_bytes t.prev_arrays (arg, qual) build

let distinct_tree t ~arg ~qual ~sample build =
  memo_tree ~kind:"mst.distinct" ~bytes:Mstw.footprint_bytes t.distinct_trees t.counters
    (arg, qual, sample) build

let annotated_tree t ~arg ~qual ~sample build =
  memo_tree ~kind:"mst.annotated" ~bytes:Sum_count_mst.footprint_bytes t.annotated_trees t.counters
    (arg, qual, sample) build

let seg_tree t ~cls ~arg ~qual build =
  memo_tree ~kind:"segment_tree" ~bytes:seg_tree_bytes t.seg_trees t.counters (cls, arg, qual) build

let footprint_bytes t =
  let sum bytes tbl = Hashtbl.fold (fun _ v acc -> acc + bytes v) tbl 0 in
  sum Rank_encode.footprint_bytes t.encodes
  + sum Remap.footprint_bytes t.remaps
  + sum peers_bytes t.peers
  + sum Mstw.footprint_bytes t.count_trees
  + sum Range_tree.footprint_bytes t.range_trees
  + sum int_array_bytes t.arg_ids
  + sum int_array_bytes t.prev_arrays
  + sum Mstw.footprint_bytes t.distinct_trees
  + sum Sum_count_mst.footprint_bytes t.annotated_trees
  + sum seg_tree_bytes t.seg_trees
