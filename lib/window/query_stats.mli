(** Per-query resource records and the structured query log.

    Every query the engine runs can be summarised as one {!t}: wall time,
    row counts, the plan's sort/build provenance ({!Window_plan.stats}),
    byte counters (structures, sort scratch, spill), cache hit/miss and
    maintenance tallies, evaluator picks and GC deltas.  Records are
    collected by {!measure} (which wraps a query thunk and diffs the
    registered counters around it, enabling tracing for the duration when
    it was off — the same counter semantics as EXPLAIN ANALYZE) and
    appended to a JSONL query log with the versioned [holiwin-qlog/1]
    schema: one self-describing JSON object per line, with a
    self-contained parser ({!of_json_line}) like [bench/report.ml]'s, so
    SLO tooling needs no JSON dependency.

    The log sink ({!Log}) rotates by size: when a record would push the
    file past [max_bytes], the file is renamed to [PATH.1] (replacing any
    previous [PATH.1]) and a fresh file starts — bounded disk, always
    line-atomic.  [Sql.query] opens one from [--query-log FILE] or the
    [HOLIWIN_QUERY_LOG] environment variable. *)

open Holistic_storage

val schema_version : string
(** ["holiwin-qlog/1"]. *)

type t = {
  seq : int;  (** per-sink record number, assigned by {!Log.append} *)
  unix_ms : int;  (** wall-clock stamp, milliseconds since the epoch *)
  sql : string;  (** statement text, [""] when not collected via SQL *)
  wall_ns : int;
  rows_in : int;  (** rows of the FROM table *)
  rows_out : int;  (** rows of the result *)
  plan : Window_plan.stats option;  (** [None] for window-free queries *)
  structure_bytes : int;  (** [mem.structure_bytes] delta *)
  scratch_bytes : int;  (** [sort.scratch_bytes] delta *)
  spill_runs : int;
  spill_bytes : int;
  cache_hits : int;
  cache_misses : int;
  cache_maintained : int;
  cache_rebuilt : int;
  evaluators : (string * int) list;
      (** per-backend [plan.evaluator.*] deltas, non-zero entries only,
          sorted by backend name *)
  alloc_w : int;  (** words allocated on the calling domain *)
  promoted_w : int;
  majors : int;
  session_epoch : int option;
}

val measure :
  ?sql:string ->
  ?session_epoch:int ->
  rows_in:int ->
  (unit -> Table.t * Window_plan.stats option) ->
  Table.t * t
(** Run the thunk and assemble its record ([seq] is 0 until a sink
    assigns one).  Tracing is enabled for the duration if it was off —
    the gated byte/cache/evaluator counters must move — and restored
    (with the span buffer cleared via {!Holistic_obs.Obs.clear_spans})
    afterwards, so cumulative counters keep flowing to the metrics
    exporter.  Also records [wall_ns] into the [sql.query_ns] histogram
    and the [sql.query_window_ns] windowed histogram. *)

val note_latency : int -> unit
(** Record one query latency (ns) into [sql.query_ns] and
    [sql.query_window_ns].  Gated: one atomic load and out when tracing
    is disabled — the hook [Sql.query] runs when no query log is open. *)

val to_json_line : t -> string
(** One [holiwin-qlog/1] JSON object, single line, no trailing newline. *)

val of_json_line : string -> t
(** Parse one log line.  @raise Failure on malformed input or a schema
    mismatch. *)

module Log : sig
  type sink

  val open_ : ?max_bytes:int -> string -> sink
  (** Append-mode sink at [path]; an existing file is continued (its size
      counts toward the rotation threshold).  [max_bytes] defaults to
      16 MiB; the minimum is 4 KiB. *)

  val append : sink -> t -> unit
  (** Assign the next sequence number, write the record as one line and
      flush.  Rotates to [path.1] first when the line would push the
      current file past [max_bytes]. *)

  val path : sink -> string
  val rotations : sink -> int
  val close : sink -> unit

  val of_env : unit -> sink option
  (** A sink at [HOLIWIN_QUERY_LOG] (with [HOLIWIN_QUERY_LOG_BYTES]
      overriding [max_bytes]) — [None] when the variable is unset. *)

  val load : string -> t list
  (** Parse every line of a log file (for tests and tooling). *)
end
