(* The single-spec window operator is now a one-clause window plan; the
   partitioning/sorting machinery lives in Window_plan so multi-clause
   queries can share it across specs. *)

let order_permutation = Window_plan.order_permutation

let run ?pool ?fanout ?sample ?task_size ?width ?evaluator ?governor ?mem_limit ?session table
    ~over items =
  Window_plan.run ?pool ?fanout ?sample ?task_size ?width ?evaluator ?governor ?mem_limit ?session
    table
    [ { Window_plan.spec = over; items } ]
