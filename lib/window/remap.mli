(** Index remapping between a partition and its filtered representation
    (paper §4.5/§4.7): FILTER clauses, IGNORE NULLS and NULL-skipping
    aggregates drop rows {e before} any tree is built; frame ranges are then
    translated into the filtered index space in O(1) via prefix counts. *)

type t

val create : np:int -> qualifies:(int -> bool) -> t

val all : int -> t
(** Identity remap over [np] rows (no filtering). *)

val footprint_bytes : t -> int
(** Bytes held by the prefix and position arrays (incl. headers) — the
    repo-wide memory-accounting contract. *)

val filtered_count : t -> int

val count_before : t -> int -> int
(** Number of qualifying partition positions [< r]; defined for
    [r ∈ [0, np]]. *)

val qualifies : t -> int -> bool

val position : t -> int -> int
(** Partition position of the [i]-th qualifying row. *)

val map_range : t -> int * int -> int * int
(** Frame range in partition positions → range in filtered positions. *)

val map_ranges : t -> (int * int) array -> (int * int) array
(** Maps and drops ranges that became empty. *)
