(** Planning-time view of the evaluation backends: first-class names, the
    (backend, function-class) capability matrix, and rough footprints.
    [Window_plan] classifies every window item with {!classify}, filters
    backends with {!supports}, and resolves [Auto] items through
    {!Cost_model}; forced picks (explicit item algorithm, the [?evaluator]
    knob, the [HOLIWIN_EVALUATOR] env var) are validated here too. *)

(** One evaluation backend. Mirrors {!Window_func.algorithm} minus [Auto]
    — [Auto] is a request for a choice, not a backend. *)
type name =
  | Mst  (** merge sort tree with fractional cascading *)
  | Mst_no_cascade  (** merge sort tree, cascading disabled *)
  | Naive  (** per-frame recomputation *)
  | Incremental  (** Wesley & Xu state, task-parallel rebuilds *)
  | Incremental_serial  (** Wesley & Xu state, one serial pass *)
  | Order_statistic  (** counted B-tree window state *)
  | Segment_tree  (** distributive aggregates only *)

val all : name list

val to_string : name -> string
(** CLI spelling: "mst", "mst-no-cascade", "naive", "incremental",
    "incremental-serial", "ost", "segment-tree". *)

val of_string : string -> name option
(** Accepts the {!to_string} spellings with either ["-"] or ["_"],
    case-insensitively; ["order-statistic"] is an alias for ["ost"]. *)

val to_algorithm : name -> Window_func.algorithm
val of_algorithm : Window_func.algorithm -> name option
(** [None] exactly for [Auto]. *)

(** Function classes sharing one eligibility row and one cost shape.
    [C_trivial_count] (COUNT star and plain COUNT) is structure-free — every
    backend computes it identically from the qualifying-row remap, so no
    decision is made or recorded for it. *)
type func_class =
  | C_trivial_count
  | C_plain_agg
  | C_distinct_count
  | C_distinct_sum_avg
  | C_mode
  | C_rank
  | C_dense_rank
  | C_select

val classify : Window_func.t -> func_class
val class_to_string : func_class -> string

val supports : name -> func_class -> holed:bool -> bool
(** Whether the backend has a real implementation for the class — silent
    fallbacks in the evaluator bodies (e.g. MST on a plain SUM running a
    segment tree) do not count.  [holed] is true when the frame has
    exclusion holes, which rules out the incrementally-driven backends. *)

val supported_names : func_class -> holed:bool -> name list

val unsupported_message : name -> func_class -> holed:bool -> string
(** Error text for rejecting a forced (backend, class) pair. *)

val footprint_estimate : name -> rows:int -> frame:int -> int
(** Rough bytes the backend's structure holds live for an [n]-row
    partition with an average frame of [frame] rows; the built structures
    report exact [footprint_bytes] at run time. *)
