(* First-class names for the evaluation backends, their capability matrix,
   and rough structure footprints.  This is the planning-time view of the
   evaluator zoo: [Window_plan] classifies every item, asks [supports] which
   backends can run it, and (for Auto items) lets [Cost_model] pick among
   them.  The evaluator bodies in [Evaluators] stay keyed on
   [Window_func.algorithm]; [to_algorithm]/[of_algorithm] translate. *)

open Window_func

type name =
  | Mst
  | Mst_no_cascade
  | Naive
  | Incremental
  | Incremental_serial
  | Order_statistic
  | Segment_tree

let all =
  [ Mst; Mst_no_cascade; Naive; Incremental; Incremental_serial; Order_statistic; Segment_tree ]

let to_string = function
  | Mst -> "mst"
  | Mst_no_cascade -> "mst-no-cascade"
  | Naive -> "naive"
  | Incremental -> "incremental"
  | Incremental_serial -> "incremental-serial"
  | Order_statistic -> "ost"
  | Segment_tree -> "segment-tree"

let of_string s =
  (* accept both "-" and "_" spellings so env vars read naturally *)
  match String.map (function '_' -> '-' | c -> c) (String.lowercase_ascii s) with
  | "mst" -> Some Mst
  | "mst-no-cascade" -> Some Mst_no_cascade
  | "naive" -> Some Naive
  | "incremental" -> Some Incremental
  | "incremental-serial" -> Some Incremental_serial
  | "ost" | "order-statistic" -> Some Order_statistic
  | "segment-tree" -> Some Segment_tree
  | _ -> None

let to_algorithm = function
  | Mst -> Window_func.Mst
  | Mst_no_cascade -> Window_func.Mst_no_cascade
  | Naive -> Window_func.Naive
  | Incremental -> Window_func.Incremental
  | Incremental_serial -> Window_func.Incremental_serial
  | Order_statistic -> Window_func.Order_statistic
  | Segment_tree -> Window_func.Segment_tree

let of_algorithm = function
  | Window_func.Auto -> None
  | Window_func.Mst -> Some Mst
  | Window_func.Mst_no_cascade -> Some Mst_no_cascade
  | Window_func.Naive -> Some Naive
  | Window_func.Incremental -> Some Incremental
  | Window_func.Incremental_serial -> Some Incremental_serial
  | Window_func.Order_statistic -> Some Order_statistic
  | Window_func.Segment_tree -> Some Segment_tree

(* ------------------------------------------------------------------ *)
(* Function classes                                                    *)
(* ------------------------------------------------------------------ *)

type func_class =
  | C_trivial_count
  | C_plain_agg
  | C_distinct_count
  | C_distinct_sum_avg
  | C_mode
  | C_rank
  | C_dense_rank
  | C_select

let classify (item : Window_func.t) =
  match item.func with
  | Aggregate { kind = Count_star; _ } -> C_trivial_count
  | Aggregate { kind = Count; distinct = false; _ } -> C_trivial_count
  | Aggregate { kind = Count; distinct = true; _ } -> C_distinct_count
  | Aggregate { kind = Sum | Avg; distinct = true; _ } -> C_distinct_sum_avg
  | Aggregate _ -> C_plain_agg (* MIN/MAX DISTINCT ≡ MIN/MAX *)
  | Rank _ | Row_number _ | Percent_rank _ | Cume_dist _ | Ntile _ -> C_rank
  | Dense_rank _ -> C_dense_rank
  | Percentile_disc _ | Percentile_cont _ | First_value _ | Last_value _ | Nth_value _
  | Lead _ | Lag _ ->
      C_select
  | Mode _ -> C_mode

let class_to_string = function
  | C_trivial_count -> "count"
  | C_plain_agg -> "plain aggregate"
  | C_distinct_count -> "distinct count"
  | C_distinct_sum_avg -> "distinct sum/avg"
  | C_mode -> "mode"
  | C_rank -> "rank function"
  | C_dense_rank -> "dense_rank"
  | C_select -> "percentile/value function"

(* Mirrors the dispatch matrix in [Evaluators] exactly: a (backend, class)
   pair is supported iff the evaluator body has a real implementation for
   it (no silent fallbacks counted — forcing "mst" onto a plain SUM would
   run a segment tree, so it is not listed as supporting C_plain_agg).
   Backends driven through [Evaluators.incremental_drive] cannot evaluate
   frames with exclusion holes; [holed] gates them out. *)
let supports name cls ~holed =
  match cls with
  | C_trivial_count -> true (* remap + prefix counts; no per-backend structure *)
  | C_plain_agg -> ( match name with Segment_tree | Naive -> true | _ -> false)
  | C_distinct_count -> (
      match name with
      | Mst | Mst_no_cascade | Naive -> true
      | Incremental | Incremental_serial -> not holed
      | Order_statistic | Segment_tree -> false)
  | C_distinct_sum_avg -> ( match name with Mst | Mst_no_cascade | Naive -> true | _ -> false)
  | C_mode -> (
      match name with
      | Naive -> true
      | Incremental | Incremental_serial -> not holed
      | _ -> false)
  | C_rank -> (
      match name with
      | Mst | Mst_no_cascade | Naive -> true
      | Order_statistic -> not holed
      | _ -> false)
  | C_dense_rank -> ( match name with Mst | Mst_no_cascade | Naive -> true | _ -> false)
  | C_select -> (
      match name with
      | Mst | Mst_no_cascade | Naive -> true
      | Incremental | Incremental_serial | Order_statistic -> not holed
      | Segment_tree -> false)

let supported_names cls ~holed = List.filter (fun n -> supports n cls ~holed) all

let unsupported_message name cls ~holed =
  Printf.sprintf "Window: evaluator %s does not support %s%s (supported: %s)" (to_string name)
    (class_to_string cls)
    (if holed && supports name cls ~holed:false then " over frames with exclusion holes" else "")
    (String.concat "/" (List.map to_string (supported_names cls ~holed)))

(* Rough bytes held live by each backend's structure for an [n]-row
   partition with an average frame of [frame] rows — the capability-level
   view; the built structures report exact [footprint_bytes] to
   [mem.structure_bytes] at run time. *)
let footprint_estimate name ~rows:n ~frame:w =
  let word = 8 in
  match name with
  | Naive -> 0
  | Mst | Mst_no_cascade ->
      (* one key per row per level, fanout-32 levels *)
      let rec levels acc cap = if cap >= n then acc else levels (acc + 1) (cap * 32) in
      n * word * max 1 (levels 0 1)
  | Segment_tree -> 2 * n * word (* boxed monoid values, ~2n nodes *)
  | Incremental | Incremental_serial -> 6 * w * word (* hash/sorted state over one frame *)
  | Order_statistic -> 3 * w * word (* counted B-tree over one frame *)
