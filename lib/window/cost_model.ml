(* Calibrated per-clause cost model (paper Figs. 10–12; Cao et al. frame
   per-clause algorithm choice as a planning decision).  Every eligible
   backend gets a predicted per-partition evaluation time in nanoseconds
   from a handful of per-primitive unit costs; [choose] picks the cheapest
   but only leaves the legacy default when the predicted total saving
   across all partitions clears [choice_floor_ns] — small inputs keep the
   exact historical plans (and their sharing counters, EXPLAIN goldens and
   fuzz behaviour) by construction.

   The unit costs are fitted by [bench/calibrate.ml] (micro-benchmarks of
   the actual structures) and committed here as a versioned table; rerun
   the calibration and paste its suggested literal to refit.  Decisions
   must stay deterministic across pool sizes — the inputs deliberately
   exclude the domain count, so the fuzz determinism leg's stats equality
   at 1/2/4 domains holds. *)

module Ec = Evaluator_choice

type constants = {
  version : int;
  mst_build_ns : float;  (* per row per tree level *)
  mst_probe_ns : float;  (* per probed row per tree level *)
  seg_build_ns : float;  (* per row *)
  seg_probe_ns : float;  (* per probed row per log2 n *)
  naive_row_ns : float;  (* per scanned frame row (plain scans, count_less) *)
  naive_hash_ns : float;  (* per frame row when each frame rebuilds a hash table *)
  naive_select_ns : float;  (* per frame row when each frame copies + quickselects *)
  inc_update_ns : float;  (* per incremental add/remove/result op *)
  sw_shift_ns : float;  (* per element shifted by a sorted-window memmove *)
  ost_update_ns : float;  (* per counted-B-tree op per log2 frame *)
  choice_floor_ns : float;  (* predicted total saving needed to leave the default *)
}

(* calibrate-v2, fitted on the CI baseline host (see EXPERIMENTS.md):
   bench/calibrate.ml, n = 262144, frames 64/4096.  The floor is sized so
   that sub-millisecond plans (unit tests, EXPLAIN goldens, the fuzz
   corpus) never leave the legacy defaults: the largest predicted saving
   on a ~600-row input is a few hundred microseconds. *)
let default =
  {
    version = 2;
    mst_build_ns = 57.8;
    mst_probe_ns = 420.4;
    seg_build_ns = 9.4;
    seg_probe_ns = 8.2;
    naive_row_ns = 1.46;
    naive_hash_ns = 23.1;
    naive_select_ns = 17.5;
    inc_update_ns = 58.0;
    sw_shift_ns = 1.44;
    ost_update_ns = 10.3;
    choice_floor_ns = 2_000_000.0;
  }

type inputs = {
  rows : int;  (* average partition rows *)
  nparts : int;
  frame_rows : float;  (* estimated average frame extent, in rows *)
  monotonic : bool;  (* both frame endpoints advance with the row *)
  holed : bool;
  cls : Ec.func_class;
  task_size : int;
  fanout : int;
}

(* ------------------------------------------------------------------ *)
(* Frame-shape estimation                                              *)
(* ------------------------------------------------------------------ *)

(* Crude by design: constant ROWS offsets are exact; a frame anchored at a
   partition edge averages n/2; bounded RANGE/GROUPS extents depend on the
   data so we guess a small fraction; data-dependent offsets additionally
   lose monotonicity (the incremental drivers then morph disjoint frames).
   Only relative order of the candidates matters, and the decision floor
   absorbs estimation error on small inputs. *)
let estimate_frame (spec : Window_spec.t) ~rows =
  let n = float_of_int (max 1 rows) in
  match spec.Window_spec.frame with
  | None -> (Float.max 1.0 (n /. 2.0), true) (* RANGE UNBOUNDED PRECEDING .. CURRENT ROW *)
  | Some f ->
      let const_off = function
        | Window_spec.Current_row -> Some 0
        | Window_spec.Preceding (Holistic_storage.Expr.Const (Holistic_storage.Value.Int k)) ->
            Some (-k)
        | Window_spec.Following (Holistic_storage.Expr.Const (Holistic_storage.Value.Int k)) ->
            Some k
        | _ -> None
      in
      let data_dep = function
        | Window_spec.Preceding e | Window_spec.Following e -> (
            match e with Holistic_storage.Expr.Const _ -> false | _ -> true)
        | _ -> false
      in
      let monotonic = not (data_dep f.start_bound || data_dep f.end_bound) in
      let edge_anchored =
        match (f.start_bound, f.end_bound) with
        | Window_spec.Unbounded_preceding, _ | _, Window_spec.Unbounded_following -> true
        | _ -> false
      in
      let w =
        match (f.start_bound, f.end_bound) with
        | Window_spec.Unbounded_preceding, Window_spec.Unbounded_following -> n
        | _ when f.mode = Window_spec.Rows -> (
            match (const_off f.start_bound, const_off f.end_bound) with
            | Some a, Some b -> Float.min n (float_of_int (max 1 (b - a + 1)))
            | _ -> if edge_anchored then n /. 2.0 else n /. 4.0)
        | _ -> if edge_anchored then n /. 2.0 else n /. 8.0
      in
      (Float.max 1.0 w, monotonic)

(* ------------------------------------------------------------------ *)
(* Per-backend cost                                                    *)
(* ------------------------------------------------------------------ *)

let mst_levels ~fanout n =
  let fanout = max 2 fanout in
  let rec go acc cap = if cap >= n then acc else go (acc + 1) (cap * fanout) in
  max 1 (go 0 1)

(* Predicted evaluation time for one partition, in nanoseconds.  [sunk]
   lists backends whose index structure is already cached for this item
   (a session kept it across queries): their build term is spent, so only
   probes count — which can flip a choice towards the structure that
   exists.  Only the structure-building backends have a build term. *)
let cost ?(sunk = []) c (i : inputs) name =
  let built = List.mem name sunk in
  let n = float_of_int (max 1 i.rows) in
  let w = Float.max 1.0 (Float.min n i.frame_rows) in
  let lg x = Float.log (Float.max 2.0 x) /. Float.log 2.0 in
  let lv = float_of_int (mst_levels ~fanout:i.fanout i.rows) in
  let tasks = float_of_int (max 1 ((i.rows + i.task_size - 1) / i.task_size)) in
  (* monotonic frames enter/leave each row once; otherwise the driver morphs
     between (possibly disjoint) frames, re-adding ~w rows per step *)
  let updates = if i.monotonic then 2.0 *. n else Float.min (2.0 *. n *. w) (2.0 *. n *. n) in
  (* every task restarts its state by inserting one frame from scratch *)
  let rebuilds = tasks *. w in
  (* what naive recomputation does per frame row differs sharply by class:
     plain scans stream, the distinct/mode classes rebuild a hash table per
     frame, the percentile classes copy and quickselect *)
  let naive_ns =
    match i.cls with
    | Ec.C_distinct_count | Ec.C_distinct_sum_avg | Ec.C_mode | Ec.C_dense_rank -> c.naive_hash_ns
    | Ec.C_select -> c.naive_select_ns
    | Ec.C_trivial_count | Ec.C_plain_agg | Ec.C_rank -> c.naive_row_ns
  in
  let build x = if built then 0.0 else x in
  match name with
  | Ec.Naive -> n *. w *. naive_ns
  | Ec.Segment_tree -> build (n *. c.seg_build_ns) +. (n *. lg n *. c.seg_probe_ns)
  | Ec.Mst -> build (n *. lv *. c.mst_build_ns) +. (n *. lv *. c.mst_probe_ns)
  | Ec.Mst_no_cascade ->
      (* no cascade samples: each probe re-binary-searches every level *)
      build (n *. lv *. c.mst_build_ns) +. (1.5 *. n *. lv *. c.mst_probe_ns)
  | Ec.Incremental | Ec.Incremental_serial ->
      let per_op =
        c.inc_update_ns
        +. (if i.cls = Ec.C_select then 0.5 *. w *. c.sw_shift_ns else 0.0)
      in
      (updates +. rebuilds) *. per_op
  | Ec.Order_statistic -> (updates +. rebuilds +. n) *. lg w *. c.ost_update_ns

(* ------------------------------------------------------------------ *)
(* Choice                                                              *)
(* ------------------------------------------------------------------ *)

(* What the planner picked before this model existed — the tie-keeper, and
   the pick whenever the predicted saving is inside the floor. *)
let legacy_default (cls : Ec.func_class) ~holed =
  match cls with
  | Ec.C_plain_agg -> Ec.Segment_tree
  | Ec.C_mode -> if holed then Ec.Naive else Ec.Incremental
  | _ -> Ec.Mst

(* The serial/no-cascade variants exist for the benchmark sweeps and the
   forced knobs; Auto never picks them (same answers, strictly dominated
   cost under the model). *)
let auto_candidates = [ Ec.Mst; Ec.Segment_tree; Ec.Naive; Ec.Incremental; Ec.Order_statistic ]

type decision = {
  chosen : Ec.name;
  default : Ec.name;
  scores : (Ec.name * float) list;  (* per-partition ns for every candidate, incl. chosen *)
}

let choose ?sunk c (i : inputs) =
  let default = legacy_default i.cls ~holed:i.holed in
  let cands = List.filter (fun n -> Ec.supports n i.cls ~holed:i.holed) auto_candidates in
  let cands = if List.mem default cands then cands else default :: cands in
  let scores = List.map (fun n -> (n, cost ?sunk c i n)) cands in
  let best, best_cost =
    List.fold_left
      (fun (bn, bc) (n, x) -> if x < bc then (n, x) else (bn, bc))
      (default, List.assoc default scores)
      scores
  in
  let saving = (List.assoc default scores -. best_cost) *. float_of_int (max 1 i.nparts) in
  let chosen = if saving > c.choice_floor_ns then best else default in
  { chosen; default; scores }
