(** Calibrated per-clause evaluator cost model.  [Window_plan] resolves
    every [Auto] item through {!choose} once per (stage, item) before
    evaluation; the constants are fitted by [bench/calibrate.ml] and
    committed in {!default} as a versioned table.  Decisions are
    deterministic functions of the inputs below — in particular they do
    not depend on the task pool's domain count, so plans (and their
    sharing stats) are identical at any parallelism. *)

type constants = {
  version : int;
  mst_build_ns : float;  (** per row per tree level *)
  mst_probe_ns : float;  (** per probed row per tree level *)
  seg_build_ns : float;  (** per row *)
  seg_probe_ns : float;  (** per probed row per log2 n *)
  naive_row_ns : float;  (** per scanned frame row (plain scans) *)
  naive_hash_ns : float;
      (** per frame row for the classes whose naive kernel rebuilds a hash
          table every frame (distinct counts/sums, mode, dense rank) *)
  naive_select_ns : float;
      (** per frame row for the percentile classes (copy + quickselect) *)
  inc_update_ns : float;  (** per incremental add/remove/result op *)
  sw_shift_ns : float;  (** per element shifted by a sorted-window memmove *)
  ost_update_ns : float;  (** per counted-B-tree op per log2 frame *)
  choice_floor_ns : float;
      (** predicted total saving (over all partitions) required before the
          choice leaves {!legacy_default}; keeps small inputs on the exact
          historical plans *)
}

val default : constants
(** The committed calibration table (see its version comment). *)

type inputs = {
  rows : int;  (** average partition rows *)
  nparts : int;
  frame_rows : float;  (** estimated average frame extent, in rows *)
  monotonic : bool;  (** both frame endpoints advance with the row *)
  holed : bool;
  cls : Evaluator_choice.func_class;
  task_size : int;
  fanout : int;
}

val estimate_frame : Window_spec.t -> rows:int -> float * bool
(** [(frame_rows, monotonic)] for a spec over an average partition of
    [rows] rows.  Constant ROWS offsets are exact; everything else is a
    documented crude fraction of the partition. *)

val mst_levels : fanout:int -> int -> int

val cost : ?sunk:Evaluator_choice.name list -> constants -> inputs -> Evaluator_choice.name -> float
(** Predicted evaluation time for one partition, in nanoseconds.  [sunk]
    lists backends whose index structure is already cached for the item
    (a {!Session} carried it across queries): their build term is treated
    as spent, leaving only probe cost. *)

val legacy_default : Evaluator_choice.func_class -> holed:bool -> Evaluator_choice.name
(** The pre-cost-model pick: segment tree for plain aggregates,
    incremental (naive when holed) for MODE, MST for everything else. *)

val auto_candidates : Evaluator_choice.name list
(** Backends Auto may pick (the serial/no-cascade variants are forced-only). *)

type decision = {
  chosen : Evaluator_choice.name;
  default : Evaluator_choice.name;
  scores : (Evaluator_choice.name * float) list;
      (** per-partition ns for every eligible candidate, incl. [chosen] *)
}

val choose : ?sunk:Evaluator_choice.name list -> constants -> inputs -> decision
(** The cheapest eligible backend, kept at {!legacy_default} unless the
    predicted total saving clears [choice_floor_ns].  [sunk] as in
    {!cost}: an already-cached structure's build cost is sunk, which can
    flip the choice towards reusing it. *)
