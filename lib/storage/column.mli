(** Typed columnar storage with NULL masks. *)

type data =
  | Ints of int array
  | Floats of float array
  | Strings of string array
  | Bools of bool array
  | Dates of int array

type t

val make : ?nulls:Holistic_util.Bitset.t -> data -> t
(** [nulls] marks NULL rows (set bit = NULL); it must match the data
    length. *)

val length : t -> int
val data : t -> data
val null_mask : t -> Holistic_util.Bitset.t option
val is_null : t -> int -> bool

val get : t -> int -> Value.t
(** Boxed row access (slow path; hot paths use {!data} directly). *)

val of_values : Value.t array -> t
(** Infers the column type from the first non-NULL value.
    @raise Invalid_argument on mixed types. *)

val ints : int array -> t
val floats : float array -> t
val strings : string array -> t
val dates : int array -> t

val float_at : t -> int -> float
(** Numeric read with Int→Float widening; NULL reads as [nan].
    @raise Invalid_argument for non-numeric columns. *)

val take : t -> int array -> t
(** [take c rows] gathers the given row indices into a fresh column
    (projection/selection support for the SQL layer). *)

val append : t -> t -> t
(** [append a b] concatenates two columns (the session-layer append path).
    Same-typed payloads blit; an Int/Float mix follows {!of_values}'s
    numeric promotion. @raise Invalid_argument on incompatible types. *)

val distinct_ids : t -> int array
(** Dense integer equality keys: two rows receive the same id iff their
    values are SQL-equal (NULLs all share one id; callers filter NULLs for
    NULL-ignoring semantics). For [Ints]/[Dates] columns this is the raw
    value; other types go through an exact hash table, so — unlike the
    paper's sort-the-hashes shortcut (§6.7) — hash collisions cannot corrupt
    distinct counts. *)

val footprint_bytes : t -> int
(** Reachable bytes of the column (data array, null bitset, string
    payloads) — the repo-wide memory-accounting contract.  Deterministic
    for a given column; strings shared {e within} the column count once. *)
