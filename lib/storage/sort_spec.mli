(** ORDER BY specifications and compiled row comparators. *)

type direction = Asc | Desc

type nulls_order =
  | Nulls_default  (** SQL default: NULLS LAST for ASC, NULLS FIRST for DESC *)
  | Nulls_first
  | Nulls_last

type key = { expr : Expr.t; direction : direction; nulls : nulls_order }

type t = key list

val asc : ?nulls:nulls_order -> Expr.t -> key
val desc : ?nulls:nulls_order -> Expr.t -> key

val key_to_string : key -> string

val to_string : t -> string
(** SQL-ish rendering ("x desc nulls first, y") for plans and traces. *)

val nulls_last_flag : key -> bool
(** Resolved NULL placement: [Nulls_default] means LAST for ASC, FIRST for
    DESC (the SQL default). *)

val comparator : Table.t -> t -> int -> int -> int
(** [comparator table spec] is a compiled total preorder on row indices:
    keys are evaluated once per comparison with column references resolved
    up front. *)

val key_comparator : Table.t -> key -> int -> int -> int
(** The single-key building block of {!comparator}: direction and NULL
    placement applied to one compiled expression. Exposed so multi-table
    sort pipelines (the key codec's residual) can mix keys resolved against
    different tables. *)

val single_int_key : Table.t -> t -> int array option
(** When the spec is a single ascending, plain integer-kinded column
    without NULLs, its raw key array — the fast path that skips
    comparator-based preprocessing. Any [nulls_order] spelling matches: on
    a NULL-free column they are all equivalent. *)

type fast_key = Int_key of int array * bool | Float_key of float array * bool
(** Raw key array plus a descending flag. *)

val fast_key : Table.t -> t -> fast_key option
(** Like {!single_int_key} but also matching descending order and float
    columns: lets preprocessing compare unboxed keys instead of evaluating
    expressions per comparison. NULL-bearing columns never match. *)
