type direction = Asc | Desc
type nulls_order = Nulls_default | Nulls_first | Nulls_last
type key = { expr : Expr.t; direction : direction; nulls : nulls_order }
type t = key list

let asc ?(nulls = Nulls_default) expr = { expr; direction = Asc; nulls }
let desc ?(nulls = Nulls_default) expr = { expr; direction = Desc; nulls }

let nulls_last_flag key =
  match key.nulls, key.direction with
  | Nulls_last, _ -> true
  | Nulls_first, _ -> false
  | Nulls_default, Asc -> true
  | Nulls_default, Desc -> false

let key_to_string key =
  Expr.to_string key.expr
  ^ (match key.direction with Asc -> "" | Desc -> " desc")
  ^ match key.nulls with
    | Nulls_default -> ""
    | Nulls_first -> " nulls first"
    | Nulls_last -> " nulls last"

let to_string spec = String.concat ", " (List.map key_to_string spec)

let key_comparator table key =
  let f = Expr.compile table key.expr in
  let nulls_last = nulls_last_flag key in
  let sign = match key.direction with Asc -> 1 | Desc -> -1 in
  fun i j ->
    let a = f i and b = f j in
    (* NULL placement is absolute (not flipped by DESC once resolved):
       compare non-nulls under the direction, place NULLs per flag. *)
    match Value.is_null a, Value.is_null b with
    | true, true -> 0
    | true, false -> if nulls_last then 1 else -1
    | false, true -> if nulls_last then -1 else 1
    | false, false -> sign * Value.compare_sql ~nulls_last:true a b

let comparator table spec =
  let compiled = List.map (key_comparator table) spec in
  fun i j ->
    let rec go = function
      | [] -> 0
      | f :: rest ->
          let c = f i j in
          if c <> 0 then c else go rest
    in
    go compiled

type fast_key = Int_key of int array * bool | Float_key of float array * bool

(* Both fast paths require the column to carry no NULLs, and on a NULL-free
   column every [nulls_order] is semantically identical — so an explicit
   NULLS LAST on ASC (or NULLS FIRST on DESC, or any other spelling) must
   not fall off the fast path. Only the column's data matters here. *)

let fast_key table spec =
  match spec with
  | [ { expr = Expr.Col name; direction; nulls = _ } ] -> begin
      match Table.column_opt table name with
      | Some c when Column.null_mask c = None -> begin
          let desc = direction = Desc in
          match Column.data c with
          | Column.Ints a | Column.Dates a -> Some (Int_key (a, desc))
          | Column.Floats a -> Some (Float_key (a, desc))
          | Column.Strings _ | Column.Bools _ -> None
        end
      | _ -> None
    end
  | _ -> None

let single_int_key table spec =
  match spec with
  | [ { expr = Expr.Col name; direction = Asc; nulls = _ } ] -> begin
      match Table.column_opt table name with
      | Some c when Column.null_mask c = None -> begin
          match Column.data c with
          | Column.Ints a | Column.Dates a -> Some a
          | Column.Floats _ | Column.Strings _ | Column.Bools _ -> None
        end
      | _ -> None
    end
  | _ -> None
