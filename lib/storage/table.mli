(** Named-column tables. *)

type t

val create : (string * Column.t) list -> t
(** @raise Invalid_argument on duplicate names or ragged column lengths. *)

val nrows : t -> int
val column_names : t -> string list

val column : t -> string -> Column.t
(** @raise Not_found for unknown names. *)

val column_opt : t -> string -> Column.t option
val add_column : t -> string -> Column.t -> t
val columns : t -> (string * Column.t) list

val gather : t -> int array -> t
(** Row selection: the table restricted to (and reordered by) the given row
    indices. *)

val append : t -> t -> t
(** [append t delta] concatenates [delta]'s rows below [t]'s. Both tables
    must have the same column names in the same order.
    @raise Invalid_argument otherwise. *)

val row_values : t -> int -> Value.t list

val print : ?max_rows:int -> ?out:out_channel -> t -> unit
(** Debug/CLI pretty printer. *)

val footprint_bytes : t -> int
(** Reachable bytes of the whole table in one traversal, so columns
    sharing arrays (e.g. after {!add_column}) count once. *)
