(** Sort-key compilation into order-preserving integer words.

    Compiles [(partition ids, ORDER BY spec)] into at most a handful of
    row-indexed 63-bit key words such that comparing rows word-by-word with
    [Int.compare] — and only then falling back to the [residual] comparator
    and a final ascending row-id tie-break — reproduces {e exactly} the
    permutation of the stable comparator sort
    ([Introsort.sort_indices_by ~cmp:(Sort_spec.comparator table spec)],
    with partition ids prepended when present). Encodings:

    - ints/dates pass through ([lnot] for DESC);
    - floats via a sign-magnitude bit flip matching [Stdlib.compare]
      (nan lowest, [-0. = +0.]), one word when all low bits are even, else
      a high word plus a one-bit word;
    - bools as 0/1, strings via a one-time densified rank of the distinct
      set;
    - NULLS FIRST/LAST as an extra slot (packed keys) or an extreme
      sentinel (full-range keys);
    - small-range keys are packed greedily into shared words, so a
      partitioned multi-column sort commonly needs one or two words.

    Keys whose values no word can express (intervals, mixed types, lossy
    int-in-float mixes, sentinel collisions) end the word chain: their word
    (if any) remains a correct coarsening, and [residual] decides from that
    key onward. Word arrays may alias column storage — treat them as
    read-only. *)

type source = { table : Table.t; key : Sort_spec.key }
(** One ORDER BY key together with the table its expression resolves
    against (multi-table specs arise in final ORDER BY over computed
    output columns). *)

type t = {
  n : int;  (** number of rows *)
  words : int array array;  (** row-indexed key words, most significant first *)
  residual : (int -> int -> int) option;
      (** comparator over the spec keys not fully expressed by words
          (from key [covered] onward); [None] when the words are exact *)
  pid_divisor : int option;
      (** present iff partition ids were supplied: [words.(0) / d] is a
          monotone image of the partition id, so partition boundaries can
          be read off the sorted leading word with no second pass *)
  covered : int;  (** spec keys fully decided by words *)
  total : int;  (** spec keys overall *)
}

val compile : ?pids:int array -> Table.t -> Sort_spec.t -> t
(** [compile ?pids table spec] compiles the spec against one table,
    with [pids] as a virtual leading no-NULL int key (its word-0 position
    is recorded in [pid_divisor]). @raise Not_found for unknown columns,
    like [Sort_spec.comparator]. *)

val compile_sources : n:int -> ?pids:int array -> source list -> t
(** Generalisation of {!compile} where each key resolves against its own
    table (all of [n] rows). *)

val comparator : t -> int -> int -> int
(** The compiled strict total order: words, then [residual], then
    ascending row id. Equals the stable comparator sort's order; useful
    for boundary-local re-sorts and parity tests. *)
