module Bitset = Holistic_util.Bitset

type data =
  | Ints of int array
  | Floats of float array
  | Strings of string array
  | Bools of bool array
  | Dates of int array

type t = { data : data; nulls : Bitset.t option }

let data_length = function
  | Ints a -> Array.length a
  | Floats a -> Array.length a
  | Strings a -> Array.length a
  | Bools a -> Array.length a
  | Dates a -> Array.length a

let make ?nulls data =
  (match nulls with
  | Some mask when Bitset.length mask <> data_length data ->
      invalid_arg "Column.make: null mask length mismatch"
  | _ -> ());
  { data; nulls }

let length t = data_length t.data
let data t = t.data
let null_mask t = t.nulls
let is_null t i = match t.nulls with None -> false | Some m -> Bitset.get m i

let get t i =
  if is_null t i then Value.Null
  else
    match t.data with
    | Ints a -> Value.Int a.(i)
    | Floats a -> Value.Float a.(i)
    | Strings a -> Value.String a.(i)
    | Bools a -> Value.Bool a.(i)
    | Dates a -> Value.Date a.(i)

let ints a = make (Ints a)
let floats a = make (Floats a)
let strings a = make (Strings a)
let dates a = make (Dates a)

let of_values values =
  let n = Array.length values in
  let nulls = Bitset.create n in
  let has_null = ref false in
  Array.iteri
    (fun i v ->
      if Value.is_null v then begin
        Bitset.set nulls i;
        has_null := true
      end)
    values;
  let first_non_null = Array.find_opt (fun v -> not (Value.is_null v)) values in
  let data =
    match first_non_null with
    | None | Some Value.Null | Some (Value.Int _) ->
        Ints (Array.map (function Value.Int x -> x | Value.Null -> 0 | _ -> invalid_arg "Column.of_values: mixed types") values)
    | Some (Value.Float _) ->
        Floats
          (Array.map
             (function
               | Value.Float x -> x
               | Value.Int x -> float_of_int x
               | Value.Null -> 0.0
               | _ -> invalid_arg "Column.of_values: mixed types")
             values)
    | Some (Value.String _) ->
        Strings
          (Array.map
             (function Value.String s -> s | Value.Null -> "" | _ -> invalid_arg "Column.of_values: mixed types")
             values)
    | Some (Value.Bool _) ->
        Bools
          (Array.map
             (function Value.Bool b -> b | Value.Null -> false | _ -> invalid_arg "Column.of_values: mixed types")
             values)
    | Some (Value.Date _) ->
        Dates
          (Array.map
             (function Value.Date d -> d | Value.Null -> 0 | _ -> invalid_arg "Column.of_values: mixed types")
             values)
    | Some (Value.Interval _) -> invalid_arg "Column.of_values: interval columns unsupported"
  in
  make ?nulls:(if !has_null then Some nulls else None) data

let float_at t i =
  if is_null t i then nan
  else
    match t.data with
    | Floats a -> a.(i)
    | Ints a -> float_of_int a.(i)
    | Dates a -> float_of_int a.(i)
    | Strings _ | Bools _ -> invalid_arg "Column.float_at: non-numeric column"

let take t rows =
  let gather : 'a. 'a array -> 'a array = fun a -> Array.map (fun i -> a.(i)) rows in
  let data =
    match t.data with
    | Ints a -> Ints (gather a)
    | Floats a -> Floats (gather a)
    | Strings a -> Strings (gather a)
    | Bools a -> Bools (gather a)
    | Dates a -> Dates (gather a)
  in
  let nulls =
    Option.map
      (fun m ->
        let m' = Bitset.create (Array.length rows) in
        Array.iteri (fun j i -> if Bitset.get m i then Bitset.set m' j) rows;
        m')
      t.nulls
  in
  make ?nulls data

(* Concatenation for the session append path: same-typed payloads are
   blitted; an Ints/Floats mix (or a typeless all-NULL prefix) follows
   [of_values]'s numeric-promotion rules via the boxed fallback. *)
let append a b =
  let n1 = length a and n2 = length b in
  let nulls =
    match a.nulls, b.nulls with
    | None, None -> None
    | _ ->
        let m = Bitset.create (n1 + n2) in
        for i = 0 to n1 - 1 do
          if is_null a i then Bitset.set m i
        done;
        for i = 0 to n2 - 1 do
          if is_null b i then Bitset.set m (n1 + i)
        done;
        Some m
  in
  match a.data, b.data with
  | Ints x, Ints y -> make ?nulls (Ints (Array.append x y))
  | Floats x, Floats y -> make ?nulls (Floats (Array.append x y))
  | Strings x, Strings y -> make ?nulls (Strings (Array.append x y))
  | Bools x, Bools y -> make ?nulls (Bools (Array.append x y))
  | Dates x, Dates y -> make ?nulls (Dates (Array.append x y))
  | _ -> of_values (Array.init (n1 + n2) (fun i -> if i < n1 then get a i else get b (i - n1)))

let distinct_ids t =
  let n = length t in
  let null_id = min_int in
  match t.data, t.nulls with
  | Ints a, None -> Array.copy a
  | Dates a, None -> Array.copy a
  | Ints a, Some m -> Array.init n (fun i -> if Bitset.get m i then null_id else a.(i))
  | Dates a, Some m -> Array.init n (fun i -> if Bitset.get m i then null_id else a.(i))
  | Bools a, _ -> Array.init n (fun i -> if is_null t i then null_id else if a.(i) then 1 else 0)
  | Floats a, _ ->
      let table = Hashtbl.create (2 * n) in
      Array.init n (fun i ->
          if is_null t i then null_id
          else
            match Hashtbl.find_opt table a.(i) with
            | Some id -> id
            | None ->
                let id = Hashtbl.length table in
                Hashtbl.add table a.(i) id;
                id)
  | Strings a, _ ->
      let table = Hashtbl.create (2 * n) in
      Array.init n (fun i ->
          if is_null t i then null_id
          else
            match Hashtbl.find_opt table a.(i) with
            | Some id -> id
            | None ->
                let id = Hashtbl.length table in
                Hashtbl.add table a.(i) id;
                id)

let footprint_bytes c = 8 * Obj.reachable_words (Obj.repr c)
