type t = { columns : (string * Column.t) list; nrows : int }

let create columns =
  let nrows = match columns with [] -> 0 | (_, c) :: _ -> Column.length c in
  List.iter
    (fun (name, c) ->
      if Column.length c <> nrows then
        invalid_arg (Printf.sprintf "Table.create: column %S has %d rows, expected %d" name (Column.length c) nrows))
    columns;
  let names = List.map fst columns in
  let sorted = List.sort_uniq compare names in
  if List.length sorted <> List.length names then invalid_arg "Table.create: duplicate column name";
  { columns; nrows }

let nrows t = t.nrows
let column_names t = List.map fst t.columns
let column_opt t name = List.assoc_opt name t.columns

let column t name =
  match column_opt t name with
  | Some c -> c
  | None -> raise Not_found

let add_column t name c =
  create (t.columns @ [ (name, c) ])

let columns t = t.columns

let gather t rows =
  { columns = List.map (fun (name, c) -> (name, Column.take c rows)) t.columns;
    nrows = Array.length rows }

let append t delta =
  if column_names t <> column_names delta then
    invalid_arg "Table.append: column names mismatch";
  create (List.map2 (fun (n, a) (_, b) -> (n, Column.append a b)) t.columns delta.columns)

let row_values t i = List.map (fun (_, c) -> Column.get c i) t.columns

let print ?(max_rows = 20) ?(out = stdout) t =
  let names = column_names t in
  let shown = min max_rows t.nrows in
  let rows = List.init shown (fun i -> List.map Value.to_string (row_values t i)) in
  let widths =
    List.mapi
      (fun c name ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) (String.length name) rows)
      names
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line cells = String.concat " | " (List.map2 pad cells widths) in
  Printf.fprintf out "%s\n" (line names);
  Printf.fprintf out "%s\n" (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Printf.fprintf out "%s\n" (line row)) rows;
  if shown < t.nrows then Printf.fprintf out "... (%d rows total)\n" t.nrows

let footprint_bytes t = 8 * Obj.reachable_words (Obj.repr t)
