module Bitset = Holistic_util.Bitset

type source = { table : Table.t; key : Sort_spec.key }

type t = {
  n : int;
  words : int array array;
  residual : (int -> int -> int) option;
  pid_divisor : int option;
  covered : int;
  total : int;
}

(* ------------------------------------------------------------------ *)
(* Per-key raw order codes                                             *)
(* ------------------------------------------------------------------ *)

(* One int code per row whose [Int.compare] order equals the key's order on
   non-NULL rows (direction already applied); NULL rows carry garbage codes
   and are placed by the packing step according to [nulls_first]. [exact]
   means code ties imply comparator ties; a non-exact code array is still a
   correct coarsening (code < implies value <), so its word remains useful
   for run sorting and OVC merging while the residual decides ties. *)
type raw = {
  codes : int array;
  nulls : Bitset.t option; (* None = no NULL rows *)
  nulls_first : bool;
  exact : bool;
}

let has_nulls r = match r.nulls with Some _ -> true | None -> false

let null_test = function
  | Some m -> fun i -> Bitset.get m i
  | None -> fun _ -> false

let normalize_mask = function Some m when Bitset.count m > 0 -> Some m | _ -> None

(* Sign-magnitude bit flip: a 64-bit int code whose signed order equals the
   float order under [Stdlib.compare] (nan below everything, nan = nan,
   -0. = +0.). Positive floats keep their bits; negative floats get
   [lognot bits lxor min_int] (reverses their bit order and parks them below
   all positives); nan takes a code below the -infinity image. *)

(* A float key costs one word when every scode is even (the arithmetic
   shift into OCaml's 63-bit int stays injective), two words otherwise:
   the high 63 bits, then the dropped low bit — both exact, and the low
   bit has span 2 so it packs with whatever follows. *)
let float_raws n get is_null nulls nulls_first desc =
  let hi = Array.make n 0 and lo = Array.make n 0 in
  let all_even = ref true in
  for i = 0 to n - 1 do
    if not (is_null i) then begin
      (* inlined [float_scode >> 1] and its low bit, in native-int arithmetic:
         the arithmetic shift commutes with the sign transform componentwise,
         so only the raw bit image touches boxed Int64 *)
      let f = get i in
      let h, bit =
        if Float.is_nan f then (Int64.to_int (Int64.shift_right (Int64.add Int64.min_int 2L) 1), 0)
        else begin
          let b = Int64.bits_of_float (if f = 0.0 then 0.0 else f) in
          let hib = Int64.to_int (Int64.shift_right b 1) in
          let lob = Int64.to_int b land 1 in
          if hib >= 0 then (hib, lob) else (lnot hib lxor min_int, lob lxor 1)
        end
      in
      hi.(i) <- (if desc then lnot h else h);
      lo.(i) <- (if desc then 1 - bit else bit);
      if bit <> 0 then all_even := false
    end
  done;
  let hi_raw = { codes = hi; nulls; nulls_first; exact = true } in
  if !all_even then [ hi_raw ]
  else [ hi_raw; { codes = lo; nulls; nulls_first; exact = true } ]

(* One-time densified rank of the distinct string set: dense codes both
   pack tighter and make the merge's OVC ties cheap. Byte order matches
   [Value.compare_sql] on strings ([Stdlib.compare]). *)
module String_tbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let string_ranks n get is_null =
  (* one hash lookup per row: rows get first-seen dense ids, only the
     distinct set is sorted, and an id->rank remap finishes the codes *)
  let tbl = String_tbl.create (max 256 (n / 8)) in
  let codes = Array.make n 0 in
  let distinct_rev = ref [] in
  let ndistinct = ref 0 in
  for i = 0 to n - 1 do
    if not (is_null i) then begin
      let s = get i in
      match String_tbl.find tbl s with
      | id -> codes.(i) <- id
      | exception Not_found ->
          let id = !ndistinct in
          String_tbl.add tbl s id;
          distinct_rev := s :: !distinct_rev;
          incr ndistinct;
          codes.(i) <- id
    end
  done;
  let d = !ndistinct in
  let by_id = Array.make d "" in
  List.iteri (fun k s -> by_id.(d - 1 - k) <- s) !distinct_rev;
  let order = Array.init d (fun i -> i) in
  Array.sort (fun a b -> String.compare by_id.(a) by_id.(b)) order;
  let rank = Array.make d 0 in
  Array.iteri (fun r id -> rank.(id) <- r) order;
  for i = 0 to n - 1 do
    if not (is_null i) then codes.(i) <- Array.unsafe_get rank (Array.unsafe_get codes i)
  done;
  codes

let max_exact_float_int = 9007199254740992 (* 2^53: float_of_int is injective below *)

let int_raw codes nulls nulls_first desc =
  [ { codes = (if desc then Array.map lnot codes else codes); nulls; nulls_first; exact = true } ]

(* Expression keys: evaluate once per row, then classify. Homogeneous
   Int/Date/Bool/String/Float domains encode exactly; an Int/Float mix
   encodes through the float image (exactly what the comparator compares
   through), which is exact unless some int exceeds 2^53 — then the high
   word is kept as a coarsening and the residual takes over. Anything
   else (intervals, mixed unrelated types) is inexpressible. *)
let raws_of_values n vals nulls_first desc =
  let has_bool = ref false
  and has_int = ref false
  and has_float = ref false
  and has_string = ref false
  and has_date = ref false
  and has_other = ref false
  and nnulls = ref 0 in
  Array.iter
    (function
      | Value.Null -> incr nnulls
      | Value.Bool _ -> has_bool := true
      | Value.Int _ -> has_int := true
      | Value.Float _ -> has_float := true
      | Value.String _ -> has_string := true
      | Value.Date _ -> has_date := true
      | Value.Interval _ -> has_other := true)
    vals;
  let nulls =
    if !nnulls = 0 then None
    else begin
      let m = Bitset.create n in
      Array.iteri (fun i v -> if Value.is_null v then Bitset.set m i) vals;
      Some m
    end
  in
  let is_null = null_test nulls in
  let classes =
    (if !has_bool then 1 else 0)
    + (if !has_string then 1 else 0)
    + (if !has_date then 1 else 0)
    + if !has_int || !has_float then 1 else 0
  in
  if !has_other || classes > 1 then None
  else if classes = 0 then
    (* all NULL: a constant key *)
    Some [ { codes = Array.make n 0; nulls; nulls_first; exact = true } ]
  else if !has_bool then
    let codes =
      Array.map (function Value.Bool true -> 1 | _ -> 0) vals
    in
    Some (int_raw codes nulls nulls_first desc)
  else if !has_string then begin
    let get i = match vals.(i) with Value.String s -> s | _ -> "" in
    let codes = string_ranks n get is_null in
    if desc then
      for i = 0 to n - 1 do
        codes.(i) <- lnot codes.(i)
      done;
    Some [ { codes; nulls; nulls_first; exact = true } ]
  end
  else if !has_date then
    let codes = Array.map (function Value.Date d -> d | _ -> 0) vals in
    Some (int_raw codes nulls nulls_first desc)
  else if not !has_float then
    let codes = Array.map (function Value.Int v -> v | _ -> 0) vals in
    Some (int_raw codes nulls nulls_first desc)
  else begin
    let int_lossy = ref false in
    let get i =
      match vals.(i) with
      | Value.Int v ->
          if v > max_exact_float_int || v < -max_exact_float_int then int_lossy := true;
          float_of_int v
      | Value.Float f -> f
      | _ -> 0.
    in
    let raws = float_raws n get is_null nulls nulls_first desc in
    if !int_lossy then
      (* keep only the high word, demoted to a coarsening *)
      match raws with r :: _ -> Some [ { r with exact = false } ] | [] -> None
    else Some raws
  end

let raws_of_key n table (key : Sort_spec.key) =
  let desc = key.direction = Sort_spec.Desc in
  let nulls_first = not (Sort_spec.nulls_last_flag key) in
  match key.expr with
  | Expr.Col name -> begin
      match Table.column_opt table name with
      | Some c -> begin
          let nulls = normalize_mask (Column.null_mask c) in
          let is_null = null_test nulls in
          match Column.data c with
          | Column.Ints a | Column.Dates a ->
              (* ASC without NULL flips aliases the column array: words are
                 read-only downstream *)
              Some (int_raw a nulls nulls_first desc)
          | Column.Bools a ->
              let codes = Array.map (fun b -> if b then 1 else 0) a in
              Some (int_raw codes nulls nulls_first desc)
          | Column.Floats a ->
              Some (float_raws n (fun i -> a.(i)) is_null nulls nulls_first desc)
          | Column.Strings a ->
              let codes = string_ranks n (fun i -> a.(i)) is_null in
              if desc then
                for i = 0 to n - 1 do
                  codes.(i) <- lnot codes.(i)
                done;
              Some [ { codes; nulls; nulls_first; exact = true } ]
        end
      | None ->
          (* unknown column: fail exactly like the comparator path *)
          raise Not_found
    end
  | expr ->
      let f = Expr.compile table expr in
      raws_of_values n (Array.init n f) nulls_first desc

(* ------------------------------------------------------------------ *)
(* Greedy word packing                                                 *)
(* ------------------------------------------------------------------ *)

let compile_sources ~n ?pids sources =
  let total = List.length sources in
  let words_rev = ref [] in
  let cur = ref None in
  let cap = ref 1 in
  let in_word0 = ref true in
  let pid_div = ref (match pids with Some _ -> Some 1 | None -> None) in
  let flush () =
    match !cur with
    | Some w ->
        words_rev := w :: !words_rev;
        cur := None;
        cap := 1;
        in_word0 := false
    | None -> ()
  in
  let emit_direct w =
    flush ();
    words_rev := w :: !words_rev;
    in_word0 := false
  in
  (* Returns the span of a raw when its codes can be range-normalised into
     a bounded slot, [None] when the key needs a word of its own. *)
  let span_of r =
    let is_null = null_test r.nulls in
    let mn = ref max_int and mx = ref min_int and seen = ref false in
    for i = 0 to n - 1 do
      if not (is_null i) then begin
        seen := true;
        let c = r.codes.(i) in
        if c < !mn then mn := c;
        if c > !mx then mx := c
      end
    done;
    if not !seen then Some (1, 0)
    else
      let d = !mx - !mn in
      (* d wraps negative whenever the true span exceeds the int range *)
      if d < 0 || d > max_int - 2 then None
      else Some ((d + 1 + if has_nulls r then 1 else 0), !mn)
  in
  let pack_raw r =
    let is_null = null_test r.nulls in
    match span_of r with
    | Some (span, base) ->
        if span > 1 then begin
          let shift = if has_nulls r && r.nulls_first then 1 else 0 in
          let null_slot = if r.nulls_first then 0 else span - 1 in
          let slot i = if is_null i then null_slot else r.codes.(i) - base + shift in
          match !cur with
          | Some w when !cap <= max_int / span ->
              for i = 0 to n - 1 do
                w.(i) <- (w.(i) * span) + slot i
              done;
              cap := !cap * span;
              if !in_word0 then pid_div := Option.map (fun d -> d * span) !pid_div
          | _ ->
              flush ();
              cur := Some (Array.init n slot);
              cap := span
        end
    | None ->
        (* Full-range codes take a word of their own: NULLs map to the
           extreme sentinels, and a (rare) sentinel collision with a real
           code demotes the key to a coarsening. *)
        if has_nulls r then begin
          let sentinel = if r.nulls_first then min_int else max_int in
          let w = Array.make n 0 in
          let collided = ref false in
          for i = 0 to n - 1 do
            if is_null i then w.(i) <- sentinel
            else begin
              let c = r.codes.(i) in
              if c = sentinel then collided := true;
              w.(i) <- c
            end
          done;
          emit_direct w;
          if !collided then raise Exit
        end
        else emit_direct r.codes
  in
  (* The partition ids are a virtual leading key without NULLs. Word 0 is
     forced to exist even for a single partition (span 1) so that
     [pid_divisor] always describes it: [word0 / pid_divisor] is a
     monotone image of the partition id. *)
  (match pids with
  | Some p ->
      if Array.length p <> n then invalid_arg "Key_codec.compile_sources: pids length";
      let mn = ref max_int and mx = ref min_int in
      Array.iter
        (fun v ->
          if v < !mn then mn := v;
          if v > !mx then mx := v)
        p;
      let d = if n = 0 then 0 else !mx - !mn in
      if d < 0 || d > max_int - 2 then emit_direct p
      else begin
        let base = if n = 0 then 0 else !mn in
        cur := Some (Array.map (fun v -> v - base) p);
        cap := d + 1
      end
  | None -> ());
  let covered = ref 0 in
  let stopped = ref false in
  List.iter
    (fun src ->
      if not !stopped then begin
        match raws_of_key n src.table src.key with
        | None -> stopped := true
        | Some raws -> begin
            try
              List.iter
                (fun r ->
                  if not !stopped then begin
                    pack_raw r;
                    if not r.exact then stopped := true
                  end)
                raws;
              if not !stopped then incr covered
            with Exit -> stopped := true
          end
      end)
    sources;
  flush ();
  let words = Array.of_list (List.rev !words_rev) in
  let residual =
    if !covered >= total then None
    else begin
      let rest = List.filteri (fun i _ -> i >= !covered) sources in
      let cmps = List.map (fun s -> Sort_spec.key_comparator s.table s.key) rest in
      Some
        (fun i j ->
          let rec go = function
            | [] -> 0
            | f :: fs ->
                let c = f i j in
                if c <> 0 then c else go fs
          in
          go cmps)
    end
  in
  { n; words; residual; pid_divisor = !pid_div; covered = !covered; total }

let compile ?pids table spec =
  compile_sources ~n:(Table.nrows table) ?pids (List.map (fun key -> { table; key }) spec)

let comparator t =
  let words = t.words and residual = t.residual in
  let nw = Array.length words in
  fun i j ->
    let rec go w =
      if w = nw then
        match residual with
        | Some r ->
            let c = r i j in
            if c <> 0 then c else Int.compare i j
        | None -> Int.compare i j
      else
        let ww = words.(w) in
        let c = Int.compare ww.(i) ww.(j) in
        if c <> 0 then c else go (w + 1)
    in
    go 0
