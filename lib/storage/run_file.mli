(** Binary files of sorted run entries for the external merge sort.

    A run file holds a sequence of fixed-stride entries, each [nwords]
    key words followed by one payload row id, all little-endian int64.
    Writes are buffered and strictly sequential; the 32-byte header
    carries a magic, the word count, the entry count, and a rolling
    checksum over every stored word, patched in on [finish].

    The reader validates the magic, the expected word count, the file
    size implied by the header (catching silent short writes), and the
    checksum once the last entry has been handed out. Any violation —
    and any OS-level IO failure — surfaces as {!Error}; no partial
    results escape. *)

exception Error of string
(** Raised on malformed files, checksum mismatches, short writes and
    any underlying [Unix]/[Sys] IO failure. The message names the file. *)

type writer
type t
type reader

(** {2 Writing} *)

val create : dir:string -> nwords:int -> writer
(** Starts a fresh run file in [dir] (a private temp name inside it).
    [nwords >= 1] is the number of key words per entry. *)

val append : writer -> key:int array -> koff:int -> payload:int -> unit
(** Appends one entry: [nwords] words read from [key] at [koff], then
    [payload]. *)

val finish : writer -> t
(** Flushes, patches the header (entry count + checksum), closes the
    descriptor and returns a handle for reading. *)

val abort : writer -> unit
(** Closes and deletes a partially-written run file. Never raises. *)

(** {2 Reading} *)

val path : t -> string
val entries : t -> int
val nwords : t -> int

val bytes : t -> int
(** Total file size in bytes, header included. *)

val open_reader : t -> reader

val read : reader -> buf:int array -> int
(** Fills [buf] with as many whole entries as fit (stride
    [nwords + 1]: words then payload, interleaved) and returns how many
    entries were read; [0] means end-of-file, at which point the
    checksum has been verified. *)

val close_reader : reader -> unit
(** Never raises. *)

val remove : t -> unit
(** Deletes the file. Never raises. *)

(** {2 Fault injection (tests only)}

    Hooks for exercising the failure paths: they apply to the next
    matching operation(s) process-wide and are cleared by [reset]. *)

module Fault : sig
  val enospc_after : int -> unit
  (** Fail (as if the device were full) after [n] more successful
      buffer flushes across all writers. *)

  val short_write : unit -> unit
  (** Silently truncate the next buffer flush, simulating a lost tail
      write that only the reader's size validation can catch. *)

  val flip_checksum : unit -> unit
  (** Corrupt the checksum stored by the next [finish]. *)

  val reset : unit -> unit
end
