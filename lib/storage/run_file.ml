(* Binary run files for the external merge sort: fixed-stride entries of
   [nwords] key words plus one payload row id, little-endian int64, behind
   a checksummed 32-byte header. IO is buffered and strictly sequential in
   both directions; every failure mode (OS error, truncation, corruption)
   is normalized to [Error] so callers see one clean exception. *)

exception Error of string

let err path fmt =
  Printf.ksprintf (fun m -> raise (Error (Printf.sprintf "run file %s: %s" path m))) fmt

let magic = "HWRUN1\x00\x00"
let header_bytes = 32
let buf_bytes = 65536

(* Rolling checksum over every stored word (keys and payloads alike), in
   write order. Plain int arithmetic: wraps deterministically. *)
let mix h w = (h * 31) + w

module Fault = struct
  let enospc_countdown = ref (-1)
  let short_next = ref false
  let flip_next = ref false
  let enospc_after n = enospc_countdown := n
  let short_write () = short_next := true
  let flip_checksum () = flip_next := true

  let reset () =
    enospc_countdown := -1;
    short_next := false;
    flip_next := false
end

type writer = {
  w_path : string;
  oc : out_channel;
  w_nwords : int;
  wbuf : Bytes.t;
  mutable pos : int; (* valid bytes in [wbuf] *)
  mutable w_entries : int;
  mutable sum : int;
  mutable w_closed : bool;
}

type t = { path : string; entries : int; nwords : int }

let path t = t.path
let entries t = t.entries
let nwords t = t.nwords
let bytes t = header_bytes + (t.entries * (t.nwords + 1) * 8)

let flush_buf w =
  if w.pos > 0 then begin
    if !Fault.enospc_countdown >= 0 then
      if !Fault.enospc_countdown = 0 then begin
        Fault.enospc_countdown := -1;
        err w.w_path "write failed: No space left on device"
      end
      else decr Fault.enospc_countdown;
    let len =
      if !Fault.short_next then begin
        Fault.short_next := false;
        w.pos / 2
      end
      else w.pos
    in
    (try output w.oc w.wbuf 0 len with Sys_error m -> err w.w_path "write failed: %s" m);
    w.pos <- 0
  end

let create ~dir ~nwords =
  if nwords < 1 then invalid_arg "Run_file.create: nwords must be >= 1";
  let path =
    try Filename.temp_file ~temp_dir:dir "hwrun" ".run"
    with Sys_error m -> raise (Error (Printf.sprintf "run file in %s: create failed: %s" dir m))
  in
  let oc =
    try open_out_gen [ Open_wronly; Open_binary; Open_trunc ] 0o600 path
    with Sys_error m -> err path "open failed: %s" m
  in
  let hb = Bytes.create header_bytes in
  Bytes.blit_string magic 0 hb 0 8;
  Bytes.set_int64_le hb 8 (Int64.of_int nwords);
  Bytes.set_int64_le hb 16 0L;
  Bytes.set_int64_le hb 24 0L;
  (try output_bytes oc hb with Sys_error m -> err path "write failed: %s" m);
  {
    w_path = path;
    oc;
    w_nwords = nwords;
    wbuf = Bytes.create buf_bytes;
    pos = 0;
    w_entries = 0;
    sum = 0;
    w_closed = false;
  }

let append w ~key ~koff ~payload =
  let stride8 = (w.w_nwords + 1) * 8 in
  if w.pos + stride8 > buf_bytes then flush_buf w;
  let p = ref w.pos in
  for i = 0 to w.w_nwords - 1 do
    let word = key.(koff + i) in
    Bytes.set_int64_le w.wbuf !p (Int64.of_int word);
    w.sum <- mix w.sum word;
    p := !p + 8
  done;
  Bytes.set_int64_le w.wbuf !p (Int64.of_int payload);
  w.sum <- mix w.sum payload;
  w.pos <- w.pos + stride8;
  w.w_entries <- w.w_entries + 1

let abort w =
  w.w_closed <- true;
  close_out_noerr w.oc;
  try Sys.remove w.w_path with _ -> ()

let finish w =
  if w.w_closed then invalid_arg "Run_file.finish: writer already closed";
  flush_buf w;
  let sum =
    if !Fault.flip_next then begin
      Fault.flip_next := false;
      lnot w.sum
    end
    else w.sum
  in
  (try
     seek_out w.oc 16;
     let hb = Bytes.create 16 in
     Bytes.set_int64_le hb 0 (Int64.of_int w.w_entries);
     Bytes.set_int64_le hb 8 (Int64.of_int sum);
     output_bytes w.oc hb;
     close_out w.oc
   with Sys_error m -> err w.w_path "finish failed: %s" m);
  w.w_closed <- true;
  { path = w.w_path; entries = w.w_entries; nwords = w.w_nwords }

type reader = {
  r : t;
  ic : in_channel;
  rbuf : Bytes.t;
  expect_sum : int;
  mutable remaining : int;
  mutable rsum : int;
  mutable verified : bool;
}

let read_header t ic =
  let hb = Bytes.create header_bytes in
  (try really_input ic hb 0 header_bytes with
  | End_of_file -> err t.path "truncated header"
  | Sys_error m -> err t.path "read failed: %s" m);
  if Bytes.sub_string hb 0 8 <> magic then err t.path "bad magic";
  let h_nwords = Int64.to_int (Bytes.get_int64_le hb 8) in
  let h_entries = Int64.to_int (Bytes.get_int64_le hb 16) in
  if h_nwords <> t.nwords then err t.path "word count mismatch (header %d, expected %d)" h_nwords t.nwords;
  if h_entries <> t.entries then
    err t.path "entry count mismatch (header %d, expected %d)" h_entries t.entries;
  Int64.to_int (Bytes.get_int64_le hb 24)

let open_reader t =
  let ic =
    try open_in_bin t.path with Sys_error m -> err t.path "open failed: %s" m
  in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () -> if not !ok then close_in_noerr ic)
    (fun () ->
      let actual = in_channel_length ic in
      if actual <> bytes t then err t.path "truncated (expected %d bytes, found %d)" (bytes t) actual;
      let expect_sum = read_header t ic in
      ok := true;
      { r = t; ic; rbuf = Bytes.create buf_bytes; expect_sum; remaining = t.entries; rsum = 0; verified = false })

let read r ~buf =
  let stride = r.r.nwords + 1 in
  let stride8 = stride * 8 in
  if r.remaining = 0 then begin
    if not r.verified then begin
      r.verified <- true;
      if r.rsum <> r.expect_sum then err r.r.path "checksum mismatch"
    end;
    0
  end
  else begin
    let capacity = Array.length buf / stride in
    if capacity = 0 then invalid_arg "Run_file.read: buffer smaller than one entry";
    let want = min r.remaining capacity in
    let per_chunk = max 1 (buf_bytes / stride8) in
    let filled = ref 0 in
    while !filled < want do
      let chunk = min per_chunk (want - !filled) in
      (try really_input r.ic r.rbuf 0 (chunk * stride8) with
      | End_of_file -> err r.r.path "unexpected end of file"
      | Sys_error m -> err r.r.path "read failed: %s" m);
      let base = !filled * stride in
      for e = 0 to (chunk * stride) - 1 do
        let word = Int64.to_int (Bytes.get_int64_le r.rbuf (e * 8)) in
        buf.(base + e) <- word;
        r.rsum <- mix r.rsum word
      done;
      filled := !filled + chunk
    done;
    r.remaining <- r.remaining - want;
    want
  end

let close_reader r = close_in_noerr r.ic

let remove t = try Sys.remove t.path with _ -> ()
