/* Monotonic clock for the observability layer.

   OCaml 5.1's bundled Unix library has no clock_gettime binding, and we
   must not pay the float boxing of Unix.gettimeofday on the span fast
   path, so this stub returns CLOCK_MONOTONIC nanoseconds as an unboxed
   OCaml int.  62 bits of nanoseconds is ~146 years of uptime, so Val_long
   truncation is not a concern. */

#include <time.h>
#include <caml/mlvalues.h>

value holistic_obs_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
