(** Low-overhead execution tracing: nested monotonic-clock spans, named
    counters, log-bucketed latency histograms, per-span memory accounting,
    a process-wide registry, a plan-tree renderer and Chrome [trace_event]
    JSON export.

    The overhead contract: when tracing is disabled (the default), every
    entry point costs one atomic load and returns — no clock reads, no GC
    sampling, no buffer writes, no formatting.  Argument lists and byte
    counts are therefore passed as thunks ([?args], {!record_bytes}) that
    are only forced with tracing on.  Instrumentation sits at
    partition/stage granularity, never per row, so even the call-site
    closure allocations are negligible (see DESIGN.md "Observability" and
    "Resource observability"). *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds since an arbitrary origin. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val span : ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; with tracing enabled it records a span
    covering the call, parented under the innermost open span of the
    current domain.  [args] is forced once, when the span finishes.  The
    span is closed (and recorded) even if [f] raises.

    Each enabled span also samples [Gc.quick_stat] at entry and exit and
    stores the deltas: words allocated ([alloc_w], minor + direct-major,
    promotions not double-counted), words promoted and major collections
    finished during the span.  The counters are per-domain — work a span
    hands to pool workers is accounted to the workers' own spans. *)

val annotate : (string * string) list -> unit
(** Append key/value arguments to the innermost open span of the current
    domain.  No-op when tracing is disabled or no span is open. *)

val record_bytes : (unit -> int) -> unit
(** [record_bytes f] adds [f ()] bytes to the innermost open span of the
    current domain — the footprint of a structure the span just built.
    The thunk is only forced with tracing on, so call sites may use
    [Obj.reachable_words]-based accounting freely.  No-op when disabled
    or no span is open. *)

module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Find-or-create the counter registered under this name.  Counters
      are process-wide; [make] at module-initialisation time is free.
      [help] is the metric's description for the metrics exporter; a
      non-empty [help] on a later [make] of the same name replaces the
      stored one (so find-or-create callers without a description never
      erase it). *)

  val name : t -> string

  val help : t -> string

  val add : t -> int -> unit
  (** Gated: no-op while tracing is disabled. *)

  val add_always : t -> int -> unit
  (** Ungated: for statistics that must stay on regardless of tracing
      (e.g. the OVC merge stats asserted by benches and tests). *)

  val incr : t -> unit
  val value : t -> int
  val set : t -> int -> unit

  val snapshot : unit -> (string * int) list
  (** All registered counters with their current values, sorted by name. *)

  val reset_all : unit -> unit
end

module Histogram : sig
  (** Process-wide registered log-bucketed histograms for latency (or any
      non-negative integer) distributions.  HDR-style bucketing with 16
      sub-buckets per power of two: values 0–15 are exact, larger values
      quantise with < 1/16 relative error, and 960 buckets cover the whole
      non-negative [int] range.  Recording takes a per-histogram mutex —
      fine at stage granularity, not meant for per-row use. *)

  type t

  type summary = {
    count : int;
    sum : int;
    min : int;
    max : int;
    p50 : int;
    p90 : int;
    p99 : int;
  }

  val make : ?help:string -> string -> t
  (** Find-or-create the histogram registered under this name; [help] as
      in {!Counter.make}. *)

  val name : t -> string

  val help : t -> string

  val add : t -> int -> unit
  (** Gated: no-op while tracing is disabled (same one-atomic-load fast
      path as {!Counter.add}).  Negative values clamp to 0. *)

  val add_always : t -> int -> unit
  (** Ungated: always records, e.g. for bench harness timing loops that
      run with tracing off. *)

  val count : t -> int

  val quantile : t -> float -> int
  (** [quantile h q] for [q ∈ (0, 1]]: the smallest recorded bucket whose
      cumulative count reaches [q·count], reported as the bucket's lower
      bound clamped into [[min, max]] — a conservative (never
      over-reporting) estimate, exact for values < 16.  0 when empty. *)

  val summary : t -> summary

  val merge : into:t -> t -> unit
  (** Fold [src]'s recorded values into [into] (e.g. per-domain histograms
      into a global one).  Merging a histogram into itself is a no-op. *)

  val reset : t -> unit

  val snapshot : unit -> (string * summary) list
  (** All registered histograms with at least one recorded value, sorted
      by name. *)

  val reset_all : unit -> unit

  (**/**)

  (* Exposed for white-box tests and bucket-layout tooling. *)
  val bucket_count : int
  val bucket_of_value : int -> int
  val bucket_lower_bound : int -> int

  (**/**)
end

module Gauge : sig
  (** Pull-model gauges: a registered name plus a sampling callback, read
      only when a metrics snapshot is taken.  Nothing in the query path
      touches a gauge, so their disabled-mode cost is exactly zero.
      Re-registering a name replaces the callback (last registration
      wins) — e.g. each new [Session] takes over the [session.*] gauges. *)

  type t

  val register : ?help:string -> string -> (unit -> int) -> t
  (** [register name read] registers (or re-points) the gauge [name] at
      the callback [read].  [help] as in {!Counter.make}. *)

  val name : t -> string
  val help : t -> string

  val value : t -> int
  (** Sample the callback now.  A raising callback reads as 0. *)

  val snapshot : unit -> (string * int) list
  (** All registered gauges sampled now, sorted by name.  Callbacks run
      outside the registry lock. *)
end

module Windowed_histogram : sig
  (** Sliding-window latency quantiles: a ring of [slots] log-bucketed
      histogram slices, each covering a fixed span of nanoseconds
      ({!Last_ns}) or of recorded events ({!Last_events}).  When the ring
      wraps onto an expired slice its buckets are zeroed in one
      O(bucket_count) pass — bulk eviction, never per-sample deletion —
      and summaries merge only the slices still inside the window, so
      p50/p90/p99 cover "the last N seconds" / "the last k events" with
      at most one slice of slack.  Same bucketing (and therefore the same
      conservative quantile semantics) as {!Histogram}; {!add} keeps the
      one-atomic-load disabled contract. *)

  type t

  type window =
    | Last_ns of int  (** window covers this many trailing nanoseconds *)
    | Last_events of int  (** window covers this many trailing records *)

  val make : ?help:string -> ?slots:int -> window:window -> string -> t
  (** Find-or-create.  [slots] (default 16, min 2) is the ring size; each
      slice covers [window / slots], so a larger [slots] trades memory
      (960 buckets per slice) for finer expiry granularity.  The window
      of an existing registration is kept. *)

  val name : t -> string
  val help : t -> string
  val window : t -> window

  val window_label : t -> string
  (** ["30s"], ["1500ms"], ["1024ev"] — the [window] label the exporter
      attaches to this metric's samples. *)

  val add : t -> int -> unit
  (** Gated: no-op while tracing is disabled (one atomic load — no clock
      read, no lock). *)

  val add_always : t -> int -> unit
  (** Ungated: always records, stamping the sample with {!now_ns}. *)

  val add_always_at : t -> now_ns:int -> int -> unit
  (** Ungated record with an explicit clock reading — deterministic
      expiry for tests.  Event-count windows ignore the clock. *)

  val summary : t -> Histogram.summary
  (** Merged summary of the slices inside the window as of now.  Slices
      that aged out without being overwritten are excluded (time windows
      expire by clock even when no new samples arrive). *)

  val summary_at : t -> now_ns:int -> Histogram.summary
  val quantile : t -> float -> int
  val quantile_at : t -> now_ns:int -> float -> int

  val events : t -> int
  (** Total records ever added (not just those still in the window). *)

  val evictions : t -> int
  (** Expired slices bulk-zeroed so far. *)

  val reset : t -> unit

  val snapshot : unit -> (string * Histogram.summary) list
  (** All registered windowed histograms with a non-empty live window,
      sorted by name. *)

  val reset_all : unit -> unit
end

type span = {
  id : int;
  parent : int;  (** -1 for roots *)
  name : string;
  tid : int;  (** domain id *)
  t0_ns : int;
  mutable dur_ns : int;
  mutable args : (string * string) list;
  mutable alloc_w : int;  (** words allocated during the span (this domain) *)
  mutable promoted_w : int;  (** words promoted minor→major during the span *)
  mutable majors : int;  (** major collections finished during the span *)
  mutable bytes : int;  (** structure bytes attributed via {!record_bytes} *)
}

type trace = {
  spans : span list;  (** in start order: parents precede children *)
  counters : (string * int) list;  (** non-zero registered counters *)
  hists : (string * Histogram.summary) list;  (** non-empty histograms *)
  dropped : int;  (** spans lost to the bounded buffer *)
}

val capture : unit -> trace
val reset : unit -> unit
(** Clear the span buffer, zero every registered counter and reset every
    registered histogram. *)

val clear_spans : unit -> unit
(** Clear only the bounded span buffer, leaving counters, histograms and
    windowed histograms untouched — for collectors (the query log) that
    enable tracing per query without wiping the process-lifetime
    registries the metrics endpoint exports. *)

val with_capture : (unit -> 'a) -> 'a * trace
(** [with_capture f]: reset, enable, run [f], capture, restore the
    previous enabled state.  The trace contains exactly the spans,
    counter increments and histogram records of this run. *)

val totals : trace -> (string * (int * float)) list
(** Per span name, in first-appearance order: (count, total seconds).
    Nested spans of the same name double-count; see {!self_totals}. *)

val self_totals : trace -> (string * (int * float)) list
(** Per span name, in first-appearance order: (count, total {e self}
    seconds — each span's duration minus its direct children's).  Unlike
    {!totals} this neither double-counts nested same-name spans nor
    attributes a child's time to its parent, so the values sum to the
    roots' wall time; used by [bench/profile.ml] phase breakdowns. *)

val human_bytes : int -> string
(** ["842 B"], ["1.4 KB"], ["26.0 MB"], ... — deterministic for a given
    byte count (used for the render memory column and EXPLAIN ANALYZE). *)

val render : trace -> string
(** Plan-tree rendering: spans indented under their parents, sibling
    spans with identical (name, args) aggregated into one [xN] line, and
    per line three columns — wall time, structure bytes recorded via
    {!record_bytes} ([-] when none), and allocated words.  A trailing
    counter table and histogram table follow.  Times, [_ns]-suffixed
    counters/histograms and allocation figures print as ["%.3f ms"] /
    ["%.1f kw"] so tests can mask them with a regexp; structure bytes are
    deterministic and left unmasked. *)

val json_escape : string -> string
(** JSON string-content escaping (quotes, backslash, control characters)
    shared by the Chrome export, the metrics JSON and the query log. *)

val to_chrome_json : trace -> string
(** Chrome [trace_event] JSON (open in chrome://tracing or Perfetto):
    spans as ph="X" complete events with tid = domain id and
    alloc/bytes/GC args when non-zero, counters as a final ph="C"
    event. *)

val write_chrome_trace : string -> trace -> unit

module Metrics : sig
  (** One coherent snapshot of every registered metric — counters,
      sampled gauges, cumulative histograms and windowed histograms, each
      with its help string — renderable as Prometheus text exposition or
      as a [holiwin-metrics/1] JSON document.  Surfaced by the
      [holiwin metrics] subcommand and the session REPL. *)

  type t = {
    counters : (string * string * int) list;  (** name, help, value *)
    gauges : (string * string * int) list;
    histograms : (string * string * Histogram.summary) list;
    windows : (string * string * string * Histogram.summary) list;
        (** name, help, window label, live-window summary *)
  }

  val snapshot : unit -> t
  (** Sample everything now, each section sorted by name.  Unlike
      {!capture} this includes zero counters and empty histograms —
      a scrape endpoint exposes the full inventory. *)

  val filter : (string -> bool) -> t -> t
  (** Keep only metrics whose name satisfies the predicate (deterministic
      goldens filter to a test-owned prefix). *)

  val inventory : t -> (string * string * string) list
  (** [(kind, name, help)] for every metric in the snapshot; the
      help-string lint iterates this. *)

  val to_prometheus : ?stamp_ms:int -> t -> string
  (** Prometheus text exposition: dotted names are sanitised under a
      [holiwin_] prefix, counters/gauges carry [# HELP]/[# TYPE] headers,
      histograms render as summaries with [quantile] labels plus
      [_sum]/[_count], windowed histograms add a [window="..."] label.
      [stamp_ms] (wall clock, supplied by the caller — this library reads
      only the monotonic clock) prepends a snapshot-time comment. *)

  val to_json : ?stamp_ms:int -> t -> string
  (** The same snapshot as a single-line [holiwin-metrics/1] JSON object:
      [{"schema":"holiwin-metrics/1","counters":{name:{help,value}},
      "gauges":{...},"histograms":{name:{help,count,sum,min,max,p50,p90,
      p99}},"windows":{name:{...,"window":label}}}]. *)
end
