(** Low-overhead execution tracing: nested monotonic-clock spans, named
    counters, a process-wide registry, a plan-tree renderer and Chrome
    [trace_event] JSON export.

    The overhead contract: when tracing is disabled (the default), every
    entry point costs one atomic load and returns — no clock reads, no
    buffer writes, no formatting.  Argument lists are therefore passed as
    thunks ([?args]) that are only forced when a span finishes with
    tracing on.  Instrumentation sits at partition/stage granularity,
    never per row, so even the call-site closure allocations are
    negligible (see DESIGN.md "Observability"). *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds since an arbitrary origin. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val span : ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; with tracing enabled it records a span
    covering the call, parented under the innermost open span of the
    current domain.  [args] is forced once, when the span finishes.  The
    span is closed (and recorded) even if [f] raises. *)

val annotate : (string * string) list -> unit
(** Append key/value arguments to the innermost open span of the current
    domain.  No-op when tracing is disabled or no span is open. *)

module Counter : sig
  type t

  val make : string -> t
  (** Find-or-create the counter registered under this name.  Counters
      are process-wide; [make] at module-initialisation time is free. *)

  val name : t -> string

  val add : t -> int -> unit
  (** Gated: no-op while tracing is disabled. *)

  val add_always : t -> int -> unit
  (** Ungated: for statistics that must stay on regardless of tracing
      (e.g. the OVC merge stats asserted by benches and tests). *)

  val incr : t -> unit
  val value : t -> int
  val set : t -> int -> unit

  val snapshot : unit -> (string * int) list
  (** All registered counters with their current values, sorted by name. *)

  val reset_all : unit -> unit
end

type span = {
  id : int;
  parent : int;  (** -1 for roots *)
  name : string;
  tid : int;  (** domain id *)
  t0_ns : int;
  mutable dur_ns : int;
  mutable args : (string * string) list;
}

type trace = {
  spans : span list;  (** in start order: parents precede children *)
  counters : (string * int) list;  (** non-zero registered counters *)
  dropped : int;  (** spans lost to the bounded buffer *)
}

val capture : unit -> trace
val reset : unit -> unit
(** Clear the span buffer and zero every registered counter. *)

val with_capture : (unit -> 'a) -> 'a * trace
(** [with_capture f]: reset, enable, run [f], capture, restore the
    previous enabled state.  The trace contains exactly the spans and
    counter increments of this run. *)

val totals : trace -> (string * (int * float)) list
(** Per span name, in first-appearance order: (count, total seconds).
    Nested spans of the same name double-count; intended for flat phase
    breakdowns like [bench/profile.ml]. *)

val render : trace -> string
(** Plan-tree rendering: spans indented under their parents, sibling
    spans with identical (name, args) aggregated into one [xN] line, a
    trailing counter table.  Times (and [_ns]-suffixed counters) print as
    ["%.3f ms"] so tests can mask them with a regexp. *)

val to_chrome_json : trace -> string
(** Chrome [trace_event] JSON (open in chrome://tracing or Perfetto):
    spans as ph="X" complete events with tid = domain id, counters as a
    final ph="C" event. *)

val write_chrome_trace : string -> trace -> unit
