(** Low-overhead execution tracing: nested monotonic-clock spans, named
    counters, log-bucketed latency histograms, per-span memory accounting,
    a process-wide registry, a plan-tree renderer and Chrome [trace_event]
    JSON export.

    The overhead contract: when tracing is disabled (the default), every
    entry point costs one atomic load and returns — no clock reads, no GC
    sampling, no buffer writes, no formatting.  Argument lists and byte
    counts are therefore passed as thunks ([?args], {!record_bytes}) that
    are only forced with tracing on.  Instrumentation sits at
    partition/stage granularity, never per row, so even the call-site
    closure allocations are negligible (see DESIGN.md "Observability" and
    "Resource observability"). *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds since an arbitrary origin. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val span : ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; with tracing enabled it records a span
    covering the call, parented under the innermost open span of the
    current domain.  [args] is forced once, when the span finishes.  The
    span is closed (and recorded) even if [f] raises.

    Each enabled span also samples [Gc.quick_stat] at entry and exit and
    stores the deltas: words allocated ([alloc_w], minor + direct-major,
    promotions not double-counted), words promoted and major collections
    finished during the span.  The counters are per-domain — work a span
    hands to pool workers is accounted to the workers' own spans. *)

val annotate : (string * string) list -> unit
(** Append key/value arguments to the innermost open span of the current
    domain.  No-op when tracing is disabled or no span is open. *)

val record_bytes : (unit -> int) -> unit
(** [record_bytes f] adds [f ()] bytes to the innermost open span of the
    current domain — the footprint of a structure the span just built.
    The thunk is only forced with tracing on, so call sites may use
    [Obj.reachable_words]-based accounting freely.  No-op when disabled
    or no span is open. *)

module Counter : sig
  type t

  val make : string -> t
  (** Find-or-create the counter registered under this name.  Counters
      are process-wide; [make] at module-initialisation time is free. *)

  val name : t -> string

  val add : t -> int -> unit
  (** Gated: no-op while tracing is disabled. *)

  val add_always : t -> int -> unit
  (** Ungated: for statistics that must stay on regardless of tracing
      (e.g. the OVC merge stats asserted by benches and tests). *)

  val incr : t -> unit
  val value : t -> int
  val set : t -> int -> unit

  val snapshot : unit -> (string * int) list
  (** All registered counters with their current values, sorted by name. *)

  val reset_all : unit -> unit
end

module Histogram : sig
  (** Process-wide registered log-bucketed histograms for latency (or any
      non-negative integer) distributions.  HDR-style bucketing with 16
      sub-buckets per power of two: values 0–15 are exact, larger values
      quantise with < 1/16 relative error, and 960 buckets cover the whole
      non-negative [int] range.  Recording takes a per-histogram mutex —
      fine at stage granularity, not meant for per-row use. *)

  type t

  type summary = {
    count : int;
    sum : int;
    min : int;
    max : int;
    p50 : int;
    p90 : int;
    p99 : int;
  }

  val make : string -> t
  (** Find-or-create the histogram registered under this name. *)

  val name : t -> string

  val add : t -> int -> unit
  (** Gated: no-op while tracing is disabled (same one-atomic-load fast
      path as {!Counter.add}).  Negative values clamp to 0. *)

  val add_always : t -> int -> unit
  (** Ungated: always records, e.g. for bench harness timing loops that
      run with tracing off. *)

  val count : t -> int

  val quantile : t -> float -> int
  (** [quantile h q] for [q ∈ (0, 1]]: the smallest recorded bucket whose
      cumulative count reaches [q·count], reported as the bucket's lower
      bound clamped into [[min, max]] — a conservative (never
      over-reporting) estimate, exact for values < 16.  0 when empty. *)

  val summary : t -> summary

  val merge : into:t -> t -> unit
  (** Fold [src]'s recorded values into [into] (e.g. per-domain histograms
      into a global one).  Merging a histogram into itself is a no-op. *)

  val reset : t -> unit

  val snapshot : unit -> (string * summary) list
  (** All registered histograms with at least one recorded value, sorted
      by name. *)

  val reset_all : unit -> unit

  (**/**)

  (* Exposed for white-box tests and bucket-layout tooling. *)
  val bucket_count : int
  val bucket_of_value : int -> int
  val bucket_lower_bound : int -> int

  (**/**)
end

type span = {
  id : int;
  parent : int;  (** -1 for roots *)
  name : string;
  tid : int;  (** domain id *)
  t0_ns : int;
  mutable dur_ns : int;
  mutable args : (string * string) list;
  mutable alloc_w : int;  (** words allocated during the span (this domain) *)
  mutable promoted_w : int;  (** words promoted minor→major during the span *)
  mutable majors : int;  (** major collections finished during the span *)
  mutable bytes : int;  (** structure bytes attributed via {!record_bytes} *)
}

type trace = {
  spans : span list;  (** in start order: parents precede children *)
  counters : (string * int) list;  (** non-zero registered counters *)
  hists : (string * Histogram.summary) list;  (** non-empty histograms *)
  dropped : int;  (** spans lost to the bounded buffer *)
}

val capture : unit -> trace
val reset : unit -> unit
(** Clear the span buffer, zero every registered counter and reset every
    registered histogram. *)

val with_capture : (unit -> 'a) -> 'a * trace
(** [with_capture f]: reset, enable, run [f], capture, restore the
    previous enabled state.  The trace contains exactly the spans,
    counter increments and histogram records of this run. *)

val totals : trace -> (string * (int * float)) list
(** Per span name, in first-appearance order: (count, total seconds).
    Nested spans of the same name double-count; see {!self_totals}. *)

val self_totals : trace -> (string * (int * float)) list
(** Per span name, in first-appearance order: (count, total {e self}
    seconds — each span's duration minus its direct children's).  Unlike
    {!totals} this neither double-counts nested same-name spans nor
    attributes a child's time to its parent, so the values sum to the
    roots' wall time; used by [bench/profile.ml] phase breakdowns. *)

val human_bytes : int -> string
(** ["842 B"], ["1.4 KB"], ["26.0 MB"], ... — deterministic for a given
    byte count (used for the render memory column and EXPLAIN ANALYZE). *)

val render : trace -> string
(** Plan-tree rendering: spans indented under their parents, sibling
    spans with identical (name, args) aggregated into one [xN] line, and
    per line three columns — wall time, structure bytes recorded via
    {!record_bytes} ([-] when none), and allocated words.  A trailing
    counter table and histogram table follow.  Times, [_ns]-suffixed
    counters/histograms and allocation figures print as ["%.3f ms"] /
    ["%.1f kw"] so tests can mask them with a regexp; structure bytes are
    deterministic and left unmasked. *)

val to_chrome_json : trace -> string
(** Chrome [trace_event] JSON (open in chrome://tracing or Perfetto):
    spans as ph="X" complete events with tid = domain id and
    alloc/bytes/GC args when non-zero, counters as a final ph="C"
    event. *)

val write_chrome_trace : string -> trace -> unit
