external now_ns : unit -> int = "holistic_obs_now_ns" [@@noalloc]

type span = {
  id : int;
  parent : int;
  name : string;
  tid : int;
  t0_ns : int;
  mutable dur_ns : int;
  mutable args : (string * string) list;
  mutable alloc_w : int;
  mutable promoted_w : int;
  mutable majors : int;
  mutable bytes : int;
}

(* The enabled flag is the whole fast-path contract: every tracing entry
   point loads it first and bails, so a disabled build pays one atomic
   read (a plain load on x86/arm) and whatever closures the call site
   itself allocates. *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* Bounded global buffer of finished-or-running spans, newest first.  A
   mutex (not a lock-free structure) is fine here: spans are recorded at
   partition/stage granularity, never per row. *)
let buf_mutex = Mutex.create ()
let buf : span list ref = ref []
let buf_len = ref 0
let buf_dropped = ref 0
let max_spans = 1 lsl 18
let next_id = Atomic.make 0

let record s =
  Mutex.lock buf_mutex;
  if !buf_len >= max_spans then incr buf_dropped
  else begin
    buf := s :: !buf;
    incr buf_len
  end;
  Mutex.unlock buf_mutex

(* Per-domain stack of open spans, for parent links and [annotate]. *)
let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let span ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> -1 | p :: _ -> p.id in
    let s =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        tid = (Domain.self () :> int);
        t0_ns = now_ns ();
        dur_ns = 0;
        args = [];
        alloc_w = 0;
        promoted_w = 0;
        majors = 0;
        bytes = 0;
      }
    in
    (* Recorded at start so nesting order in the buffer is start order
       (parents strictly before children), which [render] relies on. *)
    record s;
    stack := s :: !stack;
    (* GC deltas are sampled only inside the enabled branch, keeping the
       one-atomic-load disabled contract.  [Gc.minor_words] reads the
       domain's precise allocation pointer ([Gc.quick_stat]'s minor tally
       only advances at minor collections, which would attribute whole
       minor heaps to whichever span a collection lands in); the major
       and promotion tallies come from [quick_stat].  Neither forces a
       collection.  Work that the span offloads to pool workers on other
       domains is attributed to those workers' spans, not to this one. *)
    let g0 = Gc.quick_stat () in
    let m0 = Gc.minor_words () in
    let finish () =
      s.dur_ns <- now_ns () - s.t0_ns;
      let minor = Gc.minor_words () -. m0 in
      let g1 = Gc.quick_stat () in
      let major = g1.Gc.major_words -. g0.Gc.major_words in
      let promoted = g1.Gc.promoted_words -. g0.Gc.promoted_words in
      (* words freshly allocated: minor + direct-to-major, not counting
         promotions twice (promoted words appear in both tallies) *)
      s.alloc_w <- int_of_float (minor +. major -. promoted);
      s.promoted_w <- int_of_float promoted;
      s.majors <- g1.Gc.major_collections - g0.Gc.major_collections;
      (match args with None -> () | Some g -> s.args <- s.args @ g ());
      match !stack with _ :: tl -> stack := tl | [] -> ()
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let annotate kvs =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | s :: _ -> s.args <- s.args @ kvs
    | [] -> ()

let record_bytes f =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | s :: _ -> s.bytes <- s.bytes + f ()
    | [] -> ()

module Counter = struct
  type t = { name : string; mutable help : string; cell : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let reg_mutex = Mutex.create ()

  let make ?(help = "") name =
    Mutex.lock reg_mutex;
    let c =
      match Hashtbl.find_opt registry name with
      | Some c ->
          if help <> "" then c.help <- help;
          c
      | None ->
          let c = { name; help; cell = Atomic.make 0 } in
          Hashtbl.add registry name c;
          c
    in
    Mutex.unlock reg_mutex;
    c

  let name c = c.name
  let help c = c.help
  let add_always c n = if n <> 0 then ignore (Atomic.fetch_and_add c.cell n)
  let add c n = if Atomic.get enabled_flag then add_always c n
  let incr c = add c 1
  let value c = Atomic.get c.cell
  let set c v = Atomic.set c.cell v

  let snapshot () =
    Mutex.lock reg_mutex;
    let all = Hashtbl.fold (fun n c acc -> (n, Atomic.get c.cell) :: acc) registry [] in
    Mutex.unlock reg_mutex;
    List.sort (fun (a, _) (b, _) -> String.compare a b) all

  let reset_all () =
    Mutex.lock reg_mutex;
    Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
    Mutex.unlock reg_mutex

  let inventory () =
    Mutex.lock reg_mutex;
    let all = Hashtbl.fold (fun n c acc -> (n, c.help, Atomic.get c.cell) :: acc) registry [] in
    Mutex.unlock reg_mutex;
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) all
end

(* Pull-model gauges: a registered name plus a sampling callback, read
   only at snapshot time.  Unlike counters and histograms nothing in the
   query path ever touches a gauge, so their disabled-mode cost is
   exactly zero.  Re-registering a name replaces the callback — a fresh
   [Session] takes over the session.* gauges from a previous one (the CLI
   runs one session per process; with several, the scrape reflects the
   most recently created). *)
module Gauge = struct
  type t = { name : string; mutable help : string; mutable read : unit -> int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16
  let reg_mutex = Mutex.create ()

  let register ?(help = "") name read =
    Mutex.lock reg_mutex;
    let g =
      match Hashtbl.find_opt registry name with
      | Some g ->
          if help <> "" then g.help <- help;
          g.read <- read;
          g
      | None ->
          let g = { name; help; read } in
          Hashtbl.add registry name g;
          g
    in
    Mutex.unlock reg_mutex;
    g

  let name g = g.name
  let help g = g.help

  (* A gauge whose callback raises reads as 0 rather than poisoning the
     whole scrape (e.g. a callback closed over a resource that has since
     been torn down). *)
  let value g = try g.read () with _ -> 0

  let entries () =
    Mutex.lock reg_mutex;
    let all = Hashtbl.fold (fun _ g acc -> g :: acc) registry [] in
    Mutex.unlock reg_mutex;
    List.sort (fun a b -> String.compare a.name b.name) all

  (* Callbacks are sampled outside the registry mutex so a callback that
     itself registers a gauge cannot deadlock. *)
  let snapshot () = List.map (fun g -> (g.name, value g)) (entries ())

  let inventory () = List.map (fun g -> (g.name, g.help, value g)) (entries ())
end

module Histogram = struct
  (* Log-bucketed histogram, HDR-style with 16 sub-buckets per octave:
     values 0..15 are exact; a value v >= 16 with most-significant bit p
     lands in bucket 16*(p-3) + the next four bits below the MSB.  The
     relative quantisation error is therefore < 1/16 ≈ 6%, buckets are
     computed with two shifts and a mask, and 960 buckets cover the whole
     non-negative [int] range.  Quantiles are reported as the *lower
     bound* of the bucket the quantile falls in, so they never
     over-report. *)
  let bucket_count = 960

  let bucket_of_value v =
    if v < 16 then if v < 0 then 0 else v
    else begin
      let p = ref 4 in
      while v lsr (!p + 1) > 0 do
        incr p
      done;
      (16 * (!p - 3)) + ((v lsr (!p - 4)) land 15)
    end

  let bucket_lower_bound b =
    if b < 16 then b
    else begin
      let p = (b / 16) + 3 and sub = b mod 16 in
      (16 + sub) lsl (p - 4)
    end

  type t = {
    name : string;
    mutable help : string;
    counts : int array;
    mutable n : int;
    mutable sum : int;
    mutable min_v : int;
    mutable max_v : int;
    lock : Mutex.t;
  }

  type summary = {
    count : int;
    sum : int;
    min : int;
    max : int;
    p50 : int;
    p90 : int;
    p99 : int;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16
  let reg_mutex = Mutex.create ()

  let make ?(help = "") name =
    Mutex.lock reg_mutex;
    let h =
      match Hashtbl.find_opt registry name with
      | Some h ->
          if help <> "" then h.help <- help;
          h
      | None ->
          let h =
            {
              name;
              help;
              counts = Array.make bucket_count 0;
              n = 0;
              sum = 0;
              min_v = max_int;
              max_v = min_int;
              lock = Mutex.create ();
            }
          in
          Hashtbl.add registry name h;
          h
    in
    Mutex.unlock reg_mutex;
    h

  let name h = h.name
  let help h = h.help

  let add_always h v =
    let v = if v < 0 then 0 else v in
    Mutex.lock h.lock;
    let b = bucket_of_value v in
    h.counts.(b) <- h.counts.(b) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum + v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v;
    Mutex.unlock h.lock

  let add h v = if Atomic.get enabled_flag then add_always h v

  let count h = h.n

  (* Smallest recorded value whose cumulative count reaches [q * n],
     reported as its bucket's lower bound (exact for values < 16).
     Factored over raw bucket state so the windowed variant below can
     reuse the exact same arithmetic on merged slot counts. *)
  let quantile_of ~counts ~n ~min_v ~max_v q =
    if n = 0 then 0
    else begin
      let target =
        let t = int_of_float (ceil (q *. float_of_int n)) in
        if t < 1 then 1 else if t > n then n else t
      in
      let acc = ref 0 and b = ref 0 and found = ref (bucket_count - 1) in
      (try
         while !b < bucket_count do
           acc := !acc + counts.(!b);
           if !acc >= target then begin
             found := !b;
             raise Exit
           end;
           incr b
         done
       with Exit -> ());
      let lo = bucket_lower_bound !found in
      if lo > max_v then max_v else if lo < min_v then min_v else lo
    end

  let quantile_locked h q = quantile_of ~counts:h.counts ~n:h.n ~min_v:h.min_v ~max_v:h.max_v q

  let quantile h q =
    Mutex.lock h.lock;
    let v = quantile_locked h q in
    Mutex.unlock h.lock;
    v

  let summary_of ~counts ~n ~sum ~min_v ~max_v =
    {
      count = n;
      sum;
      min = (if n = 0 then 0 else min_v);
      max = (if n = 0 then 0 else max_v);
      p50 = quantile_of ~counts ~n ~min_v ~max_v 0.50;
      p90 = quantile_of ~counts ~n ~min_v ~max_v 0.90;
      p99 = quantile_of ~counts ~n ~min_v ~max_v 0.99;
    }

  let summarise_locked h = summary_of ~counts:h.counts ~n:h.n ~sum:h.sum ~min_v:h.min_v ~max_v:h.max_v

  let summary h =
    Mutex.lock h.lock;
    let s = summarise_locked h in
    Mutex.unlock h.lock;
    s

  let merge ~into src =
    if into != src then begin
      Mutex.lock src.lock;
      let counts = Array.copy src.counts in
      let n = src.n and sum = src.sum and min_v = src.min_v and max_v = src.max_v in
      Mutex.unlock src.lock;
      Mutex.lock into.lock;
      Array.iteri (fun b c -> into.counts.(b) <- into.counts.(b) + c) counts;
      into.n <- into.n + n;
      into.sum <- into.sum + sum;
      if min_v < into.min_v then into.min_v <- min_v;
      if max_v > into.max_v then into.max_v <- max_v;
      Mutex.unlock into.lock
    end

  let reset h =
    Mutex.lock h.lock;
    Array.fill h.counts 0 bucket_count 0;
    h.n <- 0;
    h.sum <- 0;
    h.min_v <- max_int;
    h.max_v <- min_int;
    Mutex.unlock h.lock

  let snapshot () =
    Mutex.lock reg_mutex;
    let all = Hashtbl.fold (fun n h acc -> (n, h) :: acc) registry [] in
    Mutex.unlock reg_mutex;
    List.filter_map
      (fun (n, h) -> if h.n = 0 then None else Some (n, summary h))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) all)

  let reset_all () =
    Mutex.lock reg_mutex;
    Hashtbl.iter (fun _ h -> reset h) registry;
    Mutex.unlock reg_mutex

  let inventory () =
    Mutex.lock reg_mutex;
    let all = Hashtbl.fold (fun n h acc -> (n, h) :: acc) registry [] in
    Mutex.unlock reg_mutex;
    List.map
      (fun (n, h) -> (n, h.help, summary h))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) all)
end

(* Sliding-window histograms: a ring of [slots] log-bucketed histograms,
   each covering one fixed slice of the window (a span of nanoseconds or
   of recorded events).  Recording lands in the slice the sample belongs
   to; when the ring wraps onto an expired slice, that slice's buckets
   are zeroed in one O(bucket_count) pass — the same wholesale-eviction
   idea the engine's own sliding frames use (bulk evictions instead of
   per-sample deletions), applied to its latency stream.  Summaries merge
   only the slices still inside the window, so quantiles cover "the last
   N seconds" / "the last k queries" with at most one slice of slack.
   [add] keeps the one-atomic-load disabled contract of {!Counter.add}. *)
module Windowed_histogram = struct
  type window = Last_ns of int | Last_events of int

  type t = {
    name : string;
    mutable help : string;
    window : window;
    slots : int;
    per_slot : int;  (* ns or events covered by one slot *)
    counts : int array;  (* slots * bucket_count, flattened *)
    slot_n : int array;
    slot_sum : int array;
    slot_min : int array;
    slot_max : int array;
    slot_gen : int array;  (* absolute slice index held by each ring slot, -1 empty *)
    mutable events : int;  (* total adds ever; drives event-based windows *)
    mutable evicted : int;  (* expired slices bulk-zeroed so far *)
    lock : Mutex.t;
  }

  let bucket_count = Histogram.bucket_count

  let registry : (string, t) Hashtbl.t = Hashtbl.create 8
  let reg_mutex = Mutex.create ()

  let make ?(help = "") ?(slots = 16) ~window name =
    Mutex.lock reg_mutex;
    let w =
      match Hashtbl.find_opt registry name with
      | Some w ->
          if help <> "" then w.help <- help;
          w
      | None ->
          let slots = max 2 slots in
          let span = match window with Last_ns n -> n | Last_events n -> n in
          let w =
            {
              name;
              help;
              window;
              slots;
              per_slot = max 1 (span / slots);
              counts = Array.make (slots * bucket_count) 0;
              slot_n = Array.make slots 0;
              slot_sum = Array.make slots 0;
              slot_min = Array.make slots max_int;
              slot_max = Array.make slots min_int;
              slot_gen = Array.make slots (-1);
              events = 0;
              evicted = 0;
              lock = Mutex.create ();
            }
          in
          Hashtbl.add registry name w;
          w
    in
    Mutex.unlock reg_mutex;
    w

  let name w = w.name
  let help w = w.help
  let window w = w.window

  let window_label w =
    match w.window with
    | Last_events n -> Printf.sprintf "%dev" n
    | Last_ns n ->
        if n mod 1_000_000_000 = 0 then Printf.sprintf "%ds" (n / 1_000_000_000)
        else Printf.sprintf "%dms" (n / 1_000_000)

  (* Absolute slice index a new sample belongs to, given the clock (time
     windows) or the running event count (event windows). *)
  let slice_of_add w ~now_ns = match w.window with
    | Last_ns _ -> now_ns / w.per_slot
    | Last_events _ -> w.events / w.per_slot

  (* Newest slice that can still hold live data at summary time.  For
     event windows time does not age data out: the newest slice is the
     one of the most recent add. *)
  let slice_of_now w ~now_ns = match w.window with
    | Last_ns _ -> now_ns / w.per_slot
    | Last_events _ -> if w.events = 0 then -1 else (w.events - 1) / w.per_slot

  let evict_slot w ring =
    Array.fill w.counts (ring * bucket_count) bucket_count 0;
    w.slot_n.(ring) <- 0;
    w.slot_sum.(ring) <- 0;
    w.slot_min.(ring) <- max_int;
    w.slot_max.(ring) <- min_int;
    w.evicted <- w.evicted + 1

  let add_always_at w ~now_ns v =
    let v = if v < 0 then 0 else v in
    Mutex.lock w.lock;
    let slice = slice_of_add w ~now_ns in
    let ring = slice mod w.slots in
    if w.slot_gen.(ring) <> slice then begin
      if w.slot_gen.(ring) >= 0 then evict_slot w ring;
      w.slot_gen.(ring) <- slice
    end;
    let b = Histogram.bucket_of_value v in
    w.counts.((ring * bucket_count) + b) <- w.counts.((ring * bucket_count) + b) + 1;
    w.slot_n.(ring) <- w.slot_n.(ring) + 1;
    w.slot_sum.(ring) <- w.slot_sum.(ring) + v;
    if v < w.slot_min.(ring) then w.slot_min.(ring) <- v;
    if v > w.slot_max.(ring) then w.slot_max.(ring) <- v;
    w.events <- w.events + 1;
    Mutex.unlock w.lock

  let add_always w v = add_always_at w ~now_ns:(now_ns ()) v
  let add w v = if Atomic.get enabled_flag then add_always w v

  (* Merge the live slices into one flat bucket array under the lock. *)
  let merge_live w ~now_ns =
    Mutex.lock w.lock;
    let newest = slice_of_now w ~now_ns in
    let oldest_live = newest - w.slots + 1 in
    let merged = Array.make bucket_count 0 in
    let n = ref 0 and sum = ref 0 and min_v = ref max_int and max_v = ref min_int in
    for ring = 0 to w.slots - 1 do
      let gen = w.slot_gen.(ring) in
      if gen >= oldest_live && gen <= newest && w.slot_n.(ring) > 0 then begin
        let base = ring * bucket_count in
        for b = 0 to bucket_count - 1 do
          merged.(b) <- merged.(b) + w.counts.(base + b)
        done;
        n := !n + w.slot_n.(ring);
        sum := !sum + w.slot_sum.(ring);
        if w.slot_min.(ring) < !min_v then min_v := w.slot_min.(ring);
        if w.slot_max.(ring) > !max_v then max_v := w.slot_max.(ring)
      end
    done;
    Mutex.unlock w.lock;
    (merged, !n, !sum, !min_v, !max_v)

  let summary_at w ~now_ns =
    let counts, n, sum, min_v, max_v = merge_live w ~now_ns in
    Histogram.summary_of ~counts ~n ~sum ~min_v ~max_v

  let summary w = summary_at w ~now_ns:(now_ns ())

  let quantile_at w ~now_ns q =
    let counts, n, _, min_v, max_v = merge_live w ~now_ns in
    Histogram.quantile_of ~counts ~n ~min_v ~max_v q

  let quantile w q = quantile_at w ~now_ns:(now_ns ()) q
  let events w = w.events
  let evictions w = w.evicted

  let reset w =
    Mutex.lock w.lock;
    Array.fill w.counts 0 (w.slots * bucket_count) 0;
    Array.fill w.slot_n 0 w.slots 0;
    Array.fill w.slot_sum 0 w.slots 0;
    Array.fill w.slot_min 0 w.slots max_int;
    Array.fill w.slot_max 0 w.slots min_int;
    Array.fill w.slot_gen 0 w.slots (-1);
    w.events <- 0;
    w.evicted <- 0;
    Mutex.unlock w.lock

  let entries () =
    Mutex.lock reg_mutex;
    let all = Hashtbl.fold (fun _ w acc -> w :: acc) registry [] in
    Mutex.unlock reg_mutex;
    List.sort (fun a b -> String.compare a.name b.name) all

  let snapshot () =
    List.filter_map
      (fun w ->
        let s = summary w in
        if s.Histogram.count = 0 then None else Some (w.name, s))
      (entries ())

  let inventory () = List.map (fun w -> (w.name, w.help, window_label w, summary w)) (entries ())

  let reset_all () = List.iter reset (entries ())
end

type trace = {
  spans : span list;
  counters : (string * int) list;
  hists : (string * Histogram.summary) list;
  dropped : int;
}

let capture () =
  Mutex.lock buf_mutex;
  let spans = List.rev !buf and dropped = !buf_dropped in
  Mutex.unlock buf_mutex;
  let counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ()) in
  { spans; counters; hists = Histogram.snapshot (); dropped }

let reset () =
  Mutex.lock buf_mutex;
  buf := [];
  buf_len := 0;
  buf_dropped := 0;
  Mutex.unlock buf_mutex;
  Counter.reset_all ();
  Histogram.reset_all ()

let with_capture f =
  let was = enabled () in
  reset ();
  enable ();
  let restore () = if not was then disable () in
  match f () with
  | v ->
      let t = capture () in
      restore ();
      (v, t)
  | exception e ->
      restore ();
      raise e

let totals tr =
  let order = ref [] in
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt tbl s.name with
      | None ->
          order := s.name :: !order;
          Hashtbl.add tbl s.name (1, s.dur_ns)
      | Some (c, d) -> Hashtbl.replace tbl s.name (c + 1, d + s.dur_ns))
    tr.spans;
  List.rev_map
    (fun n ->
      let c, d = Hashtbl.find tbl n in
      (n, (c, float_of_int d *. 1e-9)))
    !order

let self_totals tr =
  (* Duration of each span's *direct* children, by parent id; a span's
     self time is its duration minus that, clamped at zero (clock skew
     between nested reads can make the sum overshoot by a few ns). *)
  let child_ns : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if s.parent >= 0 then
        let prev = match Hashtbl.find_opt child_ns s.parent with Some d -> d | None -> 0 in
        Hashtbl.replace child_ns s.parent (prev + s.dur_ns))
    tr.spans;
  let order = ref [] in
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let nested = match Hashtbl.find_opt child_ns s.id with Some d -> d | None -> 0 in
      let self = max 0 (s.dur_ns - nested) in
      match Hashtbl.find_opt tbl s.name with
      | None ->
          order := s.name :: !order;
          Hashtbl.add tbl s.name (1, self)
      | Some (c, d) -> Hashtbl.replace tbl s.name (c + 1, d + self))
    tr.spans;
  List.rev_map
    (fun n ->
      let c, d = Hashtbl.find tbl n in
      (n, (c, float_of_int d *. 1e-9)))
    !order

(* --- rendering ------------------------------------------------------- *)

let ms ns = Printf.sprintf "%.3f ms" (float_of_int ns /. 1e6)

let human_bytes b =
  if b < 1024 then Printf.sprintf "%d B" b
  else if b < 1024 * 1024 then Printf.sprintf "%.1f KB" (float_of_int b /. 1024.0)
  else if b < 1024 * 1024 * 1024 then Printf.sprintf "%.1f MB" (float_of_int b /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.1f GB" (float_of_int b /. (1024.0 *. 1024.0 *. 1024.0))

let args_to_string = function
  | [] -> ""
  | kvs -> " {" ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "}"

let render tr =
  let b = Buffer.create 1024 in
  (* children grouped under their parent, in start order; a parent always
     precedes its children in [tr.spans], so one pass suffices.  Spans
     whose parent fell out of the bounded buffer render as roots. *)
  let known = Hashtbl.create 64 in
  let children : (int, span list ref) Hashtbl.t = Hashtbl.create 64 in
  let kids id = match Hashtbl.find_opt children id with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add children id r;
        r
  in
  List.iter
    (fun s ->
      Hashtbl.replace known s.id ();
      let parent = if s.parent >= 0 && Hashtbl.mem known s.parent then s.parent else -1 in
      let r = kids parent in
      r := s :: !r)
    tr.spans;
  let children_of id = List.rev !(kids id) in
  (* Sibling spans with the same (name, args) — e.g. one span per
     partition — aggregate into a single line with a xN multiplicity, so
     the rendering is deterministic whatever the partition count. *)
  let rec emit depth spans =
    let seen = ref [] in
    let groups : (string, span list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun s ->
        let key = s.name ^ "\x00" ^ String.concat "\x00" (List.concat_map (fun (k, v) -> [ k; v ]) s.args) in
        match Hashtbl.find_opt groups key with
        | Some r -> r := s :: !r
        | None ->
            Hashtbl.add groups key (ref [ s ]);
            seen := key :: !seen)
      spans;
    List.iter
      (fun key ->
        let members = List.rev !(Hashtbl.find groups key) in
        let head = List.hd members in
        let count = List.length members in
        let total = List.fold_left (fun acc s -> acc + s.dur_ns) 0 members in
        let bytes = List.fold_left (fun acc s -> acc + s.bytes) 0 members in
        let alloc = List.fold_left (fun acc s -> acc + s.alloc_w) 0 members in
        let label =
          head.name ^ args_to_string head.args
          ^ if count > 1 then Printf.sprintf " x%d" count else ""
        in
        let indent = String.make (2 * depth) ' ' in
        let line = indent ^ label in
        let pad = max 1 (56 - String.length line) in
        (* memory columns: structure bytes are deterministic (exact
           arithmetic or reachable-word counts of built structures, via
           [record_bytes]); allocated words are maskable like times. *)
        let mem = if bytes = 0 then "-" else human_bytes bytes in
        let alloc_s = Printf.sprintf "%.1f kw" (float_of_int alloc /. 1e3) in
        Buffer.add_string b
          (line ^ String.make pad ' '
          ^ Printf.sprintf "%12s %10s %12s" (ms total) mem alloc_s
          ^ "\n");
        emit (depth + 1) (List.concat_map (fun s -> children_of s.id) members))
      (List.rev !seen)
  in
  emit 0 (children_of (-1));
  if tr.counters <> [] then begin
    Buffer.add_string b "counters\n";
    List.iter
      (fun (n, v) ->
        let shown =
          (* nanosecond-valued counters render in the same maskable
             millisecond format as span times *)
          if String.length n > 3 && String.sub n (String.length n - 3) 3 = "_ns" then
            Printf.sprintf "%12s" (ms v)
          else Printf.sprintf "%12d" v
        in
        let line = "  " ^ n in
        let pad = max 1 (56 - String.length line) in
        Buffer.add_string b (line ^ String.make pad ' ' ^ shown ^ "\n"))
      tr.counters
  end;
  if tr.hists <> [] then begin
    Buffer.add_string b "histograms\n";
    List.iter
      (fun (n, (s : Histogram.summary)) ->
        let is_ns = String.length n > 3 && String.sub n (String.length n - 3) 3 = "_ns" in
        let v x = if is_ns then ms x else string_of_int x in
        let line = "  " ^ n in
        let pad = max 1 (56 - String.length line) in
        Buffer.add_string b
          (line ^ String.make pad ' '
          ^ Printf.sprintf "n=%d p50=%s p90=%s p99=%s max=%s" s.Histogram.count
              (v s.Histogram.p50) (v s.Histogram.p90) (v s.Histogram.p99) (v s.Histogram.max)
          ^ "\n"))
      tr.hists
  end;
  if tr.dropped > 0 then
    Buffer.add_string b (Printf.sprintf "(%d spans dropped: buffer full)\n" tr.dropped);
  Buffer.contents b

(* --- Chrome trace_event export --------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json tr =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  let t_base = match tr.spans with [] -> 0 | s :: _ -> s.t0_ns in
  let last_ts = ref 0.0 in
  List.iter
    (fun s ->
      sep ();
      let ts = float_of_int (s.t0_ns - t_base) /. 1e3 in
      let dur = float_of_int s.dur_ns /. 1e3 in
      if ts +. dur > !last_ts then last_ts := ts +. dur;
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"holistic\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (json_escape s.name) s.tid ts dur);
      let args =
        s.args
        @ (if s.alloc_w > 0 then [ ("alloc_kw", Printf.sprintf "%.1f" (float_of_int s.alloc_w /. 1e3)) ] else [])
        @ (if s.bytes > 0 then [ ("bytes", string_of_int s.bytes) ] else [])
        @ if s.majors > 0 then [ ("major_gcs", string_of_int s.majors) ] else []
      in
      if args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    tr.spans;
  List.iter
    (fun (n, v) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.3f,\"args\":{\"value\":%d}}"
           (json_escape n) !last_ts v))
    tr.counters;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace path tr =
  let oc = open_out path in
  output_string oc (to_chrome_json tr);
  close_out oc

(* Clear only the span buffer, leaving cumulative counters, histograms and
   windowed histograms untouched — the query-log collector enables tracing
   per query and must not wipe the process-lifetime registries the metrics
   endpoint exports (unlike [reset]). *)
let clear_spans () =
  Mutex.lock buf_mutex;
  buf := [];
  buf_len := 0;
  buf_dropped := 0;
  Mutex.unlock buf_mutex

(* Live memory gauge: major-heap size sampled at scrape time.  Cheap
   ([Gc.quick_stat] reads tallies, no heap walk) and genuinely current,
   unlike the cumulative [mem.structure_bytes] counter. *)
let _heap_gauge =
  Gauge.register ~help:"Major heap bytes currently held by the runtime" "mem.heap_bytes"
    (fun () -> (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8))

(* --- metrics snapshot & export --------------------------------------- *)

module Metrics = struct
  type t = {
    counters : (string * string * int) list;
    gauges : (string * string * int) list;
    histograms : (string * string * Histogram.summary) list;
    windows : (string * string * string * Histogram.summary) list;
  }

  let snapshot () =
    {
      counters = Counter.inventory ();
      gauges = Gauge.inventory ();
      histograms = Histogram.inventory ();
      windows = Windowed_histogram.inventory ();
    }

  let filter pred s =
    {
      counters = List.filter (fun (n, _, _) -> pred n) s.counters;
      gauges = List.filter (fun (n, _, _) -> pred n) s.gauges;
      histograms = List.filter (fun (n, _, _) -> pred n) s.histograms;
      windows = List.filter (fun (n, _, _, _) -> pred n) s.windows;
    }

  (* Every (kind, name, help) in the snapshot — the help-string lint
     iterates this. *)
  let inventory s =
    List.map (fun (n, h, _) -> ("counter", n, h)) s.counters
    @ List.map (fun (n, h, _) -> ("gauge", n, h)) s.gauges
    @ List.map (fun (n, h, _) -> ("histogram", n, h)) s.histograms
    @ List.map (fun (n, h, _, _) -> ("windowed_histogram", n, h)) s.windows

  (* Dotted registry names become a legal Prometheus metric name under a
     common prefix: [cache.hit] -> [holiwin_cache_hit]. *)
  let prom_name n =
    "holiwin_"
    ^ String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
        n

  let prom_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_prometheus ?stamp_ms s =
    let b = Buffer.create 4096 in
    (match stamp_ms with
    | Some ms -> Buffer.add_string b (Printf.sprintf "# holiwin metrics snapshot unix_ms=%d\n" ms)
    | None -> ());
    let header name help ty =
      if help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (prom_escape help));
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name ty)
    in
    List.iter
      (fun (n, h, v) ->
        let pn = prom_name n in
        header pn h "counter";
        Buffer.add_string b (Printf.sprintf "%s %d\n" pn v))
      s.counters;
    List.iter
      (fun (n, h, v) ->
        let pn = prom_name n in
        header pn h "gauge";
        Buffer.add_string b (Printf.sprintf "%s %d\n" pn v))
      s.gauges;
    let summary_lines pn labels (sm : Histogram.summary) =
      let lbl extra =
        match labels @ extra with
        | [] -> ""
        | kvs ->
            "{"
            ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) kvs)
            ^ "}"
      in
      List.iter
        (fun (q, v) ->
          Buffer.add_string b (Printf.sprintf "%s%s %d\n" pn (lbl [ ("quantile", q) ]) v))
        [ ("0.5", sm.Histogram.p50); ("0.9", sm.Histogram.p90); ("0.99", sm.Histogram.p99) ];
      Buffer.add_string b (Printf.sprintf "%s_sum%s %d\n" pn (lbl []) sm.Histogram.sum);
      Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" pn (lbl []) sm.Histogram.count)
    in
    List.iter
      (fun (n, h, sm) ->
        let pn = prom_name n in
        header pn h "summary";
        summary_lines pn [] sm)
      s.histograms;
    List.iter
      (fun (n, h, wl, sm) ->
        let pn = prom_name n in
        header pn h "summary";
        summary_lines pn [ ("window", wl) ] sm)
      s.windows;
    Buffer.contents b

  let to_json ?stamp_ms s =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"schema\":\"holiwin-metrics/1\"";
    (match stamp_ms with
    | Some ms -> Buffer.add_string b (Printf.sprintf ",\"taken_unix_ms\":%d" ms)
    | None -> ());
    let obj name fields =
      Buffer.add_string b (Printf.sprintf ",\"%s\":{" (json_escape name));
      List.iteri
        (fun i f ->
          if i > 0 then Buffer.add_char b ',';
          f ())
        fields;
      Buffer.add_char b '}'
    in
    let scalar_section section items =
      obj section
        (List.map
           (fun (n, h, v) () ->
             Buffer.add_string b
               (Printf.sprintf "\"%s\":{\"help\":\"%s\",\"value\":%d}" (json_escape n)
                  (json_escape h) v))
           items)
    in
    scalar_section "counters" s.counters;
    scalar_section "gauges" s.gauges;
    let summary_fields ?window h (sm : Histogram.summary) =
      Printf.sprintf "\"help\":\"%s\",%s\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d"
        (json_escape h)
        (match window with
        | Some w -> Printf.sprintf "\"window\":\"%s\"," (json_escape w)
        | None -> "")
        sm.Histogram.count sm.Histogram.sum sm.Histogram.min sm.Histogram.max sm.Histogram.p50
        sm.Histogram.p90 sm.Histogram.p99
    in
    obj "histograms"
      (List.map
         (fun (n, h, sm) () ->
           Buffer.add_string b (Printf.sprintf "\"%s\":{%s}" (json_escape n) (summary_fields h sm)))
         s.histograms);
    obj "windows"
      (List.map
         (fun (n, h, wl, sm) () ->
           Buffer.add_string b
             (Printf.sprintf "\"%s\":{%s}" (json_escape n) (summary_fields ~window:wl h sm)))
         s.windows);
    Buffer.add_char b '}';
    Buffer.contents b
end
