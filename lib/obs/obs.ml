external now_ns : unit -> int = "holistic_obs_now_ns" [@@noalloc]

type span = {
  id : int;
  parent : int;
  name : string;
  tid : int;
  t0_ns : int;
  mutable dur_ns : int;
  mutable args : (string * string) list;
}

(* The enabled flag is the whole fast-path contract: every tracing entry
   point loads it first and bails, so a disabled build pays one atomic
   read (a plain load on x86/arm) and whatever closures the call site
   itself allocates. *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* Bounded global buffer of finished-or-running spans, newest first.  A
   mutex (not a lock-free structure) is fine here: spans are recorded at
   partition/stage granularity, never per row. *)
let buf_mutex = Mutex.create ()
let buf : span list ref = ref []
let buf_len = ref 0
let buf_dropped = ref 0
let max_spans = 1 lsl 18
let next_id = Atomic.make 0

let record s =
  Mutex.lock buf_mutex;
  if !buf_len >= max_spans then incr buf_dropped
  else begin
    buf := s :: !buf;
    incr buf_len
  end;
  Mutex.unlock buf_mutex

(* Per-domain stack of open spans, for parent links and [annotate]. *)
let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let span ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> -1 | p :: _ -> p.id in
    let s =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        tid = (Domain.self () :> int);
        t0_ns = now_ns ();
        dur_ns = 0;
        args = [];
      }
    in
    (* Recorded at start so nesting order in the buffer is start order
       (parents strictly before children), which [render] relies on. *)
    record s;
    stack := s :: !stack;
    let finish () =
      s.dur_ns <- now_ns () - s.t0_ns;
      (match args with None -> () | Some g -> s.args <- s.args @ g ());
      match !stack with _ :: tl -> stack := tl | [] -> ()
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let annotate kvs =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | s :: _ -> s.args <- s.args @ kvs
    | [] -> ()

module Counter = struct
  type t = { name : string; cell : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let reg_mutex = Mutex.create ()

  let make name =
    Mutex.lock reg_mutex;
    let c =
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { name; cell = Atomic.make 0 } in
          Hashtbl.add registry name c;
          c
    in
    Mutex.unlock reg_mutex;
    c

  let name c = c.name
  let add_always c n = if n <> 0 then ignore (Atomic.fetch_and_add c.cell n)
  let add c n = if Atomic.get enabled_flag then add_always c n
  let incr c = add c 1
  let value c = Atomic.get c.cell
  let set c v = Atomic.set c.cell v

  let snapshot () =
    Mutex.lock reg_mutex;
    let all = Hashtbl.fold (fun n c acc -> (n, Atomic.get c.cell) :: acc) registry [] in
    Mutex.unlock reg_mutex;
    List.sort (fun (a, _) (b, _) -> String.compare a b) all

  let reset_all () =
    Mutex.lock reg_mutex;
    Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
    Mutex.unlock reg_mutex
end

type trace = { spans : span list; counters : (string * int) list; dropped : int }

let capture () =
  Mutex.lock buf_mutex;
  let spans = List.rev !buf and dropped = !buf_dropped in
  Mutex.unlock buf_mutex;
  let counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ()) in
  { spans; counters; dropped }

let reset () =
  Mutex.lock buf_mutex;
  buf := [];
  buf_len := 0;
  buf_dropped := 0;
  Mutex.unlock buf_mutex;
  Counter.reset_all ()

let with_capture f =
  let was = enabled () in
  reset ();
  enable ();
  let restore () = if not was then disable () in
  match f () with
  | v ->
      let t = capture () in
      restore ();
      (v, t)
  | exception e ->
      restore ();
      raise e

let totals tr =
  let order = ref [] in
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt tbl s.name with
      | None ->
          order := s.name :: !order;
          Hashtbl.add tbl s.name (1, s.dur_ns)
      | Some (c, d) -> Hashtbl.replace tbl s.name (c + 1, d + s.dur_ns))
    tr.spans;
  List.rev_map
    (fun n ->
      let c, d = Hashtbl.find tbl n in
      (n, (c, float_of_int d *. 1e-9)))
    !order

(* --- rendering ------------------------------------------------------- *)

let ms ns = Printf.sprintf "%.3f ms" (float_of_int ns /. 1e6)

let args_to_string = function
  | [] -> ""
  | kvs -> " {" ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "}"

let render tr =
  let b = Buffer.create 1024 in
  (* children grouped under their parent, in start order; a parent always
     precedes its children in [tr.spans], so one pass suffices.  Spans
     whose parent fell out of the bounded buffer render as roots. *)
  let known = Hashtbl.create 64 in
  let children : (int, span list ref) Hashtbl.t = Hashtbl.create 64 in
  let kids id = match Hashtbl.find_opt children id with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add children id r;
        r
  in
  List.iter
    (fun s ->
      Hashtbl.replace known s.id ();
      let parent = if s.parent >= 0 && Hashtbl.mem known s.parent then s.parent else -1 in
      let r = kids parent in
      r := s :: !r)
    tr.spans;
  let children_of id = List.rev !(kids id) in
  (* Sibling spans with the same (name, args) — e.g. one span per
     partition — aggregate into a single line with a xN multiplicity, so
     the rendering is deterministic whatever the partition count. *)
  let rec emit depth spans =
    let seen = ref [] in
    let groups : (string, span list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun s ->
        let key = s.name ^ "\x00" ^ String.concat "\x00" (List.concat_map (fun (k, v) -> [ k; v ]) s.args) in
        match Hashtbl.find_opt groups key with
        | Some r -> r := s :: !r
        | None ->
            Hashtbl.add groups key (ref [ s ]);
            seen := key :: !seen)
      spans;
    List.iter
      (fun key ->
        let members = List.rev !(Hashtbl.find groups key) in
        let head = List.hd members in
        let count = List.length members in
        let total = List.fold_left (fun acc s -> acc + s.dur_ns) 0 members in
        let label =
          head.name ^ args_to_string head.args
          ^ if count > 1 then Printf.sprintf " x%d" count else ""
        in
        let indent = String.make (2 * depth) ' ' in
        let line = indent ^ label in
        let pad = max 1 (56 - String.length line) in
        Buffer.add_string b (line ^ String.make pad ' ' ^ Printf.sprintf "%12s" (ms total) ^ "\n");
        emit (depth + 1) (List.concat_map (fun s -> children_of s.id) members))
      (List.rev !seen)
  in
  emit 0 (children_of (-1));
  if tr.counters <> [] then begin
    Buffer.add_string b "counters\n";
    List.iter
      (fun (n, v) ->
        let shown =
          (* nanosecond-valued counters render in the same maskable
             millisecond format as span times *)
          if String.length n > 3 && String.sub n (String.length n - 3) 3 = "_ns" then
            Printf.sprintf "%12s" (ms v)
          else Printf.sprintf "%12d" v
        in
        let line = "  " ^ n in
        let pad = max 1 (56 - String.length line) in
        Buffer.add_string b (line ^ String.make pad ' ' ^ shown ^ "\n"))
      tr.counters
  end;
  if tr.dropped > 0 then
    Buffer.add_string b (Printf.sprintf "(%d spans dropped: buffer full)\n" tr.dropped);
  Buffer.contents b

(* --- Chrome trace_event export --------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json tr =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  let t_base = match tr.spans with [] -> 0 | s :: _ -> s.t0_ns in
  let last_ts = ref 0.0 in
  List.iter
    (fun s ->
      sep ();
      let ts = float_of_int (s.t0_ns - t_base) /. 1e3 in
      let dur = float_of_int s.dur_ns /. 1e3 in
      if ts +. dur > !last_ts then last_ts := ts +. dur;
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"holistic\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (json_escape s.name) s.tid ts dur);
      if s.args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          s.args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    tr.spans;
  List.iter
    (fun (n, v) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.3f,\"args\":{\"value\":%d}}"
           (json_escape n) !last_ts v))
    tr.counters;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace path tr =
  let oc = open_out path in
  output_string oc (to_chrome_json tr);
  close_out oc
