exception Parse_error of string * int
exception Semantic_error of string

module Session = Holistic_window.Session
module Query_stats = Holistic_window.Query_stats

(* The environment sink ([HOLIWIN_QUERY_LOG]) is opened once, on the first
   query, and shared by every call that doesn't pass its own sink. *)
let env_sink = lazy (Query_stats.Log.of_env ())

let query ?pool ?fanout ?sample ?task_size ?algorithm ?evaluator ?governor ?mem_limit ?session
    ?query_log ~tables src =
  let ast =
    try Parser.parse src with Parser.Error (msg, off) -> raise (Parse_error (msg, off))
  in
  let run () =
    try
      Planner.run_with_stats ?pool ?fanout ?sample ?task_size ?algorithm ?evaluator ?governor
        ?mem_limit ?session ~tables ast
    with Planner.Error msg -> raise (Semantic_error msg)
  in
  let sink = match query_log with Some _ -> query_log | None -> Lazy.force env_sink in
  match sink with
  | Some sink ->
      let rows_in =
        match List.assoc_opt ast.Ast.from tables with
        | Some t -> Holistic_storage.Table.nrows t
        | None -> 0
      in
      let session_epoch = Option.map Session.epoch session in
      let result, record = Query_stats.measure ~sql:src ?session_epoch ~rows_in run in
      Query_stats.Log.append sink record;
      result
  | None ->
      if Holistic_obs.Obs.enabled () then (
        let t0 = Holistic_obs.Obs.now_ns () in
        let result, _ = run () in
        Query_stats.note_latency (Holistic_obs.Obs.now_ns () - t0);
        result)
      else fst (run ())

(* ------------------------------------------------------------------ *)
(* Sessions: persistent structure stores over one table                *)
(* ------------------------------------------------------------------ *)

let session_create ?pool table = Session.create ?pool table
let session_table = Session.table

let session_query ?fanout ?sample ?task_size ?algorithm ?evaluator ?query_log ?(name = "t")
    session src =
  query ?fanout ?sample ?task_size ?algorithm ?evaluator ?query_log ~session
    ~tables:[ (name, Session.table session) ]
    src

let session_append = Session.append_rows

let session_evict session src =
  let table = Session.table session in
  let ast =
    try Parser.parse_expr src with Parser.Error (msg, off) -> raise (Parse_error (msg, off))
  in
  let pred =
    try Planner.lower_expr table ast with Planner.Error msg -> raise (Semantic_error msg)
  in
  let f = Holistic_storage.Expr.compile table pred in
  Session.evict_where session (fun row -> Holistic_storage.Expr.to_bool (f row))

let rec expr_to_string (e : Ast.expr) =
  match e with
  | Ast.Col c -> c
  | Ast.Int_lit v -> if v < 0 then Printf.sprintf "(- %d)" (-v) else string_of_int v
  | Ast.Float_lit v ->
      let s = Printf.sprintf "%.12g" v in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | Ast.String_lit s ->
      Printf.sprintf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Ast.Date_lit s -> Printf.sprintf "date '%s'" s
  | Ast.Interval_lit s -> Printf.sprintf "interval '%s'" s
  | Ast.Null_lit -> "null"
  | Ast.Bool_lit b -> string_of_bool b
  | Ast.Unop (op, a) -> Printf.sprintf "(%s %s)" op (expr_to_string a)
  | Ast.Binop (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_to_string a) op (expr_to_string b)
  | Ast.Func (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Ast.Is_null (a, false) -> Printf.sprintf "(%s is null)" (expr_to_string a)
  | Ast.Is_null (a, true) -> Printf.sprintf "(%s is not null)" (expr_to_string a)
  | Ast.Case (branches, else_) ->
      Printf.sprintf "case %s%s end"
        (String.concat " "
           (List.map
              (fun (c, v) ->
                Printf.sprintf "when %s then %s" (expr_to_string c) (expr_to_string v))
              branches))
        (match else_ with Some e -> " else " ^ expr_to_string e | None -> "")

let order_to_string keys =
  String.concat ", "
    (List.map
       (fun (k : Ast.order_key) ->
         expr_to_string k.Ast.expr
         ^ (if k.Ast.desc then " desc" else "")
         ^ match k.Ast.nulls_first with
           | Some true -> " nulls first"
           | Some false -> " nulls last"
           | None -> "")
       keys)

let bound_to_string = function
  | Ast.Unbounded_preceding -> "unbounded preceding"
  | Ast.Preceding e -> expr_to_string e ^ " preceding"
  | Ast.Current_row -> "current row"
  | Ast.Following e -> expr_to_string e ^ " following"
  | Ast.Unbounded_following -> "unbounded following"

let window_to_string (w : Ast.window) =
  let parts =
    (match w.Ast.base with Some b -> [ b ] | None -> [])
    @ (if w.Ast.partition_by = [] then []
       else
         [ "partition by " ^ String.concat ", " (List.map expr_to_string w.Ast.partition_by) ])
    @ (if w.Ast.order_by = [] then [] else [ "order by " ^ order_to_string w.Ast.order_by ])
    @
    match w.Ast.frame with
    | None -> []
    | Some f ->
        let mode =
          match f.Ast.mode with `Rows -> "rows" | `Range -> "range" | `Groups -> "groups"
        in
        let excl =
          match f.Ast.exclusion with
          | Ast.No_others -> ""
          | Ast.Current_row_x -> " exclude current row"
          | Ast.Group_x -> " exclude group"
          | Ast.Ties_x -> " exclude ties"
        in
        [
          Printf.sprintf "%s between %s and %s%s" mode (bound_to_string f.Ast.start_bound)
            (bound_to_string f.Ast.end_bound) excl;
        ]
  in
  "(" ^ String.concat " " parts ^ ")"

let call_to_string (w : Ast.window_call) =
  Printf.sprintf "%s(%s%s%s)%s%s over %s" w.Ast.func
    (if w.Ast.distinct then "distinct " else "")
    (String.concat ", " (List.map expr_to_string w.Ast.args))
    (if w.Ast.arg_order_by = [] then "" else " order by " ^ order_to_string w.Ast.arg_order_by)
    (if w.Ast.ignore_nulls then " ignore nulls" else "")
    (match w.Ast.filter with
    | Some f -> Printf.sprintf " filter (where %s)" (expr_to_string f)
    | None -> "")
    (match w.Ast.over with
    | { Ast.base = Some name; partition_by = []; order_by = []; frame = None } -> name
    | over -> window_to_string over)

let print_query (q : Ast.query) =
  let items =
    List.map
      (fun (it : Ast.select_item) ->
        (match it.Ast.value with
        | `Expr e -> expr_to_string e
        | `Window w -> call_to_string w)
        ^ match it.Ast.alias with Some a -> " as " ^ a | None -> "")
      q.Ast.select
  in
  String.concat ""
    ([ "select "; String.concat ", " items; " from "; q.Ast.from ]
    @ (match q.Ast.where with Some w -> [ " where "; expr_to_string w ] | None -> [])
    @ (match q.Ast.windows with
      | [] -> []
      | ws ->
          [
            " window ";
            String.concat ", "
              (List.map (fun (n, w) -> Printf.sprintf "%s as %s" n (window_to_string w)) ws);
          ])
    @ (if q.Ast.order_by = [] then [] else [ " order by "; order_to_string q.Ast.order_by ])
    @ match q.Ast.limit with Some k -> [ Printf.sprintf " limit %d" k ] | None -> [])

let explain_ast q =
      let b = Buffer.create 256 in
      Buffer.add_string b (Printf.sprintf "from: %s\n" q.Ast.from);
      (match q.Ast.where with
      | Some w -> Buffer.add_string b (Printf.sprintf "where: %s\n" (expr_to_string w))
      | None -> ());
      List.iter
        (fun (it : Ast.select_item) ->
          let alias = match it.Ast.alias with Some a -> " as " ^ a | None -> "" in
          match it.Ast.value with
          | `Expr e -> Buffer.add_string b (Printf.sprintf "select expr: %s%s\n" (expr_to_string e) alias)
          | `Window w ->
              Buffer.add_string b
                (Printf.sprintf "select window: %s(%s%s%s)%s%s over %s%s\n" w.Ast.func
                   (if w.Ast.distinct then "distinct " else "")
                   (String.concat ", " (List.map expr_to_string w.Ast.args))
                   (if w.Ast.arg_order_by = [] then ""
                    else " order by " ^ order_to_string w.Ast.arg_order_by)
                   (if w.Ast.ignore_nulls then " ignore nulls" else "")
                   (match w.Ast.filter with
                   | Some f -> Printf.sprintf " filter (where %s)" (expr_to_string f)
                   | None -> "")
                   (window_to_string w.Ast.over) alias))
        q.Ast.select;
      List.iter
        (fun (name, w) ->
          Buffer.add_string b (Printf.sprintf "window %s as %s\n" name (window_to_string w)))
        q.Ast.windows;
      if q.Ast.order_by <> [] then
        Buffer.add_string b ("order by: " ^ order_to_string q.Ast.order_by ^ "\n");
      (match q.Ast.limit with
      | Some k -> Buffer.add_string b (Printf.sprintf "limit: %d\n" k)
      | None -> ());
      Buffer.contents b

let explain src = explain_ast (Parser.parse src)

(* EXPLAIN ANALYZE: run the query under {!Holistic_obs.Obs.with_capture}
   and render the captured span tree and counters under the static plan
   description. Everything time-valued prints as "%.3f ms" so tests can
   mask it; structure, row counts and counters are deterministic for a
   given pool size. *)
let explain_analyze ?pool ?fanout ?sample ?task_size ?algorithm ?evaluator ?governor ?mem_limit
    ?session ~tables src =
  let ast =
    try Parser.parse src with Parser.Error (msg, off) -> raise (Parse_error (msg, off))
  in
  let result, trace =
    Holistic_obs.Obs.with_capture (fun () ->
        Holistic_obs.Obs.span "sql.query" (fun () ->
            try
              Planner.run ?pool ?fanout ?sample ?task_size ?algorithm ?evaluator ?governor
                ?mem_limit ?session ~tables ast
            with Planner.Error msg -> raise (Semantic_error msg)))
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b (explain_ast ast);
  Buffer.add_string b
    (Printf.sprintf "rows: %d (%s)\n" (Holistic_storage.Table.nrows result)
       (Holistic_obs.Obs.human_bytes (Holistic_storage.Table.footprint_bytes result)));
  Buffer.add_string b (Holistic_obs.Obs.render trace);
  (result, Buffer.contents b)

let explain_analyze_trace ?pool ?fanout ?sample ?task_size ?algorithm ?evaluator ?governor
    ?mem_limit ?session ~tables src =
  let ast =
    try Parser.parse src with Parser.Error (msg, off) -> raise (Parse_error (msg, off))
  in
  Holistic_obs.Obs.with_capture (fun () ->
      Holistic_obs.Obs.span "sql.query" (fun () ->
          try
            Planner.run ?pool ?fanout ?sample ?task_size ?algorithm ?evaluator ?governor
              ?mem_limit ?session ~tables ast
          with Planner.Error msg -> raise (Semantic_error msg)))

let session_explain_analyze ?fanout ?sample ?task_size ?algorithm ?evaluator ?(name = "t")
    session src =
  explain_analyze ?fanout ?sample ?task_size ?algorithm ?evaluator ~session
    ~tables:[ (name, Session.table session) ]
    src
