(** Front door of the SQL layer: parse and execute the window-function SQL
    subset, including the paper's proposed extensions (§2.4) — framed
    DISTINCT aggregates, framed percentiles/ranks/value functions with a
    second ORDER BY, FILTER, frame exclusion, named WINDOW clauses.

    {[
      let result =
        Sql.query
          ~tables:[ ("lineitem", lineitem) ]
          "select l_shipdate, \
                  percentile_disc(0.99 order by l_receiptdate - l_shipdate) over w \
           from lineitem \
           window w as (order by l_shipdate \
                        range between interval '1 week' preceding and current row)"
    ]} *)

open Holistic_storage

exception Parse_error of string * int  (** message, character offset *)

exception Semantic_error of string

module Session = Holistic_window.Session

module Query_stats = Holistic_window.Query_stats
(** Per-query resource records and the [holiwin-qlog/1] JSONL query log;
    see {!Holistic_window.Query_stats}. *)

val query :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?algorithm:Holistic_window.Window_func.algorithm ->
  ?evaluator:Holistic_window.Evaluator_choice.name ->
  ?governor:Holistic_window.Mem_governor.t ->
  ?mem_limit:int ->
  ?session:Session.t ->
  ?query_log:Query_stats.Log.sink ->
  tables:(string * Table.t) list ->
  string ->
  Table.t
(** Parses and executes one SELECT statement against the named tables.
    [evaluator] forces every [Auto] window item onto one backend (strict;
    see {!Holistic_window.Window_plan.run}); [governor]/[mem_limit] bound
    the window stage's working set — sorts spill to disk runs and index
    builds stream under pressure, with bit-identical results (the CLI's
    --mem-limit flag and the [HOLIWIN_MEM_LIMIT] environment variable; see
    {!Holistic_window.Mem_governor}); [session] is a persistent
    structure store consulted and refilled when the FROM table is the
    session's table and no WHERE clause filters it; [query_log] (or, when
    absent, a sink opened once from [HOLIWIN_QUERY_LOG]) receives one
    {!Query_stats.t} record per statement, collected with
    {!Query_stats.measure}.  Without a sink the statement still feeds the
    [sql.query_ns] latency histograms whenever tracing is enabled. *)

(** {2 Sessions}

    A session pins one table and carries its sorted orders, partition
    layouts, per-partition index structures and per-item outputs across
    queries. Appends and evictions maintain the cached state incrementally
    (run-stacked merge-sort trees, extended rank encodings, merged sort
    runs) instead of discarding it; results are bit-identical to evaluating
    from scratch. See {!Holistic_window.Session}. *)

val session_create : ?pool:Holistic_parallel.Task_pool.t -> Table.t -> Session.t
(** A fresh session owning [table]; structures populate on first query. *)

val session_table : Session.t -> Table.t
(** The session's current table (appends and evictions replace it). *)

val session_query :
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?algorithm:Holistic_window.Window_func.algorithm ->
  ?evaluator:Holistic_window.Evaluator_choice.name ->
  ?query_log:Query_stats.Log.sink ->
  ?name:string ->
  Session.t ->
  string ->
  Table.t
(** {!query} with the session's table bound under [name] (default ["t"])
    and the session's structure store engaged. *)

val session_append : Session.t -> Table.t -> unit
(** Appends [delta]'s rows (same schema) to the session's table and
    incrementally maintains every cached structure; see
    {!Holistic_window.Session.append_rows}. *)

val session_evict : Session.t -> string -> unit
(** [session_evict s pred] parses [pred] as a scalar predicate over the
    session table's columns (e.g. ["ts < date '2024-01-01'"]) and bulk-
    evicts every row it selects, compacting the cached structures in place;
    see {!Holistic_window.Session.evict_where}.
    @raise Parse_error / Semantic_error on a malformed predicate. *)

val session_explain_analyze :
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?algorithm:Holistic_window.Window_func.algorithm ->
  ?evaluator:Holistic_window.Evaluator_choice.name ->
  ?name:string ->
  Session.t ->
  string ->
  Table.t * string
(** {!explain_analyze} through the session: the report's sort and build
    spans carry cache provenance tags — [reused(epoch=k)],
    [maintained(+n rows)], [rebuilt(stale)] — showing how each structure
    was obtained. *)

val explain : string -> string
(** Parses the statement and renders the recognised structure (for the CLI
    and tests). *)

val explain_analyze :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?algorithm:Holistic_window.Window_func.algorithm ->
  ?evaluator:Holistic_window.Evaluator_choice.name ->
  ?governor:Holistic_window.Mem_governor.t ->
  ?mem_limit:int ->
  ?session:Session.t ->
  tables:(string * Table.t) list ->
  string ->
  Table.t * string
(** EXPLAIN ANALYZE: executes the statement with {!Holistic_obs.Obs}
    tracing captured around it and returns the result together with a
    report — the {!explain} plan description followed by the executed span
    tree (per-stage wall time, sort kind/path provenance, rows, partitions,
    per-item evaluation) and the non-zero counters (cache hits/misses,
    plan sharing statistics, OVC merge decisions, pool activity). Wall
    times print as ["%.3f ms"]; on a 1-domain [pool] everything else is
    deterministic. The previous tracing state is restored afterwards. *)

val explain_analyze_trace :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?algorithm:Holistic_window.Window_func.algorithm ->
  ?evaluator:Holistic_window.Evaluator_choice.name ->
  ?governor:Holistic_window.Mem_governor.t ->
  ?mem_limit:int ->
  ?session:Session.t ->
  tables:(string * Table.t) list ->
  string ->
  Table.t * Holistic_obs.Obs.trace
(** Like {!explain_analyze} but returning the raw captured trace, e.g. for
    {!Holistic_obs.Obs.write_chrome_trace}. *)

val print_query : Ast.query -> string
(** Renders a query AST back to SQL text; [parse (print_query q)] yields a
    query equal to [q] (the parser round-trip property checked by the test
    suite). *)
