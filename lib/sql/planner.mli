(** Semantic analysis and execution of parsed queries: resolves columns and
    named windows, lowers AST expressions to {!Holistic_storage.Expr},
    window calls to {!Holistic_window.Window_func} items, groups calls by
    window specification and runs the window operator once per group. *)

open Holistic_storage

exception Error of string

val run :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?algorithm:Holistic_window.Window_func.algorithm ->
  ?evaluator:Holistic_window.Evaluator_choice.name ->
  tables:(string * Table.t) list ->
  Ast.query ->
  Table.t
(** Executes the query; [algorithm] overrides the evaluation algorithm of
    every window function (for the CLI's --algorithm flag); [evaluator]
    forces every [Auto] item onto one backend, strictly — an unsupported
    (function, backend) pair raises (for the CLI's --evaluator flag; see
    {!Holistic_window.Window_plan.run}).
    @raise Error on unknown tables/columns/functions or malformed calls. *)
