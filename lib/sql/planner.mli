(** Semantic analysis and execution of parsed queries: resolves columns and
    named windows, lowers AST expressions to {!Holistic_storage.Expr},
    window calls to {!Holistic_window.Window_func} items, groups calls by
    window specification and runs the window operator once per group. *)

open Holistic_storage

exception Error of string

val lower_expr : Table.t -> Ast.expr -> Expr.t
(** Lowers a scalar AST expression against [table]'s columns (for the
    session layer's eviction predicates and tests).
    @raise Error on unknown columns or functions. *)

val run :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?algorithm:Holistic_window.Window_func.algorithm ->
  ?evaluator:Holistic_window.Evaluator_choice.name ->
  ?governor:Holistic_window.Mem_governor.t ->
  ?mem_limit:int ->
  ?session:Holistic_window.Session.t ->
  tables:(string * Table.t) list ->
  Ast.query ->
  Table.t
(** Executes the query; [algorithm] overrides the evaluation algorithm of
    every window function (for the CLI's --algorithm flag); [evaluator]
    forces every [Auto] item onto one backend, strictly — an unsupported
    (function, backend) pair raises (for the CLI's --evaluator flag; see
    {!Holistic_window.Window_plan.run}); [governor]/[mem_limit] bound the
    window stage's working set, spilling sorts and streaming builds under
    pressure (for the CLI's --mem-limit flag; see
    {!Holistic_window.Mem_governor}); [session] is a persistent
    structure store consulted when the query's FROM table is the session's
    table and no WHERE clause filters it (see
    {!Holistic_window.Window_plan.run}).
    @raise Error on unknown tables/columns/functions or malformed calls. *)

val run_with_stats :
  ?pool:Holistic_parallel.Task_pool.t ->
  ?fanout:int ->
  ?sample:int ->
  ?task_size:int ->
  ?algorithm:Holistic_window.Window_func.algorithm ->
  ?evaluator:Holistic_window.Evaluator_choice.name ->
  ?governor:Holistic_window.Mem_governor.t ->
  ?mem_limit:int ->
  ?session:Holistic_window.Session.t ->
  tables:(string * Table.t) list ->
  Ast.query ->
  Table.t * Holistic_window.Window_plan.stats option
(** {!run} plus the window plan's sharing statistics ([None] when the
    query has no window calls) — the sort/build provenance the query log
    records per query. *)

