open Holistic_storage
open Holistic_window
module Obs = Holistic_obs.Obs
module Wf = Window_func

exception Error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

let parse_date_lit s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> begin
      try Value.date_of_ymd (int_of_string y) (int_of_string m) (int_of_string d)
      with _ -> errorf "malformed date literal %S" s
    end
  | _ -> errorf "malformed date literal %S (expected YYYY-MM-DD)" s

let parse_interval_lit s =
  let parts = String.split_on_char ' ' (String.trim (String.lowercase_ascii s)) in
  let rec go months days = function
    | [] -> { Value.months; days }
    | n :: unit :: rest -> begin
        let n = try int_of_string n with _ -> errorf "malformed interval %S" s in
        match unit with
        | "year" | "years" -> go (months + (12 * n)) days rest
        | "month" | "months" | "mon" | "mons" -> go (months + n) days rest
        | "week" | "weeks" -> go months (days + (7 * n)) rest
        | "day" | "days" -> go months (days + n) rest
        | _ -> errorf "unknown interval unit %S" unit
      end
    | _ -> errorf "malformed interval %S" s
  in
  go 0 0 parts

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

let rec lower_expr table (e : Ast.expr) : Expr.t =
  match e with
  | Ast.Col "*" -> errorf "'*' is only valid in count(*)"
  | Ast.Col name ->
      if Table.column_opt table name = None then errorf "unknown column %S" name;
      Expr.Col name
  | Ast.Int_lit v -> Expr.Const (Value.Int v)
  | Ast.Float_lit v -> Expr.Const (Value.Float v)
  | Ast.String_lit s -> Expr.Const (Value.String s)
  | Ast.Date_lit s -> Expr.Const (Value.Date (parse_date_lit s))
  | Ast.Interval_lit s -> Expr.Const (Value.Interval (parse_interval_lit s))
  | Ast.Null_lit -> Expr.Const Value.Null
  | Ast.Bool_lit b -> Expr.Const (Value.Bool b)
  | Ast.Unop ("-", a) -> Expr.Neg (lower_expr table a)
  | Ast.Unop ("not", a) -> Expr.Not (lower_expr table a)
  | Ast.Unop (op, _) -> errorf "unknown unary operator %S" op
  | Ast.Is_null (a, negated) ->
      if negated then Expr.Is_not_null (lower_expr table a) else Expr.Is_null (lower_expr table a)
  | Ast.Func ("mod", [ a; b ]) -> Expr.Mod (lower_expr table a, lower_expr table b)
  | Ast.Func ("abs", [ a ]) -> Expr.Abs (lower_expr table a)
  | Ast.Func ("greatest", args) when args <> [] ->
      Expr.Greatest (List.map (lower_expr table) args)
  | Ast.Func ("least", args) when args <> [] -> Expr.Least (List.map (lower_expr table) args)
  | Ast.Func (f, _) -> errorf "unknown scalar function %S" f
  | Ast.Case (branches, else_) ->
      Expr.Case
        ( List.map (fun (c, v) -> (lower_expr table c, lower_expr table v)) branches,
          Option.map (lower_expr table) else_ )
  | Ast.Binop (op, a, b) -> begin
      let a = lower_expr table a and b = lower_expr table b in
      match op with
      | "+" -> Expr.Add (a, b)
      | "-" -> Expr.Sub (a, b)
      | "*" -> Expr.Mul (a, b)
      | "/" -> Expr.Div (a, b)
      | "%" -> Expr.Mod (a, b)
      | "=" -> Expr.Eq (a, b)
      | "<>" -> Expr.Ne (a, b)
      | "<" -> Expr.Lt (a, b)
      | "<=" -> Expr.Le (a, b)
      | ">" -> Expr.Gt (a, b)
      | ">=" -> Expr.Ge (a, b)
      | "and" -> Expr.And (a, b)
      | "or" -> Expr.Or (a, b)
      | _ -> errorf "unknown operator %S" op
    end

let lower_order table (keys : Ast.order_key list) : Sort_spec.t =
  List.map
    (fun (k : Ast.order_key) ->
      {
        Sort_spec.expr = lower_expr table k.Ast.expr;
        direction = (if k.Ast.desc then Sort_spec.Desc else Sort_spec.Asc);
        nulls =
          (match k.Ast.nulls_first with
          | None -> Sort_spec.Nulls_default
          | Some true -> Sort_spec.Nulls_first
          | Some false -> Sort_spec.Nulls_last);
      })
    keys

(* ------------------------------------------------------------------ *)
(* Window lowering                                                     *)
(* ------------------------------------------------------------------ *)

let lower_bound table (b : Ast.frame_bound) =
  match b with
  | Ast.Unbounded_preceding -> Window_spec.Unbounded_preceding
  | Ast.Preceding e -> Window_spec.Preceding (lower_expr table e)
  | Ast.Current_row -> Window_spec.Current_row
  | Ast.Following e -> Window_spec.Following (lower_expr table e)
  | Ast.Unbounded_following -> Window_spec.Unbounded_following

let lower_frame table (f : Ast.frame) : Window_spec.frame =
  {
    mode = (match f.Ast.mode with `Rows -> Window_spec.Rows | `Range -> Window_spec.Range | `Groups -> Window_spec.Groups);
    start_bound = lower_bound table f.Ast.start_bound;
    end_bound = lower_bound table f.Ast.end_bound;
    exclusion =
      (match f.Ast.exclusion with
      | Ast.No_others -> Window_spec.Exclude_no_others
      | Ast.Current_row_x -> Window_spec.Exclude_current_row
      | Ast.Group_x -> Window_spec.Exclude_group
      | Ast.Ties_x -> Window_spec.Exclude_ties);
  }

(* resolve named-window references (WINDOW w AS (...), OVER w, OVER (w ...)) *)
let rec resolve_window named (w : Ast.window) : Ast.window =
  match w.Ast.base with
  | None -> w
  | Some name -> begin
      match List.assoc_opt name named with
      | None -> errorf "unknown window %S" name
      | Some base ->
          let base = resolve_window named base in
          if w.Ast.partition_by <> [] then
            errorf "window %S cannot redefine PARTITION BY of its base" name;
          if w.Ast.order_by <> [] && base.Ast.order_by <> [] then
            errorf "window %S cannot redefine ORDER BY of its base" name;
          {
            Ast.base = None;
            partition_by = base.Ast.partition_by;
            order_by = (if w.Ast.order_by <> [] then w.Ast.order_by else base.Ast.order_by);
            frame = (match w.Ast.frame with Some f -> Some f | None -> base.Ast.frame);
          }
    end

let lower_window table named (w : Ast.window) : Window_spec.t =
  let w = resolve_window named w in
  {
    Window_spec.partition_by = List.map (lower_expr table) w.Ast.partition_by;
    order_by = lower_order table w.Ast.order_by;
    frame = Option.map (lower_frame table) w.Ast.frame;
  }

(* ------------------------------------------------------------------ *)
(* Window function lowering                                            *)
(* ------------------------------------------------------------------ *)

let const_int = function
  | Ast.Int_lit v -> v
  | _ -> errorf "expected an integer literal argument"

let const_fraction = function
  | Ast.Float_lit v -> v
  | Ast.Int_lit v -> float_of_int v
  | _ -> errorf "expected a numeric percentile fraction"

let lower_call table (c : Ast.window_call) : Wf.func =
  let arg n =
    match List.nth_opt c.Ast.args n with
    | Some a -> a
    | None -> errorf "%s: missing argument %d" c.Ast.func (n + 1)
  in
  let expr n = lower_expr table (arg n) in
  let order = lower_order table c.Ast.arg_order_by in
  let nargs = List.length c.Ast.args in
  let check_args expected =
    if nargs <> expected then errorf "%s expects %d argument(s), got %d" c.Ast.func expected nargs
  in
  let no_order () =
    if order <> [] then errorf "%s does not take an ORDER BY inside the call" c.Ast.func
  in
  let value_func ?(ignore_nulls = c.Ast.ignore_nulls) n =
    { Wf.arg = expr n; order; ignore_nulls }
  in
  match c.Ast.func with
  | "count" when c.Ast.args = [ Ast.Col "*" ] ->
      no_order ();
      Wf.Aggregate { kind = Wf.Count_star; arg = None; distinct = false }
  | "count" ->
      check_args 1;
      no_order ();
      Wf.Aggregate { kind = Wf.Count; arg = Some (expr 0); distinct = c.Ast.distinct }
  | "sum" | "avg" | "min" | "max" ->
      check_args 1;
      no_order ();
      let kind =
        match c.Ast.func with
        | "sum" -> Wf.Sum
        | "avg" -> Wf.Avg
        | "min" -> Wf.Min
        | _ -> Wf.Max
      in
      Wf.Aggregate { kind; arg = Some (expr 0); distinct = c.Ast.distinct }
  | "rank" ->
      check_args 0;
      Wf.Rank order
  | "dense_rank" ->
      check_args 0;
      Wf.Dense_rank order
  | "row_number" ->
      check_args 0;
      Wf.Row_number order
  | "percent_rank" ->
      check_args 0;
      Wf.Percent_rank order
  | "cume_dist" ->
      check_args 0;
      Wf.Cume_dist order
  | "ntile" ->
      check_args 1;
      Wf.Ntile (const_int (arg 0), order)
  | "percentile_disc" ->
      check_args 1;
      if order = [] then errorf "percentile_disc requires ORDER BY inside the call";
      Wf.Percentile_disc (const_fraction (arg 0), order)
  | "percentile_cont" ->
      check_args 1;
      if order = [] then errorf "percentile_cont requires ORDER BY inside the call";
      Wf.Percentile_cont (const_fraction (arg 0), order)
  | "median" ->
      check_args 1;
      no_order ();
      Wf.Percentile_disc (0.5, [ Sort_spec.asc (lower_expr table (arg 0)) ])
  | "mode" ->
      check_args 1;
      no_order ();
      Wf.Mode (expr 0)
  | "first_value" ->
      check_args 1;
      Wf.First_value (value_func 0)
  | "last_value" ->
      check_args 1;
      Wf.Last_value (value_func 0)
  | "nth_value" ->
      check_args 2;
      Wf.Nth_value (const_int (arg 1), c.Ast.from_last, value_func 0)
  | "lead" | "lag" ->
      if nargs < 1 || nargs > 3 then errorf "%s expects 1-3 arguments" c.Ast.func;
      let offset = if nargs >= 2 then const_int (arg 1) else 1 in
      let default = if nargs >= 3 then Some (expr 2) else None in
      if c.Ast.func = "lead" then Wf.Lead (offset, default, value_func 0)
      else Wf.Lag (offset, default, value_func 0)
  | f -> errorf "unknown window function %S" f

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)
(* ------------------------------------------------------------------ *)

let run_with_stats ?pool ?fanout ?sample ?task_size ?algorithm ?evaluator ?governor ?mem_limit
    ?session ~tables (q : Ast.query) =
  let table =
    match List.assoc_opt q.Ast.from tables with
    | Some t -> t
    | None -> errorf "unknown table %S" q.Ast.from
  in
  (* WHERE *)
  let table =
    match q.Ast.where with
    | None -> table
    | Some pred ->
        let before = Table.nrows table in
        let kept = ref 0 in
        let filtered =
          Obs.span "sql.where"
            ~args:(fun () -> [ ("in", string_of_int before); ("out", string_of_int !kept) ])
            (fun () ->
              let f = Expr.compile table (lower_expr table pred) in
              let keep = ref [] in
              for i = before - 1 downto 0 do
                if Expr.to_bool (f i) then keep := i :: !keep
              done;
              let keep = Array.of_list !keep in
              kept := Array.length keep;
              let filtered = Table.gather table keep in
              Obs.record_bytes (fun () -> Table.footprint_bytes filtered);
              filtered)
        in
        filtered
  in
  (* name each select item *)
  let used = Hashtbl.create 16 in
  let fresh base =
    let rec go k =
      let name = if k = 0 then base else Printf.sprintf "%s_%d" base k in
      if Hashtbl.mem used name || Table.column_opt table name <> None then go (k + 1)
      else begin
        Hashtbl.add used name ();
        name
      end
    in
    go 0
  in
  let items =
    List.map
      (fun (it : Ast.select_item) ->
        let base_name =
          match it.Ast.alias, it.Ast.value with
          | Some a, _ -> a
          | None, `Expr (Ast.Col c) -> c
          | None, `Expr _ -> "expr"
          | None, `Window w -> w.Ast.func
        in
        let name =
          match it.Ast.alias, it.Ast.value with
          | None, `Expr (Ast.Col c) when Table.column_opt table c <> None -> c
          | _ -> fresh base_name
        in
        (name, it.Ast.value))
      q.Ast.select
  in
  (* evaluate window calls, grouped by their window specification *)
  let calls =
    List.filter_map
      (fun (name, v) -> match v with `Window w -> Some (name, w) | `Expr _ -> None)
      items
  in
  (* Lower every call into one window plan. Clauses keep the first-appearance
     order of their specs (and items within a clause), so evaluation order —
     and hence error attribution — is deterministic, unlike the previous
     [Hashtbl.fold] over spec groups. The plan shares partition passes, sorts
     and per-partition index structures across clauses. *)
  let clauses = ref [] in
  List.iter
    (fun (name, (w : Ast.window_call)) ->
      let spec = lower_window table q.Ast.windows w.Ast.over in
      let item =
        Wf.make
          ?filter:(Option.map (lower_expr table) w.Ast.filter)
          ?algorithm ~name (lower_call table w)
      in
      match List.find_opt (fun (s, _) -> s = spec) !clauses with
      | Some (_, items) -> items := item :: !items
      | None -> clauses := !clauses @ [ (spec, ref [ item ]) ])
    calls;
  let clauses =
    List.map (fun (spec, items) -> { Window_plan.spec; items = List.rev !items }) !clauses
  in
  let plan_stats = ref None in
  let with_windows =
    if clauses = [] then table
    else
      (* The session store only engages when [table] is the session's own
         table (physical equality, checked inside Window_plan) — a WHERE
         clause materialises a filtered copy, so filtered queries fall
         through to the stateless path untouched. *)
      Obs.span "sql.window" (fun () ->
          let t, st =
            Window_plan.run_with_stats ?pool ?fanout ?sample ?task_size ?evaluator ?governor
              ?mem_limit ?session table clauses
          in
          plan_stats := Some st;
          t)
  in
  (* projection: base columns for window outputs, fresh columns for exprs *)
  let out_columns =
    Obs.span "sql.project"
      ~args:(fun () -> [ ("columns", string_of_int (List.length items)) ])
    @@ fun () ->
    List.map
      (fun (name, v) ->
        match v with
        | `Window _ -> (name, Table.column with_windows name)
        | `Expr (Ast.Col c) when name = c && Table.column_opt with_windows c <> None ->
            (name, Table.column with_windows c)
        | `Expr e ->
            let f = Expr.compile with_windows (lower_expr table e) in
            let col = Column.of_values (Array.init (Table.nrows with_windows) f) in
            (* only freshly materialised expression columns count; window
               outputs and pass-through base columns are shared *)
            Obs.record_bytes (fun () -> Column.footprint_bytes col);
            (name, col))
      items
  in
  let result = Table.create out_columns in
  (* final ORDER BY evaluates against the pre-projection table so it can
     reference any base column *)
  let result =
    if q.Ast.order_by = [] then result
    else
      Obs.span "sql.order_by"
        ~args:(fun () -> [ ("rows", string_of_int (Table.nrows result)) ])
      @@ fun () ->
      begin
      let sources =
        List.concat_map
          (fun (k : Ast.order_key) ->
            (* keys may name output columns or base columns *)
            let table_for =
              match k.Ast.expr with
              | Ast.Col c when Table.column_opt result c <> None -> result
              | _ -> with_windows
            in
            List.map (fun key -> { Key_codec.table = table_for; key }) (lower_order table_for [ k ]))
          q.Ast.order_by
      in
      let n = Table.nrows result in
      let kc = Key_codec.compile_sources ~n sources in
      let sort_pool = match pool with Some p -> p | None -> Holistic_parallel.Task_pool.default () in
      let perm, _ =
        Holistic_sort.Parallel_sort.sort_encoded sort_pool ~n ~words:kc.Key_codec.words
          ?tie:kc.Key_codec.residual ()
      in
      Table.gather result perm
    end
  in
  let result =
    match q.Ast.limit with
    | None -> result
    | Some k -> Table.gather result (Array.init (min k (Table.nrows result)) (fun i -> i))
  in
  (result, !plan_stats)

let run ?pool ?fanout ?sample ?task_size ?algorithm ?evaluator ?governor ?mem_limit ?session
    ~tables q =
  fst
    (run_with_stats ?pool ?fanout ?sample ?task_size ?algorithm ?evaluator ?governor ?mem_limit
       ?session ~tables q)
