(** Parallel sorting: task-local introsort runs + balanced parallel multiway
    merge (paper §5.2). The phases are exposed separately so that pipelines
    can time them individually (Fig. 14). *)

open Holistic_parallel

val sort_runs :
  Task_pool.t ->
  ?task_size:int ->
  key:int array ->
  payload:int array ->
  unit ->
  Multiway.run array
(** Sorts consecutive chunks of [task_size] (default {!Task_pool.default_task_size})
    elements in parallel, each by [(key, payload)] lexicographically, and
    returns the run descriptors. *)

val merge_runs :
  Task_pool.t -> key:int array -> payload:int array -> runs:Multiway.run array -> unit
(** Merges the given sorted runs (which must tile the arrays) back into the
    arrays, in parallel: the output is split at balanced global ranks and
    each segment is merged by an independent task. *)

val sort_pairs : Task_pool.t -> key:int array -> payload:int array -> unit
(** [sort_runs] followed by [merge_runs]: a stable parallel sort by
    [(key, payload)]. *)

val sort_multiword : Task_pool.t -> ?task_size:int -> mw:Multiway.multiword -> unit -> unit
(** Parallel sort of a multi-word normalized-key permutation: task-local
    introsort runs on [(key0, deep-tie)], then multisequence selection at
    balanced global ranks and per-segment offset-value coded loser-tree
    merges ({!Multiway.merge_multiword}). Sorts [mw.key0]/[mw.payload] in
    place by {!Multiway.compare_positions}. On a single-domain pool with no
    explicit [task_size] the whole range is one run and the merge phase is
    skipped (also in {!sort_encoded}): the split only pays off when the
    merges run concurrently. *)

val sort_encoded :
  Task_pool.t ->
  ?task_size:int ->
  n:int ->
  words:int array array ->
  ?tie:(int -> int -> int) ->
  unit ->
  int array * int array
(** [sort_encoded pool ~n ~words ?tie ()] sorts rows [0..n-1] by the
    row-indexed key words [words] in order, then [tie] (a residual
    comparator on row ids), then ascending row id, and returns
    [(perm, sorted_key0)]: the sorted permutation and the leading key
    word gathered in sorted order ([[||]] when [words] is empty). Single
    word, no residual uses the existing lexicographic run/merge path;
    anything wider goes through {!sort_multiword}. *)

val sort_encoded_spill :
  n:int ->
  words:int array array ->
  ?tie:(int -> int -> int) ->
  run_rows:int ->
  read_entries:int ->
  dir:string ->
  ?on_key0:(int -> int -> unit) ->
  ?after_runs:(unit -> unit) ->
  unit ->
  int array * int * int
(** External-memory variant of {!sort_encoded}: forms sorted runs of
    [run_rows] rows sequentially (bounding the transient working set),
    writes each as a checksummed {!Holistic_storage.Run_file} of full
    key words + row id under [dir], then streams all runs through the
    offset-value coded loser-tree merge ({!Multiway.merge_sources}) with
    [read_entries]-entry read buffers per run. Returns
    [(perm, spill_runs, spill_bytes)] — the same permutation
    {!sort_encoded} would produce (the order is a strict total order, so
    any correct merge yields the identical result), plus the run count
    and total bytes written.

    [on_key0 rank key0] is called once per output row in rank order with
    the row's leading key word, letting callers detect partition
    boundaries without materialising the sorted key column.
    [after_runs] fires once formation is complete and before the merge
    allocates its output — the point where [words] may be dropped and
    its memory charge released, since the key words now live on disk.

    All spill files are deleted on return, on success and on failure
    alike; IO failures surface as {!Holistic_storage.Run_file.Error}.
    Updates the always-on counters [sort.spill_bytes] /
    [sort.spill_runs] and tags its [sort.runs] / [sort.merge] spans with
    [spilled(runs=…, bytes)] provenance. *)

val sort : Task_pool.t -> int array -> unit
(** Parallel ascending sort of a plain int array. *)
