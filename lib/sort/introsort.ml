let insertion_threshold = 24

let depth_limit len =
  let d = ref 0 and n = ref len in
  while !n > 1 do
    incr d;
    n := !n lsr 1
  done;
  2 * !d

(* ------------------------------------------------------------------ *)
(* Plain int-array sort                                               *)
(* ------------------------------------------------------------------ *)

let swap (a : int array) i j =
  let t = Array.unsafe_get a i in
  Array.unsafe_set a i (Array.unsafe_get a j);
  Array.unsafe_set a j t

let insertion_sort (a : int array) lo hi =
  for i = lo + 1 to hi - 1 do
    let x = Array.unsafe_get a i in
    let j = ref (i - 1) in
    while !j >= lo && Array.unsafe_get a !j > x do
      Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
      decr j
    done;
    Array.unsafe_set a (!j + 1) x
  done

let sift_down (a : int array) lo len root =
  let root = ref root in
  let continue_ = ref true in
  while !continue_ do
    let child = (2 * !root) + 1 in
    if child >= len then continue_ := false
    else begin
      let child =
        if child + 1 < len
           && Array.unsafe_get a (lo + child) < Array.unsafe_get a (lo + child + 1)
        then child + 1
        else child
      in
      if Array.unsafe_get a (lo + !root) < Array.unsafe_get a (lo + child) then begin
        swap a (lo + !root) (lo + child);
        root := child
      end
      else continue_ := false
    end
  done

let heapsort (a : int array) lo hi =
  let len = hi - lo in
  for root = (len / 2) - 1 downto 0 do
    sift_down a lo len root
  done;
  for last = len - 1 downto 1 do
    swap a lo (lo + last);
    sift_down a lo last 0
  done

let median3 (a : int array) i j k =
  let x = a.(i) and y = a.(j) and z = a.(k) in
  if x < y then if y < z then y else if x < z then z else x
  else if x < z then x
  else if y < z then z
  else y

let rec intro (a : int array) lo hi depth =
  let len = hi - lo in
  if len <= insertion_threshold then insertion_sort a lo hi
  else if depth = 0 then heapsort a lo hi
  else begin
    let p = median3 a lo (lo + (len / 2)) (hi - 1) in
    (* Dutch-national-flag 3-way partition around the fat pivot [p]. *)
    let lt = ref lo and i = ref lo and gt = ref hi in
    while !i < !gt do
      let x = Array.unsafe_get a !i in
      if x < p then begin
        swap a !i !lt;
        incr lt;
        incr i
      end
      else if x > p then begin
        decr gt;
        swap a !i !gt
      end
      else incr i
    done;
    intro a lo !lt (depth - 1);
    intro a !gt hi (depth - 1)
  end

let sort_range a ~lo ~hi =
  if lo < 0 || hi > Array.length a || lo > hi then invalid_arg "Introsort.sort_range";
  intro a lo hi (depth_limit (hi - lo))

let sort a = sort_range a ~lo:0 ~hi:(Array.length a)

(* ------------------------------------------------------------------ *)
(* Lexicographic (key, payload) pair sort                             *)
(* ------------------------------------------------------------------ *)

let swap2 (k : int array) (p : int array) i j =
  let t = Array.unsafe_get k i in
  Array.unsafe_set k i (Array.unsafe_get k j);
  Array.unsafe_set k j t;
  let t = Array.unsafe_get p i in
  Array.unsafe_set p i (Array.unsafe_get p j);
  Array.unsafe_set p j t

(* (k1, p1) < (k2, p2) lexicographically *)
let pair_less k1 p1 k2 p2 = k1 < k2 || (k1 = k2 && p1 < p2)

let insertion_sort2 (k : int array) (p : int array) lo hi =
  for i = lo + 1 to hi - 1 do
    let xk = Array.unsafe_get k i and xp = Array.unsafe_get p i in
    let j = ref (i - 1) in
    while
      !j >= lo && pair_less xk xp (Array.unsafe_get k !j) (Array.unsafe_get p !j)
    do
      Array.unsafe_set k (!j + 1) (Array.unsafe_get k !j);
      Array.unsafe_set p (!j + 1) (Array.unsafe_get p !j);
      decr j
    done;
    Array.unsafe_set k (!j + 1) xk;
    Array.unsafe_set p (!j + 1) xp
  done

let sift_down2 (k : int array) (p : int array) lo len root =
  let root = ref root in
  let continue_ = ref true in
  while !continue_ do
    let child = (2 * !root) + 1 in
    if child >= len then continue_ := false
    else begin
      let child =
        if child + 1 < len
           && pair_less
                (Array.unsafe_get k (lo + child))
                (Array.unsafe_get p (lo + child))
                (Array.unsafe_get k (lo + child + 1))
                (Array.unsafe_get p (lo + child + 1))
        then child + 1
        else child
      in
      if pair_less
           (Array.unsafe_get k (lo + !root))
           (Array.unsafe_get p (lo + !root))
           (Array.unsafe_get k (lo + child))
           (Array.unsafe_get p (lo + child))
      then begin
        swap2 k p (lo + !root) (lo + child);
        root := child
      end
      else continue_ := false
    end
  done

let heapsort2 k p lo hi =
  let len = hi - lo in
  for root = (len / 2) - 1 downto 0 do
    sift_down2 k p lo len root
  done;
  for last = len - 1 downto 1 do
    swap2 k p lo (lo + last);
    sift_down2 k p lo last 0
  done

let rec intro2 (k : int array) (p : int array) lo hi depth =
  let len = hi - lo in
  if len <= insertion_threshold then insertion_sort2 k p lo hi
  else if depth = 0 then heapsort2 k p lo hi
  else begin
    let m = lo + (len / 2) in
    (* median-of-3 on pairs: pick the index of the median *)
    let a = lo and b = m and c = hi - 1 in
    let le i j = not (pair_less k.(j) p.(j) k.(i) p.(i)) in
    let mi = if le a b then if le b c then b else if le a c then c else a
             else if le a c then a
             else if le b c then c
             else b
    in
    let pk = k.(mi) and pp = p.(mi) in
    let lt = ref lo and i = ref lo and gt = ref hi in
    while !i < !gt do
      let xk = Array.unsafe_get k !i and xp = Array.unsafe_get p !i in
      if pair_less xk xp pk pp then begin
        swap2 k p !i !lt;
        incr lt;
        incr i
      end
      else if pair_less pk pp xk xp then begin
        decr gt;
        swap2 k p !i !gt
      end
      else incr i
    done;
    intro2 k p lo !lt (depth - 1);
    intro2 k p !gt hi (depth - 1)
  end

let sort_pairs_range ~key ~payload ~lo ~hi =
  if Array.length key <> Array.length payload then
    invalid_arg "Introsort.sort_pairs: length mismatch";
  if lo < 0 || hi > Array.length key || lo > hi then invalid_arg "Introsort.sort_pairs_range";
  intro2 key payload lo hi (depth_limit (hi - lo))

let sort_pairs ~key ~payload =
  sort_pairs_range ~key ~payload ~lo:0 ~hi:(Array.length key)

(* ------------------------------------------------------------------ *)
(* (key, tie-on-payload) pair sort                                     *)
(* ------------------------------------------------------------------ *)

(* Like the lexicographic pair sort, but key ties are resolved by an
   arbitrary comparator on the payload values (not by payload magnitude):
   this is the multi-word normalized-key sort, where the leading key word is
   compared unboxed and contiguous, and [tie] descends into the remaining
   words / residual comparator only when the leading words collide. [tie]
   must be a strict total order (callers end the chain with a row-id
   compare), so the result is deterministic. *)

let insertion_sort2t (k : int array) (p : int array) tie lo hi =
  for i = lo + 1 to hi - 1 do
    let xk = Array.unsafe_get k i and xp = Array.unsafe_get p i in
    let j = ref (i - 1) in
    while
      !j >= lo
      &&
      let jk = Array.unsafe_get k !j in
      xk < jk || (xk = jk && tie xp (Array.unsafe_get p !j) < 0)
    do
      Array.unsafe_set k (!j + 1) (Array.unsafe_get k !j);
      Array.unsafe_set p (!j + 1) (Array.unsafe_get p !j);
      decr j
    done;
    Array.unsafe_set k (!j + 1) xk;
    Array.unsafe_set p (!j + 1) xp
  done

let sift_down2t (k : int array) (p : int array) tie lo len root =
  let less i j =
    let ki = Array.unsafe_get k i and kj = Array.unsafe_get k j in
    ki < kj || (ki = kj && tie (Array.unsafe_get p i) (Array.unsafe_get p j) < 0)
  in
  let root = ref root in
  let continue_ = ref true in
  while !continue_ do
    let child = (2 * !root) + 1 in
    if child >= len then continue_ := false
    else begin
      let child = if child + 1 < len && less (lo + child) (lo + child + 1) then child + 1 else child in
      if less (lo + !root) (lo + child) then begin
        swap2 k p (lo + !root) (lo + child);
        root := child
      end
      else continue_ := false
    end
  done

let heapsort2t k p tie lo hi =
  let len = hi - lo in
  for root = (len / 2) - 1 downto 0 do
    sift_down2t k p tie lo len root
  done;
  for last = len - 1 downto 1 do
    swap2 k p lo (lo + last);
    sift_down2t k p tie lo last 0
  done

let rec intro2t (k : int array) (p : int array) tie lo hi depth =
  let len = hi - lo in
  if len <= insertion_threshold then insertion_sort2t k p tie lo hi
  else if depth = 0 then heapsort2t k p tie lo hi
  else begin
    let m = lo + (len / 2) in
    let less i j = k.(i) < k.(j) || (k.(i) = k.(j) && tie p.(i) p.(j) < 0) in
    let a = lo and b = m and c = hi - 1 in
    let le i j = not (less j i) in
    let mi = if le a b then if le b c then b else if le a c then c else a
             else if le a c then a
             else if le b c then c
             else b
    in
    let pk = k.(mi) and pp = p.(mi) in
    let lt = ref lo and i = ref lo and gt = ref hi in
    while !i < !gt do
      let xk = Array.unsafe_get k !i and xp = Array.unsafe_get p !i in
      if xk < pk || (xk = pk && tie xp pp < 0) then begin
        swap2 k p !i !lt;
        incr lt;
        incr i
      end
      else if pk < xk || (pk = xk && tie pp xp < 0) then begin
        decr gt;
        swap2 k p !i !gt
      end
      else incr i
    done;
    intro2t k p tie lo !lt (depth - 1);
    intro2t k p tie !gt hi (depth - 1)
  end

let sort_pairs_tie_range ~key ~payload ~tie ~lo ~hi =
  if Array.length key <> Array.length payload then
    invalid_arg "Introsort.sort_pairs_tie_range: length mismatch";
  if lo < 0 || hi > Array.length key || lo > hi then
    invalid_arg "Introsort.sort_pairs_tie_range";
  intro2t key payload tie lo hi (depth_limit (hi - lo))

(* ------------------------------------------------------------------ *)
(* Lexicographic (float key, payload) pair sort                        *)
(* ------------------------------------------------------------------ *)

let swapf (k : float array) (p : int array) i j =
  let t = Array.unsafe_get k i in
  Array.unsafe_set k i (Array.unsafe_get k j);
  Array.unsafe_set k j t;
  let t = Array.unsafe_get p i in
  Array.unsafe_set p i (Array.unsafe_get p j);
  Array.unsafe_set p j t

(* NaN-total lexicographic order: Float.compare sorts NaN below -inf *)
let fpair_less k1 p1 k2 p2 =
  let c = Float.compare k1 k2 in
  c < 0 || (c = 0 && p1 < p2)

let insertion_sortf (k : float array) (p : int array) lo hi =
  for i = lo + 1 to hi - 1 do
    let xk = Array.unsafe_get k i and xp = Array.unsafe_get p i in
    let j = ref (i - 1) in
    while !j >= lo && fpair_less xk xp (Array.unsafe_get k !j) (Array.unsafe_get p !j) do
      Array.unsafe_set k (!j + 1) (Array.unsafe_get k !j);
      Array.unsafe_set p (!j + 1) (Array.unsafe_get p !j);
      decr j
    done;
    Array.unsafe_set k (!j + 1) xk;
    Array.unsafe_set p (!j + 1) xp
  done

let sift_downf (k : float array) (p : int array) lo len root =
  let root = ref root in
  let continue_ = ref true in
  while !continue_ do
    let child = (2 * !root) + 1 in
    if child >= len then continue_ := false
    else begin
      let child =
        if child + 1 < len
           && fpair_less
                (Array.unsafe_get k (lo + child))
                (Array.unsafe_get p (lo + child))
                (Array.unsafe_get k (lo + child + 1))
                (Array.unsafe_get p (lo + child + 1))
        then child + 1
        else child
      in
      if fpair_less
           (Array.unsafe_get k (lo + !root))
           (Array.unsafe_get p (lo + !root))
           (Array.unsafe_get k (lo + child))
           (Array.unsafe_get p (lo + child))
      then begin
        swapf k p (lo + !root) (lo + child);
        root := child
      end
      else continue_ := false
    end
  done

let heapsortf k p lo hi =
  let len = hi - lo in
  for root = (len / 2) - 1 downto 0 do
    sift_downf k p lo len root
  done;
  for last = len - 1 downto 1 do
    swapf k p lo (lo + last);
    sift_downf k p lo last 0
  done

let rec introf (k : float array) (p : int array) lo hi depth =
  let len = hi - lo in
  if len <= insertion_threshold then insertion_sortf k p lo hi
  else if depth = 0 then heapsortf k p lo hi
  else begin
    let b = lo + (len / 2) and c = hi - 1 in
    let le i j = not (fpair_less k.(j) p.(j) k.(i) p.(i)) in
    let mi = if le lo b then if le b c then b else if le lo c then c else lo
             else if le lo c then lo
             else if le b c then c
             else b
    in
    let pk = k.(mi) and pp = p.(mi) in
    let lt = ref lo and i = ref lo and gt = ref hi in
    while !i < !gt do
      let xk = Array.unsafe_get k !i and xp = Array.unsafe_get p !i in
      if fpair_less xk xp pk pp then begin
        swapf k p !i !lt;
        incr lt;
        incr i
      end
      else if fpair_less pk pp xk xp then begin
        decr gt;
        swapf k p !i !gt
      end
      else incr i
    done;
    introf k p lo !lt (depth - 1);
    introf k p !gt hi (depth - 1)
  end

let sort_float_pairs ~key ~payload =
  if Array.length key <> Array.length payload then
    invalid_arg "Introsort.sort_float_pairs: length mismatch";
  introf key payload 0 (Array.length key) (depth_limit (Array.length key))

(* ------------------------------------------------------------------ *)
(* Comparator-based element sort                                      *)
(* ------------------------------------------------------------------ *)

let insertion_sort_by (a : int array) cmp lo hi =
  for i = lo + 1 to hi - 1 do
    let x = Array.unsafe_get a i in
    let j = ref (i - 1) in
    while !j >= lo && cmp (Array.unsafe_get a !j) x > 0 do
      Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
      decr j
    done;
    Array.unsafe_set a (!j + 1) x
  done

let sift_down_by (a : int array) cmp lo len root =
  let root = ref root in
  let continue_ = ref true in
  while !continue_ do
    let child = (2 * !root) + 1 in
    if child >= len then continue_ := false
    else begin
      let child =
        if child + 1 < len
           && cmp (Array.unsafe_get a (lo + child)) (Array.unsafe_get a (lo + child + 1)) < 0
        then child + 1
        else child
      in
      if cmp (Array.unsafe_get a (lo + !root)) (Array.unsafe_get a (lo + child)) < 0
      then begin
        swap a (lo + !root) (lo + child);
        root := child
      end
      else continue_ := false
    end
  done

let heapsort_by a cmp lo hi =
  let len = hi - lo in
  for root = (len / 2) - 1 downto 0 do
    sift_down_by a cmp lo len root
  done;
  for last = len - 1 downto 1 do
    swap a lo (lo + last);
    sift_down_by a cmp lo last 0
  done

let rec intro_by (a : int array) cmp lo hi depth =
  let len = hi - lo in
  if len <= insertion_threshold then insertion_sort_by a cmp lo hi
  else if depth = 0 then heapsort_by a cmp lo hi
  else begin
    let b = lo + (len / 2) and c = hi - 1 in
    let le i j = cmp a.(i) a.(j) <= 0 in
    let mi = if le lo b then if le b c then b else if le lo c then c else lo
             else if le lo c then lo
             else if le b c then c
             else b
    in
    let p = a.(mi) in
    let lt = ref lo and i = ref lo and gt = ref hi in
    while !i < !gt do
      let x = Array.unsafe_get a !i in
      let s = cmp x p in
      if s < 0 then begin
        swap a !i !lt;
        incr lt;
        incr i
      end
      else if s > 0 then begin
        decr gt;
        swap a !i !gt
      end
      else incr i
    done;
    intro_by a cmp lo !lt (depth - 1);
    intro_by a cmp !gt hi (depth - 1)
  end

let sort_by a ~cmp = intro_by a cmp 0 (Array.length a) (depth_limit (Array.length a))

let sort_by_range a ~cmp ~lo ~hi =
  if lo < 0 || hi > Array.length a || lo > hi then invalid_arg "Introsort.sort_by_range";
  intro_by a cmp lo hi (depth_limit (hi - lo))

let sort_indices_by n ~cmp =
  let idx = Array.init n (fun i -> i) in
  let stable_cmp i j =
    let c = cmp i j in
    if c <> 0 then c else compare i j
  in
  sort_by idx ~cmp:stable_cmp;
  idx
