open Holistic_parallel
module Obs = Holistic_obs.Obs

(* Transient merge scratch: two arrays the size of the input per merge
   phase.  Counted separately from [mem.structure_bytes] because the
   total depends on pool size and run count, so it must not feed the
   deterministic structure tally that goldens and the bench gate check. *)
let c_scratch_bytes = Obs.Counter.make "sort.scratch_bytes"

let note_scratch n =
  Obs.Counter.add c_scratch_bytes (8 * 2 * n);
  Obs.record_bytes (fun () -> 8 * (2 + (2 * n)))

let sort_runs pool ?(task_size = Task_pool.default_task_size) ~key ~payload () =
  let n = Array.length key in
  if Array.length payload <> n then invalid_arg "Parallel_sort.sort_runs: length mismatch";
  let nruns = if n = 0 then 0 else ((n - 1) / task_size) + 1 in
  let runs =
    Array.init nruns (fun r ->
        { Multiway.lo = r * task_size; hi = min n ((r + 1) * task_size) })
  in
  Obs.span "sort.runs"
    ~args:(fun () -> [ ("n", string_of_int n); ("runs", string_of_int nruns) ])
    (fun () ->
      Task_pool.run_list pool
        (Array.to_list
           (Array.map
              (fun { Multiway.lo; hi } ->
                fun () -> Introsort.sort_pairs_range ~key ~payload ~lo ~hi)
              runs)));
  runs

let merge_runs pool ~key ~payload ~runs =
  let total = Multiway.total_length runs in
  if Array.length runs > 1 then
    Obs.span "sort.merge"
      ~args:(fun () ->
        [ ("n", string_of_int total); ("runs", string_of_int (Array.length runs)) ])
    @@ fun () ->
    begin
    note_scratch total;
    let scratch_key = Array.make total 0 in
    let scratch_payload = Array.make total 0 in
    let segments = max 1 (Task_pool.size pool) in
    let rank_of s = s * total / segments in
    let cuts = Array.init (segments + 1) (fun s -> Multiway.split_at_rank ~src:key ~runs ~rank:(rank_of s)) in
    let tasks = ref [] in
    for s = segments - 1 downto 0 do
      let sub_runs =
        Array.init (Array.length runs) (fun r ->
            { Multiway.lo = cuts.(s).(r); hi = cuts.(s + 1).(r) })
      in
      let dst_pos = rank_of s in
      tasks :=
        (fun () ->
          Multiway.merge_pairs ~key ~payload ~runs:sub_runs ~dst_key:scratch_key
            ~dst_payload:scratch_payload ~dst_pos)
        :: !tasks
    done;
    Task_pool.run_list pool !tasks;
    (* Copy the merged result back, in parallel chunks. *)
    Task_pool.parallel_for pool ~lo:0 ~hi:total ~chunk:(max 1 (total / (4 * segments)))
      (fun lo hi ->
        Array.blit scratch_key lo key lo (hi - lo);
        Array.blit scratch_payload lo payload lo (hi - lo))
  end

let sort_pairs pool ~key ~payload =
  let runs = sort_runs pool ~key ~payload () in
  merge_runs pool ~key ~payload ~runs

(* Run formation only pays off when the merge can run concurrently: on a
   single-domain pool an unrequested task split would cost a full extra
   merge pass over the data for nothing, so default to one run there. *)
let effective_task_size pool n = function
  | Some t -> t
  | None -> if Task_pool.size pool = 1 then max n 1 else Task_pool.default_task_size

let sort_multiword pool ?task_size ~mw () =
  let key0 = mw.Multiway.key0 and payload = mw.Multiway.payload in
  let n = Array.length key0 in
  if Array.length payload <> n then invalid_arg "Parallel_sort.sort_multiword: length mismatch";
  let task_size = effective_task_size pool n task_size in
  let tie = Multiway.deep_compare mw in
  let nruns = if n = 0 then 0 else ((n - 1) / task_size) + 1 in
  let runs =
    Array.init nruns (fun r -> { Multiway.lo = r * task_size; hi = min n ((r + 1) * task_size) })
  in
  Obs.span "sort.runs"
    ~args:(fun () -> [ ("n", string_of_int n); ("runs", string_of_int nruns) ])
    (fun () ->
      Task_pool.run_list pool
        (Array.to_list
           (Array.map
              (fun { Multiway.lo; hi } ->
                fun () -> Introsort.sort_pairs_tie_range ~key:key0 ~payload ~tie ~lo ~hi)
              runs)));
  if nruns > 1 then
    Obs.span "sort.merge"
      ~args:(fun () -> [ ("n", string_of_int n); ("runs", string_of_int nruns) ])
    @@ fun () ->
    begin
    note_scratch n;
    let scratch_key = Array.make n 0 in
    let scratch_payload = Array.make n 0 in
    let segments = max 1 (Task_pool.size pool) in
    let rank_of s = s * n / segments in
    let cmp = Multiway.compare_positions mw in
    let less i j = cmp i j < 0 in
    let cuts =
      Array.init (segments + 1) (fun s ->
          Multiway.split_at_rank_by ~less ~runs ~rank:(rank_of s))
    in
    let tasks = ref [] in
    for s = segments - 1 downto 0 do
      let sub_runs =
        Array.init nruns (fun r -> { Multiway.lo = cuts.(s).(r); hi = cuts.(s + 1).(r) })
      in
      let dst_pos = rank_of s in
      tasks :=
        (fun () ->
          Multiway.merge_multiword ~mw ~runs:sub_runs ~dst_key0:scratch_key
            ~dst_payload:scratch_payload ~dst_pos)
        :: !tasks
    done;
    Task_pool.run_list pool !tasks;
    Task_pool.parallel_for pool ~lo:0 ~hi:n ~chunk:(max 1 (n / (4 * segments)))
      (fun lo hi ->
        Array.blit scratch_key lo key0 lo (hi - lo);
        Array.blit scratch_payload lo payload lo (hi - lo))
  end

let sort_encoded pool ?task_size ~n ~words ?tie () =
  let nwords = Array.length words in
  if nwords = 0 then begin
    let perm =
      match tie with
      | None -> Array.init n (fun i -> i)
      | Some t -> Introsort.sort_indices_by n ~cmp:t
    in
    (perm, [||])
  end
  else begin
    Array.iter
      (fun w -> if Array.length w <> n then invalid_arg "Parallel_sort.sort_encoded: word length")
      words;
    (* positions start out equal to row ids, so the trailing words can be
       used row-indexed without any copy; only the leading word moves *)
    let key0 = Array.copy words.(0) in
    let perm = Array.init n (fun i -> i) in
    (match (nwords, tie) with
    | 1, None ->
        let task_size = effective_task_size pool n task_size in
        let runs = sort_runs pool ~task_size ~key:key0 ~payload:perm () in
        merge_runs pool ~key:key0 ~payload:perm ~runs
    | _ ->
        let deep = Array.sub words 1 (nwords - 1) in
        let mw = { Multiway.key0; payload = perm; deep; tie } in
        sort_multiword pool ?task_size ~mw ());
    (perm, key0)
  end

let sort pool a =
  let n = Array.length a in
  if Task_pool.size pool = 1 || n <= Task_pool.default_task_size then Introsort.sort a
  else begin
    (* Reuse the stable pair machinery with a throwaway payload; simpler than
       a third merge specialisation and only used on multi-core hosts. *)
    let payload = Array.make n 0 in
    sort_pairs pool ~key:a ~payload
  end
