open Holistic_parallel
module Obs = Holistic_obs.Obs

(* Transient merge scratch: two arrays the size of the input per merge
   phase.  Counted separately from [mem.structure_bytes] because the
   total depends on pool size and run count, so it must not feed the
   deterministic structure tally that goldens and the bench gate check. *)
let c_scratch_bytes = Obs.Counter.make ~help:"Bytes of sort scratch space (normalized keys, merge buffers) allocated" "sort.scratch_bytes"

let note_scratch n =
  Obs.Counter.add c_scratch_bytes (8 * 2 * n);
  Obs.record_bytes (fun () -> 8 * (2 + (2 * n)))

let sort_runs pool ?(task_size = Task_pool.default_task_size) ~key ~payload () =
  let n = Array.length key in
  if Array.length payload <> n then invalid_arg "Parallel_sort.sort_runs: length mismatch";
  let nruns = if n = 0 then 0 else ((n - 1) / task_size) + 1 in
  let runs =
    Array.init nruns (fun r ->
        { Multiway.lo = r * task_size; hi = min n ((r + 1) * task_size) })
  in
  Obs.span "sort.runs"
    ~args:(fun () -> [ ("n", string_of_int n); ("runs", string_of_int nruns) ])
    (fun () ->
      Task_pool.run_list pool
        (Array.to_list
           (Array.map
              (fun { Multiway.lo; hi } ->
                fun () -> Introsort.sort_pairs_range ~key ~payload ~lo ~hi)
              runs)));
  runs

let merge_runs pool ~key ~payload ~runs =
  let total = Multiway.total_length runs in
  if Array.length runs > 1 then
    Obs.span "sort.merge"
      ~args:(fun () ->
        [ ("n", string_of_int total); ("runs", string_of_int (Array.length runs)) ])
    @@ fun () ->
    begin
    note_scratch total;
    let scratch_key = Array.make total 0 in
    let scratch_payload = Array.make total 0 in
    let segments = max 1 (Task_pool.size pool) in
    let rank_of s = s * total / segments in
    let cuts = Array.init (segments + 1) (fun s -> Multiway.split_at_rank ~src:key ~runs ~rank:(rank_of s)) in
    let tasks = ref [] in
    for s = segments - 1 downto 0 do
      let sub_runs =
        Array.init (Array.length runs) (fun r ->
            { Multiway.lo = cuts.(s).(r); hi = cuts.(s + 1).(r) })
      in
      let dst_pos = rank_of s in
      tasks :=
        (fun () ->
          Multiway.merge_pairs ~key ~payload ~runs:sub_runs ~dst_key:scratch_key
            ~dst_payload:scratch_payload ~dst_pos)
        :: !tasks
    done;
    Task_pool.run_list pool !tasks;
    (* Copy the merged result back, in parallel chunks. *)
    Task_pool.parallel_for pool ~lo:0 ~hi:total ~chunk:(max 1 (total / (4 * segments)))
      (fun lo hi ->
        Array.blit scratch_key lo key lo (hi - lo);
        Array.blit scratch_payload lo payload lo (hi - lo))
  end

let sort_pairs pool ~key ~payload =
  let runs = sort_runs pool ~key ~payload () in
  merge_runs pool ~key ~payload ~runs

(* Run formation only pays off when the merge can run concurrently: on a
   single-domain pool an unrequested task split would cost a full extra
   merge pass over the data for nothing, so default to one run there. *)
let effective_task_size pool n = function
  | Some t -> t
  | None -> if Task_pool.size pool = 1 then max n 1 else Task_pool.default_task_size

let sort_multiword pool ?task_size ~mw () =
  let key0 = mw.Multiway.key0 and payload = mw.Multiway.payload in
  let n = Array.length key0 in
  if Array.length payload <> n then invalid_arg "Parallel_sort.sort_multiword: length mismatch";
  let task_size = effective_task_size pool n task_size in
  let tie = Multiway.deep_compare mw in
  let nruns = if n = 0 then 0 else ((n - 1) / task_size) + 1 in
  let runs =
    Array.init nruns (fun r -> { Multiway.lo = r * task_size; hi = min n ((r + 1) * task_size) })
  in
  Obs.span "sort.runs"
    ~args:(fun () -> [ ("n", string_of_int n); ("runs", string_of_int nruns) ])
    (fun () ->
      Task_pool.run_list pool
        (Array.to_list
           (Array.map
              (fun { Multiway.lo; hi } ->
                fun () -> Introsort.sort_pairs_tie_range ~key:key0 ~payload ~tie ~lo ~hi)
              runs)));
  if nruns > 1 then
    Obs.span "sort.merge"
      ~args:(fun () -> [ ("n", string_of_int n); ("runs", string_of_int nruns) ])
    @@ fun () ->
    begin
    note_scratch n;
    let scratch_key = Array.make n 0 in
    let scratch_payload = Array.make n 0 in
    let segments = max 1 (Task_pool.size pool) in
    let rank_of s = s * n / segments in
    let cmp = Multiway.compare_positions mw in
    let less i j = cmp i j < 0 in
    let cuts =
      Array.init (segments + 1) (fun s ->
          Multiway.split_at_rank_by ~less ~runs ~rank:(rank_of s))
    in
    let tasks = ref [] in
    for s = segments - 1 downto 0 do
      let sub_runs =
        Array.init nruns (fun r -> { Multiway.lo = cuts.(s).(r); hi = cuts.(s + 1).(r) })
      in
      let dst_pos = rank_of s in
      tasks :=
        (fun () ->
          Multiway.merge_multiword ~mw ~runs:sub_runs ~dst_key0:scratch_key
            ~dst_payload:scratch_payload ~dst_pos)
        :: !tasks
    done;
    Task_pool.run_list pool !tasks;
    Task_pool.parallel_for pool ~lo:0 ~hi:n ~chunk:(max 1 (n / (4 * segments)))
      (fun lo hi ->
        Array.blit scratch_key lo key0 lo (hi - lo);
        Array.blit scratch_payload lo payload lo (hi - lo))
  end

let sort_encoded pool ?task_size ~n ~words ?tie () =
  let nwords = Array.length words in
  if nwords = 0 then begin
    let perm =
      match tie with
      | None -> Array.init n (fun i -> i)
      | Some t -> Introsort.sort_indices_by n ~cmp:t
    in
    (perm, [||])
  end
  else begin
    Array.iter
      (fun w -> if Array.length w <> n then invalid_arg "Parallel_sort.sort_encoded: word length")
      words;
    (* positions start out equal to row ids, so the trailing words can be
       used row-indexed without any copy; only the leading word moves *)
    let key0 = Array.copy words.(0) in
    let perm = Array.init n (fun i -> i) in
    (match (nwords, tie) with
    | 1, None ->
        let task_size = effective_task_size pool n task_size in
        let runs = sort_runs pool ~task_size ~key:key0 ~payload:perm () in
        merge_runs pool ~key:key0 ~payload:perm ~runs
    | _ ->
        let deep = Array.sub words 1 (nwords - 1) in
        let mw = { Multiway.key0; payload = perm; deep; tie } in
        sort_multiword pool ?task_size ~mw ());
    (perm, key0)
  end

(* External sort counters: total bytes written to spill run files and
   number of run files formed. Always on ([add_always]) because the bench
   gate asserts spill engagement through them. *)
let c_spill_bytes = Obs.Counter.make ~help:"Bytes written to disk as spilled sort runs" "sort.spill_bytes"
let c_spill_runs = Obs.Counter.make ~help:"Sorted runs spilled to disk by the out-of-core sort" "sort.spill_runs"

module Run_file = Holistic_storage.Run_file

let sort_encoded_spill ~n ~words ?tie ~run_rows ~read_entries ~dir ?on_key0 ?after_runs () =
  let nwords = Array.length words in
  if nwords = 0 then invalid_arg "Parallel_sort.sort_encoded_spill: needs at least one key word";
  Array.iter
    (fun w -> if Array.length w <> n then invalid_arg "Parallel_sort.sort_encoded_spill: word length")
    words;
  let run_rows = max 1 (min run_rows (max 1 n)) in
  let nruns = if n = 0 then 0 else ((n - 1) / run_rows) + 1 in
  let deep = Array.sub words 1 (nwords - 1) in
  (* the run-local sort order below the leading word: trailing words (row
     indexed), then the residual, then ascending row id *)
  let chunk_tie = Multiway.deep_compare { Multiway.key0 = [||]; payload = [||]; deep; tie } in
  let current_writer = ref None in
  let files = ref [] in
  let sources = ref [||] in
  let cleanup () =
    (match !current_writer with
    | Some w ->
        current_writer := None;
        Run_file.abort w
    | None -> ());
    Array.iter Multiway.source_close !sources;
    sources := [||];
    List.iter Run_file.remove !files;
    files := []
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let total_bytes = ref 0 in
  (* ---- run formation: sequential chunks of [run_rows] rows ---- *)
  Obs.span "sort.runs"
    ~args:(fun () ->
      [
        ("n", string_of_int n);
        ("runs", string_of_int nruns);
        ("spilled", Printf.sprintf "(runs=%d, %s)" nruns (Obs.human_bytes !total_bytes));
      ])
    (fun () ->
      let chunk = min run_rows (max 1 n) in
      let ckey = Array.make chunk 0 in
      let cpay = Array.make chunk 0 in
      let entry = Array.make nwords 0 in
      for r = 0 to nruns - 1 do
        let lo = r * run_rows in
        let hi = min n (lo + run_rows) in
        let m = hi - lo in
        for i = 0 to m - 1 do
          ckey.(i) <- words.(0).(lo + i);
          cpay.(i) <- lo + i
        done;
        Introsort.sort_pairs_tie_range ~key:ckey ~payload:cpay ~tie:chunk_tie ~lo:0 ~hi:m;
        let w = Run_file.create ~dir ~nwords in
        current_writer := Some w;
        for i = 0 to m - 1 do
          let rid = cpay.(i) in
          entry.(0) <- ckey.(i);
          for d = 0 to nwords - 2 do
            entry.(d + 1) <- deep.(d).(rid)
          done;
          Run_file.append w ~key:entry ~koff:0 ~payload:rid
        done;
        let f = Run_file.finish w in
        current_writer := None;
        files := f :: !files;
        total_bytes := !total_bytes + Run_file.bytes f
      done;
      Obs.Counter.add_always c_spill_runs nruns;
      Obs.Counter.add_always c_spill_bytes !total_bytes);
  (* the key words live on disk now: the caller may drop (and un-charge)
     [words] before the merge allocates its output *)
  (match after_runs with Some f -> f () | None -> ());
  (* ---- k-way OVC merge of the run files ---- *)
  let perm = Array.make n 0 in
  Obs.span "sort.merge"
    ~args:(fun () ->
      [
        ("n", string_of_int n);
        ("runs", string_of_int nruns);
        ("spilled", Printf.sprintf "(runs=%d, %s)" nruns (Obs.human_bytes !total_bytes));
      ])
    (fun () ->
      let file_arr = Array.of_list (List.rev !files) in
      sources :=
        Array.map
          (fun f ->
            let rd = Run_file.open_reader f in
            Multiway.make_source ~nwords ~buf_entries:(max 1 read_entries)
              ~refill:(fun buf -> Run_file.read rd ~buf)
              ~close:(fun () -> Run_file.close_reader rd))
          file_arr;
      let rank = ref 0 in
      let emit =
        match on_key0 with
        | None ->
            fun _k0 payload ->
              perm.(!rank) <- payload;
              incr rank
        | Some f ->
            fun k0 payload ->
              perm.(!rank) <- payload;
              f !rank k0;
              incr rank
      in
      Multiway.merge_sources ~sources:!sources ?tie ~emit ();
      if !rank <> n then
        raise (Run_file.Error (Printf.sprintf "spill merge produced %d of %d rows" !rank n)));
  (perm, nruns, !total_bytes)

let sort pool a =
  let n = Array.length a in
  if Task_pool.size pool = 1 || n <= Task_pool.default_task_size then Introsort.sort a
  else begin
    (* Reuse the stable pair machinery with a throwaway payload; simpler than
       a third merge specialisation and only used on multi-core hosts. *)
    let payload = Array.make n 0 in
    sort_pairs pool ~key:a ~payload
  end
