(** Introsort with 3-way partitioning over integer arrays.

    The 3-way (fat-pivot) partitioning is not an optimisation detail: the
    paper (§5.3) reports that 2-way quicksort degenerates to O(n²) on the
    duplicate-heavy arrays produced by the prev-occurrence preprocessing
    (most entries are 0 on low-duplicate columns), and fixed their system the
    same way. Recursion depth is bounded by 2·⌊log₂ n⌋ with a heapsort
    fallback, so the worst case is O(n log n) regardless of input. *)

val sort : int array -> unit
(** Sorts the whole array ascending. *)

val sort_range : int array -> lo:int -> hi:int -> unit
(** Sorts the half-open segment [\[lo, hi)] ascending. *)

val sort_pairs : key:int array -> payload:int array -> unit
(** Sorts both arrays simultaneously by [(key, payload)] lexicographically
    ascending. When [payload] holds original positions this is exactly the
    stable sort of Algorithm 1. Arrays must have equal length. *)

val sort_pairs_range : key:int array -> payload:int array -> lo:int -> hi:int -> unit

val sort_pairs_tie_range :
  key:int array -> payload:int array -> tie:(int -> int -> int) -> lo:int -> hi:int -> unit
(** Sorts the segment [\[lo, hi)] of both arrays by [key] ascending, breaking
    key ties with [tie] applied to the payload {e values}. This is the
    multi-word normalized-key run sort: the leading key word lives in [key]
    (unboxed int compares), and [tie] descends into trailing key words and the
    residual comparator only on leading-word collisions. [tie] must be a
    strict total order (end the chain with a row-id compare) for the result to
    be deterministic. *)

val sort_float_pairs : key:float array -> payload:int array -> unit
(** {!sort_pairs} for float keys (ascending, NaNs sorted last via
    [Float.compare] semantics, ties broken by payload): the unboxed fast
    path for single-float-column ORDER BY preprocessing. *)

val sort_by : int array -> cmp:(int -> int -> int) -> unit
(** Sorts the array's elements by an arbitrary total order on elements. Used
    by preprocessing passes whose keys are not plain integers. Not stable;
    callers needing stability must break ties in [cmp]. *)

val sort_by_range : int array -> cmp:(int -> int -> int) -> lo:int -> hi:int -> unit
(** {!sort_by} restricted to the half-open segment [\[lo, hi)]: the
    partial-sort primitive for re-ordering an inherited permutation within
    partition boundaries. *)

val sort_indices_by : int -> cmp:(int -> int -> int) -> int array
(** [sort_indices_by n ~cmp] is the permutation [\[|0..n-1|\]] sorted stably
    by [cmp] on indices (ties keep ascending index order). *)
