module Bs = Holistic_util.Binary_search
module Obs = Holistic_obs.Obs

type run = { lo : int; hi : int }

let total_length runs = Array.fold_left (fun acc r -> acc + (r.hi - r.lo)) 0 runs

(* A small binary min-heap keyed by (value, run index); replace-top based
   k-way merge. Heap entries: per-slot value, run index and cursor. *)
type heap = {
  mutable size : int;
  vals : int array;
  run_of : int array;
  cursor : int array;
}

let heap_less h i j =
  h.vals.(i) < h.vals.(j) || (h.vals.(i) = h.vals.(j) && h.run_of.(i) < h.run_of.(j))

let heap_swap h i j =
  let sw (a : int array) =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  sw h.vals;
  sw h.run_of;
  sw h.cursor

let rec heap_down h i =
  let l = (2 * i) + 1 in
  if l < h.size then begin
    let c = if l + 1 < h.size && heap_less h (l + 1) l then l + 1 else l in
    if heap_less h c i then begin
      heap_swap h i c;
      heap_down h c
    end
  end

let rec heap_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_less h i parent then begin
      heap_swap h i parent;
      heap_up h parent
    end
  end

let heap_of_runs (src : int array) (runs : run array) =
  let k = Array.length runs in
  let h = { size = 0; vals = Array.make k 0; run_of = Array.make k 0; cursor = Array.make k 0 } in
  Array.iteri
    (fun r { lo; hi } ->
      if lo < hi then begin
        let i = h.size in
        h.vals.(i) <- src.(lo);
        h.run_of.(i) <- r;
        h.cursor.(i) <- lo;
        h.size <- h.size + 1;
        heap_up h i
      end)
    runs;
  h

let merge ~src ~runs ~dst ~dst_pos =
  let h = heap_of_runs src runs in
  let pos = ref dst_pos in
  while h.size > 0 do
    dst.(!pos) <- h.vals.(0);
    incr pos;
    let r = h.run_of.(0) in
    let c = h.cursor.(0) + 1 in
    if c < runs.(r).hi then begin
      h.vals.(0) <- src.(c);
      h.cursor.(0) <- c;
      heap_down h 0
    end
    else begin
      h.size <- h.size - 1;
      if h.size > 0 then begin
        heap_swap h 0 h.size;
        heap_down h 0
      end
    end
  done

let merge_pairs ~key ~payload ~runs ~dst_key ~dst_payload ~dst_pos =
  let h = heap_of_runs key runs in
  let pos = ref dst_pos in
  while h.size > 0 do
    let c0 = h.cursor.(0) in
    dst_key.(!pos) <- h.vals.(0);
    dst_payload.(!pos) <- payload.(c0);
    incr pos;
    let r = h.run_of.(0) in
    let c = c0 + 1 in
    if c < runs.(r).hi then begin
      h.vals.(0) <- key.(c);
      h.cursor.(0) <- c;
      heap_down h 0
    end
    else begin
      h.size <- h.size - 1;
      if h.size > 0 then begin
        heap_swap h 0 h.size;
        heap_down h 0
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Multi-word normalized keys with offset-value coded merging          *)
(* ------------------------------------------------------------------ *)

type multiword = {
  key0 : int array;
  payload : int array;
  deep : int array array;
  tie : (int -> int -> int) option;
}

let deep_compare mw =
  let deep = mw.deep in
  let nd = Array.length deep in
  let tie = mw.tie in
  fun r1 r2 ->
    let rec words w =
      if w = nd then
        match tie with
        | Some t ->
            let c = t r1 r2 in
            if c <> 0 then c else Int.compare r1 r2
        | None -> Int.compare r1 r2
      else
        let dw = Array.unsafe_get deep w in
        let c = Int.compare dw.(r1) dw.(r2) in
        if c <> 0 then c else words (w + 1)
    in
    words 0

let compare_positions mw =
  let key0 = mw.key0 and payload = mw.payload in
  let dc = deep_compare mw in
  fun i j ->
    let c = Int.compare key0.(i) key0.(j) in
    if c <> 0 then c else dc payload.(i) payload.(j)

(* Global comparison counters for the OVC merge: [decided] compares
   settled by the codes alone, [scanned] compares that had to read key
   words. Accumulated locally per merge and flushed once, so parallel
   segment merges do not contend. *)
let ovc_decided_count = Obs.Counter.make ~help:"Merge comparisons decided by offset-value codes alone" "sort.ovc_decided"
let ovc_scanned_count = Obs.Counter.make ~help:"Merge comparisons that fell back to scanning key bytes" "sort.ovc_scanned"
let ovc_stats () = (Obs.Counter.value ovc_decided_count, Obs.Counter.value ovc_scanned_count)

let reset_ovc_stats () =
  Obs.Counter.set ovc_decided_count 0;
  Obs.Counter.set ovc_scanned_count 0

(* K-way merge as a tree of losers carrying offset-value codes (Do &
   Graefe, "Robust and Efficient Sorting with Offset-Value Coding").
   Each entry's code [(off, v)] is relative to the record that most
   recently defeated it at its node: [off] is the index of the first key
   word where the entry differs from that base, [v] the entry's word
   there. Two entries meeting at a node always carry codes relative to
   the same base, so (for ascending order) the larger offset wins, equal
   offsets compare [v], and only a full [(off, v)] tie forces a scan of
   the actual key words from [off + 1] on — after which the {e loser}'s
   code is rewritten relative to the winner (a winner's code never
   changes; on an OVC-decided loss the loser's stale code is already
   correct relative to the winner). Duplicate-heavy composite keys thus
   cost one int compare per heap step instead of a full key walk. *)
let merge_multiword ~mw ~runs ~dst_key0 ~dst_payload ~dst_pos =
  let nruns = Array.length runs in
  if nruns = 1 then begin
    let { lo; hi } = runs.(0) in
    Array.blit mw.key0 lo dst_key0 dst_pos (hi - lo);
    Array.blit mw.payload lo dst_payload dst_pos (hi - lo)
  end
  else if nruns > 1 then begin
    let key0 = mw.key0 and payload = mw.payload and deep = mw.deep in
    let nd = Array.length deep in
    let nwords = 1 + nd in
    let word pos w = if w = 0 then key0.(pos) else deep.(w - 1).(payload.(pos)) in
    let residual r1 r2 =
      match mw.tie with
      | Some t ->
          let c = t r1 r2 in
          if c <> 0 then c else Int.compare r1 r2
      | None -> Int.compare r1 r2
    in
    let kk = ref 1 in
    while !kk < nruns do kk := !kk * 2 done;
    let kk = !kk in
    let cursor = Array.make kk 0 in
    let alive = Array.make kk false in
    let off = Array.make kk 0 in
    let ovc_v = Array.make kk 0 in
    for r = 0 to nruns - 1 do
      let { lo; hi } = runs.(r) in
      if lo < hi then begin
        cursor.(r) <- lo;
        alive.(r) <- true;
        (* initial codes are relative to a virtual -infinity base *)
        off.(r) <- 0;
        ovc_v.(r) <- key0.(lo)
      end
    done;
    let decided = ref 0 and scanned = ref 0 in
    (* [beats a b]: leaf [a]'s entry sorts strictly before leaf [b]'s. *)
    let beats a b =
      if not alive.(b) then true
      else if not alive.(a) then false
      else begin
        let oa = off.(a) and ob = off.(b) in
        if oa <> ob then begin
          incr decided;
          oa > ob
        end
        else if ovc_v.(a) <> ovc_v.(b) then begin
          incr decided;
          ovc_v.(a) < ovc_v.(b)
        end
        else begin
          incr scanned;
          let pa = cursor.(a) and pb = cursor.(b) in
          let w = ref (oa + 1) in
          while !w < nwords && word pa !w = word pb !w do incr w done;
          if !w < nwords then begin
            let wa = word pa !w and wb = word pb !w in
            if wa < wb then begin
              off.(b) <- !w;
              ovc_v.(b) <- wb;
              true
            end
            else begin
              off.(a) <- !w;
              ovc_v.(a) <- wa;
              false
            end
          end
          else begin
            (* word-equal keys: the residual decides; the loser is
               word-equal to its new base *)
            if residual payload.(pa) payload.(pb) < 0 then begin
              off.(b) <- nwords;
              ovc_v.(b) <- 0;
              true
            end
            else begin
              off.(a) <- nwords;
              ovc_v.(a) <- 0;
              false
            end
          end
        end
      end
    in
    (* node.(i), 1 <= i < kk, stores the losing leaf of its subtree;
       leaves are implicit at kk .. 2*kk-1 *)
    let node = Array.make kk (-1) in
    let rec build i =
      if i >= kk then i - kk
      else begin
        let wl = build (2 * i) and wr = build ((2 * i) + 1) in
        if beats wl wr then begin
          node.(i) <- wr;
          wl
        end
        else begin
          node.(i) <- wl;
          wr
        end
      end
    in
    let winner = ref (build 1) in
    let pos = ref dst_pos in
    let total = total_length runs in
    for _ = 1 to total do
      let w = !winner in
      let c = cursor.(w) in
      dst_key0.(!pos) <- key0.(c);
      dst_payload.(!pos) <- payload.(c);
      incr pos;
      let c' = c + 1 in
      if c' < runs.(w).hi then begin
        cursor.(w) <- c';
        (* the new entrant's code is relative to its run predecessor —
           exactly the record just emitted as the global winner *)
        let ww = ref 0 in
        while !ww < nwords && word c' !ww = word c !ww do incr ww done;
        if !ww < nwords then begin
          off.(w) <- !ww;
          ovc_v.(w) <- word c' !ww
        end
        else begin
          off.(w) <- nwords;
          ovc_v.(w) <- 0
        end
      end
      else alive.(w) <- false;
      (* replay from the leaf's parent to the root *)
      let cur = ref w in
      let i = ref ((kk + w) lsr 1) in
      while !i >= 1 do
        let l = node.(!i) in
        if beats l !cur then begin
          node.(!i) <- !cur;
          cur := l
        end;
        i := !i lsr 1
      done;
      winner := !cur
    done;
    Obs.Counter.add_always ovc_decided_count !decided;
    Obs.Counter.add_always ovc_scanned_count !scanned
  end

(* ------------------------------------------------------------------ *)
(* Run sources: buffered streams of interleaved entries                *)
(* ------------------------------------------------------------------ *)

(* A source yields one sorted run as interleaved entries of [nwords] key
   words followed by the payload row id (stride [nwords + 1]), refilled
   on demand. In-memory segments and on-disk run files present the same
   face, so the OVC loser tree below merges them identically. *)
type source = {
  s_nwords : int;
  s_buf : int array;
  mutable s_len : int; (* entries currently buffered *)
  mutable s_cur : int; (* current entry index, < s_len when alive *)
  s_prev : int array; (* key words of the entry emitted just before s_buf.(0) *)
  s_refill : int array -> int;
  s_close : unit -> unit;
}

let make_source ~nwords ~buf_entries ~refill ~close =
  if nwords < 1 then invalid_arg "Multiway.make_source: nwords must be >= 1";
  let buf_entries = max 1 buf_entries in
  let s =
    {
      s_nwords = nwords;
      s_buf = Array.make (buf_entries * (nwords + 1)) 0;
      s_len = 0;
      s_cur = 0;
      s_prev = Array.make nwords 0;
      s_refill = refill;
      s_close = close;
    }
  in
  s.s_len <- refill s.s_buf;
  s

let source_close s = s.s_close ()

let source_of_run ~mw { lo; hi } =
  let nd = Array.length mw.deep in
  let nwords = 1 + nd in
  let stride = nwords + 1 in
  let pos = ref lo in
  let refill buf =
    let cap = Array.length buf / stride in
    let m = min cap (hi - !pos) in
    for e = 0 to m - 1 do
      let p = !pos + e in
      let base = e * stride in
      buf.(base) <- mw.key0.(p);
      let rid = mw.payload.(p) in
      for w = 0 to nd - 1 do
        buf.(base + 1 + w) <- mw.deep.(w).(rid)
      done;
      buf.(base + nwords) <- rid
    done;
    pos := !pos + m;
    m
  in
  make_source ~nwords ~buf_entries:256 ~refill ~close:(fun () -> ())

(* The same tree-of-losers OVC merge as [merge_multiword], over buffered
   sources instead of array segments. The only structural difference is
   the run-predecessor access for a new entrant's code: within a buffer
   it is the previous slot; across a refill boundary it is the key words
   saved in [s_prev] before the refill. *)
let merge_sources ~sources ?tie ~emit () =
  let nruns = Array.length sources in
  if nruns > 0 then begin
    let nwords = sources.(0).s_nwords in
    Array.iter
      (fun s -> if s.s_nwords <> nwords then invalid_arg "Multiway.merge_sources: mixed word counts")
      sources;
    let stride = nwords + 1 in
    let residual r1 r2 =
      match tie with
      | Some t ->
          let c = t r1 r2 in
          if c <> 0 then c else Int.compare r1 r2
      | None -> Int.compare r1 r2
    in
    let word s w = s.s_buf.((s.s_cur * stride) + w) in
    let payload s = s.s_buf.((s.s_cur * stride) + nwords) in
    let prev_word s w = if s.s_cur > 0 then s.s_buf.(((s.s_cur - 1) * stride) + w) else s.s_prev.(w) in
    let advance s =
      let c = s.s_cur + 1 in
      if c < s.s_len then begin
        s.s_cur <- c;
        true
      end
      else begin
        let base = s.s_cur * stride in
        for w = 0 to nwords - 1 do
          s.s_prev.(w) <- s.s_buf.(base + w)
        done;
        s.s_len <- s.s_refill s.s_buf;
        s.s_cur <- 0;
        s.s_len > 0
      end
    in
    if nruns = 1 then begin
      let s = sources.(0) in
      if s.s_len > 0 then begin
        let continue = ref true in
        while !continue do
          emit (word s 0) (payload s);
          continue := advance s
        done
      end
    end
    else begin
      let kk = ref 1 in
      while !kk < nruns do kk := !kk * 2 done;
      let kk = !kk in
      let alive = Array.make kk false in
      let off = Array.make kk 0 in
      let ovc_v = Array.make kk 0 in
      let total_alive = ref 0 in
      for r = 0 to nruns - 1 do
        let s = sources.(r) in
        if s.s_len > 0 then begin
          alive.(r) <- true;
          incr total_alive;
          off.(r) <- 0;
          ovc_v.(r) <- word s 0
        end
      done;
      let decided = ref 0 and scanned = ref 0 in
      let beats a b =
        if not alive.(b) then true
        else if not alive.(a) then false
        else begin
          let oa = off.(a) and ob = off.(b) in
          if oa <> ob then begin
            incr decided;
            oa > ob
          end
          else if ovc_v.(a) <> ovc_v.(b) then begin
            incr decided;
            ovc_v.(a) < ovc_v.(b)
          end
          else begin
            incr scanned;
            let sa = sources.(a) and sb = sources.(b) in
            let w = ref (oa + 1) in
            while !w < nwords && word sa !w = word sb !w do incr w done;
            if !w < nwords then begin
              let wa = word sa !w and wb = word sb !w in
              if wa < wb then begin
                off.(b) <- !w;
                ovc_v.(b) <- wb;
                true
              end
              else begin
                off.(a) <- !w;
                ovc_v.(a) <- wa;
                false
              end
            end
            else if residual (payload sa) (payload sb) < 0 then begin
              off.(b) <- nwords;
              ovc_v.(b) <- 0;
              true
            end
            else begin
              off.(a) <- nwords;
              ovc_v.(a) <- 0;
              false
            end
          end
        end
      in
      let node = Array.make kk (-1) in
      let rec build i =
        if i >= kk then i - kk
        else begin
          let wl = build (2 * i) and wr = build ((2 * i) + 1) in
          if beats wl wr then begin
            node.(i) <- wr;
            wl
          end
          else begin
            node.(i) <- wl;
            wr
          end
        end
      in
      let winner = ref (build 1) in
      while !total_alive > 0 do
        let wl = !winner in
        let s = sources.(wl) in
        emit (word s 0) (payload s);
        if advance s then begin
          let ww = ref 0 in
          while !ww < nwords && word s !ww = prev_word s !ww do incr ww done;
          if !ww < nwords then begin
            off.(wl) <- !ww;
            ovc_v.(wl) <- word s !ww
          end
          else begin
            off.(wl) <- nwords;
            ovc_v.(wl) <- 0
          end
        end
        else begin
          alive.(wl) <- false;
          decr total_alive
        end;
        let cur = ref wl in
        let i = ref ((kk + wl) lsr 1) in
        while !i >= 1 do
          let l = node.(!i) in
          if beats l !cur then begin
            node.(!i) <- !cur;
            cur := l
          end;
          i := !i lsr 1
        done;
        winner := !cur
      done;
      Obs.Counter.add_always ovc_decided_count !decided;
      Obs.Counter.add_always ovc_scanned_count !scanned
    end
  end

let lower_bound_by ~less ~lo ~hi pivot =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let m = !lo + ((!hi - !lo) / 2) in
    if less m pivot then lo := m + 1 else hi := m
  done;
  !lo

(* Multisequence selection under an arbitrary strict total order on
   positions: repeatedly pick the middle of the largest active interval
   as pivot, count the active elements strictly below it across all runs
   by binary search, and either commit everything below the pivot (and
   the pivot) under the cut or discard everything at or above it. The
   strict total order makes the rank-[rank] cut unique, so the loop
   converges like a quickselect over the union of the runs. *)
let split_at_rank_by ~less ~runs ~rank =
  let total = total_length runs in
  if rank < 0 || rank > total then invalid_arg "Multiway.split_at_rank_by";
  let k = Array.length runs in
  let lo = Array.map (fun r -> r.lo) runs in
  let hi = Array.map (fun r -> r.hi) runs in
  let remaining = ref rank in
  let cuts = Array.make k 0 in
  let finished = ref false in
  while not !finished do
    if !remaining = 0 then begin
      Array.blit lo 0 cuts 0 k;
      finished := true
    end
    else begin
      let active = ref 0 in
      for r = 0 to k - 1 do
        active := !active + (hi.(r) - lo.(r))
      done;
      if !active = !remaining then begin
        Array.blit hi 0 cuts 0 k;
        finished := true
      end
      else begin
        let rp = ref (-1) and best = ref 0 in
        for r = 0 to k - 1 do
          let len = hi.(r) - lo.(r) in
          if len > !best then begin
            best := len;
            rp := r
          end
        done;
        let p = lo.(!rp) + ((hi.(!rp) - lo.(!rp)) / 2) in
        let cnt = ref 0 in
        let c = Array.make k 0 in
        for r = 0 to k - 1 do
          let b = lower_bound_by ~less ~lo:lo.(r) ~hi:hi.(r) p in
          c.(r) <- b;
          cnt := !cnt + (b - lo.(r))
        done;
        if !cnt = !remaining then begin
          Array.blit c 0 cuts 0 k;
          finished := true
        end
        else if !cnt < !remaining then begin
          (* everything below the pivot plus the pivot itself is under
             the cut *)
          remaining := !remaining - !cnt - 1;
          Array.blit c 0 lo 0 k;
          lo.(!rp) <- p + 1
        end
        else Array.blit c 0 hi 0 k
      end
    end
  done;
  cuts

let split_at_rank ~src ~runs ~rank =
  let total = total_length runs in
  if rank < 0 || rank > total then invalid_arg "Multiway.split_at_rank";
  let k = Array.length runs in
  let cuts = Array.map (fun r -> r.lo) runs in
  if rank = 0 then cuts
  else if rank = total then Array.map (fun r -> r.hi) runs
  else begin
    (* Binary search over the value domain for the smallest value v with
       count_le(v) >= rank; counts are monotone in v. Midpoints computed
       overflow-safely (values may span the full int range). *)
    let vmin = ref max_int and vmax = ref min_int in
    Array.iter
      (fun { lo; hi } ->
        if lo < hi then begin
          if src.(lo) < !vmin then vmin := src.(lo);
          if src.(hi - 1) > !vmax then vmax := src.(hi - 1)
        end)
      runs;
    let count_less v =
      let acc = ref 0 in
      Array.iter (fun { lo; hi } -> acc := !acc + Bs.lower_bound src ~lo ~hi v - lo) runs;
      !acc
    in
    let count_le v =
      let acc = ref 0 in
      Array.iter (fun { lo; hi } -> acc := !acc + Bs.upper_bound src ~lo ~hi v - lo) runs;
      !acc
    in
    let mid lo hi = (lo / 2) + (hi / 2) + (lo land hi land 1) in
    let lo = ref !vmin and hi = ref !vmax in
    while !lo < !hi do
      let m = mid !lo !hi in
      if count_le m >= rank then hi := m else lo := m + 1
    done;
    let v = !lo in
    let below = count_less v in
    (* Take all elements < v, then distribute the remaining (rank - below)
       equal-to-v elements across runs in run order (the stable tie-break). *)
    let remaining = ref (rank - below) in
    assert (!remaining >= 0);
    for r = 0 to k - 1 do
      let { lo; hi } = runs.(r) in
      let first_eq = Bs.lower_bound src ~lo ~hi v in
      let past_eq = Bs.upper_bound src ~lo ~hi v in
      let take = min !remaining (past_eq - first_eq) in
      cuts.(r) <- first_eq + take;
      remaining := !remaining - take
    done;
    assert (!remaining = 0);
    cuts
  end
