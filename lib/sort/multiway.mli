(** K-way merging of sorted runs and rank-based run splitting.

    These are the building blocks of the balanced parallel multiway merge
    (Francis et al., the paper's §5.2): runs are split at global ranks so
    that independent output segments can be merged by independent tasks. *)

type run = { lo : int; hi : int }
(** A half-open, ascending-sorted segment of the source array. *)

val merge : src:int array -> runs:run array -> dst:int array -> dst_pos:int -> unit
(** Merges all runs of [src] ascending into [dst] starting at [dst_pos].
    Ties are broken by run index (earlier runs first), so the merge is stable
    with respect to run order. *)

val merge_pairs :
  key:int array ->
  payload:int array ->
  runs:run array ->
  dst_key:int array ->
  dst_payload:int array ->
  dst_pos:int ->
  unit
(** Like {!merge} but moves a payload array along with the keys, ordering by
    [(key, run index, position)] — stable for runs of a previously stable
    partition. *)

val total_length : run array -> int

(** {2 Multi-word normalized keys with offset-value coded merging} *)

type multiword = {
  key0 : int array;  (** leading key word per {e position} *)
  payload : int array;  (** row id per position (moves with [key0]) *)
  deep : int array array;
      (** trailing key words, [deep.(w).(row_id)] — indexed by {e row id},
          so they never move during sorting *)
  tie : (int -> int -> int) option;
      (** residual comparator on row ids for key parts no word could
          express; applied after all words, before the final row-id
          tie-break *)
}
(** A multi-word normalized-key view of a permutation being sorted: the
    full sort order is [key0] ascending, then [deep] words in order, then
    [tie], then ascending row id — a strict total order. *)

val deep_compare : multiword -> int -> int -> int
(** [deep_compare mw r1 r2] compares two {e row ids} by the trailing
    words, the residual and the row-id tie-break (everything below
    [key0]). *)

val compare_positions : multiword -> int -> int -> int
(** Full strict comparison of two {e positions}: [key0], then
    {!deep_compare} on the rows they hold. *)

val merge_multiword :
  mw:multiword ->
  runs:run array ->
  dst_key0:int array ->
  dst_payload:int array ->
  dst_pos:int ->
  unit
(** Merges runs of [mw] (each sorted by {!compare_positions}) into
    [dst_key0]/[dst_payload] starting at [dst_pos], using a tree of
    losers with offset-value codes (Do & Graefe): comparisons between
    keys sharing a prefix with the incumbent collapse to a single int
    compare, and key words are only read when the codes tie. The [deep]
    words are row-indexed and therefore shared between [mw] and the
    destination. *)

val ovc_stats : unit -> int * int
(** [(decided, scanned)] cumulative counts of OVC merge comparisons
    settled by codes alone vs needing a key-word scan, across all merges
    (and domains) since the last {!reset_ovc_stats}. Backed by the
    registered {!Holistic_obs.Obs.Counter}s [sort.ovc_decided] /
    [sort.ovc_scanned] (always on, independent of tracing), so they also
    appear in captured traces and EXPLAIN ANALYZE output. *)

val reset_ovc_stats : unit -> unit

(** {2 Run sources: merging in-memory and on-disk runs identically} *)

type source
(** A buffered stream over one sorted run of interleaved entries —
    [nwords] key words then the payload row id, stride [nwords + 1].
    Backed either by an in-memory segment ({!source_of_run}) or by any
    refill function, e.g. a spilled {!Holistic_storage.Run_file}
    reader. *)

val make_source :
  nwords:int -> buf_entries:int -> refill:(int array -> int) -> close:(unit -> unit) -> source
(** [refill buf] fills [buf] with as many whole entries as fit and
    returns the entry count; [0] means the run is exhausted (it is not
    called again after that). [nwords >= 1]. The first refill happens
    eagerly, inside [make_source]. *)

val source_close : source -> unit

val source_of_run : mw:multiword -> run -> source
(** A source over a sorted segment of [mw] (gathering [deep] words per
    entry), for merging memory-resident runs alongside spilled ones. *)

val merge_sources :
  sources:source array -> ?tie:(int -> int -> int) -> emit:(int -> int -> unit) -> unit -> unit
(** Merges the sources (each sorted by: key words in order, then [tie],
    then ascending row id — the {!compare_positions} order) with the
    same offset-value coded tree of losers as {!merge_multiword},
    calling [emit key0 payload] once per entry in globally sorted order.
    All sources must share one word count. Updates the same
    [sort.ovc_decided] / [sort.ovc_scanned] counters. Does {e not}
    close the sources. *)

val lower_bound_by : less:(int -> int -> bool) -> lo:int -> hi:int -> int -> int
(** [lower_bound_by ~less ~lo ~hi p] is the first position [q] in
    [\[lo, hi)] with [not (less q p)], for a segment sorted by the strict
    order [less] on positions. *)

val split_at_rank_by : less:(int -> int -> bool) -> runs:run array -> rank:int -> int array
(** {!split_at_rank} under an arbitrary strict {e total} order on
    positions (multisequence selection): returns one cut per run such
    that the prefixes hold exactly the [rank] smallest elements. [less]
    must never call with out-of-run positions and must be total (break
    ties by row id), which makes the cut unique. *)

val split_at_rank : src:int array -> runs:run array -> rank:int -> int array
(** [split_at_rank ~src ~runs ~rank] returns one cut position per run (an
    absolute index within that run's bounds) such that the cut prefixes
    together contain exactly [rank] elements and every prefix element sorts
    no later than every suffix element under the stable merge order of
    {!merge}. [rank] must lie in [\[0, total_length runs\]]. *)
