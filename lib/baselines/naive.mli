(** Naive per-frame recomputation (paper §5.5): every output row recomputes
    its aggregate from scratch over the frame — O(n · w) overall, but with a
    small constant and trivially task-parallel, which makes it surprisingly
    competitive at tiny frame sizes (§6.4).

    This backend is structure-free: it holds no state between rows (the
    caller passes a reusable [scratch] buffer where one is needed), so its
    footprint is zero — the planner's cost model charges it time, never
    memory. NULL and FILTER handling live in the evaluator driver: the
    qualifying-row remap excludes filtered and NULL rows before these
    kernels see the data, identically for every backend. *)

val select_kth : int array -> scratch:int array -> ranges:(int * int) array -> k:int -> int
(** k-th smallest (0-based) value among the positions covered by the
    (clamped, disjoint) half-open ranges, by copying them into [scratch] and
    running quickselect. [scratch] must be at least as long as the covered
    population. @raise Invalid_argument if [k] is out of bounds. *)

val count_less : int array -> ranges:(int * int) array -> less_than:int -> int
(** Linear-scan count of covered positions holding a value [< less_than]. *)

val distinct_count : int array -> ranges:(int * int) array -> int
(** Hash-table distinct count over the covered positions (§4.2's "recompute
    the hash table from scratch for every window frame"). *)

val distinct_below : int array -> ranges:(int * int) array -> key:int -> int
(** Distinct values [< key] among covered positions (naive DENSE_RANK). *)
