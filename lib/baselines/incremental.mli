(** The incremental window-state algorithms of Wesley & Xu [38] (paper §5.5):
    aggregation state is updated as tuples enter and leave the frame.

    These are the paper's principal competitors. They are serially optimal
    for distinct counts (O(n) for monotonic frames) but cannot be shared
    across tasks: a task starting mid-partition must first rebuild the state
    of its first frame, which under fixed-size task-based parallelism
    degrades the ensemble to O(n²)-like behaviour (§3.2, observed in §6.4).

    {!Frame_driver} factors the add/remove bookkeeping: it walks per-row
    frames, applying deltas against the previously materialised frame — for
    non-monotonic frames the same tuple is added and removed repeatedly,
    which is exactly the §6.5 pathology. *)

module Distinct_count : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val remove : t -> int -> unit
  val count : t -> int
  val clear : t -> unit

  val footprint_bytes : t -> int
  (** Estimated live bytes of the multiplicity table (record, bucket array
      and per-binding cells, from [Hashtbl.stats]) — the repo-wide
      memory-accounting contract, reported per structure so the planner's
      {!Evaluator_choice.footprint_estimate} can be validated at run time. *)
end

(** Sorted dynamic array over frame contents — Wesley & Xu's percentile
    state: O(log w) lookup, O(w) insert/delete by memmove, O(1) select. *)
module Sorted_window : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val remove : t -> int -> unit
  (** @raise Not_found if absent. *)

  val size : t -> int

  val select : t -> int -> int
  (** i-th smallest, 0-based. *)

  val rank : t -> int -> int
  (** Number of stored elements strictly smaller than the value. *)

  val clear : t -> unit

  val footprint_bytes : t -> int
  (** Exact live bytes: the record plus the backing array at its current
      capacity (doubling growth, never shrunk by {!clear}). *)
end

(** Windowed MODE state (Wesley & Xu's third holistic aggregate): value
    multiplicities bucketed by count, so add/remove are O(1) amortised (the
    maximum count moves by at most one per update). Tie-breaking among the
    most frequent values is the caller's: {!mode} scans the top bucket with
    a preference predicate. *)
module Mode : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit

  val remove : t -> int -> unit
  (** @raise Invalid_argument if the value is absent. *)

  val size : t -> int

  val max_count : t -> int
  (** Highest multiplicity currently in the window (0 when empty). *)

  val mode : t -> better:(int -> int -> bool) -> int option
  (** The preferred id among those with maximal multiplicity;
      [better a b] means id [a] wins a tie against id [b]. O(top bucket). *)

  val clear : t -> unit

  val footprint_bytes : t -> int
  (** Estimated live bytes across the count table, the bucket index and
      every per-multiplicity id set (via [Hashtbl.stats]). The dominant
      term is proportional to the number of distinct values in the
      window, not the window size. *)
end

module Frame_driver : sig
  val run :
    n:int ->
    frame:(int -> int * int) ->
    add:(int -> unit) ->
    remove:(int -> unit) ->
    result:(int -> unit) ->
    reset:(unit -> unit) ->
    lo:int ->
    hi:int ->
    unit
  (** [run ~n ~frame ~add ~remove ~result ~reset ~lo ~hi] evaluates rows
      [\[lo, hi)] of a partition of [n] rows. [frame i] gives row [i]'s
      half-open frame (clamped to [\[0, n)]); the driver calls [add]/[remove]
      to morph the materialised frame from the previous row's and then
      [result i]. [reset] clears the state; it is called once at [lo] —
      a task-parallel driver calls [run] per task, paying the rebuild. *)
end
