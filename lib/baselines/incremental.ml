module Distinct_count = struct
  type t = { table : (int, int) Hashtbl.t; mutable distinct : int }

  let create () = { table = Hashtbl.create 64; distinct = 0 }

  let add t v =
    match Hashtbl.find_opt t.table v with
    | None ->
        Hashtbl.replace t.table v 1;
        t.distinct <- t.distinct + 1
    | Some m -> Hashtbl.replace t.table v (m + 1)

  let remove t v =
    match Hashtbl.find_opt t.table v with
    | None -> invalid_arg "Incremental.Distinct_count.remove: absent value"
    | Some 1 ->
        Hashtbl.remove t.table v;
        t.distinct <- t.distinct - 1
    | Some m -> Hashtbl.replace t.table v (m - 1)

  let count t = t.distinct

  let clear t =
    Hashtbl.reset t.table;
    t.distinct <- 0

  let footprint_bytes t =
    let s = Hashtbl.stats t.table in
    (* record (header + 2 fields), table record, bucket array, and one
       3-word cons + 2-word boxed pair per binding *)
    8 * (3 + 5 + 1 + s.Hashtbl.num_buckets + (5 * s.Hashtbl.num_bindings))
end

module Sorted_window = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 16 0; len = 0 }
  let size t = t.len

  let position t v =
    let lo = ref 0 and hi = ref t.len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.data.(mid) < v then lo := mid + 1 else hi := mid
    done;
    !lo

  let add t v =
    if t.len = Array.length t.data then begin
      let data = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    let p = position t v in
    Array.blit t.data p t.data (p + 1) (t.len - p);
    t.data.(p) <- v;
    t.len <- t.len + 1

  let remove t v =
    let p = position t v in
    if p >= t.len || t.data.(p) <> v then raise Not_found;
    Array.blit t.data (p + 1) t.data p (t.len - p - 1);
    t.len <- t.len - 1

  let select t i =
    if i < 0 || i >= t.len then invalid_arg "Incremental.Sorted_window.select";
    t.data.(i)

  let rank t v = position t v

  let clear t = t.len <- 0

  (* record (header + 2 fields) + backing array (header + capacity) *)
  let footprint_bytes t = 8 * (3 + 1 + Array.length t.data)
end

module Mode = struct
  type t = {
    counts : (int, int) Hashtbl.t; (* id -> multiplicity *)
    buckets : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* multiplicity -> ids *)
    mutable max_count : int;
    mutable size : int;
  }

  let create () =
    { counts = Hashtbl.create 64; buckets = Hashtbl.create 16; max_count = 0; size = 0 }

  let bucket t c =
    match Hashtbl.find_opt t.buckets c with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 8 in
        Hashtbl.replace t.buckets c b;
        b

  let move t v ~from ~into =
    if from > 0 then begin
      let b = bucket t from in
      Hashtbl.remove b v;
      if Hashtbl.length b = 0 then Hashtbl.remove t.buckets from
    end;
    if into > 0 then begin
      Hashtbl.replace (bucket t into) v ();
      Hashtbl.replace t.counts v into
    end
    else Hashtbl.remove t.counts v

  let add t v =
    let c = Option.value (Hashtbl.find_opt t.counts v) ~default:0 in
    move t v ~from:c ~into:(c + 1);
    if c + 1 > t.max_count then t.max_count <- c + 1;
    t.size <- t.size + 1

  let remove t v =
    match Hashtbl.find_opt t.counts v with
    | None | Some 0 -> invalid_arg "Incremental.Mode.remove: absent value"
    | Some c ->
        move t v ~from:c ~into:(c - 1);
        (* the max can only drop by one, and only when its bucket empties *)
        if c = t.max_count && not (Hashtbl.mem t.buckets c) then t.max_count <- c - 1;
        t.size <- t.size - 1

  let size t = t.size
  let max_count t = t.max_count

  let mode t ~better =
    if t.max_count = 0 then None
    else begin
      let best = ref None in
      Hashtbl.iter
        (fun v () ->
          match !best with
          | None -> best := Some v
          | Some b -> if better v b then best := Some v)
        (bucket t t.max_count);
      !best
    end

  let clear t =
    Hashtbl.reset t.counts;
    Hashtbl.reset t.buckets;
    t.max_count <- 0;
    t.size <- 0

  let table_bytes stats =
    8 * (5 + 1 + stats.Hashtbl.num_buckets + (5 * stats.Hashtbl.num_bindings))

  let footprint_bytes t =
    let nested = Hashtbl.fold (fun _ b acc -> acc + table_bytes (Hashtbl.stats b)) t.buckets 0 in
    (* record (header + 4 fields) + both top-level tables + nested id sets *)
    (8 * 5) + table_bytes (Hashtbl.stats t.counts) + table_bytes (Hashtbl.stats t.buckets) + nested
end

module Frame_driver = struct
  let run ~n ~frame ~add ~remove ~result ~reset ~lo ~hi =
    reset ();
    (* current materialised frame *)
    let cur_lo = ref 0 and cur_hi = ref 0 in
    for i = lo to hi - 1 do
      let flo, fhi = frame i in
      let flo = max 0 (min flo n) and fhi = max 0 (min fhi n) in
      let flo, fhi = if flo > fhi then (flo, flo) else (flo, fhi) in
      (* Morph [cur_lo, cur_hi) into [flo, fhi) with adds/removes. When the
         frames are disjoint everything is removed then re-added — the
         non-monotonic worst case. *)
      if fhi <= !cur_lo || flo >= !cur_hi then begin
        for j = !cur_lo to !cur_hi - 1 do
          remove j
        done;
        for j = flo to fhi - 1 do
          add j
        done
      end
      else begin
        if flo < !cur_lo then
          for j = flo to !cur_lo - 1 do
            add j
          done
        else
          for j = !cur_lo to flo - 1 do
            remove j
          done;
        if fhi > !cur_hi then
          for j = !cur_hi to fhi - 1 do
            add j
          done
        else
          for j = fhi to !cur_hi - 1 do
            remove j
          done
      end;
      cur_lo := flo;
      cur_hi := fhi;
      result i
    done
end
