(** Order statistic tree: a counted B-tree over an integer multiset
    (Tatham [35], the paper's §5.5 standalone competitor for windowed
    percentiles and ranks).

    Every node is annotated with its subtree element count, giving O(log n)
    [insert], [remove], [rank] and [select]. Equal keys are stored as
    individual elements, so the structure is a true multiset. Unlike the
    merge sort tree this structure is incremental — and therefore cannot be
    shared read-only across tasks: each task of a task-parallel driver must
    rebuild the window state from scratch (§3.2). *)

type t

val create : ?min_degree:int -> unit -> t
(** [min_degree] is the B-tree parameter t (nodes hold t-1 .. 2t-1 keys);
    default 16. *)

val size : t -> int

val insert : t -> int -> unit
(** Adds one occurrence of the key. *)

val remove : t -> int -> unit
(** Removes one occurrence. @raise Not_found if the key is absent. *)

val mem : t -> int -> bool

val rank : t -> int -> int
(** Number of stored elements strictly smaller than the key. *)

val select : t -> int -> int
(** [select t i] is the i-th smallest element (0-based).
    @raise Invalid_argument if [i] is out of bounds. *)

val clear : t -> unit

val footprint_bytes : t -> int
(** Live bytes of the tree: every reachable node's record plus its keys
    and children arrays at full B-tree capacity (nodes allocate 2t-1 key
    slots up front, so the figure reflects allocation, not fill). O(nodes)
    walk — the repo-wide memory-accounting contract. *)

val check_invariants : t -> unit
(** Validates B-tree structural invariants (key ordering, node fill, subtree
    counts, uniform leaf depth). For tests. @raise Failure on violation. *)
