module type MONOID = sig
  type t

  val identity : t
  val combine : t -> t -> t
end

module Make (M : MONOID) = struct
  (* Iterative bottom-up segment tree: leaves at [n, 2n), node k combines
     children 2k and 2k+1. Works for any n >= 1 without padding; query
     accumulates a left part and a right part separately so non-commutative
     monoids combine in leaf order. *)
  type t = { n : int; nodes : M.t array }

  let create n leaf =
    if n < 0 then invalid_arg "Segment_tree.create";
    if n = 0 then { n; nodes = [||] }
    else begin
      let nodes = Array.make (2 * n) M.identity in
      for i = 0 to n - 1 do
        nodes.(n + i) <- leaf i
      done;
      for k = n - 1 downto 1 do
        nodes.(k) <- M.combine nodes.(2 * k) nodes.((2 * k) + 1)
      done;
      { n; nodes }
    end

  let length t = t.n

  (* reachable-word accounting covers boxed monoid payloads (shared
     values counted once) and flat float arrays alike. *)
  let footprint_bytes t = 8 * Obj.reachable_words (Obj.repr t.nodes)

  let query t ~lo ~hi =
    let lo = max lo 0 and hi = min hi t.n in
    if lo >= hi then M.identity
    else begin
      let resl = ref M.identity and resr = ref M.identity in
      let l = ref (lo + t.n) and r = ref (hi + t.n) in
      while !l < !r do
        if !l land 1 = 1 then begin
          resl := M.combine !resl t.nodes.(!l);
          incr l
        end;
        if !r land 1 = 1 then begin
          decr r;
          resr := M.combine t.nodes.(!r) !resr
        end;
        l := !l / 2;
        r := !r / 2
      done;
      M.combine !resl !resr
    end
end

module Float_sum = struct
  module T = Make (struct
    type t = float

    let identity = 0.0
    let combine = ( +. )
  end)

  type t = T.t

  let create a = T.create (Array.length a) (fun i -> a.(i))
  let query = T.query
  let footprint_bytes = T.footprint_bytes
end

module Float_min = struct
  module T = Make (struct
    type t = float

    let identity = infinity
    let combine a b = if a <= b then a else b
  end)

  type t = T.t

  let create a = T.create (Array.length a) (fun i -> a.(i))
  let query = T.query
  let footprint_bytes = T.footprint_bytes
end

module Float_max = struct
  module T = Make (struct
    type t = float

    let identity = neg_infinity
    let combine a b = if a >= b then a else b
  end)

  type t = T.t

  let create a = T.create (Array.length a) (fun i -> a.(i))
  let query = T.query
  let footprint_bytes = T.footprint_bytes
end

module Int_sum = struct
  module T = Make (struct
    type t = int

    let identity = 0
    let combine = ( + )
  end)

  type t = T.t

  let create a = T.create (Array.length a) (fun i -> a.(i))
  let query = T.query
  let footprint_bytes = T.footprint_bytes
end
