(* Counted B-tree storing an integer multiset; every node carries its
   subtree element count. Deletion uses the classic preemptive scheme: any
   child is refilled to >= t keys (borrow or merge) before descending, so no
   fix-ups propagate back up. *)

type node = {
  mutable nkeys : int;
  keys : int array; (* 2t - 1 slots *)
  children : node array; (* 2t slots for internal nodes, [||] for leaves *)
  mutable total : int; (* elements in this subtree *)
}

type t = { deg : int; mutable root : node }

let new_leaf deg = { nkeys = 0; keys = Array.make ((2 * deg) - 1) 0; children = [||]; total = 0 }

let new_internal deg =
  {
    nkeys = 0;
    keys = Array.make ((2 * deg) - 1) 0;
    children = Array.make (2 * deg) (Obj.magic 0);
    total = 0;
  }

let is_leaf n = n.children == [||]

let create ?(min_degree = 16) () =
  if min_degree < 2 then invalid_arg "Order_statistic_tree.create: min_degree >= 2";
  { deg = min_degree; root = new_leaf min_degree }

let size t = t.root.total
let clear t = t.root <- new_leaf t.deg

let lower_bound_keys node key =
  let lo = ref 0 and hi = ref node.nkeys in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if node.keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let recompute_total node =
  let acc = ref node.nkeys in
  if not (is_leaf node) then
    for j = 0 to node.nkeys do
      acc := !acc + node.children.(j).total
    done;
  node.total <- !acc

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

(* Split the full child [parent.children.(i)]; the median key moves up into
   [parent] at position [i]. *)
let split_child t parent i =
  let deg = t.deg in
  let y = parent.children.(i) in
  let z = if is_leaf y then new_leaf deg else new_internal deg in
  z.nkeys <- deg - 1;
  Array.blit y.keys deg z.keys 0 (deg - 1);
  if not (is_leaf y) then Array.blit y.children deg z.children 0 deg;
  y.nkeys <- deg - 1;
  (* shift parent's keys/children right to make room *)
  for j = parent.nkeys downto i + 1 do
    parent.keys.(j) <- parent.keys.(j - 1)
  done;
  for j = parent.nkeys + 1 downto i + 2 do
    parent.children.(j) <- parent.children.(j - 1)
  done;
  parent.keys.(i) <- y.keys.(deg - 1);
  parent.children.(i + 1) <- z;
  parent.nkeys <- parent.nkeys + 1;
  recompute_total z;
  recompute_total y

let rec insert_nonfull t node key =
  node.total <- node.total + 1;
  if is_leaf node then begin
    let i = ref (node.nkeys - 1) in
    while !i >= 0 && node.keys.(!i) > key do
      node.keys.(!i + 1) <- node.keys.(!i);
      decr i
    done;
    node.keys.(!i + 1) <- key;
    node.nkeys <- node.nkeys + 1
  end
  else begin
    (* descend into the child right of the last key <= key *)
    let i = ref node.nkeys in
    while !i > 0 && node.keys.(!i - 1) > key do
      decr i
    done;
    if node.children.(!i).nkeys = (2 * t.deg) - 1 then begin
      split_child t node !i;
      if key > node.keys.(!i) then incr i
    end;
    insert_nonfull t node.children.(!i) key
  end

let insert t key =
  if t.root.nkeys = (2 * t.deg) - 1 then begin
    let s = new_internal t.deg in
    s.children.(0) <- t.root;
    s.total <- t.root.total;
    t.root <- s;
    split_child t s 0
  end;
  insert_nonfull t t.root key

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let rec mem_node node key =
  let i = lower_bound_keys node key in
  if i < node.nkeys && node.keys.(i) = key then true
  else if is_leaf node then false
  else mem_node node.children.(i) key

let mem t key = mem_node t.root key

let rec rank_node node key =
  let i = lower_bound_keys node key in
  if is_leaf node then i
  else begin
    let acc = ref i in
    for j = 0 to i - 1 do
      acc := !acc + node.children.(j).total
    done;
    !acc + rank_node node.children.(i) key
  end

let rank t key = rank_node t.root key

let rec select_node node m =
  if is_leaf node then node.keys.(m)
  else begin
    let m = ref m and j = ref 0 in
    let result = ref None in
    while !result = None do
      let c = node.children.(!j).total in
      if !m < c then result := Some (select_node node.children.(!j) !m)
      else begin
        m := !m - c;
        if !m = 0 && !j < node.nkeys then result := Some node.keys.(!j)
        else begin
          (* also consumes the separator key when present *)
          if !j < node.nkeys then decr m;
          incr j
        end
      end
    done;
    Option.get !result
  end

let select t i =
  if i < 0 || i >= size t then invalid_arg "Order_statistic_tree.select: out of bounds";
  select_node t.root i

(* ------------------------------------------------------------------ *)
(* Deletion                                                            *)
(* ------------------------------------------------------------------ *)

let rec subtree_max node =
  if is_leaf node then node.keys.(node.nkeys - 1) else subtree_max node.children.(node.nkeys)

let rec subtree_min node = if is_leaf node then node.keys.(0) else subtree_min node.children.(0)

let remove_key_at node i =
  for j = i to node.nkeys - 2 do
    node.keys.(j) <- node.keys.(j + 1)
  done;
  node.nkeys <- node.nkeys - 1

(* Merge children i and i+1 with the separating key into child i. Both
   children must hold deg-1 keys. *)
let merge_children node i =
  let y = node.children.(i) and z = node.children.(i + 1) in
  y.keys.(y.nkeys) <- node.keys.(i);
  Array.blit z.keys 0 y.keys (y.nkeys + 1) z.nkeys;
  if not (is_leaf y) then Array.blit z.children 0 y.children (y.nkeys + 1) (z.nkeys + 1);
  y.nkeys <- y.nkeys + 1 + z.nkeys;
  y.total <- y.total + 1 + z.total;
  remove_key_at node i;
  for j = i + 1 to node.nkeys do
    node.children.(j) <- node.children.(j + 1)
  done

(* Ensure children.(i) has at least deg keys before descending; returns the
   index of the child to descend into (it can shift after a merge). *)
let refill_child t node i =
  let deg = t.deg in
  let c = node.children.(i) in
  if c.nkeys >= deg then i
  else if i > 0 && node.children.(i - 1).nkeys >= deg then begin
    (* borrow from the left sibling through the separator *)
    let l = node.children.(i - 1) in
    for j = c.nkeys downto 1 do
      c.keys.(j) <- c.keys.(j - 1)
    done;
    c.keys.(0) <- node.keys.(i - 1);
    node.keys.(i - 1) <- l.keys.(l.nkeys - 1);
    if not (is_leaf c) then begin
      for j = c.nkeys + 1 downto 1 do
        c.children.(j) <- c.children.(j - 1)
      done;
      c.children.(0) <- l.children.(l.nkeys);
      let moved = c.children.(0).total in
      l.total <- l.total - moved;
      c.total <- c.total + moved
    end;
    c.nkeys <- c.nkeys + 1;
    l.nkeys <- l.nkeys - 1;
    l.total <- l.total - 1;
    c.total <- c.total + 1;
    i
  end
  else if i < node.nkeys && node.children.(i + 1).nkeys >= deg then begin
    (* borrow from the right sibling through the separator *)
    let r = node.children.(i + 1) in
    c.keys.(c.nkeys) <- node.keys.(i);
    node.keys.(i) <- r.keys.(0);
    remove_key_at r 0;
    if not (is_leaf c) then begin
      let moved = r.children.(0) in
      c.children.(c.nkeys + 1) <- moved;
      for j = 0 to r.nkeys do
        r.children.(j) <- r.children.(j + 1)
      done;
      r.total <- r.total - moved.total;
      c.total <- c.total + moved.total
    end;
    c.nkeys <- c.nkeys + 1;
    r.total <- r.total - 1;
    c.total <- c.total + 1;
    i
  end
  else if i > 0 then begin
    merge_children node (i - 1);
    i - 1
  end
  else begin
    merge_children node i;
    i
  end

(* Delete one occurrence of [key], guaranteed present in [node]'s subtree;
   [node] is the root or holds >= deg keys. *)
let rec delete_sub t node key =
  node.total <- node.total - 1;
  let i = lower_bound_keys node key in
  if i < node.nkeys && node.keys.(i) = key then begin
    if is_leaf node then remove_key_at node i
    else begin
      let y = node.children.(i) and z = node.children.(i + 1) in
      if y.nkeys >= t.deg then begin
        let pred = subtree_max y in
        node.keys.(i) <- pred;
        delete_sub t y pred
      end
      else if z.nkeys >= t.deg then begin
        let succ = subtree_min z in
        node.keys.(i) <- succ;
        delete_sub t z succ
      end
      else begin
        merge_children node i;
        delete_sub t node.children.(i) key
      end
    end
  end
  else begin
    assert (not (is_leaf node));
    let i = refill_child t node i in
    delete_sub t node.children.(i) key
  end

let remove t key =
  if not (mem t key) then raise Not_found;
  delete_sub t t.root key;
  if t.root.nkeys = 0 && not (is_leaf t.root) then t.root <- t.root.children.(0)

(* ------------------------------------------------------------------ *)
(* Memory accounting                                                   *)
(* ------------------------------------------------------------------ *)

(* Walks live children only (slots beyond nkeys of an internal node hold a
   placeholder, never a reachable node). Words: node record header + 4
   fields, keys array header + capacity, children array header + capacity
   when internal. *)
let rec node_bytes n =
  let own =
    8 * (5 + 1 + Array.length n.keys + if is_leaf n then 0 else 1 + Array.length n.children)
  in
  if is_leaf n then own
  else begin
    let acc = ref own in
    for j = 0 to n.nkeys do
      acc := !acc + node_bytes n.children.(j)
    done;
    !acc
  end

let footprint_bytes t = (8 * 3) + node_bytes t.root

(* ------------------------------------------------------------------ *)
(* Invariant checking (tests)                                          *)
(* ------------------------------------------------------------------ *)

let check_invariants t =
  let deg = t.deg in
  let fail fmt = Printf.ksprintf failwith fmt in
  (* returns (depth, total, min_key, max_key) *)
  let rec go node ~is_root =
    if not is_root && node.nkeys < deg - 1 then fail "underfull node (%d keys)" node.nkeys;
    if node.nkeys > (2 * deg) - 1 then fail "overfull node";
    if is_root && node.nkeys = 0 && not (is_leaf node) then fail "empty internal root";
    for j = 1 to node.nkeys - 1 do
      if node.keys.(j - 1) > node.keys.(j) then fail "unsorted keys"
    done;
    if is_leaf node then begin
      if node.total <> node.nkeys then fail "leaf total mismatch";
      (1, node.nkeys, (if node.nkeys > 0 then Some node.keys.(0) else None),
       if node.nkeys > 0 then Some node.keys.(node.nkeys - 1) else None)
    end
    else begin
      let depth = ref (-1) and total = ref node.nkeys in
      let mn = ref None and mx = ref None in
      for j = 0 to node.nkeys do
        let d, tt, cmn, cmx = go node.children.(j) ~is_root:false in
        if !depth = -1 then depth := d
        else if d <> !depth then fail "uneven leaf depth";
        total := !total + tt;
        (match cmn, (if j = 0 then None else Some node.keys.(j - 1)) with
        | Some m, Some sep when m < sep -> fail "separator order violated (left)"
        | _ -> ());
        (match cmx, (if j = node.nkeys then None else Some node.keys.(j)) with
        | Some m, Some sep when m > sep -> fail "separator order violated (right)"
        | _ -> ());
        if j = 0 then mn := cmn;
        if j = node.nkeys then mx := cmx
      done;
      if node.total <> !total then fail "internal total mismatch (%d vs %d)" node.total !total;
      (!depth + 1, !total, (match !mn with Some _ as s -> s | None -> Some node.keys.(0)),
       match !mx with Some _ as s -> s | None -> Some node.keys.(node.nkeys - 1))
    end
  in
  ignore (go t.root ~is_root:true)
