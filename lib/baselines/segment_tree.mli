(** Segment trees for framed distributive and algebraic aggregates
    (Leis et al. [27], the paper's only parallelisable competitor and the
    substrate for non-holistic framed aggregates in the window operator).

    O(n) build, O(log n) per range query, read-only and shareable between
    domains after construction. The aggregate only needs to be associative;
    left-to-right combination order is preserved, and no inverse is
    required. *)

module type MONOID = sig
  type t

  val identity : t
  val combine : t -> t -> t
end

module Make (M : MONOID) : sig
  type t

  val create : int -> (int -> M.t) -> t
  (** [create n leaf] builds the tree over leaves [leaf 0 .. leaf (n-1)]. *)

  val length : t -> int

  val query : t -> lo:int -> hi:int -> M.t
  (** Aggregate of leaves [\[lo, hi)], clamped to [\[0, n)]; identity when
      empty. *)

  val footprint_bytes : t -> int
  (** Reachable bytes of the node array (boxed payloads included) — the
      repo-wide memory-accounting contract. *)
end

module Float_sum : sig
  type t

  val create : float array -> t
  val query : t -> lo:int -> hi:int -> float
  val footprint_bytes : t -> int
end

module Float_min : sig
  type t

  val create : float array -> t
  val query : t -> lo:int -> hi:int -> float
  (** [infinity] on an empty range. *)

  val footprint_bytes : t -> int
end

module Float_max : sig
  type t

  val create : float array -> t
  val query : t -> lo:int -> hi:int -> float
  (** [neg_infinity] on an empty range. *)

  val footprint_bytes : t -> int
end

module Int_sum : sig
  type t

  val create : int array -> t
  val query : t -> lo:int -> hi:int -> int
  val footprint_bytes : t -> int
end
