module Task_pool = Holistic_parallel.Task_pool
module Obs = Holistic_obs.Obs

let test_run_list_results () =
  let pool = Task_pool.create 1 in
  let acc = Array.make 10 0 in
  Task_pool.run_list pool (List.init 10 (fun i () -> acc.(i) <- i * 2));
  Alcotest.(check (array int)) "all tasks ran" (Array.init 10 (fun i -> i * 2)) acc;
  Task_pool.shutdown pool

let test_run_list_multi_domain () =
  let pool = Task_pool.create 4 in
  let acc = Array.make 200 0 in
  Task_pool.run_list pool (List.init 200 (fun i () -> acc.(i) <- i + 1));
  Alcotest.(check int) "sum" (200 * 201 / 2) (Array.fold_left ( + ) 0 acc);
  Task_pool.shutdown pool

exception Boom

let test_exception_propagation () =
  let pool = Task_pool.create 2 in
  let ran_rest = ref 0 in
  (try
     Task_pool.run_list pool
       [ (fun () -> raise Boom); (fun () -> incr ran_rest); (fun () -> incr ran_rest) ];
     Alcotest.fail "expected exception"
   with Boom -> ());
  (* tasks after the failing one still ran to completion *)
  Alcotest.(check int) "remaining tasks completed" 2 !ran_rest;
  (* the pool is reusable after an error *)
  let ok = ref false in
  Task_pool.run_list pool [ (fun () -> ok := true) ];
  Alcotest.(check bool) "pool reusable" true !ok;
  Task_pool.shutdown pool

let test_exception_inline () =
  (* the n=1 pool runs tasks inline on the caller: same error contract *)
  let pool = Task_pool.create 1 in
  let ran_rest = ref 0 in
  (try
     Task_pool.run_list pool
       [ (fun () -> raise Boom); (fun () -> incr ran_rest); (fun () -> incr ran_rest) ];
     Alcotest.fail "expected exception"
   with Boom -> ());
  Alcotest.(check int) "remaining tasks completed" 2 !ran_rest;
  let ok = ref false in
  Task_pool.run_list pool [ (fun () -> ok := true) ];
  Alcotest.(check bool) "pool reusable" true !ok;
  Task_pool.shutdown pool

let test_exception_first_only () =
  (* several tasks raise: exactly one exception surfaces, after the batch *)
  let pool = Task_pool.create 3 in
  (try
     Task_pool.run_list pool (List.init 6 (fun i () -> if i mod 2 = 0 then raise Boom));
     Alcotest.fail "expected exception"
   with Boom -> ());
  Task_pool.shutdown pool

let test_parallel_for_exception () =
  let pool = Task_pool.create 2 in
  let covered = Array.make 100 0 in
  (try
     Task_pool.parallel_for pool ~lo:0 ~hi:100 ~chunk:13 (fun lo hi ->
         if lo = 26 then raise Boom;
         for i = lo to hi - 1 do
           covered.(i) <- 1
         done);
     Alcotest.fail "expected exception"
   with Boom -> ());
  (* chunks other than the failing one ran *)
  Alcotest.(check int) "other chunks completed" (100 - 13) (Array.fold_left ( + ) 0 covered);
  let ok = ref false in
  Task_pool.run_list pool [ (fun () -> ok := true) ];
  Alcotest.(check bool) "pool reusable" true !ok;
  Task_pool.shutdown pool

let test_exception_stats_consistent () =
  (* with tracing on, raising tasks are still counted and timed, and the
     error still surfaces on the caller *)
  let pool = Task_pool.create 2 in
  Obs.reset ();
  Obs.enable ();
  Task_pool.reset_stats pool;
  (try
     Task_pool.run_list pool (List.init 5 (fun i () -> if i = 0 then raise Boom));
     Alcotest.fail "expected exception"
   with Boom -> ());
  Obs.disable ();
  let sum f = Array.fold_left (fun a st -> a + f st) 0 (Task_pool.worker_stats pool) in
  Alcotest.(check int) "every task counted, raising one included" 5
    (sum (fun st -> st.Task_pool.tasks));
  Alcotest.(check bool) "busy time non-negative" true (sum (fun st -> st.Task_pool.busy_ns) >= 0);
  Obs.reset ();
  Task_pool.shutdown pool

let test_parallel_for_coverage () =
  let pool = Task_pool.create 3 in
  let hits = Array.make 1000 0 in
  Task_pool.parallel_for pool ~lo:0 ~hi:1000 ~chunk:37 (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "each index exactly once" true (Array.for_all (( = ) 1) hits);
  Task_pool.shutdown pool

let test_parallel_for_empty () =
  let pool = Task_pool.create 1 in
  let ran = ref false in
  Task_pool.parallel_for pool ~lo:5 ~hi:5 ~chunk:10 (fun _ _ -> ran := true);
  Alcotest.(check bool) "no chunk for empty range" false !ran;
  Alcotest.check_raises "zero chunk rejected"
    (Invalid_argument "Task_pool.parallel_for: chunk must be positive") (fun () ->
      Task_pool.parallel_for pool ~lo:0 ~hi:10 ~chunk:0 (fun _ _ -> ()));
  Task_pool.shutdown pool

let test_shutdown_idempotent () =
  let pool = Task_pool.create 2 in
  Task_pool.shutdown pool;
  Task_pool.shutdown pool

let test_auto_chunk () =
  (* without ?chunk the chunk size derives from the range and pool size:
     several tasks per domain, at least 1, capped at chunk_max *)
  let pool = Task_pool.create 4 in
  Alcotest.(check int) "small range still fans out" 7
    (Task_pool.auto_chunk pool ~lo:0 ~hi:100 ~max:20_000);
  Alcotest.(check int) "huge range capped at max" 20_000
    (Task_pool.auto_chunk pool ~lo:0 ~hi:10_000_000 ~max:20_000);
  Alcotest.(check int) "tiny range keeps chunk >= 1" 1
    (Task_pool.auto_chunk pool ~lo:0 ~hi:3 ~max:20_000);
  (* derived chunking covers every index exactly once *)
  let hits = Array.make 1_000 0 in
  Task_pool.parallel_for pool ~lo:0 ~hi:1_000 (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "each index exactly once" true (Array.for_all (( = ) 1) hits);
  Task_pool.shutdown pool

let test_reentrant_nesting () =
  (* a task of the pool may itself run parallel work on the same pool:
     the nested batch runs inline on its domain, no deadlock even when
     every outer task nests (which would starve a blocking design) *)
  let pool = Task_pool.create 3 in
  let acc = Array.make (8 * 100) 0 in
  Task_pool.run_list pool
    (List.init 8 (fun outer () ->
         Task_pool.parallel_for pool ~lo:0 ~hi:100 ~chunk:9 (fun lo hi ->
             for i = lo to hi - 1 do
               acc.((outer * 100) + i) <- acc.((outer * 100) + i) + 1
             done)));
  Alcotest.(check bool) "all nested work done exactly once" true (Array.for_all (( = ) 1) acc);
  (* nested errors propagate out through the outer batch *)
  (try
     Task_pool.run_list pool
       [ (fun () -> Task_pool.run_list pool [ (fun () -> raise Boom) ]) ];
     Alcotest.fail "expected exception"
   with Boom -> ());
  Task_pool.shutdown pool

let test_batch_overlap () =
  (* two batches in flight on one pool: each wait drains only its own *)
  let pool = Task_pool.create 2 in
  let a = Atomic.make 0 and b = Atomic.make 0 in
  let ba = Task_pool.new_batch () and bb = Task_pool.new_batch () in
  for _ = 1 to 20 do
    Task_pool.submit pool ba (fun () -> Atomic.incr a);
    Task_pool.submit pool bb (fun () -> Atomic.incr b)
  done;
  Task_pool.wait pool ba;
  Alcotest.(check int) "batch a complete" 20 (Atomic.get a);
  Task_pool.wait pool bb;
  Alcotest.(check int) "batch b complete" 20 (Atomic.get b);
  (* a batch is reusable for further rounds, and carries errors per-round *)
  Task_pool.submit pool ba (fun () -> raise Boom);
  (try
     Task_pool.wait pool ba;
     Alcotest.fail "expected exception"
   with Boom -> ());
  Task_pool.submit pool ba (fun () -> Atomic.incr a);
  Task_pool.wait pool ba;
  Alcotest.(check int) "batch reusable after error" 21 (Atomic.get a);
  Task_pool.shutdown pool

let test_build_cache_concurrent () =
  (* hammer one Build_cache from every domain: each key must be built
     exactly once and every requester must observe the built value *)
  let module Build_cache = Holistic_window.Build_cache in
  let module Sort_spec = Holistic_storage.Sort_spec in
  let pool = Task_pool.create 4 in
  let counters = Build_cache.fresh_counters () in
  let cache = Build_cache.create ~counters () in
  let keys =
    Array.init 8 (fun i ->
        [ Sort_spec.asc (Holistic_storage.Expr.Col (Printf.sprintf "c%d" i)) ])
  in
  let builds = Atomic.make 0 in
  Task_pool.run_list pool
    (List.init 64 (fun i () ->
         let order = keys.(i mod 8) in
         let got =
           Build_cache.encode cache ~order (fun () ->
               Atomic.incr builds;
               (* a slow build widens the race window *)
               ignore (Sys.opaque_identity (Array.init 2_000 (fun j -> j * j)));
               Holistic_core.Rank_encode.of_ints (Array.make (1 + (i mod 8)) 0))
         in
         (* the structure's size identifies which key it was built for *)
         Alcotest.(check int)
           "every requester sees the key's structure"
           (1 + (i mod 8))
           (Array.length got.Holistic_core.Rank_encode.permutation)));
  Alcotest.(check int) "each key built exactly once" 8 (Atomic.get builds);
  Alcotest.(check int) "encode counter agrees" 8 (Build_cache.encode_build_count counters);
  Task_pool.shutdown pool

let test_task_size_constant () =
  (* The paper's §5.5 task granularity is load-bearing for the experiments;
     changing it invalidates EXPERIMENTS.md. *)
  Alcotest.(check int) "20000-tuple morsels" 20_000 Task_pool.default_task_size

let () =
  Alcotest.run "parallel"
    [
      ( "task_pool",
        [
          Alcotest.test_case "run_list inline" `Quick test_run_list_results;
          Alcotest.test_case "run_list multi-domain" `Quick test_run_list_multi_domain;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "exception propagation (inline pool)" `Quick test_exception_inline;
          Alcotest.test_case "first exception only" `Quick test_exception_first_only;
          Alcotest.test_case "parallel_for exception" `Quick test_parallel_for_exception;
          Alcotest.test_case "stats consistent across errors" `Quick
            test_exception_stats_consistent;
          Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_coverage;
          Alcotest.test_case "parallel_for edge cases" `Quick test_parallel_for_empty;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "auto chunk derivation" `Quick test_auto_chunk;
          Alcotest.test_case "reentrant nesting" `Quick test_reentrant_nesting;
          Alcotest.test_case "overlapping batches" `Quick test_batch_overlap;
          Alcotest.test_case "build cache concurrent population" `Quick
            test_build_cache_concurrent;
          Alcotest.test_case "default task size" `Quick test_task_size_constant;
        ] );
    ]
