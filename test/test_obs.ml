(* Tests for the observability layer: Obs spans/counters, pool worker
   statistics, and golden EXPLAIN ANALYZE output (wall times masked). *)

open Holistic_storage
module Obs = Holistic_obs.Obs
module Task_pool = Holistic_parallel.Task_pool
module Sql = Holistic_sql.Sql

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Obs unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_now_ns () =
  let t1 = Obs.now_ns () in
  let t2 = Obs.now_ns () in
  Alcotest.(check bool) "monotone" true (t2 >= t1 && t1 > 0)

let test_span_nesting () =
  let v, tr =
    Obs.with_capture (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span ~args:(fun () -> [ ("k", "v") ]) "inner" (fun () -> ());
            Obs.span "inner2" (fun () -> ());
            17))
  in
  Alcotest.(check int) "result" 17 v;
  Alcotest.(check (list string)) "start order"
    [ "outer"; "inner"; "inner2" ]
    (List.map (fun (s : Obs.span) -> s.name) tr.Obs.spans);
  let find name = List.find (fun (s : Obs.span) -> s.Obs.name = name) tr.Obs.spans in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "outer is root" (-1) outer.Obs.parent;
  Alcotest.(check int) "inner under outer" outer.Obs.id inner.Obs.parent;
  Alcotest.(check (list (pair string string))) "args forced" [ ("k", "v") ] inner.Obs.args;
  Alcotest.(check bool) "durations set" true
    (List.for_all (fun (s : Obs.span) -> s.Obs.dur_ns >= 0) tr.Obs.spans)

let test_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  let forced = ref false in
  let v =
    Obs.span
      ~args:(fun () ->
        forced := true;
        [])
      "off" (fun () -> 3)
  in
  Alcotest.(check int) "value passes through" 3 v;
  Alcotest.(check bool) "args thunk never forced" false !forced;
  let tr = Obs.capture () in
  Alcotest.(check int) "no spans recorded" 0 (List.length tr.Obs.spans)

let test_exception_closes_span () =
  let (), tr =
    Obs.with_capture (fun () ->
        (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
        Obs.span "after" (fun () -> ()))
  in
  let find name = List.find (fun (s : Obs.span) -> s.Obs.name = name) tr.Obs.spans in
  Alcotest.(check bool) "boom recorded, closed" true ((find "boom").Obs.dur_ns >= 0);
  Alcotest.(check int) "stack not corrupted: after is a root" (-1) (find "after").Obs.parent

let test_annotate () =
  let (), tr =
    Obs.with_capture (fun () -> Obs.span "s" (fun () -> Obs.annotate [ ("note", "here") ]))
  in
  let s = List.hd tr.Obs.spans in
  Alcotest.(check bool) "annotation attached" true (List.mem_assoc "note" s.Obs.args)

let test_counters () =
  let c = Obs.Counter.make "test.gated" in
  Obs.reset ();
  Obs.disable ();
  Obs.Counter.add c 5;
  Alcotest.(check int) "gated add is a no-op when disabled" 0 (Obs.Counter.value c);
  Obs.Counter.add_always c 5;
  Alcotest.(check int) "add_always counts when disabled" 5 (Obs.Counter.value c);
  Obs.enable ();
  Obs.Counter.incr c;
  Obs.disable ();
  Alcotest.(check int) "gated add counts when enabled" 6 (Obs.Counter.value c);
  Alcotest.(check bool) "registered in snapshot" true
    (List.mem ("test.gated", 6) (Obs.Counter.snapshot ()));
  Alcotest.(check bool) "same name, same counter" true
    (Obs.Counter.value (Obs.Counter.make "test.gated") = 6);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c)

let test_with_capture_restores () =
  Obs.disable ();
  let (), _ = Obs.with_capture (fun () -> Alcotest.(check bool) "on inside" true (Obs.enabled ())) in
  Alcotest.(check bool) "off restored" false (Obs.enabled ());
  Obs.enable ();
  let (), _ = Obs.with_capture (fun () -> ()) in
  Alcotest.(check bool) "on restored" true (Obs.enabled ());
  Obs.disable ()

let test_totals () =
  let (), tr =
    Obs.with_capture (fun () ->
        Obs.span "a" (fun () -> ());
        Obs.span "b" (fun () -> ());
        Obs.span "a" (fun () -> ()))
  in
  match Obs.totals tr with
  | [ ("a", (2, sa)); ("b", (1, sb)) ] ->
      Alcotest.(check bool) "non-negative seconds" true (sa >= 0.0 && sb >= 0.0)
  | other ->
      Alcotest.failf "unexpected totals: %s"
        (String.concat "; " (List.map (fun (n, (c, _)) -> Printf.sprintf "%s/%d" n c) other))

let test_render_aggregates () =
  let (), tr =
    Obs.with_capture (fun () ->
        Obs.span "p" (fun () ->
            Obs.span "c" (fun () -> ());
            Obs.span "c" (fun () -> ())))
  in
  let r = Obs.render tr in
  Alcotest.(check bool) "sibling aggregation" true (contains ~sub:"c x2" r);
  Alcotest.(check bool) "times as ms" true (contains ~sub:" ms" r)

let test_chrome_json () =
  let (), tr =
    Obs.with_capture (fun () ->
        Obs.span "alpha" (fun () -> Obs.Counter.add (Obs.Counter.make "test.chrome") 3))
  in
  let j = Obs.to_chrome_json tr in
  List.iter
    (fun sub -> Alcotest.(check bool) sub true (contains ~sub j))
    [ "\"traceEvents\""; "\"ph\":\"X\""; "\"alpha\""; "\"ph\":\"C\""; "\"test.chrome\"" ];
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_hist_buckets () =
  let module Hg = Obs.Histogram in
  (* values below 16 are exact: bucket = value = lower bound *)
  for v = 0 to 15 do
    Alcotest.(check int) "exact bucket" v (Hg.bucket_of_value v);
    Alcotest.(check int) "exact lower bound" v (Hg.bucket_lower_bound v)
  done;
  (* the first octave above 15 is still exact (16 sub-buckets of width 1) *)
  Alcotest.(check int) "16" 16 (Hg.bucket_of_value 16);
  Alcotest.(check int) "31" 31 (Hg.bucket_of_value 31);
  Alcotest.(check int) "lb 16" 16 (Hg.bucket_lower_bound 16);
  Alcotest.(check int) "lb 31" 31 (Hg.bucket_lower_bound 31);
  (* from 32 on, sub-buckets widen: 32 and 33 coincide, 32 and 34 differ *)
  Alcotest.(check int) "32/33 share" (Hg.bucket_of_value 32) (Hg.bucket_of_value 33);
  Alcotest.(check bool) "32/34 differ" true (Hg.bucket_of_value 32 <> Hg.bucket_of_value 34);
  (* bucket index and lower bound are monotone, lower bound never exceeds
     the value, and relative quantisation error stays below 1/16 *)
  let prev = ref (-1) in
  let v = ref 0 in
  while !v < 1 lsl 40 do
    let b = Hg.bucket_of_value !v in
    Alcotest.(check bool) "bucket in range" true (b >= 0 && b < Hg.bucket_count);
    Alcotest.(check bool) "monotone" true (b >= !prev);
    let lb = Hg.bucket_lower_bound b in
    Alcotest.(check bool) "lower bound <= v" true (lb <= !v);
    Alcotest.(check bool) "error < 1/16" true
      (float_of_int (!v - lb) < (1.0 /. 16.0) *. float_of_int (max 1 !v));
    prev := b;
    v := (!v * 17 / 16) + 1
  done;
  Alcotest.(check bool) "max_int maps" true
    (Hg.bucket_lower_bound (Hg.bucket_of_value max_int) <= max_int)

let test_hist_quantiles () =
  let h = Obs.Histogram.make "test.hist.q" in
  Obs.Histogram.reset h;
  for v = 1 to 1000 do
    Obs.Histogram.add_always h v
  done;
  let s = Obs.Histogram.summary h in
  Alcotest.(check int) "count" 1000 s.Obs.Histogram.count;
  Alcotest.(check int) "min" 1 s.Obs.Histogram.min;
  Alcotest.(check int) "max" 1000 s.Obs.Histogram.max;
  Alcotest.(check int) "sum" 500_500 s.Obs.Histogram.sum;
  let { Obs.Histogram.p50; p90; p99; _ } = s in
  Alcotest.(check bool) "quantiles monotone" true (p50 <= p90 && p90 <= p99 && p99 <= s.Obs.Histogram.max);
  (* conservative estimates: never above the true quantile, within one
     1/16-wide sub-bucket below it *)
  Alcotest.(check bool) "p50 near 500" true (p50 <= 500 && p50 > 460);
  Alcotest.(check bool) "p90 near 900" true (p90 <= 900 && p90 > 830);
  Alcotest.(check bool) "p99 near 990" true (p99 <= 990 && p99 > 920);
  let q100 = Obs.Histogram.quantile h 1.0 in
  Alcotest.(check bool) "q=1.0 lands in the max bucket" true (q100 >= p99 && q100 <= s.Obs.Histogram.max);
  Obs.Histogram.reset h;
  Alcotest.(check int) "reset clears" 0 (Obs.Histogram.count h)

let test_hist_merge () =
  let module Hg = Obs.Histogram in
  let h1 = Hg.make "test.hist.m1"
  and h2 = Hg.make "test.hist.m2"
  and hall = Hg.make "test.hist.mall" in
  List.iter Hg.reset [ h1; h2; hall ];
  let a = [ 3; 17; 200; 5000; 0 ] and b = [ 1; 999; 12345; 17 ] in
  List.iter (fun v -> Hg.add_always h1 v; Hg.add_always hall v) a;
  List.iter (fun v -> Hg.add_always h2 v; Hg.add_always hall v) b;
  Hg.merge ~into:h1 h2;
  Alcotest.(check bool) "merge = adding everything" true (Hg.summary h1 = Hg.summary hall);
  let before = Hg.summary h1 in
  Hg.merge ~into:h1 h1;
  Alcotest.(check bool) "self-merge is a no-op" true (Hg.summary h1 = before);
  List.iter Hg.reset [ h1; h2; hall ]

let test_hist_gating () =
  let h = Obs.Histogram.make "test.hist.gate" in
  Obs.Histogram.reset h;
  Obs.disable ();
  Obs.Histogram.add h 5;
  Alcotest.(check int) "gated add is a no-op when disabled" 0 (Obs.Histogram.count h);
  Obs.Histogram.add_always h 5;
  Alcotest.(check int) "add_always records when disabled" 1 (Obs.Histogram.count h);
  Obs.enable ();
  Obs.Histogram.add h 7;
  Obs.disable ();
  Alcotest.(check int) "gated add records when enabled" 2 (Obs.Histogram.count h);
  Obs.Histogram.add_always h (-3);
  Alcotest.(check int) "negative clamps to 0" 0 (Obs.Histogram.summary h).Obs.Histogram.min;
  Alcotest.(check bool) "in snapshot" true
    (List.mem_assoc "test.hist.gate" (Obs.Histogram.snapshot ()));
  Obs.Histogram.reset_all ();
  Alcotest.(check bool) "reset_all drops it from the snapshot" false
    (List.mem_assoc "test.hist.gate" (Obs.Histogram.snapshot ()))

let test_hists_in_trace () =
  let (), tr =
    Obs.with_capture (fun () ->
        let h = Obs.Histogram.make "test.hist.trace_ns" in
        Obs.Histogram.add h 100;
        Obs.Histogram.add h 200)
  in
  (match List.assoc_opt "test.hist.trace_ns" tr.Obs.hists with
  | Some s -> Alcotest.(check int) "captured count" 2 s.Obs.Histogram.count
  | None -> Alcotest.fail "histogram missing from trace");
  let r = Obs.render tr in
  Alcotest.(check bool) "rendered" true (contains ~sub:"test.hist.trace_ns" r);
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Memory accounting: record_bytes, GC sampling, self-times            *)
(* ------------------------------------------------------------------ *)

let test_record_bytes () =
  let (), tr =
    Obs.with_capture (fun () ->
        Obs.span "outer" (fun () ->
            Obs.record_bytes (fun () -> 123);
            Obs.span "inner" (fun () -> Obs.record_bytes (fun () -> 1000));
            Obs.record_bytes (fun () -> 77)))
  in
  let find name = List.find (fun (s : Obs.span) -> s.Obs.name = name) tr.Obs.spans in
  Alcotest.(check int) "bytes attributed to the innermost open span" 200 (find "outer").Obs.bytes;
  Alcotest.(check int) "nested span gets its own" 1000 (find "inner").Obs.bytes;
  Obs.reset ();
  Obs.disable ();
  let forced = ref false in
  Obs.record_bytes (fun () ->
      forced := true;
      1);
  Alcotest.(check bool) "thunk not forced when disabled" false !forced;
  (* outside any span, attribution silently drops *)
  Obs.enable ();
  Obs.record_bytes (fun () -> 55);
  Obs.disable ();
  Obs.reset ()

let test_gc_sampling () =
  let (), tr =
    Obs.with_capture (fun () ->
        Obs.span "alloc" (fun () ->
            (* a 100k-float array: ~100_001 words, allocated directly on
               the major heap *)
            ignore (Sys.opaque_identity (Array.make 100_000 0.0))))
  in
  let s = List.hd tr.Obs.spans in
  Alcotest.(check bool) "allocated words counted" true (s.Obs.alloc_w >= 100_000);
  Alcotest.(check bool) "non-negative GC fields" true
    (s.Obs.promoted_w >= 0 && s.Obs.majors >= 0)

let test_self_totals () =
  let mk id parent name dur_ns =
    {
      Obs.id;
      parent;
      name;
      tid = 0;
      t0_ns = 0;
      dur_ns;
      args = [];
      alloc_w = 0;
      promoted_w = 0;
      majors = 0;
      bytes = 0;
    }
  in
  (* root (100) > child (60) > grandchild (25); sibling child (15) *)
  let tr =
    {
      Obs.spans = [ mk 0 (-1) "root" 100; mk 1 0 "child" 60; mk 2 1 "grand" 25; mk 3 0 "child" 15 ];
      counters = [];
      hists = [];
      dropped = 0;
    }
  in
  let self = Obs.self_totals tr in
  let get name = List.assoc name self in
  Alcotest.(check int) "root self = 100 - 60 - 15" 25
    (int_of_float (snd (get "root") *. 1e9 +. 0.5));
  Alcotest.(check int) "child self = (60 - 25) + 15" 50
    (int_of_float (snd (get "child") *. 1e9 +. 0.5));
  Alcotest.(check int) "child count" 2 (fst (get "child"));
  Alcotest.(check int) "grand self = 25" 25 (int_of_float (snd (get "grand") *. 1e9 +. 0.5));
  (* a child longer than its parent (dropped spans, clock skew) clamps at 0 *)
  let tr2 =
    { Obs.spans = [ mk 0 (-1) "p" 10; mk 1 0 "c" 50 ]; counters = []; hists = []; dropped = 0 }
  in
  Alcotest.(check int) "negative self clamps to 0" 0
    (int_of_float (snd (List.assoc "p" (Obs.self_totals tr2)) *. 1e9 +. 0.5))

(* The footprint contract: [footprint_bytes] of a built structure must
   track what the heap actually holds.  Build a 64-bit MST (all-boxed
   OCaml arrays — the 32/16-bit widths keep their buffers in malloc'd
   bigarrays outside the OCaml heap) and compare against the live-word
   delta across construction. *)
let test_footprint_parity () =
  let module Mst = Holistic_core.Mst in
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let n = 50_000 in
      let keys = Array.init n (fun i -> i * 7919 mod n) in
      (* warm up any lazy one-time allocations on this path *)
      ignore (Sys.opaque_identity (Mst.create ~pool keys));
      Gc.full_major ();
      Gc.full_major ();
      let before = (Gc.stat ()).Gc.live_words in
      let t = Mst.create ~pool keys in
      Gc.full_major ();
      let after = (Gc.stat ()).Gc.live_words in
      let measured = 8 * (after - before) in
      let fp = Mst.footprint_bytes t in
      Alcotest.(check bool)
        (Printf.sprintf "footprint %d B within 10%% of measured %d B" fp measured)
        true
        (float_of_int (abs (fp - measured)) <= 0.10 *. float_of_int measured);
      ignore (Sys.opaque_identity t);
      ignore (Sys.opaque_identity keys))

(* ------------------------------------------------------------------ *)
(* Task pool worker statistics                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_stats () =
  let pool = Task_pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      Obs.reset ();
      Obs.disable ();
      Task_pool.run_list pool (List.init 8 (fun _ () -> ignore (Sys.opaque_identity 1)));
      let sum f = Array.fold_left (fun a st -> a + f st) 0 (Task_pool.worker_stats pool) in
      Alcotest.(check int) "no counting while disabled" 0
        (sum (fun st -> st.Task_pool.tasks));
      Obs.enable ();
      Task_pool.run_list pool (List.init 8 (fun _ () -> ignore (Sys.opaque_identity 1)));
      Task_pool.parallel_for pool ~lo:0 ~hi:40 ~chunk:10 (fun _ _ -> ());
      Obs.disable ();
      Alcotest.(check int) "tasks counted while enabled" 12 (sum (fun st -> st.Task_pool.tasks));
      Alcotest.(check bool) "busy time accumulated" true
        (sum (fun st -> st.Task_pool.busy_ns) >= 0);
      Task_pool.reset_stats pool;
      Alcotest.(check int) "reset_stats" 0 (sum (fun st -> st.Task_pool.tasks));
      Obs.reset ())

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE goldens                                             *)
(* ------------------------------------------------------------------ *)

let table () =
  Table.create
    [
      ("g", Column.ints [| 1; 1; 2; 2; 1; 2 |]);
      ("x", Column.ints [| 3; 1; 2; 5; 4; 1 |]);
      ("s", Column.strings [| "a"; "b"; "a"; "c"; "b"; "a" |]);
    ]

let q1 =
  "select rank() over (partition by g order by x) as r, sum(x) over (partition by g order by x \
   rows between 1 preceding and current row) as s1, count(*) over (partition by g order by x, s) \
   as c from t"

let q2 =
  "select x + 1 as y, row_number() over (order by x desc) as rn from t where g = 1 order by rn \
   limit 2"

(* Masks wall times ("<float> ms" -> "# ms") and allocation counts
   ("<float> kw" -> "# kw"), and collapses the alignment padding (interior
   runs of spaces), keeping the indentation that carries the span tree
   structure.  Structure bytes (the "B"/"KB" memory column) are
   deterministic and stay unmasked. *)
let mask_report s =
  let mask_line line =
    let n = String.length line in
    let ind = ref 0 in
    while !ind < n && line.[!ind] = ' ' do
      incr ind
    done;
    let buf = Buffer.create n in
    Buffer.add_string buf (String.sub line 0 !ind);
    let is_num c = (c >= '0' && c <= '9') || c = '.' in
    let i = ref !ind in
    while !i < n do
      let c = line.[!i] in
      if is_num c then begin
        let j = ref !i in
        while !j < n && is_num line.[!j] do
          incr j
        done;
        if !j + 2 < n && line.[!j] = ' ' && line.[!j + 1] = 'm' && line.[!j + 2] = 's' then begin
          Buffer.add_string buf "# ms";
          i := !j + 3
        end
        else if !j + 2 < n && line.[!j] = ' ' && line.[!j + 1] = 'k' && line.[!j + 2] = 'w' then begin
          Buffer.add_string buf "# kw";
          i := !j + 3
        end
        else begin
          Buffer.add_string buf (String.sub line !i (!j - !i));
          i := !j
        end
      end
      else if c = ' ' then begin
        let j = ref !i in
        while !j < n && line.[!j] = ' ' do
          incr j
        done;
        Buffer.add_char buf ' ';
        i := !j
      end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    done;
    Buffer.contents buf
  in
  String.concat "\n" (List.map mask_line (String.split_on_char '\n' s))

let golden1 =
  {|from: t
select window: rank() over (partition by g order by x) as r
select window: sum(x) over (partition by g order by x rows between 1 preceding and current row) as s1
select window: count(*) over (partition by g order by x, s) as c
rows: 6 (504 B)
sql.query # ms - # kw
  sql.window # ms - # kw
    window_plan {rows=6, clauses=3} # ms - # kw
      partition_ids {by=g} # ms - # kw
      sort {order=x, s, kind=full, path=encoded, rows=6} # ms 88 B # kw
        sort.runs {n=6, runs=1} # ms - # kw
      choose {item=r, evaluator=mst, cost=mst=2.9us, rejected=naive=0.0us,ost=0.2us} # ms - # kw
      choose {item=s1, evaluator=segment-tree, cost=segment-tree=0.1us, rejected=naive=0.0us} # ms - # kw
      eval {order=x, s, partitions=2} # ms - # kw
        frame {order=x} x4 # ms - # kw
          build {kind=peers} x2 # ms 176 B # kw
        item {name=r, func=rank, evaluator=mst} x2 # ms - # kw
          build {kind=encode} x2 # ms 240 B # kw
            sort.runs {n=3, runs=1} x2 # ms - # kw
          build {kind=mst.rank} x2 # ms 152 B # kw
        item {name=s1, func=sum, evaluator=segment-tree} x2 # ms - # kw
          build {kind=remap} x2 # ms 192 B # kw
          build {kind=segment_tree} x2 # ms 272 B # kw
        frame {order=x, s} x2 # ms - # kw
          build {kind=peers} x2 # ms 176 B # kw
        item {name=c, func=count(*)} x2 # ms - # kw
    materialize {columns=3} # ms 288 B # kw
  sql.project {columns=3} # ms - # kw
counters
  cache.hit 2
  cache.miss 12
  mem.structure_bytes 1208
  plan.evaluator.mst 1
  plan.evaluator.segment-tree 1
  plan.full_sorts 1
  plan.partition_passes 1
  plan.reused_sorts 2
  plan.stages 1
  pool.busy_ns # ms
  pool.tasks 9
|}

let golden2 =
  {|from: t
where: (g = 1)
select expr: (x + 1) as y
select window: row_number() over (order by x desc) as rn
order by: rn
limit: 2
rows: 2 (280 B)
sql.query # ms - # kw
  sql.where {in=6, out=3} # ms 464 B # kw
  sql.window # ms - # kw
    window_plan {rows=3, clauses=1} # ms - # kw
      partition_ids {by=} # ms - # kw
      sort {order=x desc, kind=full, path=encoded, rows=3} # ms 56 B # kw
        sort.runs {n=3, runs=1} # ms - # kw
      choose {item=rn, evaluator=mst, cost=mst=1.4us, rejected=naive=0.0us,ost=0.1us} # ms - # kw
      eval {order=x desc, partitions=1} # ms - # kw
        frame {order=x desc} # ms - # kw
          build {kind=peers} # ms 88 B # kw
        item {name=rn, func=row_number, evaluator=mst} # ms - # kw
          build {kind=encode} # ms 120 B # kw
          build {kind=mst.row} # ms 76 B # kw
    materialize {columns=1} # ms 72 B # kw
  sql.project {columns=2} # ms 72 B # kw
  sql.order_by {rows=3} # ms - # kw
    sort.runs {n=3, runs=1} # ms - # kw
counters
  cache.miss 3
  mem.structure_bytes 284
  plan.evaluator.mst 1
  plan.full_sorts 1
  plan.partition_passes 1
  plan.stages 1
  pool.busy_ns # ms
  pool.tasks 3
|}

let golden_case query golden () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let _, report = Sql.explain_analyze ~pool ~tables:[ ("t", table ()) ] query in
      Alcotest.(check string) "masked report" golden (mask_report report))

(* With tracing disabled, EXPLAIN ANALYZE and a plain query agree cell for
   cell, and explain_analyze leaves tracing in the state it found it. *)
let test_disabled_parity () =
  Obs.disable ();
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      List.iter
        (fun q ->
          let plain = Sql.query ~pool ~tables:[ ("t", table ()) ] q in
          let traced, _ = Sql.explain_analyze ~pool ~tables:[ ("t", table ()) ] q in
          Alcotest.(check bool) "tracing left disabled" false (Obs.enabled ());
          Alcotest.(check (list string)) "columns"
            (Table.column_names plain) (Table.column_names traced);
          List.iter
            (fun name ->
              let cp = Table.column plain name and ct = Table.column traced name in
              for r = 0 to Table.nrows plain - 1 do
                if not (Value.equal (Column.get cp r) (Column.get ct r)) then
                  Alcotest.failf "query %s: row %d col %s differs" q r name
              done)
            (Table.column_names plain))
        [ q1; q2 ])

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "monotonic clock" `Quick test_now_ns;
          Alcotest.test_case "span nesting and args" `Quick test_span_nesting;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "exception closes span" `Quick test_exception_closes_span;
          Alcotest.test_case "annotate" `Quick test_annotate;
          Alcotest.test_case "counters: gating, registry, reset" `Quick test_counters;
          Alcotest.test_case "with_capture restores state" `Quick test_with_capture_restores;
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "render aggregates siblings" `Quick test_render_aggregates;
          Alcotest.test_case "chrome trace json" `Quick test_chrome_json;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket layout" `Quick test_hist_buckets;
          Alcotest.test_case "quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "gating, registry, reset" `Quick test_hist_gating;
          Alcotest.test_case "histograms in traces" `Quick test_hists_in_trace;
        ] );
      ( "memory",
        [
          Alcotest.test_case "record_bytes attribution" `Quick test_record_bytes;
          Alcotest.test_case "GC sampling per span" `Quick test_gc_sampling;
          Alcotest.test_case "self_totals" `Quick test_self_totals;
          Alcotest.test_case "footprint parity (64-bit MST)" `Quick test_footprint_parity;
        ] );
      ("pool", [ Alcotest.test_case "worker statistics" `Quick test_pool_stats ]);
      ( "explain-analyze",
        [
          Alcotest.test_case "golden: multi-OVER sharing" `Quick (golden_case q1 golden1);
          Alcotest.test_case "golden: where/project/order by" `Quick (golden_case q2 golden2);
          Alcotest.test_case "disabled-tracing parity" `Quick test_disabled_parity;
        ] );
    ]
