(* Tests for the observability layer: Obs spans/counters, pool worker
   statistics, and golden EXPLAIN ANALYZE output (wall times masked). *)

open Holistic_storage
module Obs = Holistic_obs.Obs
module Task_pool = Holistic_parallel.Task_pool
module Sql = Holistic_sql.Sql

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Obs unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_now_ns () =
  let t1 = Obs.now_ns () in
  let t2 = Obs.now_ns () in
  Alcotest.(check bool) "monotone" true (t2 >= t1 && t1 > 0)

let test_span_nesting () =
  let v, tr =
    Obs.with_capture (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span ~args:(fun () -> [ ("k", "v") ]) "inner" (fun () -> ());
            Obs.span "inner2" (fun () -> ());
            17))
  in
  Alcotest.(check int) "result" 17 v;
  Alcotest.(check (list string)) "start order"
    [ "outer"; "inner"; "inner2" ]
    (List.map (fun (s : Obs.span) -> s.name) tr.Obs.spans);
  let find name = List.find (fun (s : Obs.span) -> s.Obs.name = name) tr.Obs.spans in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "outer is root" (-1) outer.Obs.parent;
  Alcotest.(check int) "inner under outer" outer.Obs.id inner.Obs.parent;
  Alcotest.(check (list (pair string string))) "args forced" [ ("k", "v") ] inner.Obs.args;
  Alcotest.(check bool) "durations set" true
    (List.for_all (fun (s : Obs.span) -> s.Obs.dur_ns >= 0) tr.Obs.spans)

let test_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  let forced = ref false in
  let v =
    Obs.span
      ~args:(fun () ->
        forced := true;
        [])
      "off" (fun () -> 3)
  in
  Alcotest.(check int) "value passes through" 3 v;
  Alcotest.(check bool) "args thunk never forced" false !forced;
  let tr = Obs.capture () in
  Alcotest.(check int) "no spans recorded" 0 (List.length tr.Obs.spans)

let test_exception_closes_span () =
  let (), tr =
    Obs.with_capture (fun () ->
        (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
        Obs.span "after" (fun () -> ()))
  in
  let find name = List.find (fun (s : Obs.span) -> s.Obs.name = name) tr.Obs.spans in
  Alcotest.(check bool) "boom recorded, closed" true ((find "boom").Obs.dur_ns >= 0);
  Alcotest.(check int) "stack not corrupted: after is a root" (-1) (find "after").Obs.parent

let test_annotate () =
  let (), tr =
    Obs.with_capture (fun () -> Obs.span "s" (fun () -> Obs.annotate [ ("note", "here") ]))
  in
  let s = List.hd tr.Obs.spans in
  Alcotest.(check bool) "annotation attached" true (List.mem_assoc "note" s.Obs.args)

let test_counters () =
  let c = Obs.Counter.make "test.gated" in
  Obs.reset ();
  Obs.disable ();
  Obs.Counter.add c 5;
  Alcotest.(check int) "gated add is a no-op when disabled" 0 (Obs.Counter.value c);
  Obs.Counter.add_always c 5;
  Alcotest.(check int) "add_always counts when disabled" 5 (Obs.Counter.value c);
  Obs.enable ();
  Obs.Counter.incr c;
  Obs.disable ();
  Alcotest.(check int) "gated add counts when enabled" 6 (Obs.Counter.value c);
  Alcotest.(check bool) "registered in snapshot" true
    (List.mem ("test.gated", 6) (Obs.Counter.snapshot ()));
  Alcotest.(check bool) "same name, same counter" true
    (Obs.Counter.value (Obs.Counter.make "test.gated") = 6);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c)

let test_with_capture_restores () =
  Obs.disable ();
  let (), _ = Obs.with_capture (fun () -> Alcotest.(check bool) "on inside" true (Obs.enabled ())) in
  Alcotest.(check bool) "off restored" false (Obs.enabled ());
  Obs.enable ();
  let (), _ = Obs.with_capture (fun () -> ()) in
  Alcotest.(check bool) "on restored" true (Obs.enabled ());
  Obs.disable ()

let test_totals () =
  let (), tr =
    Obs.with_capture (fun () ->
        Obs.span "a" (fun () -> ());
        Obs.span "b" (fun () -> ());
        Obs.span "a" (fun () -> ()))
  in
  match Obs.totals tr with
  | [ ("a", (2, sa)); ("b", (1, sb)) ] ->
      Alcotest.(check bool) "non-negative seconds" true (sa >= 0.0 && sb >= 0.0)
  | other ->
      Alcotest.failf "unexpected totals: %s"
        (String.concat "; " (List.map (fun (n, (c, _)) -> Printf.sprintf "%s/%d" n c) other))

let test_render_aggregates () =
  let (), tr =
    Obs.with_capture (fun () ->
        Obs.span "p" (fun () ->
            Obs.span "c" (fun () -> ());
            Obs.span "c" (fun () -> ())))
  in
  let r = Obs.render tr in
  Alcotest.(check bool) "sibling aggregation" true (contains ~sub:"c x2" r);
  Alcotest.(check bool) "times as ms" true (contains ~sub:" ms" r)

let test_chrome_json () =
  let (), tr =
    Obs.with_capture (fun () ->
        Obs.span "alpha" (fun () -> Obs.Counter.add (Obs.Counter.make "test.chrome") 3))
  in
  let j = Obs.to_chrome_json tr in
  List.iter
    (fun sub -> Alcotest.(check bool) sub true (contains ~sub j))
    [ "\"traceEvents\""; "\"ph\":\"X\""; "\"alpha\""; "\"ph\":\"C\""; "\"test.chrome\"" ];
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Task pool worker statistics                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_stats () =
  let pool = Task_pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      Obs.reset ();
      Obs.disable ();
      Task_pool.run_list pool (List.init 8 (fun _ () -> ignore (Sys.opaque_identity 1)));
      let sum f = Array.fold_left (fun a st -> a + f st) 0 (Task_pool.worker_stats pool) in
      Alcotest.(check int) "no counting while disabled" 0
        (sum (fun st -> st.Task_pool.tasks));
      Obs.enable ();
      Task_pool.run_list pool (List.init 8 (fun _ () -> ignore (Sys.opaque_identity 1)));
      Task_pool.parallel_for pool ~lo:0 ~hi:40 ~chunk:10 (fun _ _ -> ());
      Obs.disable ();
      Alcotest.(check int) "tasks counted while enabled" 12 (sum (fun st -> st.Task_pool.tasks));
      Alcotest.(check bool) "busy time accumulated" true
        (sum (fun st -> st.Task_pool.busy_ns) >= 0);
      Task_pool.reset_stats pool;
      Alcotest.(check int) "reset_stats" 0 (sum (fun st -> st.Task_pool.tasks));
      Obs.reset ())

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE goldens                                             *)
(* ------------------------------------------------------------------ *)

let table () =
  Table.create
    [
      ("g", Column.ints [| 1; 1; 2; 2; 1; 2 |]);
      ("x", Column.ints [| 3; 1; 2; 5; 4; 1 |]);
      ("s", Column.strings [| "a"; "b"; "a"; "c"; "b"; "a" |]);
    ]

let q1 =
  "select rank() over (partition by g order by x) as r, sum(x) over (partition by g order by x \
   rows between 1 preceding and current row) as s1, count(*) over (partition by g order by x, s) \
   as c from t"

let q2 =
  "select x + 1 as y, row_number() over (order by x desc) as rn from t where g = 1 order by rn \
   limit 2"

(* Masks wall times ("<float> ms" -> "# ms") and collapses the alignment
   padding (interior runs of spaces), keeping the indentation that carries
   the span tree structure. *)
let mask_report s =
  let mask_line line =
    let n = String.length line in
    let ind = ref 0 in
    while !ind < n && line.[!ind] = ' ' do
      incr ind
    done;
    let buf = Buffer.create n in
    Buffer.add_string buf (String.sub line 0 !ind);
    let is_num c = (c >= '0' && c <= '9') || c = '.' in
    let i = ref !ind in
    while !i < n do
      let c = line.[!i] in
      if is_num c then begin
        let j = ref !i in
        while !j < n && is_num line.[!j] do
          incr j
        done;
        if !j + 2 < n && line.[!j] = ' ' && line.[!j + 1] = 'm' && line.[!j + 2] = 's' then begin
          Buffer.add_string buf "# ms";
          i := !j + 3
        end
        else begin
          Buffer.add_string buf (String.sub line !i (!j - !i));
          i := !j
        end
      end
      else if c = ' ' then begin
        let j = ref !i in
        while !j < n && line.[!j] = ' ' do
          incr j
        done;
        Buffer.add_char buf ' ';
        i := !j
      end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    done;
    Buffer.contents buf
  in
  String.concat "\n" (List.map mask_line (String.split_on_char '\n' s))

let golden1 =
  {|from: t
select window: rank() over (partition by g order by x) as r
select window: sum(x) over (partition by g order by x rows between 1 preceding and current row) as s1
select window: count(*) over (partition by g order by x, s) as c
rows: 6
sql.query # ms
  sql.window # ms
    window_plan {rows=6, clauses=3} # ms
      partition_ids {by=g} # ms
      sort {order=x, s, kind=full, path=encoded, rows=6} # ms
        sort.runs {n=6, runs=1} # ms
      eval {order=x, s, partitions=2} # ms
        frame {order=x} x4 # ms
          build {kind=peers} x2 # ms
        item {name=r, func=rank} x2 # ms
          build {kind=encode} x2 # ms
            sort.runs {n=3, runs=1} x2 # ms
          build {kind=mst.rank} x2 # ms
        item {name=s1, func=sum} x2 # ms
          build {kind=remap} x2 # ms
          build {kind=segment_tree} x2 # ms
        frame {order=x, s} x2 # ms
          build {kind=peers} x2 # ms
        item {name=c, func=count(*)} x2 # ms
    materialize {columns=3} # ms
  sql.project {columns=3} # ms
counters
  cache.hit 2
  cache.miss 12
  plan.full_sorts 1
  plan.partition_passes 1
  plan.reused_sorts 2
  plan.stages 1
  pool.busy_ns # ms
  pool.tasks 11
|}

let golden2 =
  {|from: t
where: (g = 1)
select expr: (x + 1) as y
select window: row_number() over (order by x desc) as rn
order by: rn
limit: 2
rows: 2
sql.query # ms
  sql.where {in=6, out=3} # ms
  sql.window # ms
    window_plan {rows=3, clauses=1} # ms
      partition_ids {by=} # ms
      sort {order=x desc, kind=full, path=encoded, rows=3} # ms
        sort.runs {n=3, runs=1} # ms
      eval {order=x desc, partitions=1} # ms
        frame {order=x desc} # ms
          build {kind=peers} # ms
        item {name=rn, func=row_number} # ms
          build {kind=encode} # ms
          build {kind=mst.row} # ms
    materialize {columns=1} # ms
  sql.project {columns=2} # ms
  sql.order_by {rows=3} # ms
    sort.runs {n=3, runs=1} # ms
counters
  cache.miss 3
  plan.full_sorts 1
  plan.partition_passes 1
  plan.stages 1
  pool.busy_ns # ms
  pool.tasks 4
|}

let golden_case query golden () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let _, report = Sql.explain_analyze ~pool ~tables:[ ("t", table ()) ] query in
      Alcotest.(check string) "masked report" golden (mask_report report))

(* With tracing disabled, EXPLAIN ANALYZE and a plain query agree cell for
   cell, and explain_analyze leaves tracing in the state it found it. *)
let test_disabled_parity () =
  Obs.disable ();
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      List.iter
        (fun q ->
          let plain = Sql.query ~pool ~tables:[ ("t", table ()) ] q in
          let traced, _ = Sql.explain_analyze ~pool ~tables:[ ("t", table ()) ] q in
          Alcotest.(check bool) "tracing left disabled" false (Obs.enabled ());
          Alcotest.(check (list string)) "columns"
            (Table.column_names plain) (Table.column_names traced);
          List.iter
            (fun name ->
              let cp = Table.column plain name and ct = Table.column traced name in
              for r = 0 to Table.nrows plain - 1 do
                if not (Value.equal (Column.get cp r) (Column.get ct r)) then
                  Alcotest.failf "query %s: row %d col %s differs" q r name
              done)
            (Table.column_names plain))
        [ q1; q2 ])

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "monotonic clock" `Quick test_now_ns;
          Alcotest.test_case "span nesting and args" `Quick test_span_nesting;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "exception closes span" `Quick test_exception_closes_span;
          Alcotest.test_case "annotate" `Quick test_annotate;
          Alcotest.test_case "counters: gating, registry, reset" `Quick test_counters;
          Alcotest.test_case "with_capture restores state" `Quick test_with_capture_restores;
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "render aggregates siblings" `Quick test_render_aggregates;
          Alcotest.test_case "chrome trace json" `Quick test_chrome_json;
        ] );
      ("pool", [ Alcotest.test_case "worker statistics" `Quick test_pool_stats ]);
      ( "explain-analyze",
        [
          Alcotest.test_case "golden: multi-OVER sharing" `Quick (golden_case q1 golden1);
          Alcotest.test_case "golden: where/project/order by" `Quick (golden_case q2 golden2);
          Alcotest.test_case "disabled-tracing parity" `Quick test_disabled_parity;
        ] );
    ]
