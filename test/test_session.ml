(* The persistent structure store ({!Holistic_window.Session}): directed
   maintenance/reuse checks and a differential insert/evict fuzz.

   Each fuzz case opens a session over a random table and drives it with a
   random script of appends (in-order and interleaving, NaN / signed-zero /
   NULL columns included), predicate and prefix evictions, and queries.
   Every query's result is checked {e bit-identically} against a
   from-scratch [Window_plan.run] over the session's current table — the
   store's contract is that maintained structures are indistinguishable
   from rebuilt ones.

   Reproducible like test_fuzz: FUZZ_SEED / FUZZ_CASES override the
   defaults and every failure message carries both. *)

open Holistic_storage
open Holistic_window
module Wf = Window_func
module Ws = Window_spec
module Rng = Holistic_util.Rng
module Bitset = Holistic_util.Bitset
module Task_pool = Holistic_parallel.Task_pool

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_nulls rng n =
  if Rng.bool rng then None
  else begin
    let b = Bitset.create n in
    let any = ref false in
    for i = 0 to n - 1 do
      if Rng.int rng 100 < 18 then begin
        Bitset.set b i;
        any := true
      end
    done;
    if !any then Some b else None
  end

(* Floats include NaN and signed zero: maintained sorts and rank encodings
   must place them exactly where a fresh sort would. *)
let gen_float rng =
  match Rng.int rng 14 with
  | 0 -> Float.nan
  | 1 -> -0.0
  | _ -> float_of_int (Rng.int_in rng (-4) 7) /. 2.0

let gen_rows rng n =
  let ints lo hi = Array.init n (fun _ -> Rng.int_in rng lo hi) in
  let pool = [| "a"; "b"; "c"; "dd"; "e" |] in
  let base_date = Value.date_of_ymd 2024 1 15 in
  Table.create
    [
      ("g", Column.ints (ints 0 3));
      ("k", Column.make ?nulls:(gen_nulls rng n) (Column.Ints (ints (-3) 8)));
      ( "f",
        Column.make ?nulls:(gen_nulls rng n) (Column.Floats (Array.init n (fun _ -> gen_float rng)))
      );
      ( "s",
        Column.make ?nulls:(gen_nulls rng n)
          (Column.Strings (Array.init n (fun _ -> pool.(Rng.int rng 5)))) );
      ( "d",
        Column.make ?nulls:(gen_nulls rng n)
          (Column.Dates (Array.init n (fun _ -> base_date + Rng.int rng 15))) );
    ]

let gen_table rng = gen_rows rng (1 + Rng.int rng 60)
let gen_delta rng = gen_rows rng (1 + Rng.int rng 25)

let order_cols = [| "g"; "k"; "f"; "s"; "d" |]

let gen_key rng =
  let expr =
    if Rng.int rng 6 = 0 then Expr.Add (Expr.Col "k", Expr.Const (Value.Int 1))
    else Expr.Col order_cols.(Rng.int rng (Array.length order_cols))
  in
  let direction = if Rng.bool rng then Sort_spec.Asc else Sort_spec.Desc in
  let nulls =
    match Rng.int rng 3 with
    | 0 -> Sort_spec.Nulls_default
    | 1 -> Sort_spec.Nulls_first
    | _ -> Sort_spec.Nulls_last
  in
  { Sort_spec.expr; direction; nulls }

let gen_offset rng =
  if Rng.int rng 4 = 0 then Expr.Col "g" else Expr.Const (Value.Int (Rng.int rng 4))

let gen_bound rng =
  match Rng.int rng 6 with
  | 0 -> Ws.Unbounded_preceding
  | 1 | 2 -> Ws.Preceding (gen_offset rng)
  | 3 -> Ws.Current_row
  | 4 -> Ws.Following (gen_offset rng)
  | _ -> Ws.Unbounded_following

let gen_exclusion rng =
  match Rng.int rng 4 with
  | 0 -> Ws.Exclude_no_others
  | 1 -> Ws.Exclude_current_row
  | 2 -> Ws.Exclude_group
  | _ -> Ws.Exclude_ties

let gen_frame rng =
  if Rng.int rng 4 = 0 then None
  else begin
    let exclusion = gen_exclusion rng in
    if Rng.bool rng then Some (Ws.rows_between ~exclusion (gen_bound rng) (gen_bound rng))
    else Some (Ws.groups_between ~exclusion (gen_bound rng) (gen_bound rng))
  end

let gen_filter rng =
  if Rng.int rng 10 < 3 then
    Some
      (match Rng.int rng 3 with
      | 0 -> Expr.Gt (Expr.Col "k", Expr.Const (Value.Int 2))
      | 1 -> Expr.Eq (Expr.Col "g", Expr.Const (Value.Int 1))
      | _ -> Expr.Is_not_null (Expr.Col "f"))
  else None

let num_cols = [| "g"; "k"; "f" |]
let any_col rng = Expr.Col order_cols.(Rng.int rng (Array.length order_cols))
let num_col rng = Expr.Col num_cols.(Rng.int rng (Array.length num_cols))

let gen_item rng ~name =
  let filter = gen_filter rng in
  let order = if Rng.bool rng then [] else [ gen_key rng ] in
  match Rng.int rng 12 with
  | 0 -> Wf.count_star ?filter ~name ()
  | 1 -> Wf.count ?filter ~distinct:true ~name (any_col rng)
  | 2 -> Wf.sum ?filter ~distinct:(Rng.bool rng) ~name (num_col rng)
  | 3 -> Wf.min_ ?filter ~name (any_col rng)
  | 4 -> Wf.max_ ?filter ~name (any_col rng)
  | 5 -> Wf.mode ?filter ~name (any_col rng)
  | 6 -> Wf.rank ?filter ~name order
  | 7 -> Wf.dense_rank ?filter ~name order
  | 8 -> Wf.percent_rank ?filter ~name order
  | 9 ->
      let p = [| 0.0; 0.25; 0.5; 0.9; 1.0 |].(Rng.int rng 5) in
      if Rng.bool rng then Wf.percentile_disc ?filter ~name p [ gen_key rng ]
      else Wf.percentile_cont ?filter ~name p [ gen_key rng ]
  | 10 -> Wf.first_value ?filter ~order ~name (any_col rng)
  | _ -> Wf.ntile ?filter ~name (1 + Rng.int rng 4) order

let partition_pool = [| []; [ Expr.Col "g" ]; [ Expr.Col "s" ]; [ Expr.Col "g"; Expr.Col "k" ] |]

let gen_clauses rng =
  let nclauses = 1 + Rng.int rng 3 in
  let names = ref 0 in
  List.init nclauses (fun _ ->
      let partition_by = partition_pool.(Rng.int rng (Array.length partition_pool)) in
      let order_by =
        match Rng.int rng 4 with 0 -> [] | 1 | 2 -> [ gen_key rng ] | _ -> [ gen_key rng; gen_key rng ]
      in
      let spec = { Ws.partition_by; order_by; frame = gen_frame rng } in
      let items =
        List.init (1 + Rng.int rng 2) (fun _ ->
            let name = Printf.sprintf "w%d" !names in
            incr names;
            gen_item rng ~name)
      in
      { Window_plan.spec; items })

let gen_evict_pred rng table =
  let e =
    match Rng.int rng 4 with
    | 0 -> Expr.Lt (Expr.Col "k", Expr.Const (Value.Int (Rng.int_in rng (-3) 8)))
    | 1 -> Expr.Gt (Expr.Col "f", Expr.Const (Value.Float (gen_float rng)))
    | 2 -> Expr.Eq (Expr.Col "g", Expr.Const (Value.Int (Rng.int rng 4)))
    | _ -> Expr.Is_null (Expr.Col "s")
  in
  let f = Expr.compile table e in
  fun row -> Expr.to_bool (f row)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

(* Bit-level equality: a maintained structure may not perturb results even
   in the last ulp, NaN payloads and signed zeros included. *)
let value_identical a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> compare a b = 0

let check_identical ~ctx expected actual =
  List.iter
    (fun (name, c0) ->
      let c = Table.column actual name in
      for r = 0 to Table.nrows expected - 1 do
        let v0 = Column.get c0 r and v = Column.get c r in
        if not (value_identical v0 v) then
          Alcotest.failf "%s: row %d col %s: rebuild %s, session %s" (ctx ()) r name
            (Value.to_string v0) (Value.to_string v)
      done)
    (Table.columns expected)

(* ------------------------------------------------------------------ *)
(* Fuzz driver                                                         *)
(* ------------------------------------------------------------------ *)

let bound_to_string = function
  | Ws.Unbounded_preceding -> "unbounded preceding"
  | Ws.Preceding e -> Expr.to_string e ^ " preceding"
  | Ws.Current_row -> "current row"
  | Ws.Following e -> Expr.to_string e ^ " following"
  | Ws.Unbounded_following -> "unbounded following"

let frame_to_string = function
  | None -> "<default>"
  | Some (f : Ws.frame) ->
      Printf.sprintf "%s between %s and %s%s"
        (match f.mode with Ws.Rows -> "rows" | Ws.Range -> "range" | Ws.Groups -> "groups")
        (bound_to_string f.start_bound) (bound_to_string f.end_bound)
        (match f.exclusion with
        | Ws.Exclude_no_others -> ""
        | Ws.Exclude_current_row -> " exclude current row"
        | Ws.Exclude_group -> " exclude group"
        | Ws.Exclude_ties -> " exclude ties")

let clause_to_string (c : Window_plan.clause) =
  Printf.sprintf "over (partition by [%s] order by [%s] frame %s) items [%s]"
    (String.concat "; " (List.map Expr.to_string c.spec.Ws.partition_by))
    (Sort_spec.to_string c.spec.Ws.order_by)
    (frame_to_string c.spec.Ws.frame)
    (String.concat "; "
       (List.map
          (fun (it : Wf.t) ->
            Printf.sprintf "%s=%s%s" it.Wf.name (Wf.class_name it)
              (match it.Wf.filter with None -> "" | Some e -> " filter " ^ Expr.to_string e))
          c.items))

let table_to_string table =
  let buf = Buffer.create 256 in
  for r = 0 to Table.nrows table - 1 do
    Buffer.add_string buf (Printf.sprintf "  %2d:" r);
    List.iter
      (fun (name, c) ->
        Buffer.add_string buf (Printf.sprintf " %s=%s" name (Value.to_string (Column.get c r))))
      (Table.columns table);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let run_case ~pool rng idx ~seed =
  let rng = Rng.split rng in
  let session = Session.create ~pool (gen_table rng) in
  (* a small pool of recurring query shapes, so re-queries hit cached
     structures and outputs instead of always populating fresh entries *)
  let shapes = Array.init (1 + Rng.int rng 2) (fun _ -> gen_clauses rng) in
  let ops = ref [] in
  let trace () =
    Printf.sprintf "FUZZ_SEED=%d case %d after [%s]" seed idx
      (String.concat "; " (List.rev !ops))
  in
  let query () =
    let clauses = shapes.(Rng.int rng (Array.length shapes)) in
    let table = Session.table session in
    let ctx () =
      Printf.sprintf "%s\n%s\n%s" (trace ())
        (String.concat "\n" (List.map clause_to_string clauses))
        (table_to_string table)
    in
    let actual =
      try Window_plan.run ~pool ~session table clauses
      with e -> Alcotest.failf "%s: session run raised %s" (ctx ()) (Printexc.to_string e)
    in
    let expected = Window_plan.run ~pool table clauses in
    check_identical ~ctx expected actual
  in
  let nops = 3 + Rng.int rng 6 in
  for _ = 1 to nops do
    match Rng.int rng 5 with
    | 0 ->
        let delta = gen_delta rng in
        ops := Printf.sprintf "append %d" (Table.nrows delta) :: !ops;
        Session.append_rows session delta
    | 1 ->
        let table = Session.table session in
        if Rng.bool rng then begin
          let k = Rng.int rng (Table.nrows table + 1) in
          ops := Printf.sprintf "evict_prefix %d" k :: !ops;
          Session.evict_prefix session k
        end
        else begin
          ops := "evict_where" :: !ops;
          Session.evict_where session (gen_evict_pred rng table)
        end
    | _ ->
        ops := "query" :: !ops;
        query ()
  done;
  (* always finish on a query so every mutation run gets checked *)
  ops := "query" :: !ops;
  query ()

let test_fuzz () =
  let seed = env_int "FUZZ_SEED" 20240809 in
  let cases = env_int "FUZZ_CASES" 350 in
  let domains = env_int "HOLIWIN_DOMAINS" 1 in
  let pool = Task_pool.create domains in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create seed in
      let only = env_int "FUZZ_ONLY" (-1) in
      for idx = 0 to cases - 1 do
        if only >= 0 && idx <> only then ignore (Rng.split rng)
        else run_case ~pool rng idx ~seed
      done)

(* ------------------------------------------------------------------ *)
(* Directed maintenance and reuse checks                               *)
(* ------------------------------------------------------------------ *)

let directed_table n =
  Table.create
    [
      ("g", Column.ints (Array.init n (fun i -> i mod 8)));
      ("k", Column.ints (Array.init n (fun i -> i)));
      ("v", Column.floats (Array.init n (fun i -> float_of_int (i * 7 mod 101))));
    ]

let directed_delta ~base n =
  Table.create
    [
      ("g", Column.ints (Array.init n (fun i -> i mod 8)));
      ("k", Column.ints (Array.init n (fun i -> base + i)));
      ("v", Column.floats (Array.init n (fun i -> float_of_int ((i * 13) mod 89))));
    ]

let directed_clauses =
  let spec =
    {
      Ws.partition_by = [ Expr.Col "g" ];
      order_by = [ Sort_spec.asc (Expr.Col "k") ];
      frame = Some (Ws.rows_between (Ws.preceding 20) Ws.Current_row);
    }
  in
  [
    {
      Window_plan.spec;
      items =
        [
          Wf.rank ~name:"r" [];
          Wf.percentile_disc ~name:"med" 0.5 [ Sort_spec.asc (Expr.Col "v") ];
          Wf.count ~distinct:true ~name:"dc" (Expr.Col "v");
        ];
    };
  ]

(* An in-order append (every new ORDER BY key sorts after the existing
   partition rows) must maintain, not rebuild: the sort is served by the
   session (no full sort), rank encodings extend, MSTs run-stack. *)
let test_extend_append () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let session = Session.create ~pool (directed_table 2048) in
      let _, s1 =
        Window_plan.run_with_stats ~pool ~session (Session.table session) directed_clauses
      in
      Alcotest.(check int) "first run sorts from scratch" 1 s1.Window_plan.full_sorts;
      Session.append_rows session (directed_delta ~base:2048 256);
      let table = Session.table session in
      let actual, s2 = Window_plan.run_with_stats ~pool ~session table directed_clauses in
      Alcotest.(check int) "sort served by the session" 1 s2.Window_plan.session_sorts;
      Alcotest.(check int) "no full re-sort" 0 s2.Window_plan.full_sorts;
      let c = Session.counters session in
      Alcotest.(check bool) "structures were maintained" true
        (Atomic.get c.Build_cache.maintained > 0);
      check_identical
        ~ctx:(fun () -> "extend_append")
        (Window_plan.run ~pool table directed_clauses)
        actual)

(* An unchanged table serves the whole second run from the store: sorts,
   structures and per-item outputs, with zero new builds. *)
let test_output_reuse () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let session = Session.create ~pool (directed_table 1024) in
      let table = Session.table session in
      let r1, _ = Window_plan.run_with_stats ~pool ~session table directed_clauses in
      let r2, s2 = Window_plan.run_with_stats ~pool ~session table directed_clauses in
      Alcotest.(check int) "no encodes built" 0 s2.Window_plan.encode_builds;
      Alcotest.(check int) "no trees built" 0 s2.Window_plan.tree_builds;
      Alcotest.(check int) "sort reused" 1 s2.Window_plan.session_sorts;
      check_identical ~ctx:(fun () -> "output_reuse") r1 r2)

(* Bulk prefix eviction compacts the cached state without re-sorting;
   queries after it stay bit-identical to a rebuild. *)
let test_evict () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let session = Session.create ~pool (directed_table 2048) in
      ignore (Window_plan.run ~pool ~session (Session.table session) directed_clauses);
      Session.evict_prefix session 512;
      Alcotest.(check int) "rows evicted" (2048 - 512) (Table.nrows (Session.table session));
      Alcotest.(check int) "epoch advanced" 1 (Session.epoch session);
      let table = Session.table session in
      let actual, s =
        Window_plan.run_with_stats ~pool ~session table directed_clauses
      in
      Alcotest.(check int) "sort survives the eviction" 1 s.Window_plan.session_sorts;
      check_identical
        ~ctx:(fun () -> "evict")
        (Window_plan.run ~pool table directed_clauses)
        actual;
      (* evict everything: the store must survive an empty table *)
      Session.evict_where session (fun _ -> true);
      Alcotest.(check int) "empty" 0 (Table.nrows (Session.table session));
      ignore (Window_plan.run ~pool ~session (Session.table session) directed_clauses))

(* A session passed alongside a table it does not own must stay inert:
   stateless execution, no session stats, no state mutation. *)
let test_foreign_table () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let session = Session.create ~pool (directed_table 64) in
      let other = directed_table 128 in
      let r, s = Window_plan.run_with_stats ~pool ~session other directed_clauses in
      Alcotest.(check int) "no session sorts" 0 s.Window_plan.session_sorts;
      Alcotest.(check int) "session untouched" 0 (Session.epoch session);
      check_identical
        ~ctx:(fun () -> "foreign_table")
        (Window_plan.run ~pool other directed_clauses)
        r)

(* The SQL front door: session_query / session_append / session_evict with
   predicates in SQL text, and EXPLAIN ANALYZE provenance tags. *)
let test_sql_session () =
  let module Sql = Holistic_sql.Sql in
  let session = Sql.session_create (directed_table 512) in
  let q =
    "select g, k, rank() over w as r, median(v) over w as m from t \
     window w as (partition by g order by k rows between 20 preceding and current row)"
  in
  let oracle () = Sql.query ~tables:[ ("t", Sql.session_table session) ] q in
  check_identical ~ctx:(fun () -> "sql first") (oracle ()) (Sql.session_query session q);
  Sql.session_append session (directed_delta ~base:512 64);
  Alcotest.(check int) "rows appended" 576 (Table.nrows (Sql.session_table session));
  check_identical ~ctx:(fun () -> "sql after append") (oracle ()) (Sql.session_query session q);
  let _, report = Sql.session_explain_analyze session q in
  let contains sub =
    let n = String.length report and m = String.length sub in
    let rec go i = i + m <= n && (String.sub report i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "provenance tag rendered" true
    (contains "cache=reused" || contains "cache=maintained");
  Sql.session_evict session "k < 100";
  Alcotest.(check int) "rows evicted" 476 (Table.nrows (Sql.session_table session));
  check_identical ~ctx:(fun () -> "sql after evict") (oracle ()) (Sql.session_query session q);
  Alcotest.check_raises "malformed predicate"
    (Sql.Semantic_error "unknown column \"nope\"")
    (fun () -> Sql.session_evict session "nope < 1")

let () =
  Alcotest.run "session"
    [
      ( "directed",
        [
          Alcotest.test_case "in-order append maintains" `Quick test_extend_append;
          Alcotest.test_case "unchanged table reuses outputs" `Quick test_output_reuse;
          Alcotest.test_case "bulk eviction compacts" `Quick test_evict;
          Alcotest.test_case "foreign table stays stateless" `Quick test_foreign_table;
          Alcotest.test_case "sql session front door" `Quick test_sql_session;
        ] );
      ( "fuzz",
        [ Alcotest.test_case "insert/evict scripts vs rebuild" `Slow test_fuzz ] );
    ]
