(* Out-of-core execution: run-file format and fault injection, the memory
   governor's budget arithmetic, spilled sorts vs the in-memory sorter,
   streamed MST construction vs the in-memory build, and the governed
   no-op path's golden equivalence.

   The run-file fault hooks (ENOSPC, short write, checksum corruption) are
   process-wide; every test that arms one resets it in a finally. *)

open Holistic_storage
open Holistic_window
module Rng = Holistic_util.Rng
module Task_pool = Holistic_parallel.Task_pool
module Parallel_sort = Holistic_sort.Parallel_sort
module Multiway = Holistic_sort.Multiway
module Mstw = Holistic_core.Mst_width
module Mst = Holistic_core.Mst
module Sql = Holistic_sql.Sql

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let with_tmp_dir f =
  let dir = Filename.temp_dir "holiwin_test_spill" "" in
  Fun.protect
    ~finally:(fun () ->
      (try Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let dir_entries dir = Array.length (Sys.readdir dir)

let with_faults_reset f = Fun.protect ~finally:Run_file.Fault.reset f

(* ------------------------------------------------------------------ *)
(* Run files                                                           *)
(* ------------------------------------------------------------------ *)

let gen_entries rng ~n ~nwords =
  Array.init n (fun _ ->
      (Array.init nwords (fun _ -> Rng.int_in rng (-1000) 1000), Rng.int rng 1_000_000))

let write_run dir ~nwords entries =
  let w = Run_file.create ~dir ~nwords in
  Array.iter (fun (key, payload) -> Run_file.append w ~key ~koff:0 ~payload) entries;
  Run_file.finish w

let read_all t =
  let nwords = Run_file.nwords t in
  let stride = nwords + 1 in
  let r = Run_file.open_reader t in
  Fun.protect
    ~finally:(fun () -> Run_file.close_reader r)
    (fun () ->
      let buf = Array.make (7 * stride) 0 in
      let out = ref [] in
      let rec loop () =
        let k = Run_file.read r ~buf in
        if k > 0 then begin
          for i = 0 to k - 1 do
            out :=
              (Array.sub buf (i * stride) nwords, buf.((i * stride) + nwords)) :: !out
          done;
          loop ()
        end
      in
      loop ();
      Array.of_list (List.rev !out))

let test_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let rng = Rng.create 42 in
  List.iter
    (fun (n, nwords) ->
      let entries = gen_entries rng ~n ~nwords in
      let t = write_run dir ~nwords entries in
      Alcotest.(check int) "entries" n (Run_file.entries t);
      Alcotest.(check int) "nwords" nwords (Run_file.nwords t);
      Alcotest.(check int) "bytes" (32 + (n * (nwords + 1) * 8)) (Run_file.bytes t);
      let got = read_all t in
      Alcotest.(check int) "read count" n (Array.length got);
      Array.iteri
        (fun i (key, payload) ->
          let gkey, gpayload = got.(i) in
          Alcotest.(check (array int)) "key words" key gkey;
          Alcotest.(check int) "payload" payload gpayload)
        entries;
      Run_file.remove t)
    [ (0, 1); (1, 1); (5, 3); (1000, 2); (10_000, 1) ];
  Alcotest.(check int) "dir empty after removes" 0 (dir_entries dir)

let test_reader_validation () =
  with_tmp_dir @@ fun dir ->
  let rng = Rng.create 7 in
  (* truncation: chop the last 8 bytes off a finished file *)
  let t = write_run dir ~nwords:2 (gen_entries rng ~n:50 ~nwords:2) in
  let truncate_by path bytes =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let content = really_input_string ic (len - bytes) in
    close_in ic;
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  truncate_by (Run_file.path t) 8;
  (match read_all t with
  | exception Run_file.Error msg ->
      Alcotest.(check bool) "names truncation" true (contains "truncated" msg)
  | _ -> Alcotest.fail "reader accepted a truncated file");
  Run_file.remove t;
  (* bad magic, size intact *)
  let t = write_run dir ~nwords:1 (gen_entries rng ~n:3 ~nwords:1) in
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o600 (Run_file.path t) in
  output_string oc "XX";
  close_out oc;
  (match read_all t with
  | exception Run_file.Error msg ->
      Alcotest.(check bool) "names the magic" true (contains "magic" msg)
  | _ -> Alcotest.fail "reader accepted a corrupt magic");
  Run_file.remove t;
  (* undersized read buffer *)
  let t = write_run dir ~nwords:3 (gen_entries rng ~n:4 ~nwords:3) in
  let r = Run_file.open_reader t in
  (match Run_file.read r ~buf:(Array.make 3 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "read accepted a buffer smaller than one entry");
  Run_file.close_reader r;
  Run_file.remove t;
  Alcotest.(check int) "dir empty" 0 (dir_entries dir)

let test_fault_enospc () =
  with_faults_reset @@ fun () ->
  with_tmp_dir @@ fun dir ->
  let rng = Rng.create 11 in
  Run_file.Fault.enospc_after 0;
  let w = Run_file.create ~dir ~nwords:1 in
  let entries = gen_entries rng ~n:10 ~nwords:1 in
  (match
     Array.iter (fun (key, payload) -> Run_file.append w ~key ~koff:0 ~payload) entries;
     Run_file.finish w
   with
  | exception Run_file.Error msg ->
      Alcotest.(check bool) "mentions no space" true (contains "No space left" msg)
  | _ -> Alcotest.fail "writer survived injected ENOSPC");
  Run_file.Fault.reset ();
  Run_file.abort w;
  (* abort after a failed finish must still delete the temp file *)
  Alcotest.(check int) "no files left after abort" 0 (dir_entries dir)

let test_fault_short_write () =
  with_faults_reset @@ fun () ->
  with_tmp_dir @@ fun dir ->
  let rng = Rng.create 13 in
  Run_file.Fault.short_write ();
  let t = write_run dir ~nwords:2 (gen_entries rng ~n:100 ~nwords:2) in
  (* the lost tail is invisible to the writer: only the reader's size
     validation catches it *)
  (match read_all t with
  | exception Run_file.Error msg ->
      Alcotest.(check bool) "names truncation" true (contains "truncated" msg)
  | _ -> Alcotest.fail "reader accepted a short-written file");
  Run_file.remove t;
  Alcotest.(check int) "no files left" 0 (dir_entries dir)

let test_fault_checksum () =
  with_faults_reset @@ fun () ->
  with_tmp_dir @@ fun dir ->
  let rng = Rng.create 17 in
  Run_file.Fault.flip_checksum ();
  let t = write_run dir ~nwords:1 (gen_entries rng ~n:200 ~nwords:1) in
  (* size and header are plausible: only draining the file catches it *)
  (match read_all t with
  | exception Run_file.Error msg ->
      Alcotest.(check bool) "names the checksum" true (contains "checksum" msg)
  | _ -> Alcotest.fail "reader accepted a corrupted checksum");
  Run_file.remove t

(* ------------------------------------------------------------------ *)
(* Spilled sort vs the in-memory sorter                                *)
(* ------------------------------------------------------------------ *)

let gen_words rng ~n ~nwords ~dup =
  Array.init nwords (fun _ -> Array.init n (fun _ -> Rng.int rng dup))

let test_sort_spill_identity () =
  with_tmp_dir @@ fun dir ->
  let pool = Task_pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create 23 in
      List.iter
        (fun (n, nwords, dup, run_rows, read_entries) ->
          let words = gen_words rng ~n ~nwords ~dup in
          let perm_mem, key0_mem = Parallel_sort.sort_encoded pool ~n ~words () in
          let streamed = ref [] in
          let perm_spill, nruns, bytes =
            Parallel_sort.sort_encoded_spill ~n ~words ~run_rows ~read_entries ~dir
              ~on_key0:(fun rank k0 -> streamed := (rank, k0) :: !streamed)
              ()
          in
          Alcotest.(check (array int))
            (Printf.sprintf "perm identical (n=%d w=%d rr=%d)" n nwords run_rows)
            perm_mem perm_spill;
          let expected_runs = if n = 0 then 0 else ((n - 1) / min run_rows n) + 1 in
          Alcotest.(check int) "run count" expected_runs nruns;
          if n > 0 then
            Alcotest.(check bool) "bytes written" true (bytes >= n * (nwords + 1) * 8);
          List.iter
            (fun (rank, k0) ->
              Alcotest.(check int)
                (Printf.sprintf "streamed key0 at %d" rank)
                key0_mem.(rank) k0)
            !streamed;
          Alcotest.(check int) "one key0 per row" n (List.length !streamed);
          Alcotest.(check int) "spill files deleted" 0 (dir_entries dir))
        [
          (0, 1, 5, 4, 16);
          (1, 1, 5, 4, 16);
          (100, 1, 7, 9, 16);
          (1000, 2, 20, 64, 16);
          (1000, 3, 3, 128, 32);
          (5000, 1, 100, 333, 64);
          (5000, 2, 2, 1024, 256);
        ])

let test_sort_spill_tie () =
  (* residual comparator: sort by one coarse word, tie-break by a side
     array descending — both paths must agree including the tie order *)
  with_tmp_dir @@ fun dir ->
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create 29 in
      let n = 2000 in
      let words = gen_words rng ~n ~nwords:1 ~dup:4 in
      let side = Array.init n (fun _ -> Rng.int rng 10) in
      let tie a b = compare side.(b) side.(a) in
      let perm_mem, _ = Parallel_sort.sort_encoded pool ~n ~words ~tie () in
      let perm_spill, _, _ =
        Parallel_sort.sort_encoded_spill ~n ~words ~tie ~run_rows:171 ~read_entries:16 ~dir ()
      in
      Alcotest.(check (array int)) "tie order identical" perm_mem perm_spill)

let test_sort_spill_fault_cleanup () =
  (* an IO failure mid-spill must clean every temp file up and surface as
     Run_file.Error *)
  with_faults_reset @@ fun () ->
  with_tmp_dir @@ fun dir ->
  let rng = Rng.create 31 in
  let n = 2000 in
  let words = gen_words rng ~n ~nwords:2 ~dup:50 in
  Run_file.Fault.enospc_after 2;
  (match Parallel_sort.sort_encoded_spill ~n ~words ~run_rows:100 ~read_entries:16 ~dir () with
  | exception Run_file.Error _ -> ()
  | _ -> Alcotest.fail "spilled sort survived injected ENOSPC");
  Alcotest.(check int) "no spill files left after failure" 0 (dir_entries dir);
  Run_file.Fault.reset ();
  (* corruption detected at merge time cleans up too *)
  Run_file.Fault.flip_checksum ();
  (match Parallel_sort.sort_encoded_spill ~n ~words ~run_rows:500 ~read_entries:16 ~dir () with
  | exception Run_file.Error _ -> ()
  | _ -> Alcotest.fail "spilled sort survived a corrupted run");
  Alcotest.(check int) "no spill files left after corruption" 0 (dir_entries dir)

let test_merge_sources_mixed () =
  (* one disk-backed source, one in-memory source, merged by the OVC
     loser tree: the output must be the fully sorted union *)
  with_tmp_dir @@ fun dir ->
  let rng = Rng.create 37 in
  let nwords = 2 in
  let gen_sorted n =
    let rows = Array.init n (fun i -> (Rng.int rng 50, Rng.int rng 50, i)) in
    Array.sort compare rows;
    rows
  in
  let a = gen_sorted 400 and b = gen_sorted 300 in
  (* a goes to disk *)
  let w = Run_file.create ~dir ~nwords in
  Array.iter (fun (w0, w1, p) -> Run_file.append w ~key:[| w0; w1 |] ~koff:0 ~payload:p) a;
  let t = Run_file.finish w in
  let rd = Run_file.open_reader t in
  let disk =
    Multiway.make_source ~nwords ~buf_entries:16
      ~refill:(fun buf -> Run_file.read rd ~buf)
      ~close:(fun () -> Run_file.close_reader rd)
  in
  (* b stays in memory, streamed in small chunks *)
  let pos = ref 0 in
  let mem =
    Multiway.make_source ~nwords ~buf_entries:7
      ~close:(fun () -> ())
      ~refill:(fun buf ->
        let stride = nwords + 1 in
        let k = min (Array.length buf / stride) (Array.length b - !pos) in
        for i = 0 to k - 1 do
          let w0, w1, p = b.(!pos + i) in
          buf.(i * stride) <- w0;
          buf.((i * stride) + 1) <- w1;
          buf.((i * stride) + 2) <- p
        done;
        pos := !pos + k;
        k)
  in
  let out = ref [] in
  Multiway.merge_sources ~sources:[| disk; mem |]
    ~emit:(fun k0 payload -> out := (k0, payload) :: !out)
    ();
  Multiway.source_close disk;
  Multiway.source_close mem;
  Run_file.remove t;
  let got = Array.of_list (List.rev !out) in
  let all = Array.append a b in
  Array.sort compare all;
  Alcotest.(check int) "entry count" (Array.length all) (Array.length got);
  Array.iteri
    (fun i (w0, _, p) ->
      let gk0, gp = got.(i) in
      Alcotest.(check int) (Printf.sprintf "key0 at %d" i) w0 gk0;
      Alcotest.(check int) (Printf.sprintf "payload at %d" i) p gp)
    all

(* ------------------------------------------------------------------ *)
(* Governor units                                                      *)
(* ------------------------------------------------------------------ *)

let test_governor_accounting () =
  let g = Mem_governor.create ~budget:1000 () in
  Alcotest.(check (option int)) "budget" (Some 1000) (Mem_governor.budget g);
  Alcotest.(check int) "live 0" 0 (Mem_governor.live g);
  Mem_governor.charge g 300;
  Mem_governor.charge g 500;
  Alcotest.(check int) "live 800" 800 (Mem_governor.live g);
  Alcotest.(check int) "peak 800" 800 (Mem_governor.peak g);
  Mem_governor.release g 500;
  Alcotest.(check int) "live 300" 300 (Mem_governor.live g);
  Alcotest.(check int) "peak sticks" 800 (Mem_governor.peak g);
  Mem_governor.charge g 100;
  Alcotest.(check int) "peak unmoved below" 800 (Mem_governor.peak g);
  Mem_governor.note_spill g ~runs:3 ~bytes:4096;
  Alcotest.(check (option (pair int int)))
    "last spill" (Some (3, 4096))
    (Mem_governor.take_last_spill g);
  Alcotest.(check (option (pair int int))) "taken" None (Mem_governor.take_last_spill g);
  Mem_governor.note_spill g ~runs:2 ~bytes:1000;
  Alcotest.(check (pair int int)) "totals accumulate" (5, 5096) (Mem_governor.totals g)

let test_governor_plan_sort () =
  (* no budget, Auto: never spills *)
  let g = Mem_governor.create () in
  (match Mem_governor.plan_sort g ~n:1_000_000 ~nwords:4 ~multi_run:true with
  | Mem_governor.Sort_in_memory -> ()
  | Mem_governor.Sort_spill _ -> Alcotest.fail "budget-less Auto governor spilled");
  (* Always_spill: spills even trivially small sorts, with >= 2 runs *)
  let g = Mem_governor.create ~policy:Mem_governor.Always_spill () in
  (match Mem_governor.plan_sort g ~n:10 ~nwords:1 ~multi_run:false with
  | Mem_governor.Sort_spill { run_rows; read_entries } ->
      Alcotest.(check bool) "multiple runs" true (run_rows < 10);
      Alcotest.(check bool) "buffers sized" true (read_entries >= 1)
  | Mem_governor.Sort_in_memory -> Alcotest.fail "Always_spill stayed in memory");
  (* Auto with a budget: in-memory while it fits, spill when it does not *)
  let n = 10_000 in
  let fits = Mem_governor.create ~budget:(16 * n * 10) () in
  Mem_governor.charge fits (8 * n);
  (match Mem_governor.plan_sort fits ~n ~nwords:1 ~multi_run:false with
  | Mem_governor.Sort_in_memory -> ()
  | Mem_governor.Sort_spill _ -> Alcotest.fail "roomy budget spilled");
  let tight = Mem_governor.create ~budget:(12 * n) () in
  Mem_governor.charge tight (8 * n) (* the key words *);
  (match Mem_governor.plan_sort tight ~n ~nwords:1 ~multi_run:false with
  | Mem_governor.Sort_spill { run_rows; read_entries } ->
      (* formation chunks must fit the leftover budget at 24 B/row *)
      Alcotest.(check bool) "run_rows bounded" true
        (run_rows >= 16 && run_rows * 24 <= (12 * n) - (8 * n));
      Alcotest.(check bool) "read_entries bounded" true
        (read_entries >= 16 && read_entries <= 65536)
  | Mem_governor.Sort_in_memory -> Alcotest.fail "overcommitted budget stayed in memory");
  (* budget below the minimum spill working set: a clear error, not a hang *)
  let hopeless = Mem_governor.create ~budget:100 () in
  Mem_governor.charge hopeless 90;
  match Mem_governor.plan_sort hopeless ~n:100_000 ~nwords:1 ~multi_run:false with
  | exception Mem_governor.Budget_too_small msg ->
      Alcotest.(check bool) "message names the budget" true (contains "memory budget" msg)
  | _ -> Alcotest.fail "impossible budget produced a plan"

let test_governor_stream_builds () =
  let g = Mem_governor.create ~policy:Mem_governor.Always_spill () in
  Alcotest.(check bool) "always-spill streams" true (Mem_governor.stream_builds g ~bytes:8);
  let g = Mem_governor.create () in
  Alcotest.(check bool) "no budget never streams" false
    (Mem_governor.stream_builds g ~bytes:(1 lsl 40));
  let g = Mem_governor.create ~budget:1000 () in
  Mem_governor.charge g 600;
  Alcotest.(check bool) "fits in budget" false (Mem_governor.stream_builds g ~bytes:300);
  Alcotest.(check bool) "overruns budget" true (Mem_governor.stream_builds g ~bytes:500)

let test_governor_pick_spills () =
  let candidates = [ ("small", 10); ("big", 50); ("mid", 30) ] in
  Alcotest.(check (list string))
    "largest first" [ "big"; "mid" ]
    (Mem_governor.pick_spills ~candidates ~need:60);
  Alcotest.(check (list string))
    "one suffices" [ "big" ]
    (Mem_governor.pick_spills ~candidates ~need:5);
  Alcotest.(check (list string))
    "all if starved" [ "big"; "mid"; "small" ]
    (Mem_governor.pick_spills ~candidates ~need:1000);
  Alcotest.(check (list string)) "none for zero" [] (Mem_governor.pick_spills ~candidates ~need:0)

let test_governor_parse_limit () =
  let check_parse s expected_budget expected_policy =
    let budget, policy = Mem_governor.parse_limit s in
    Alcotest.(check (option int)) (s ^ " budget") expected_budget budget;
    Alcotest.(check bool) (s ^ " policy") true (policy = expected_policy)
  in
  check_parse "spill" None Mem_governor.Always_spill;
  check_parse "1024" (Some 1024) Mem_governor.Auto;
  check_parse "64K" (Some (64 * 1024)) Mem_governor.Auto;
  check_parse "64k" (Some (64 * 1024)) Mem_governor.Auto;
  check_parse "512M" (Some (512 * 1024 * 1024)) Mem_governor.Auto;
  check_parse "2G" (Some (2 * 1024 * 1024 * 1024)) Mem_governor.Auto;
  List.iter
    (fun bad ->
      match Mem_governor.parse_limit bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "parse_limit accepted %S" bad)
    [ ""; "abc"; "12Q"; "-5"; "0"; "K" ]

let test_governor_spill_dir () =
  let g = Mem_governor.create () in
  let dir = Mem_governor.spill_dir g in
  Alcotest.(check bool) "dir exists" true (Sys.is_directory dir);
  Alcotest.(check string) "dir stable" dir (Mem_governor.spill_dir g);
  let probe = Filename.concat dir "leftover" in
  let oc = open_out probe in
  output_string oc "x";
  close_out oc;
  Mem_governor.cleanup g;
  Alcotest.(check bool) "dir removed with contents" false (Sys.file_exists dir);
  Mem_governor.cleanup g (* idempotent *)

(* ------------------------------------------------------------------ *)
(* Streamed MST construction                                           *)
(* ------------------------------------------------------------------ *)

let fill_of a chunk ~pos ~len = Array.blit a pos chunk 0 len

let probe_equal ~msg rng t_mem t_str n =
  Alcotest.(check bool) (msg ^ ": width") true (Mstw.width t_mem = Mstw.width t_str);
  for _ = 1 to 200 do
    let lo = Rng.int rng (n + 1) in
    let hi = lo + Rng.int rng (n + 1 - lo) in
    let v = Rng.int rng (n + 2) in
    Alcotest.(check int)
      (Printf.sprintf "%s: count [%d,%d) < %d" msg lo hi v)
      (Mstw.count t_mem ~lo ~hi ~less_than:v)
      (Mstw.count t_str ~lo ~hi ~less_than:v);
    (* select/count_value_ranges take half-open *value* ranges *)
    let vlo = Rng.int rng (n + 2) in
    let vhi = vlo + Rng.int rng (n + 2 - vlo) in
    let ranges = [| (vlo, vhi) |] in
    let m = Mstw.count_value_ranges t_mem ~ranges in
    Alcotest.(check int)
      (Printf.sprintf "%s: count_value_ranges [%d,%d)" msg vlo vhi)
      m
      (Mstw.count_value_ranges t_str ~ranges);
    if m > 0 then begin
      let nth = Rng.int rng m in
      Alcotest.(check int)
        (Printf.sprintf "%s: select %d of values [%d,%d)" msg nth vlo vhi)
        (Mstw.select t_mem ~ranges ~nth)
        (Mstw.select t_str ~ranges ~nth)
    end
  done

let test_mst_stream_identity () =
  let rng = Rng.create 41 in
  List.iter
    (fun (n, hi, fanout, sample, choice, label) ->
      let a = Array.init n (fun _ -> Rng.int rng (max hi 1)) in
      let mn = min 0 (Array.fold_left min 0 a) in
      let mx = max 0 (Array.fold_left max 0 a) in
      let t_mem = Mstw.create ~fanout ~sample ~choice a in
      let t_str =
        Mstw.create_stream ~fanout ~sample ~choice ~n ~min_value:mn ~max_value:mx
          ~fill:(fill_of a) ()
      in
      probe_equal ~msg:label rng t_mem t_str n)
    [
      (0, 1, 32, 32, Mstw.Auto, "empty");
      (1, 1, 32, 32, Mstw.Auto, "singleton");
      (100, 50, 2, 0, Mstw.Auto, "fanout2 nosample");
      (1000, 900, 4, 7, Mstw.Auto, "fanout4 sample7");
      (1000, 1000, 32, 32, Mstw.Auto, "w16 default");
      (5000, 70_000, 32, 32, Mstw.Auto, "w32 via range");
      (2000, 100, 32, 32, Mstw.Force Mstw.W32, "forced w32");
      (2000, 100, 5, 32, Mstw.Force Mstw.W64, "forced w64");
      (70_000, 100, 16, 16, Mstw.Auto, "w32 via count");
    ]

let test_mst_stream_64 () =
  (* the 64-bit template directly, values outside any narrow width *)
  let rng = Rng.create 43 in
  let n = 3000 in
  let a = Array.init n (fun _ -> Rng.int_in rng (-1_000_000) 1_000_000) in
  let t_mem = Mst.create ~fanout:8 ~sample:8 a in
  let t_str = Mst.create_stream ~fanout:8 ~sample:8 ~n ~fill:(fill_of a) () in
  for _ = 1 to 300 do
    let lo = Rng.int rng (n + 1) in
    let hi = lo + Rng.int rng (n + 1 - lo) in
    let v = Rng.int_in rng (-1_100_000) 1_100_000 in
    Alcotest.(check int) "count"
      (Mst.count t_mem ~lo ~hi ~less_than:v)
      (Mst.count t_str ~lo ~hi ~less_than:v)
  done

let test_mst_stream_range_check () =
  (* streamed narrow builds validate chunk values like the array builds *)
  match
    Mstw.create_stream ~n:4 ~min_value:0 ~max_value:10
      ~fill:(fun chunk ~pos ~len ->
        for i = 0 to len - 1 do
          chunk.(i) <- (if pos + i = 3 then 1 lsl 40 else i)
        done)
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "streamed W16 build accepted an out-of-range value"

(* ------------------------------------------------------------------ *)
(* Governed no-op path: goldens unchanged                              *)
(* ------------------------------------------------------------------ *)

(* Masks "<float> ms" wall times and "<float> kw" allocation counts: the
   governed no-op run may allocate a few extra words for its accounting,
   but every structural line — spans, rows, kinds, counters — must be
   byte-identical to the ungoverned run. *)
let mask_volatile s =
  let is_numch c = (c >= '0' && c <= '9') || c = '.' in
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if is_numch s.[!i] then begin
      let j = ref !i in
      while !j < n && is_numch s.[!j] do
        incr j
      done;
      let unit_of k = if k + 3 <= n then String.sub s k 3 else "" in
      if unit_of !j = " ms" || unit_of !j = " kw" then begin
        Buffer.add_char b '#';
        Buffer.add_string b (unit_of !j);
        i := !j + 3
      end
      else begin
        Buffer.add_string b (String.sub s !i (!j - !i));
        i := !j
      end
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let sample_table rng n =
  Table.create
    [
      ("k", Column.ints (Array.init n (fun _ -> Rng.int rng 50)));
      ("g", Column.ints (Array.init n (fun _ -> Rng.int rng 4)));
      ("v", Column.floats (Array.init n (fun _ -> float_of_int (Rng.int rng 100) /. 2.0)));
    ]

let sample_query =
  "select sum(v) over (partition by g order by k rows between 5 preceding and current row) as s, \
   rank(order by v) over (partition by g order by k) as r from t"

let check_bits_identical expected actual =
  List.iter
    (fun (name, c0) ->
      let c = Table.column actual name in
      for r = 0 to Table.nrows expected - 1 do
        let v0 = Column.get c0 r and v = Column.get c r in
        let same =
          match (v0, v) with
          | Value.Float x, Value.Float y ->
              Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
          | _ -> compare v0 v = 0
        in
        if not same then
          Alcotest.failf "row %d col %s: %s vs %s" r name (Value.to_string v0)
            (Value.to_string v)
      done)
    (Table.columns expected)

let test_noop_golden () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create 47 in
      let table = sample_table rng 500 in
      let plain, report_plain = Sql.explain_analyze ~pool ~tables:[ ("t", table) ] sample_query in
      (* a budget far above the working set: every decision is in-memory *)
      let governed, report_gov =
        Sql.explain_analyze ~pool ~mem_limit:(1 lsl 30) ~tables:[ ("t", table) ] sample_query
      in
      Alcotest.(check string) "masked reports identical" (mask_volatile report_plain)
        (mask_volatile report_gov);
      Alcotest.(check bool) "no spill provenance" false (contains "spilled" report_gov);
      check_bits_identical plain governed)

let test_spilled_golden () =
  (* under forced spilling the sort span carries spilled=(runs=…, …) and
     the result is still bit-identical *)
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create 53 in
      let table = sample_table rng 500 in
      let plain = Sql.query ~pool ~tables:[ ("t", table) ] sample_query in
      let governor = Mem_governor.create ~policy:Mem_governor.Always_spill () in
      let spilled, report =
        Fun.protect
          ~finally:(fun () -> Mem_governor.cleanup governor)
          (fun () -> Sql.explain_analyze ~pool ~governor ~tables:[ ("t", table) ] sample_query)
      in
      Alcotest.(check bool) "spill provenance on the sort span" true
        (contains "spilled=(runs=" report);
      Alcotest.(check bool) "spill counters" true (contains "sort.spill_bytes" report);
      check_bits_identical plain spilled)

let test_budget_too_small_sql () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create 59 in
      let table = sample_table rng 10_000 in
      match Sql.query ~pool ~mem_limit:100 ~tables:[ ("t", table) ] sample_query with
      | exception Mem_governor.Budget_too_small msg ->
          Alcotest.(check bool) "explains the floor" true (contains "memory budget" msg)
      | _ -> Alcotest.fail "100-byte budget executed a 10k-row sort")

let () =
  Alcotest.run "spill"
    [
      ( "run-file",
        [
          Alcotest.test_case "roundtrip across sizes and widths" `Quick test_roundtrip;
          Alcotest.test_case "reader validation" `Quick test_reader_validation;
        ] );
      ( "faults",
        [
          Alcotest.test_case "ENOSPC propagates, abort cleans up" `Quick test_fault_enospc;
          Alcotest.test_case "short write detected" `Quick test_fault_short_write;
          Alcotest.test_case "checksum corruption detected" `Quick test_fault_checksum;
          Alcotest.test_case "spilled sort cleans up on failure" `Quick
            test_sort_spill_fault_cleanup;
        ] );
      ( "sort",
        [
          Alcotest.test_case "spilled sort = in-memory sort" `Quick test_sort_spill_identity;
          Alcotest.test_case "residual tie order preserved" `Quick test_sort_spill_tie;
          Alcotest.test_case "mixed memory/disk source merge" `Quick test_merge_sources_mixed;
        ] );
      ( "governor",
        [
          Alcotest.test_case "charge/release/peak" `Quick test_governor_accounting;
          Alcotest.test_case "plan_sort decisions" `Quick test_governor_plan_sort;
          Alcotest.test_case "stream_builds decisions" `Quick test_governor_stream_builds;
          Alcotest.test_case "pick_spills largest-first" `Quick test_governor_pick_spills;
          Alcotest.test_case "parse_limit" `Quick test_governor_parse_limit;
          Alcotest.test_case "spill dir lifecycle" `Quick test_governor_spill_dir;
        ] );
      ( "mst-stream",
        [
          Alcotest.test_case "create_stream = create across widths/knobs" `Quick
            test_mst_stream_identity;
          Alcotest.test_case "64-bit template streamed" `Quick test_mst_stream_64;
          Alcotest.test_case "range validation" `Quick test_mst_stream_range_check;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "no-op governed run keeps goldens" `Quick test_noop_golden;
          Alcotest.test_case "forced spill tags spans, same bits" `Quick test_spilled_golden;
          Alcotest.test_case "budget below working set errors" `Quick test_budget_too_small_sql;
        ] );
    ]
