(* Tests for the production-telemetry layer: windowed (sliding-window)
   histograms, pull-model gauges, the Prometheus/JSON metrics snapshot,
   the holiwin-qlog/1 query log (round-trip, rotation, session runs) and
   the help-string lint over the full metric inventory. *)

open Holistic_storage
module Obs = Holistic_obs.Obs
module Sql = Holistic_sql.Sql
module Qs = Holistic_window.Query_stats

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Windowed histograms                                                 *)
(* ------------------------------------------------------------------ *)

let test_windowed_time_expiry () =
  let w =
    Obs.Windowed_histogram.make ~help:"test" ~slots:4 ~window:(Obs.Windowed_histogram.Last_ns 4_000) "twin.time_ns"
  in
  Obs.Windowed_histogram.reset w;
  (* one sample per 1000ns slice *)
  List.iter
    (fun (t, v) -> Obs.Windowed_histogram.add_always_at w ~now_ns:t v)
    [ (500, 10); (1_500, 20); (2_500, 30); (3_500, 40) ];
  let s = Obs.Windowed_histogram.summary_at w ~now_ns:3_500 in
  Alcotest.(check int) "all four in window" 4 s.Obs.Histogram.count;
  Alcotest.(check int) "sum" 100 s.Obs.Histogram.sum;
  Alcotest.(check int) "min" 10 s.Obs.Histogram.min;
  Alcotest.(check int) "max" 40 s.Obs.Histogram.max;
  (* the clock advancing one slice expires the oldest slice even with no
     new samples *)
  let s = Obs.Windowed_histogram.summary_at w ~now_ns:4_500 in
  Alcotest.(check int) "oldest slice aged out" 3 s.Obs.Histogram.count;
  Alcotest.(check int) "its sample left the sum" 90 s.Obs.Histogram.sum;
  (* far future: everything expired *)
  let s = Obs.Windowed_histogram.summary_at w ~now_ns:1_000_000 in
  Alcotest.(check int) "empty after window passes" 0 s.Obs.Histogram.count

let test_windowed_bulk_eviction () =
  let w =
    Obs.Windowed_histogram.make ~slots:4 ~window:(Obs.Windowed_histogram.Last_ns 4_000) "twin.evict_ns"
  in
  Obs.Windowed_histogram.reset w;
  let ev0 = Obs.Windowed_histogram.evictions w in
  (* writing into a slice whose ring slot holds an expired generation
     bulk-zeroes the old slice *)
  Obs.Windowed_histogram.add_always_at w ~now_ns:500 1;
  Obs.Windowed_histogram.add_always_at w ~now_ns:4_500 2;
  (* same ring slot as 500ns, one window later *)
  Alcotest.(check bool) "eviction counted" true (Obs.Windowed_histogram.evictions w > ev0);
  let s = Obs.Windowed_histogram.summary_at w ~now_ns:4_500 in
  Alcotest.(check int) "only the live sample" 1 s.Obs.Histogram.count;
  Alcotest.(check int) "evicted value gone" 2 s.Obs.Histogram.min

let test_windowed_event_window () =
  let w =
    Obs.Windowed_histogram.make ~slots:4 ~window:(Obs.Windowed_histogram.Last_events 8) "twin.events"
  in
  Obs.Windowed_histogram.reset w;
  Alcotest.(check string) "label" "8ev" (Obs.Windowed_histogram.window_label w);
  (* 2 events per slice; after 16 events the first 8 have aged out *)
  for i = 1 to 16 do
    Obs.Windowed_histogram.add_always_at w ~now_ns:0 i
  done;
  let s = Obs.Windowed_histogram.summary w in
  Alcotest.(check int) "window covers the trailing events" 8 s.Obs.Histogram.count;
  Alcotest.(check int) "oldest retained is 9" 9 s.Obs.Histogram.min;
  Alcotest.(check int) "newest is 16" 16 s.Obs.Histogram.max;
  Alcotest.(check int) "events counts lifetime" 16 (Obs.Windowed_histogram.events w)

let test_windowed_matches_cumulative_quantiles () =
  (* same samples, same bucketing: a window wide enough to hold them all
     must report exactly the cumulative histogram's quantiles *)
  let h = Obs.Histogram.make "twin.cumulative_ns" in
  Obs.Histogram.reset h;
  let w =
    Obs.Windowed_histogram.make ~slots:8 ~window:(Obs.Windowed_histogram.Last_events 4096) "twin.sliding_ns"
  in
  Obs.Windowed_histogram.reset w;
  let rng = Holistic_util.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = 100 + Holistic_util.Rng.int rng 1_000_000 in
    Obs.Histogram.add_always h v;
    Obs.Windowed_histogram.add_always_at w ~now_ns:0 v
  done;
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q=%g" q)
        (Obs.Histogram.quantile h q)
        (Obs.Windowed_histogram.quantile w q))
    [ 0.5; 0.9; 0.99; 1.0 ]

let test_windowed_disabled_is_noop () =
  let was = Obs.enabled () in
  Obs.disable ();
  let w =
    Obs.Windowed_histogram.make ~window:(Obs.Windowed_histogram.Last_events 64) "twin.gated"
  in
  Obs.Windowed_histogram.reset w;
  let t0 = Obs.now_ns () in
  for _ = 1 to 1_000_000 do
    Obs.Windowed_histogram.add w 123
  done;
  Qs.note_latency 123;
  let dt_ns = Obs.now_ns () - t0 in
  Alcotest.(check int) "no events recorded while disabled" 0 (Obs.Windowed_histogram.events w);
  (* one atomic load per call: a million gated adds stay far under any
     plausibly-loaded machine's second (typically ~1-5 ms) *)
  Alcotest.(check bool)
    (Printf.sprintf "1M gated adds fast enough (%d ns)" dt_ns)
    true (dt_ns < 1_000_000_000);
  if was then Obs.enable ()

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

let test_gauge_register_replace () =
  let g = Obs.Gauge.register ~help:"test gauge" "tgauge.v" (fun () -> 41) in
  Alcotest.(check int) "first callback" 41 (Obs.Gauge.value g);
  let g2 = Obs.Gauge.register "tgauge.v" (fun () -> 42) in
  Alcotest.(check int) "last registration wins" 42 (Obs.Gauge.value g2);
  Alcotest.(check string) "help survives a help-less re-register" "test gauge" (Obs.Gauge.help g2);
  Alcotest.(check (option int))
    "snapshot samples the new callback" (Some 42)
    (List.assoc_opt "tgauge.v" (Obs.Gauge.snapshot ()));
  let bad = Obs.Gauge.register ~help:"raises" "tgauge.bad" (fun () -> failwith "boom") in
  Alcotest.(check int) "raising callback reads 0" 0 (Obs.Gauge.value bad)

(* ------------------------------------------------------------------ *)
(* Metrics snapshot: Prometheus golden + JSON                          *)
(* ------------------------------------------------------------------ *)

let golden_prometheus =
  "# HELP holiwin_zgold_requests Requests seen by the test\n\
   # TYPE holiwin_zgold_requests counter\n\
   holiwin_zgold_requests 7\n\
   # HELP holiwin_zgold_depth Queue depth of the test\n\
   # TYPE holiwin_zgold_depth gauge\n\
   holiwin_zgold_depth 42\n\
   # HELP holiwin_zgold_lat_ns Latencies of the test\n\
   # TYPE holiwin_zgold_lat_ns summary\n\
   holiwin_zgold_lat_ns{quantile=\"0.5\"} 2\n\
   holiwin_zgold_lat_ns{quantile=\"0.9\"} 4\n\
   holiwin_zgold_lat_ns{quantile=\"0.99\"} 4\n\
   holiwin_zgold_lat_ns_sum 10\n\
   holiwin_zgold_lat_ns_count 4\n\
   # HELP holiwin_zgold_win_ns Sliding latencies of the test\n\
   # TYPE holiwin_zgold_win_ns summary\n\
   holiwin_zgold_win_ns{window=\"8ev\",quantile=\"0.5\"} 5\n\
   holiwin_zgold_win_ns{window=\"8ev\",quantile=\"0.9\"} 6\n\
   holiwin_zgold_win_ns{window=\"8ev\",quantile=\"0.99\"} 6\n\
   holiwin_zgold_win_ns_sum{window=\"8ev\"} 11\n\
   holiwin_zgold_win_ns_count{window=\"8ev\"} 2\n"

let zgold_snapshot () =
  let c = Obs.Counter.make ~help:"Requests seen by the test" "zgold.requests" in
  Obs.Counter.add_always c (7 - Obs.Counter.value c);
  ignore (Obs.Gauge.register ~help:"Queue depth of the test" "zgold.depth" (fun () -> 42));
  let h = Obs.Histogram.make ~help:"Latencies of the test" "zgold.lat_ns" in
  Obs.Histogram.reset h;
  List.iter (Obs.Histogram.add_always h) [ 1; 2; 3; 4 ];
  let w =
    Obs.Windowed_histogram.make ~help:"Sliding latencies of the test"
      ~window:(Obs.Windowed_histogram.Last_events 8) "zgold.win_ns"
  in
  Obs.Windowed_histogram.reset w;
  List.iter (Obs.Windowed_histogram.add_always_at w ~now_ns:0) [ 5; 6 ];
  Obs.Metrics.filter
    (fun name -> String.length name >= 6 && String.sub name 0 6 = "zgold.")
    (Obs.Metrics.snapshot ())

let test_prometheus_golden () =
  let snap = zgold_snapshot () in
  Alcotest.(check string) "exposition text" golden_prometheus (Obs.Metrics.to_prometheus snap);
  (* the wall-clock stamp is caller-supplied and renders as a leading
     comment — the only non-deterministic line, masked by fixing it *)
  let stamped = Obs.Metrics.to_prometheus ~stamp_ms:1234 snap in
  Alcotest.(check string) "stamp header"
    ("# holiwin metrics snapshot unix_ms=1234\n" ^ golden_prometheus)
    stamped

let test_metrics_json () =
  let snap = zgold_snapshot () in
  let js = Obs.Metrics.to_json ~stamp_ms:1234 snap in
  List.iter
    (fun sub -> Alcotest.(check bool) ("contains " ^ sub) true (contains ~sub js))
    [
      "\"schema\":\"holiwin-metrics/1\"";
      "\"taken_unix_ms\":1234";
      "\"zgold.requests\":{\"help\":\"Requests seen by the test\",\"value\":7}";
      "\"zgold.depth\":{\"help\":\"Queue depth of the test\",\"value\":42}";
      "\"p99\":4";
      "\"window\":\"8ev\"";
    ]

let test_help_lint () =
  (* run one windowed query first so every production metric registry
     entry (counters, histograms, gauges, windowed histograms) exists *)
  let table =
    Table.create [ ("k", Column.ints [| 3; 1; 2 |]); ("x", Column.floats [| 1.; 2.; 3. |]) ]
  in
  ignore
    (Sql.query ~tables:[ ("t", table) ]
       "select sum(x) over (order by k rows between 1 preceding and current row) from t");
  Qs.note_latency 1;
  let test_owned name =
    List.exists
      (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
      [ "twin."; "tgauge."; "zgold." ]
  in
  let bad =
    List.filter
      (fun (_, name, help) -> help = "" && not (test_owned name))
      (Obs.Metrics.inventory (Obs.Metrics.snapshot ()))
  in
  let render = String.concat ", " (List.map (fun (k, n, _) -> k ^ ":" ^ n) bad) in
  Alcotest.(check string) "every registered metric carries help text" "" render

(* ------------------------------------------------------------------ *)
(* Query log: round-trip, rotation, session runs                       *)
(* ------------------------------------------------------------------ *)

let small_table rows =
  let rng = Holistic_util.Rng.create 5 in
  Table.create
    [
      ("g", Column.ints (Array.init rows (fun _ -> Holistic_util.Rng.int rng 4)));
      ("v", Column.floats (Array.init rows (fun i -> float_of_int i)));
    ]

let windowed_sql =
  "select sum(v) over (partition by g order by v rows between 3 preceding and current row) from t"

let test_qlog_roundtrip () =
  let path = Filename.temp_file "holiwin_qlog_rt" ".jsonl" in
  let sink = Qs.Log.open_ path in
  let table = small_table 200 in
  let session = Sql.session_create table in
  ignore (Sql.session_query ~query_log:sink session windowed_sql);
  ignore (Sql.session_query ~query_log:sink session "select g, v from t");
  Qs.Log.close sink;
  let records = Qs.Log.load path in
  Alcotest.(check int) "two records" 2 (List.length records);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  (* byte-exact round trip: parse each line and re-serialise it *)
  List.iter
    (fun line ->
      Alcotest.(check string) "parse/print identity" line (Qs.to_json_line (Qs.of_json_line line)))
    (List.rev !lines);
  let r = List.hd records in
  Alcotest.(check int) "seq assigned from 0" 0 r.Qs.seq;
  Alcotest.(check string) "sql text" windowed_sql r.Qs.sql;
  Alcotest.(check int) "rows_in" 200 r.Qs.rows_in;
  Alcotest.(check int) "rows_out" 200 r.Qs.rows_out;
  Alcotest.(check bool) "wall time measured" true (r.Qs.wall_ns > 0);
  Alcotest.(check bool) "windowed query has plan stats" true (r.Qs.plan <> None);
  Alcotest.(check (option int)) "session epoch stamped" (Some 0) r.Qs.session_epoch;
  Alcotest.(check bool) "structures were built and accounted" true (r.Qs.structure_bytes > 0);
  let plain = List.nth records 1 in
  Alcotest.(check bool) "window-free query has no plan stats" true (plain.Qs.plan = None);
  Alcotest.(check int) "seq increments" 1 plain.Qs.seq;
  Sys.remove path

let test_qlog_schema_guard () =
  (match Qs.of_json_line "{\"schema\":\"holiwin-qlog/9\",\"seq\":0}" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "schema mismatch must raise");
  match Qs.of_json_line "not json" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed input must raise"

let test_qlog_rotation () =
  let dir = Filename.temp_file "holiwin_qlog_rot" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "q.jsonl" in
  (* minimum rotation threshold (4 KiB) and ~600-byte records: a rotation
     is forced well before 100 appends *)
  let sink = Qs.Log.open_ ~max_bytes:1 path in
  let table = small_table 50 in
  let session = Sql.session_create table in
  for _ = 1 to 100 do
    ignore (Sql.session_query ~query_log:sink session windowed_sql)
  done;
  Alcotest.(check bool) "rotated at least once" true (Qs.Log.rotations sink >= 1);
  Qs.Log.close sink;
  Alcotest.(check bool) "rotated file exists" true (Sys.file_exists (path ^ ".1"));
  (* every line of both generations parses — rotation never splits a
     record — and together they hold the trailing appends *)
  let rotated = Qs.Log.load (path ^ ".1") in
  let live = Qs.Log.load path in
  Alcotest.(check bool) "both files non-empty" true (rotated <> [] && live <> []);
  let seqs = List.map (fun r -> r.Qs.seq) (rotated @ live) in
  let max_seq = List.fold_left max 0 seqs in
  Alcotest.(check int) "last record retained" 99 max_seq;
  (* the retained window is contiguous: seq k..99 with no gaps *)
  let sorted = List.sort compare seqs in
  let lo = List.hd sorted in
  Alcotest.(check (list int)) "contiguous sequence numbers"
    (List.init (List.length sorted) (fun i -> lo + i))
    sorted;
  List.iter (fun f -> if Sys.file_exists f then Sys.remove f) [ path; path ^ ".1" ];
  Sys.rmdir dir

let test_qlog_thousand_query_session () =
  (* the acceptance run: a 1000-query session with a rotating log; the
     log parses, stays bounded and its byte/cache fields are coherent *)
  let dir = Filename.temp_file "holiwin_qlog_1k" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "q.jsonl" in
  let sink = Qs.Log.open_ ~max_bytes:65_536 path in
  let table = small_table 100 in
  let session = Sql.session_create table in
  for _ = 1 to 1000 do
    ignore (Sql.session_query ~query_log:sink session windowed_sql)
  done;
  Alcotest.(check bool) "rotation bounded the live file" true (Qs.Log.rotations sink >= 1);
  Qs.Log.close sink;
  let records = Qs.Log.load (path ^ ".1") @ Qs.Log.load path in
  Alcotest.(check bool) "log survived 1000 queries" true (List.length records > 10);
  List.iter
    (fun r ->
      Alcotest.(check int) "rows preserved per record" 100 r.Qs.rows_out;
      Alcotest.(check bool) "cache engaged after warmup" true
        (r.Qs.seq = 0 || r.Qs.cache_hits + r.Qs.cache_misses + r.Qs.cache_rebuilt >= 0))
    records;
  (* after the first query the session serves every structure: steady-state
     records must show no fresh structure bytes and no cache misses *)
  let steady = List.filter (fun r -> r.Qs.seq > 0) records in
  Alcotest.(check bool) "steady state reuses structures" true
    (List.for_all (fun r -> r.Qs.structure_bytes = 0 && r.Qs.cache_misses = 0) steady);
  List.iter (fun f -> if Sys.file_exists f then Sys.remove f) [ path; path ^ ".1" ];
  Sys.rmdir dir

let test_qlog_matches_explain_analyze () =
  (* the same query on identical fresh inputs: the record's gated-counter
     fields must equal the counter deltas EXPLAIN ANALYZE captures *)
  let sql = windowed_sql in
  let path = Filename.temp_file "holiwin_qlog_ea" ".jsonl" in
  let sink = Qs.Log.open_ path in
  ignore (Sql.query ~query_log:sink ~tables:[ ("t", small_table 300) ] sql);
  Qs.Log.close sink;
  let r = List.hd (Qs.Log.load path) in
  Sys.remove path;
  let _, trace = Sql.explain_analyze_trace ~tables:[ ("t", small_table 300) ] sql in
  let counter name =
    Option.value ~default:0 (List.assoc_opt name trace.Obs.counters)
  in
  Alcotest.(check int) "structure bytes match" (counter "mem.structure_bytes") r.Qs.structure_bytes;
  Alcotest.(check int) "cache misses match" (counter "cache.miss") r.Qs.cache_misses;
  Alcotest.(check int) "cache hits match" (counter "cache.hit") r.Qs.cache_hits;
  Alcotest.(check int) "spill bytes match" (counter "sort.spill_bytes") r.Qs.spill_bytes;
  let trace_evals =
    List.filter_map
      (fun (name, v) ->
        let p = "plan.evaluator." in
        let pl = String.length p in
        if String.length name > pl && String.sub name 0 pl = p && v <> 0 then
          Some (String.sub name pl (String.length name - pl), v)
        else None)
      trace.Obs.counters
    |> List.sort compare
  in
  Alcotest.(check (list (pair string int))) "evaluator picks match" trace_evals r.Qs.evaluators

let test_windowed_latency_tracks_queries () =
  (* sql.query_window_ns over the last 1024 queries must agree with a
     cumulative histogram reset around the same run *)
  let h = Obs.Histogram.make "sql.query_ns" in
  let w = Obs.Windowed_histogram.make ~window:(Obs.Windowed_histogram.Last_events 1024) "sql.query_window_ns" in
  Obs.Histogram.reset h;
  Obs.Windowed_histogram.reset w;
  let path = Filename.temp_file "holiwin_qlog_p99" ".jsonl" in
  let sink = Qs.Log.open_ path in
  let session = Sql.session_create (small_table 100) in
  for _ = 1 to 50 do
    ignore (Sql.session_query ~query_log:sink session windowed_sql)
  done;
  Qs.Log.close sink;
  Sys.remove path;
  Alcotest.(check int) "both sides saw every query" (Obs.Histogram.count h)
    (Obs.Windowed_histogram.summary w).Obs.Histogram.count;
  (* identical samples within the window: identical (conservative) p99 *)
  Alcotest.(check int) "windowed p99 = cumulative p99" (Obs.Histogram.quantile h 0.99)
    (Obs.Windowed_histogram.quantile w 0.99)

let () =
  Alcotest.run "telemetry"
    [
      ( "windowed-histogram",
        [
          Alcotest.test_case "time expiry" `Quick test_windowed_time_expiry;
          Alcotest.test_case "bulk eviction" `Quick test_windowed_bulk_eviction;
          Alcotest.test_case "event window" `Quick test_windowed_event_window;
          Alcotest.test_case "matches cumulative quantiles" `Quick
            test_windowed_matches_cumulative_quantiles;
          Alcotest.test_case "disabled is a no-op" `Quick test_windowed_disabled_is_noop;
        ] );
      ("gauges", [ Alcotest.test_case "register/replace" `Quick test_gauge_register_replace ]);
      ( "metrics-snapshot",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "json document" `Quick test_metrics_json;
          Alcotest.test_case "help lint" `Quick test_help_lint;
        ] );
      ( "query-log",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_qlog_roundtrip;
          Alcotest.test_case "schema guard" `Quick test_qlog_schema_guard;
          Alcotest.test_case "rotation boundary" `Quick test_qlog_rotation;
          Alcotest.test_case "1000-query session" `Quick test_qlog_thousand_query_session;
          Alcotest.test_case "matches explain analyze" `Quick test_qlog_matches_explain_analyze;
          Alcotest.test_case "windowed latency tracks queries" `Quick
            test_windowed_latency_tracks_queries;
        ] );
    ]
