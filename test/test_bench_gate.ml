(* Tests for the benchmark report substrate and its regression gate: the
   JSON round-trip, tolerance semantics in both directions, and the
   acceptance scenario — a synthetic 2x slowdown / 2x footprint inflation
   must trip the gate while an unmodified report passes. *)

module Report = Report
module Obs = Holistic_obs.Obs

let baseline_report () =
  Report.make ~experiment:"synthetic"
    ~params:[ ("rows", Report.J_int 10_000) ]
    ~metrics:
      [
        ("time_s", Report.metric ~unit_:"s" ~tolerance:0.2 1.0);
        ("structure_bytes", Report.metric ~unit_:"B" ~tolerance:0.25 1_000_000.);
        ( "speedup",
          Report.metric ~unit_:"x" ~direction:Report.Higher_better ~tolerance:0.35 3.0 );
        ("wall_s", Report.metric ~unit_:"s" 2.5) (* no tolerance: report-only *);
      ]
    ~counters:[ ("builds", 7) ]
    ()

(* a fresh report with the given metric values, sans the removed ones *)
let fresh_report ?(drop = []) overrides =
  let base = [ ("time_s", 1.0); ("structure_bytes", 1_000_000.); ("speedup", 3.0) ] in
  let values =
    List.filter
      (fun (k, _) -> not (List.mem k drop))
      (List.map (fun (k, v) -> (k, Option.value ~default:v (List.assoc_opt k overrides))) base)
  in
  Report.make ~experiment:"synthetic"
    ~metrics:(List.map (fun (k, v) -> (k, Report.metric v)) values)
    ()

let violation_names ~fresh =
  let checks = Report.compare_reports ~baseline:(baseline_report ()) ~fresh in
  List.map (fun c -> c.Report.metric_name) (Report.violations checks)

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let r = baseline_report () in
  let r' = Report.parse (Report.json_to_string r) in
  Alcotest.(check string) "experiment survives" "synthetic" (Report.experiment_of r');
  let ms = Report.metrics_of r and ms' = Report.metrics_of r' in
  Alcotest.(check int) "metric count" (List.length ms) (List.length ms');
  List.iter2
    (fun (k, (m : Report.metric)) (k', (m' : Report.metric)) ->
      Alcotest.(check string) "name" k k';
      Alcotest.(check (float 1e-9)) "value" m.Report.value m'.Report.value;
      Alcotest.(check bool) "direction" true (m.Report.direction = m'.Report.direction);
      Alcotest.(check bool) "tolerance" true (m.Report.tolerance = m'.Report.tolerance))
    ms ms';
  (* escaped strings, nested arrays, null and exponents survive too *)
  let j =
    Report.J_obj
      [
        ("s", Report.J_string "a\"b\\c\nd\te\r\xe2\x82\xac");
        ("a", Report.J_list [ Report.J_int (-3); Report.J_float 1.5e-3; Report.J_null ]);
        ("b", Report.J_bool false);
      ]
  in
  Alcotest.(check bool) "generic round-trip" true (Report.parse (Report.json_to_string j) = j)

let test_hist_summary_json () =
  let h = Obs.Histogram.make "test.gate.hist" in
  Obs.Histogram.reset h;
  List.iter (Obs.Histogram.add_always h) [ 10; 20; 30 ];
  let j = Report.json_of_hist_summary (Obs.Histogram.summary h) in
  Alcotest.(check (option (float 0.))) "count serialised" (Some 3.0)
    (Option.bind (Report.member "count" j) Report.to_float);
  Obs.Histogram.reset h

(* ------------------------------------------------------------------ *)
(* Gate semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_unmodified_passes () =
  Alcotest.(check (list string)) "no violations" [] (violation_names ~fresh:(fresh_report []))

let test_within_tolerance_passes () =
  let fresh =
    fresh_report [ ("time_s", 1.15); ("structure_bytes", 1_200_000.); ("speedup", 2.4) ]
  in
  Alcotest.(check (list string)) "within tolerance" [] (violation_names ~fresh)

let test_improvements_pass () =
  let fresh = fresh_report [ ("time_s", 0.3); ("structure_bytes", 1_000.); ("speedup", 9.0) ] in
  Alcotest.(check (list string)) "improvements never fail" [] (violation_names ~fresh)

(* the acceptance scenario: inject a 2x slowdown and a 2x footprint
   inflation — both must trip their gates *)
let test_2x_regressions_fail () =
  Alcotest.(check (list string)) "2x slowdown trips time_s" [ "time_s" ]
    (violation_names ~fresh:(fresh_report [ ("time_s", 2.0) ]));
  Alcotest.(check (list string)) "2x inflation trips structure_bytes" [ "structure_bytes" ]
    (violation_names ~fresh:(fresh_report [ ("structure_bytes", 2_000_000.) ]));
  Alcotest.(check (list string)) "halved speedup trips the higher-is-better gate" [ "speedup" ]
    (violation_names ~fresh:(fresh_report [ ("speedup", 1.5) ]))

let test_missing_metric_fails () =
  Alcotest.(check (list string)) "missing gated metric fails" [ "speedup" ]
    (violation_names ~fresh:(fresh_report ~drop:[ "speedup" ] []))

let test_untolerated_never_gates () =
  (* wall_s has no tolerance in the baseline and is absent from the fresh
     report entirely: reported, never gated *)
  let checks =
    Report.compare_reports ~baseline:(baseline_report ()) ~fresh:(fresh_report [])
  in
  let wall = List.find (fun c -> c.Report.metric_name = "wall_s") checks in
  Alcotest.(check bool) "no-tolerance metric ok even when missing" true wall.Report.ok

let test_zero_baseline () =
  let baseline =
    Report.make ~experiment:"z" ~metrics:[ ("count", Report.metric ~tolerance:0.01 0.0) ] ()
  in
  let same = Report.make ~experiment:"z" ~metrics:[ ("count", Report.metric 0.0) ] () in
  let worse = Report.make ~experiment:"z" ~metrics:[ ("count", Report.metric 1.0) ] () in
  Alcotest.(check int) "0 vs 0 passes" 0
    (List.length (Report.violations (Report.compare_reports ~baseline ~fresh:same)));
  Alcotest.(check int) "0 vs 1 fails" 1
    (List.length (Report.violations (Report.compare_reports ~baseline ~fresh:worse)))

let test_file_roundtrip () =
  let path = Filename.temp_file "bench_gate" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.save path (baseline_report ());
      let r = Report.load path in
      Alcotest.(check string) "loaded experiment" "synthetic" (Report.experiment_of r);
      Alcotest.(check int) "loaded metrics" 4 (List.length (Report.metrics_of r)))

let () =
  Alcotest.run "bench-gate"
    [
      ( "report",
        [
          Alcotest.test_case "json round-trip" `Quick test_roundtrip;
          Alcotest.test_case "histogram summary json" `Quick test_hist_summary_json;
          Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
        ] );
      ( "gate",
        [
          Alcotest.test_case "unmodified report passes" `Quick test_unmodified_passes;
          Alcotest.test_case "within tolerance passes" `Quick test_within_tolerance_passes;
          Alcotest.test_case "improvements pass" `Quick test_improvements_pass;
          Alcotest.test_case "2x regressions fail" `Quick test_2x_regressions_fail;
          Alcotest.test_case "missing gated metric fails" `Quick test_missing_metric_fails;
          Alcotest.test_case "untolerated metrics never gate" `Quick test_untolerated_never_gates;
          Alcotest.test_case "zero baselines" `Quick test_zero_baseline;
        ] );
    ]
