(* Cross-width parity for the merge sort tree template (paper §5.1): the
   64-bit, 32-bit and 16-bit instantiations must be bit-identical oracles
   of each other on every query, across ragged tails, disabled cascading,
   holed frames and values parked on the storage-width boundaries. Also
   covers the width-selection rule ([Mst_width]) and the footprint claim
   that a directly-built narrow tree holds no 64-bit level/cursor arrays. *)

module Mst = Holistic_core.Mst
module C = Holistic_core.Mst_compact
module M16 = Holistic_core.Mst16
module W = Holistic_core.Mst_width
module Rng = Holistic_util.Rng

(* ------------------------------------------------------------------ *)
(* Brute-force oracles                                                 *)
(* ------------------------------------------------------------------ *)

let brute_count a lo hi t =
  let acc = ref 0 in
  for i = max lo 0 to min hi (Array.length a) - 1 do
    if a.(i) < t then incr acc
  done;
  !acc

let brute_count_ranges a ranges t =
  Array.fold_left (fun acc (lo, hi) -> acc + brute_count a lo hi t) 0 ranges

let in_ranges ranges v = Array.exists (fun (l, h) -> v >= l && v < h) ranges

let brute_cvr a ranges =
  Array.fold_left (fun acc v -> if in_ranges ranges v then acc + 1 else acc) 0 a

let brute_select a ranges nth =
  let m = ref nth and res = ref None in
  Array.iter
    (fun v -> if !res = None && in_ranges ranges v then if !m = 0 then res := Some v else decr m)
    a;
  !res

(* ------------------------------------------------------------------ *)
(* Randomized parity across all three instantiations                   *)
(* ------------------------------------------------------------------ *)

(* Value regimes park operands on the storage boundaries: around 2^15 and
   the 16-bit ceiling 2^16 - 1 (still 16-bit-capable), just past it
   (32/64-bit only), and against the int32 ceiling near 2^31 (64-bit
   confirms the 32-bit edge). *)
type regime = Small | Near_2_15 | Near_2_16 | Over_16 | Near_2_31

let regime_base = function
  | Small -> 0
  | Near_2_15 -> 32760 (* spans 2^15 = 32768 *)
  | Near_2_16 -> 65519 (* touches the 16-bit max 65535 *)
  | Over_16 -> 65530 (* spans past 65535: disqualifies the 16-bit tree *)
  | Near_2_31 -> Int32.to_int Int32.max_int - 16 (* touches the 32-bit max *)

let regime_span = 17 (* values in [base, base + span) *)

let width_case =
  QCheck.make
    ~print:(fun (a, f, k) ->
      Printf.sprintf "n=%d f=%d k=%d [%s]" (Array.length a) f k
        (String.concat ";" (Array.to_list (Array.map string_of_int a))))
    QCheck.Gen.(
      let* regime = oneofl [ Small; Small; Near_2_15; Near_2_16; Over_16; Near_2_31 ] in
      let base = regime_base regime in
      let* n = int_bound 230 in
      let* a = array_size (return n) (map (fun d -> base + d) (int_bound (regime_span - 1))) in
      let* f = oneofl [ 2; 3; 4; 8; 16; 32; 64 ] in
      let* k = oneofl [ 0; 1; 2; 4; 8; 32; 100 ] in
      return (a, f, k))

(* Holed positional frames (frame-exclusion, §4.7): up to three disjoint
   [lo, hi) position ranges, possibly degenerate or out of bounds. *)
let random_pos_ranges rng n =
  let l1 = Rng.int rng (n + 2) - 1 in
  let h1 = l1 + Rng.int rng (1 + (n / 2)) in
  let l2 = h1 + Rng.int rng 4 in
  let h2 = l2 + Rng.int rng (1 + (n / 3)) in
  let l3 = h2 + Rng.int rng 4 in
  let h3 = l3 + Rng.int rng (1 + (n / 4)) in
  match Rng.int rng 3 with
  | 0 -> [| (l1, h1) |]
  | 1 -> [| (l1, h1); (l2, h2) |]
  | _ -> [| (l1, h1); (l2, h2); (l3, h3) |]

(* Disjoint ascending value ranges over [base, base + span), with gaps so
   select descends through holes in the value domain too. *)
let random_value_ranges rng base =
  let l1 = base + Rng.int rng regime_span in
  let h1 = l1 + Rng.int rng 8 in
  let l2 = h1 + Rng.int rng 3 in
  let h2 = l2 + Rng.int rng 8 in
  match Rng.int rng 2 with 0 -> [| (l1, h1) |] | _ -> [| (l1, h1); (l2, h2) |]

let widths_agree =
  QCheck.Test.make ~name:"Mst / Mst_compact / Mst16 are bit-identical to the oracle" ~count:400
    width_case (fun (a, f, k) ->
      let n = Array.length a in
      let minv = Array.fold_left min 0 a and maxv = Array.fold_left max 0 a in
      let t64 = Mst.create ~fanout:f ~sample:k a in
      let t32 =
        if minv >= Int32.to_int Int32.min_int && maxv <= Int32.to_int Int32.max_int then
          Some (C.create ~fanout:f ~sample:k a)
        else None
      in
      let t16 =
        if minv >= 0 && maxv <= 0xFFFF && n <= 0xFFFF then Some (M16.create ~fanout:f ~sample:k a)
        else None
      in
      let base = if n = 0 then 0 else minv in
      let rng = Rng.create ((n * 131) + (f * 7) + k) in
      let ok = ref true in
      let check name got expect =
        if got <> expect then begin
          Printf.eprintf "width parity: %s got %d expect %d\n" name got expect;
          ok := false
        end
      in
      for _ = 1 to 25 do
        (* count over a single window *)
        let lo = Rng.int rng (n + 2) - 1 and hi = Rng.int rng (n + 2) - 1 in
        let th = base + Rng.int rng (regime_span + 4) - 2 in
        let expect = brute_count a lo hi th in
        check "count64" (Mst.count t64 ~lo ~hi ~less_than:th) expect;
        Option.iter (fun t -> check "count32" (C.count t ~lo ~hi ~less_than:th) expect) t32;
        Option.iter (fun t -> check "count16" (M16.count t ~lo ~hi ~less_than:th) expect) t16;
        (* count over a holed frame *)
        let pr = random_pos_ranges rng n in
        let expect = brute_count_ranges a pr th in
        check "count_ranges64" (Mst.count_ranges t64 ~ranges:pr ~less_than:th) expect;
        Option.iter (fun t -> check "count_ranges32" (C.count_ranges t ~ranges:pr ~less_than:th) expect) t32;
        Option.iter (fun t -> check "count_ranges16" (M16.count_ranges t ~ranges:pr ~less_than:th) expect) t16;
        (* qualifying population and select over value ranges *)
        let vr = random_value_ranges rng base in
        let expect = brute_cvr a vr in
        check "cvr64" (Mst.count_value_ranges t64 ~ranges:vr) expect;
        Option.iter (fun t -> check "cvr32" (C.count_value_ranges t ~ranges:vr) expect) t32;
        Option.iter (fun t -> check "cvr16" (M16.count_value_ranges t ~ranges:vr) expect) t16;
        if expect > 0 then begin
          let nth = Rng.int rng expect in
          match brute_select a vr nth with
          | None -> ok := false
          | Some v ->
              check "select64" (Mst.select t64 ~ranges:vr ~nth) v;
              Option.iter (fun t -> check "select32" (C.select t ~ranges:vr ~nth) v) t32;
              Option.iter (fun t -> check "select16" (M16.select t ~ranges:vr ~nth) v) t16
        end
      done;
      !ok)

(* The historical conversion path must agree with direct construction. *)
let of_mst_matches_direct =
  QCheck.Test.make ~name:"Mst_compact.of_mst agrees with direct create" ~count:150 width_case
    (fun (a, f, k) ->
      let minv = Array.fold_left min 0 a and maxv = Array.fold_left max 0 a in
      QCheck.assume (minv >= Int32.to_int Int32.min_int && maxv <= Int32.to_int Int32.max_int);
      let n = Array.length a in
      let direct = C.create ~fanout:f ~sample:k a in
      let converted = C.of_mst (Mst.create ~fanout:f ~sample:k a) in
      let base = if n = 0 then 0 else minv in
      let rng = Rng.create ((n * 67) + f + (k * 3)) in
      let ok = ref true in
      for _ = 1 to 20 do
        let lo = Rng.int rng (n + 2) - 1 and hi = Rng.int rng (n + 2) - 1 in
        let th = base + Rng.int rng (regime_span + 4) - 2 in
        if C.count direct ~lo ~hi ~less_than:th <> C.count converted ~lo ~hi ~less_than:th then
          ok := false;
        let vr = random_value_ranges rng base in
        if C.count_value_ranges direct ~ranges:vr <> C.count_value_ranges converted ~ranges:vr then
          ok := false
      done;
      C.stats direct = C.stats converted && !ok)

(* ------------------------------------------------------------------ *)
(* Width boundaries: rejection                                         *)
(* ------------------------------------------------------------------ *)

let test_rejection () =
  Alcotest.check_raises "16-bit rejects negatives"
    (Invalid_argument "Mst16.create: value exceeds 16-bit storage range") (fun () ->
      ignore (M16.create [| 3; -1 |]));
  Alcotest.check_raises "16-bit rejects 65536"
    (Invalid_argument "Mst16.create: value exceeds 16-bit storage range") (fun () ->
      ignore (M16.create [| 65535; 65536 |]));
  Alcotest.check_raises "16-bit rejects over-long arrays"
    (Invalid_argument "Mst16.create: length 65536 exceeds 16-bit storage") (fun () ->
      ignore (M16.create (Array.make 65536 1)));
  Alcotest.check_raises "32-bit rejects over-range values"
    (Invalid_argument "Mst_compact.create: value exceeds 32-bit storage range") (fun () ->
      ignore (C.create [| Int32.to_int Int32.max_int + 1 |]));
  Alcotest.check_raises "of_mst rejects over-range values"
    (Invalid_argument "Mst_compact.of_mst: value exceeds 32-bit range") (fun () ->
      ignore (C.of_mst (Mst.create [| 0; Int32.to_int Int32.min_int - 1 |])));
  (* the widest boundary values that must be accepted *)
  let t = M16.create [| 0; 65535 |] in
  Alcotest.(check int) "16-bit max stored" 1
    (M16.count t ~lo:0 ~hi:2 ~less_than:65535);
  let t = C.create [| Int32.to_int Int32.min_int; Int32.to_int Int32.max_int |] in
  Alcotest.(check int) "32-bit extremes stored" 1
    (C.count t ~lo:0 ~hi:2 ~less_than:0)

(* ------------------------------------------------------------------ *)
(* Footprint: a direct narrow build holds no 64-bit arrays              *)
(* ------------------------------------------------------------------ *)

let test_narrow_footprint () =
  let n = 5_000 in
  let a = Array.init n (fun i -> (i * 2654435761) land 0xFFFF) in
  let s64 = Mst.stats (Mst.create ~fanout:4 ~sample:8 a) in
  let s32 = C.stats (C.create ~fanout:4 ~sample:8 a) in
  let s16 = M16.stats (M16.create ~fanout:4 ~sample:8 a) in
  (* identical shapes: same element population at every width *)
  Alcotest.(check int) "level elements 32" s64.Mst.level_elements s32.C.level_elements;
  Alcotest.(check int) "level elements 16" s64.Mst.level_elements s16.M16.level_elements;
  Alcotest.(check int) "cursor elements 32" s64.Mst.cursor_elements s32.C.cursor_elements;
  Alcotest.(check int) "cursor elements 16" s64.Mst.cursor_elements s16.M16.cursor_elements;
  (* the narrow representations are exactly 4 (resp. 2) bytes per element:
     were any 64-bit level or cursor array still allocated and retained,
     these equalities could not hold *)
  let elems s = s.Mst.level_elements + s.Mst.cursor_elements + s.Mst.payload_elements in
  Alcotest.(check int) "64-bit bytes" (8 * elems s64) s64.Mst.heap_bytes;
  Alcotest.(check int) "32-bit bytes are half"
    (4 * (s32.C.level_elements + s32.C.cursor_elements + s32.C.payload_elements))
    s32.C.heap_bytes;
  Alcotest.(check int) "16-bit bytes are a quarter"
    (2 * (s16.M16.level_elements + s16.M16.cursor_elements + s16.M16.payload_elements))
    s16.M16.heap_bytes;
  Alcotest.(check int) "32 = 64 / 2" (s64.Mst.heap_bytes / 2) s32.C.heap_bytes;
  Alcotest.(check int) "16 = 64 / 4" (s64.Mst.heap_bytes / 4) s16.M16.heap_bytes

(* ------------------------------------------------------------------ *)
(* Width selection                                                     *)
(* ------------------------------------------------------------------ *)

let test_width_for () =
  let check name expect ~n ~min_value ~max_value =
    Alcotest.(check bool) name true (W.width_for ~n ~min_value ~max_value = expect)
  in
  check "small dense ranks -> 16" W.W16 ~n:100 ~min_value:0 ~max_value:200;
  check "16-bit ceiling -> 16" W.W16 ~n:0xFFFF ~min_value:0 ~max_value:0xFFFF;
  check "negative min -> 32" W.W32 ~n:100 ~min_value:(-1) ~max_value:200;
  check "value past 65535 -> 32" W.W32 ~n:100 ~min_value:0 ~max_value:65536;
  check "length past 65535 -> 32" W.W32 ~n:65536 ~min_value:0 ~max_value:10;
  check "int32 ceiling -> 32" W.W32 ~n:1000 ~min_value:Int32.(to_int min_int)
    ~max_value:Int32.(to_int max_int);
  check "value past int32 -> 64" W.W64 ~n:10 ~min_value:0 ~max_value:(Int32.to_int Int32.max_int + 1);
  check "length past int32 -> 64" W.W64 ~n:(Int32.to_int Int32.max_int + 1) ~min_value:0 ~max_value:1

let test_width_dispatch () =
  let a = Array.init 777 (fun i -> (i * 37) mod 500) in
  let auto = W.create a in
  Alcotest.(check bool) "auto picks 16-bit for dense ranks" true (W.width auto = W.W16);
  Alcotest.(check int) "auto bits" 16 (W.bits (W.width auto));
  let forced64 = W.create ~choice:(W.Force W.W64) a in
  Alcotest.(check bool) "force 64 respected" true (W.width forced64 = W.W64);
  (* forcing a width the operand does not fit widens instead of failing *)
  let wide = Array.init 50 (fun i -> 65530 + i) in
  let widened = W.create ~choice:(W.Force W.W16) wide in
  Alcotest.(check bool) "forced 16 widens to 32" true (W.width widened = W.W32);
  let t64 = Mst.create a in
  let rng = Rng.create 991 in
  let ok = ref true in
  for _ = 1 to 40 do
    let lo = Rng.int rng 780 - 1 and hi = Rng.int rng 780 - 1 in
    let th = Rng.int rng 520 - 10 in
    let expect = Mst.count t64 ~lo ~hi ~less_than:th in
    List.iter
      (fun t -> if W.count t ~lo ~hi ~less_than:th <> expect then ok := false)
      [ auto; forced64; W.create ~choice:(W.Force W.W32) a ]
  done;
  Alcotest.(check bool) "dispatch parity across forced widths" true !ok;
  Alcotest.(check bool) "narrow dispatch is smaller" true
    (W.heap_bytes auto < W.heap_bytes forced64)

let () =
  Alcotest.run "width"
    [
      ( "parity",
        [
          QCheck_alcotest.to_alcotest widths_agree;
          QCheck_alcotest.to_alcotest of_mst_matches_direct;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "rejection at width edges" `Quick test_rejection;
          Alcotest.test_case "narrow footprint" `Quick test_narrow_footprint;
        ] );
      ( "selection",
        [
          Alcotest.test_case "width_for rule" `Quick test_width_for;
          Alcotest.test_case "dispatch and forcing" `Quick test_width_dispatch;
        ] );
    ]
