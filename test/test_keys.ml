(* Parity suite for the sort-key compiler and the OVC sort path:
   [Key_codec.compile] + [Parallel_sort.sort_encoded] must reproduce the
   exact permutation of the stable comparator sort
   ([Introsort.sort_indices_by ~cmp:(Sort_spec.comparator …)], partition ids
   prepended) for every spec — NULLs, nan/-0./infinities, DESC, strings,
   multi-key, expression keys, sentinel-colliding extremes. *)

open Holistic_storage
module Bitset = Holistic_util.Bitset
module Rng = Holistic_util.Rng
module Task_pool = Holistic_parallel.Task_pool
module Introsort = Holistic_sort.Introsort
module Parallel_sort = Holistic_sort.Parallel_sort
module Multiway = Holistic_sort.Multiway
module Window_plan = Holistic_window.Window_plan
module Window_spec = Holistic_window.Window_spec

(* ------------------------------------------------------------------ *)
(* Random tables and specs                                             *)
(* ------------------------------------------------------------------ *)

let special_floats =
  [| Float.nan; neg_infinity; infinity; -0.; 0.; 1.5; -1.5; 1e300; -1e300; 0.1 |]

let extreme_ints = [| min_int; max_int; min_int + 1; max_int - 1; 0 |]
let string_pool = [| ""; "a"; "ab"; "abc"; "b"; "ba"; "zz"; "z" |]

let null_mask rng n density =
  if density = 0 then None
  else begin
    let b = Bitset.create n in
    for i = 0 to n - 1 do
      if Rng.int rng density = 0 then Bitset.set b i
    done;
    Some b
  end

let mk_table rng n =
  let col ?nulls data = Column.make ?nulls data in
  Table.create
    [
      (* small-range ints: exercises greedy word packing *)
      ( "i",
        col
          ?nulls:(null_mask rng n 4)
          (Column.Ints (Array.init n (fun _ -> Rng.int_in rng (-4) 4))) );
      (* full-range ints incl. min_int/max_int: unpackable words, NULL
         sentinel collisions, coarsening *)
      ( "j",
        col
          ?nulls:(null_mask rng n 5)
          (Column.Ints
             (Array.init n (fun _ ->
                  if Rng.int rng 3 = 0 then extreme_ints.(Rng.int rng (Array.length extreme_ints))
                  else Rng.int_in rng (-1_000_000) 1_000_000))) );
      (* floats incl. nan/-0./infinities: sign-magnitude scode, hi+lo words *)
      ( "f",
        col
          ?nulls:(null_mask rng n 4)
          (Column.Floats
             (Array.init n (fun _ ->
                  if Rng.int rng 3 = 0 then special_floats.(Rng.int rng (Array.length special_floats))
                  else Rng.float rng 100. -. 50.))) );
      (* strings: densified-rank words *)
      ( "s",
        col
          ?nulls:(null_mask rng n 5)
          (Column.Strings (Array.init n (fun _ -> string_pool.(Rng.int rng (Array.length string_pool)))))
      );
      ("b", col ?nulls:(null_mask rng n 6) (Column.Bools (Array.init n (fun _ -> Rng.bool rng))));
      ("d", col (Column.Dates (Array.init n (fun _ -> Rng.int rng 50))));
    ]

let key_exprs =
  [|
    Expr.Col "i";
    Expr.Col "j";
    Expr.Col "f";
    Expr.Col "s";
    Expr.Col "b";
    Expr.Col "d";
    (* expression keys: compiled through [Expr.compile], not the column
       fast paths *)
    Expr.Add (Expr.Col "i", Expr.Const (Value.Int 2));
    Expr.Mul (Expr.Col "i", Expr.Col "i");
    (* int + float widening: the float-image encoding *)
    Expr.Add (Expr.Col "i", Expr.Col "f");
    (* mixed Int/String values: inexpressible, must fall to the residual *)
    Expr.Case
      ( [ (Expr.Ge (Expr.Col "i", Expr.Const (Value.Int 0)), Expr.Col "i") ],
        Some (Expr.Col "s") );
  |]

let random_key rng =
  let e = key_exprs.(Rng.int rng (Array.length key_exprs)) in
  let nulls =
    match Rng.int rng 3 with
    | 0 -> Sort_spec.Nulls_default
    | 1 -> Sort_spec.Nulls_first
    | _ -> Sort_spec.Nulls_last
  in
  if Rng.bool rng then Sort_spec.asc ~nulls e else Sort_spec.desc ~nulls e

let random_spec rng = List.init (1 + Rng.int rng 3) (fun _ -> random_key rng)

(* ------------------------------------------------------------------ *)
(* The reference order: stable comparator sort                         *)
(* ------------------------------------------------------------------ *)

let expected_perm ?pids table spec =
  let cmp_spec = Sort_spec.comparator table spec in
  let cmp =
    match pids with
    | None -> cmp_spec
    | Some p ->
        fun i j ->
          let c = Int.compare p.(i) p.(j) in
          if c <> 0 then c else cmp_spec i j
  in
  Introsort.sort_indices_by (Table.nrows table) ~cmp

let check_parity pool ~task_size ?pids table spec label =
  let n = Table.nrows table in
  let kc = Key_codec.compile ?pids table spec in
  let perm, key0 =
    Parallel_sort.sort_encoded pool ~task_size ~n ~words:kc.Key_codec.words
      ?tie:kc.Key_codec.residual ()
  in
  let expect = expected_perm ?pids table spec in
  Alcotest.(check (array int)) (label ^ ": encoded sort = stable comparator sort") expect perm;
  if Array.length kc.Key_codec.words > 0 then
    for k = 0 to n - 1 do
      if key0.(k) <> kc.Key_codec.words.(0).(perm.(k)) then
        Alcotest.failf "%s: sorted key0 mismatch at %d" label k
    done;
  (* the compiled comparator must induce the same total order *)
  let perm' = Introsort.sort_indices_by n ~cmp:(Key_codec.comparator kc) in
  Alcotest.(check (array int)) (label ^ ": Key_codec.comparator parity") expect perm'

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)
(* ------------------------------------------------------------------ *)

let test_randomized () =
  let rng = Rng.create 0xC0DEC in
  let pool = Task_pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      for iter = 0 to 119 do
        let n = 1 + Rng.int rng 400 in
        let table = mk_table rng n in
        let spec = random_spec rng in
        let pids =
          if Rng.bool rng then Some (Array.init n (fun _ -> Rng.int rng 6)) else None
        in
        (* tiny task size: forces many runs, multisequence selection and
           the OVC loser-tree merge even on small tables *)
        let task_size = 16 + Rng.int rng 64 in
        check_parity pool ~task_size ?pids table spec (Printf.sprintf "iter %d" iter)
      done)

let test_single_key_dimensions () =
  let rng = Rng.create 42 in
  let pool = Task_pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let n = 777 in
      let table = mk_table rng n in
      List.iter
        (fun c ->
          List.iter
            (fun (dir_label, mk) ->
              List.iter
                (fun nulls ->
                  let spec = [ mk ~nulls (Expr.Col c) ] in
                  check_parity pool ~task_size:32 table spec
                    (Printf.sprintf "col %s %s" c dir_label))
                [ Sort_spec.Nulls_default; Sort_spec.Nulls_first; Sort_spec.Nulls_last ])
            [
              ("asc", fun ~nulls e -> Sort_spec.asc ~nulls e);
              ("desc", fun ~nulls e -> Sort_spec.desc ~nulls e);
            ])
        [ "i"; "j"; "f"; "s"; "b"; "d" ])

let test_stability () =
  (* heavy duplication: every row of a 4-value key column ties massively;
     the encoded sort must keep ascending row ids within ties, exactly like
     the stable reference *)
  let pool = Task_pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create 7 in
      let n = 5_000 in
      let table =
        Table.create [ ("k", Column.ints (Array.init n (fun _ -> Rng.int rng 4))) ]
      in
      let spec = [ Sort_spec.asc (Expr.Col "k") ] in
      check_parity pool ~task_size:64 table spec "dup-heavy";
      check_parity pool ~task_size:64 table [ Sort_spec.desc (Expr.Col "k") ] "dup-heavy desc")

let test_edges () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let empty = Table.create [ ("a", Column.ints [||]) ] in
      check_parity pool ~task_size:16 empty [ Sort_spec.asc (Expr.Col "a") ] "n=0";
      let one = Table.create [ ("a", Column.ints [| 9 |]) ] in
      check_parity pool ~task_size:16 one [ Sort_spec.desc (Expr.Col "a") ] "n=1";
      (* empty spec: no words, no residual — identity permutation *)
      let t = Table.create [ ("a", Column.ints [| 3; 1; 2 |]) ] in
      let kc = Key_codec.compile t [] in
      let perm, _ =
        Parallel_sort.sort_encoded pool ~n:3 ~words:kc.Key_codec.words
          ?tie:kc.Key_codec.residual ()
      in
      Alcotest.(check (array int)) "empty spec is identity" [| 0; 1; 2 |] perm)

let test_ovc_merge_stress () =
  (* multi-word keys over many runs: exercises the loser tree's offset-value
     codes; the stats witness that most comparisons were OVC-decided *)
  let rng = Rng.create 99 in
  let pool = Task_pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let n = 30_000 in
      (* full-range int keys are unpackable (span overflows), so each takes
         its own word: a duplicate-heavy leading word plus two full-range
         words guarantees the multiword OVC merge actually runs *)
      let full_range () = Rng.int_in rng (-(max_int / 2)) (max_int / 2) in
      let table =
        Table.create
          [
            ("g", Column.ints (Array.init n (fun _ -> Rng.int rng 3)));
            ("j1", Column.ints (Array.init n (fun _ -> full_range ())));
            ("j2", Column.ints (Array.init n (fun _ -> full_range ())));
          ]
      in
      let spec =
        [ Sort_spec.asc (Expr.Col "g"); Sort_spec.desc (Expr.Col "j1"); Sort_spec.asc (Expr.Col "j2") ]
      in
      let kc = Key_codec.compile table spec in
      Alcotest.(check bool) "spec spans multiple words" true
        (Array.length kc.Key_codec.words > 1);
      Multiway.reset_ovc_stats ();
      check_parity pool ~task_size:512 table spec "ovc stress";
      let decided, scanned = Multiway.ovc_stats () in
      Alcotest.(check bool) "ovc decided some comparisons" true (decided > 0);
      Alcotest.(check bool)
        (Printf.sprintf "ovc decided (%d) dominates deep scans (%d)" decided scanned)
        true
        (decided > scanned))

let test_window_boundaries () =
  (* boundaries derived from the sorted leading word must split the
     permutation into maximal equal-partition segments *)
  let rng = Rng.create 11 in
  let n = 2_000 in
  let table = mk_table rng n in
  let over =
    Window_spec.over ~partition_by:[ Expr.Col "d" ]
      ~order_by:[ Sort_spec.desc (Expr.Col "f"); Sort_spec.asc (Expr.Col "s") ]
      ()
  in
  let perm, boundaries = Window_plan.order_permutation table ~over in
  let nb = Array.length boundaries in
  Alcotest.(check int) "boundaries start" 0 boundaries.(0);
  Alcotest.(check int) "boundaries end" n boundaries.(nb - 1);
  let part = Expr.compile table (Expr.Col "d") in
  let distinct = Hashtbl.create 64 in
  Array.iter (fun i -> Hashtbl.replace distinct (part i) ()) perm;
  Alcotest.(check int) "one segment per distinct partition value"
    (Hashtbl.length distinct) (nb - 1);
  for s = 0 to nb - 2 do
    let v = part perm.(boundaries.(s)) in
    for k = boundaries.(s) + 1 to boundaries.(s + 1) - 1 do
      if not (Value.equal v (part perm.(k))) then Alcotest.failf "segment %d not constant" s
    done;
    if s > 0 && Value.equal v (part perm.(boundaries.(s) - 1)) then
      Alcotest.failf "boundary %d splits equal partition values" s
  done;
  (* within each partition the inherited order must match the comparator *)
  let cmp = Sort_spec.comparator table [ Sort_spec.desc (Expr.Col "f"); Sort_spec.asc (Expr.Col "s") ] in
  for s = 0 to nb - 2 do
    for k = boundaries.(s) + 1 to boundaries.(s + 1) - 1 do
      let c = cmp perm.(k - 1) perm.(k) in
      if c > 0 || (c = 0 && perm.(k - 1) > perm.(k)) then
        Alcotest.failf "partition %d unsorted at offset %d" s k
    done
  done

let test_fast_key_nulls_spelling () =
  (* satellite fix: on NULL-free columns every nulls_order spelling is
     equivalent, so explicit NULLS LAST on ASC (and any other spelling)
     must still take the fast paths *)
  let t =
    Table.create [ ("a", Column.ints [| 3; 1; 2 |]); ("f", Column.floats [| 1.; 3.; 2. |]) ]
  in
  List.iter
    (fun nulls ->
      Alcotest.(check bool) "single_int_key any nulls spelling" true
        (Sort_spec.single_int_key t [ Sort_spec.asc ~nulls (Expr.Col "a") ] <> None);
      Alcotest.(check bool) "fast_key int any nulls spelling" true
        (Sort_spec.fast_key t [ Sort_spec.desc ~nulls (Expr.Col "a") ] <> None);
      Alcotest.(check bool) "fast_key float any nulls spelling" true
        (Sort_spec.fast_key t [ Sort_spec.asc ~nulls (Expr.Col "f") ] <> None))
    [ Sort_spec.Nulls_default; Sort_spec.Nulls_first; Sort_spec.Nulls_last ];
  (* NULL-bearing columns must still never match *)
  let mask = Bitset.create 3 in
  Bitset.set mask 1;
  let tn = Table.create [ ("a", Column.make ~nulls:mask (Column.Ints [| 3; 1; 2 |])) ] in
  Alcotest.(check bool) "nullable column rejected" true
    (Sort_spec.single_int_key tn [ Sort_spec.asc (Expr.Col "a") ] = None)

let test_codec_shape () =
  (* a partitioned (int, float DESC, string) spec must compile fully into
     words: no residual, pid divisor present *)
  let rng = Rng.create 5 in
  let n = 1_000 in
  let table = mk_table rng n in
  let pids = Array.init n (fun _ -> Rng.int rng 7) in
  let spec =
    [ Sort_spec.asc (Expr.Col "d"); Sort_spec.desc (Expr.Col "f"); Sort_spec.asc (Expr.Col "s") ]
  in
  let kc = Key_codec.compile ~pids table spec in
  Alcotest.(check int) "all keys covered" kc.Key_codec.total kc.Key_codec.covered;
  Alcotest.(check bool) "no residual" true (kc.Key_codec.residual = None);
  Alcotest.(check bool) "pid divisor present" true (kc.Key_codec.pid_divisor <> None);
  Alcotest.(check bool) "words nonempty" true (Array.length kc.Key_codec.words > 0);
  (* intervals / mixed-type keys cannot be expressed: residual takes over *)
  let mixed =
    [ Sort_spec.asc
        (Expr.Case
           ( [ (Expr.Ge (Expr.Col "i", Expr.Const (Value.Int 0)), Expr.Col "i") ],
             Some (Expr.Col "s") )) ]
  in
  let kc' = Key_codec.compile table mixed in
  Alcotest.(check bool) "mixed-type key leaves a residual" true (kc'.Key_codec.residual <> None)

let () =
  Alcotest.run "keys"
    [
      ( "parity",
        [
          Alcotest.test_case "randomized specs/tables/pids" `Quick test_randomized;
          Alcotest.test_case "single-key dimension sweep" `Quick test_single_key_dimensions;
          Alcotest.test_case "stability under heavy ties" `Quick test_stability;
          Alcotest.test_case "edge sizes and empty spec" `Quick test_edges;
        ] );
      ( "ovc",
        [ Alcotest.test_case "multi-run multi-word merge stress" `Quick test_ovc_merge_stress ] );
      ( "plan",
        [ Alcotest.test_case "boundaries from sorted word0" `Quick test_window_boundaries ] );
      ( "spec",
        [
          Alcotest.test_case "fast-path nulls spellings" `Quick test_fast_key_nulls_spelling;
          Alcotest.test_case "codec coverage shape" `Quick test_codec_shape;
        ] );
    ]
