(* The cost-based evaluator choice: model shape (monotonicity, the decision
   floor, legacy defaults), crossover direction checked against measured
   wall time at two sizes, forced-choice parity across frame kinds and
   exclusions through [Executor.run ?evaluator], the strict rejection of
   unsupported (function, backend) pairs, and the HOLIWIN_EVALUATOR env
   override. *)

open Holistic_storage
open Holistic_window
module Wf = Window_func
module Ws = Window_spec
module Ec = Evaluator_choice
module Cost = Cost_model
module Rng = Holistic_util.Rng
module Obs = Holistic_obs.Obs
module Task_pool = Holistic_parallel.Task_pool

let inputs ?(rows = 10_000) ?(nparts = 1) ?(frame_rows = 100.0) ?(monotonic = true)
    ?(holed = false) ?(cls = Ec.C_rank) () =
  {
    Cost.rows;
    nparts;
    frame_rows;
    monotonic;
    holed;
    cls;
    task_size = Task_pool.default_task_size;
    fanout = 32;
  }

let c = Cost.default

(* ------------------------------------------------------------------ *)
(* Model shape                                                         *)
(* ------------------------------------------------------------------ *)

let test_monotonic () =
  let classes = [ Ec.C_plain_agg; Ec.C_distinct_count; Ec.C_rank; Ec.C_select; Ec.C_mode ] in
  List.iter
    (fun cls ->
      List.iter
        (fun nm ->
          if Ec.supports nm cls ~holed:false then begin
            (* non-decreasing in partition rows at fixed frame *)
            List.iter
              (fun (r0, r1) ->
                let a = Cost.cost c (inputs ~rows:r0 ~cls ()) nm in
                let b = Cost.cost c (inputs ~rows:r1 ~cls ()) nm in
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s rows %d->%d" (Ec.class_to_string cls) (Ec.to_string nm)
                     r0 r1)
                  true (a <= b))
              [ (1_000, 4_000); (4_000, 64_000); (64_000, 1_000_000) ];
            (* non-decreasing in frame extent at fixed rows *)
            List.iter
              (fun (w0, w1) ->
                let a = Cost.cost c (inputs ~frame_rows:w0 ~cls ()) nm in
                let b = Cost.cost c (inputs ~frame_rows:w1 ~cls ()) nm in
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s frame %.0f->%.0f" (Ec.class_to_string cls)
                     (Ec.to_string nm) w0 w1)
                  true (a <= b))
              [ (2.0, 64.0); (64.0, 1_000.0); (1_000.0, 5_000.0) ]
          end)
        Ec.all)
    classes

let test_floor_and_default () =
  (* tiny input: a naive rank scan is predicted cheaper than MST, but the
     saving is microseconds — the floor keeps the legacy default *)
  let small = Cost.choose c (inputs ~rows:100 ~frame_rows:2.0 ()) in
  Alcotest.(check bool) "small input keeps default" true (small.Cost.chosen = small.Cost.default);
  Alcotest.(check bool) "rank default is mst" true (small.Cost.default = Ec.Mst);
  (* same shape, two hundred thousand rows: the saving dwarfs the floor *)
  let big = Cost.choose c (inputs ~rows:200_000 ~nparts:8 ~frame_rows:2.0 ()) in
  Alcotest.(check bool) "large input switches" true (big.Cost.chosen <> big.Cost.default);
  Alcotest.(check bool) "tiny frames go naive" true (big.Cost.chosen = Ec.Naive);
  (* every candidate got a score, including the default and the winner *)
  Alcotest.(check bool) "scores cover chosen+default" true
    (List.mem_assoc big.Cost.chosen big.Cost.scores
    && List.mem_assoc big.Cost.default big.Cost.scores);
  (* legacy defaults *)
  Alcotest.(check bool) "plain agg default" true
    (Cost.legacy_default Ec.C_plain_agg ~holed:false = Ec.Segment_tree);
  Alcotest.(check bool) "mode default" true
    (Cost.legacy_default Ec.C_mode ~holed:false = Ec.Incremental);
  Alcotest.(check bool) "holed mode default" true
    (Cost.legacy_default Ec.C_mode ~holed:true = Ec.Naive);
  Alcotest.(check bool) "rank default" true (Cost.legacy_default Ec.C_rank ~holed:false = Ec.Mst)

let test_estimate_frame () =
  let back n = Ws.rows_between (Ws.preceding n) Ws.Current_row in
  let w, mono = Cost.estimate_frame (Ws.over ~frame:(back 99) ()) ~rows:10_000 in
  Alcotest.(check (float 0.0)) "constant ROWS offsets are exact" 100.0 w;
  Alcotest.(check bool) "constant offsets are monotonic" true mono;
  let w, mono = Cost.estimate_frame (Ws.over ()) ~rows:10_000 in
  Alcotest.(check (float 0.0)) "default frame averages n/2" 5_000.0 w;
  Alcotest.(check bool) "default frame is monotonic" true mono;
  let data_dep = Ws.rows_between (Ws.Preceding (Expr.Col "g")) Ws.Current_row in
  let _, mono = Cost.estimate_frame (Ws.over ~frame:data_dep ()) ~rows:10_000 in
  Alcotest.(check bool) "data-dependent offsets lose monotonicity" false mono

(* ------------------------------------------------------------------ *)
(* Crossover direction vs measured wall time                           *)
(* ------------------------------------------------------------------ *)

let make_table rng n =
  let ts = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = ts.(i) in
    ts.(i) <- ts.(j);
    ts.(j) <- t
  done;
  Table.create [ ("ts", Column.ints ts) ]

let seconds f =
  let t0 = Obs.now_ns () in
  let _ = f () in
  float_of_int (Obs.now_ns () - t0) *. 1e-9

(* At each size: a 2-row frame must favour naive, the default (growing,
   ~n/2) frame must favour MST — both in the model's predictions and in a
   measured run.  The gaps are order-of-magnitude, so the wall-clock leg
   is robust to CI noise. *)
let test_crossover () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      List.iter
        (fun n ->
          let rng = Rng.create (17 * n) in
          let table = make_table rng n in
          let tiny = Ws.over ~order_by:[ Sort_spec.asc (Expr.Col "ts") ]
              ~frame:(Ws.rows_between (Ws.preceding 1) Ws.Current_row) ()
          in
          let growing = Ws.over ~order_by:[ Sort_spec.asc (Expr.Col "ts") ] () in
          let run over ev = Executor.run ~pool ~evaluator:ev table ~over [ Wf.rank ~name:"r" [] ] in
          List.iter
            (fun (label, over, fast, slow) ->
              let frame_rows, monotonic = Cost.estimate_frame over ~rows:n in
              let i = inputs ~rows:n ~frame_rows ~monotonic () in
              Alcotest.(check bool)
                (Printf.sprintf "n=%d %s: model prefers %s" n label (Ec.to_string fast))
                true
                (Cost.cost c i fast < Cost.cost c i slow);
              ignore (run over fast) (* warm both paths before timing *);
              ignore (run over slow);
              let t_fast = seconds (fun () -> run over fast) in
              let t_slow = seconds (fun () -> run over slow) in
              Alcotest.(check bool)
                (Printf.sprintf "n=%d %s: measured %s %.4fs < %s %.4fs" n label
                   (Ec.to_string fast) t_fast (Ec.to_string slow) t_slow)
                true (t_fast < t_slow))
            [
              ("2-row frame", tiny, Ec.Naive, Ec.Mst);
              ("growing frame", growing, Ec.Mst, Ec.Naive);
            ])
        [ 8_000; 16_000 ])

(* ------------------------------------------------------------------ *)
(* Forced-choice parity across frame kinds and exclusions              *)
(* ------------------------------------------------------------------ *)

let value_identical a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> compare a b = 0

(* Dyadic float values keep SUM/AVG exact under any summation order, so
   backend parity can demand bit identity. *)
let parity_table rng n =
  let ints lo hi = Array.init n (fun _ -> Rng.int_in rng lo hi) in
  Table.create
    [
      ("g", Column.ints (ints 0 2));
      ("k", Column.ints (ints (-4) 9));
      ("f", Column.floats (Array.init n (fun _ -> float_of_int (Rng.int_in rng (-6) 8) /. 2.0)));
    ]

let parity_items () =
  [
    Wf.count ~distinct:true ~name:"dc" (Expr.Col "k");
    Wf.sum ~distinct:true ~name:"ds" (Expr.Col "f");
    Wf.sum ~name:"s" (Expr.Col "f");
    Wf.median ~name:"med" (Expr.Col "f");
    Wf.rank ~name:"r" [];
    Wf.dense_rank ~name:"d" [];
    Wf.mode ~name:"mo" (Expr.Col "k");
  ]

let test_forced_parity () =
  let pool = Task_pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create 90125 in
      let table = parity_table rng 257 in
      let frames =
        [
          ("rows", Some (Ws.rows_between (Ws.preceding 3) (Ws.following 1)));
          ("groups", Some (Ws.groups_between (Ws.preceding 1) Ws.Current_row));
          ( "range",
            Some (Ws.range_between (Ws.Preceding (Expr.Const (Value.Int 2))) Ws.Current_row) );
          ( "excl-current",
            Some
              (Ws.rows_between ~exclusion:Ws.Exclude_current_row (Ws.preceding 4)
                 (Ws.following 2)) );
          ( "excl-ties",
            Some (Ws.groups_between ~exclusion:Ws.Exclude_ties (Ws.preceding 2) (Ws.following 1))
          );
          ("default", None);
        ]
      in
      List.iter
        (fun (fname, frame) ->
          let over =
            Ws.over
              ~partition_by:[ Expr.Col "g" ]
              ~order_by:[ Sort_spec.asc (Expr.Col "k") ]
              ?frame ()
          in
          let holed =
            match frame with
            | Some f -> f.Ws.exclusion <> Ws.Exclude_no_others
            | None -> false
          in
          let baseline = Executor.run ~pool table ~over (parity_items ()) in
          List.iter
            (fun ev ->
              let items =
                List.filter
                  (fun it -> Ec.supports ev (Ec.classify it) ~holed)
                  (parity_items ())
              in
              if items <> [] then begin
                let out = Executor.run ~pool ~evaluator:ev table ~over items in
                List.iter
                  (fun (it : Wf.t) ->
                    let b = Table.column baseline it.Wf.name in
                    let o = Table.column out it.Wf.name in
                    for r = 0 to Table.nrows table - 1 do
                      let vb = Column.get b r and vo = Column.get o r in
                      if not (value_identical vb vo) then
                        Alcotest.failf "frame %s backend %s item %s row %d: %s vs %s" fname
                          (Ec.to_string ev) it.Wf.name r (Value.to_string vb)
                          (Value.to_string vo)
                    done)
                  items
              end)
            Ec.all)
        frames)

(* ------------------------------------------------------------------ *)
(* Strict rejection and the env override                               *)
(* ------------------------------------------------------------------ *)

let check_invalid_arg ~substring f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument (%s)" substring
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %S" msg substring)
        true
        (let n = String.length msg and m = String.length substring in
         let rec go i = i + m <= n && (String.sub msg i m = substring || go (i + 1)) in
         m = 0 || go 0)

let test_rejections () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create 5 in
      let table = parity_table rng 40 in
      let over = Ws.over ~order_by:[ Sort_spec.asc (Expr.Col "k") ] () in
      (* a segment tree cannot evaluate rank: strict knob, clear message *)
      check_invalid_arg ~substring:"does not support rank" (fun () ->
          Executor.run ~pool ~evaluator:Ec.Segment_tree table ~over [ Wf.rank ~name:"r" [] ]);
      (* incremental backends cannot cross exclusion holes *)
      let holed =
        Ws.over
          ~order_by:[ Sort_spec.asc (Expr.Col "k") ]
          ~frame:(Ws.rows_between ~exclusion:Ws.Exclude_current_row (Ws.preceding 3) Ws.Current_row)
          ()
      in
      check_invalid_arg ~substring:"exclusion holes" (fun () ->
          Executor.run ~pool ~evaluator:Ec.Incremental table ~over:holed
            [ Wf.count ~distinct:true ~name:"dc" (Expr.Col "k") ]);
      (* ...but the same pair without holes runs fine *)
      ignore
        (Executor.run ~pool ~evaluator:Ec.Incremental table ~over
           [ Wf.count ~distinct:true ~name:"dc" (Expr.Col "k") ]))

let with_env value f =
  let old = Sys.getenv_opt "HOLIWIN_EVALUATOR" in
  Unix.putenv "HOLIWIN_EVALUATOR" value;
  Fun.protect ~finally:(fun () -> Unix.putenv "HOLIWIN_EVALUATOR" (Option.value ~default:"" old)) f

let counter trace name = Option.value ~default:0 (List.assoc_opt name trace.Obs.counters)

let test_env_override () =
  let pool = Task_pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Task_pool.shutdown pool)
    (fun () ->
      let rng = Rng.create 6 in
      let table = parity_table rng 60 in
      let over = Ws.over ~order_by:[ Sort_spec.asc (Expr.Col "k") ] () in
      let items = [ Wf.sum ~name:"s" (Expr.Col "f"); Wf.rank ~name:"r" [] ] in
      (* the ISSUE's underscore spelling must parse *)
      with_env "segment_tree" (fun () ->
          let _, trace = Obs.with_capture (fun () -> Executor.run ~pool table ~over items) in
          (* SUM is forced onto the segment tree; rank is ineligible for it,
             so the cost model picks (and at 60 rows the floor keeps MST) *)
          Alcotest.(check int) "sum forced to segment tree" 1
            (counter trace "plan.evaluator.segment-tree");
          Alcotest.(check int) "rank left to the cost model" 1 (counter trace "plan.evaluator.mst"));
      with_env "bogus" (fun () ->
          check_invalid_arg ~substring:"unknown HOLIWIN_EVALUATOR" (fun () ->
              Executor.run ~pool table ~over items));
      (* empty value = unset *)
      with_env "" (fun () -> ignore (Executor.run ~pool table ~over items)))

let test_name_round_trip () =
  List.iter
    (fun nm ->
      Alcotest.(check bool)
        (Ec.to_string nm ^ " round-trips")
        true
        (Ec.of_string (Ec.to_string nm) = Some nm
        && Ec.of_algorithm (Ec.to_algorithm nm) = Some nm))
    Ec.all;
  Alcotest.(check bool) "underscores accepted" true (Ec.of_string "mst_no_cascade" = Some Ec.Mst_no_cascade);
  Alcotest.(check bool) "ost alias" true (Ec.of_string "order-statistic" = Some Ec.Order_statistic);
  Alcotest.(check bool) "auto is not a backend" true (Ec.of_algorithm Wf.Auto = None)

(* A cached structure's build cost is sunk (a session kept it across
   queries): with a data-dependent frame (incremental drivers priced out)
   at n = 262144 / frame 1200, a naive scan beats building an MST — the
   gap is ~40 ms, far past the floor — but an already-built MST's probes
   alone beat the scan. The same inputs flip. *)
let test_sunk_flip () =
  let i = inputs ~rows:262_144 ~frame_rows:1_200.0 ~monotonic:false () in
  let cold = Cost.choose c i in
  Alcotest.(check bool) "cold pick is naive" true (cold.Cost.chosen = Ec.Naive);
  let warm = Cost.choose ~sunk:[ Ec.Mst ] c i in
  Alcotest.(check bool) "sunk mst wins" true (warm.Cost.chosen = Ec.Mst);
  Alcotest.(check bool) "sunk drops the build term" true
    (Cost.cost ~sunk:[ Ec.Mst ] c i Ec.Mst < Cost.cost c i Ec.Mst);
  Alcotest.(check (float 1e-6)) "non-sunk backends unchanged"
    (Cost.cost c i Ec.Naive)
    (Cost.cost ~sunk:[ Ec.Mst ] c i Ec.Naive)

let () =
  Alcotest.run "cost"
    [
      ( "model",
        [
          Alcotest.test_case "cost is monotone in rows and frame" `Quick test_monotonic;
          Alcotest.test_case "decision floor and legacy defaults" `Quick test_floor_and_default;
          Alcotest.test_case "frame-shape estimation" `Quick test_estimate_frame;
          Alcotest.test_case "sunk build cost flips the choice" `Quick test_sunk_flip;
          Alcotest.test_case "names round-trip" `Quick test_name_round_trip;
        ] );
      ( "crossover",
        [ Alcotest.test_case "model direction matches wall time" `Slow test_crossover ] );
      ( "parity",
        [
          Alcotest.test_case "forced backends agree across frames" `Quick test_forced_parity;
        ] );
      ( "knobs",
        [
          Alcotest.test_case "unsupported pairs rejected" `Quick test_rejections;
          Alcotest.test_case "HOLIWIN_EVALUATOR override" `Quick test_env_override;
        ] );
    ]
