(* Multi-clause window pipeline: value parity of the shared plan against
   independent single-spec runs, sharing statistics (sorts, encodes, tree
   builds), Build_cache unit behaviour and deterministic evaluation order. *)

open Holistic_storage
open Holistic_window
module Wf = Window_func
module Rng = Holistic_util.Rng
module Sql = Holistic_sql.Sql

let value_eq a b =
  match a, b with
  | Value.Float x, Value.Float y ->
      (Float.is_nan x && Float.is_nan y) || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  | _ -> (Value.is_null a && Value.is_null b) || Value.equal a b

(* grp: few partitions; ts: distinct shuffled ints (tie-free order key);
   x: floats with NULLs; k: small ints (ties, extends ts to (ts, k)). *)
let make_table rng n =
  let grp = Array.init n (fun _ -> Rng.int rng 4) in
  let ts = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = ts.(i) in
    ts.(i) <- ts.(j);
    ts.(j) <- t
  done;
  let x =
    Array.init n (fun _ ->
        if Rng.int rng 8 = 0 then Value.Null else Value.Float (float_of_int (Rng.int rng 50)))
  in
  let k = Array.init n (fun _ -> Rng.int rng 10) in
  Table.create
    [
      ("grp", Column.ints grp);
      ("ts", Column.ints ts);
      ("x", Column.of_values x);
      ("k", Column.ints k);
    ]

let nparts table =
  let c = Table.column table "grp" in
  let seen = Hashtbl.create 8 in
  for i = 0 to Table.nrows table - 1 do
    Hashtbl.replace seen (Column.get c i) ()
  done;
  Hashtbl.length seen

(* plan over all clauses vs one Executor.run per clause *)
let check_parity table (clauses : Window_plan.clause list) =
  let planned = Window_plan.run table clauses in
  List.iter
    (fun (c : Window_plan.clause) ->
      let solo = Executor.run table ~over:c.spec c.items in
      List.iter
        (fun (item : Wf.t) ->
          let pc = Table.column planned item.name and sc = Table.column solo item.name in
          for i = 0 to Table.nrows table - 1 do
            if not (value_eq (Column.get pc i) (Column.get sc i)) then
              Alcotest.failf "%s row %d: plan %s <> solo %s" item.name i
                (Value.to_string (Column.get pc i))
                (Value.to_string (Column.get sc i))
          done)
        c.items)
    clauses

let grp = Expr.Col "grp"
let ts = Expr.Col "ts"
let x = Expr.Col "x"
let k = Expr.Col "k"
let by_ts = [ Sort_spec.asc ts ]
let by_ts_k = [ Sort_spec.asc ts; Sort_spec.asc k ]
let by_x_desc = [ Sort_spec.desc x ]
let rows_back n = Window_spec.rows_between (Window_spec.preceding n) Window_spec.Current_row

(* ------------------------------------------------------------------ *)
(* Parity                                                              *)
(* ------------------------------------------------------------------ *)

let test_parity_mixed_specs () =
  let rng = Rng.create 7 in
  let table = make_table rng 500 in
  let clauses =
    [
      (* same PARTITION BY + same ORDER BY, default frame *)
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ();
        items =
          [
            Wf.rank ~name:"c1_rank" [];
            Wf.row_number ~name:"c1_rn" [];
            Wf.sum ~name:"c1_sum" x;
          ];
      };
      (* same (partition, order), different frame *)
      {
        Window_plan.spec =
          Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ~frame:(rows_back 3) ();
        items =
          [
            Wf.cume_dist ~name:"c2_cd" [];
            Wf.median ~name:"c2_med" x;
            Wf.count ~distinct:true ~name:"c2_dk" k;
          ];
      };
      (* order extends c1's by a second key: full-sort sharing via prefix *)
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts_k ();
        items = [ Wf.lead ~name:"c3_lead" x; Wf.dense_rank ~name:"c3_dr" [] ];
      };
      (* same partition, incompatible order: partial-sort sharing *)
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_x_desc ();
        items =
          [
            Wf.first_value ~ignore_nulls:true ~name:"c4_fv" x;
            Wf.percent_rank ~name:"c4_pr" [];
          ];
      };
      (* fully disjoint: no partitioning *)
      {
        Window_plan.spec = Window_spec.over ~order_by:by_ts ~frame:(rows_back 10) ();
        items = [ Wf.avg ~name:"c5_avg" x ];
      };
      (* fully disjoint: different PARTITION BY, no order *)
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ k ] ();
        items = [ Wf.count_star ~name:"c6_n" () ];
      };
    ]
  in
  check_parity table clauses

let test_parity_sql_query () =
  let rng = Rng.create 21 in
  let table = make_table rng 300 in
  let got =
    Sql.query ~tables:[ ("t", table) ]
      "select rank() over w as r,\n\
      \       sum(x) over (partition by grp order by ts rows between 5 preceding and current row) as s,\n\
      \       row_number() over (partition by grp order by ts, k) as rn\n\
       from t window w as (partition by grp order by ts)"
  in
  let expect_r =
    Executor.run table
      ~over:(Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ())
      [ Wf.rank ~name:"r" [] ]
  in
  let expect_s =
    Executor.run table
      ~over:(Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ~frame:(rows_back 5) ())
      [ Wf.sum ~name:"s" x ]
  in
  let expect_rn =
    Executor.run table
      ~over:(Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts_k ())
      [ Wf.row_number ~name:"rn" [] ]
  in
  List.iter
    (fun (name, expected) ->
      let gc = Table.column got name and ec = Table.column expected name in
      for i = 0 to Table.nrows table - 1 do
        if not (value_eq (Column.get gc i) (Column.get ec i)) then
          Alcotest.failf "sql %s row %d differs" name i
      done)
    [ ("r", expect_r); ("s", expect_s); ("rn", expect_rn) ]

(* ------------------------------------------------------------------ *)
(* Sharing statistics                                                  *)
(* ------------------------------------------------------------------ *)

let test_tree_builds_drop_to_one () =
  let rng = Rng.create 3 in
  let table = make_table rng 400 in
  let np = nparts table in
  let clause frame name =
    {
      Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ?frame ();
      items = [ Wf.rank ~name [] ];
    }
  in
  let clauses =
    [ clause None "r_a"; clause (Some (rows_back 3)) "r_b"; clause (Some (rows_back 7)) "r_c" ]
  in
  let _, stats = Window_plan.run_with_stats table clauses in
  Alcotest.(check int) "one stage" 1 stats.Window_plan.stages;
  Alcotest.(check int) "one partition pass" 1 stats.Window_plan.partition_passes;
  Alcotest.(check int) "one full sort" 1 stats.Window_plan.full_sorts;
  Alcotest.(check int) "no partial sorts" 0 stats.Window_plan.partial_sorts;
  Alcotest.(check int) "two clauses reuse the sort" 2 stats.Window_plan.reused_sorts;
  (* one rank-codes MST and one encode per partition, shared by all three *)
  Alcotest.(check int) "tree builds = partitions" np stats.Window_plan.tree_builds;
  Alcotest.(check int) "encode builds = partitions" np stats.Window_plan.encode_builds;
  (* per-spec evaluation builds k trees per partition *)
  let solo_trees =
    List.fold_left
      (fun acc (c : Window_plan.clause) ->
        let _, s = Window_plan.run_with_stats table [ c ] in
        acc + s.Window_plan.tree_builds)
      0 clauses
  in
  Alcotest.(check int) "solo path builds 3x" (3 * np) solo_trees

let test_one_encode_for_named_window () =
  let rng = Rng.create 11 in
  let table = make_table rng 400 in
  let np = nparts table in
  (* rank + percent_rank + cume_dist + median over one named window: one
     rank-codes encode/tree (shared by the three rank items) plus one
     selection encode/tree for the median's value order *)
  let clauses =
    [
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ();
        items =
          [
            Wf.rank ~name:"w_rank" [];
            Wf.percent_rank ~name:"w_pr" [];
            Wf.cume_dist ~name:"w_cd" [];
            Wf.median ~name:"w_med" x;
          ];
      };
    ]
  in
  let _, stats = Window_plan.run_with_stats table clauses in
  Alcotest.(check int) "2 encodes per partition" (2 * np) stats.Window_plan.encode_builds;
  Alcotest.(check int) "2 trees per partition" (2 * np) stats.Window_plan.tree_builds;
  check_parity table clauses

let test_partial_sort_stats () =
  let rng = Rng.create 5 in
  let table = make_table rng 600 in
  let clauses =
    [
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ();
        items = [ Wf.rank ~name:"p1" [] ];
      };
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts_k ();
        items = [ Wf.rank ~name:"p2" [] ];
      };
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_x_desc ();
        items = [ Wf.rank ~name:"p3" [] ];
      };
    ]
  in
  let _, stats = Window_plan.run_with_stats table clauses in
  (* [ts] is a prefix of [ts, k]: both live in the (ts, k) stage; [x desc]
     re-sorts within the inherited partition boundaries *)
  Alcotest.(check int) "two stages" 2 stats.Window_plan.stages;
  Alcotest.(check int) "one full sort" 1 stats.Window_plan.full_sorts;
  Alcotest.(check int) "one partial sort" 1 stats.Window_plan.partial_sorts;
  Alcotest.(check int) "prefix clause reuses" 1 stats.Window_plan.reused_sorts;
  Alcotest.(check int) "one partition pass" 1 stats.Window_plan.partition_passes;
  check_parity table clauses

(* ------------------------------------------------------------------ *)
(* Build_cache unit behaviour                                          *)
(* ------------------------------------------------------------------ *)

let test_build_cache_unit () =
  let counters = Build_cache.fresh_counters () in
  let cache = Build_cache.create ~counters () in
  let builds = ref 0 in
  let build () =
    incr builds;
    Holistic_core.Mst_width.create [| 0; 1; 0; 2 |]
  in
  let qual = Build_cache.unfiltered in
  let t1 = Build_cache.count_tree cache ~cls:Build_cache.Rank_codes ~order:by_ts ~qual ~sample:32 build in
  let t2 = Build_cache.count_tree cache ~cls:Build_cache.Rank_codes ~order:by_ts ~qual ~sample:32 build in
  Alcotest.(check int) "second lookup hits" 1 !builds;
  Alcotest.(check bool) "same tree shared" true (t1 == t2);
  (* distinct class, order or sample each miss *)
  ignore (Build_cache.count_tree cache ~cls:Build_cache.Row_codes ~order:by_ts ~qual ~sample:32 build);
  ignore (Build_cache.count_tree cache ~cls:Build_cache.Rank_codes ~order:by_ts_k ~qual ~sample:32 build);
  ignore (Build_cache.count_tree cache ~cls:Build_cache.Rank_codes ~order:by_ts ~qual ~sample:0 build);
  Alcotest.(check int) "three more builds" 4 !builds;
  Alcotest.(check int) "counter tracks tree builds" 4 (Build_cache.tree_build_count counters);
  let encodes = ref 0 in
  let enc () =
    incr encodes;
    Holistic_core.Rank_encode.of_ints [| 3; 1; 2 |]
  in
  ignore (Build_cache.encode cache ~order:by_ts enc);
  ignore (Build_cache.encode cache ~order:by_ts enc);
  Alcotest.(check int) "encode memoized" 1 !encodes;
  Alcotest.(check int) "counter tracks encodes" 1 (Build_cache.encode_build_count counters)

(* ------------------------------------------------------------------ *)
(* Deterministic evaluation order                                      *)
(* ------------------------------------------------------------------ *)

let test_first_appearance_error_order () =
  let rng = Rng.create 13 in
  let table = make_table rng 50 in
  let spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts () in
  (* both clauses raise on their first item; whichever clause appears first
     must win, every run *)
  let bad_mode =
    { Window_plan.spec; items = [ Wf.mode ~algorithm:Wf.Segment_tree ~name:"bm" x ] }
  in
  let bad_rank =
    { Window_plan.spec; items = [ Wf.rank ~algorithm:Wf.Incremental ~name:"br" [] ] }
  in
  let message clauses =
    match Window_plan.run table clauses with
    | exception Invalid_argument m -> m
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  for _ = 1 to 5 do
    Alcotest.(check bool)
      "mode-first raises the mode error" true
      (contains (message [ bad_mode; bad_rank ]) "mode supports");
    Alcotest.(check bool)
      "rank-first raises the rank error" true
      (contains (message [ bad_rank; bad_mode ]) "rank functions support")
  done

let test_repeated_runs_identical () =
  let rng = Rng.create 17 in
  let table = make_table rng 200 in
  let clauses =
    [
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_x_desc ();
        items = [ Wf.rank ~name:"d1" []; Wf.sum ~name:"d2" x ];
      };
      {
        Window_plan.spec = Window_spec.over ~partition_by:[ grp ] ~order_by:by_ts ();
        items = [ Wf.median ~name:"d3" x ];
      };
    ]
  in
  let run () =
    let t = Window_plan.run table clauses in
    List.map
      (fun name ->
        let c = Table.column t name in
        Array.init (Table.nrows t) (fun i -> Value.to_string (Column.get c i)))
      [ "d1"; "d2"; "d3" ]
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical across runs" true (a = b)

let () =
  Alcotest.run "window_plan"
    [
      ( "parity",
        [
          Alcotest.test_case "mixed specs vs solo runs" `Quick test_parity_mixed_specs;
          Alcotest.test_case "sql multi-clause query" `Quick test_parity_sql_query;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "tree builds drop k to 1" `Quick test_tree_builds_drop_to_one;
          Alcotest.test_case "one encode per named window" `Quick test_one_encode_for_named_window;
          Alcotest.test_case "partial-sort stats" `Quick test_partial_sort_stats;
          Alcotest.test_case "build cache memoization" `Quick test_build_cache_unit;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "first-appearance error order" `Quick test_first_appearance_error_order;
          Alcotest.test_case "repeated runs identical" `Quick test_repeated_runs_identical;
        ] );
    ]
