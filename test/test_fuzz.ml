(* Differential fuzzing of the whole window pipeline against the naive
   oracle ([Holistic_window.Reference]).

   Each case draws a random table (ints / floats / strings / dates, NULLs,
   heavy duplication) and a random set of OVER clauses — PARTITION BY,
   multi-key ORDER BY with directions and NULLS placement, ROWS / RANGE /
   GROUPS frames including data-dependent offsets, inverted (empty) bounds
   and all four exclusion modes — carrying items from every function class,
   then checks [Window_plan.run] row-for-row against [Reference.run].

   The run is reproducible: FUZZ_SEED and FUZZ_CASES override the defaults,
   and every failure message carries the seed and case number. *)

open Holistic_storage
open Holistic_window
module Wf = Window_func
module Ws = Window_spec
module Rng = Holistic_util.Rng
module Bitset = Holistic_util.Bitset
module Task_pool = Holistic_parallel.Task_pool

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* None = NULL-free (keeps the unboxed fast paths reachable). *)
let gen_nulls rng n =
  if Rng.bool rng then None
  else begin
    let b = Bitset.create n in
    let any = ref false in
    for i = 0 to n - 1 do
      if Rng.int rng 100 < 18 then begin
        Bitset.set b i;
        any := true
      end
    done;
    if !any then Some b else None
  end

let gen_table rng =
  let n = 1 + Rng.int rng 60 in
  let ints lo hi = Array.init n (fun _ -> Rng.int_in rng lo hi) in
  let pool = [| "a"; "b"; "c"; "dd"; "e" |] in
  let base_date = Value.date_of_ymd 2024 1 15 in
  Table.create
    [
      ("g", Column.ints (ints 0 3));
      ("k", Column.make ?nulls:(gen_nulls rng n) (Column.Ints (ints (-3) 8)));
      ( "f",
        (* dyadic halves keep SUM/AVG exact; the occasional NaN exercises
           the sort paths' total order (NaN once diverged between the raw
           float fast path and the comparator under DESC) *)
        Column.make ?nulls:(gen_nulls rng n)
          (Column.Floats
             (Array.init n (fun _ ->
                  if Rng.int rng 14 = 0 then Float.nan
                  else float_of_int (Rng.int_in rng (-4) 7) /. 2.0))) );
      ( "s",
        Column.make ?nulls:(gen_nulls rng n)
          (Column.Strings (Array.init n (fun _ -> pool.(Rng.int rng 5)))) );
      ( "d",
        Column.make ?nulls:(gen_nulls rng n)
          (Column.Dates (Array.init n (fun _ -> base_date + Rng.int rng 15))) );
    ]

let order_cols = [| "g"; "k"; "f"; "s"; "d" |]

let gen_key rng =
  let expr =
    if Rng.int rng 6 = 0 then Expr.Add (Expr.Col "k", Expr.Const (Value.Int 1))
    else Expr.Col order_cols.(Rng.int rng (Array.length order_cols))
  in
  let direction = if Rng.bool rng then Sort_spec.Asc else Sort_spec.Desc in
  let nulls =
    match Rng.int rng 3 with
    | 0 -> Sort_spec.Nulls_default
    | 1 -> Sort_spec.Nulls_first
    | _ -> Sort_spec.Nulls_last
  in
  { Sort_spec.expr; direction; nulls }

(* ROWS/GROUPS offsets: non-negative constants or a data-dependent,
   NULL-free non-negative column. *)
let gen_offset rng =
  if Rng.int rng 4 = 0 then Expr.Col "g" else Expr.Const (Value.Int (Rng.int rng 4))

let gen_rows_groups_bound rng =
  match Rng.int rng 6 with
  | 0 -> Ws.Unbounded_preceding
  | 1 | 2 -> Ws.Preceding (gen_offset rng)
  | 3 -> Ws.Current_row
  | 4 -> Ws.Following (gen_offset rng)
  | _ -> Ws.Unbounded_following

let gen_exclusion rng =
  match Rng.int rng 4 with
  | 0 -> Ws.Exclude_no_others
  | 1 -> Ws.Exclude_current_row
  | 2 -> Ws.Exclude_group
  | _ -> Ws.Exclude_ties

(* RANGE deltas typed to the single ordering column; occasionally negative,
   which inverts the bound (empty-frame coverage). *)
let range_delta rng col =
  match col with
  | "g" | "k" -> Expr.Const (Value.Int (Rng.int_in rng (-1) 3))
  | "f" -> Expr.Const (Value.Float (float_of_int (Rng.int_in rng (-1) 4) /. 2.0))
  | "d" ->
      if Rng.bool rng then Expr.Const (Value.Int (Rng.int rng 10))
      else Expr.Const (Value.Interval { Value.months = Rng.int rng 2; days = Rng.int rng 10 })
  | _ -> assert false

let gen_range_bound rng key_col ~allow_offset =
  match Rng.int rng (if allow_offset then 7 else 3) with
  | 0 -> Ws.Unbounded_preceding
  | 1 -> Ws.Current_row
  | 2 -> Ws.Unbounded_following
  | 3 | 4 -> Ws.Preceding (range_delta rng key_col)
  | _ -> Ws.Following (range_delta rng key_col)

let gen_frame rng (order : Sort_spec.t) =
  if Rng.int rng 4 = 0 then None (* default frame *)
  else begin
    let exclusion = gen_exclusion rng in
    let single_plain =
      (* RANGE offsets need exactly one plain column key of an arithmetic
         type *)
      match order with
      | [ { Sort_spec.expr = Expr.Col c; _ } ] when c <> "s" -> Some c
      | _ -> None
    in
    match Rng.int rng 3 with
    | 0 ->
        Some (Ws.rows_between ~exclusion (gen_rows_groups_bound rng) (gen_rows_groups_bound rng))
    | 1 ->
        Some
          (Ws.groups_between ~exclusion (gen_rows_groups_bound rng) (gen_rows_groups_bound rng))
    | _ ->
        let allow_offset = single_plain <> None in
        let col = Option.value single_plain ~default:"g" in
        Some
          (Ws.range_between ~exclusion
             (gen_range_bound rng col ~allow_offset)
             (gen_range_bound rng col ~allow_offset))
  end

let gen_filter rng =
  if Rng.int rng 10 < 3 then
    Some
      (match Rng.int rng 3 with
      | 0 -> Expr.Gt (Expr.Col "k", Expr.Const (Value.Int 2))
      | 1 -> Expr.Eq (Expr.Col "g", Expr.Const (Value.Int 1))
      | _ -> Expr.Is_not_null (Expr.Col "f"))
  else None

let num_cols = [| "g"; "k"; "f" |]
let any_col rng = Expr.Col order_cols.(Rng.int rng (Array.length order_cols))
let num_col rng = Expr.Col num_cols.(Rng.int rng (Array.length num_cols))
let percentiles = [| 0.0; 0.25; 0.5; 0.9; 1.0 |]

(* item-local ORDER BY: [] inherits the window order *)
let gen_local_order rng = if Rng.bool rng then [] else [ gen_key rng ]

let gen_item rng ~name =
  let filter = gen_filter rng in
  (* Naive is a universally supported engine algorithm; everything else is
     Auto (which itself dispatches to trees / incremental states). *)
  let algorithm = if Rng.int rng 5 = 0 then Wf.Naive else Wf.Auto in
  let order = gen_local_order rng in
  let ign rng = Rng.int rng 3 = 0 in
  match Rng.int rng 17 with
  | 0 -> Wf.count_star ?filter ~algorithm ~name ()
  | 1 -> Wf.count ?filter ~algorithm ~name (any_col rng)
  | 2 -> Wf.count ?filter ~algorithm ~distinct:true ~name (any_col rng)
  | 3 -> Wf.sum ?filter ~algorithm ~distinct:(Rng.bool rng) ~name (num_col rng)
  | 4 -> Wf.avg ?filter ~algorithm ~distinct:(Rng.bool rng) ~name (num_col rng)
  | 5 -> Wf.min_ ?filter ~algorithm ~name (any_col rng)
  | 6 -> Wf.max_ ?filter ~algorithm ~name (any_col rng)
  | 7 -> Wf.mode ?filter ~name (any_col rng)
  | 8 -> Wf.rank ?filter ~algorithm ~name order
  | 9 -> Wf.dense_rank ?filter ~algorithm ~name order
  | 10 -> Wf.row_number ?filter ~algorithm ~name order
  | 11 ->
      if Rng.bool rng then Wf.percent_rank ?filter ~algorithm ~name order
      else Wf.cume_dist ?filter ~algorithm ~name order
  | 12 -> Wf.ntile ?filter ~algorithm ~name (1 + Rng.int rng 4) order
  | 13 ->
      let p = percentiles.(Rng.int rng (Array.length percentiles)) in
      let o = [ gen_key rng ] in
      if Rng.bool rng then Wf.percentile_disc ?filter ~algorithm ~name p o
      else Wf.percentile_cont ?filter ~algorithm ~name p o
  | 14 ->
      if Rng.bool rng then
        Wf.first_value ?filter ~algorithm ~ignore_nulls:(ign rng) ~order ~name (any_col rng)
      else Wf.last_value ?filter ~algorithm ~ignore_nulls:(ign rng) ~order ~name (any_col rng)
  | 15 ->
      Wf.nth_value ?filter ~algorithm ~ignore_nulls:(ign rng) ~order ~from_last:(Rng.bool rng)
        ~name (1 + Rng.int rng 3) (any_col rng)
  | _ ->
      let arg_col = order_cols.(Rng.int rng (Array.length order_cols)) in
      (* the default must be type-compatible with the argument: the output
         column holds both *)
      let default =
        match Rng.int rng 3 with
        | 0 -> None
        | 1 -> Some (Expr.Col arg_col)
        | _ ->
            Some
              (Expr.Const
                 (match arg_col with
                 | "g" | "k" -> Value.Int 42
                 | "f" -> Value.Float 9.5
                 | "s" -> Value.String "zz"
                 | _ -> Value.Date (Value.date_of_ymd 2024 2 1)))
      in
      let mk = if Rng.bool rng then Wf.lead else Wf.lag in
      mk ?filter ~algorithm ~ignore_nulls:(ign rng) ~order ~offset:(Rng.int rng 4) ?default ~name
        (Expr.Col arg_col)

let partition_pool = [| []; [ Expr.Col "g" ]; [ Expr.Col "s" ]; [ Expr.Col "g"; Expr.Col "k" ] |]

let gen_clauses rng =
  (* two PARTITION BY candidates and one base order per case, so clauses
     share partition passes and sort prefixes often enough to exercise the
     plan's sharing machinery *)
  let pb0 = partition_pool.(Rng.int rng (Array.length partition_pool)) in
  let pb1 = partition_pool.(Rng.int rng (Array.length partition_pool)) in
  let base = [ gen_key rng; gen_key rng ] in
  let nclauses = 1 + Rng.int rng 3 in
  let names = ref 0 in
  List.init nclauses (fun _ ->
      let partition_by = if Rng.bool rng then pb0 else pb1 in
      let order_by =
        match Rng.int rng 5 with
        | 0 -> []
        | 1 | 2 -> [ List.hd base ]
        | 3 -> base
        | _ -> [ gen_key rng ]
      in
      let frame = gen_frame rng order_by in
      let spec = { Ws.partition_by; order_by; frame } in
      let items =
        List.init (1 + Rng.int rng 2) (fun _ ->
            let name = Printf.sprintf "w%d" !names in
            incr names;
            gen_item rng ~name)
      in
      { Window_plan.spec; items })

(* ------------------------------------------------------------------ *)
(* Comparison and diagnostics                                          *)
(* ------------------------------------------------------------------ *)

let value_eq a b =
  match a, b with
  | Value.Float x, Value.Float y ->
      (Float.is_nan x && Float.is_nan y)
      || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  | _ -> Value.equal a b

let bound_to_string = function
  | Ws.Unbounded_preceding -> "unbounded preceding"
  | Ws.Preceding e -> Expr.to_string e ^ " preceding"
  | Ws.Current_row -> "current row"
  | Ws.Following e -> Expr.to_string e ^ " following"
  | Ws.Unbounded_following -> "unbounded following"

let frame_to_string = function
  | None -> "<default>"
  | Some (f : Ws.frame) ->
      Printf.sprintf "%s between %s and %s%s"
        (match f.mode with Ws.Rows -> "rows" | Ws.Range -> "range" | Ws.Groups -> "groups")
        (bound_to_string f.start_bound) (bound_to_string f.end_bound)
        (match f.exclusion with
        | Ws.Exclude_no_others -> ""
        | Ws.Exclude_current_row -> " exclude current row"
        | Ws.Exclude_group -> " exclude group"
        | Ws.Exclude_ties -> " exclude ties")

let clause_to_string (c : Window_plan.clause) =
  Printf.sprintf "over (partition by [%s] order by [%s] frame %s) items [%s]"
    (String.concat "; " (List.map Expr.to_string c.spec.Ws.partition_by))
    (Sort_spec.to_string c.spec.Ws.order_by)
    (frame_to_string c.spec.Ws.frame)
    (String.concat "; "
       (List.map
          (fun (it : Wf.t) ->
            Printf.sprintf "%s=%s%s" it.name (Wf.class_name it)
              (match it.filter with None -> "" | Some e -> " filter " ^ Expr.to_string e))
          c.items))

let table_to_string table =
  let cols = Table.columns table in
  let buf = Buffer.create 256 in
  for r = 0 to Table.nrows table - 1 do
    Buffer.add_string buf (Printf.sprintf "  %2d:" r);
    List.iter
      (fun (name, c) ->
        Buffer.add_string buf (Printf.sprintf " %s=%s" name (Value.to_string (Column.get c r))))
      cols;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let describe table clauses =
  String.concat "\n" (List.map clause_to_string clauses) ^ "\n" ^ table_to_string table

let run_case ~pool rng idx ~seed =
  let rng = Rng.split rng in
  let table = gen_table rng in
  let clauses = gen_clauses rng in
  let expected = Reference.run table clauses in
  let task_size = [| 4; 16; 20_000 |].(Rng.int rng 3) in
  let fanout = [| 2; 4; 16 |].(Rng.int rng 3) in
  let actual =
    try Window_plan.run ~pool ~fanout ~task_size table clauses
    with e ->
      Alcotest.failf "FUZZ_SEED=%d case %d: engine raised %s\n%s" seed idx (Printexc.to_string e)
        (describe table clauses)
  in
  List.iter
    (fun (name, exp) ->
      let col = Table.column actual name in
      Array.iteri
        (fun r e ->
          let got = Column.get col r in
          if not (value_eq e got) then
            Alcotest.failf "FUZZ_SEED=%d case %d row %d item %s: oracle %s, engine %s\n%s" seed
              idx r name (Value.to_string e) (Value.to_string got) (describe table clauses))
        exp)
    expected

(* Exact (bit-level) value equality for the cross-domain determinism check:
   unlike [value_eq] there is no tolerance — the engine must produce the
   same bits at every domain count, NaNs and signed zeros included. *)
let value_identical a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> compare a b = 0

(* Morsel scheduling may change which domain evaluates a partition, never
   what gets computed or built: the same query must yield bit-identical
   columns and identical plan statistics (sorts, cache builds) at every
   domain count. *)
let determinism_case ~pools rng idx ~seed =
  let rng = Rng.split rng in
  let table = gen_table rng in
  let clauses = gen_clauses rng in
  let task_size = [| 4; 16; 20_000 |].(Rng.int rng 3) in
  let fanout = [| 2; 4; 16 |].(Rng.int rng 3) in
  let results =
    List.map
      (fun pool ->
        let n = Task_pool.size pool in
        try (n, Window_plan.run_with_stats ~pool ~fanout ~task_size table clauses)
        with e ->
          Alcotest.failf "FUZZ_SEED=%d determinism case %d: engine raised %s at %d domains\n%s"
            seed idx (Printexc.to_string e) n (describe table clauses))
      pools
  in
  match results with
  | [] -> ()
  | (n0, (t0, s0)) :: rest ->
      List.iter
        (fun (n, (t, s)) ->
          if s <> s0 then
            Alcotest.failf
              "FUZZ_SEED=%d determinism case %d: plan stats differ between %d and %d domains\n%s"
              seed idx n0 n (describe table clauses);
          List.iter
            (fun (name, c0) ->
              let c = Table.column t name in
              for r = 0 to Table.nrows t0 - 1 do
                let v0 = Column.get c0 r and v = Column.get c r in
                if not (value_identical v0 v) then
                  Alcotest.failf
                    "FUZZ_SEED=%d determinism case %d row %d col %s: %d domains gave %s, %d \
                     domains gave %s\n\
                     %s"
                    seed idx r name n0 (Value.to_string v0) n (Value.to_string v)
                    (describe table clauses)
              done)
            (Table.columns t0))
        rest

(* Forced-choice: re-run each case once per backend with every eligible
   Auto item pinned to it ([Evaluator_choice.supports] decides
   eligibility, so ineligible items keep their cost-based pick).  Any two
   backends that claim a (class, frame) cell must agree bit-for-bit — the
   generator's float column holds dyadic halves, so even SUM/AVG are exact
   under every summation order and the comparison needs no tolerance. *)
let force_backend nm (clauses : Window_plan.clause list) =
  List.map
    (fun (c : Window_plan.clause) ->
      let holed =
        match c.spec.Ws.frame with
        | Some f -> f.Ws.exclusion <> Ws.Exclude_no_others
        | None -> false
      in
      {
        c with
        Window_plan.items =
          List.map
            (fun (it : Wf.t) ->
              if it.Wf.algorithm = Wf.Auto && Evaluator_choice.supports nm (Evaluator_choice.classify it) ~holed
              then { it with Wf.algorithm = Evaluator_choice.to_algorithm nm }
              else it)
            c.items;
      })
    clauses

let forced_case ~pool rng idx ~seed =
  let rng = Rng.split rng in
  let table = gen_table rng in
  let clauses = gen_clauses rng in
  let task_size = [| 4; 16; 20_000 |].(Rng.int rng 3) in
  let fanout = [| 2; 4; 16 |].(Rng.int rng 3) in
  let baseline = Window_plan.run ~pool ~fanout ~task_size table clauses in
  List.iter
    (fun nm ->
      let forced = force_backend nm clauses in
      let out =
        try Window_plan.run ~pool ~fanout ~task_size table forced
        with e ->
          Alcotest.failf "FUZZ_SEED=%d forced case %d: backend %s raised %s\n%s" seed idx
            (Evaluator_choice.to_string nm) (Printexc.to_string e) (describe table forced)
      in
      List.iter
        (fun (name, c0) ->
          let c = Table.column out name in
          for r = 0 to Table.nrows baseline - 1 do
            let v0 = Column.get c0 r and v = Column.get c r in
            if not (value_identical v0 v) then
              Alcotest.failf
                "FUZZ_SEED=%d forced case %d row %d item %s: default gave %s, backend %s gave \
                 %s\n\
                 %s"
                seed idx r name (Value.to_string v0) (Evaluator_choice.to_string nm)
                (Value.to_string v) (describe table forced)
          done)
        (Table.columns baseline))
    Evaluator_choice.all

(* Out-of-core equivalence: the same case run under a memory governor —
   spilled sort runs, streamed MST builds — must produce bit-identical
   columns (floats compared by bits, NaNs included) and identical plan
   statistics. FUZZ_MEM_LIMIT picks the budget: the default "spill"
   forces every sort out of core regardless of size (the only way to
   engage the spill machinery on these tiny tables), K/M/G-suffixed
   bytes run the real budget arithmetic. *)
let mem_limit_case ~pool ~limit rng idx ~seed =
  let rng = Rng.split rng in
  let table = gen_table rng in
  let clauses = gen_clauses rng in
  let task_size = [| 4; 16; 20_000 |].(Rng.int rng 3) in
  let fanout = [| 2; 4; 16 |].(Rng.int rng 3) in
  let t0, s0 = Window_plan.run_with_stats ~pool ~fanout ~task_size table clauses in
  let budget, policy = Mem_governor.parse_limit limit in
  let governor = Mem_governor.create ?budget ~policy () in
  let t, s =
    Fun.protect
      ~finally:(fun () -> Mem_governor.cleanup governor)
      (fun () ->
        try Window_plan.run_with_stats ~pool ~fanout ~task_size ~governor table clauses
        with e ->
          Alcotest.failf "FUZZ_SEED=%d mem-limit case %d: engine raised %s under limit %s\n%s"
            seed idx (Printexc.to_string e) limit (describe table clauses))
  in
  if s <> s0 then
    Alcotest.failf "FUZZ_SEED=%d mem-limit case %d: plan stats differ under limit %s\n%s" seed
      idx limit (describe table clauses);
  List.iter
    (fun (name, c0) ->
      let c = Table.column t name in
      for r = 0 to Table.nrows t0 - 1 do
        let v0 = Column.get c0 r and v = Column.get c r in
        if not (value_identical v0 v) then
          Alcotest.failf
            "FUZZ_SEED=%d mem-limit case %d row %d col %s: unlimited gave %s, limit %s gave %s\n%s"
            seed idx r name (Value.to_string v0) limit (Value.to_string v)
            (describe table clauses)
      done)
    (Table.columns t0)

let () =
  let seed = env_int "FUZZ_SEED" 20240807 in
  let cases = env_int "FUZZ_CASES" 500 in
  let domain_cases = env_int "FUZZ_DOMAIN_CASES" 60 in
  let forced_cases = env_int "FUZZ_FORCED_CASES" 120 in
  let mem_cases = env_int "FUZZ_MEM_CASES" 120 in
  let mem_limit = Option.value (Sys.getenv_opt "FUZZ_MEM_LIMIT") ~default:"spill" in
  (* HOLIWIN_DOMAINS sizes the differential pool too, so the CI matrix leg
     runs the whole suite under real worker domains. *)
  let domains = env_int "HOLIWIN_DOMAINS" (min 4 (Domain.recommended_domain_count ())) in
  let run_all () =
    let pool = Task_pool.create domains in
    Fun.protect
      ~finally:(fun () -> Task_pool.shutdown pool)
      (fun () ->
        let rng = Rng.create seed in
        for idx = 0 to cases - 1 do
          run_case ~pool rng idx ~seed
        done)
  in
  let run_domains () =
    let pools = List.map Task_pool.create [ 1; 2; 4 ] in
    Fun.protect
      ~finally:(fun () -> List.iter Task_pool.shutdown pools)
      (fun () ->
        let rng = Rng.create (seed + 1) in
        for idx = 0 to domain_cases - 1 do
          determinism_case ~pools rng idx ~seed
        done)
  in
  let run_forced () =
    let pool = Task_pool.create domains in
    Fun.protect
      ~finally:(fun () -> Task_pool.shutdown pool)
      (fun () ->
        let rng = Rng.create (seed + 2) in
        for idx = 0 to forced_cases - 1 do
          forced_case ~pool rng idx ~seed
        done)
  in
  let run_mem () =
    let pool = Task_pool.create domains in
    Fun.protect
      ~finally:(fun () -> Task_pool.shutdown pool)
      (fun () ->
        let rng = Rng.create (seed + 3) in
        for idx = 0 to mem_cases - 1 do
          mem_limit_case ~pool ~limit:mem_limit rng idx ~seed
        done)
  in
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "window pipeline vs naive oracle (%d cases, seed %d, %d domains)"
               cases seed domains)
            `Quick run_all;
        ] );
      ( "determinism",
        [
          Alcotest.test_case
            (Printf.sprintf "bit-identical at 1/2/4 domains (%d cases, seed %d)" domain_cases
               seed)
            `Quick run_domains;
        ] );
      ( "forced-choice",
        [
          Alcotest.test_case
            (Printf.sprintf "every eligible backend bit-identical (%d cases, seed %d)"
               forced_cases seed)
            `Quick run_forced;
        ] );
      ( "mem-limit",
        [
          Alcotest.test_case
            (Printf.sprintf "bit-identical out of core, limit=%s (%d cases, seed %d)" mem_limit
               mem_cases seed)
            `Quick run_mem;
        ] );
    ]
