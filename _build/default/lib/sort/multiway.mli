(** K-way merging of sorted runs and rank-based run splitting.

    These are the building blocks of the balanced parallel multiway merge
    (Francis et al., the paper's §5.2): runs are split at global ranks so
    that independent output segments can be merged by independent tasks. *)

type run = { lo : int; hi : int }
(** A half-open, ascending-sorted segment of the source array. *)

val merge : src:int array -> runs:run array -> dst:int array -> dst_pos:int -> unit
(** Merges all runs of [src] ascending into [dst] starting at [dst_pos].
    Ties are broken by run index (earlier runs first), so the merge is stable
    with respect to run order. *)

val merge_pairs :
  key:int array ->
  payload:int array ->
  runs:run array ->
  dst_key:int array ->
  dst_payload:int array ->
  dst_pos:int ->
  unit
(** Like {!merge} but moves a payload array along with the keys, ordering by
    [(key, run index, position)] — stable for runs of a previously stable
    partition. *)

val total_length : run array -> int

val split_at_rank : src:int array -> runs:run array -> rank:int -> int array
(** [split_at_rank ~src ~runs ~rank] returns one cut position per run (an
    absolute index within that run's bounds) such that the cut prefixes
    together contain exactly [rank] elements and every prefix element sorts
    no later than every suffix element under the stable merge order of
    {!merge}. [rank] must lie in [\[0, total_length runs\]]. *)
