module Bs = Holistic_util.Binary_search

type run = { lo : int; hi : int }

let total_length runs = Array.fold_left (fun acc r -> acc + (r.hi - r.lo)) 0 runs

(* A small binary min-heap keyed by (value, run index); replace-top based
   k-way merge. Heap entries: per-slot value, run index and cursor. *)
type heap = {
  mutable size : int;
  vals : int array;
  run_of : int array;
  cursor : int array;
}

let heap_less h i j =
  h.vals.(i) < h.vals.(j) || (h.vals.(i) = h.vals.(j) && h.run_of.(i) < h.run_of.(j))

let heap_swap h i j =
  let sw (a : int array) =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  sw h.vals;
  sw h.run_of;
  sw h.cursor

let rec heap_down h i =
  let l = (2 * i) + 1 in
  if l < h.size then begin
    let c = if l + 1 < h.size && heap_less h (l + 1) l then l + 1 else l in
    if heap_less h c i then begin
      heap_swap h i c;
      heap_down h c
    end
  end

let rec heap_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_less h i parent then begin
      heap_swap h i parent;
      heap_up h parent
    end
  end

let heap_of_runs (src : int array) (runs : run array) =
  let k = Array.length runs in
  let h = { size = 0; vals = Array.make k 0; run_of = Array.make k 0; cursor = Array.make k 0 } in
  Array.iteri
    (fun r { lo; hi } ->
      if lo < hi then begin
        let i = h.size in
        h.vals.(i) <- src.(lo);
        h.run_of.(i) <- r;
        h.cursor.(i) <- lo;
        h.size <- h.size + 1;
        heap_up h i
      end)
    runs;
  h

let merge ~src ~runs ~dst ~dst_pos =
  let h = heap_of_runs src runs in
  let pos = ref dst_pos in
  while h.size > 0 do
    dst.(!pos) <- h.vals.(0);
    incr pos;
    let r = h.run_of.(0) in
    let c = h.cursor.(0) + 1 in
    if c < runs.(r).hi then begin
      h.vals.(0) <- src.(c);
      h.cursor.(0) <- c;
      heap_down h 0
    end
    else begin
      h.size <- h.size - 1;
      if h.size > 0 then begin
        heap_swap h 0 h.size;
        heap_down h 0
      end
    end
  done

let merge_pairs ~key ~payload ~runs ~dst_key ~dst_payload ~dst_pos =
  let h = heap_of_runs key runs in
  let pos = ref dst_pos in
  while h.size > 0 do
    let c0 = h.cursor.(0) in
    dst_key.(!pos) <- h.vals.(0);
    dst_payload.(!pos) <- payload.(c0);
    incr pos;
    let r = h.run_of.(0) in
    let c = c0 + 1 in
    if c < runs.(r).hi then begin
      h.vals.(0) <- key.(c);
      h.cursor.(0) <- c;
      heap_down h 0
    end
    else begin
      h.size <- h.size - 1;
      if h.size > 0 then begin
        heap_swap h 0 h.size;
        heap_down h 0
      end
    end
  done

let split_at_rank ~src ~runs ~rank =
  let total = total_length runs in
  if rank < 0 || rank > total then invalid_arg "Multiway.split_at_rank";
  let k = Array.length runs in
  let cuts = Array.map (fun r -> r.lo) runs in
  if rank = 0 then cuts
  else if rank = total then Array.map (fun r -> r.hi) runs
  else begin
    (* Binary search over the value domain for the smallest value v with
       count_le(v) >= rank; counts are monotone in v. Midpoints computed
       overflow-safely (values may span the full int range). *)
    let vmin = ref max_int and vmax = ref min_int in
    Array.iter
      (fun { lo; hi } ->
        if lo < hi then begin
          if src.(lo) < !vmin then vmin := src.(lo);
          if src.(hi - 1) > !vmax then vmax := src.(hi - 1)
        end)
      runs;
    let count_less v =
      let acc = ref 0 in
      Array.iter (fun { lo; hi } -> acc := !acc + Bs.lower_bound src ~lo ~hi v - lo) runs;
      !acc
    in
    let count_le v =
      let acc = ref 0 in
      Array.iter (fun { lo; hi } -> acc := !acc + Bs.upper_bound src ~lo ~hi v - lo) runs;
      !acc
    in
    let mid lo hi = (lo / 2) + (hi / 2) + (lo land hi land 1) in
    let lo = ref !vmin and hi = ref !vmax in
    while !lo < !hi do
      let m = mid !lo !hi in
      if count_le m >= rank then hi := m else lo := m + 1
    done;
    let v = !lo in
    let below = count_less v in
    (* Take all elements < v, then distribute the remaining (rank - below)
       equal-to-v elements across runs in run order (the stable tie-break). *)
    let remaining = ref (rank - below) in
    assert (!remaining >= 0);
    for r = 0 to k - 1 do
      let { lo; hi } = runs.(r) in
      let first_eq = Bs.lower_bound src ~lo ~hi v in
      let past_eq = Bs.upper_bound src ~lo ~hi v in
      let take = min !remaining (past_eq - first_eq) in
      cuts.(r) <- first_eq + take;
      remaining := !remaining - take
    done;
    assert (!remaining = 0);
    cuts
  end
