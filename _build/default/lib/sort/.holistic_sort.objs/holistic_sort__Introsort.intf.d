lib/sort/introsort.mli:
