lib/sort/multiway.ml: Array Holistic_util
