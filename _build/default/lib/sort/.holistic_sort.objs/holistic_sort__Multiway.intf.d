lib/sort/multiway.mli:
