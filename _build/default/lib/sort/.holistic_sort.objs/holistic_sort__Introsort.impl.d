lib/sort/introsort.ml: Array Float
