lib/sort/parallel_sort.mli: Holistic_parallel Multiway Task_pool
