lib/sort/parallel_sort.ml: Array Holistic_parallel Introsort Multiway Task_pool
