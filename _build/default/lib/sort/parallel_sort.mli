(** Parallel sorting: task-local introsort runs + balanced parallel multiway
    merge (paper §5.2). The phases are exposed separately so that pipelines
    can time them individually (Fig. 14). *)

open Holistic_parallel

val sort_runs :
  Task_pool.t ->
  ?task_size:int ->
  key:int array ->
  payload:int array ->
  unit ->
  Multiway.run array
(** Sorts consecutive chunks of [task_size] (default {!Task_pool.default_task_size})
    elements in parallel, each by [(key, payload)] lexicographically, and
    returns the run descriptors. *)

val merge_runs :
  Task_pool.t -> key:int array -> payload:int array -> runs:Multiway.run array -> unit
(** Merges the given sorted runs (which must tile the arrays) back into the
    arrays, in parallel: the output is split at balanced global ranks and
    each segment is merged by an independent task. *)

val sort_pairs : Task_pool.t -> key:int array -> payload:int array -> unit
(** [sort_runs] followed by [merge_runs]: a stable parallel sort by
    [(key, payload)]. *)

val sort : Task_pool.t -> int array -> unit
(** Parallel ascending sort of a plain int array. *)
