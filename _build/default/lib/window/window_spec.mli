(** Window specifications: PARTITION BY, ORDER BY, framing (§2.2).

    Frame bounds may be arbitrary per-row expressions (the paper's stock
    limit-order example), not just constants, and frames may be non-monotonic
    and non-continuous. *)

open Holistic_storage

type frame_mode =
  | Rows  (** bounds are row offsets *)
  | Range  (** bounds are value offsets on a single ORDER BY key *)
  | Groups  (** bounds are peer-group offsets *)

type bound =
  | Unbounded_preceding
  | Preceding of Expr.t  (** non-negative offset, evaluated per row *)
  | Current_row
  | Following of Expr.t
  | Unbounded_following

type exclusion = Exclude_no_others | Exclude_current_row | Exclude_group | Exclude_ties

type frame = {
  mode : frame_mode;
  start_bound : bound;
  end_bound : bound;
  exclusion : exclusion;
}

type t = {
  partition_by : Expr.t list;
  order_by : Sort_spec.t;
  frame : frame option;
      (** [None] is SQL's default: with ORDER BY, RANGE BETWEEN UNBOUNDED
          PRECEDING AND CURRENT ROW; without, the whole partition. *)
}

val over : ?partition_by:Expr.t list -> ?order_by:Sort_spec.t -> ?frame:frame -> unit -> t

val rows_between : ?exclusion:exclusion -> bound -> bound -> frame
val range_between : ?exclusion:exclusion -> bound -> bound -> frame
val groups_between : ?exclusion:exclusion -> bound -> bound -> frame

val preceding : int -> bound
(** Constant-offset shorthand. *)

val following : int -> bound

val whole_partition : frame
(** ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING. *)
