open Holistic_storage

type frame_mode = Rows | Range | Groups

type bound =
  | Unbounded_preceding
  | Preceding of Expr.t
  | Current_row
  | Following of Expr.t
  | Unbounded_following

type exclusion = Exclude_no_others | Exclude_current_row | Exclude_group | Exclude_ties

type frame = {
  mode : frame_mode;
  start_bound : bound;
  end_bound : bound;
  exclusion : exclusion;
}

type t = { partition_by : Expr.t list; order_by : Sort_spec.t; frame : frame option }

let over ?(partition_by = []) ?(order_by = []) ?frame () = { partition_by; order_by; frame }

let between mode ?(exclusion = Exclude_no_others) start_bound end_bound =
  { mode; start_bound; end_bound; exclusion }

let rows_between ?exclusion s e = between Rows ?exclusion s e
let range_between ?exclusion s e = between Range ?exclusion s e
let groups_between ?exclusion s e = between Groups ?exclusion s e
let preceding k = Preceding (Expr.Const (Value.Int k))
let following k = Following (Expr.Const (Value.Int k))

let whole_partition =
  { mode = Rows; start_bound = Unbounded_preceding; end_bound = Unbounded_following;
    exclusion = Exclude_no_others }
