lib/window/executor.mli: Holistic_parallel Holistic_storage Table Window_func Window_spec
