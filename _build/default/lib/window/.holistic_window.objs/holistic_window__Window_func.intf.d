lib/window/window_func.mli: Expr Holistic_storage Sort_spec
