lib/window/window_spec.mli: Expr Holistic_storage Sort_spec
