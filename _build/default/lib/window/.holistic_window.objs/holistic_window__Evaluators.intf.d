lib/window/evaluators.mli: Frame Holistic_parallel Holistic_storage Sort_spec Table Value Window_func
