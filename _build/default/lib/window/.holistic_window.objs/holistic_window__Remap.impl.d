lib/window/remap.ml: Array List
