lib/window/window_spec.ml: Expr Holistic_storage Sort_spec Value
