lib/window/window_func.ml: Expr Holistic_storage Sort_spec
