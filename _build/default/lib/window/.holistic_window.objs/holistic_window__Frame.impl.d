lib/window/frame.ml: Array Expr Holistic_storage List Sort_spec Value Window_spec
