lib/window/frame.mli: Holistic_storage Table Window_spec
