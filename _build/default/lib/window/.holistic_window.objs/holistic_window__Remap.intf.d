lib/window/remap.mli:
