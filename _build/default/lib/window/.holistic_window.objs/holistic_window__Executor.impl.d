lib/window/executor.ml: Array Column Evaluators Expr Frame Hashtbl Holistic_parallel Holistic_sort Holistic_storage List Sort_spec Table Value Window_func Window_spec
