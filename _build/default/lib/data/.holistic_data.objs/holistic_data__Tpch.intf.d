lib/data/tpch.mli: Holistic_storage Table
