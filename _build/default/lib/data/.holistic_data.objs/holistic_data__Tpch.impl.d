lib/data/tpch.ml: Array Column Holistic_storage Holistic_util Table Value
