lib/data/scenarios.mli: Holistic_storage Table
