lib/data/scenarios.ml: Array Column Float Holistic_storage Holistic_util Table Value
