open Holistic_storage
module Rng = Holistic_util.Rng

let systems =
  [| "Hyper"; "Umbra"; "DuckDB"; "Postgres"; "Oracle"; "SQLServer"; "DB2"; "Informix"; "Sybase";
     "MySQL"; "MonetDB"; "Vertica" |]

let tpcc_results ?(seed = 7) ~rows () =
  let rng = Rng.create seed in
  let dbsystem = Array.make rows "" in
  let tps = Array.make rows 0.0 in
  let submission = Array.make rows 0 in
  let first = Value.date_of_ymd 1993 1 1 in
  let last = Value.date_of_ymd 2010 12 31 in
  for i = 0 to rows - 1 do
    let d = Rng.int_in rng first last in
    let years = float_of_int (d - first) /. 365.25 in
    dbsystem.(i) <- systems.(Rng.int rng (Array.length systems));
    (* Moore's-law-ish growth with noise: results improve over the years. *)
    tps.(i) <- (100.0 *. (2.0 ** (years /. 2.0))) *. (0.5 +. Rng.float rng 1.0);
    submission.(i) <- d
  done;
  Table.create
    [
      ("dbsystem", Column.strings dbsystem);
      ("tps", Column.floats tps);
      ("submission_date", Column.dates submission);
    ]

let stock_orders ?(seed = 11) ~rows () =
  let rng = Rng.create seed in
  let price = Array.make rows 0.0 in
  let placement = Array.make rows 0 in
  let good_for = Array.make rows 0 in
  let t = ref 0 in
  let p = ref 100.0 in
  for i = 0 to rows - 1 do
    t := !t + 1 + Rng.int rng 5;
    (* random walk with mean reversion *)
    p := Float.max 1.0 (!p +. Rng.float rng 2.0 -. 1.0 +. ((100.0 -. !p) *. 0.001));
    price.(i) <- Float.round (!p *. 100.0) /. 100.0;
    placement.(i) <- !t;
    good_for.(i) <- 10 + Rng.int rng 600
  done;
  Table.create
    [
      ("price", Column.floats price);
      ("placement_time", Column.ints placement);
      ("good_for", Column.ints good_for);
    ]

let uniform_ints ?(seed = 1) ~n ~bound () =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.int rng bound)

let zipf_ints ?(seed = 2) ~n ~bound ?(alpha = 1.1) () =
  let rng = Rng.create seed in
  (* Inverse-CDF sampling over the truncated zeta distribution. *)
  let weights = Array.init bound (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) alpha) in
  let cdf = Array.make bound 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun k w ->
      acc := !acc +. w;
      cdf.(k) <- !acc)
    weights;
  let total = !acc in
  Array.init n (fun _ ->
      let u = Rng.float rng total in
      (* binary search the CDF *)
      let lo = ref 0 and hi = ref (bound - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cdf.(mid) < u then lo := mid + 1 else hi := mid
      done;
      !lo)
